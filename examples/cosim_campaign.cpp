// Randomized co-simulation campaign — the software analogue of the
// paper's verification flow ("C simulation verifies the correctness of
// the algorithm, C/RTL co-simulation ensures the functionality of the
// synthesized hardware", §IV).
//
// Samples random model shapes within the synthesized envelope, runs the
// float reference and the int8 accelerator side by side, and reports
// per-shape and aggregate error statistics with a pass/fail verdict.
//
//   $ ./cosim_campaign [num_runs] [seed]
#include <cstdio>
#include <cstdlib>

#include "accel/accelerator.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace protea;

  const int runs = argc > 1 ? std::atoi(argv[1]) : 12;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  constexpr float kRmsBudget = 0.25f;  // on unit-variance LN outputs
  util::Xoshiro256 rng(seed);
  const accel::AccelConfig hw_config;

  std::printf("co-simulation campaign: %d runs, seed %llu\n\n", runs,
              static_cast<unsigned long long>(seed));
  std::printf("%4s %5s %5s %3s %3s %6s %10s %10s %7s\n", "run", "SL", "d",
              "h", "N", "act", "rms err", "max err", "status");

  int failures = 0;
  double worst_rms = 0.0;
  for (int run = 0; run < runs; ++run) {
    // Sample a shape inside the synthesized envelope.
    ref::ModelConfig cfg;
    const uint32_t head_choices[] = {2, 4, 8};
    cfg.num_heads = head_choices[rng.bounded(3)];
    const uint32_t dk = static_cast<uint32_t>(8 + rng.bounded(25));
    cfg.d_model = cfg.num_heads * dk;
    cfg.seq_len = static_cast<uint32_t>(4 + rng.bounded(29));
    cfg.num_layers = static_cast<uint32_t>(1 + rng.bounded(3));
    cfg.activation = rng.bounded(2) == 0 ? ref::Activation::kRelu
                                         : ref::Activation::kGelu;

    const auto weights = ref::make_random_weights(cfg, rng.next());
    const auto input = ref::make_random_input(cfg, rng.next());
    ref::Encoder reference(weights);
    const auto ref_out = reference.forward(input);

    accel::ProteaAccelerator accelerator(hw_config);
    accelerator.load_model(accel::prepare_model(weights, input));
    const auto out = accelerator.forward(input);

    const float rms = tensor::rms_diff(out, ref_out);
    const float max = tensor::max_abs_diff(out, ref_out);
    const bool pass = rms <= kRmsBudget;
    failures += pass ? 0 : 1;
    worst_rms = std::max(worst_rms, static_cast<double>(rms));

    std::printf("%4d %5u %5u %3u %3u %6s %10.4f %10.4f %7s\n", run,
                cfg.seq_len, cfg.d_model, cfg.num_heads, cfg.num_layers,
                cfg.activation == ref::Activation::kRelu ? "relu" : "gelu",
                static_cast<double>(rms), static_cast<double>(max),
                pass ? "PASS" : "FAIL");
  }

  std::printf("\n%d/%d shapes within the %.2f RMS budget (worst %.4f)\n",
              runs - failures, runs, static_cast<double>(kRmsBudget),
              worst_rms);
  return failures == 0 ? 0 : 1;
}
