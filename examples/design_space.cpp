// Domain example: design-space exploration, the paper's §IV-E flow.
//
// A hardware architect picks tile sizes BEFORE synthesis; this tool walks
// the (TS_MHA, TS_FFN) grid for a target workload and device, rejecting
// configurations that do not fit (or are unroutable), and reports the
// latency/frequency Pareto data that Fig. 7 condenses.
#include <cstdio>
#include <string>
#include <vector>

#include "accel/perf_model.hpp"
#include "hw/device.hpp"
#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"
#include "ref/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace protea;

  const std::string model_name = argc > 1 ? argv[1] : "bert";
  const std::string device_name = argc > 2 ? argv[2] : "u55c";
  const auto model = ref::find_model(model_name);
  const auto& device = hw::find_device(device_name);

  std::printf("design-space exploration: model=%s on %s\n\n",
              model.name.c_str(), device.name.c_str());
  std::printf("%7s %7s %6s %6s %8s %8s %9s %12s %8s\n", "TS_MHA", "TS_FFN",
              "DSP", "LUT%", "BRAM", "Fmax", "lat(ms)", "GOPS", "status");

  struct Best {
    double latency = 1e300;
    uint32_t ts_mha = 0, ts_ffn = 0;
  } best;

  for (uint32_t ts_mha : {16u, 32u, 48u, 64u, 96u, 128u}) {
    for (uint32_t ts_ffn : {64u, 96u, 128u, 192u, 256u, 384u}) {
      accel::AccelConfig cfg;
      cfg.synth.ts_mha = ts_mha;
      cfg.synth.ts_ffn = ts_ffn;

      const auto resources = hw::estimate_resources(cfg.synth);
      const double lut_pct =
          100.0 * hw::utilization(resources.used.lut, device.budget.lut);
      std::string status = "ok";
      if (!resources.fits(device.budget)) {
        status = "no fit";
      } else if (!resources.fits_routable(device.budget)) {
        status = "unroutable";
      }

      const auto report = accel::estimate_performance(cfg, model);
      std::printf("%7u %7u %6llu %5.1f%% %8llu %7.0f %9.2f %12.1f %8s\n",
                  ts_mha, ts_ffn,
                  static_cast<unsigned long long>(resources.used.dsp),
                  lut_pct,
                  static_cast<unsigned long long>(resources.used.bram36),
                  report.fmax_mhz, report.latency_ms, report.gops,
                  status.c_str());

      if (status == "ok" && report.latency_ms < best.latency) {
        best = {report.latency_ms, ts_mha, ts_ffn};
      }
    }
  }

  std::printf(
      "\nbest routable point: TS_MHA=%u, TS_FFN=%u at %.2f ms — the "
      "paper ships TS_MHA=64, TS_FFN=128.\n",
      best.ts_mha, best.ts_ffn, best.latency);
  std::printf(
      "tile sizes are SYNTHESIS-time choices: everything else (SL, "
      "d_model, heads, layers)\nreprograms at runtime without touching "
      "this table.\n");
  return 0;
}
