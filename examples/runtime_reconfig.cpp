// Runtime reconfiguration: the paper's headline feature, §IV-D.
//
// Programs the (simulated) accelerator through the MicroBlaze-style ISA:
// one "synthesis", then several models executed back to back purely by
// rewriting CSRs — including a deliberately oversized program that the
// controller must reject with a CSR error instead of requiring
// re-synthesis.
#include <cstdio>

#include "accel/accelerator.hpp"
#include "isa/controller.hpp"
#include "ref/weights.hpp"

int main() {
  using namespace protea;

  accel::AccelConfig hw_config;  // synthesized once
  accel::ProteaAccelerator accelerator(hw_config);
  isa::Controller controller(accelerator);

  // Three models of different shapes, bound to host buffer slots.
  std::vector<ref::ModelConfig> models(3);
  models[0].seq_len = 32;
  models[0].d_model = 128;
  models[0].num_heads = 4;
  models[0].num_layers = 2;
  models[1].seq_len = 16;
  models[1].d_model = 256;
  models[1].num_heads = 8;
  models[1].num_layers = 1;
  models[2].seq_len = 64;
  models[2].d_model = 64;
  models[2].num_heads = 2;
  models[2].num_layers = 3;

  std::vector<isa::Instruction> program;
  for (uint32_t slot = 0; slot < models.size(); ++slot) {
    const auto& m = models[slot];
    const auto weights = ref::make_random_weights(m, 10 + slot);
    const auto input = ref::make_random_input(m, 20 + slot);
    controller.bind_weights(slot, accel::prepare_model(weights, input));
    controller.bind_input(slot, input);
    auto block = isa::assemble_program(m, slot, slot, slot);
    block.pop_back();  // drop per-block halt; one stream, many runs
    program.insert(program.end(), block.begin(), block.end());
  }

  // A fourth program that exceeds the synthesized d_model: must be
  // rejected by the controller's bound check (no re-synthesis possible).
  program.push_back({isa::Opcode::kSetDModel, 4096});
  program.push_back({isa::Opcode::kRun, 99});
  program.push_back({isa::Opcode::kHalt, 0});

  std::printf("instruction stream (%zu instructions):\n%s\n",
              program.size(), isa::format_program(program).c_str());

  const auto results = controller.execute(program);

  std::printf("%-28s %12s %10s %8s\n", "program", "latency(ms)", "GOPS",
              "cycles/1e6");
  for (const auto& r : results) {
    char desc[64];
    std::snprintf(desc, sizeof(desc), "SL=%u d=%u h=%u N=%u",
                  r.config.seq_len, r.config.d_model, r.config.num_heads,
                  r.config.num_layers);
    std::printf("%-28s %12.3f %10.1f %8.2f\n", desc, r.perf.latency_ms,
                r.perf.gops,
                static_cast<double>(r.perf.total_cycles) / 1e6);
  }
  std::printf(
      "\nexecuted %zu runs, rejected %u oversized program(s) — all on ONE "
      "synthesis,\nno hardware rebuild between models.\n",
      results.size(), controller.rejected_runs());
  return 0;
}
