// Quickstart: build a transformer encoder, deploy it on the simulated
// ProTEA accelerator, and compare the quantized output and projected
// FPGA latency against the float reference.
//
//   $ ./quickstart
//
// Walks the full public API in ~60 lines: model config -> weights ->
// calibration/quantization -> accelerator -> forward -> perf report.
#include <cstdio>

#include "accel/accelerator.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace protea;

  // 1. Describe a small encoder (runtime-programmable quantities only).
  ref::ModelConfig model;
  model.name = "quickstart";
  model.seq_len = 32;
  model.d_model = 128;
  model.num_heads = 4;
  model.num_layers = 2;
  model.activation = ref::Activation::kGelu;

  // 2. Create weights and an input (stand-ins for a trained checkpoint).
  const auto weights = ref::make_random_weights(model, /*seed=*/1);
  const auto input = ref::make_random_input(model, /*seed=*/2);

  // 3. Float reference (the golden model).
  ref::Encoder reference(weights);
  const auto ref_out = reference.forward(input);

  // 4. Host flow: calibrate activation scales on the input and quantize
  //    weights into the accelerator's int8 layout.
  auto qmodel = accel::prepare_model(weights, input);

  // 5. Instantiate the accelerator at the paper's synthesis point
  //    (TS_MHA=64, TS_FFN=128, 8 head engines, U55C) and load the model.
  accel::AccelConfig hw_config;
  accel::ProteaAccelerator accelerator(hw_config);
  accelerator.load_model(std::move(qmodel));

  // 6. Run the bit-level datapath and the cycle model.
  const auto out = accelerator.forward(input);
  const auto perf = accelerator.performance();

  std::printf("model: %s  (SL=%u, d=%u, h=%u, N=%u)\n", model.name.c_str(),
              model.seq_len, model.d_model, model.num_heads,
              model.num_layers);
  std::printf("quantized vs float:  rms err = %.4f, max err = %.4f\n",
              static_cast<double>(tensor::rms_diff(out, ref_out)),
              static_cast<double>(tensor::max_abs_diff(out, ref_out)));
  std::printf("projected on U55C:   %.3f ms @ %.0f MHz  (%.1f GOPS, "
              "%llu MACs)\n",
              perf.latency_ms, perf.fmax_mhz, perf.gops,
              static_cast<unsigned long long>(perf.macs));
  std::printf("engine MACs issued:  %llu (functional datapath)\n",
              static_cast<unsigned long long>(accelerator.stats().macs));
  return 0;
}
