// Exports the Vitis HLS project for a chosen synthesis configuration —
// the artifact the ProTEA paper's methodology is built on. On a machine
// with Vitis HLS installed: `vitis_hls -f run_hls.tcl` inside the output
// directory.
//
//   $ ./export_hls [out_dir] [ts_mha] [ts_ffn] [device]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "hls/hls_codegen.hpp"
#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"

int main(int argc, char** argv) {
  using namespace protea;

  const std::string out_dir = argc > 1 ? argv[1] : "protea_hls";
  hw::SynthParams params;
  if (argc > 2) params.ts_mha = static_cast<uint32_t>(std::atoi(argv[2]));
  if (argc > 3) params.ts_ffn = static_cast<uint32_t>(std::atoi(argv[3]));
  const hw::Device& device =
      argc > 4 ? hw::find_device(argv[4]) : hw::alveo_u55c();

  params.validate();
  const double fmax = hw::fmax_mhz(params);
  const auto resources = hw::estimate_resources(params);

  const int files = hls::write_hls_project(out_dir, params, device, fmax);

  std::printf("wrote %d files to %s/\n\n", files, out_dir.c_str());
  std::printf("synthesis configuration:\n");
  std::printf("  TS_MHA=%u  TS_FFN=%u  heads=%u  device=%s\n",
              params.ts_mha, params.ts_ffn, params.max_heads,
              device.name.c_str());
  std::printf("  projected Fmax: %.0f MHz\n", fmax);
  std::printf("  projected resources: %llu DSP, %llu LUT, %llu FF\n",
              static_cast<unsigned long long>(resources.used.dsp),
              static_cast<unsigned long long>(resources.used.lut),
              static_cast<unsigned long long>(resources.used.ff));
  std::printf("  fits %s: %s (routable: %s)\n", device.name.c_str(),
              resources.fits(device.budget) ? "yes" : "NO",
              resources.fits_routable(device.budget) ? "yes" : "NO");
  std::printf("\nnext step on a Vitis machine:\n  cd %s && vitis_hls -f "
              "run_hls.tcl\n",
              out_dir.c_str());
  return 0;
}
