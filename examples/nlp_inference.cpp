// Domain example: NLP sentence encoding — the workload class the paper's
// introduction motivates (BERT-style encoders for NLP).
//
// Tokenizes a toy sentence against a synthetic vocabulary, embeds it with
// sinusoidal positional encoding, runs the encoder stack on the simulated
// accelerator and reports per-token output signatures plus the projected
// FPGA latency for interactive use.
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "ref/encoder.hpp"
#include "ref/positional.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"

namespace {

/// Toy whitespace tokenizer with a deterministic hashed vocabulary.
std::vector<uint32_t> tokenize(const std::string& text, uint32_t vocab) {
  std::vector<uint32_t> ids;
  std::istringstream stream(text);
  std::string word;
  while (stream >> word) {
    uint32_t h = 2166136261u;
    for (char c : word) h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
    ids.push_back(h % vocab);
  }
  return ids;
}

}  // namespace

int main() {
  using namespace protea;

  const std::string sentence =
      "transformers map every token to a contextual embedding using "
      "attention over the whole sequence";
  constexpr uint32_t kVocab = 4096;

  auto tokens = tokenize(sentence, kVocab);
  ref::ModelConfig model;
  model.name = "nlp-encoder";
  model.seq_len = static_cast<uint32_t>(tokens.size());
  model.d_model = 128;
  model.num_heads = 8;
  model.num_layers = 4;
  model.activation = ref::Activation::kGelu;

  // Embedding table + positional encoding -> encoder input.
  const auto table = ref::make_embedding_table(kVocab, model.d_model, 3);
  const auto input = ref::embed_tokens(tokens, table);

  const auto weights = ref::make_random_weights(model, 4);
  accel::AccelConfig hw_config;
  accel::ProteaAccelerator accelerator(hw_config);
  accelerator.load_model(accel::prepare_model(weights, input));

  const auto encoded = accelerator.forward(input);
  const auto perf = accelerator.performance();

  std::printf("sentence: \"%s\"\n", sentence.c_str());
  std::printf("%zu tokens -> (%zu x %zu) contextual embeddings\n\n",
              tokens.size(), encoded.rows(), encoded.cols());

  // Per-token signature: L2 norm and the dominant embedding channel.
  std::printf("%5s %10s %8s %10s\n", "pos", "token-id", "|emb|", "argmax");
  for (size_t t = 0; t < encoded.rows(); ++t) {
    double norm = 0.0;
    size_t argmax = 0;
    for (size_t c = 0; c < encoded.cols(); ++c) {
      norm += static_cast<double>(encoded(t, c)) * encoded(t, c);
      if (encoded(t, c) > encoded(t, argmax)) argmax = c;
    }
    std::printf("%5zu %10u %8.3f %10zu\n", t, tokens[t],
                std::sqrt(norm), argmax);
  }

  std::printf(
      "\nprojected U55C latency: %.3f ms @ %.0f MHz — %.0f sentences/s "
      "for interactive NLP serving\n",
      perf.latency_ms, perf.fmax_mhz, 1000.0 / perf.latency_ms);
  return 0;
}
