// Exports the accelerator's modeled execution schedule as a Chrome
// trace (open in chrome://tracing or https://ui.perfetto.dev) and prints
// a per-engine busy-cycle budget — the waveform-level view of where the
// 279 ms of the BERT variant go.
#include <cstdio>

#include "accel/timeline.hpp"
#include "ref/model_zoo.hpp"

int main(int argc, char** argv) {
  using namespace protea;

  const auto model =
      argc > 1 ? ref::find_model(argv[1]) : ref::bert_variant();
  const accel::AccelConfig cfg;
  const auto timeline = accel::build_timeline(cfg, model);

  const char* stages[] = {"qkv",  "qk",   "softmax", "sv",
                          "ffn1", "ffn2", "ffn3",    "layernorm"};
  std::printf("engine schedule for '%s' (%u layers, %.0f MHz):\n\n",
              model.name.c_str(), model.num_layers, timeline.fmax_mhz());
  std::printf("%-10s %15s %8s\n", "stage", "busy cycles", "share");
  for (const char* stage : stages) {
    const auto busy = timeline.stage_busy(stage);
    std::printf("%-10s %15llu %7.1f%%\n", stage,
                static_cast<unsigned long long>(busy),
                100.0 * static_cast<double>(busy) /
                    static_cast<double>(timeline.total_cycles()));
  }
  std::printf("%-10s %15llu\n", "total",
              static_cast<unsigned long long>(timeline.total_cycles()));

  const std::string path = "protea_trace.json";
  timeline.export_chrome_trace(path);
  std::printf(
      "\n%zu events written to %s — open in chrome://tracing or "
      "ui.perfetto.dev\n",
      timeline.events().size(), path.c_str());
  return 0;
}
