// Domain example: encoder-decoder sequence transduction with
// autoregressive greedy decoding — the full-transformer use case of the
// paper's Fig. 1, exercising the decoder extension (§VI future work).
//
// Pipeline: source tokens -> encoder (simulated accelerator) -> memory ->
// KV-cached generation: one prefill projects the memory into the
// per-layer cross K/V caches and processes the BOS token, then each
// decode_step() runs a single target row against the cached prefix — the
// O(T) generation engine, bit-identical to reprogramming the full target
// length every step (the O(T^2) naive controller, whose cost the run
// prints for comparison). The run also checks the autoregressive
// invariant: re-decoding from a longer prefix never changes already
// emitted positions.
#include <cstdio>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/decoder_accelerator.hpp"
#include "ref/decoder.hpp"
#include "ref/positional.hpp"
#include "ref/weights.hpp"
#include "util/rng.hpp"

int main() {
  using namespace protea;

  constexpr uint32_t kVocab = 256;
  ref::ModelConfig model;
  model.name = "seq2seq";
  model.seq_len = 16;  // max target length
  model.d_model = 64;
  model.num_heads = 4;
  model.num_layers = 2;
  model.activation = ref::Activation::kRelu;

  // --- encode the source sequence ------------------------------------------
  util::Xoshiro256 rng(2024);
  std::vector<uint32_t> source(10);
  for (auto& t : source) t = static_cast<uint32_t>(rng.bounded(kVocab));
  const auto embed_table =
      ref::make_embedding_table(kVocab, model.d_model, 1);
  const auto src_input = ref::embed_tokens(source, embed_table);

  ref::ModelConfig enc_cfg = model;
  enc_cfg.seq_len = static_cast<uint32_t>(source.size());
  const auto enc_weights = ref::make_random_weights(enc_cfg, 2);
  accel::AccelConfig hw_config;
  accel::ProteaAccelerator encoder(hw_config);
  encoder.load_model(accel::prepare_model(enc_weights, src_input));
  const auto memory = encoder.forward(src_input);
  const auto enc_perf = encoder.performance();

  // --- KV-cached autoregressive greedy decode -------------------------------
  const auto dec_weights = ref::make_random_decoder_weights(model, 3);
  const auto calib_target =
      ref::make_random_input(model, 4);  // calibration activations
  accel::ProteaDecoderAccelerator decoder(hw_config);
  decoder.load_model(
      accel::prepare_decoder(dec_weights, calib_target, memory));

  // Random vocabulary head (stand-in for the trained output projection).
  const auto vocab_head =
      ref::make_embedding_table(kVocab, model.d_model, 5);
  auto argmax_token = [&](std::span<const float> state) {
    uint32_t best = 0;
    double best_score = -1e300;
    for (uint32_t v = 0; v < kVocab; ++v) {
      double score = 0.0;
      for (size_t c = 0; c < state.size(); ++c) {
        score += static_cast<double>(vocab_head(v, c)) * state[c];
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  };

  const auto mem_len = static_cast<uint32_t>(source.size());
  std::vector<uint32_t> generated = {0};  // BOS token
  double decode_ms_total = 0.0;           // KV-cached generation cost
  double naive_ms_total = 0.0;            // full-recompute comparison

  // Prefill: cross K/V projected once, BOS processed, position 1 cached.
  const auto prefill_states =
      decoder.prefill(ref::embed_tokens(generated, embed_table), memory);
  decode_ms_total += decoder.performance(1, mem_len).latency_ms;
  naive_ms_total += decoder.performance(1, mem_len).latency_ms;
  generated.push_back(
      argmax_token(prefill_states.row(prefill_states.rows() - 1)));

  // Each step embeds only the newest token (at its absolute position —
  // the positional encoding is what distinguishes repeated tokens) and
  // decodes exactly one row against the cached prefix.
  for (uint32_t step = 2; step < model.seq_len; ++step) {
    const auto state = decoder.decode_step(ref::embed_token_at(
        generated.back(), generated.size() - 1, embed_table));
    const auto pos = static_cast<uint32_t>(generated.size());
    decode_ms_total +=
        decoder.step_performance(pos - 1, mem_len).latency_ms;
    naive_ms_total += decoder.performance(pos, mem_len).latency_ms;
    generated.push_back(argmax_token(state.row(0)));
  }

  // --- autoregressive invariant check ---------------------------------------
  // The KV-cached engine must agree with the full-recompute controller:
  // re-decoding any prefix with forward() reproduces the emitted tokens.
  const auto full_input = ref::embed_tokens(generated, embed_table);
  const auto full_states = decoder.forward(full_input, memory);
  bool consistent = true;
  for (uint32_t step = 1; step + 1 < generated.size(); ++step) {
    if (argmax_token(full_states.row(step - 1)) != generated[step]) {
      consistent = false;
    }
  }

  std::printf("source  (%zu tokens):", source.size());
  for (auto t : source) std::printf(" %u", t);
  std::printf("\ndecoded (%zu tokens):", generated.size());
  for (auto t : generated) std::printf(" %u", t);
  std::printf("\n\nencoder pass:             %.3f ms (simulated U55C)\n",
              enc_perf.latency_ms);
  std::printf("KV-cached generation:     %.3f ms (%u steps, prefill + "
              "single-row decode)\n",
              decode_ms_total, model.seq_len - 1);
  std::printf("full-recompute would be:  %.3f ms (%.2fx slower)\n",
              naive_ms_total, naive_ms_total / decode_ms_total);
  std::printf("cached positions held:    %zu of %zu\n",
              decoder.generation_position(),
              static_cast<size_t>(model.seq_len));
  std::printf("autoregressive invariant (full re-decode): %s\n",
              consistent ? "HOLDS" : "VIOLATED");
  return consistent ? 0 : 1;
}
