// Domain example: encoder-decoder sequence transduction with
// autoregressive greedy decoding — the full-transformer use case of the
// paper's Fig. 1, exercising the decoder extension (§VI future work).
//
// Pipeline: source tokens -> encoder (simulated accelerator) -> memory ->
// decoder generates target tokens one position at a time, reprogramming
// the target length every step; a random output projection stands in for
// the trained vocabulary head. The run also checks the autoregressive
// invariant: regenerating from a longer prefix never changes already
// emitted positions.
#include <cstdio>
#include <vector>

#include "accel/accelerator.hpp"
#include "accel/decoder_accelerator.hpp"
#include "ref/decoder.hpp"
#include "ref/positional.hpp"
#include "ref/weights.hpp"
#include "util/rng.hpp"

int main() {
  using namespace protea;

  constexpr uint32_t kVocab = 256;
  ref::ModelConfig model;
  model.name = "seq2seq";
  model.seq_len = 16;  // max target length
  model.d_model = 64;
  model.num_heads = 4;
  model.num_layers = 2;
  model.activation = ref::Activation::kRelu;

  // --- encode the source sequence ------------------------------------------
  util::Xoshiro256 rng(2024);
  std::vector<uint32_t> source(10);
  for (auto& t : source) t = static_cast<uint32_t>(rng.bounded(kVocab));
  const auto embed_table =
      ref::make_embedding_table(kVocab, model.d_model, 1);
  const auto src_input = ref::embed_tokens(source, embed_table);

  ref::ModelConfig enc_cfg = model;
  enc_cfg.seq_len = static_cast<uint32_t>(source.size());
  const auto enc_weights = ref::make_random_weights(enc_cfg, 2);
  accel::AccelConfig hw_config;
  accel::ProteaAccelerator encoder(hw_config);
  encoder.load_model(accel::prepare_model(enc_weights, src_input));
  const auto memory = encoder.forward(src_input);
  const auto enc_perf = encoder.performance();

  // --- autoregressive greedy decode ----------------------------------------
  const auto dec_weights = ref::make_random_decoder_weights(model, 3);
  const auto calib_target =
      ref::make_random_input(model, 4);  // calibration activations
  accel::ProteaDecoderAccelerator decoder(hw_config);
  decoder.load_model(
      accel::prepare_decoder(dec_weights, calib_target, memory));

  // Random vocabulary head (stand-in for the trained output projection).
  const auto vocab_head =
      ref::make_embedding_table(kVocab, model.d_model, 5);
  auto argmax_token = [&](std::span<const float> state) {
    uint32_t best = 0;
    double best_score = -1e300;
    for (uint32_t v = 0; v < kVocab; ++v) {
      double score = 0.0;
      for (size_t c = 0; c < state.size(); ++c) {
        score += static_cast<double>(vocab_head(v, c)) * state[c];
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  };

  std::vector<uint32_t> generated = {0};  // BOS token
  double decode_ms_total = 0.0;
  for (uint32_t step = 1; step < model.seq_len; ++step) {
    const auto tgt_input = ref::embed_tokens(generated, embed_table);
    const auto states = decoder.forward(tgt_input, memory);
    const uint32_t next = argmax_token(states.row(states.rows() - 1));
    decode_ms_total +=
        decoder
            .performance(static_cast<uint32_t>(generated.size()),
                         static_cast<uint32_t>(source.size()))
            .latency_ms;
    generated.push_back(next);
  }

  // --- autoregressive invariant check ---------------------------------------
  const auto full_input = ref::embed_tokens(generated, embed_table);
  const auto full_states = decoder.forward(full_input, memory);
  bool consistent = true;
  for (uint32_t step = 1; step + 1 < generated.size(); ++step) {
    std::vector<uint32_t> prefix(generated.begin(),
                                 generated.begin() + step);
    const auto states =
        decoder.forward(ref::embed_tokens(prefix, embed_table), memory);
    if (argmax_token(states.row(step - 1)) != generated[step]) {
      consistent = false;
    }
  }

  std::printf("source  (%zu tokens):", source.size());
  for (auto t : source) std::printf(" %u", t);
  std::printf("\ndecoded (%zu tokens):", generated.size());
  for (auto t : generated) std::printf(" %u", t);
  std::printf("\n\nencoder pass:        %.3f ms (simulated U55C)\n",
              enc_perf.latency_ms);
  std::printf("decode, %u steps:    %.3f ms total\n",
              model.seq_len - 1, decode_ms_total);
  std::printf("autoregressive invariant (prefix re-decode): %s\n",
              consistent ? "HOLDS" : "VIOLATED");
  return consistent ? 0 : 1;
}
