// Domain example: high-energy-physics trigger inference — the workload of
// Wojcicki et al. [23] (Table II/III model #2), where a tiny transformer
// classifies jets from a handful of constituents under a hard real-time
// budget.
//
// Streams a batch of synthetic "events" through the accelerator with the
// runtime-programmable sequence length set per event (jets have varying
// constituent counts), and checks the projected latency against the
// trigger budget.
#include <algorithm>
#include <cstdio>

#include "accel/accelerator.hpp"
#include "ref/model_zoo.hpp"
#include "ref/weights.hpp"
#include "util/rng.hpp"

int main() {
  using namespace protea;

  // The LHC-trigger-scale model of Table II/III (one layer, d=96, SL=8).
  const auto model = ref::model_wojcicki23();
  const auto weights = ref::make_random_weights(model, 42);
  const auto calib = ref::make_random_input(model, 43);

  accel::AccelConfig hw_config;
  accel::ProteaAccelerator accelerator(hw_config);
  accelerator.load_model(accel::prepare_model(weights, calib));

  constexpr double kTriggerBudgetMs = 1.0;  // the paper's [23] scale
  util::Xoshiro256 rng(99);

  std::printf("HEP trigger model: SL<=%u, d=%u, h=%u, N=%u\n\n",
              model.seq_len, model.d_model, model.num_heads,
              model.num_layers);
  std::printf("%6s %13s %12s %10s %8s\n", "event", "constituents",
              "latency(ms)", "budget", "score");

  int accepted = 0;
  constexpr int kEvents = 10;
  for (int event = 0; event < kEvents; ++event) {
    // Jets carry 4..8 constituents; reprogram SL per event.
    const auto constituents =
        static_cast<uint32_t>(4 + rng.bounded(model.seq_len - 3));
    accelerator.program_seq_len(constituents);

    // Synthetic constituent kinematics as the embedding input.
    tensor::MatrixF event_input(constituents, model.d_model);
    for (float& v : event_input.flat()) {
      v = static_cast<float>(rng.normal());
    }

    const auto out = accelerator.forward(event_input);
    const auto perf = accelerator.performance();

    // Toy jet score: mean of the first output channel.
    double score = 0.0;
    for (size_t t = 0; t < out.rows(); ++t) score += out(t, 0);
    score /= static_cast<double>(out.rows());

    const bool in_budget = perf.latency_ms <= kTriggerBudgetMs;
    accepted += in_budget ? 1 : 0;
    std::printf("%6d %13u %12.4f %10s %8.3f\n", event, constituents,
                perf.latency_ms, in_budget ? "PASS" : "MISS", score);
  }

  std::printf(
      "\n%d/%d events inside the %.1f ms trigger budget (paper reports "
      "0.425 ms for this class,\n2.5x faster than a Titan XP).\n",
      accepted, kEvents, kTriggerBudgetMs);
  return 0;
}
