// Domain example: decode policies over one serving stack — greedy,
// seeded sampling and width-K beam search, all against the same
// KV-cached generation engine (runtime/decode_policy.hpp).
//
// Greedy and sampled requests plug into the continuous-batching
// scheduler through TokenStream callbacks (the engine stays
// vocabulary-free); beam search runs on copy-on-write KV forking: one
// prefill of the prompt, then every beam adopts the prompt's block table
// by refcount and pays a single block copy at its first divergent
// append. The run prints the pool accounting that makes the sharing
// visible — K beams at near-1x prompt footprint — and cross-checks the
// COW beams against the eager-copy reference (bit-identical hypotheses).
#include <cstdio>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "ref/weights.hpp"
#include "runtime/decode_policy.hpp"
#include "runtime/generation.hpp"
#include "util/rng.hpp"

int main() {
  using namespace protea;

  constexpr uint32_t kVocab = 48;
  ref::ModelConfig model;
  model.name = "decode-policies";
  model.seq_len = 24;  // max target length
  model.d_model = 64;
  model.num_heads = 4;
  model.num_layers = 2;
  model.activation = ref::Activation::kRelu;

  // Random weights + a float vocab head / embedding table stand-in.
  util::Xoshiro256 rng(77);
  tensor::MatrixF memory(8, model.d_model);
  tensor::MatrixF calib(model.seq_len, model.d_model);
  for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
  for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
  tensor::MatrixF head(kVocab, model.d_model);
  tensor::MatrixF embed(kVocab, model.d_model);
  for (float& x : head.flat()) x = static_cast<float>(rng.normal());
  for (float& x : embed.flat()) x = static_cast<float>(rng.normal() * 0.5);
  const runtime::VocabModel vocab{&head, &embed};

  const auto weights = ref::make_random_decoder_weights(model, 5);
  auto qd = accel::prepare_decoder(weights, calib, memory);
  const accel::AccelConfig hw_config;

  const std::vector<uint32_t> prompt = {7, 3, 19, 4};
  const auto embed_rows = [&](const std::vector<uint32_t>& tokens) {
    tensor::MatrixF m(tokens.size(), model.d_model);
    for (size_t r = 0; r < tokens.size(); ++r) {
      for (size_t c = 0; c < model.d_model; ++c) {
        m(r, c) = embed(tokens[r], c);
      }
    }
    return m;
  };
  const auto print_tokens = [](const char* label,
                               const std::vector<uint32_t>& tokens) {
    std::printf("%-28s", label);
    for (uint32_t t : tokens) std::printf(" %2u", t);
    std::printf("\n");
  };

  // --- greedy + sampled streams through the scheduler ----------------------
  // One greedy request plus three sampled ones with different seeds; the
  // per-request TokenStream owns all policy state, so the scheduler's
  // slot/thread choices cannot change the streams.
  runtime::GenerationScheduler scheduler(hw_config, std::move(qd));
  std::vector<std::unique_ptr<runtime::TokenStream>> streams;
  std::vector<runtime::GenerationRequest> requests;
  for (int i = 0; i < 4; ++i) {
    runtime::DecodePolicy policy;
    if (i > 0) {
      policy.sample = true;
      policy.temperature = 0.9f;
      policy.top_k = 8;
      policy.repetition_penalty = 1.2f;
      policy.seed = 100 + static_cast<uint64_t>(i);
    }
    streams.push_back(
        std::make_unique<runtime::TokenStream>(policy, vocab, 32));
    streams.back()->reset(prompt);
    runtime::GenerationRequest req;
    req.prefix = embed_rows(prompt);
    req.memory = &memory;
    req.max_new_tokens = 10;
    req.next_token = streams.back()->callback();
    requests.push_back(std::move(req));
  }
  runtime::GenerationSchedulerOptions sched_opts;
  sched_opts.slots = 2;
  sched_opts.kv_block_rows = 4;
  scheduler.run(requests, sched_opts);
  std::printf("decode policies over one engine (prompt: 7 3 19 4)\n\n");
  print_tokens("greedy:", streams[0]->tokens());
  for (int i = 1; i < 4; ++i) {
    char label[64];
    std::snprintf(label, sizeof(label),
                  "sampled (T=0.9 k=8 seed %d):", 100 + i);
    print_tokens(label, streams[i]->tokens());
  }

  // --- width-4 beam search on COW forks -------------------------------------
  runtime::BeamSearchOptions beam_opts;
  beam_opts.beam_width = 4;
  beam_opts.max_new_tokens = 10;
  beam_opts.kv_block_rows = 4;
  runtime::BeamSearchDecoder beam(hw_config, scheduler.model(), vocab,
                                  beam_opts);
  const auto hyps = beam.generate(prompt, memory);
  const auto& stats = beam.last_run();

  runtime::BeamSearchOptions eager_opts = beam_opts;
  eager_opts.cow = false;
  runtime::BeamSearchDecoder eager(hw_config, scheduler.model(), vocab,
                                   eager_opts);
  const auto eager_hyps = eager.generate(prompt, memory);
  bool identical = hyps.size() == eager_hyps.size();
  for (size_t i = 0; identical && i < hyps.size(); ++i) {
    identical = hyps[i].tokens == eager_hyps[i].tokens;
  }

  std::printf("\nbeam search K=4 (length-normalized scores):\n");
  for (size_t i = 0; i < hyps.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "beam %zu (score %.3f):", i,
                  hyps[i].score);
    print_tokens(label, hyps[i].tokens);
  }
  std::printf(
      "\nCOW pool accounting: peak %zu unique blocks "
      "(admission bound %zu, eager reference %zu), %llu block copies "
      "across %llu forks; hypotheses vs eager-copy caches: %s\n",
      stats.kv_blocks_peak, stats.worst_case_blocks,
      eager.last_run().kv_blocks_peak,
      static_cast<unsigned long long>(stats.cow_copies),
      static_cast<unsigned long long>(stats.forks),
      identical ? "IDENTICAL" : "DIVERGED");
  return identical ? 0 : 1;
}
