// Tests for the serving runtime layer: the workspace arena's lifetime
// rules, the unified forward path's bit-stability, the batch scheduler's
// serial/batched equivalence, the executed schedule's cycle-exact
// agreement with the analytic two-stage pipeline model, and the zero
//-allocation guarantee of a warmed session's forward().
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "accel/accelerator.hpp"
#include "accel/batch_pipeline.hpp"
#include "accel/decoder_model.hpp"
#include "accel/quantized_model.hpp"
#include "ref/decoder.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "runtime/batch_scheduler.hpp"
#include "runtime/generation.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/workspace_arena.hpp"
#include "util/rng.hpp"

// --- global allocation counter ----------------------------------------------
// Every operator new in this binary bumps g_alloc_count; the zero-alloc
// test reads the counter around a steady-state forward. Deletes are not
// counted (free is allocation-free by definition here).

namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protea::runtime {
namespace {

ref::ModelConfig small_config(uint32_t layers = 2) {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = layers;
  c.activation = ref::Activation::kGelu;
  return c;
}

struct Fixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedModel qm;
  tensor::MatrixF input;

  explicit Fixture(uint32_t layers = 2, uint32_t seed = 91) {
    cfg = small_config(layers);
    const auto weights = ref::make_random_weights(cfg, seed);
    input = ref::make_random_input(cfg, seed + 1);
    qm = accel::prepare_model(weights, input);
  }
};

// --- workspace arena ---------------------------------------------------------

TEST(WorkspaceArena, HandsOutAlignedDisjointViews) {
  WorkspaceArena ws;
  auto a = ws.matrix_i8(3, 5);
  auto b = ws.matrix_i32(4, 4);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 5u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % 64, 0u);
  a.fill(7);
  b.fill(-1);
  for (int8_t v : a.flat()) EXPECT_EQ(v, 7);
  for (int32_t v : b.flat()) EXPECT_EQ(v, -1);
  EXPECT_GE(ws.used(), 3 * 5 + 4 * 4 * sizeof(int32_t));
}

TEST(WorkspaceArena, MarkRewindReusesMemory) {
  WorkspaceArena ws(1 << 12);
  const auto m = ws.mark();
  auto a = ws.matrix_i8(8, 8);
  const int8_t* first = a.data();
  ws.rewind(m);
  EXPECT_EQ(ws.used(), 0u);
  auto b = ws.matrix_i8(8, 8);
  EXPECT_EQ(b.data(), first);  // same bytes handed out again
}

TEST(WorkspaceArena, ResetReusesWithoutGrowth) {
  WorkspaceArena ws(1 << 12);
  auto a = ws.matrix_i8(16, 16);
  const int8_t* first = a.data();
  const size_t cap = ws.capacity();
  ws.reset();
  EXPECT_EQ(ws.used(), 0u);
  auto b = ws.matrix_i8(16, 16);
  EXPECT_EQ(b.data(), first);
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(WorkspaceArena, NestedMarkRewindRestoresEachLevel) {
  WorkspaceArena ws(1 << 12);
  const auto outer = ws.mark();
  auto a = ws.matrix_i8(4, 4);
  const size_t after_a = ws.used();
  const auto inner = ws.mark();
  auto b = ws.matrix_i8(8, 8);
  const int8_t* b_ptr = b.data();
  ws.rewind(inner);
  EXPECT_EQ(ws.used(), after_a);
  auto c = ws.matrix_i8(8, 8);  // reuses the inner allocation's bytes
  EXPECT_EQ(c.data(), b_ptr);
  ws.rewind(inner);
  ws.rewind(outer);
  EXPECT_EQ(ws.used(), 0u);
  auto d = ws.matrix_i8(4, 4);  // and the outer level's bytes
  EXPECT_EQ(d.data(), a.data());
}

TEST(WorkspaceArena, ZeroSizedViewsAreValidAndFree) {
  WorkspaceArena ws(1 << 10);
  auto a = ws.matrix_i8(0, 8);
  auto b = ws.matrix_i8(8, 0);
  auto s = ws.span_i32(0);
  EXPECT_EQ(a.rows(), 0u);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.cols(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(ws.used(), 0u);  // zero-byte requests consume nothing
  // The arena keeps functioning (and stays aligned) afterwards.
  auto c = ws.matrix_i8(4, 4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % 64, 0u);
  c.fill(3);
  for (int8_t v : c.flat()) EXPECT_EQ(v, 3);
}

TEST(WorkspaceArena, Int32AccumulatorViewsStayAligned) {
  // Odd-sized int8 allocations must not misalign subsequent int32
  // accumulator views: every raw allocation is padded to the 64-byte
  // alignment quantum.
  WorkspaceArena ws(1 << 12);
  (void)ws.span_i8(3);
  auto acc1 = ws.matrix_i32(3, 5);
  (void)ws.span_i8(1);
  auto acc2 = ws.matrix_i32(2, 2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(acc1.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(acc2.data()) % 64, 0u);
  acc1.fill(-7);
  acc2.fill(9);
  for (int32_t v : acc1.flat()) EXPECT_EQ(v, -7);
  for (int32_t v : acc2.flat()) EXPECT_EQ(v, 9);
}

TEST(WorkspaceArena, GrowthChainsBlocksThenConsolidates) {
  WorkspaceArena ws(128);  // deliberately tiny first block
  (void)ws.matrix_i8(8, 8);
  (void)ws.matrix_i8(64, 64);   // exceeds the first block
  (void)ws.matrix_i32(64, 64);  // and the default growth once more?
  EXPECT_GE(ws.block_count(), 2u);
  const size_t peak = ws.peak();
  ws.reset();
  EXPECT_EQ(ws.block_count(), 1u);  // consolidated
  EXPECT_GE(ws.capacity(), peak);
  // The consolidated block now serves the same demand without growing.
  (void)ws.matrix_i8(8, 8);
  (void)ws.matrix_i8(64, 64);
  (void)ws.matrix_i32(64, 64);
  EXPECT_EQ(ws.block_count(), 1u);
}

// --- session forward path ----------------------------------------------------

TEST(InferenceSession, RepeatedForwardsAreBitIdentical) {
  Fixture fx;
  InferenceSession session(fx.acfg, fx.qm);
  const tensor::MatrixF out1 = session.forward(fx.input);
  const tensor::MatrixF out2 = session.forward(fx.input);
  EXPECT_EQ(out1, out2);
}

TEST(InferenceSession, MatchesAcceleratorForward) {
  Fixture fx;
  accel::ProteaAccelerator acc(fx.acfg);
  acc.load_model(fx.qm);
  const tensor::MatrixF expected = acc.forward(fx.input);

  InferenceSession session(fx.acfg, fx.qm);
  EXPECT_EQ(session.forward(fx.input), expected);
}

TEST(InferenceSession, AcceleratorForwardStableAcrossRepeats) {
  // The accelerator now routes through the same arena-backed path; its
  // repeated forwards must stay bit-identical (arena reuse is invisible).
  Fixture fx;
  accel::ProteaAccelerator acc(fx.acfg);
  acc.load_model(fx.qm);
  const tensor::MatrixF out1 = acc.forward(fx.input);
  std::vector<accel::AccelLayerTrace> traces;
  const tensor::MatrixF out2 = acc.forward(fx.input, &traces);
  const tensor::MatrixF out3 = acc.forward(fx.input);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out1, out3);
  ASSERT_EQ(traces.size(), fx.cfg.num_layers);
  EXPECT_EQ(traces[0].heads.size(), fx.cfg.num_heads);
}

TEST(InferenceSession, RejectsOversizedModel) {
  Fixture fx;
  accel::AccelConfig tiny = fx.acfg;
  tiny.synth.max_seq_len = 8;  // model needs 16
  EXPECT_THROW(InferenceSession(tiny, fx.qm), std::invalid_argument);
}

// --- zero-allocation guarantee ----------------------------------------------

TEST(InferenceSession, SteadyStateForwardMakesZeroHeapAllocations) {
  Fixture fx;
  InferenceSession session(fx.acfg, fx.qm);
  tensor::MatrixF out;
  // Warmups: first forward grows the arena, the second consolidates it
  // at reset, the third runs on the settled single block.
  session.forward_into(fx.input, out);
  session.forward_into(fx.input, out);
  session.forward_into(fx.input, out);

  const uint64_t before = g_alloc_count.load();
  session.forward_into(fx.input, out);
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in steady-state forward";
  EXPECT_EQ(session.workspace().block_count(), 1u);
}

TEST(GenerationSession, SteadyStateDecodeStepMakesZeroHeapAllocations) {
  // The generation twin of the forward guarantee: after prefill, EVERY
  // decode_step — at any cached length up to capacity — must run without
  // heap allocations. The session constructor warms its arena with one
  // worst-case step, so no per-step warmup is needed.
  ref::ModelConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 48;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.activation = ref::Activation::kGelu;
  const auto weights = ref::make_random_decoder_weights(cfg, 140);
  util::Xoshiro256 rng(141);
  tensor::MatrixF memory(8, cfg.d_model);
  tensor::MatrixF calib(cfg.seq_len, cfg.d_model);
  tensor::MatrixF token(1, cfg.d_model);
  for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
  for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
  for (float& x : token.flat()) x = static_cast<float>(rng.normal());
  const auto qd = accel::prepare_decoder(weights, calib, memory);

  const accel::AccelConfig acfg;
  GenerationSession session(acfg, qd);
  tensor::MatrixF states;
  tensor::MatrixF state(1, cfg.d_model);  // preallocated output row
  session.prefill(calib.slice_rows(0, 2), memory, states);

  const uint64_t before = g_alloc_count.load();
  while (session.position() < session.capacity()) {
    session.decode_step(token, state);
  }
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations across "
      << (cfg.seq_len - 2) << " steady-state decode steps";
  // The default layout is paged now: the pin above also covers block-
  // table growth (pre-reserved at configure) and pool free-list churn.
  EXPECT_TRUE(session.cache().paged());
}

TEST(GenerationSession, PagedChunkedDecodeStepsStayAllocationFree) {
  // Single-token blocks + chunked prefill is the worst case for the
  // paged bookkeeping: every decode step crosses a block boundary, so
  // each one pops the pool free list and grows the block table — all of
  // which must come from storage pre-reserved at configure().
  ref::ModelConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 48;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.activation = ref::Activation::kGelu;
  const auto weights = ref::make_random_decoder_weights(cfg, 150);
  util::Xoshiro256 rng(151);
  tensor::MatrixF memory(8, cfg.d_model);
  tensor::MatrixF calib(cfg.seq_len, cfg.d_model);
  tensor::MatrixF token(1, cfg.d_model);
  for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
  for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
  for (float& x : token.flat()) x = static_cast<float>(rng.normal());
  const auto qd = accel::prepare_decoder(weights, calib, memory);

  const accel::AccelConfig acfg;
  GenerationOptions opts;
  opts.kv_block_rows = 1;  // a block per token
  opts.prefill_chunk = 3;
  GenerationSession session(acfg, qd, nullptr, opts);
  tensor::MatrixF states;
  tensor::MatrixF state(1, cfg.d_model);
  session.prefill(calib.slice_rows(0, 7), memory, states);

  const uint64_t before = g_alloc_count.load();
  while (session.position() < session.capacity()) {
    session.decode_step(token, state);
  }
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in paged decode steps";
}

TEST(GenerationSession, ForkedCowDecodeStaysAllocationFree) {
  // The beam-search steady state: fork (refcount adoption into the
  // pre-reserved block table), divergent decode (write-triggered block
  // copies drawn from the pre-carved pool), retire, re-fork — all of it
  // must run without heap allocations once the sessions are warm. The
  // fork point deliberately straddles a block so every child pays a COW
  // copy inside the counted region.
  ref::ModelConfig cfg;
  cfg.seq_len = 12;
  cfg.d_model = 48;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  cfg.activation = ref::Activation::kGelu;
  const auto weights = ref::make_random_decoder_weights(cfg, 160);
  util::Xoshiro256 rng(161);
  tensor::MatrixF memory(8, cfg.d_model);
  tensor::MatrixF calib(cfg.seq_len, cfg.d_model);
  tensor::MatrixF token(1, cfg.d_model);
  for (float& x : memory.flat()) x = static_cast<float>(rng.normal());
  for (float& x : calib.flat()) x = static_cast<float>(rng.normal());
  for (float& x : token.flat()) x = static_cast<float>(rng.normal());
  const auto qd = accel::prepare_decoder(weights, calib, memory);

  const accel::AccelConfig acfg;
  KvBlockPool pool;
  pool.configure(/*blocks=*/12, /*block_rows=*/4,
                 cfg.num_layers * cfg.num_heads * 2 * cfg.head_dim());
  GenerationOptions opts;
  opts.kv_block_rows = 4;
  opts.kv_pool = &pool;
  GenerationSession parent(acfg, qd, nullptr, opts);
  GenerationSession child(acfg, qd, nullptr, opts);

  tensor::MatrixF states;
  tensor::MatrixF state(1, cfg.d_model);
  parent.prefill(calib.slice_rows(0, 6), memory, states);  // mid-block

  const uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 3; ++round) {  // fork / diverge / re-fork
    child.fork_from(parent);
    while (child.position() < child.capacity()) {
      child.decode_step(token, state);
    }
    child.end_sequence();
  }
  while (parent.position() < parent.capacity()) {
    parent.decode_step(token, state);  // parent COWs its tail block too
  }
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before)
      << " heap allocations across forked COW decode rounds";
  EXPECT_GT(pool.cow_copies(), 0u);  // the copies actually happened
  parent.end_sequence();
  child.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- batch scheduler ---------------------------------------------------------

TEST(BatchScheduler, BatchOfDuplicatesMatchesBatchOfOne) {
  Fixture fx;
  InferenceSession session(fx.acfg, fx.qm);
  const tensor::MatrixF expected = session.forward(fx.input);

  BatchScheduler scheduler(fx.acfg, fx.qm);
  const std::vector<tensor::MatrixF> inputs(8, fx.input);
  BatchOptions opts;
  opts.threads = 4;
  const auto outputs = scheduler.run_batched(inputs, opts);
  ASSERT_EQ(outputs.size(), 8u);
  for (const auto& out : outputs) EXPECT_EQ(out, expected);
}

TEST(BatchScheduler, BatchedMatchesSerialOnDistinctInputs) {
  Fixture fx;
  std::vector<tensor::MatrixF> inputs;
  for (uint32_t i = 0; i < 8; ++i) {
    inputs.push_back(ref::make_random_input(fx.cfg, 300 + i));
  }
  BatchScheduler scheduler(fx.acfg, fx.qm);
  const auto serial = scheduler.run_serial(inputs);
  BatchOptions opts;
  opts.threads = 4;
  const auto batched = scheduler.run_batched(inputs, opts);
  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], batched[i]) << "sequence " << i;
  }
}

TEST(BatchScheduler, StrictTwoStageModeMatchesSerial) {
  // mha_slots = ffn_slots = 1 is the paper's single accelerator: at most
  // one sequence in each module, overlap across modules only.
  Fixture fx;
  std::vector<tensor::MatrixF> inputs;
  for (uint32_t i = 0; i < 5; ++i) {
    inputs.push_back(ref::make_random_input(fx.cfg, 400 + i));
  }
  BatchScheduler scheduler(fx.acfg, fx.qm);
  const auto serial = scheduler.run_serial(inputs);
  BatchOptions opts;
  opts.threads = 3;
  opts.mha_slots = 1;
  opts.ffn_slots = 1;
  const auto batched = scheduler.run_batched(inputs, opts);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], batched[i]) << "sequence " << i;
  }
}

TEST(BatchScheduler, ExecutedScheduleMatchesAnalyticPipelineModel) {
  // The virtual-time replay of the scheduler's real task graph on one
  // MHA + one FFN module must land cycle-exactly on the analytic
  // two-stage pipeline estimate — the cross-check that what we execute
  // is what batch_pipeline.cpp predicts.
  Fixture fx(/*layers=*/3);
  BatchScheduler scheduler(fx.acfg, fx.qm);
  for (uint32_t batch : {1u, 2u, 3u, 5u, 8u, 16u}) {
    const auto predicted = scheduler.predicted(batch);
    EXPECT_EQ(scheduler.simulate_pipeline_cycles(batch),
              predicted.pipelined_cycles)
        << "batch " << batch;
  }
}

TEST(BatchScheduler, PredictedSpeedupIsRealizedInVirtualTime) {
  Fixture fx;
  BatchScheduler scheduler(fx.acfg, fx.qm);
  const auto report = scheduler.predicted(8);
  EXPECT_GT(report.speedup_vs_serial, 1.0);
  const double replay_speedup =
      static_cast<double>(report.serial_cycles) /
      static_cast<double>(scheduler.simulate_pipeline_cycles(8));
  EXPECT_NEAR(replay_speedup, report.speedup_vs_serial, 1e-12);
}

TEST(BatchScheduler, RejectsBadOptions) {
  Fixture fx;
  BatchScheduler scheduler(fx.acfg, fx.qm);
  const std::vector<tensor::MatrixF> inputs(2, fx.input);
  BatchOptions opts;
  opts.threads = 0;
  EXPECT_THROW(scheduler.run_batched(inputs, opts), std::invalid_argument);
  EXPECT_THROW(scheduler.simulate_pipeline_cycles(0), std::invalid_argument);
}

TEST(BatchScheduler, PropagatesWorkerExceptions) {
  Fixture fx;
  BatchScheduler scheduler(fx.acfg, fx.qm);
  std::vector<tensor::MatrixF> inputs(4, fx.input);
  inputs[2] = tensor::MatrixF(3, 3);  // wrong shape -> worker throws
  BatchOptions opts;
  opts.threads = 2;
  EXPECT_THROW(scheduler.run_batched(inputs, opts), std::invalid_argument);
}

TEST(BatchScheduler, MidStageThrowReleasesModuleSlots) {
  // A throw while a worker HOLDS a module slot must release it (RAII
  // stage bracket) — leaking it would deadlock the remaining workers on
  // the single-slot semaphore instead of propagating the error.
  Fixture fx;
  accel::QuantizedModel broken = fx.qm;
  // Non-power-of-two scale ratio -> run_layernorm throws inside the FFN
  // stage, after the worker has acquired the FFN module slot.
  broken.layers[0].scales.proj *= 3.0;
  BatchScheduler scheduler(fx.acfg, std::move(broken));
  const std::vector<tensor::MatrixF> inputs(4, fx.input);
  BatchOptions opts;
  opts.threads = 2;
  opts.mha_slots = 1;
  opts.ffn_slots = 1;
  EXPECT_THROW(scheduler.run_batched(inputs, opts), std::invalid_argument);
}

}  // namespace
}  // namespace protea::runtime
