// Tests for the SLO-aware traffic engine (runtime/traffic.hpp) and its
// supporting robustness machinery:
//
//   * the core property — completed requests are BIT-IDENTICAL to an
//     unconstrained PR-4 scheduler run no matter how often they were
//     preempted, for both recovery strategies (swap-out and
//     drop-and-recompute), every block size / prefill chunking, and with
//     deterministic failpoint storms injected into the block pool;
//   * stepped and threaded modes agree on outputs AND every per-class
//     scheduler counter (only wall-clock fields may differ);
//   * deadlines, overload shedding, cooperative cancellation and the
//     capacity reject all retire with a reason instead of throwing or
//     parking forever, and the stall valve force-sheds when preemption
//     is disabled and the working set cannot fit;
//   * the RAII guards (SequenceScope, KvCreditLease) release pool state
//     on unwind, including a failpoint-thrown KvBlockExhausted
//     mid-chunked-prefill;
//   * session-level swap-out/swap-in round-trips are byte-exact, and
//     estimate_preemption_cost's recompute MACs match the executed
//     re-prefill exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/traffic.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

using runtime::TrafficClassStats;
using runtime::TrafficOutcome;
using runtime::TrafficPriority;

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct TrafficFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit TrafficFixture(uint64_t seed = 500) {
    cfg.seq_len = 12;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(8, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }

  size_t kv_row_bytes() const {
    return cfg.num_layers * cfg.num_heads * 2 * cfg.head_dim();
  }
};

/// Deterministic pure token policy: feed a scaled copy of the newest
/// state back as the next embedding. `eos_after` >= 0 finishes early
/// after that many invocations (the countdown is per-request state, so
/// requests must be rebuilt fresh for every run).
runtime::GenerationRequest make_gen_request(const TrafficFixture& fx,
                                            size_t prefix_rows,
                                            uint32_t max_new, float scale,
                                            int eos_after, uint64_t seed) {
  runtime::GenerationRequest req;
  req.prefix = random_input(prefix_rows, fx.cfg.d_model, seed);
  req.memory = &fx.memory;
  req.max_new_tokens = max_new;
  const uint32_t d = fx.cfg.d_model;
  auto countdown = std::make_shared<int>(eos_after);
  req.next_token = [d, scale, countdown](std::span<const float> state,
                                         tensor::MatrixF& next) {
    if (*countdown == 0) return false;
    if (*countdown > 0) --*countdown;
    if (next.rows() != 1 || next.cols() != d) next = tensor::MatrixF(1, d);
    for (size_t c = 0; c < d; ++c) next(0, c) = scale * state[c];
    return true;
  };
  return req;
}

/// Fresh randomized mix mirroring the PR-4 stress builder: prompts
/// 1..seq_len-2, max_new 0..6, every third request finishes early, one
/// capacity-edge request, priorities cycling through the classes and
/// pairwise-staggered arrivals.
std::vector<runtime::TrafficRequest> build_mix(const TrafficFixture& fx,
                                               size_t count, uint64_t seed) {
  std::vector<runtime::TrafficRequest> requests;
  util::Xoshiro256 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    size_t prefix_rows = 1 + rng.next() % (fx.cfg.seq_len - 2);
    uint32_t max_new = static_cast<uint32_t>(
        std::min<size_t>(rng.next() % 7, fx.cfg.seq_len + 1 - prefix_rows));
    if (i == 0) {  // capacity edge: full-length prompt
      prefix_rows = fx.cfg.seq_len;
      max_new = 1;
    }
    const float scale = 0.25f + 0.05f * static_cast<float>(i % 5);
    const int eos_after =
        (i % 3 == 2) ? static_cast<int>(rng.next() % 3) : -1;
    runtime::TrafficRequest req;
    req.gen = make_gen_request(fx, prefix_rows, max_new, scale, eos_after,
                               seed + 10 + i);
    req.priority = static_cast<TrafficPriority>(i % 3);
    req.arrival_round = static_cast<uint32_t>(i / 2);
    requests.push_back(std::move(req));
  }
  return requests;
}

std::vector<runtime::GenerationRequest> to_gen(
    std::vector<runtime::TrafficRequest> requests) {
  std::vector<runtime::GenerationRequest> out;
  out.reserve(requests.size());
  for (auto& r : requests) out.push_back(std::move(r.gen));
  return out;
}

void expect_rows_equal(const tensor::MatrixF& got, const tensor::MatrixF& want,
                       size_t rows, const char* what) {
  ASSERT_GE(got.rows(), rows) << what;
  ASSERT_GE(want.rows(), rows) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < got.cols(); ++c) {
      ASSERT_EQ(got(r, c), want(r, c)) << what << " row " << r << " col " << c;
    }
  }
}

void expect_same_class_stats(const TrafficClassStats& a,
                             const TrafficClassStats& b, const char* what) {
  EXPECT_EQ(a.submitted, b.submitted) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.completed_late, b.completed_late) << what;
  EXPECT_EQ(a.shed_overload, b.shed_overload) << what;
  EXPECT_EQ(a.shed_deadline, b.shed_deadline) << what;
  EXPECT_EQ(a.shed_capacity, b.shed_capacity) << what;
  EXPECT_EQ(a.cancelled, b.cancelled) << what;
  EXPECT_EQ(a.failed, b.failed) << what;
  EXPECT_EQ(a.preemptions, b.preemptions) << what;
  EXPECT_EQ(a.swap_outs, b.swap_outs) << what;
  EXPECT_EQ(a.recomputes, b.recomputes) << what;
  EXPECT_EQ(a.restores, b.restores) << what;
  EXPECT_EQ(a.deadline_misses, b.deadline_misses) << what;
  EXPECT_EQ(a.kv_block_waits, b.kv_block_waits) << what;
}

TEST(TrafficEngine, RecoveryStrategiesBitIdenticalUnderPreemptionStorm) {
  // The tentpole property: sweep (block size x prefill chunk x recovery
  // strategy) over a pool deliberately too small for the working set,
  // with a failpoint storm layered on top, and require every request to
  // complete with the exact bits of an unconstrained sequential run.
  TrafficFixture fx;
  constexpr size_t kRequests = 10;
  constexpr uint64_t kSeed = 1000;

  runtime::GenerationScheduler reference(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions ref_opts;
  ref_opts.slots = 1;
  ref_opts.kv_block_rows = 0;
  const auto expected =
      reference.run(to_gen(build_mix(fx, kRequests, kSeed)), ref_opts);

  runtime::TrafficEngine engine(fx.acfg, fx.qd);
  uint64_t preemptions = 0, swap_outs = 0, recomputes = 0, restores = 0;
  uint64_t trips = 0;
  size_t variant = 0;
  for (size_t block_rows : {size_t{2}, size_t{4}}) {
    for (size_t chunk : {size_t{0}, size_t{3}}) {
      for (auto recovery : {runtime::PreemptionRecovery::kSwapOut,
                            runtime::PreemptionRecovery::kRecompute,
                            runtime::PreemptionRecovery::kAuto}) {
        runtime::TrafficOptions opts;
        opts.slots = 3;
        opts.kv_block_rows = block_rows;
        // Any single request fits (worst case ceil(12 / block_rows)),
        // but three concurrent ones do not.
        opts.kv_pool_blocks =
            util::ceil_div<size_t>(fx.cfg.seq_len, block_rows) + 2;
        opts.prefill_chunk = chunk;
        opts.recovery = recovery;
        opts.swap_slots =
            recovery == runtime::PreemptionRecovery::kAuto ? 1 : 2;
#ifdef PROTEA_FAILPOINTS
        opts.fail_skip = 4 + 3 * variant;  // storm at a per-variant point
        opts.fail_count = 4;
#endif
        const auto results = engine.run(build_mix(fx, kRequests, kSeed), opts);
        const auto& stats = engine.last_run();
        ASSERT_EQ(results.size(), expected.size());
        for (size_t i = 0; i < results.size(); ++i) {
          EXPECT_EQ(results[i].outcome, TrafficOutcome::kCompleted)
              << "variant " << variant << " request " << i << ": "
              << results[i].shed_reason;
          EXPECT_EQ(results[i].steps, expected[i].steps)
              << "variant " << variant << " request " << i;
          ASSERT_EQ(results[i].states, expected[i].states)
              << "variant " << variant << " request " << i;
        }
        if (recovery == runtime::PreemptionRecovery::kRecompute) {
          EXPECT_EQ(stats.total(&TrafficClassStats::swap_outs), 0u);
          EXPECT_EQ(stats.swap_bytes, 0u);
        }
        preemptions += stats.total(&TrafficClassStats::preemptions);
        swap_outs += stats.total(&TrafficClassStats::swap_outs);
        recomputes += stats.total(&TrafficClassStats::recomputes);
        restores += stats.total(&TrafficClassStats::restores);
        trips += stats.failpoint_trips;
        EXPECT_LE(stats.kv_blocks_peak, opts.kv_pool_blocks);
        ++variant;
      }
    }
  }
  // The sweep must actually exercise preemption, both recovery flavors,
  // and restore every victim it evicts.
  EXPECT_GT(preemptions, 0u);
  EXPECT_GT(swap_outs, 0u);
  EXPECT_GT(recomputes, 0u);
  EXPECT_EQ(restores, preemptions);
#ifdef PROTEA_FAILPOINTS
  EXPECT_GT(trips, 0u);
#endif
}

TEST(TrafficEngine, SteppedAndThreadedRunsMatchBitForBit) {
  // Satellite: outputs AND per-class scheduler stats are identical
  // between the stepped loop and the worker-pool mode — only wall-clock
  // fields may differ. Pool mutations are coordinator-serial in both, so
  // even the injected failpoint schedule lines up.
  TrafficFixture fx;
  constexpr size_t kRequests = 10;
  constexpr uint64_t kSeed = 2000;

  runtime::TrafficOptions stepped;
  stepped.slots = 3;
  stepped.kv_block_rows = 2;
  stepped.kv_pool_blocks = 8;
  stepped.prefill_chunk = 3;
  stepped.recovery = runtime::PreemptionRecovery::kAuto;
  stepped.swap_slots = 1;
#ifdef PROTEA_FAILPOINTS
  stepped.fail_skip = 6;
  stepped.fail_count = 3;
#endif

  runtime::TrafficEngine engine(fx.acfg, fx.qd);
  const auto a = engine.run(build_mix(fx, kRequests, kSeed), stepped);
  const runtime::SchedulerStats sa = engine.last_run();

  runtime::TrafficOptions threaded = stepped;
  threaded.threads = 4;
  threaded.mha_slots = 2;
  threaded.ffn_slots = 2;
  const auto b = engine.run(build_mix(fx, kRequests, kSeed), threaded);
  const runtime::SchedulerStats& sb = engine.last_run();

  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << i;
    ASSERT_EQ(a[i].states, b[i].states) << i;
    EXPECT_EQ(a[i].shed_reason, b[i].shed_reason) << i;
    EXPECT_EQ(a[i].admitted_round, b[i].admitted_round) << i;
    EXPECT_EQ(a[i].retired_round, b[i].retired_round) << i;
    EXPECT_EQ(a[i].latency_rounds, b[i].latency_rounds) << i;
    EXPECT_EQ(a[i].preemptions, b[i].preemptions) << i;
    EXPECT_EQ(a[i].deadline_missed, b[i].deadline_missed) << i;
  }
  for (size_t c = 0; c < runtime::kTrafficClasses; ++c) {
    expect_same_class_stats(sa.per_class[c], sb.per_class[c], "class stats");
  }
  EXPECT_EQ(sa.rounds, sb.rounds);
  EXPECT_EQ(sa.decode_steps, sb.decode_steps);
  EXPECT_EQ(sa.prefill_chunks, sb.prefill_chunks);
  EXPECT_EQ(sa.replayed_rows, sb.replayed_rows);
  EXPECT_EQ(sa.swap_bytes, sb.swap_bytes);
  EXPECT_EQ(sa.kv_blocks_peak, sb.kv_blocks_peak);
  EXPECT_EQ(sa.failpoint_trips, sb.failpoint_trips);
  EXPECT_EQ(sa.max_active, sb.max_active);
}

TEST(TrafficEngine, DeadlinesOverloadShedAndLateCompletion) {
  // One seat, preemption off: a long-running standard request finishes
  // past its deadline (kCompletedLate, bits intact), an interactive
  // request expires in the queue (kShedDeadline), and the overload
  // watermark sheds the worst-ranked queued batch request with a reason.
  TrafficFixture fx;
  runtime::TrafficEngine engine(fx.acfg, fx.qd);

  auto build = [&fx]() {
    std::vector<runtime::TrafficRequest> reqs(4);
    reqs[0].gen = make_gen_request(fx, 2, 6, 0.3f, -1, 11);
    reqs[0].priority = TrafficPriority::kStandard;
    reqs[0].arrival_round = 0;
    reqs[0].deadline_rounds = 3;  // finishes around round 6 -> late
    reqs[1].gen = make_gen_request(fx, 1, 2, 0.3f, -1, 12);
    reqs[1].priority = TrafficPriority::kInteractive;
    reqs[1].arrival_round = 1;
    reqs[1].deadline_rounds = 2;  // expires queued behind reqs[0]
    reqs[2].gen = make_gen_request(fx, 1, 2, 0.3f, -1, 13);
    reqs[2].priority = TrafficPriority::kBatch;
    reqs[2].arrival_round = 1;
    reqs[3].gen = make_gen_request(fx, 1, 2, 0.3f, -1, 14);
    reqs[3].priority = TrafficPriority::kBatch;
    reqs[3].arrival_round = 1;
    return reqs;
  };

  runtime::GenerationScheduler reference(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions ref_opts;
  ref_opts.slots = 1;
  ref_opts.kv_block_rows = 0;
  const auto expected = reference.run(to_gen(build()), ref_opts);

  runtime::TrafficOptions opts;
  opts.slots = 1;
  opts.preemption = false;
  opts.kv_block_rows = 4;
  opts.kv_pool_blocks = 6;
  opts.shed_queue_depth = 2;
  const auto results = engine.run(build(), opts);
  const auto& stats = engine.last_run();

  EXPECT_EQ(results[0].outcome, TrafficOutcome::kCompletedLate);
  EXPECT_TRUE(results[0].deadline_missed);
  EXPECT_EQ(results[0].steps, expected[0].steps);
  ASSERT_EQ(results[0].states, expected[0].states);
  EXPECT_GT(results[0].latency_rounds, 3u);

  EXPECT_EQ(results[1].outcome, TrafficOutcome::kShedDeadline);
  EXPECT_NE(results[1].shed_reason.find("deadline"), std::string::npos)
      << results[1].shed_reason;
  EXPECT_EQ(results[1].states.rows(), 0u);

  // Watermark 2 with three queued at round 1: the worst-ranked (later
  // batch submission) is rejected; the other batch request still runs.
  EXPECT_EQ(results[3].outcome, TrafficOutcome::kShedOverload);
  EXPECT_NE(results[3].shed_reason.find("watermark"), std::string::npos)
      << results[3].shed_reason;
  EXPECT_EQ(results[2].outcome, TrafficOutcome::kCompleted);
  EXPECT_EQ(results[2].steps, expected[2].steps);
  ASSERT_EQ(results[2].states, expected[2].states);

  EXPECT_EQ(stats.cls(TrafficPriority::kStandard).completed_late, 1u);
  EXPECT_EQ(stats.cls(TrafficPriority::kInteractive).shed_deadline, 1u);
  EXPECT_EQ(stats.cls(TrafficPriority::kBatch).shed_overload, 1u);
  EXPECT_EQ(stats.cls(TrafficPriority::kBatch).completed, 1u);
  EXPECT_GE(stats.total(&TrafficClassStats::deadline_misses), 2u);
}

TEST(TrafficEngine, CooperativeCancelReturnsPartialOutput) {
  // Request 0's token callback cancels request 1 mid-flight; request 1
  // retires kCancelled at the next round boundary with the bits it
  // computed so far — a prefix of its uncancelled run.
  TrafficFixture fx;
  runtime::TrafficEngine engine(fx.acfg, fx.qd);

  auto cancel_flag = std::make_shared<std::atomic<bool>>(false);
  auto invocations = std::make_shared<int>(0);
  const uint32_t d = fx.cfg.d_model;

  std::vector<runtime::TrafficRequest> reqs(2);
  reqs[0].gen.prefix = random_input(1, d, 21);
  reqs[0].gen.memory = &fx.memory;
  reqs[0].gen.max_new_tokens = 4;
  reqs[0].gen.next_token = [d, cancel_flag, invocations](
                               std::span<const float> state,
                               tensor::MatrixF& next) {
    if (++*invocations == 2) cancel_flag->store(true);
    if (next.rows() != 1 || next.cols() != d) next = tensor::MatrixF(1, d);
    for (size_t c = 0; c < d; ++c) next(0, c) = 0.3f * state[c];
    return true;
  };
  reqs[0].priority = TrafficPriority::kStandard;
  reqs[1].gen = make_gen_request(fx, 2, 8, 0.4f, -1, 22);
  reqs[1].priority = TrafficPriority::kBatch;
  reqs[1].cancel = cancel_flag;

  // Uncancelled reference for request 1 (fresh, same seed).
  runtime::GenerationScheduler reference(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions ref_opts;
  ref_opts.slots = 1;
  ref_opts.kv_block_rows = 0;
  std::vector<runtime::GenerationRequest> solo;
  solo.push_back(make_gen_request(fx, 2, 8, 0.4f, -1, 22));
  const auto expected = reference.run(solo, ref_opts);

  runtime::TrafficOptions opts;
  opts.slots = 2;
  opts.kv_block_rows = 4;
  opts.kv_pool_blocks = 8;
  const auto results = engine.run(reqs, opts);

  EXPECT_EQ(results[0].outcome, TrafficOutcome::kCompleted);
  EXPECT_EQ(results[0].steps, 4u);
  ASSERT_EQ(results[1].outcome, TrafficOutcome::kCancelled);
  EXPECT_FALSE(results[1].shed_reason.empty());
  EXPECT_LT(results[1].steps, 8u);
  const size_t partial_rows = 2 + results[1].steps;
  ASSERT_EQ(results[1].states.rows(), partial_rows);
  expect_rows_equal(results[1].states, expected[0].states, partial_rows,
                    "cancelled prefix");
  EXPECT_EQ(engine.last_run().cls(TrafficPriority::kBatch).cancelled, 1u);
}

TEST(TrafficEngine, ImpossibleRequestIsShedNotThrown) {
  // A request whose worst case can never fit the pool is rejected with
  // kShedCapacity at arrival; neighbors are unaffected.
  TrafficFixture fx;
  runtime::TrafficEngine engine(fx.acfg, fx.qd);

  std::vector<runtime::TrafficRequest> reqs(2);
  reqs[0].gen = make_gen_request(fx, fx.cfg.seq_len, 1, 0.3f, -1, 31);
  reqs[1].gen = make_gen_request(fx, 2, 2, 0.3f, -1, 32);

  runtime::TrafficOptions opts;
  opts.slots = 2;
  opts.kv_block_rows = 2;
  opts.kv_pool_blocks = 4;  // 8 rows max; request 0 needs 12
  const auto results = engine.run(reqs, opts);

  EXPECT_EQ(results[0].outcome, TrafficOutcome::kShedCapacity);
  EXPECT_FALSE(results[0].shed_reason.empty());
  EXPECT_EQ(results[0].states.rows(), 0u);
  EXPECT_EQ(results[1].outcome, TrafficOutcome::kCompleted);
  EXPECT_EQ(results[1].steps, 2u);
  EXPECT_EQ(engine.last_run().total(&TrafficClassStats::shed_capacity), 1u);
}

TEST(TrafficEngine, ThrowingCallbackFailsRequestWithoutSheddingIt) {
  // A user-supplied next_token callback that throws is a CALLER fault:
  // the request retires kFailed (with the exception message as the
  // reason), never kShedCapacity — caller bugs must not read as pool
  // pressure. Neighbors are unaffected.
  TrafficFixture fx;
  runtime::TrafficEngine engine(fx.acfg, fx.qd);

  std::vector<runtime::TrafficRequest> reqs(2);
  reqs[0].gen.prefix = random_input(2, fx.cfg.d_model, 91);
  reqs[0].gen.memory = &fx.memory;
  reqs[0].gen.max_new_tokens = 3;
  reqs[0].gen.next_token = [](std::span<const float>, tensor::MatrixF&) -> bool {
    throw std::runtime_error("callback boom");
  };
  reqs[1].gen = make_gen_request(fx, 2, 2, 0.3f, -1, 92);

  runtime::TrafficOptions opts;
  opts.slots = 2;
  opts.kv_block_rows = 4;
  opts.kv_pool_blocks = 8;
  const auto results = engine.run(reqs, opts);
  const auto& stats = engine.last_run();

  EXPECT_EQ(results[0].outcome, TrafficOutcome::kFailed);
  EXPECT_NE(results[0].shed_reason.find("callback boom"), std::string::npos)
      << results[0].shed_reason;
  EXPECT_EQ(results[1].outcome, TrafficOutcome::kCompleted);
  EXPECT_EQ(stats.total(&TrafficClassStats::failed), 1u);
  EXPECT_EQ(stats.total(&TrafficClassStats::shed_capacity), 0u);
}

TEST(TrafficEngine, StallValveForceShedsWhenPreemptionDisabled) {
  // preemption=false restores the PR-4 stall behavior: two admitted
  // sequences each need mid-decode growth the other blocks. Without
  // preemption nothing can progress, so after stall_limit no-progress
  // rounds the engine force-sheds the worst-ranked request and the
  // survivor completes with reference bits.
  TrafficFixture fx;
  runtime::TrafficEngine engine(fx.acfg, fx.qd);

  auto build = [&fx]() {
    std::vector<runtime::TrafficRequest> reqs(2);
    reqs[0].gen = make_gen_request(fx, 4, 5, 0.3f, -1, 41);
    reqs[1].gen = make_gen_request(fx, 4, 5, 0.35f, -1, 42);
    return reqs;
  };

  runtime::GenerationScheduler reference(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions ref_opts;
  ref_opts.slots = 1;
  ref_opts.kv_block_rows = 0;
  const auto expected = reference.run(to_gen(build()), ref_opts);

  runtime::TrafficOptions opts;
  opts.slots = 2;
  opts.preemption = false;
  opts.kv_block_rows = 2;
  opts.kv_pool_blocks = 5;  // each needs 5 blocks; both prompts fit (4)
  opts.stall_limit = 6;
  const auto results = engine.run(build(), opts);
  const auto& stats = engine.last_run();

  EXPECT_EQ(results[0].outcome, TrafficOutcome::kCompleted);
  EXPECT_EQ(results[0].steps, expected[0].steps);
  ASSERT_EQ(results[0].states, expected[0].states);
  EXPECT_EQ(results[1].outcome, TrafficOutcome::kShedCapacity);
  EXPECT_NE(results[1].shed_reason.find("stall"), std::string::npos)
      << results[1].shed_reason;
  EXPECT_GT(stats.total(&TrafficClassStats::kv_block_waits), 0u);
  EXPECT_EQ(stats.total(&TrafficClassStats::preemptions), 0u);
}

TEST(TrafficRobustness, SequenceScopeReleasesBlocksOnUnwind) {
  TrafficFixture fx;
  runtime::KvBlockPool pool;
  pool.configure(8, 2, fx.kv_row_bytes());
  runtime::GenerationOptions gopts;
  gopts.kv_block_rows = 2;
  gopts.kv_pool = &pool;
  runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, gopts);

  try {
    runtime::SequenceScope scope(&session);
    tensor::MatrixF states;
    session.prefill(random_input(4, fx.cfg.d_model, 51), fx.memory, states);
    EXPECT_GT(pool.used_blocks(), 0u);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(pool.used_blocks(), 0u);

  // commit() hands ownership off: the scope must NOT release.
  {
    runtime::SequenceScope scope(&session);
    tensor::MatrixF states;
    session.prefill(random_input(4, fx.cfg.d_model, 52), fx.memory, states);
    scope.commit();
  }
  EXPECT_GT(pool.used_blocks(), 0u);
  session.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(TrafficRobustness, CreditLeaseReleasesHeadroomOnUnwind) {
  runtime::KvBlockPool pool;
  pool.configure(8, 2, 192);
  try {
    runtime::KvCreditLease lease(pool);
    ASSERT_TRUE(lease.try_acquire(5));
    EXPECT_TRUE(lease.held());
    EXPECT_EQ(pool.uncommitted_free_blocks(), 3u);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(pool.uncommitted_free_blocks(), 8u);
}

#ifdef PROTEA_FAILPOINTS
TEST(TrafficRobustness, FailpointThrownMidPrefillUnwindsCleanly) {
  // A failpoint-injected KvBlockExhausted in the middle of a chunked
  // prefill must unwind through SequenceScope without stranding blocks
  // or corrupting the pool for the next sequence.
  TrafficFixture fx;
  runtime::KvBlockPool pool;
  pool.configure(8, 2, fx.kv_row_bytes());
  runtime::GenerationOptions gopts;
  gopts.kv_block_rows = 2;
  gopts.kv_pool = &pool;
  gopts.prefill_chunk = 2;
  runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, gopts);

  // Armed after construction: warm-up takes must not consume the
  // schedule. Skip the first chunk's reservation, fail the second's.
  pool.inject_failures(1, 1);
  {
    runtime::SequenceScope scope(&session);
    tensor::MatrixF states;
    EXPECT_THROW(
        session.prefill(random_input(6, fx.cfg.d_model, 61), fx.memory,
                        states),
        runtime::KvBlockExhausted);
  }
  EXPECT_EQ(pool.used_blocks(), 0u);
  EXPECT_EQ(pool.failpoint_trips(), 1u);
  pool.clear_failures();

  // The pool is healthy again: the same prefill now succeeds.
  tensor::MatrixF states;
  session.prefill(random_input(6, fx.cfg.d_model, 61), fx.memory, states);
  EXPECT_EQ(states.rows(), 6u);
  session.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);
}
#endif  // PROTEA_FAILPOINTS

TEST(TrafficRobustness, SessionSwapRoundTripIsBitExact) {
  // swap_out spills the held block bytes; prefill_begin + try_swap_in
  // restores them. Decode steps after the round trip match a never-
  // preempted session bit for bit.
  TrafficFixture fx;
  runtime::KvBlockPool pool;
  pool.configure(12, 2, fx.kv_row_bytes());
  runtime::GenerationOptions gopts;
  gopts.kv_block_rows = 2;
  gopts.kv_pool = &pool;
  const uint32_t d = fx.cfg.d_model;
  const tensor::MatrixF prompt = random_input(3, d, 71);
  constexpr size_t kSteps = 4;

  auto next_of = [d](const tensor::MatrixF& state) {
    tensor::MatrixF token(1, d);
    for (size_t c = 0; c < d; ++c) token(0, c) = 0.3f * state(state.rows() - 1, c);
    return token;
  };

  // Reference: straight-through run.
  runtime::GenerationSession ref(fx.acfg, fx.qd, nullptr, gopts);
  tensor::MatrixF ref_prefill;
  ref.prefill(prompt, fx.memory, ref_prefill);
  std::vector<tensor::MatrixF> ref_states;
  tensor::MatrixF token = next_of(ref_prefill);
  for (size_t s = 0; s < kSteps; ++s) {
    tensor::MatrixF state;
    ref.decode_step(token, state);
    ref_states.push_back(state);
    token = next_of(state);
  }

  // Victim: two steps, swap out, restore, two more steps.
  runtime::GenerationSession victim(fx.acfg, fx.qd, nullptr, gopts);
  tensor::MatrixF victim_prefill;
  victim.prefill(prompt, fx.memory, victim_prefill);
  ASSERT_EQ(victim_prefill, ref_prefill);
  token = next_of(victim_prefill);
  for (size_t s = 0; s < 2; ++s) {
    tensor::MatrixF state;
    victim.decode_step(token, state);
    ASSERT_EQ(state, ref_states[s]) << "pre-swap step " << s;
    token = next_of(state);
  }

  const size_t held = pool.used_blocks();
  std::vector<int8_t> spill;
  const size_t rows = victim.swap_out(spill);
  EXPECT_EQ(rows, prompt.rows() + 2);
  EXPECT_EQ(spill.size(), 3 * pool.block_bytes());  // ceil(5 / 2) blocks
  EXPECT_LT(pool.used_blocks(), held);

  victim.prefill_begin(fx.memory);  // recompute cross K/V, then rescatter
  ASSERT_TRUE(victim.try_swap_in(spill, rows));
  EXPECT_EQ(victim.position(), rows);
  for (size_t s = 2; s < kSteps; ++s) {
    tensor::MatrixF state;
    victim.decode_step(token, state);
    ASSERT_EQ(state, ref_states[s]) << "post-restore step " << s;
    token = next_of(state);
  }
}

TEST(TrafficRobustness, PreemptionCostMatchesExecutedReplay) {
  // The analytic recompute cost IS the executed restore re-prefill: the
  // MAC count must match the session's engine accounting exactly, and
  // the swap figure is twice the held block bytes.
  TrafficFixture fx;
  runtime::KvBlockPool pool;
  pool.configure(4, 4, fx.kv_row_bytes());
  runtime::GenerationOptions gopts;
  gopts.kv_block_rows = 4;
  gopts.kv_pool = &pool;
  runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, gopts);

  constexpr uint32_t kRows = 6;
  const uint64_t before = session.stats().macs;
  tensor::MatrixF states;
  session.prefill(random_input(kRows, fx.cfg.d_model, 81), fx.memory, states);
  const uint64_t executed = session.stats().macs - before;

  const auto cost = accel::estimate_preemption_cost(
      fx.acfg, fx.cfg, kRows, static_cast<uint32_t>(fx.memory.rows()), 4);
  EXPECT_EQ(cost.recompute_macs, executed);
  EXPECT_EQ(cost.swap_bytes, 2 * session.swap_bytes());
  const auto fp = accel::estimate_kv_footprint(fx.cfg, kRows, 4);
  EXPECT_EQ(cost.swap_bytes, 2 * fp.paged_bytes);
  EXPECT_GT(cost.swap_ms, 0.0);
  EXPECT_GT(cost.recompute_ms, 0.0);
  EXPECT_EQ(cost.prefer_swap, cost.swap_ms < cost.recompute_ms);

  EXPECT_THROW(accel::estimate_preemption_cost(fx.acfg, fx.cfg, 0, 8, 4),
               std::invalid_argument);
  EXPECT_THROW(accel::estimate_preemption_cost(fx.acfg, fx.cfg, 6, 8, 0),
               std::invalid_argument);
}

TEST(TrafficTrace, GeneratorIsDeterministicAndBounded) {
  runtime::TraceConfig cfg;
  cfg.requests = 200;
  cfg.beam_fraction = 0.1;
  cfg.cancel_on_deadline_fraction = 0.2;
  cfg.seed = 42;

  const auto a = runtime::generate_trace(cfg);
  const auto b = runtime::generate_trace(cfg);
  ASSERT_EQ(a.size(), cfg.requests);
  ASSERT_EQ(b.size(), cfg.requests);

  size_t classes[runtime::kTrafficClasses] = {0, 0, 0};
  size_t sampled = 0, beam = 0, with_deadline = 0, without_deadline = 0;
  size_t cancel = 0;
  uint32_t prev_arrival = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_round, b[i].arrival_round) << i;
    EXPECT_EQ(a[i].prompt_rows, b[i].prompt_rows) << i;
    EXPECT_EQ(a[i].max_new, b[i].max_new) << i;
    EXPECT_EQ(a[i].priority, b[i].priority) << i;
    EXPECT_EQ(a[i].deadline_rounds, b[i].deadline_rounds) << i;
    EXPECT_EQ(a[i].cancel_on_deadline, b[i].cancel_on_deadline) << i;
    EXPECT_EQ(a[i].sampled, b[i].sampled) << i;
    EXPECT_EQ(a[i].beam, b[i].beam) << i;
    EXPECT_EQ(a[i].policy_seed, b[i].policy_seed) << i;

    EXPECT_GE(a[i].arrival_round, prev_arrival) << i;
    prev_arrival = a[i].arrival_round;
    EXPECT_GE(a[i].prompt_rows, cfg.min_prompt) << i;
    EXPECT_LE(a[i].prompt_rows, cfg.max_prompt) << i;
    EXPECT_GE(a[i].max_new, cfg.min_new) << i;
    EXPECT_LE(a[i].max_new, cfg.max_new) << i;
    EXPECT_FALSE(a[i].sampled && a[i].beam) << i;
    if (a[i].cancel_on_deadline) EXPECT_GT(a[i].deadline_rounds, 0u) << i;

    ++classes[static_cast<size_t>(a[i].priority)];
    sampled += a[i].sampled;
    beam += a[i].beam;
    with_deadline += a[i].deadline_rounds > 0;
    without_deadline += a[i].deadline_rounds == 0;
    cancel += a[i].cancel_on_deadline;
  }
  // 200 draws at these fractions hit every bucket.
  for (size_t c = 0; c < runtime::kTrafficClasses; ++c) {
    EXPECT_GT(classes[c], 0u) << "priority class " << c;
  }
  EXPECT_GT(sampled, 0u);
  EXPECT_GT(beam, 0u);
  EXPECT_GT(with_deadline, 0u);
  EXPECT_GT(without_deadline, 0u);
  EXPECT_GT(cancel, 0u);

  runtime::TraceConfig other = cfg;
  other.seed = 43;
  const auto c2 = runtime::generate_trace(other);
  bool any_diff = false;
  for (size_t i = 0; i < c2.size() && !any_diff; ++i) {
    any_diff = c2[i].arrival_round != a[i].arrival_round ||
               c2[i].prompt_rows != a[i].prompt_rows ||
               c2[i].max_new != a[i].max_new;
  }
  EXPECT_TRUE(any_diff);

  runtime::TraceConfig bad = cfg;
  bad.min_prompt = 0;
  EXPECT_THROW(runtime::generate_trace(bad), std::invalid_argument);
}

}  // namespace
}  // namespace protea
