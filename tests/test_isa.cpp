// Tests for the ISA: instruction encode/decode, assembly text round-trip,
// the CSR file, and the MicroBlaze-style controller (runtime
// programmability with bound-checking — the paper's §IV-D).
#include <gtest/gtest.h>

#include "accel/quantized_model.hpp"
#include "isa/controller.hpp"
#include "isa/csr.hpp"
#include "isa/instruction.hpp"
#include "ref/encoder.hpp"
#include "tensor/ops.hpp"

namespace protea::isa {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = 2;
  return c;
}

// --- instruction encoding ------------------------------------------------------

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(OpcodeRoundTrip, EncodeDecodeIdentity) {
  for (uint32_t operand : {0u, 1u, 768u, 0xFFFFFFFFu}) {
    const Instruction inst{GetParam(), operand};
    EXPECT_EQ(decode(encode(inst)), inst);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Values(Opcode::kNop, Opcode::kSetSeqLen, Opcode::kSetDModel,
                      Opcode::kSetHeads, Opcode::kSetLayers,
                      Opcode::kSetActivation, Opcode::kLoadWeights,
                      Opcode::kLoadInput, Opcode::kRun, Opcode::kHalt));

TEST(Instruction, EncodingLayout) {
  const Instruction inst{Opcode::kSetSeqLen, 64};
  const uint64_t word = encode(inst);
  EXPECT_EQ(word >> 56, 0x01u);
  EXPECT_EQ(word & 0xFFFFFFFFu, 64u);
}

TEST(Instruction, TextRoundTrip) {
  const std::vector<Instruction> program = {
      {Opcode::kSetSeqLen, 64},   {Opcode::kSetDModel, 768},
      {Opcode::kSetHeads, 8},     {Opcode::kSetLayers, 12},
      {Opcode::kLoadWeights, 0},  {Opcode::kLoadInput, 1},
      {Opcode::kRun, 0},          {Opcode::kHalt, 0},
  };
  EXPECT_EQ(parse_program(format_program(program)), program);
}

TEST(Instruction, ParseSkipsCommentsAndBlankLines) {
  const auto program = parse_program(
      "# configure the BERT variant\n"
      "\n"
      "set_seq_len 64\n"
      "   # indented comment\n"
      "run 0\n");
  ASSERT_EQ(program.size(), 2u);
  EXPECT_EQ(program[0].op, Opcode::kSetSeqLen);
  EXPECT_EQ(program[1].op, Opcode::kRun);
}

TEST(Instruction, ParseErrors) {
  EXPECT_THROW(parse_instruction("frobnicate 3"), std::invalid_argument);
  EXPECT_THROW(parse_instruction("set_seq_len"), std::invalid_argument);
  EXPECT_THROW(parse_instruction("set_seq_len abc"), std::invalid_argument);
  EXPECT_THROW(parse_instruction(""), std::invalid_argument);
}

TEST(Instruction, ToStringForms) {
  EXPECT_EQ(to_string({Opcode::kSetHeads, 8}), "set_heads 8");
  EXPECT_EQ(to_string({Opcode::kHalt, 0}), "halt");
  EXPECT_EQ(to_string({Opcode::kNop, 0}), "nop");
}

// --- CSR file ----------------------------------------------------------------------

TEST(Csr, ConfigRegistersReadBack) {
  CsrFile csr;
  csr.write(CsrAddr::kSeqLen, 64);
  csr.write(CsrAddr::kDModel, 768);
  csr.write(CsrAddr::kHeads, 8);
  csr.write(CsrAddr::kLayers, 12);
  csr.write(CsrAddr::kActivation, 1);
  EXPECT_EQ(csr.read(CsrAddr::kSeqLen), 64u);
  EXPECT_EQ(csr.read(CsrAddr::kDModel), 768u);
  EXPECT_EQ(csr.read(CsrAddr::kHeads), 8u);
  EXPECT_EQ(csr.read(CsrAddr::kLayers), 12u);
  EXPECT_EQ(csr.read(CsrAddr::kActivation), 1u);
}

TEST(Csr, StartPulseAndStatus) {
  CsrFile csr;
  EXPECT_FALSE(csr.start_pending());
  csr.write(CsrAddr::kCtrl, 1);
  EXPECT_TRUE(csr.start_pending());
  EXPECT_EQ(csr.read(CsrAddr::kCtrl), 1u);
  csr.clear_start();
  EXPECT_FALSE(csr.start_pending());

  csr.set_done(true);
  EXPECT_EQ(csr.read(CsrAddr::kStatus), 1u);
  csr.set_error(7);
  EXPECT_EQ(csr.read(CsrAddr::kStatus), 3u);
  EXPECT_EQ(csr.read(CsrAddr::kErrorCode), 7u);
}

TEST(Csr, ReadOnlyRegistersRejectWrites) {
  CsrFile csr;
  EXPECT_THROW(csr.write(CsrAddr::kStatus, 1), std::invalid_argument);
  EXPECT_THROW(csr.write(CsrAddr::kErrorCode, 1), std::invalid_argument);
}

// --- controller -----------------------------------------------------------------------

struct ControllerFixture {
  ref::ModelConfig config = small_config();
  ref::EncoderWeights weights;
  tensor::MatrixF input;
  accel::AccelConfig accel_config;
  accel::ProteaAccelerator accelerator;
  Controller controller;

  ControllerFixture()
      : weights(ref::make_random_weights(config, 71)),
        input(ref::make_random_input(config, 72)),
        accelerator(accel_config),
        controller(accelerator) {
    controller.bind_weights(0, accel::prepare_model(weights, input));
    controller.bind_input(0, input);
  }
};

TEST(Controller, AssembledProgramRuns) {
  ControllerFixture fx;
  const auto program = assemble_program(fx.config, 0, 0);
  const auto results = fx.controller.execute(program);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].config.seq_len, fx.config.seq_len);
  EXPECT_GT(results[0].perf.total_cycles, 0u);
  EXPECT_TRUE(fx.controller.csr().done());
  EXPECT_FALSE(fx.controller.csr().error());
}

TEST(Controller, MatchesDirectAcceleratorUse) {
  ControllerFixture fx;
  const auto results =
      fx.controller.execute(assemble_program(fx.config, 0, 0));
  ASSERT_EQ(results.size(), 1u);

  accel::ProteaAccelerator direct(fx.accel_config);
  direct.load_model(accel::prepare_model(fx.weights, fx.input));
  EXPECT_EQ(results[0].output, direct.forward(fx.input));
}

TEST(Controller, RejectsOversizedProgramAndContinues) {
  ControllerFixture fx;
  // First run: d_model exceeding synthesis -> rejected via CSR error.
  std::vector<Instruction> program = {
      {Opcode::kSetSeqLen, 16},  {Opcode::kSetDModel, 4096},
      {Opcode::kSetHeads, 4},    {Opcode::kSetLayers, 2},
      {Opcode::kSetActivation, 0},
      {Opcode::kLoadWeights, 0}, {Opcode::kLoadInput, 0},
      {Opcode::kRun, 0},
  };
  // Second run: the valid program.
  const auto good = assemble_program(fx.config, 0, 0);
  program.insert(program.end(), good.begin(), good.end());

  const auto results = fx.controller.execute(program);
  ASSERT_EQ(results.size(), 1u);  // only the valid run executed
  EXPECT_EQ(fx.controller.rejected_runs(), 1u);
  EXPECT_FALSE(fx.controller.csr().error());  // cleared by the good run
}

TEST(Controller, RejectsProgramMismatchedWithLoadedWeights) {
  ControllerFixture fx;
  ref::ModelConfig wrong = fx.config;
  wrong.d_model = 32;  // weights were built for 64
  wrong.num_heads = 2;
  const auto results =
      fx.controller.execute(assemble_program(wrong, 0, 0));
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(fx.controller.rejected_runs(), 1u);
  EXPECT_TRUE(fx.controller.csr().error());
}

TEST(Controller, RunWithoutLoadThrows) {
  ControllerFixture fx;
  const std::vector<Instruction> program = {
      {Opcode::kSetSeqLen, 16}, {Opcode::kSetDModel, 64},
      {Opcode::kSetHeads, 4},   {Opcode::kSetLayers, 2},
      {Opcode::kRun, 0},
  };
  EXPECT_THROW(fx.controller.execute(program), std::logic_error);
}

TEST(Controller, UnboundSlotsThrow) {
  ControllerFixture fx;
  EXPECT_THROW(fx.controller.execute({{Opcode::kLoadWeights, 9}}),
               std::out_of_range);
  EXPECT_THROW(fx.controller.execute({{Opcode::kLoadInput, 9}}),
               std::out_of_range);
}

TEST(Controller, HaltStopsExecution) {
  ControllerFixture fx;
  std::vector<Instruction> program = {{Opcode::kHalt, 0}};
  const auto good = assemble_program(fx.config, 0, 0);
  program.insert(program.end(), good.begin(), good.end());
  EXPECT_TRUE(fx.controller.execute(program).empty());
}

TEST(Controller, ReprogramLayersBetweenRunsWithoutReload) {
  // The headline feature: run the same loaded weights as a 2-layer and
  // then a 1-layer encoder without touching the "hardware".
  ControllerFixture fx;
  auto program = assemble_program(fx.config, 0, 0);
  program.pop_back();  // drop halt
  ref::ModelConfig one_layer = fx.config;
  one_layer.num_layers = 1;
  program.push_back({Opcode::kSetLayers, 1});
  program.push_back({Opcode::kRun, 1});
  program.push_back({Opcode::kHalt, 0});

  const auto results = fx.controller.execute(program);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.num_layers, 2u);
  EXPECT_EQ(results[1].config.num_layers, 1u);
  EXPECT_LT(results[1].perf.total_cycles, results[0].perf.total_cycles);
}

TEST(Controller, InputShapeMismatchThrows) {
  ControllerFixture fx;
  // Program claims SL=8 but the bound input has SL=16 rows.
  ref::ModelConfig cfg = fx.config;
  cfg.seq_len = 8;
  EXPECT_THROW(fx.controller.execute(assemble_program(cfg, 0, 0)),
               std::invalid_argument);
}

TEST(AssembleProgram, EmitsCanonicalSequence) {
  const auto program = assemble_program(small_config(), 3, 4, 5);
  ASSERT_EQ(program.size(), 9u);
  EXPECT_EQ(program[0].op, Opcode::kSetSeqLen);
  EXPECT_EQ(program[5].op, Opcode::kLoadWeights);
  EXPECT_EQ(program[5].operand, 3u);
  EXPECT_EQ(program[6].operand, 4u);
  EXPECT_EQ(program[7].op, Opcode::kRun);
  EXPECT_EQ(program[7].operand, 5u);
  EXPECT_EQ(program.back().op, Opcode::kHalt);
}

TEST(AssembleProgram, ValidatesModel) {
  ref::ModelConfig bad = small_config();
  bad.num_heads = 3;  // 64 % 3 != 0
  EXPECT_THROW(assemble_program(bad, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace protea::isa
