// Tests for the runtime telemetry subsystem (runtime/telemetry.hpp):
//
//   * the tentpole determinism gate — with telemetry armed, the traffic
//     engine's VIRTUAL-TIME event sequence (type, seq, round, payloads)
//     is bit-identical between the stepped loop and the worker-pool
//     mode under a preemption storm; wall_ns is a non-compared
//     annotation, and arming telemetry never perturbs outputs;
//   * histogram percentiles against a sorted-reference nearest-rank
//     computation — exact below the linear range, within the 1/8
//     relative-error bound above it, never past the observed max;
//   * ring wraparound keeps the NEWEST `capacity` events while total()
//     and the per-type counters keep counting;
//   * steady-state recording and histogram observation are
//     allocation-free (global operator-new counter, the PR-4 pin
//     pattern);
//   * exporters: Chrome-trace JSON wraps the expected tracks, metric
//     samples carry the percentile vocabulary;
//   * compiled-out builds (PROTEA_TELEMETRY off): configure and the
//     registry setters throw std::logic_error, record/observe are inert
//     no-ops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/traffic.hpp"
#include "util/rng.hpp"

// --- global allocation counter ----------------------------------------------
// Every operator new in this binary bumps g_alloc_count; the zero-alloc
// test reads the counter around steady-state recording. Deletes are not
// counted (free is allocation-free by definition here).

namespace {
std::atomic<uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  ++g_alloc_count;
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace protea {
namespace {

using runtime::Telemetry;
using runtime::TraceEvent;
using runtime::TraceEventType;
using runtime::TraceRecorder;
using runtime::TrafficPriority;

#ifdef PROTEA_TELEMETRY

// --- traffic-engine fixture (mirrors tests/test_traffic.cpp) ----------------

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct TrafficFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit TrafficFixture(uint64_t seed = 500) {
    cfg.seq_len = 12;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(8, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }
};

runtime::GenerationRequest make_gen_request(const TrafficFixture& fx,
                                            size_t prefix_rows,
                                            uint32_t max_new, float scale,
                                            int eos_after, uint64_t seed) {
  runtime::GenerationRequest req;
  req.prefix = random_input(prefix_rows, fx.cfg.d_model, seed);
  req.memory = &fx.memory;
  req.max_new_tokens = max_new;
  const uint32_t d = fx.cfg.d_model;
  auto countdown = std::make_shared<int>(eos_after);
  req.next_token = [d, scale, countdown](std::span<const float> state,
                                         tensor::MatrixF& next) {
    if (*countdown == 0) return false;
    if (*countdown > 0) --*countdown;
    if (next.rows() != 1 || next.cols() != d) next = tensor::MatrixF(1, d);
    for (size_t c = 0; c < d; ++c) next(0, c) = scale * state[c];
    return true;
  };
  return req;
}

std::vector<runtime::TrafficRequest> build_mix(const TrafficFixture& fx,
                                               size_t count, uint64_t seed) {
  std::vector<runtime::TrafficRequest> requests;
  util::Xoshiro256 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    size_t prefix_rows = 1 + rng.next() % (fx.cfg.seq_len - 2);
    uint32_t max_new = static_cast<uint32_t>(
        std::min<size_t>(rng.next() % 7, fx.cfg.seq_len + 1 - prefix_rows));
    if (i == 0) {  // capacity edge: full-length prompt
      prefix_rows = fx.cfg.seq_len;
      max_new = 1;
    }
    const float scale = 0.25f + 0.05f * static_cast<float>(i % 5);
    const int eos_after =
        (i % 3 == 2) ? static_cast<int>(rng.next() % 3) : -1;
    runtime::TrafficRequest req;
    req.gen = make_gen_request(fx, prefix_rows, max_new, scale, eos_after,
                               seed + 10 + i);
    req.priority = static_cast<TrafficPriority>(i % 3);
    req.arrival_round = static_cast<uint32_t>(i / 2);
    requests.push_back(std::move(req));
  }
  return requests;
}

TEST(Telemetry, SteppedAndThreadedVirtualSequencesBitIdentical) {
  // The tentpole determinism gate: a preemption storm (pool too small
  // for the working set, kAuto recovery so both swap and recompute
  // fire, failpoints layered on top) recorded by two independent
  // Telemetry bundles — the stepped and threaded traces must agree on
  // EVERY deterministic field of EVERY event, and the virtual-time
  // histograms must be identical distributions. Only wall_ns differs.
  TrafficFixture fx;
  constexpr size_t kRequests = 10;
  constexpr uint64_t kSeed = 2000;

  runtime::TrafficOptions stepped;
  stepped.slots = 3;
  stepped.kv_block_rows = 2;
  stepped.kv_pool_blocks = 8;
  stepped.prefill_chunk = 3;
  stepped.recovery = runtime::PreemptionRecovery::kAuto;
  stepped.swap_slots = 1;
#ifdef PROTEA_FAILPOINTS
  stepped.fail_skip = 6;
  stepped.fail_count = 3;
#endif
  Telemetry tel_a;
  tel_a.configure();
  stepped.telemetry = &tel_a;

  runtime::TrafficEngine engine(fx.acfg, fx.qd);
  const auto a = engine.run(build_mix(fx, kRequests, kSeed), stepped);

  runtime::TrafficOptions threaded = stepped;
  threaded.threads = 4;
  threaded.mha_slots = 2;
  threaded.ffn_slots = 2;
  Telemetry tel_b;
  tel_b.configure();
  threaded.telemetry = &tel_b;
  const auto b = engine.run(build_mix(fx, kRequests, kSeed), threaded);

  // Outputs stay bit-identical with telemetry armed (the hooks must not
  // perturb the schedule).
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << i;
    EXPECT_EQ(a[i].steps, b[i].steps) << i;
    ASSERT_EQ(a[i].states, b[i].states) << i;
  }

  const std::vector<TraceEvent> ea = tel_a.trace.snapshot();
  const std::vector<TraceEvent> eb = tel_b.trace.snapshot();
  EXPECT_EQ(tel_a.trace.total(), tel_b.trace.total());
  ASSERT_EQ(ea.size(), eb.size());
  EXPECT_TRUE(virtual_equal(ea, eb));
  for (size_t i = 0; i < ea.size(); ++i) {
    ASSERT_TRUE(virtual_equal(ea[i], eb[i]))
        << "event " << i << ": " << runtime::trace_event_name(ea[i].type)
        << " vs " << runtime::trace_event_name(eb[i].type);
  }

  // The storm actually exercised the lifecycle: every stage left
  // events behind.
  for (const TraceEventType t :
       {TraceEventType::kAdmit, TraceEventType::kPrefillChunk,
        TraceEventType::kDecodeStep, TraceEventType::kPreempt,
        TraceEventType::kRestore, TraceEventType::kComplete,
        TraceEventType::kPoolOccupancy}) {
    EXPECT_GT(tel_a.trace.count(t), 0u) << runtime::trace_event_name(t);
    EXPECT_EQ(tel_a.trace.count(t), tel_b.trace.count(t))
        << runtime::trace_event_name(t);
  }
  EXPECT_EQ(tel_a.trace.count(TraceEventType::kAdmit), kRequests);

  // Virtual-time histograms are identical distributions; wall-clock
  // instruments (ttft_us) are intentionally exempt.
  const auto expect_same_hist = [](const runtime::Histogram& x,
                                   const runtime::Histogram& y,
                                   const char* what) {
    EXPECT_EQ(x.count(), y.count()) << what;
    EXPECT_EQ(x.sum(), y.sum()) << what;
    EXPECT_EQ(x.min(), y.min()) << what;
    EXPECT_EQ(x.max(), y.max()) << what;
    for (const double p : {50.0, 95.0, 99.0}) {
      EXPECT_EQ(x.percentile(p), y.percentile(p)) << what << " p" << p;
    }
  };
  expect_same_hist(*tel_a.ttft_rounds, *tel_b.ttft_rounds, "ttft_rounds");
  expect_same_hist(*tel_a.queue_wait_rounds, *tel_b.queue_wait_rounds,
                   "queue_wait_rounds");
  expect_same_hist(*tel_a.token_gap_rounds, *tel_b.token_gap_rounds,
                   "token_gap_rounds");
  expect_same_hist(*tel_a.preempt_downtime_rounds,
                   *tel_b.preempt_downtime_rounds,
                   "preempt_downtime_rounds");
  expect_same_hist(*tel_a.pool_occupancy_blocks,
                   *tel_b.pool_occupancy_blocks, "pool_occupancy_blocks");
  EXPECT_GT(tel_a.ttft_rounds->count(), 0u);
  EXPECT_GT(tel_a.preempt_downtime_rounds->count(), 0u);

  // The exporters see the same storm: spans + counter track present.
  const std::string json = runtime::chrome_trace_json(ea);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  const auto samples = runtime::metric_samples(tel_a);
  EXPECT_FALSE(samples.empty());
  bool saw_p99 = false;
  for (const auto& s : samples) saw_p99 |= s.metric == "p99";
  EXPECT_TRUE(saw_p99);
}

TEST(Telemetry, HistogramMatchesSortedReference) {
  // Nearest-rank percentiles against the sorted reference: exact in the
  // linear range, within the documented 1/8 relative error above it,
  // and never past the observed maximum (the top bucket's bound is
  // clipped to the true max).
  util::Xoshiro256 rng(77);
  std::vector<uint64_t> values;
  runtime::Histogram hist;
  for (size_t i = 0; i < 4000; ++i) {
    // Mixed regimes: exact small values, mid-range, heavy tail.
    uint64_t v = 0;
    switch (i % 3) {
      case 0: v = rng.next() % 64; break;
      case 1: v = 64 + rng.next() % 4000; break;
      default: v = (rng.next() % 1000) * (rng.next() % 1000); break;
    }
    values.push_back(v);
    hist.observe(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(hist.count(), values.size());
  EXPECT_EQ(hist.min(), values.front());
  EXPECT_EQ(hist.max(), values.back());

  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0,
                         99.9, 100.0}) {
    const size_t rank = static_cast<size_t>(
        std::max<double>(1.0, std::ceil(p / 100.0 *
                                        static_cast<double>(values.size()))));
    const uint64_t ref = values[rank - 1];
    const uint64_t got = hist.percentile(p);
    if (ref < runtime::Histogram::kLinearMax) {
      EXPECT_EQ(got, ref) << "p" << p;
    } else {
      EXPECT_GE(got, ref) << "p" << p;
      EXPECT_LE(got, ref + ref / runtime::Histogram::kSubBuckets)
          << "p" << p;
    }
    EXPECT_LE(got, hist.max()) << "p" << p;
  }
}

TEST(Telemetry, RingWraparoundKeepsNewest) {
  TraceRecorder rec;
  rec.configure(8);
  ASSERT_TRUE(rec.configured());
  for (uint32_t i = 0; i < 20; ++i) {
    rec.set_round(i);
    rec.record(TraceEventType::kDecodeStep, i, i * 10, 0);
  }
  EXPECT_EQ(rec.total(), 20u);
  EXPECT_EQ(rec.count(TraceEventType::kDecodeStep), 20u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    const uint32_t want = static_cast<uint32_t>(12 + i);  // newest 8
    EXPECT_EQ(events[i].seq, want);
    EXPECT_EQ(events[i].round, want);
    EXPECT_EQ(events[i].a, want * 10);
  }
  rec.clear();
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(Telemetry, SteadyStateRecordingDoesNotAllocate) {
  // The zero-alloc pin: once configured, recording events (through ring
  // wraparound), observing histograms and bumping counters/gauges must
  // not touch the heap.
  Telemetry tel;
  tel.configure(runtime::TelemetryOptions{.trace_capacity = 256});
  runtime::Counter& ctr = tel.metrics.add_counter("pin_counter");
  runtime::Gauge& gauge = tel.metrics.add_gauge("pin_gauge");
  runtime::Histogram& hist = *tel.metrics.find_histogram("ttft_rounds");

  const uint64_t before = g_alloc_count.load();
  for (uint32_t i = 0; i < 2048; ++i) {  // 8x the ring: wraps repeatedly
    tel.trace.set_round(i);
    tel.trace.record(TraceEventType::kDecodeStep, i % 7, i, i * 3);
    hist.observe(i % 977);
    ctr.add(1);
    gauge.set(static_cast<double>(i));
  }
  const uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(tel.trace.total(), 2048u);
  EXPECT_EQ(ctr.value(), 2048u);
}

#else  // !PROTEA_TELEMETRY

TEST(Telemetry, SettersThrowWhenCompiledOut) {
  // Compiled-out contract (mirror of the failpoint setters): anything
  // that would enable telemetry throws, everything read-only or on the
  // hot path is an inert no-op.
  Telemetry tel;
  EXPECT_THROW(tel.configure(), std::logic_error);
  EXPECT_FALSE(tel.enabled());
  EXPECT_THROW(tel.metrics.add_counter("x"), std::logic_error);
  EXPECT_THROW(tel.metrics.add_gauge("x"), std::logic_error);
  EXPECT_THROW(tel.metrics.add_histogram("x"), std::logic_error);
  EXPECT_EQ(tel.metrics.find_counter("x"), nullptr);

  TraceRecorder rec;
  EXPECT_THROW(rec.configure(16), std::logic_error);
  EXPECT_FALSE(rec.configured());
  rec.record(TraceEventType::kAdmit, 0);  // inert, must not crash
  rec.set_round(3);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_TRUE(runtime::metric_samples(tel).empty());
}

#endif  // PROTEA_TELEMETRY

}  // namespace
}  // namespace protea
