// Tests for the cross-request prefix cache (runtime/prefix_cache.hpp):
// bit-identity of adopted-prefix decoding against cold prefill across
// prefix lengths, block sizes, chunk sizes and COW forks; exact
// agreement of the executed MAC savings with the perf model
// (estimate_prefix_cache_savings); LRU eviction under pool pressure
// that never touches a live table; and pool drain after teardown —
// plus the scheduler and traffic-engine integrations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/prefix_cache.hpp"
#include "runtime/traffic.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 12;
  c.d_model = 48;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = ref::Activation::kGelu;
  return c;
}

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct Fixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit Fixture(uint64_t seed = 90) {
    cfg = small_config();
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(6, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }

  size_t row_bytes() const {
    return cfg.num_layers * cfg.num_heads * 2 * cfg.head_dim();
  }
};

/// Feeds prompt rows [from, prompt.rows()) in `chunk`-row passes
/// (0 = one pass), accumulating the per-chunk outputs into `out` — the
/// schedule the scheduler/traffic engines execute and the one
/// estimate_prefill_performance models.
void feed_chunks(runtime::GenerationSession& s, const tensor::MatrixF& prompt,
                 size_t from, size_t chunk, tensor::MatrixF& out) {
  tensor::MatrixF part;
  size_t pos = from;
  while (pos < prompt.rows()) {
    const size_t n =
        chunk == 0 ? prompt.rows() - pos : std::min(chunk, prompt.rows() - pos);
    s.prefill_rows(prompt.slice_rows(pos, n), part, nullptr);
    for (size_t r = 0; r < n; ++r) {
      std::copy(part.row(r).begin(), part.row(r).end(),
                out.row(pos + r).begin());
    }
    pos += n;
  }
}

// --- adoption bit-identity + exact modeled savings ---------------------------

TEST(PrefixCache, AdoptedDecodeBitIdenticalAndSavingsExact) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const auto tok0 = random_input(1, d, 101);
  const auto tok1 = random_input(1, d, 102);

  for (const size_t br : {size_t{2}, size_t{4}}) {
    for (const size_t chunk : {size_t{0}, size_t{1}, size_t{3}}) {
      for (const size_t plen : {size_t{3}, size_t{4}, size_t{7}, size_t{8}}) {
        SCOPED_TRACE("br=" + std::to_string(br) + " chunk=" +
                     std::to_string(chunk) + " plen=" + std::to_string(plen));
        const auto prompt = random_input(plen, d, 200 + plen);

        runtime::KvBlockPool pool;
        pool.configure(64, br, fx.row_bytes());
        runtime::PrefixCache cache;
        cache.configure(pool, br, d);
        const runtime::GenerationOptions opts{.kv_block_rows = br,
                                              .kv_pool = &pool,
                                              .prefill_chunk = chunk};

        // Dense-reference ground truth (private pool, one-shot prefill).
        runtime::GenerationSession ref_sess(fx.acfg, fx.qd);
        tensor::MatrixF ref_states, ref_d0, ref_d1;
        ref_sess.prefill(prompt, fx.memory, ref_states);
        ref_sess.decode_step(tok0, ref_d0);
        ref_sess.decode_step(tok1, ref_d1);

        // Cold paged run: miss path, then publish the finished prompt.
        accel::EngineStats cs;
        runtime::GenerationSession cold(fx.acfg, fx.qd, &cs, opts);
        const uint64_t cold0 = cs.macs;
        tensor::MatrixF cold_states(plen, d);
        cold.prefill_begin(fx.memory, nullptr);
        feed_chunks(cold, prompt, 0, chunk, cold_states);
        const uint64_t cold_prefill = cs.macs - cold0;
        cache.publish_cross(fx.memory, cold.cache());
        cold.publish_prefix(cache, prompt, fx.memory, cold_states);
        EXPECT_EQ(cold_states, ref_states);
        tensor::MatrixF cold_d0, cold_d1;
        cold.decode_step(tok0, cold_d0);
        cold.decode_step(tok1, cold_d1);
        EXPECT_EQ(cold_d0, ref_d0);
        EXPECT_EQ(cold_d1, ref_d1);
        cold.end_sequence();

        // Warm run: adoption must cover every full block but the tail.
        accel::EngineStats ws;
        runtime::GenerationSession warm(fx.acfg, fx.qd, &ws, opts);
        const uint64_t warm0 = ws.macs;
        tensor::MatrixF warm_states(plen, d);  // a miss leaves it untouched
        const size_t adopted =
            warm.prefill_begin_cached(cache, prompt, fx.memory, warm_states);
        EXPECT_EQ(adopted, (plen - 1) / br * br);
        feed_chunks(warm, prompt, adopted, chunk, warm_states);
        const uint64_t warm_prefill = ws.macs - warm0;
        EXPECT_EQ(warm_states, ref_states);
        tensor::MatrixF warm_d0, warm_d1;
        warm.decode_step(tok0, warm_d0);
        warm.decode_step(tok1, warm_d1);
        EXPECT_EQ(warm_d0, ref_d0);
        EXPECT_EQ(warm_d1, ref_d1);

        // Executed savings must match the perf model EXACTLY.
        accel::GenerationCosting costing;
        costing.prefill_chunk = static_cast<uint32_t>(chunk);
        costing.adopted_rows = static_cast<uint32_t>(adopted);
        costing.cross_cached = true;
        const accel::PrefixCacheSavings sv = accel::estimate_prefix_cache_savings(
            fx.acfg, fx.cfg, static_cast<uint32_t>(plen),
            static_cast<uint32_t>(fx.memory.rows()), costing);
        EXPECT_EQ(cold_prefill - warm_prefill, sv.macs_saved);
        EXPECT_EQ(sv.rows_skipped, adopted);
        EXPECT_EQ(sv.kv_bytes, adopted * pool.row_bytes());
        EXPECT_EQ(sv.cross_bytes, fx.cfg.num_layers * fx.cfg.num_heads * 2 *
                                      fx.memory.rows() * fx.cfg.head_dim());

        // Runtime accounting mirrors the same quantities (zero adoptable
        // blocks — e.g. plen <= br — is a counted miss, not a hit).
        EXPECT_EQ(ws.prefix_hits, adopted > 0 ? 1u : 0u);
        EXPECT_EQ(ws.prefix_misses, adopted > 0 ? 0u : 1u);
        EXPECT_EQ(ws.prefix_rows_adopted, adopted);
        EXPECT_EQ(ws.cross_kv_hits, 1u);
        EXPECT_EQ(ws.prefix_bytes_saved, sv.kv_bytes + sv.cross_bytes);

        // Teardown drains the pool completely.
        warm.end_sequence();
        cache.clear();
        EXPECT_EQ(pool.used_blocks(), 0u);
      }
    }
  }
}

TEST(PrefixCache, CrossOnlyReuseSavesExactlyTheProjection) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const size_t br = 4;
  runtime::KvBlockPool pool;
  pool.configure(32, br, fx.row_bytes());
  runtime::PrefixCache cache;
  cache.configure(pool, br, d);
  const runtime::GenerationOptions opts{.kv_block_rows = br, .kv_pool = &pool};

  const auto prompt_a = random_input(5, d, 301);
  const auto prompt_b = random_input(5, d, 302);  // differs from row 0

  accel::EngineStats cs;
  runtime::GenerationSession cold(fx.acfg, fx.qd, &cs, opts);
  const uint64_t cold0 = cs.macs;
  tensor::MatrixF states_a(5, d);
  cold.prefill_begin(fx.memory, nullptr);
  feed_chunks(cold, prompt_a, 0, 0, states_a);
  const uint64_t cold_prefill = cs.macs - cold0;
  cache.publish_cross(fx.memory, cold.cache());
  cold.end_sequence();

  // Same memory, unrelated prompt: cross hit, prefix miss.
  accel::EngineStats ws;
  runtime::GenerationSession warm(fx.acfg, fx.qd, &ws, opts);
  const uint64_t warm0 = ws.macs;
  tensor::MatrixF states_b(5, d);
  bool cross_hit = false;
  const size_t adopted = warm.prefill_begin_cached(cache, prompt_b, fx.memory,
                                                   states_b, nullptr,
                                                   &cross_hit);
  EXPECT_EQ(adopted, 0u);
  EXPECT_TRUE(cross_hit);
  feed_chunks(warm, prompt_b, 0, 0, states_b);
  const uint64_t warm_prefill = ws.macs - warm0;

  // The delta is exactly the one-time cross projection: 2 s d d per layer.
  const uint64_t s = fx.memory.rows();
  EXPECT_EQ(cold_prefill - warm_prefill,
            uint64_t{fx.cfg.num_layers} * 2 * s * d * d);
  EXPECT_EQ(ws.cross_kv_hits, 1u);
  EXPECT_EQ(ws.prefix_misses, 1u);
  warm.end_sequence();
  cache.clear();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- COW fork divergence -----------------------------------------------------

TEST(PrefixCache, TwoAdoptersDivergeWithoutCorruption) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const size_t br = 2;
  runtime::KvBlockPool pool;
  pool.configure(64, br, fx.row_bytes());
  runtime::PrefixCache cache;
  cache.configure(pool, br, d);
  const runtime::GenerationOptions opts{.kv_block_rows = br, .kv_pool = &pool};

  const auto shared = random_input(6, d, 401);
  auto prompt_a = tensor::MatrixF(8, d);
  auto prompt_b = tensor::MatrixF(8, d);
  const auto tail_a = random_input(2, d, 402);
  const auto tail_b = random_input(2, d, 403);
  for (size_t r = 0; r < 6; ++r) {
    std::copy(shared.row(r).begin(), shared.row(r).end(),
              prompt_a.row(r).begin());
    std::copy(shared.row(r).begin(), shared.row(r).end(),
              prompt_b.row(r).begin());
  }
  for (size_t r = 0; r < 2; ++r) {
    std::copy(tail_a.row(r).begin(), tail_a.row(r).end(),
              prompt_a.row(6 + r).begin());
    std::copy(tail_b.row(r).begin(), tail_b.row(r).end(),
              prompt_b.row(6 + r).begin());
  }
  const auto tok = random_input(1, d, 404);

  // Seed the cache with prompt A.
  runtime::GenerationSession seeder(fx.acfg, fx.qd, nullptr, opts);
  tensor::MatrixF seed_states(8, d);
  seeder.prefill_begin(fx.memory, nullptr);
  feed_chunks(seeder, prompt_a, 0, 0, seed_states);
  cache.publish_cross(fx.memory, seeder.cache());
  seeder.publish_prefix(cache, prompt_a, fx.memory, seed_states);
  seeder.end_sequence();

  // Dense references for both prompts.
  runtime::GenerationSession ra(fx.acfg, fx.qd), rb(fx.acfg, fx.qd);
  tensor::MatrixF ref_a, ref_b, ref_da, ref_db;
  ra.prefill(prompt_a, fx.memory, ref_a);
  ra.decode_step(tok, ref_da);
  rb.prefill(prompt_b, fx.memory, ref_b);
  rb.decode_step(tok, ref_db);

  // Both adopters share the 6-row cached chain (A fully, B its shared
  // prefix), then diverge: decode must match each one's own cold run.
  runtime::GenerationSession sa(fx.acfg, fx.qd, nullptr, opts);
  runtime::GenerationSession sb(fx.acfg, fx.qd, nullptr, opts);
  tensor::MatrixF states_sa(8, d), states_sb(8, d);
  const size_t adopted_a =
      sa.prefill_begin_cached(cache, prompt_a, fx.memory, states_sa);
  const size_t adopted_b =
      sb.prefill_begin_cached(cache, prompt_b, fx.memory, states_sb);
  EXPECT_EQ(adopted_a, 6u);  // 3 blocks; tail rows 6..7 stay uncovered
  EXPECT_EQ(adopted_b, 6u);
  feed_chunks(sa, prompt_a, adopted_a, 1, states_sa);
  feed_chunks(sb, prompt_b, adopted_b, 1, states_sb);
  EXPECT_EQ(states_sa, ref_a);
  EXPECT_EQ(states_sb, ref_b);
  tensor::MatrixF da, db;
  sa.decode_step(tok, da);
  sb.decode_step(tok, db);
  EXPECT_EQ(da, ref_da);
  EXPECT_EQ(db, ref_db);

  sa.end_sequence();
  sb.end_sequence();
  cache.clear();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- eviction under pressure -------------------------------------------------

TEST(PrefixCache, ReclaimFreesOnlyColdBlocksAndNeverDeadlocks) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const size_t br = 2;
  runtime::KvBlockPool pool;
  pool.configure(8, br, fx.row_bytes());
  runtime::PrefixCache cache;
  cache.configure(pool, br, d);
  pool.set_reclaim_hook(
      [&cache](size_t want) { return cache.reclaim(want); });
  const runtime::GenerationOptions opts{.kv_block_rows = br, .kv_pool = &pool};

  const auto prompt_a = random_input(4, d, 501);
  const auto prompt_b = random_input(4, d, 502);
  const auto tok = random_input(1, d, 503);

  // Publish A and keep its session LIVE (blocks refcount 2).
  runtime::GenerationSession live(fx.acfg, fx.qd, nullptr, opts);
  tensor::MatrixF states_a(4, d);
  live.prefill_begin(fx.memory, nullptr);
  feed_chunks(live, prompt_a, 0, 0, states_a);
  cache.publish_cross(fx.memory, live.cache());
  live.publish_prefix(cache, prompt_a, fx.memory, states_a);
  tensor::MatrixF ref_step;
  {
    runtime::GenerationSession r(fx.acfg, fx.qd);
    tensor::MatrixF rs;
    r.prefill(prompt_a, fx.memory, rs);
    r.decode_step(tok, ref_step);
  }

  // Publish B and retire it: its 2 blocks stay cache-only (refcount 1).
  {
    runtime::GenerationSession s(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF states_b(4, d);
    s.prefill_begin(fx.memory, nullptr);
    feed_chunks(s, prompt_b, 0, 0, states_b);
    s.publish_prefix(cache, prompt_b, fx.memory, states_b);
    s.end_sequence();
  }
  // Pool: A live+cached = 2 blocks, B cached = 2, free = 4.
  EXPECT_EQ(pool.used_blocks(), 4u);
  EXPECT_EQ(cache.reclaimable_blocks(), 2u);

  // A 10-row newcomer needs 5 blocks > 4 free: the reserve must pull
  // B's two cold blocks through the reclaim hook — and must NOT touch
  // A's live-referenced blocks.
  runtime::GenerationSession big(fx.acfg, fx.qd, nullptr, opts);
  EXPECT_TRUE(big.try_reserve_rows(10));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.reclaimable_blocks(), 0u);

  // The live adopter of A still decodes bit-identically.
  tensor::MatrixF step;
  live.decode_step(tok, step);
  EXPECT_EQ(step, ref_step);

  // A's chain survived (live reference pinned it): re-adoption still hits.
  big.end_sequence();
  runtime::GenerationSession again(fx.acfg, fx.qd, nullptr, opts);
  tensor::MatrixF states_again(4, d);
  EXPECT_EQ(again.prefill_begin_cached(cache, prompt_a, fx.memory,
                                       states_again),
            2u);  // 4-row prompt, 2-row blocks, tail block stays uncovered

  again.end_sequence();
  live.end_sequence();
  pool.set_reclaim_hook(nullptr);
  cache.clear();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- randomized property sweep ----------------------------------------------

TEST(PrefixCache, RandomizedSharedDocumentSweepStaysBitIdentical) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const size_t br = 2;
  runtime::KvBlockPool pool;
  pool.configure(48, br, fx.row_bytes());
  runtime::PrefixCache cache;
  cache.configure(pool, br, d);
  pool.set_reclaim_hook(
      [&cache](size_t want) { return cache.reclaim(want); });
  const runtime::GenerationOptions opts{.kv_block_rows = br, .kv_pool = &pool};

  const auto doc = random_input(fx.cfg.seq_len, d, 601);
  const auto tok = random_input(1, d, 602);
  util::Xoshiro256 rng(603);

  for (int iter = 0; iter < 24; ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    // Prompts are document prefixes with a unique final row: rich radix
    // sharing, and every prompt strictly extends what it can adopt.
    const size_t plen = 2 + rng.next() % (fx.cfg.seq_len - 3);
    tensor::MatrixF prompt = doc.slice_rows(0, plen);
    const auto unique = random_input(1, d, 700 + iter);
    std::copy(unique.row(0).begin(), unique.row(0).end(),
              prompt.row(plen - 1).begin());
    const size_t chunk = rng.next() % 4;  // 0 = one pass

    runtime::GenerationSession ref_sess(fx.acfg, fx.qd);
    tensor::MatrixF ref_states, ref_step;
    ref_sess.prefill(prompt, fx.memory, ref_states);
    ref_sess.decode_step(tok, ref_step);

    runtime::GenerationSession s(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF states(plen, d);
    const size_t adopted =
        s.prefill_begin_cached(cache, prompt, fx.memory, states);
    ASSERT_LT(adopted, plen);
    feed_chunks(s, prompt, adopted, chunk, states);
    ASSERT_EQ(states, ref_states);
    tensor::MatrixF step;
    s.decode_step(tok, step);
    ASSERT_EQ(step, ref_step);
    s.publish_prefix(cache, prompt, fx.memory, states);
    s.end_sequence();

    if (iter % 5 == 4) cache.reclaim(1 + rng.next() % 3);
    ASSERT_EQ(cache.stats().blocks_held, pool.used_blocks());
  }
  pool.set_reclaim_hook(nullptr);
  cache.clear();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- scheduler integration ---------------------------------------------------

runtime::GenerationRequest make_request(const tensor::MatrixF& prompt,
                                        const tensor::MatrixF& memory,
                                        uint32_t max_new) {
  runtime::GenerationRequest r;
  r.prefix = prompt;
  r.memory = &memory;
  r.max_new_tokens = max_new;
  r.next_token = [](std::span<const float> state, tensor::MatrixF& next) {
    if (next.rows() != 1 || next.cols() != state.size()) {
      next = tensor::MatrixF(1, state.size());
    }
    std::copy(state.begin(), state.end(), next.row(0).begin());
    return true;
  };
  return r;
}

TEST(PrefixCacheScheduler, CachedRunsBitIdenticalAndCount) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const auto doc = random_input(8, d, 801);
  std::vector<runtime::GenerationRequest> requests;
  for (int i = 0; i < 6; ++i) {
    const size_t plen = 4 + static_cast<size_t>(i) % 3;
    tensor::MatrixF prompt = doc.slice_rows(0, plen);
    const auto unique = random_input(1, d, 810 + i);
    std::copy(unique.row(0).begin(), unique.row(0).end(),
              prompt.row(plen - 1).begin());
    requests.push_back(make_request(prompt, fx.memory, 2));
  }

  runtime::GenerationScheduler sched(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions off;
  off.slots = 3;
  off.prefill_chunk = 2;
  off.kv_block_rows = 2;
  off.kv_pool_blocks = 64;
  const auto baseline = sched.run(requests, off);

  runtime::GenerationSchedulerOptions on = off;
  on.prefix_cache = true;
  const auto cached = sched.run(requests, on);
  ASSERT_EQ(cached.size(), baseline.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].states, baseline[i].states) << "request " << i;
    EXPECT_EQ(cached[i].steps, baseline[i].steps);
  }
  const runtime::GenerationRunStats st = sched.last_run();
  EXPECT_GT(st.prefix_hits, 0u);
  EXPECT_GT(st.prefix_rows_adopted, 0u);
  EXPECT_GT(st.prefix_bytes_saved, 0u);
  EXPECT_GT(st.cross_kv_hits, 0u);

  // Threaded outputs stay bit-identical (hit/miss split may differ).
  on.threads = 3;
  const auto threaded = sched.run(requests, on);
  for (size_t i = 0; i < threaded.size(); ++i) {
    EXPECT_EQ(threaded[i].states, baseline[i].states) << "request " << i;
  }

  runtime::GenerationSchedulerOptions bad = on;
  bad.kv_pool_blocks = 0;
  EXPECT_THROW(sched.run(requests, bad), std::invalid_argument);
}

// --- traffic-engine integration ----------------------------------------------

/// Every SchedulerStats field except wall_ms must be bit-identical
/// between stepped and threaded runs — including the prefix counters,
/// because the cache runs coordinator-side in both modes.
void expect_same_traffic_stats(const runtime::SchedulerStats& a,
                               const runtime::SchedulerStats& b) {
  for (size_t c = 0; c < runtime::kTrafficClasses; ++c) {
    const runtime::TrafficClassStats& x = a.per_class[c];
    const runtime::TrafficClassStats& y = b.per_class[c];
    EXPECT_EQ(x.submitted, y.submitted) << "class " << c;
    EXPECT_EQ(x.completed, y.completed) << "class " << c;
    EXPECT_EQ(x.completed_late, y.completed_late) << "class " << c;
    EXPECT_EQ(x.shed_overload, y.shed_overload) << "class " << c;
    EXPECT_EQ(x.shed_deadline, y.shed_deadline) << "class " << c;
    EXPECT_EQ(x.shed_capacity, y.shed_capacity) << "class " << c;
    EXPECT_EQ(x.cancelled, y.cancelled) << "class " << c;
    EXPECT_EQ(x.failed, y.failed) << "class " << c;
    EXPECT_EQ(x.preemptions, y.preemptions) << "class " << c;
    EXPECT_EQ(x.swap_outs, y.swap_outs) << "class " << c;
    EXPECT_EQ(x.recomputes, y.recomputes) << "class " << c;
    EXPECT_EQ(x.restores, y.restores) << "class " << c;
    EXPECT_EQ(x.deadline_misses, y.deadline_misses) << "class " << c;
    EXPECT_EQ(x.kv_block_waits, y.kv_block_waits) << "class " << c;
  }
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.prefill_chunks, b.prefill_chunks);
  EXPECT_EQ(a.replayed_rows, b.replayed_rows);
  EXPECT_EQ(a.swap_bytes, b.swap_bytes);
  EXPECT_EQ(a.kv_blocks_peak, b.kv_blocks_peak);
  EXPECT_EQ(a.failpoint_trips, b.failpoint_trips);
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.prefix_misses, b.prefix_misses);
  EXPECT_EQ(a.prefix_rows_adopted, b.prefix_rows_adopted);
  EXPECT_EQ(a.prefix_bytes_saved, b.prefix_bytes_saved);
  EXPECT_EQ(a.cross_kv_hits, b.cross_kv_hits);
  EXPECT_EQ(a.cross_kv_misses, b.cross_kv_misses);
  EXPECT_EQ(a.prefix_evictions, b.prefix_evictions);
  EXPECT_EQ(a.max_active, b.max_active);
}

std::vector<runtime::TrafficRequest> storm_requests(
    const Fixture& fx, const std::vector<tensor::MatrixF>& prompts) {
  std::vector<runtime::TrafficRequest> reqs;
  for (size_t i = 0; i < prompts.size(); ++i) {
    runtime::TrafficRequest t;
    t.gen = make_request(prompts[i], fx.memory, 2);
    t.priority = static_cast<runtime::TrafficPriority>(i % 3);
    t.arrival_round = static_cast<uint32_t>(i / 2);
    reqs.push_back(std::move(t));
  }
  return reqs;
}

TEST(PrefixCacheTraffic, CachedTrafficBitIdenticalAndDeterministic) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const auto doc = random_input(8, d, 901);
  std::vector<tensor::MatrixF> prompts;
  for (int i = 0; i < 8; ++i) {
    const size_t plen = 4 + static_cast<size_t>(i) % 4;
    tensor::MatrixF prompt = doc.slice_rows(0, plen);
    const auto unique = random_input(1, d, 910 + i);
    std::copy(unique.row(0).begin(), unique.row(0).end(),
              prompt.row(plen - 1).begin());
    prompts.push_back(std::move(prompt));
  }
  const auto requests = storm_requests(fx, prompts);

  runtime::TrafficEngine engine(fx.acfg, fx.qd);
  runtime::TrafficOptions off;
  off.slots = 3;
  off.prefill_chunk = 2;
  off.kv_block_rows = 2;
  off.kv_pool_blocks = 64;  // ample: every request completes
  const auto baseline = engine.run(requests, off);

  runtime::TrafficOptions on = off;
  on.prefix_cache = true;
  const auto cached = engine.run(requests, on);
  runtime::SchedulerStats stepped = engine.last_run();
  ASSERT_EQ(cached.size(), baseline.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].outcome, runtime::TrafficOutcome::kCompleted);
    EXPECT_EQ(cached[i].states, baseline[i].states) << "request " << i;
  }
  EXPECT_GT(stepped.prefix_hits, 0u);
  EXPECT_GT(stepped.prefix_rows_adopted, 0u);
  EXPECT_GT(stepped.cross_kv_hits, 0u);

  // Threaded: outputs AND every prefix counter bit-identical (the cache
  // runs coordinator-side in both modes).
  on.threads = 3;
  const auto threaded = engine.run(requests, on);
  const runtime::SchedulerStats ts = engine.last_run();
  for (size_t i = 0; i < threaded.size(); ++i) {
    EXPECT_EQ(threaded[i].states, baseline[i].states) << "request " << i;
  }
  expect_same_traffic_stats(stepped, ts);
}

TEST(PrefixCacheTraffic, PressureWithCacheTerminatesAndStaysExact) {
  // Small pool + fault injection: admissions must reclaim cache blocks
  // (never deadlocking), preemption must fall back to recompute for
  // shared tables, and every completed output must stay bit-identical
  // to the unconstrained baseline.
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const auto doc = random_input(8, d, 951);
  std::vector<tensor::MatrixF> prompts;
  for (int i = 0; i < 10; ++i) {
    const size_t plen = 4 + static_cast<size_t>(i) % 4;
    tensor::MatrixF prompt = doc.slice_rows(0, plen);
    const auto unique = random_input(1, d, 960 + i);
    std::copy(unique.row(0).begin(), unique.row(0).end(),
              prompt.row(plen - 1).begin());
    prompts.push_back(std::move(prompt));
  }
  const auto requests = storm_requests(fx, prompts);

  runtime::TrafficEngine engine(fx.acfg, fx.qd);
  runtime::TrafficOptions easy;
  easy.slots = 2;
  easy.prefill_chunk = 2;
  easy.kv_block_rows = 2;
  easy.kv_pool_blocks = 64;
  const auto baseline = engine.run(requests, easy);

  runtime::TrafficOptions hard = easy;
  hard.slots = 3;
  hard.kv_pool_blocks = 14;  // forced contention
  hard.prefix_cache = true;
  hard.fail_skip = 6;
  hard.fail_count = 2;
  hard.stall_limit = 64;
  const auto stressed = engine.run(requests, hard);
  const runtime::SchedulerStats st = engine.last_run();
  size_t completed = 0;
  for (size_t i = 0; i < stressed.size(); ++i) {
    ASSERT_NE(stressed[i].outcome, runtime::TrafficOutcome::kPending);
    if (stressed[i].outcome == runtime::TrafficOutcome::kCompleted ||
        stressed[i].outcome == runtime::TrafficOutcome::kCompletedLate) {
      ++completed;
      EXPECT_EQ(stressed[i].states, baseline[i].states) << "request " << i;
    }
  }
  EXPECT_GT(completed, 0u);
  EXPECT_GT(st.prefix_hits + st.prefix_misses, 0u);

  // Threaded repeat of the same stress: stats identical except wall_ms.
  runtime::TrafficOptions hard_mt = hard;
  hard_mt.threads = 3;
  const auto stressed_mt = engine.run(requests, hard_mt);
  const runtime::SchedulerStats mt = engine.last_run();
  expect_same_traffic_stats(st, mt);
  for (size_t i = 0; i < stressed_mt.size(); ++i) {
    EXPECT_EQ(stressed_mt[i].outcome, stressed[i].outcome) << "request " << i;
    EXPECT_EQ(stressed_mt[i].states, stressed[i].states) << "request " << i;
  }
}

}  // namespace
}  // namespace protea
