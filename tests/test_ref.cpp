// Tests for the float reference encoder, weights, positional encoding,
// model I/O and the model zoo.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "ref/encoder.hpp"
#include "ref/model_io.hpp"
#include "ref/model_zoo.hpp"
#include "ref/positional.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"

namespace protea::ref {
namespace {

ModelConfig tiny_config() {
  ModelConfig c;
  c.name = "tiny";
  c.seq_len = 8;
  c.d_model = 32;
  c.num_heads = 4;
  c.num_layers = 2;
  return c;
}

// --- ModelConfig -----------------------------------------------------------

TEST(ModelConfig, ValidatesDivisibility) {
  ModelConfig c = tiny_config();
  c.num_heads = 3;  // 32 % 3 != 0
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ModelConfig, ValidatesNonZero) {
  ModelConfig c = tiny_config();
  c.num_layers = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(ModelConfig, FfnDefaultsToFourX) {
  ModelConfig c = tiny_config();
  EXPECT_EQ(c.ffn_hidden(), 128u);
  c.ffn_dim = 64;
  EXPECT_EQ(c.ffn_hidden(), 64u);
}

TEST(ModelConfig, MacCountMatchesHandFormula) {
  ModelConfig c = tiny_config();
  // per layer: qkv 3*8*32*32, logits 8*8*32, apply 8*8*32, proj 8*32*32,
  // ffn 2*8*32*128; times 2 layers.
  const uint64_t per_layer = 3 * 8 * 32 * 32 + 8 * 8 * 32 + 8 * 8 * 32 +
                             8 * 32 * 32 + 2 * 8 * 32 * 128;
  EXPECT_EQ(c.macs_total(), 2 * per_layer);
}

TEST(ModelConfig, OpsExceedTwiceMacs) {
  ModelConfig c = bert_variant();
  EXPECT_GT(c.ops_total(), 2 * c.macs_total());
  EXPECT_LT(c.ops_total(), 3 * c.macs_total());  // elementwise is small
}

TEST(ModelConfig, BertVariantMatchesPaper) {
  ModelConfig c = bert_variant();
  EXPECT_EQ(c.seq_len, 64u);
  EXPECT_EQ(c.d_model, 768u);
  EXPECT_EQ(c.num_heads, 8u);
  EXPECT_EQ(c.num_layers, 12u);
  EXPECT_EQ(c.head_dim(), 96u);
}

// --- weights -----------------------------------------------------------------

TEST(Weights, ShapesMatchConfig) {
  const auto w = make_random_weights(tiny_config(), 1);
  ASSERT_EQ(w.layers.size(), 2u);
  const auto& l = w.layers[0];
  EXPECT_EQ(l.wq.rows(), 32u);
  EXPECT_EQ(l.wq.cols(), 32u);
  EXPECT_EQ(l.w1.cols(), 128u);
  EXPECT_EQ(l.w2.rows(), 128u);
  EXPECT_EQ(l.b1.size(), 128u);
  EXPECT_EQ(l.ln1_gamma.size(), 32u);
}

TEST(Weights, DeterministicForSeed) {
  const auto a = make_random_weights(tiny_config(), 5);
  const auto b = make_random_weights(tiny_config(), 5);
  EXPECT_EQ(a.layers[0].wq, b.layers[0].wq);
  EXPECT_EQ(a.layers[1].w2, b.layers[1].w2);
}

TEST(Weights, DifferentSeedsDiffer) {
  const auto a = make_random_weights(tiny_config(), 5);
  const auto b = make_random_weights(tiny_config(), 6);
  EXPECT_NE(a.layers[0].wq, b.layers[0].wq);
}

TEST(Weights, ParameterCount) {
  const auto w = make_random_weights(tiny_config(), 1);
  // Per layer: 4*d*d + d*4d + 4d*d + biases(3d + d + 4d + d) + 4 LN vectors.
  const uint64_t d = 32, f = 128;
  const uint64_t per_layer =
      4 * d * d + d * f + f * d + (3 * d + d + f + d) + 4 * d;
  EXPECT_EQ(w.parameter_count(), 2 * per_layer);
}

TEST(Weights, LayerNormInitializedToIdentity) {
  const auto w = make_random_weights(tiny_config(), 2);
  for (float g : w.layers[0].ln1_gamma) EXPECT_FLOAT_EQ(g, 1.0f);
  for (float b : w.layers[0].ln2_beta) EXPECT_FLOAT_EQ(b, 0.0f);
}

TEST(Weights, NoBiasOptionZeroesBiases) {
  ModelConfig c = tiny_config();
  c.use_bias = false;
  const auto w = make_random_weights(c, 3);
  for (float b : w.layers[0].bq) EXPECT_FLOAT_EQ(b, 0.0f);
  for (float b : w.layers[1].b1) EXPECT_FLOAT_EQ(b, 0.0f);
}

TEST(Weights, RandomInputShapedAndBounded) {
  const auto x = make_random_input(tiny_config(), 4);
  EXPECT_EQ(x.rows(), 8u);
  EXPECT_EQ(x.cols(), 32u);
  for (float v : x.flat()) EXPECT_LE(std::abs(v), 3.0f);
}

// --- encoder --------------------------------------------------------------------

TEST(Encoder, OutputShapeMatchesInput) {
  const auto w = make_random_weights(tiny_config(), 7);
  Encoder enc(w);
  const auto x = make_random_input(tiny_config(), 8);
  const auto y = enc.forward(x);
  EXPECT_EQ(y.rows(), x.rows());
  EXPECT_EQ(y.cols(), x.cols());
}

TEST(Encoder, DeterministicForward) {
  const auto w = make_random_weights(tiny_config(), 7);
  Encoder enc(w);
  const auto x = make_random_input(tiny_config(), 8);
  EXPECT_EQ(enc.forward(x), enc.forward(x));
}

TEST(Encoder, OutputIsLayerNormalized) {
  const auto w = make_random_weights(tiny_config(), 9);
  Encoder enc(w);
  const auto y = enc.forward(make_random_input(tiny_config(), 10));
  for (size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0;
    for (float v : y.row(r)) mean += v;
    mean /= static_cast<double>(y.cols());
    EXPECT_NEAR(mean, 0.0, 1e-4);
  }
}

TEST(Encoder, TraceCapturesEveryLayer) {
  const auto w = make_random_weights(tiny_config(), 11);
  Encoder enc(w);
  std::vector<LayerTrace> traces;
  const auto y = enc.forward_traced(make_random_input(tiny_config(), 12),
                                    traces);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].q.size(), 4u);  // one per head
  EXPECT_EQ(traces[0].q[0].rows(), 8u);
  EXPECT_EQ(traces[0].q[0].cols(), 8u);  // dk = 32/4
  EXPECT_EQ(traces[1].ln2_out, y);  // last trace equals the output
}

TEST(Encoder, AttentionWeightsAreRowStochastic) {
  const auto w = make_random_weights(tiny_config(), 13);
  Encoder enc(w);
  std::vector<LayerTrace> traces;
  enc.forward_traced(make_random_input(tiny_config(), 14), traces);
  for (const auto& aw : traces[0].attn_weights) {
    for (size_t r = 0; r < aw.rows(); ++r) {
      float sum = 0.0f;
      for (float v : aw.row(r)) {
        EXPECT_GE(v, 0.0f);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

TEST(Encoder, RejectsWrongInputShape) {
  const auto w = make_random_weights(tiny_config(), 15);
  Encoder enc(w);
  tensor::MatrixF wrong(4, 32);
  EXPECT_THROW(enc.forward(wrong), std::invalid_argument);
}

TEST(Encoder, GeluAndReluDiffer) {
  ModelConfig gelu_cfg = tiny_config();
  gelu_cfg.activation = Activation::kGelu;
  ModelConfig relu_cfg = tiny_config();
  relu_cfg.activation = Activation::kRelu;
  auto w = make_random_weights(gelu_cfg, 16);
  Encoder gelu_enc(w);
  w.config = relu_cfg;
  Encoder relu_enc(w);
  const auto x = make_random_input(gelu_cfg, 17);
  EXPECT_GT(tensor::max_abs_diff(gelu_enc.forward(x), relu_enc.forward(x)),
            1e-4f);
}

TEST(Encoder, AttnScaleModeChangesResult) {
  ModelConfig a = tiny_config();
  a.attn_scale = AttnScale::kInvSqrtDk;
  ModelConfig b = tiny_config();
  b.attn_scale = AttnScale::kInvDModel;
  auto w = make_random_weights(a, 18);
  Encoder ea(w);
  w.config = b;
  Encoder eb(w);
  const auto x = make_random_input(a, 19);
  EXPECT_GT(tensor::max_abs_diff(ea.forward(x), eb.forward(x)), 1e-5f);
}

// --- positional encoding ----------------------------------------------------------

TEST(Positional, KnownValues) {
  const auto pe = sinusoidal_positional_encoding(4, 8);
  EXPECT_FLOAT_EQ(pe(0, 0), 0.0f);  // sin(0)
  EXPECT_FLOAT_EQ(pe(0, 1), 1.0f);  // cos(0)
  EXPECT_NEAR(pe(1, 0), std::sin(1.0), 1e-6);
  EXPECT_NEAR(pe(1, 1), std::cos(1.0), 1e-6);
}

TEST(Positional, ValuesBounded) {
  const auto pe = sinusoidal_positional_encoding(32, 64);
  for (float v : pe.flat()) EXPECT_LE(std::abs(v), 1.0f);
}

TEST(Positional, EmbedTokensAddsPosition) {
  const auto table = make_embedding_table(16, 8, 3);
  const std::vector<uint32_t> tokens = {3, 3};
  const auto emb = embed_tokens(tokens, table);
  // Same token at different positions differs by the positional term.
  EXPECT_NE(emb.row(0)[1], emb.row(1)[1]);
}

TEST(Positional, EmbedTokensRejectsOutOfVocab) {
  const auto table = make_embedding_table(16, 8, 3);
  const std::vector<uint32_t> tokens = {99};
  EXPECT_THROW(embed_tokens(tokens, table), std::out_of_range);
}

// --- model I/O ------------------------------------------------------------------------

TEST(ModelIo, SaveLoadRoundTrip) {
  const auto w = make_random_weights(tiny_config(), 21);
  const std::string path = testing::TempDir() + "/protea_model_test.bin";
  save_model(w, path);
  const auto loaded = load_model(path);
  EXPECT_EQ(loaded.config.d_model, w.config.d_model);
  EXPECT_EQ(loaded.config.num_layers, w.config.num_layers);
  EXPECT_EQ(loaded.layers[0].wq, w.layers[0].wq);
  EXPECT_EQ(loaded.layers[1].b1, w.layers[1].b1);
  EXPECT_EQ(loaded.layers[1].ln2_gamma, w.layers[1].ln2_gamma);
  std::filesystem::remove(path);
}

TEST(ModelIo, RoundTripPreservesForwardPass) {
  const auto w = make_random_weights(tiny_config(), 22);
  const std::string path = testing::TempDir() + "/protea_model_test2.bin";
  save_model(w, path);
  const auto loaded = load_model(path);
  const auto x = make_random_input(tiny_config(), 23);
  EXPECT_EQ(Encoder(w).forward(x), Encoder(loaded).forward(x));
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/protea_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a model";
  }
  EXPECT_THROW(load_model(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ModelIo, RejectsMissingFile) {
  EXPECT_THROW(load_model("/does/not/exist.bin"), std::runtime_error);
}

// --- model zoo -----------------------------------------------------------------------

TEST(ModelZoo, AllModelsValidate) {
  for (const auto& name : model_names()) {
    EXPECT_NO_THROW(find_model(name).validate()) << name;
  }
}

TEST(ModelZoo, UnknownNameThrows) {
  EXPECT_THROW(find_model("nope"), std::invalid_argument);
}

TEST(ModelZoo, Table1HasNineTests) {
  const auto tests = table1_tests();
  ASSERT_EQ(tests.size(), 9u);
  // Tests 1-3 sweep heads at fixed everything else.
  EXPECT_EQ(tests[0].num_heads, 8u);
  EXPECT_EQ(tests[1].num_heads, 4u);
  EXPECT_EQ(tests[2].num_heads, 2u);
  // Tests 4-5 sweep layers.
  EXPECT_EQ(tests[3].num_layers, 8u);
  EXPECT_EQ(tests[4].num_layers, 4u);
  // Tests 6-7 sweep embedding dimension.
  EXPECT_EQ(tests[5].d_model, 512u);
  EXPECT_EQ(tests[6].d_model, 256u);
  // Tests 8-9 sweep sequence length.
  EXPECT_EQ(tests[7].seq_len, 128u);
  EXPECT_EQ(tests[8].seq_len, 32u);
}

TEST(ModelZoo, Table1TestsAllValid) {
  for (const auto& t : table1_tests()) EXPECT_NO_THROW(t.validate());
}

}  // namespace
}  // namespace protea::ref
