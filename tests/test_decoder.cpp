// Tests for the decoder extension (paper §VI future work): the float
// reference decoder, causal masking properties, the quantized decoder
// datapath and its cycle model.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "accel/softmax_unit.hpp"
#include "ref/decoder.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 12;          // max target length
  c.d_model = 48;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = ref::Activation::kGelu;
  return c;
}

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

double correlation(const tensor::MatrixF& a, const tensor::MatrixF& b) {
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  const auto n = static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double x = a.flat()[i], y = b.flat()[i];
    sa += x; sb += y; saa += x * x; sbb += y * y; sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  return cov / std::sqrt((saa / n - (sa / n) * (sa / n)) *
                         (sbb / n - (sb / n) * (sb / n)));
}

// --- reference decoder -------------------------------------------------------

TEST(RefDecoder, OutputShapeFollowsTarget) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 1);
  ref::Decoder dec(w);
  const auto memory = random_input(10, cfg.d_model, 2);
  const auto target = random_input(7, cfg.d_model, 3);
  const auto out = dec.forward(target, memory);
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), cfg.d_model);
}

TEST(RefDecoder, CausalityFutureTokensDoNotAffectPast) {
  // The decisive property of masked self-attention: changing target
  // positions >= p must not change outputs at positions < p.
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 4);
  ref::Decoder dec(w);
  const auto memory = random_input(8, cfg.d_model, 5);
  auto target_a = random_input(10, cfg.d_model, 6);
  auto target_b = target_a;
  for (size_t r = 6; r < 10; ++r) {      // perturb the tail
    for (size_t c = 0; c < cfg.d_model; ++c) target_b(r, c) += 1.0f;
  }
  const auto out_a = dec.forward(target_a, memory);
  const auto out_b = dec.forward(target_b, memory);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < cfg.d_model; ++c) {
      EXPECT_NEAR(out_a(r, c), out_b(r, c), 1e-5) << r << "," << c;
    }
  }
}

TEST(RefDecoder, PrefixConsistency) {
  // Running a prefix alone equals the prefix of the full run — the
  // property autoregressive decoding relies on.
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 7);
  ref::Decoder dec(w);
  const auto memory = random_input(8, cfg.d_model, 8);
  const auto target = random_input(9, cfg.d_model, 9);
  const auto full = dec.forward(target, memory);
  const auto prefix = dec.forward(target.slice_rows(0, 5), memory);
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < cfg.d_model; ++c) {
      EXPECT_NEAR(full(r, c), prefix(r, c), 1e-5);
    }
  }
}

TEST(RefDecoder, MemoryActuallyUsed) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 10);
  ref::Decoder dec(w);
  const auto target = random_input(6, cfg.d_model, 11);
  const auto mem_a = random_input(8, cfg.d_model, 12);
  const auto mem_b = random_input(8, cfg.d_model, 13);
  EXPECT_GT(tensor::max_abs_diff(dec.forward(target, mem_a),
                                 dec.forward(target, mem_b)),
            1e-3f);
}

TEST(RefDecoder, TraceMaskedWeightsAreCausalAndStochastic) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 14);
  ref::Decoder dec(w);
  std::vector<ref::DecoderLayerTrace> traces;
  dec.forward_traced(random_input(8, cfg.d_model, 15),
                     random_input(8, cfg.d_model, 16), traces);
  ASSERT_EQ(traces.size(), cfg.num_layers);
  for (const auto& weights : traces[0].self_weights) {
    for (size_t i = 0; i < weights.rows(); ++i) {
      float sum = 0.0f;
      for (size_t j = 0; j < weights.cols(); ++j) {
        if (j > i) {
          EXPECT_FLOAT_EQ(weights(i, j), 0.0f) << i << "," << j;
        }
        sum += weights(i, j);
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
  }
}

TEST(RefDecoder, RejectsBadShapes) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 17);
  ref::Decoder dec(w);
  const auto memory = random_input(8, cfg.d_model, 18);
  EXPECT_THROW(dec.forward(random_input(20, cfg.d_model, 19), memory),
               std::invalid_argument);  // target > seq_len
  EXPECT_THROW(dec.forward(random_input(4, 32, 20), memory),
               std::invalid_argument);  // wrong width
}

TEST(RefDecoder, DeterministicWeights) {
  const auto cfg = small_config();
  const auto a = ref::make_random_decoder_weights(cfg, 21);
  const auto b = ref::make_random_decoder_weights(cfg, 21);
  EXPECT_EQ(a.layers[0].cq, b.layers[0].cq);
  EXPECT_EQ(a.layers[1].w2, b.layers[1].w2);
}

// --- causal softmax unit ------------------------------------------------------

TEST(CausalSoftmax, MaskedPositionsZero) {
  accel::SoftmaxUnit unit(0.05);
  tensor::MatrixI8 logits(4, 4, 10);
  const auto w = unit.run_causal(logits);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) EXPECT_EQ(w(i, j), 0);
  }
}

TEST(CausalSoftmax, RowSumsApprox127OverValidPrefix) {
  accel::SoftmaxUnit unit(0.05);
  util::Xoshiro256 rng(22);
  tensor::MatrixI8 logits(6, 6);
  for (auto& v : logits.flat()) v = static_cast<int8_t>(rng.bounded(255));
  const auto w = unit.run_causal(logits);
  for (size_t i = 0; i < 6; ++i) {
    int sum = 0;
    for (size_t j = 0; j <= i; ++j) sum += w(i, j);
    EXPECT_NEAR(sum, 127, 8) << "row " << i;
  }
}

TEST(CausalSoftmax, FirstRowIsDelta) {
  accel::SoftmaxUnit unit(0.05);
  tensor::MatrixI8 logits(3, 3, -20);
  const auto w = unit.run_causal(logits);
  EXPECT_EQ(w(0, 0), 127);  // only itself visible
}

TEST(CausalSoftmax, MatchesUnmaskedOnLastRow) {
  accel::SoftmaxUnit unit(0.05);
  util::Xoshiro256 rng(23);
  tensor::MatrixI8 logits(5, 5);
  for (auto& v : logits.flat()) v = static_cast<int8_t>(rng.bounded(255));
  const auto causal = unit.run_causal(logits);
  const auto full = unit.run(logits);
  for (size_t j = 0; j < 5; ++j) EXPECT_EQ(causal(4, j), full(4, j));
}

// --- quantized decoder --------------------------------------------------------

TEST(QuantizedDecoder, ScalesArePowersOfTwo) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 24);
  ref::Decoder dec(w);
  const auto target = random_input(8, cfg.d_model, 25);
  const auto memory = random_input(8, cfg.d_model, 26);
  const auto scales = accel::calibrate_decoder_scales(dec, target, memory);
  ASSERT_EQ(scales.size(), cfg.num_layers);
  for (const auto& s : scales) {
    for (double v : {s.x, s.memory, s.q, s.clogit, s.csv, s.ln3}) {
      const double l = std::log2(v);
      EXPECT_NEAR(l, std::round(l), 1e-9);
    }
  }
}

TEST(QuantizedDecoder, LayoutShapes) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 27);
  const auto qd = accel::prepare_decoder(
      w, random_input(8, cfg.d_model, 28), random_input(8, cfg.d_model, 29));
  ASSERT_EQ(qd.layers.size(), cfg.num_layers);
  EXPECT_EQ(qd.layers[0].self_heads.size(), cfg.num_heads);
  EXPECT_EQ(qd.layers[0].cross_heads.size(), cfg.num_heads);
  EXPECT_EQ(qd.layers[0].cross_heads[0].ckt.rows(), cfg.head_dim());
  EXPECT_EQ(qd.layers[0].w1.cols(), cfg.ffn_hidden());
}

TEST(DecoderAccelerator, TracksFloatReference) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 30);
  ref::Decoder dec(w);
  const auto target = random_input(8, cfg.d_model, 31);
  const auto memory = random_input(8, cfg.d_model, 32);
  const auto ref_out = dec.forward(target, memory);

  accel::AccelConfig acfg;
  accel::ProteaDecoderAccelerator acc(acfg);
  acc.load_model(accel::prepare_decoder(w, target, memory));
  const auto out = acc.forward(target, memory);
  EXPECT_LT(tensor::rms_diff(out, ref_out), 0.25f);
  EXPECT_GT(correlation(out, ref_out), 0.95);
}

TEST(DecoderAccelerator, CausalityHoldsInInt8) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 33);
  const auto memory = random_input(8, cfg.d_model, 34);
  auto target_a = random_input(10, cfg.d_model, 35);
  auto target_b = target_a;
  for (size_t c = 0; c < cfg.d_model; ++c) target_b(9, c) += 2.0f;

  accel::AccelConfig acfg;
  accel::ProteaDecoderAccelerator acc(acfg);
  acc.load_model(accel::prepare_decoder(w, target_a, memory));
  const auto out_a = acc.forward(target_a, memory);
  const auto out_b = acc.forward(target_b, memory);
  // Outputs at positions < 9 must be bit-identical: the int8 datapath's
  // causal mask leaves no path from position 9 backwards.
  for (size_t r = 0; r < 9; ++r) {
    for (size_t c = 0; c < cfg.d_model; ++c) {
      EXPECT_FLOAT_EQ(out_a(r, c), out_b(r, c)) << r << "," << c;
    }
  }
}

TEST(DecoderAccelerator, PrefixRunsWork) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 36);
  const auto target = random_input(10, cfg.d_model, 37);
  const auto memory = random_input(8, cfg.d_model, 38);
  accel::AccelConfig acfg;
  accel::ProteaDecoderAccelerator acc(acfg);
  acc.load_model(accel::prepare_decoder(w, target, memory));
  const auto out = acc.forward(target.slice_rows(0, 3), memory);
  EXPECT_EQ(out.rows(), 3u);
}

TEST(DecoderAccelerator, ValidatesInputs) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 39);
  const auto target = random_input(8, cfg.d_model, 40);
  const auto memory = random_input(8, cfg.d_model, 41);
  accel::AccelConfig acfg;
  accel::ProteaDecoderAccelerator acc(acfg);
  EXPECT_THROW(acc.forward(target, memory), std::logic_error);
  acc.load_model(accel::prepare_decoder(w, target, memory));
  EXPECT_THROW(acc.forward(random_input(20, cfg.d_model, 42), memory),
               std::invalid_argument);
  EXPECT_THROW(acc.forward(target, random_input(8, 32, 43)),
               std::invalid_argument);
}

// --- decoder perf model ---------------------------------------------------------

TEST(DecoderPerf, LinearInLayers) {
  accel::AccelConfig cfg;
  ref::ModelConfig m = small_config();
  m.d_model = 256;
  m.num_heads = 8;
  const auto r2 = accel::estimate_decoder_performance(cfg, m, 12, 16);
  m.num_layers = 4;
  const auto r4 = accel::estimate_decoder_performance(cfg, m, 12, 16);
  EXPECT_NEAR(static_cast<double>(r4.total_cycles) / r2.total_cycles, 2.0,
              1e-9);
}

TEST(DecoderPerf, GrowsWithMemoryLength) {
  accel::AccelConfig cfg;
  const ref::ModelConfig m = small_config();
  const auto short_mem =
      accel::estimate_decoder_performance(cfg, m, 8, 8);
  const auto long_mem =
      accel::estimate_decoder_performance(cfg, m, 8, 64);
  EXPECT_GT(long_mem.total_cycles, short_mem.total_cycles);
}

TEST(DecoderPerf, CrossAttentionStagesPresent) {
  accel::AccelConfig cfg;
  const auto report =
      accel::estimate_decoder_performance(cfg, small_config(), 8, 16);
  EXPECT_GT(report.stage("cross_kv").total, 0u);
  EXPECT_GT(report.stage("cross_softmax").total, 0u);
  EXPECT_GT(report.stage("self_softmax").total, 0u);
  hw::Cycles sum = 0;
  for (const auto& s : report.stages) sum += s.total;
  EXPECT_EQ(sum, report.layer_cycles);
}

TEST(DecoderPerf, MacCounterMatchesModel) {
  const auto cfg = small_config();
  const auto w = ref::make_random_decoder_weights(cfg, 44);
  const auto target = random_input(cfg.seq_len, cfg.d_model, 45);
  const auto memory = random_input(8, cfg.d_model, 46);
  accel::AccelConfig acfg;
  accel::ProteaDecoderAccelerator acc(acfg);
  acc.load_model(accel::prepare_decoder(w, target, memory));
  acc.forward(target, memory);
  const auto report = acc.performance(cfg.seq_len, 8);
  EXPECT_EQ(report.macs, acc.stats().macs);
}

TEST(DecoderPerf, ValidatesLengths) {
  accel::AccelConfig cfg;
  const auto m = small_config();
  EXPECT_THROW(accel::estimate_decoder_performance(cfg, m, 0, 8),
               std::invalid_argument);
  EXPECT_THROW(accel::estimate_decoder_performance(cfg, m, 8, 0),
               std::invalid_argument);
  EXPECT_THROW(accel::estimate_decoder_performance(cfg, m, 999, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace protea
