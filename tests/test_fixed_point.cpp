// Tests for the numeric substrate: Fixed<W,F>, DSP48 accumulator,
// runtime quantizer and requantization.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/dsp48.hpp"
#include "numeric/fixed_point.hpp"
#include "numeric/quantizer.hpp"
#include "numeric/requantize.hpp"
#include "util/rng.hpp"

namespace protea::numeric {
namespace {

// --- Fixed<W,F> -------------------------------------------------------------

TEST(FixedPoint, RangeConstants) {
  EXPECT_EQ(Fix8::raw_max, 127);
  EXPECT_EQ(Fix8::raw_min, -128);
  EXPECT_DOUBLE_EQ(Fix8::epsilon(), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(Fix8::max_value(), 127.0 / 32.0);
  EXPECT_DOUBLE_EQ(Fix8::min_value(), -4.0);
}

TEST(FixedPoint, FromDoubleExactGridValues) {
  for (int raw = -128; raw <= 127; ++raw) {
    const double v = raw / 32.0;
    EXPECT_EQ(Fix8::from_double(v).raw(), raw) << "value " << v;
  }
}

TEST(FixedPoint, SaturatesOutOfRange) {
  EXPECT_EQ(Fix8::from_double(100.0).raw(), Fix8::raw_max);
  EXPECT_EQ(Fix8::from_double(-100.0).raw(), Fix8::raw_min);
}

TEST(FixedPoint, RoundHalfToEven) {
  // 1.5 ulp cases: raw 2.5 -> 2 (even), raw 3.5 -> 4.
  using F = Fixed<8, 0>;  // integers, easy half cases
  EXPECT_EQ(F::from_double(2.5).raw(), 2);
  EXPECT_EQ(F::from_double(3.5).raw(), 4);
  EXPECT_EQ(F::from_double(-2.5).raw(), -2);
  EXPECT_EQ(F::from_double(-3.5).raw(), -4);
}

TEST(FixedPoint, TruncateModeRoundsTowardNegInf) {
  using F = Fixed<8, 0, Rounding::kTruncate>;
  EXPECT_EQ(F::from_double(2.9).raw(), 2);
  EXPECT_EQ(F::from_double(-2.1).raw(), -3);
}

TEST(FixedPoint, NearestAwayMode) {
  using F = Fixed<8, 0, Rounding::kNearestAway>;
  EXPECT_EQ(F::from_double(2.5).raw(), 3);
  EXPECT_EQ(F::from_double(-2.5).raw(), -3);
}

TEST(FixedPoint, AdditionSaturates) {
  const auto big = Fix8::from_raw(120);
  EXPECT_EQ((big + big).raw(), Fix8::raw_max);
  const auto neg = Fix8::from_raw(-120);
  EXPECT_EQ((neg + neg).raw(), Fix8::raw_min);
}

TEST(FixedPoint, AdditionMatchesDoubleWhenInRange) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.9, 1.9);
    const double b = rng.uniform(-1.9, 1.9);
    const auto fa = Fix8::from_double(a);
    const auto fb = Fix8::from_double(b);
    EXPECT_NEAR((fa + fb).to_double(), fa.to_double() + fb.to_double(),
                1e-12);
  }
}

TEST(FixedPoint, MultiplicationWithinUlp) {
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform(-1.5, 1.5);
    const double b = rng.uniform(-1.5, 1.5);
    const auto fa = Fix8::from_double(a);
    const auto fb = Fix8::from_double(b);
    const double exact = fa.to_double() * fb.to_double();
    EXPECT_NEAR((fa * fb).to_double(), exact, Fix8::epsilon());
  }
}

TEST(FixedPoint, NegationSaturatesMin) {
  const auto min = Fix8::from_raw(Fix8::raw_min);
  EXPECT_EQ((-min).raw(), Fix8::raw_max);  // -(-128) saturates to 127
}

TEST(FixedPoint, ComparisonOperators) {
  EXPECT_LT(Fix8::from_double(-1.0), Fix8::from_double(1.0));
  EXPECT_EQ(Fix8::from_double(0.5), Fix8::from_raw(16));
}

TEST(FixedPoint, Fix16RoundTripFiner) {
  const double v = 0.1234;
  EXPECT_NEAR(Fix16::from_double(v).to_double(), v, Fix16::epsilon());
  EXPECT_LT(Fix16::epsilon(), Fix8::epsilon());
}

// Property sweep: round-trip error bounded by half ulp for in-range values.
class FixedRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(FixedRoundTrip, ErrorBoundedByHalfUlp) {
  const double v = GetParam();
  const double rt = Fix8::from_double(v).to_double();
  EXPECT_LE(std::abs(rt - v), Fix8::epsilon() / 2 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(GridValues, FixedRoundTrip,
                         ::testing::Values(-3.99, -2.7, -1.03125, -0.015,
                                           0.0, 0.015625, 0.51, 1.99, 3.9));

// --- DSP48 ------------------------------------------------------------------

TEST(Dsp48, MacAccumulates) {
  Dsp48Accumulator acc;
  acc.mac(3, 4);
  acc.mac(-2, 5);
  EXPECT_EQ(acc.value(), 12 - 10);
  EXPECT_FALSE(acc.overflowed());
}

TEST(Dsp48, ResetClears) {
  Dsp48Accumulator acc;
  acc.mac(100, 100);
  acc.reset();
  EXPECT_EQ(acc.value(), 0);
  EXPECT_FALSE(acc.overflowed());
}

TEST(Dsp48, OverflowDetectedAndClamped) {
  Dsp48Accumulator acc;
  acc.load(Dsp48Accumulator::kAccMax - 5);
  EXPECT_FALSE(acc.mac(4, 4));
  EXPECT_TRUE(acc.overflowed());
  EXPECT_EQ(acc.value(), Dsp48Accumulator::kAccMax);
}

TEST(Dsp48, NegativeOverflowClamped) {
  Dsp48Accumulator acc;
  acc.load(Dsp48Accumulator::kAccMin + 5);
  EXPECT_FALSE(acc.mac(-4, 4));
  EXPECT_EQ(acc.value(), Dsp48Accumulator::kAccMin);
}

TEST(Dsp48, CapacityCheckForProteaReductions) {
  // Deepest ProTEA reduction: d_model=768 int8*int8 products.
  EXPECT_TRUE(accumulation_fits_dsp48(768, 128 * 128));
  EXPECT_TRUE(accumulation_fits_dsp48(4096, 128 * 128));
  // A reduction deep enough to overflow is detected by the check.
  EXPECT_FALSE(accumulation_fits_dsp48(int64_t{1} << 40, 128 * 128));
}

// --- Quantizer ------------------------------------------------------------------

TEST(Quantizer, RejectsBadBitWidths) {
  EXPECT_THROW(Quantizer(1), std::invalid_argument);
  EXPECT_THROW(Quantizer(17), std::invalid_argument);
  EXPECT_NO_THROW(Quantizer(2));
  EXPECT_NO_THROW(Quantizer(16));
}

TEST(Quantizer, CalibratePow2CoversRange) {
  Quantizer q(8, true);
  std::vector<float> data = {-3.1f, 0.5f, 2.9f};
  const double scale = q.calibrate(data);
  // Power-of-two scale, and no value saturates.
  const double log2s = std::log2(scale);
  EXPECT_NEAR(log2s, std::round(log2s), 1e-9);
  for (float x : data) {
    EXPECT_LE(std::abs(q.quantize_one(x)), 127);
    EXPECT_NEAR(q.dequantize_one(q.quantize_one(x)), x, scale / 2 + 1e-9);
  }
}

TEST(Quantizer, CalibrateFreeScaleTighter) {
  std::vector<float> data = {-3.1f, 0.5f, 2.9f};
  Quantizer pow2(8, true), free(8, false);
  EXPECT_GE(pow2.calibrate(data), free.calibrate(data));
}

TEST(Quantizer, ZeroDataGivesValidScale) {
  Quantizer q(8, true);
  std::vector<float> zeros(16, 0.0f);
  EXPECT_GT(q.calibrate(zeros), 0.0);
  EXPECT_EQ(q.quantize_one(0.0f), 0);
}

TEST(Quantizer, QuantizeSaturatesAtExtremes) {
  Quantizer q(8, true);
  q.set_scale(0.01);
  EXPECT_EQ(q.quantize_one(10.0f), 127);
  EXPECT_EQ(q.quantize_one(-10.0f), -128);
}

TEST(Quantizer, SizeMismatchThrows) {
  Quantizer q(8);
  std::vector<float> in(4);
  std::vector<int8_t> out(3);
  EXPECT_THROW(q.quantize(in, out), std::invalid_argument);
}

TEST(Quantizer, MeasureStatsReasonable) {
  Quantizer q(8, true);
  util::Xoshiro256 rng(3);
  std::vector<float> data(4096);
  for (auto& x : data) x = static_cast<float>(rng.normal());
  q.calibrate(data);
  const QuantStats stats = q.measure(data);
  EXPECT_LE(stats.max_abs_error, q.scale() / 2 + 1e-9);
  EXPECT_GT(stats.rms_error, 0.0);
  EXPECT_LE(stats.mean_abs_error, stats.max_abs_error);
}

TEST(Quantizer, FourBitCoarserThanEightBit) {
  util::Xoshiro256 rng(4);
  std::vector<float> data(2048);
  for (auto& x : data) x = static_cast<float>(rng.normal());
  Quantizer q4(4, true), q8(8, true);
  q4.calibrate(data);
  q8.calibrate(data);
  EXPECT_GT(q4.measure(data).rms_error, q8.measure(data).rms_error);
}

TEST(Quantizer, Int16Path) {
  Quantizer q(16, true);
  std::vector<float> in = {0.1f, -0.2f, 0.3f};
  q.calibrate(in);
  std::vector<int16_t> out(3);
  q.quantize(in, out);
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(q.dequantize_one(out[i]), in[i], q.scale() / 2 + 1e-9);
  }
}

// --- Requantize --------------------------------------------------------------------

TEST(Requantize, ParamsRepresentRatio) {
  for (double ratio : {0.001, 0.03, 0.25, 1.0, 3.7, 100.0}) {
    const RequantParams p = make_requant_params(ratio);
    const double represented =
        static_cast<double>(p.multiplier) / std::exp2(31) *
        std::exp2(31 - p.shift);
    EXPECT_NEAR(represented, ratio, ratio * 1e-8);
    EXPECT_GE(p.multiplier, 1 << 30);
  }
}

TEST(Requantize, BadRatioThrows) {
  EXPECT_THROW(make_requant_params(0.0), std::invalid_argument);
  EXPECT_THROW(make_requant_params(-1.0), std::invalid_argument);
}

TEST(Requantize, MatchesDoubleReference) {
  util::Xoshiro256 rng(8);
  for (int i = 0; i < 2000; ++i) {
    const double ratio = std::exp(rng.uniform(-8.0, 2.0));
    const RequantParams p = make_requant_params(ratio);
    const auto acc =
        static_cast<int64_t>(rng.uniform(-1e6, 1e6));
    const int32_t got = requantize(acc, p, -128, 127);
    const double ideal = static_cast<double>(acc) * ratio;
    const auto expected = static_cast<int32_t>(std::clamp(
        std::round(ideal), -128.0, 127.0));
    // The Q31 multiplier representation can flip exact-half cases.
    EXPECT_NEAR(got, expected, 1) << "acc=" << acc << " ratio=" << ratio;
  }
}

TEST(Requantize, SaturatesToRange) {
  const RequantParams p = make_requant_params(1.0);
  EXPECT_EQ(requantize(1000000, p, -128, 127), 127);
  EXPECT_EQ(requantize(-1000000, p, -128, 127), -128);
}

TEST(Requantize, Pow2RoundsHalfToEven) {
  // 5 >> 1 with frac=1(half): floor=2 even -> 2; 7 >> 1: floor=3 odd -> 4.
  EXPECT_EQ(requantize_pow2(5, 1, -128, 127), 2);
  EXPECT_EQ(requantize_pow2(7, 1, -128, 127), 4);
  EXPECT_EQ(requantize_pow2(6, 1, -128, 127), 3);
}

TEST(Requantize, Pow2NegativeShiftIsLeftShift) {
  EXPECT_EQ(requantize_pow2(3, -2, -128, 127), 12);
}

TEST(Requantize, Pow2Saturates) {
  EXPECT_EQ(requantize_pow2(10000, 0, -128, 127), 127);
  EXPECT_EQ(requantize_pow2(-10000, 0, -128, 127), -128);
}

// Property: requantize is monotone in the accumulator.
class RequantMonotone : public ::testing::TestWithParam<double> {};

TEST_P(RequantMonotone, MonotoneInAcc) {
  const RequantParams p = make_requant_params(GetParam());
  int32_t prev = requantize(-5000, p, -128, 127);
  for (int64_t acc = -4999; acc <= 5000; acc += 37) {
    const int32_t cur = requantize(acc, p, -128, 127);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Ratios, RequantMonotone,
                         ::testing::Values(0.003, 0.01, 0.0625, 0.3, 1.0));

}  // namespace
}  // namespace protea::numeric
