// Tests for the packed int8 GEMM kernel layer: exact equivalence with the
// retained naive references on ragged and degenerate shapes, thread-count
// invariance, and bit-identity of the engines that ride on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "accel/engines.hpp"
#include "accel/quantized_model.hpp"
#include "numeric/requantize.hpp"
#include "tensor/qgemm.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace protea::tensor {
namespace {

MatrixI8 random_i8(size_t r, size_t c, uint64_t seed) {
  MatrixI8 m(r, c);
  util::Xoshiro256 rng(seed);
  for (auto& x : m.flat()) {
    x = static_cast<int8_t>(static_cast<int32_t>(rng.bounded(256)) - 128);
  }
  return m;
}

struct Shape {
  size_t m, k, n;
};

// Ragged (non-multiples of the 4x8 register block and the 256 K block),
// degenerate, and decode-step shapes.
const Shape kShapes[] = {
    {1, 1, 1},      {4, 8, 8},    {5, 7, 9},     {13, 31, 17},
    {3, 300, 11},   {64, 64, 64}, {1, 128, 96},  // SL=1 decode step
    {0, 8, 8},      {8, 0, 8},    {8, 8, 0},     {65, 257, 33},
};

TEST(QGemm, MatchesNaiveOnRaggedShapes) {
  uint64_t seed = 1;
  for (const auto& s : kShapes) {
    const auto a = random_i8(s.m, s.k, seed++);
    const auto b = random_i8(s.k, s.n, seed++);
    MatrixI32 packed, naive;
    qgemm(a, b, packed);
    qgemm_naive(a, b, naive);
    EXPECT_EQ(packed, naive) << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(QGemmBt, MatchesNaiveOnRaggedShapes) {
  uint64_t seed = 100;
  for (const auto& s : kShapes) {
    const auto a = random_i8(s.m, s.k, seed++);
    const auto bt = random_i8(s.n, s.k, seed++);
    MatrixI32 packed, naive;
    qgemm_bt(a, bt, packed);
    qgemm_bt_naive(a, bt, naive);
    EXPECT_EQ(packed, naive) << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(QGemm, AgreesWithBtOnTransposedOperand) {
  const auto a = random_i8(9, 33, 7);
  const auto b = random_i8(33, 21, 8);
  MatrixI8 bt(b.cols(), b.rows());
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) bt(c, r) = b(r, c);
  }
  MatrixI32 c1, c2;
  qgemm(a, b, c1);
  qgemm_bt(a, bt, c2);
  EXPECT_EQ(c1, c2);
}

TEST(QGemm, ThreadCountDoesNotChangeResult) {
  util::ThreadPool pool(4);
  uint64_t seed = 200;
  for (const auto& s : kShapes) {
    const auto a = random_i8(s.m, s.k, seed++);
    const auto b = random_i8(s.k, s.n, seed++);
    MatrixI32 serial, threaded;
    qgemm(a, b, serial);
    qgemm(a, b, threaded, &pool);
    EXPECT_EQ(serial, threaded) << "m=" << s.m << " k=" << s.k
                                << " n=" << s.n;
  }
}

TEST(QGemm, InnerDimensionMismatchThrows) {
  const auto a = random_i8(4, 5, 300);
  const auto b = random_i8(6, 4, 301);
  MatrixI32 c;
  EXPECT_THROW(qgemm(a, b, c), std::invalid_argument);
  EXPECT_THROW(qgemm_bt(a, random_i8(4, 6, 302), c), std::invalid_argument);
}

TEST(QGemm, DefaultPoolConfigurable) {
  EXPECT_EQ(qgemm_default_pool(), nullptr);
  qgemm_set_threads(3);
  ASSERT_NE(qgemm_default_pool(), nullptr);
  EXPECT_EQ(qgemm_default_pool()->size(), 3u);

  const auto a = random_i8(17, 40, 400);
  const auto b = random_i8(40, 23, 401);
  MatrixI32 serial, pooled;
  qgemm_naive(a, b, serial);
  qgemm(a, b, pooled, qgemm_default_pool());
  EXPECT_EQ(serial, pooled);

  qgemm_set_threads(0);
  EXPECT_EQ(qgemm_default_pool(), nullptr);
}

}  // namespace
}  // namespace protea::tensor

// --- engine bit-identity against naive loop nests ---------------------------
//
// The engines must produce the same int8 outputs as the seed's naive tile
// loops; with exact int32 accumulation this reduces to: naive GEMM + the
// same bias/requant write-back.
namespace protea::accel {
namespace {

using numeric::RequantParams;
using tensor::MatrixI32;
using tensor::MatrixI8;

MatrixI8 random_i8(size_t r, size_t c, uint64_t seed) {
  MatrixI8 m(r, c);
  util::Xoshiro256 rng(seed);
  for (auto& x : m.flat()) {
    x = static_cast<int8_t>(static_cast<int32_t>(rng.bounded(256)) - 128);
  }
  return m;
}

std::vector<int32_t> random_bias(size_t n, uint64_t seed) {
  std::vector<int32_t> b(n);
  util::Xoshiro256 rng(seed);
  for (auto& x : b) x = static_cast<int32_t>(rng.bounded(20000)) - 10000;
  return b;
}

int8_t requant8(int64_t acc, const RequantParams& rq) {
  return static_cast<int8_t>(numeric::requantize(acc, rq, -128, 127));
}

TEST(EngineBitIdentity, QkvEngineMatchesNaive) {
  const size_t sl = 9, d = 40, dk = 12;
  const auto x = random_i8(sl, d, 1);
  QHeadWeights head;
  head.wqt = random_i8(dk, d, 2);
  head.wkt = random_i8(dk, d, 3);
  head.wvt = random_i8(dk, d, 4);
  head.bq = random_bias(dk, 5);
  head.bk = random_bias(dk, 6);
  head.bv = random_bias(dk, 7);
  const auto rq_q = numeric::make_requant_params(0.003);
  const auto rq_k = numeric::make_requant_params(0.005);
  const auto rq_v = numeric::make_requant_params(0.002);

  MatrixI8 q, k, v;
  EngineStats stats;
  run_qkv_engine(x, head, 16, rq_q, rq_k, rq_v, q, k, v, &stats);
  EXPECT_EQ(stats.macs, 3 * sl * d * dk);

  MatrixI32 aq, ak, av;
  tensor::qgemm_bt_naive(x, head.wqt, aq);
  tensor::qgemm_bt_naive(x, head.wkt, ak);
  tensor::qgemm_bt_naive(x, head.wvt, av);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < dk; ++j) {
      EXPECT_EQ(q(i, j), requant8(int64_t{aq(i, j)} + head.bq[j], rq_q));
      EXPECT_EQ(k(i, j), requant8(int64_t{ak(i, j)} + head.bk[j], rq_k));
      EXPECT_EQ(v(i, j), requant8(int64_t{av(i, j)} + head.bv[j], rq_v));
    }
  }
}

TEST(EngineBitIdentity, ProjectionEngineMatchesNaive) {
  const size_t rows = 7, d = 33, out_dim = 19;
  const auto x = random_i8(rows, d, 10);
  const auto wt = random_i8(out_dim, d, 11);
  const auto bias = random_bias(out_dim, 12);
  const auto rq = numeric::make_requant_params(0.004);

  MatrixI8 out;
  run_projection_engine(x, wt, bias, 8, rq, out);

  MatrixI32 acc;
  tensor::qgemm_bt_naive(x, wt, acc);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      EXPECT_EQ(out(i, j), requant8(int64_t{acc(i, j)} + bias[j], rq));
    }
  }
}

TEST(EngineBitIdentity, QkAndSvEnginesMatchNaive) {
  const size_t sl = 11, dk = 13;
  const auto q = random_i8(sl, dk, 20);
  const auto k = random_i8(sl, dk, 21);
  const auto rq_logit = numeric::make_requant_params(0.01);
  MatrixI8 logits;
  run_qk_engine(q, k, rq_logit, logits);

  MatrixI32 acc;
  tensor::qgemm_bt_naive(q, k, acc);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < sl; ++j) {
      EXPECT_EQ(logits(i, j), requant8(acc(i, j), rq_logit));
    }
  }

  const auto weights = random_i8(sl, sl, 22);
  const auto v = random_i8(sl, dk, 23);
  const auto rq_sv = numeric::make_requant_params(0.008);
  MatrixI8 scores;
  run_sv_engine(weights, v, rq_sv, scores);

  tensor::qgemm_naive(weights, v, acc);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < dk; ++j) {
      EXPECT_EQ(scores(i, j), requant8(acc(i, j), rq_sv));
    }
  }
}

TEST(EngineBitIdentity, FfnEngineMatchesNaiveWithRelu) {
  const size_t sl = 6, in_dim = 29, out_dim = 23;
  const auto in = random_i8(sl, in_dim, 30);
  const auto w = random_i8(in_dim, out_dim, 31);
  const auto bias = random_bias(out_dim, 32);
  const auto rq = numeric::make_requant_params(0.006);

  MatrixI8 out;
  run_ffn_engine(in, w, bias, 16, rq, FfnActivation::kRelu, 0.0, out);

  MatrixI32 acc;
  tensor::qgemm_naive(in, w, acc);
  for (size_t i = 0; i < sl; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      const int8_t rq8 = requant8(int64_t{acc(i, j)} + bias[j], rq);
      EXPECT_EQ(out(i, j), std::max<int8_t>(rq8, 0));
    }
  }
}

TEST(EngineBitIdentity, EnginesUnchangedByKernelThreading) {
  const size_t sl = 16, d = 64;
  const auto in = random_i8(sl, d, 40);
  const auto w = random_i8(d, d, 41);
  const auto bias = random_bias(d, 42);
  const auto rq = numeric::make_requant_params(0.004);

  MatrixI8 serial_out, threaded_out;
  run_ffn_engine(in, w, bias, 32, rq, FfnActivation::kGeluLut, 0.05,
                 serial_out);
  tensor::qgemm_set_threads(4);
  run_ffn_engine(in, w, bias, 32, rq, FfnActivation::kGeluLut, 0.05,
                 threaded_out);
  tensor::qgemm_set_threads(0);
  EXPECT_EQ(serial_out, threaded_out);
}

}  // namespace
}  // namespace protea::accel
