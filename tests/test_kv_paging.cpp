// Property tests for the paged KV-cache layer: the KvBlockPool free
// list's all-or-nothing reservation contract, and — the tentpole
// invariant — bit-identity of paged decode against dense decode across
// randomized (T, capacity, block_size) triples, including
// block-boundary-straddling sequence lengths, single-token blocks and
// shared-pool sequences with block exhaustion backpressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

/// Model + quantized decoder at a given target capacity (seq_len).
struct PagingFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit PagingFixture(uint32_t seq_len, uint64_t seed = 200) {
    cfg.seq_len = seq_len;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(6, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }
};

// --- KvBlockPool free-list contract -----------------------------------------

TEST(KvBlockPool, AllOrNothingReservationAndPeakTracking) {
  runtime::KvBlockPool pool;
  pool.configure(4, 2, 16);
  EXPECT_EQ(pool.free_blocks(), 4u);
  EXPECT_EQ(pool.block_bytes(), 32u);

  std::vector<uint32_t> held;
  EXPECT_TRUE(pool.try_reserve(3, held));
  EXPECT_EQ(held.size(), 3u);
  EXPECT_EQ(pool.used_blocks(), 3u);
  EXPECT_EQ(pool.peak_used_blocks(), 3u);

  // Shortfall takes NOTHING (a partial grab would deadlock two waiters)
  // and records one backpressure event.
  std::vector<uint32_t> more;
  EXPECT_FALSE(pool.try_reserve(2, more));
  EXPECT_TRUE(more.empty());
  EXPECT_EQ(pool.free_blocks(), 1u);
  EXPECT_EQ(pool.exhaustion_events(), 1u);

  pool.release(held);
  held.clear();
  EXPECT_EQ(pool.free_blocks(), 4u);
  EXPECT_EQ(pool.peak_used_blocks(), 3u);  // high-water mark sticks

  // Recycled blocks come back in free-list order; reservation succeeds
  // again with the same all-or-nothing semantics.
  EXPECT_TRUE(pool.try_reserve(4, held));
  EXPECT_EQ(pool.free_blocks(), 0u);
  EXPECT_EQ(pool.peak_used_blocks(), 4u);
  pool.release(held);
}

TEST(KvBlockPool, ValidatesArguments) {
  runtime::KvBlockPool pool;
  EXPECT_THROW(pool.configure(0, 2, 16), std::invalid_argument);
  std::vector<uint32_t> out;
  EXPECT_THROW(pool.try_reserve(1, out), std::logic_error);  // unconfigured

  pool.configure(2, 2, 16);
  // A request larger than the pool could never be satisfied by waiting.
  EXPECT_THROW(pool.reserve_wait(3, out), runtime::KvBlockExhausted);
  const uint32_t bad = 7;
  EXPECT_THROW(pool.release({&bad, 1}), std::invalid_argument);
  EXPECT_EQ(pool.free_blocks(), 2u);  // failed release mutated nothing

  // Double frees — of an already-free block, or duplicated WITHIN one
  // span — must throw and leave the pool consistent, never alias one
  // block to two sequences.
  std::vector<uint32_t> held;
  ASSERT_TRUE(pool.try_reserve(1, held));
  const std::vector<uint32_t> dup = {held[0], held[0]};
  EXPECT_THROW(pool.release(dup), std::logic_error);
  EXPECT_EQ(pool.free_blocks(), 1u);  // rollback kept the held block held
  pool.release(held);
  EXPECT_THROW(pool.release(held), std::logic_error);
  EXPECT_EQ(pool.free_blocks(), 2u);
}

TEST(KvCache, LayoutGuards) {
  runtime::KvCache dense;
  dense.configure(1, 2, 8, 4, 4, runtime::KvCacheOptions{.block_rows = 0});
  EXPECT_FALSE(dense.paged());
  EXPECT_TRUE(dense.try_reserve_rows(4));  // dense always covers capacity
  tensor::MatrixI8 rows(2, 8);
  EXPECT_THROW(dense.scatter_self(0, 0, 0, rows, rows), std::logic_error);
  EXPECT_THROW(dense.gather_self(0, 0, 2, rows, rows), std::logic_error);

  // A dense cache cannot take a pool, and a paged cache rejects a pool
  // whose row geometry does not match the stack.
  runtime::KvBlockPool pool;
  pool.configure(2, 2, 999);
  runtime::KvCache paged;
  EXPECT_THROW(
      paged.configure(1, 2, 8, 4, 4,
                      runtime::KvCacheOptions{.block_rows = 0, .pool = &pool}),
      std::invalid_argument);
  EXPECT_THROW(
      paged.configure(1, 2, 8, 4, 4,
                      runtime::KvCacheOptions{.block_rows = 2, .pool = &pool}),
      std::invalid_argument);
}

// --- paged == dense bit-identity (the tentpole invariant) -------------------

/// Runs prefill(T rows) + decode-to-capacity on a dense and a paged
/// session and asserts every emitted state matches bit for bit.
void expect_paged_matches_dense(const PagingFixture& fx, size_t t_rows,
                                size_t block_rows, uint64_t seed) {
  const auto prefix = random_input(t_rows, fx.cfg.d_model, seed);
  const auto tokens =
      random_input(fx.cfg.seq_len, fx.cfg.d_model, seed + 1);

  runtime::GenerationOptions dense_opts;
  dense_opts.kv_block_rows = 0;  // PR-3 dense layout
  runtime::GenerationSession dense(fx.acfg, fx.qd, nullptr, dense_opts);

  runtime::GenerationOptions paged_opts;
  paged_opts.kv_block_rows = block_rows;
  runtime::GenerationSession paged(fx.acfg, fx.qd, nullptr, paged_opts);
  ASSERT_TRUE(paged.cache().paged());

  tensor::MatrixF dense_states, paged_states;
  dense.prefill(prefix, fx.memory, dense_states);
  paged.prefill(prefix, fx.memory, paged_states);
  ASSERT_EQ(paged_states, dense_states)
      << "prefill T=" << t_rows << " bs=" << block_rows;

  tensor::MatrixF ds, ps;
  for (size_t t = t_rows; t < fx.cfg.seq_len; ++t) {
    const auto token = tokens.slice_rows(t, 1);
    dense.decode_step(token, ds);
    paged.decode_step(token, ps);
    ASSERT_EQ(ps, ds) << "pos " << t << " T=" << t_rows
                      << " bs=" << block_rows;
  }
  // The paged session held exactly ceil(rows / bs) blocks at the end.
  EXPECT_EQ(paged.cache().block_table().size(),
            (fx.cfg.seq_len + block_rows - 1) / block_rows);
}

TEST(KvPaging, BoundaryStraddlingTriplesAreBitIdentical) {
  // Hand-picked edges: single-token blocks, prompts ending exactly on a
  // block boundary, one past it, one before it, a block larger than the
  // whole capacity, and a prompt filling capacity outright.
  {
    PagingFixture fx(8, 210);
    expect_paged_matches_dense(fx, 5, 1, 300);   // single-token blocks
    expect_paged_matches_dense(fx, 4, 4, 301);   // prompt == boundary
    expect_paged_matches_dense(fx, 5, 4, 302);   // one past the boundary
    expect_paged_matches_dense(fx, 3, 4, 303);   // one before the boundary
    expect_paged_matches_dense(fx, 3, 16, 304);  // block > capacity
    expect_paged_matches_dense(fx, 8, 4, 305);   // prompt fills capacity
  }
  {
    PagingFixture fx(13, 211);  // capacity not a multiple of any block
    expect_paged_matches_dense(fx, 7, 4, 306);
    expect_paged_matches_dense(fx, 12, 5, 307);
  }
}

TEST(KvPaging, RandomizedTriplesAreBitIdentical) {
  // Fixed-seed randomized sweep over (T, capacity, block_size): the
  // paged layout must be invisible to the numerics for every shape.
  util::Xoshiro256 rng(220);
  const uint32_t capacities[] = {6, 9, 12, 16};
  const size_t block_sizes[] = {1, 2, 3, 5, 8};
  for (int trial = 0; trial < 6; ++trial) {
    const uint32_t cap =
        capacities[rng.next() % (sizeof(capacities) / sizeof(uint32_t))];
    const size_t bs =
        block_sizes[rng.next() % (sizeof(block_sizes) / sizeof(size_t))];
    const size_t t_rows = 1 + rng.next() % cap;
    PagingFixture fx(cap, 230 + trial);
    expect_paged_matches_dense(fx, t_rows, bs, 400 + trial * 10);
  }
}

TEST(KvPaging, SharedPoolInterleavedSequencesStayIsolated) {
  // Two sessions on ONE pool, decoding in lockstep: block tables
  // interleave in the pool, yet each sequence's states must match a
  // private-pool run bit for bit (no neighbor corruption).
  PagingFixture fx(12, 240);
  runtime::KvBlockPool pool;
  pool.configure(/*blocks=*/8, /*block_rows=*/3,
                 fx.cfg.num_layers * fx.cfg.num_heads * 2 *
                     fx.cfg.head_dim());

  runtime::GenerationOptions shared_opts;
  shared_opts.kv_block_rows = 3;
  shared_opts.kv_pool = &pool;
  runtime::GenerationSession a(fx.acfg, fx.qd, nullptr, shared_opts);
  runtime::GenerationSession b(fx.acfg, fx.qd, nullptr, shared_opts);
  runtime::GenerationSession solo(fx.acfg, fx.qd);

  const auto prefix_a = random_input(4, fx.cfg.d_model, 241);
  const auto prefix_b = random_input(2, fx.cfg.d_model, 242);
  const auto tokens = random_input(12, fx.cfg.d_model, 243);

  tensor::MatrixF sa, sb, ref_states;
  a.prefill(prefix_a, fx.memory, sa);
  b.prefill(prefix_b, fx.memory, sb);

  tensor::MatrixF stepped_a, stepped_b;
  std::vector<tensor::MatrixF> states_a, states_b;
  for (size_t t = 0; t < 6; ++t) {  // interleaved lockstep decode
    a.decode_step(tokens.slice_rows(t, 1), stepped_a);
    b.decode_step(tokens.slice_rows(t, 1), stepped_b);
    states_a.push_back(stepped_a);
    states_b.push_back(stepped_b);
  }
  EXPECT_GT(pool.used_blocks(), 0u);

  // Replay each sequence on a private session and compare.
  tensor::MatrixF ref_step;
  solo.prefill(prefix_a, fx.memory, ref_states);
  EXPECT_EQ(ref_states, sa);
  for (size_t t = 0; t < 6; ++t) {
    solo.decode_step(tokens.slice_rows(t, 1), ref_step);
    EXPECT_EQ(states_a[t], ref_step) << "seq a pos " << t;
  }
  solo.prefill(prefix_b, fx.memory, ref_states);
  EXPECT_EQ(ref_states, sb);
  for (size_t t = 0; t < 6; ++t) {
    solo.decode_step(tokens.slice_rows(t, 1), ref_step);
    EXPECT_EQ(states_b[t], ref_step) << "seq b pos " << t;
  }

  // end_sequence releases every held block back to the pool.
  a.end_sequence();
  b.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(KvPaging, ExhaustedPoolThrowsInsteadOfCorrupting) {
  // A session decoding past what the shared pool can back must fail
  // loudly (KvBlockExhausted) — never overwrite a neighbor's rows.
  PagingFixture fx(12, 250);
  runtime::KvBlockPool pool;
  pool.configure(/*blocks=*/2, /*block_rows=*/2,
                 fx.cfg.num_layers * fx.cfg.num_heads * 2 *
                     fx.cfg.head_dim());
  runtime::GenerationOptions opts;
  opts.kv_block_rows = 2;
  opts.kv_pool = &pool;
  runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, opts);

  const auto prefix = random_input(3, fx.cfg.d_model, 251);
  const auto token = random_input(1, fx.cfg.d_model, 252);
  tensor::MatrixF states, state;
  session.prefill(prefix, fx.memory, states);  // 2 blocks (4 rows)
  session.decode_step(token, state);           // row 4 fits the reservation
  EXPECT_THROW(session.decode_step(token, state),
               runtime::KvBlockExhausted);
  // The failed step reserved nothing and cached nothing.
  EXPECT_EQ(session.position(), 4u);
  EXPECT_EQ(pool.free_blocks(), 0u);
  session.end_sequence();
  EXPECT_EQ(pool.free_blocks(), 2u);
}

TEST(KvPaging, BlockReuseAfterReleaseIsBitIdentical) {
  // Blocks recycled through the free list must behave like fresh ones:
  // run a sequence, release, run a different sequence, compare against
  // an untouched session.
  PagingFixture fx(10, 260);
  runtime::GenerationOptions opts;
  opts.kv_block_rows = 2;
  runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, opts);

  tensor::MatrixF states;
  session.prefill(random_input(9, fx.cfg.d_model, 261), fx.memory, states);
  const uint64_t fills_before = session.cache().pool()->zero_fills();
  session.end_sequence();
  // Releasing is cheap: blocks are only MARKED dirty, the scrub happens
  // lazily at the next hand-out (and exactly once per recycled block).
  EXPECT_EQ(session.cache().pool()->zero_fills(), fills_before);

  const auto prefix = random_input(4, fx.cfg.d_model, 262);
  const auto memory2 = random_input(5, fx.cfg.d_model, 263);
  tensor::MatrixF reused, fresh;
  session.prefill(prefix, memory2, reused);
  EXPECT_GT(session.cache().pool()->zero_fills(), fills_before);
  runtime::GenerationSession session2(fx.acfg, fx.qd, nullptr, opts);
  session2.prefill(prefix, memory2, fresh);
  EXPECT_EQ(reused, fresh);
}

// --- block-strided span path vs gather fallback -----------------------------

/// Three-way bit-identity at one (T, block_rows) shape: dense reference,
/// paged block-strided (the default decode path: QK/SV stream the block
/// table via span lists, softmax fused on the i32 accumulator), and the
/// paged gather fallback (kv_gather_fallback: legacy copy-out into
/// contiguous scratch). All three must agree bit for bit at every step,
/// and only the fallback may move gather bytes.
void expect_strided_matches_gather(const PagingFixture& fx, size_t t_rows,
                                   size_t block_rows, uint64_t seed) {
  const auto prefix = random_input(t_rows, fx.cfg.d_model, seed);
  const auto tokens =
      random_input(fx.cfg.seq_len, fx.cfg.d_model, seed + 1);

  runtime::GenerationOptions dense_opts;
  dense_opts.kv_block_rows = 0;
  runtime::GenerationSession dense(fx.acfg, fx.qd, nullptr, dense_opts);

  accel::EngineStats strided_stats, gather_stats;
  runtime::GenerationOptions strided_opts;
  strided_opts.kv_block_rows = block_rows;
  runtime::GenerationSession strided(fx.acfg, fx.qd, &strided_stats,
                                     strided_opts);

  runtime::GenerationOptions gather_opts = strided_opts;
  gather_opts.kv_gather_fallback = true;
  runtime::GenerationSession gather(fx.acfg, fx.qd, &gather_stats,
                                    gather_opts);

  tensor::MatrixF ds, ss, gs;
  dense.prefill(prefix, fx.memory, ds);
  strided.prefill(prefix, fx.memory, ss);
  gather.prefill(prefix, fx.memory, gs);
  ASSERT_EQ(ss, ds) << "strided prefill T=" << t_rows << " bs=" << block_rows;
  ASSERT_EQ(gs, ds) << "gather prefill T=" << t_rows << " bs=" << block_rows;

  for (size_t t = t_rows; t < fx.cfg.seq_len; ++t) {
    const auto token = tokens.slice_rows(t, 1);
    dense.decode_step(token, ds);
    strided.decode_step(token, ss);
    gather.decode_step(token, gs);
    ASSERT_EQ(ss, ds) << "strided pos " << t << " bs=" << block_rows;
    ASSERT_EQ(gs, ds) << "gather pos " << t << " bs=" << block_rows;
  }
  // The span path never copies the prefix; the fallback always does.
  EXPECT_EQ(strided_stats.gathered_bytes, 0u);
  EXPECT_GT(strided_stats.span_runs, 0u);
  EXPECT_GT(gather_stats.gathered_bytes, 0u);
  EXPECT_EQ(gather_stats.span_runs, 0u);
}

TEST(KvPaging, BlockStridedMatchesGatherFallbackAcrossBlockSizes) {
  // block_rows 1 (every row its own run), 3 (straddles everywhere: 8 and
  // 13 are not multiples of 3) and 16 (one run covering the whole
  // capacity), with prompts ending on, before and past block boundaries.
  {
    PagingFixture fx(8, 270);
    expect_strided_matches_gather(fx, 5, 1, 600);
    expect_strided_matches_gather(fx, 3, 3, 601);   // prompt == boundary
    expect_strided_matches_gather(fx, 4, 3, 602);   // one past it
    expect_strided_matches_gather(fx, 2, 3, 603);   // one before it
    expect_strided_matches_gather(fx, 5, 16, 604);  // block > capacity
  }
  {
    PagingFixture fx(13, 271);
    expect_strided_matches_gather(fx, 7, 3, 605);
    expect_strided_matches_gather(fx, 13, 3, 606);  // prompt fills capacity
  }
}

TEST(KvPaging, ForkedTablesMidDivergenceReadOwnSpans) {
  // COW fork mid-decode, then divergent continuations: the forked
  // sibling's span lists must resolve through ITS block table — after
  // divergence the straddling block is privatized by the first write, so
  // the child must never observe the parent's post-fork rows (and vice
  // versa). Both lineages are checked against fresh solo replays, on the
  // strided path and the gather fallback alike.
  PagingFixture fx(14, 280);
  for (const size_t block_rows : {size_t{1}, size_t{3}}) {
    for (const bool fallback : {false, true}) {
      runtime::KvBlockPool pool;
      pool.configure(/*blocks=*/32, block_rows,
                     fx.cfg.num_layers * fx.cfg.num_heads * 2 *
                         fx.cfg.head_dim());
      runtime::GenerationOptions opts;
      opts.kv_block_rows = block_rows;
      opts.kv_pool = &pool;
      opts.kv_gather_fallback = fallback;
      runtime::GenerationSession parent(fx.acfg, fx.qd, nullptr, opts);
      runtime::GenerationSession child(fx.acfg, fx.qd, nullptr, opts);

      const auto prompt = random_input(4, fx.cfg.d_model, 281);
      const auto shared_tok = random_input(3, fx.cfg.d_model, 282);
      const auto tok_p = random_input(7, fx.cfg.d_model, 283);
      const auto tok_c = random_input(7, fx.cfg.d_model, 284);

      // Prefill + 3 shared steps, then fork mid-block (position 7 with
      // block_rows 3 leaves a partially filled straddling block).
      tensor::MatrixF states, ps, cs, rs;
      parent.prefill(prompt, fx.memory, states);
      for (size_t t = 0; t < 3; ++t) {
        parent.decode_step(shared_tok.slice_rows(t, 1), ps);
      }
      child.fork_from(parent);

      // Interleave divergent steps so each lineage writes between the
      // other's reads.
      std::vector<tensor::MatrixF> parent_states, child_states;
      for (size_t t = 0; t < 7; ++t) {
        parent.decode_step(tok_p.slice_rows(t, 1), ps);
        child.decode_step(tok_c.slice_rows(t, 1), cs);
        parent_states.push_back(ps);
        child_states.push_back(cs);
      }

      // Solo replays of each full lineage are the ground truth.
      runtime::GenerationSession solo(fx.acfg, fx.qd);
      for (const bool is_child : {false, true}) {
        solo.prefill(prompt, fx.memory, states);
        for (size_t t = 0; t < 3; ++t) {
          solo.decode_step(shared_tok.slice_rows(t, 1), rs);
        }
        const auto& tok = is_child ? tok_c : tok_p;
        const auto& got = is_child ? child_states : parent_states;
        for (size_t t = 0; t < 7; ++t) {
          solo.decode_step(tok.slice_rows(t, 1), rs);
          EXPECT_EQ(got[t], rs)
              << (is_child ? "child" : "parent") << " pos " << t
              << " bs=" << block_rows << " fallback=" << fallback;
        }
      }
      parent.end_sequence();
      child.end_sequence();
      EXPECT_EQ(pool.used_blocks(), 0u);
    }
  }
}

// --- deterministic failpoints (traffic-engine fault injection) --------------

#ifdef PROTEA_FAILPOINTS
TEST(KvBlockPool, FailpointScheduleSkipsThenFailsThenDrains) {
  runtime::KvBlockPool pool;
  pool.configure(6, 2, 16);
  pool.inject_failures(2, 2);  // let 2 attempts through, fail the next 2

  std::vector<uint32_t> a, b, c;
  EXPECT_TRUE(pool.try_reserve(1, a));   // skip 1
  EXPECT_TRUE(pool.try_reserve(1, b));   // skip 2
  EXPECT_FALSE(pool.try_reserve(1, c));  // injected failure 1
  EXPECT_TRUE(c.empty());                // failed takes take NOTHING
  EXPECT_EQ(pool.failpoint_trips(), 1u);
  EXPECT_FALSE(pool.try_reserve(1, c));  // injected failure 2
  EXPECT_EQ(pool.failpoint_trips(), 2u);
  // Injected failures read as ordinary exhaustion to observers.
  EXPECT_EQ(pool.exhaustion_events(), 2u);

  // Schedule drained: the pool is healthy again without clear_failures().
  EXPECT_TRUE(pool.try_reserve(1, c));
  EXPECT_EQ(pool.failpoint_trips(), 2u);
  pool.release(a);
  pool.release(b);
  pool.release(c);
}

TEST(KvBlockPool, ForcedExhaustionSparesCreditedTakes) {
  runtime::KvBlockPool pool;
  pool.configure(6, 2, 16);
  // Credit headroom is the deadlock-freedom contract the rest of the
  // system is proved against: credited takes are NEVER failpointed.
  runtime::KvPoolCredit credit;
  ASSERT_TRUE(pool.try_reserve_credit(credit, 2));

  pool.force_exhaustion(true);
  std::vector<uint32_t> out;
  EXPECT_FALSE(pool.try_reserve(1, out));
  EXPECT_FALSE(pool.try_reserve(1, out));
  EXPECT_EQ(pool.failpoint_trips(), 2u);

  // A blocking reserve would otherwise live-lock on its own failpoint
  // (the wait predicate is already true, so the retry spins): it must
  // fail loudly instead, taking nothing.
  EXPECT_THROW(pool.reserve_wait(1, out), runtime::KvBlockExhausted);
  EXPECT_TRUE(out.empty());

  std::vector<uint32_t> credited;
  EXPECT_TRUE(pool.try_reserve(2, credited, &credit));
  EXPECT_EQ(credited.size(), 2u);
  EXPECT_EQ(credit.live, 2u);

  pool.clear_failures();
  EXPECT_TRUE(pool.try_reserve(1, out));  // healthy again
  pool.release(out);
  pool.release(credited);
  EXPECT_EQ(credit.live, 0u);  // release returns headroom to the group
  pool.release_credit(credit);
}
#else
TEST(KvBlockPool, FailpointSettersThrowWhenCompiledOut) {
  runtime::KvBlockPool pool;
  pool.configure(2, 2, 16);
  EXPECT_THROW(pool.inject_failures(0, 1), std::logic_error);
  EXPECT_THROW(pool.force_exhaustion(true), std::logic_error);
  EXPECT_EQ(pool.failpoint_trips(), 0u);
}
#endif  // PROTEA_FAILPOINTS

// --- preemption swap-out / swap-in at the cache level ------------------------

TEST(KvPaging, CacheSwapRoundTripPreservesBlockBytes) {
  runtime::KvBlockPool pool;
  pool.configure(6, 2, 8);
  runtime::KvCache cache;
  runtime::KvCacheOptions opts;
  opts.block_rows = 2;
  opts.pool = &pool;
  cache.configure(1, 1, 4, 8, 4, opts);  // row_bytes = 1*1*2*4 = 8
  cache.begin_sequence(2);
  ASSERT_TRUE(cache.try_reserve_rows(5));  // 3 blocks, tail half-filled

  // Stamp a distinct byte pattern across every held block (including
  // the unfilled tail rows — they must ride along unchanged).
  std::vector<int8_t> stamp;
  int v = 1;
  for (const uint32_t b : cache.block_table()) {
    for (size_t r = 0; r < pool.block_rows(); ++r) {
      int8_t* row = pool.row_data(b, r);
      for (size_t i = 0; i < pool.row_bytes(); ++i) {
        row[i] = static_cast<int8_t>(v++ & 0x7f);
        stamp.push_back(row[i]);
      }
    }
  }
  cache.append(5);

  EXPECT_EQ(cache.swap_bytes(), 3 * pool.block_bytes());
  std::vector<int8_t> spill;
  const size_t rows = cache.swap_out(spill);
  EXPECT_EQ(rows, 5u);
  ASSERT_EQ(spill.size(), stamp.size());
  EXPECT_EQ(spill, stamp);  // table-order spill is byte-exact
  EXPECT_EQ(pool.used_blocks(), 0u);
  EXPECT_EQ(cache.swap_bytes(), 0u);

  // Restore skips the lazy re-zero (the copy overwrites every byte).
  const uint64_t zero_fills_before = pool.zero_fills();
  ASSERT_TRUE(cache.try_swap_in(spill, rows));
  EXPECT_EQ(pool.zero_fills(), zero_fills_before);
  EXPECT_EQ(cache.len(), 5u);
  ASSERT_EQ(cache.block_table().size(), 3u);
  size_t off = 0;
  for (const uint32_t b : cache.block_table()) {
    EXPECT_EQ(std::memcmp(pool.row_data(b, 0), stamp.data() + off,
                          pool.block_bytes()),
              0);
    off += pool.block_bytes();
  }
  cache.release_blocks();

  // A spill that is not a whole block count, or rows beyond what the
  // blocks hold, is a caller bug.
  EXPECT_THROW(cache.try_swap_in(std::span<const int8_t>(spill).first(7), 5),
               std::invalid_argument);
  EXPECT_THROW(cache.try_swap_in(spill, 7), std::invalid_argument);
}

}  // namespace
}  // namespace protea
