// Property tests for the Q31 requantization layer (numeric/requantize.hpp),
// with the multiplier-normalization edge as the centerpiece: when the
// mantissa of the input ratio rounds up to exactly 1.0, llround produces
// 2^31 — one past the int32 Q31 range — and make_requant_params must
// renormalize (multiplier /= 2, shift -= 1) instead of wrapping negative.
// This suite was written to corner that edge; the audit found the seed's
// normalization handles it correctly, so these tests pin the behavior
// (and the wider contract) against regressions rather than fix a defect:
//
//   * make_requant_params: multiplier always lands in [2^30, 2^31), and
//     multiplier * 2^-shift reconstructs the ratio to within half a Q31
//     ULP — across exact powers of two, ratios a hair below/above them
//     (the normalization trigger), and a log-uniform random sweep;
//   * requantize == an independent divide/remainder round-half-away
//     reference on the full (acc, params) grid — the implementation's
//     add-half-then-shift trick never disagrees with exact arithmetic;
//   * requantize == llround(acc * ratio) EXACTLY for dyadic ratios, and
//     within 1 output ULP of the real-valued product for arbitrary ones;
//   * int8 saturation boundary: values that round to 128 / -129 clamp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "numeric/requantize.hpp"
#include "util/rng.hpp"

namespace protea::numeric {
namespace {

/// Independent reference: exact integer divide/remainder with explicit
/// round-half-away-from-zero — no shared machinery with the
/// implementation's add-half-then-arithmetic-shift path.
int64_t ref_requantize_unclamped(int64_t acc, RequantParams p) {
  const __int128 num = static_cast<__int128>(acc) * p.multiplier;
  if (p.shift <= 0) {
    return static_cast<int64_t>(num << -p.shift);
  }
  const __int128 den = static_cast<__int128>(1) << p.shift;
  __int128 q = num / den;  // truncates toward zero
  __int128 r = num % den;
  if (r < 0) r = -r;
  if (2 * r >= den) q += (num >= 0 ? 1 : -1);
  return static_cast<int64_t>(q);
}

int32_t ref_requantize(int64_t acc, RequantParams p, int32_t qmin,
                       int32_t qmax) {
  const int64_t v = ref_requantize_unclamped(acc, p);
  if (v > qmax) return qmax;
  if (v < qmin) return qmin;
  return static_cast<int32_t>(v);
}

/// The ratio grid: every power of two across the realistic requant range,
/// ratios one double-ULP-ish below and above each (the below-pow2 ones
/// are exactly the mantissas that round up to 1.0 and trigger the
/// normalization edge), and near-1 ratios at several gap widths.
std::vector<double> ratio_grid() {
  std::vector<double> ratios;
  for (int e = -40; e <= 20; ++e) {
    const double p2 = std::ldexp(1.0, e);
    ratios.push_back(p2);
    ratios.push_back(p2 * (1.0 - std::ldexp(1.0, -40)));  // edge trigger
    ratios.push_back(p2 * (1.0 - std::ldexp(1.0, -20)));
    ratios.push_back(p2 * (1.0 + std::ldexp(1.0, -40)));
    ratios.push_back(p2 * (1.0 + std::ldexp(1.0, -20)));
  }
  for (int k = 2; k <= 52; k += 5) {
    ratios.push_back(1.0 - std::ldexp(1.0, -k));
    ratios.push_back(1.0 + std::ldexp(1.0, -k));
  }
  return ratios;
}

TEST(MakeRequantParams, MultiplierAlwaysNormalizedAndRatioReconstructs) {
  util::Xoshiro256 rng(1234);
  auto ratios = ratio_grid();
  for (int i = 0; i < 2000; ++i) {  // log-uniform sweep over 2^[-40, 20]
    const double e = -40.0 + 60.0 * (static_cast<double>(rng.bounded(1u << 30)) /
                                     static_cast<double>(1u << 30));
    ratios.push_back(std::exp2(e));
  }
  for (const double ratio : ratios) {
    const RequantParams p = make_requant_params(ratio);
    // The Q31 normalization invariant — mantissa in [0.5, 1.0): a
    // multiplier of exactly 2^31 would have wrapped to INT32_MIN.
    EXPECT_GE(p.multiplier, int32_t{1} << 30) << "ratio " << ratio;
    EXPECT_LE(p.multiplier, std::numeric_limits<int32_t>::max())
        << "ratio " << ratio;
    // multiplier * 2^-shift must reproduce the ratio to half a Q31 ULP.
    const double reconstructed = p.multiplier * std::ldexp(1.0, -p.shift);
    EXPECT_NEAR(reconstructed / ratio, 1.0, std::ldexp(1.0, -31))
        << "ratio " << ratio;
  }
}

TEST(MakeRequantParams, NormalizationEdgePinned) {
  // 1 - 2^-40: frexp yields mantissa 1 - 2^-40 (in [0.5, 1)), and
  // llround((1 - 2^-40) * 2^31) = llround(2^31 - 2^-9) = 2^31 — the
  // overflow the normalization branch exists for. It must fold to
  // multiplier 2^30 with the exponent bumped, NOT wrap negative.
  const RequantParams p = make_requant_params(1.0 - std::ldexp(1.0, -40));
  EXPECT_EQ(p.multiplier, int32_t{1} << 30);
  EXPECT_EQ(p.shift, 30);
  // With the ratio within 2^-40 of 1, moderate accumulators requantize
  // to themselves exactly.
  for (const int64_t acc : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{100},
                            int64_t{-100}, int64_t{123456}, int64_t{-123456}}) {
    EXPECT_EQ(requantize(acc, p, std::numeric_limits<int32_t>::min(),
                         std::numeric_limits<int32_t>::max()),
              acc)
        << "acc " << acc;
  }
  // The same edge at other binades: the reconstruction stays a clean
  // power of two and the multiplier stays normalized.
  for (int e = -20; e <= 20; e += 5) {
    const RequantParams q =
        make_requant_params(std::ldexp(1.0, e) * (1.0 - std::ldexp(1.0, -40)));
    EXPECT_EQ(q.multiplier, int32_t{1} << 30) << "binade " << e;
    EXPECT_EQ(q.shift, 30 - e) << "binade " << e;
  }
}

TEST(MakeRequantParams, RejectsNonPositiveAndNonFinite) {
  EXPECT_THROW(make_requant_params(0.0), std::invalid_argument);
  EXPECT_THROW(make_requant_params(-1.0), std::invalid_argument);
  EXPECT_THROW(make_requant_params(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(make_requant_params(std::nan("")), std::invalid_argument);
}

TEST(Requantize, MatchesExactIntegerReferenceOnGrid) {
  util::Xoshiro256 rng(5678);
  std::vector<int64_t> accs = {0, 1, -1, 2, -2, 127, -128, 128, -129};
  for (int b = 2; b <= 40; b += 3) {
    const int64_t p2 = int64_t{1} << b;
    accs.push_back(p2);
    accs.push_back(p2 - 1);
    accs.push_back(p2 + 1);
    accs.push_back(-p2);
    accs.push_back(-p2 + 1);
    accs.push_back(-p2 - 1);
  }
  for (int i = 0; i < 200; ++i) {
    const int64_t r = static_cast<int64_t>(rng.next() >> 23);  // ~2^41
    accs.push_back(r);
    accs.push_back(-r);
  }
  const int32_t kMin = std::numeric_limits<int32_t>::min();
  const int32_t kMax = std::numeric_limits<int32_t>::max();
  for (const double ratio : ratio_grid()) {
    const RequantParams p = make_requant_params(ratio);
    for (const int64_t acc : accs) {
      ASSERT_EQ(requantize(acc, p, kMin, kMax),
                ref_requantize(acc, p, kMin, kMax))
          << "ratio " << ratio << " acc " << acc;
      ASSERT_EQ(requantize(acc, p, -128, 127),
                ref_requantize(acc, p, -128, 127))
          << "int8 ratio " << ratio << " acc " << acc;
    }
  }
}

TEST(Requantize, ExactForDyadicRatiosAndWithinOneUlpOtherwise) {
  util::Xoshiro256 rng(9012);
  const int32_t kMin = std::numeric_limits<int32_t>::min();
  const int32_t kMax = std::numeric_limits<int32_t>::max();
  // Dyadic ratios are represented exactly in Q31 x 2^-shift, so the
  // fixed-point path must equal llround (round half away from zero —
  // the same tie rule) on every accumulator.
  for (int e = -20; e <= 10; ++e) {
    const double ratio = std::ldexp(1.0, e);
    const RequantParams p = make_requant_params(ratio);
    for (int i = 0; i < 300; ++i) {
      const int64_t acc =
          static_cast<int64_t>(rng.next() >> 30) - (int64_t{1} << 33);
      const double real = static_cast<double>(acc) * ratio;
      if (std::abs(real) > 2e9) continue;  // keep clear of int32 clamps
      EXPECT_EQ(requantize(acc, p, kMin, kMax), std::llround(real))
          << "2^" << e << " acc " << acc;
    }
  }
  // Arbitrary ratios carry up to half a Q31 ULP of representation error,
  // so the result may differ from the real-valued product by at most one
  // output step.
  for (const double ratio : ratio_grid()) {
    const RequantParams p = make_requant_params(ratio);
    for (int i = 0; i < 50; ++i) {
      const int64_t acc =
          static_cast<int64_t>(rng.next() >> 30) - (int64_t{1} << 33);
      const double real = static_cast<double>(acc) * ratio;
      if (std::abs(real) > 2e9) continue;
      const int64_t got = requantize(acc, p, kMin, kMax);
      EXPECT_LE(std::abs(got - std::llround(real)), 1)
          << "ratio " << ratio << " acc " << acc;
    }
  }
}

TEST(Requantize, Int8SaturationBoundary) {
  const RequantParams unit = make_requant_params(1.0);
  EXPECT_EQ(requantize(127, unit, -128, 127), 127);
  EXPECT_EQ(requantize(128, unit, -128, 127), 127);   // first clamp above
  EXPECT_EQ(requantize(-128, unit, -128, 127), -128);
  EXPECT_EQ(requantize(-129, unit, -128, 127), -128); // first clamp below
  EXPECT_EQ(requantize(1 << 20, unit, -128, 127), 127);
  EXPECT_EQ(requantize(-(1 << 20), unit, -128, 127), -128);

  // Half-step boundary under a 0.5 ratio: 255 * 0.5 = 127.5 rounds away
  // from zero to 128, which must clamp; 253 * 0.5 = 126.5 -> 127 stays.
  const RequantParams half = make_requant_params(0.5);
  EXPECT_EQ(requantize(255, half, -128, 127), 127);
  EXPECT_EQ(requantize(253, half, -128, 127), 127);
  EXPECT_EQ(requantize(-255, half, -128, 127), -128);  // -127.5 -> -128
  EXPECT_EQ(requantize(-253, half, -128, 127), -127);
}

TEST(RequantizePow2, TieBreaksToEvenAndSaturates) {
  // The pure-shift variant rounds half TO EVEN (it feeds the shift-only
  // datapath) — pin the difference from requantize's half-away rule.
  EXPECT_EQ(requantize_pow2(3, 1, -128, 127), 2);    // 1.5 -> 2 (even)
  EXPECT_EQ(requantize_pow2(5, 1, -128, 127), 2);    // 2.5 -> 2 (even)
  EXPECT_EQ(requantize_pow2(7, 1, -128, 127), 4);    // 3.5 -> 4 (even)
  EXPECT_EQ(requantize_pow2(-3, 1, -128, 127), -2);  // -1.5 -> -2
  EXPECT_EQ(requantize_pow2(1024, 2, -128, 127), 127);
  EXPECT_EQ(requantize_pow2(-1024, 2, -128, 127), -128);
  EXPECT_EQ(requantize_pow2(3, -2, -128, 127), 12);  // negative = left shift
}

}  // namespace
}  // namespace protea::numeric
