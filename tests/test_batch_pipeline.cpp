// Tests for the batch-pipelining throughput model.
#include <gtest/gtest.h>

#include "accel/batch_pipeline.hpp"
#include "ref/model_zoo.hpp"

namespace protea::accel {
namespace {

AccelConfig cfg() { return AccelConfig{}; }

TEST(BatchPipeline, BatchOfOneMatchesSerial) {
  const auto report =
      estimate_batch_performance(cfg(), ref::bert_variant(), 1);
  EXPECT_EQ(report.pipelined_cycles, report.serial_cycles);
  EXPECT_DOUBLE_EQ(report.speedup_vs_serial, 1.0);
}

TEST(BatchPipeline, NeverSlowerThanSerial) {
  for (uint32_t batch : {1u, 2u, 4u, 16u, 64u}) {
    for (const auto& name : ref::model_names()) {
      const auto report =
          estimate_batch_performance(cfg(), ref::find_model(name), batch);
      EXPECT_LE(report.pipelined_cycles, report.serial_cycles)
          << name << " batch=" << batch;
      EXPECT_GE(report.speedup_vs_serial, 1.0);
    }
  }
}

TEST(BatchPipeline, SpeedupBoundedByTwoStages) {
  // A two-stage pipeline cannot exceed 2x.
  const auto report =
      estimate_batch_performance(cfg(), ref::bert_variant(), 64);
  EXPECT_LE(report.speedup_vs_serial, 2.0);
}

TEST(BatchPipeline, SteadyStateApproachesBottleneckRate) {
  const auto model = ref::bert_variant();
  const auto report = estimate_batch_performance(cfg(), model, 64);
  const hw::Cycles bottleneck_layer =
      std::max(report.mha_stage_cycles, report.ffn_stage_cycles) /
      model.num_layers;
  const double per_seq =
      static_cast<double>(report.pipelined_cycles) / 64.0;
  const double floor_cycles =
      static_cast<double>(bottleneck_layer) * model.num_layers;
  EXPECT_NEAR(per_seq / floor_cycles, 1.0, 0.05);
}

TEST(BatchPipeline, ThroughputGrowsWithBatch) {
  const auto model = ref::bert_variant();
  const auto b1 = estimate_batch_performance(cfg(), model, 1);
  const auto b8 = estimate_batch_performance(cfg(), model, 8);
  EXPECT_GT(b8.throughput_seq_per_s, b1.throughput_seq_per_s);
}

TEST(BatchPipeline, FfnBoundForBert) {
  // The paper's workload is FFN-dominated, so pipelining gains little.
  const auto report =
      estimate_batch_performance(cfg(), ref::bert_variant(), 16);
  EXPECT_GT(report.ffn_stage_cycles, report.mha_stage_cycles);
  EXPECT_LT(report.speedup_vs_serial, 1.1);
}

TEST(BatchPipeline, StageSplitCoversWholeLayer) {
  const auto model = ref::bert_variant();
  const auto report = estimate_batch_performance(cfg(), model, 1);
  const auto perf = estimate_performance(cfg(), model);
  EXPECT_EQ(report.mha_stage_cycles + report.ffn_stage_cycles,
            perf.total_cycles);
}

TEST(BatchPipeline, RejectsZeroBatch) {
  EXPECT_THROW(estimate_batch_performance(cfg(), ref::bert_variant(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace protea::accel
