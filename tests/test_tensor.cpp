// Tests for the tensor substrate: Matrix container + float kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace protea::tensor {
namespace {

MatrixF random_matrix(size_t r, size_t c, uint64_t seed) {
  MatrixF m(r, c);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) x = static_cast<float>(rng.uniform(-1, 1));
  return m;
}

// --- Matrix container ----------------------------------------------------------

TEST(Matrix, ConstructionAndIndexing) {
  MatrixF m(3, 4, 1.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m(2, 3), 1.5f);
  m(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
}

TEST(Matrix, FromRowsValidatesSize) {
  EXPECT_NO_THROW(MatrixF::from_rows(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(MatrixF::from_rows(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, RowSpanAliasesStorage) {
  MatrixF m(2, 3, 0.0f);
  auto row = m.row(1);
  row[2] = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, SliceCols) {
  MatrixF m = MatrixF::from_rows(2, 4, {0, 1, 2, 3, 4, 5, 6, 7});
  MatrixF s = m.slice_cols(1, 2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 1);
  EXPECT_FLOAT_EQ(s(1, 1), 6);
  EXPECT_THROW(m.slice_cols(3, 2), std::out_of_range);
}

TEST(Matrix, SliceRows) {
  MatrixF m = MatrixF::from_rows(3, 2, {0, 1, 2, 3, 4, 5});
  MatrixF s = m.slice_rows(1, 2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_FLOAT_EQ(s(0, 0), 2);
  EXPECT_FLOAT_EQ(s(1, 1), 5);
  EXPECT_THROW(m.slice_rows(2, 2), std::out_of_range);
}

TEST(Matrix, EqualityAndFill) {
  MatrixF a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b.fill(2.0f);
  EXPECT_NE(a, b);
}

// --- matmul -----------------------------------------------------------------------

TEST(Ops, MatmulKnownValues) {
  MatrixF a = MatrixF::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  MatrixF b = MatrixF::from_rows(3, 2, {7, 8, 9, 10, 11, 12});
  MatrixF c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(Ops, MatmulDimensionMismatchThrows) {
  MatrixF a(2, 3), b(4, 2);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Ops, MatmulIdentity) {
  MatrixF a = random_matrix(5, 5, 1);
  MatrixF eye(5, 5, 0.0f);
  for (size_t i = 0; i < 5; ++i) eye(i, i) = 1.0f;
  EXPECT_LE(max_abs_diff(matmul(a, eye), a), 1e-6f);
  EXPECT_LE(max_abs_diff(matmul(eye, a), a), 1e-6f);
}

TEST(Ops, MatmulBtMatchesExplicitTranspose) {
  MatrixF a = random_matrix(4, 6, 2);
  MatrixF b = random_matrix(5, 6, 3);
  EXPECT_LE(max_abs_diff(matmul_bt(a, b), matmul(a, transpose(b))), 1e-5f);
}

TEST(Ops, MatmulBiasAddsBroadcast) {
  MatrixF a = random_matrix(3, 4, 4);
  MatrixF b = random_matrix(4, 2, 5);
  std::vector<float> bias = {1.0f, -2.0f};
  MatrixF c = matmul_bias(a, b, bias);
  MatrixF plain = matmul(a, b);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(c(i, 0), plain(i, 0) + 1.0f, 1e-6);
    EXPECT_NEAR(c(i, 1), plain(i, 1) - 2.0f, 1e-6);
  }
}

TEST(Ops, TransposeInvolution) {
  MatrixF a = random_matrix(3, 7, 6);
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Ops, AddAndScale) {
  MatrixF a = random_matrix(2, 2, 7);
  MatrixF b = random_matrix(2, 2, 8);
  MatrixF c = add(a, b);
  EXPECT_NEAR(c(0, 0), a(0, 0) + b(0, 0), 1e-7);
  scale_inplace(c, 2.0f);
  EXPECT_NEAR(c(0, 0), 2 * (a(0, 0) + b(0, 0)), 1e-6);
  MatrixF wrong(3, 2);
  EXPECT_THROW(add(a, wrong), std::invalid_argument);
}

TEST(Ops, AddBiasValidatesLength) {
  MatrixF a(2, 3);
  std::vector<float> bias = {1, 2};
  EXPECT_THROW(add_bias_inplace(a, bias), std::invalid_argument);
}

// --- softmax ---------------------------------------------------------------------

TEST(Ops, SoftmaxRowsSumToOne) {
  MatrixF m = random_matrix(6, 9, 9);
  scale_inplace(m, 4.0f);
  softmax_rows_inplace(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    float sum = 0.0f;
    for (float x : m.row(r)) {
      EXPECT_GE(x, 0.0f);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Ops, SoftmaxShiftInvariant) {
  MatrixF a = random_matrix(2, 8, 10);
  MatrixF b = a;
  for (float& x : b.flat()) x += 100.0f;  // large shift: needs stability
  softmax_rows_inplace(a);
  softmax_rows_inplace(b);
  EXPECT_LE(max_abs_diff(a, b), 1e-5f);
}

TEST(Ops, SoftmaxPeaksAtMax) {
  MatrixF m = MatrixF::from_rows(1, 4, {0.0f, 5.0f, 1.0f, -2.0f});
  softmax_rows_inplace(m);
  const auto row = m.row(0);
  EXPECT_GT(row[1], row[0]);
  EXPECT_GT(row[1], row[2]);
  EXPECT_GT(row[1], row[3]);
}

// --- layer norm --------------------------------------------------------------------

TEST(Ops, LayerNormZeroMeanUnitVar) {
  MatrixF m = random_matrix(4, 64, 11);
  scale_inplace(m, 3.0f);
  std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
  layer_norm_rows_inplace(m, gamma, beta);
  for (size_t r = 0; r < m.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (float x : m.row(r)) mean += x;
    mean /= 64.0;
    for (float x : m.row(r)) var += (x - mean) * (x - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Ops, LayerNormAffineApplied) {
  MatrixF m = random_matrix(2, 8, 12);
  std::vector<float> gamma(8, 2.0f), beta(8, 0.5f);
  MatrixF plain = m;
  std::vector<float> g1(8, 1.0f), b0(8, 0.0f);
  layer_norm_rows_inplace(plain, g1, b0);
  layer_norm_rows_inplace(m, gamma, beta);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m.flat()[i], plain.flat()[i] * 2.0f + 0.5f, 1e-5);
  }
}

TEST(Ops, LayerNormValidatesWidth) {
  MatrixF m(2, 8);
  std::vector<float> wrong(7, 1.0f), ok(8, 1.0f);
  EXPECT_THROW(layer_norm_rows_inplace(m, wrong, ok),
               std::invalid_argument);
}

// --- activations ----------------------------------------------------------------------

TEST(Ops, ReluClampsNegatives) {
  MatrixF m = MatrixF::from_rows(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
  relu_inplace(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m(0, 2), 2.0f);
}

TEST(Ops, GeluKnownValues) {
  MatrixF m = MatrixF::from_rows(1, 3, {0.0f, 1.0f, -1.0f});
  gelu_inplace(m);
  EXPECT_NEAR(m(0, 0), 0.0f, 1e-6);
  EXPECT_NEAR(m(0, 1), 0.8412f, 1e-3);   // gelu(1)
  EXPECT_NEAR(m(0, 2), -0.1588f, 1e-3);  // gelu(-1)
}

TEST(Ops, GeluApproachesIdentityForLargePositive) {
  MatrixF m = MatrixF::from_rows(1, 1, {6.0f});
  gelu_inplace(m);
  EXPECT_NEAR(m(0, 0), 6.0f, 1e-4);
}

// --- diff metrics -------------------------------------------------------------------------

TEST(Ops, DiffMetrics) {
  MatrixF a = MatrixF::from_rows(1, 2, {1.0f, 2.0f});
  MatrixF b = MatrixF::from_rows(1, 2, {1.5f, 1.0f});
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 1.0f);
  EXPECT_NEAR(rms_diff(a, b), std::sqrt((0.25 + 1.0) / 2.0), 1e-6);
  EXPECT_FLOAT_EQ(max_abs_diff(a, a), 0.0f);
  MatrixF wrong(2, 2);
  EXPECT_THROW(max_abs_diff(a, wrong), std::invalid_argument);
}

// --- parameterized shape sweep: matmul against a naive reference -------------------

struct Shape {
  size_t m, k, n;
};

class MatmulShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(MatmulShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  MatrixF a = random_matrix(m, k, m * 100 + k);
  MatrixF b = random_matrix(k, n, n * 100 + k);
  MatrixF c = matmul(a, b);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (size_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a(i, kk)) * b(kk, j);
      }
      EXPECT_NEAR(c(i, j), sum, 1e-4) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 8, 1}, Shape{3, 5, 7},
                      Shape{16, 16, 16}, Shape{2, 64, 32},
                      Shape{33, 17, 9}));

}  // namespace
}  // namespace protea::tensor
