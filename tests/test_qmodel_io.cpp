// Tests for the quantized-model serialization (deployment artifact).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "accel/accelerator.hpp"
#include "accel/qmodel_io.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"

namespace protea::accel {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = ref::Activation::kGelu;
  return c;
}

struct Fixture {
  ref::ModelConfig config = small_config();
  ref::EncoderWeights weights = ref::make_random_weights(config, 201);
  tensor::MatrixF input = ref::make_random_input(config, 202);
  QuantizedModel model = prepare_model(weights, input);
  std::string path = testing::TempDir() + "/protea_qmodel.bin";
};

TEST(QModelIo, RoundTripPreservesConfig) {
  Fixture fx;
  save_quantized_model(fx.model, fx.path);
  const QuantizedModel loaded = load_quantized_model(fx.path);
  EXPECT_EQ(loaded.config.seq_len, fx.config.seq_len);
  EXPECT_EQ(loaded.config.d_model, fx.config.d_model);
  EXPECT_EQ(loaded.config.num_heads, fx.config.num_heads);
  EXPECT_EQ(loaded.config.num_layers, fx.config.num_layers);
  EXPECT_EQ(loaded.config.activation, fx.config.activation);
  std::filesystem::remove(fx.path);
}

TEST(QModelIo, RoundTripPreservesTensorsAndConstants) {
  Fixture fx;
  save_quantized_model(fx.model, fx.path);
  const QuantizedModel loaded = load_quantized_model(fx.path);
  const QLayer& a = fx.model.layers[0];
  const QLayer& b = loaded.layers[0];
  EXPECT_EQ(a.heads[0].wqt, b.heads[0].wqt);
  EXPECT_EQ(a.heads[3].wvt, b.heads[3].wvt);
  EXPECT_EQ(a.heads[1].bk, b.heads[1].bk);
  EXPECT_EQ(a.wo, b.wo);
  EXPECT_EQ(a.w1, b.w1);
  EXPECT_EQ(a.b2, b.b2);
  EXPECT_EQ(a.ln2_gamma, b.ln2_gamma);
  EXPECT_DOUBLE_EQ(a.scales.logit, b.scales.logit);
  EXPECT_DOUBLE_EQ(a.scales.ln2, b.scales.ln2);
  EXPECT_EQ(a.rq_proj.multiplier, b.rq_proj.multiplier);
  EXPECT_EQ(a.rq_proj.shift, b.rq_proj.shift);
  EXPECT_EQ(a.rq_hidden.multiplier, b.rq_hidden.multiplier);
  std::filesystem::remove(fx.path);
}

TEST(QModelIo, RoundTripBitExactInference) {
  // The decisive deployment property: the loaded artifact produces the
  // exact same int8 computation as the in-memory one.
  Fixture fx;
  save_quantized_model(fx.model, fx.path);
  const QuantizedModel loaded = load_quantized_model(fx.path);

  AccelConfig cfg;
  ProteaAccelerator a(cfg), b(cfg);
  a.load_model(fx.model);
  b.load_model(loaded);
  EXPECT_EQ(a.forward(fx.input), b.forward(fx.input));
  std::filesystem::remove(fx.path);
}

TEST(QModelIo, RejectsGarbage) {
  const std::string path = testing::TempDir() + "/protea_qgarbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "PTQXnot really";
  }
  EXPECT_THROW(load_quantized_model(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(QModelIo, RejectsMissingFile) {
  EXPECT_THROW(load_quantized_model("/no/such/file.bin"),
               std::runtime_error);
}

TEST(QModelIo, RejectsTruncatedFile) {
  Fixture fx;
  save_quantized_model(fx.model, fx.path);
  // Truncate to half.
  const auto size = std::filesystem::file_size(fx.path);
  std::filesystem::resize_file(fx.path, size / 2);
  EXPECT_THROW(load_quantized_model(fx.path), std::runtime_error);
  std::filesystem::remove(fx.path);
}

TEST(QModelIo, BadWritePathThrows) {
  Fixture fx;
  EXPECT_THROW(save_quantized_model(fx.model, "/no_dir_xyz/m.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace protea::accel
