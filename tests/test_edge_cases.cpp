// Edge-case and failure-injection tests across the datapath: saturation
// extremes, degenerate rows, adversarial weights — the inputs a hardware
// verification plan would target after the happy paths.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "accel/engines.hpp"
#include "accel/layernorm_unit.hpp"
#include "accel/quantized_model.hpp"
#include "accel/softmax_unit.hpp"
#include "numeric/quantizer.hpp"
#include "numeric/requantize.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"

namespace protea::accel {
namespace {

using tensor::MatrixI8;

numeric::RequantParams unit_rq() {
  return numeric::make_requant_params(1.0);
}

// --- engine saturation paths -----------------------------------------------

TEST(EdgeCases, QkEngineSaturatesOnAdversarialOperands) {
  // All-+127 Q against all-+127 K: accumulator = dk * 16129, far above
  // int8 — the requant stage must clamp to +127, never wrap.
  MatrixI8 q(4, 32, 127), k(4, 32, 127), logits;
  run_qk_engine(q, k, unit_rq(), logits);
  for (int8_t v : logits.flat()) EXPECT_EQ(v, 127);
}

TEST(EdgeCases, QkEngineSaturatesNegative) {
  MatrixI8 q(4, 32, 127), k(4, 32, -128), logits;
  run_qk_engine(q, k, unit_rq(), logits);
  for (int8_t v : logits.flat()) EXPECT_EQ(v, -128);
}

TEST(EdgeCases, FfnEngineZeroInputGivesBiasOnly) {
  MatrixI8 in(3, 8, 0), w(8, 8, 55), out;
  std::vector<int32_t> bias(8);
  for (size_t i = 0; i < 8; ++i) bias[i] = static_cast<int32_t>(i) - 4;
  run_ffn_engine(in, w, bias, 4, unit_rq(), FfnActivation::kNone, 0.0,
                 out);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_EQ(out(r, c), static_cast<int32_t>(c) - 4);
    }
  }
}

TEST(EdgeCases, FfnEngineAllZeroWeightTileContributesNothing) {
  // The functional basis of tile skipping: zero tiles are exact no-ops.
  MatrixI8 in(2, 16), w_dense(16, 8), w_padded(16, 8, 0), out_a, out_b;
  for (size_t i = 0; i < in.size(); ++i) {
    in.flat()[i] = static_cast<int8_t>(i * 7 % 100 - 50);
  }
  for (size_t r = 0; r < 8; ++r) {  // only the first row tile is live
    for (size_t c = 0; c < 8; ++c) {
      w_padded(r, c) = static_cast<int8_t>(r + c - 5);
    }
  }
  w_dense = w_padded;
  run_ffn_engine(in, w_dense, std::vector<int32_t>(8, 0), 8, unit_rq(),
                 FfnActivation::kNone, 0.0, out_a);
  run_ffn_engine(in, w_padded, std::vector<int32_t>(8, 0), 8, unit_rq(),
                 FfnActivation::kNone, 0.0, out_b);
  EXPECT_EQ(out_a, out_b);
}

TEST(EdgeCases, ProjectionEngineMatchesQkvSingleStream) {
  // run_projection_engine on wq alone must agree with run_qkv_engine's
  // q output (same weights, same requant) — the decoder reuses the
  // engine this way.
  ref::ModelConfig cfg;
  cfg.seq_len = 8;
  cfg.d_model = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 1;
  const auto weights = ref::make_random_weights(cfg, 301);
  const auto input = ref::make_random_input(cfg, 302);
  const auto qm = prepare_model(weights, input);
  const QLayer& layer = qm.layers[0];

  numeric::Quantizer quant(8, true);
  quant.set_scale(layer.scales.x);
  MatrixI8 x(cfg.seq_len, cfg.d_model);
  quant.quantize(input.flat(), x.flat());

  MatrixI8 q, k, v, q_proj;
  run_qkv_engine(x, layer.heads[0], 16, layer.rq_q, layer.rq_k,
                 layer.rq_v, q, k, v);
  run_projection_engine(x, layer.heads[0].wqt, layer.heads[0].bq, 16,
                        layer.rq_q, q_proj);
  EXPECT_EQ(q, q_proj);
}

// --- softmax extremes ---------------------------------------------------------

TEST(EdgeCases, SoftmaxAllMinimumLogitsIsUniform) {
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(2, 8, -128);
  const MatrixI8 w = unit.run(logits);
  for (size_t c = 1; c < 8; ++c) EXPECT_EQ(w(0, c), w(0, 0));
}

TEST(EdgeCases, SoftmaxSingleColumnIsCertain) {
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(3, 1, 42);
  const MatrixI8 w = unit.run(logits);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(w(r, 0), 127);
}

TEST(EdgeCases, SoftmaxExtremeContrastIsDelta) {
  SoftmaxUnit unit(0.25);  // coarse scale: 255 steps spans e^-63
  MatrixI8 logits = MatrixI8::from_rows(1, 4, {127, -128, -128, -128});
  const MatrixI8 w = unit.run(logits);
  EXPECT_EQ(w(0, 0), 127);
  EXPECT_EQ(w(0, 1), 0);
}

TEST(EdgeCases, CausalSoftmaxOnSingleToken) {
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(1, 1, -7);
  const MatrixI8 w = unit.run_causal(logits);
  EXPECT_EQ(w(0, 0), 127);
}

TEST(EdgeCases, CausalRowOffsetLengthOneRowIsCertain) {
  // The cached-prefix mode's degenerate case: a single logit column at
  // any row offset — the sole visible position takes all the weight.
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(1, 1, -33), out(1, 1);
  for (size_t offset : {0u, 1u, 7u}) {
    unit.run_causal_into(logits, out, offset);
    EXPECT_EQ(out(0, 0), 127) << "offset " << offset;
  }
}

TEST(EdgeCases, CausalRowOffsetFullPrefixMatchesUnmasked) {
  // A decode step's single row sits at position row_offset = cols - 1:
  // every column is visible, so the "mask" is full and the causal mode
  // must agree with the plain softmax bit for bit.
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(1, 9);
  for (size_t c = 0; c < 9; ++c) {
    logits(0, c) = static_cast<int8_t>(13 * static_cast<int>(c) - 50);
  }
  MatrixI8 causal(1, 9), full(1, 9);
  unit.run_causal_into(logits, causal, /*row_offset=*/8);
  unit.run_into(logits, full);
  EXPECT_EQ(causal, full);
  // Offsets beyond the width behave identically (valid clamps to cols).
  unit.run_causal_into(logits, causal, /*row_offset=*/100);
  EXPECT_EQ(causal, full);
}

TEST(EdgeCases, CausalRowOffsetMatchesFullSquareRows) {
  // A multi-row block at offset p must reproduce rows [p, p+n) of the
  // classic full-square causal softmax — the prefill/decode equivalence
  // the KV-cached attention path relies on.
  SoftmaxUnit unit(0.05);
  const size_t total = 6, n = 2, p = total - n;
  MatrixI8 square(total, total);
  for (size_t r = 0; r < total; ++r) {
    for (size_t c = 0; c < total; ++c) {
      square(r, c) = static_cast<int8_t>(7 * static_cast<int>(r * total + c) - 60);
    }
  }
  MatrixI8 expected(total, total);
  unit.run_causal_into(square, expected);

  MatrixI8 tail(n, total), out(n, total);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < total; ++c) tail(r, c) = square(p + r, c);
  }
  unit.run_causal_into(tail, out, /*row_offset=*/p);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < total; ++c) {
      EXPECT_EQ(out(r, c), expected(p + r, c)) << r << "," << c;
    }
  }
}

// --- LayerNorm degenerate rows --------------------------------------------------

TEST(EdgeCases, LayerNormConstantRowIsFinite) {
  // A constant row has zero variance; eps must keep the output finite
  // (and ~beta, since the normalized value is 0).
  const size_t cols = 16;
  std::vector<float> gamma(cols, 1.0f), beta(cols, 0.25f);
  LayerNormUnit unit(gamma, beta);
  MatrixI8 x(1, cols, 64), r(1, cols, 0);
  const MatrixI8 out = unit.run(x, 1.0 / 32, r, 1.0 / 32, 1.0 / 64);
  for (int8_t v : out.flat()) {
    EXPECT_NEAR(v * (1.0 / 64), 0.25, 0.02);
  }
}

TEST(EdgeCases, LayerNormSaturatedOperandsStayInRange) {
  const size_t cols = 8;
  std::vector<float> gamma(cols, 4.0f), beta(cols, 0.0f);
  LayerNormUnit unit(gamma, beta);
  MatrixI8 x(1, cols), r(1, cols, 127);
  for (size_t c = 0; c < cols; ++c) {
    x(0, c) = (c % 2 == 0) ? 127 : -128;
  }
  const MatrixI8 out = unit.run(x, 1.0 / 16, r, 1.0 / 16, 1.0 / 32);
  for (int8_t v : out.flat()) {
    EXPECT_GE(v, -128);
    EXPECT_LE(v, 127);
  }
}

// --- end-to-end with adversarial inputs ------------------------------------------

TEST(EdgeCases, AcceleratorHandlesSaturatingInput) {
  // Inputs far outside the calibration range must clamp gracefully and
  // still produce layer-normalized (bounded) outputs.
  ref::ModelConfig cfg;
  cfg.seq_len = 8;
  cfg.d_model = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 2;
  const auto weights = ref::make_random_weights(cfg, 303);
  const auto calib = ref::make_random_input(cfg, 304);
  AccelConfig acfg;
  ProteaAccelerator accelerator(acfg);
  accelerator.load_model(prepare_model(weights, calib));

  tensor::MatrixF wild(cfg.seq_len, cfg.d_model);
  for (size_t i = 0; i < wild.size(); ++i) {
    wild.flat()[i] = (i % 2 == 0) ? 100.0f : -100.0f;
  }
  const auto out = accelerator.forward(wild);
  for (float v : out.flat()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(std::abs(v), 16.0f);  // LN keeps outputs bounded
  }
}

TEST(EdgeCases, SingleTokenSequenceEndToEnd) {
  ref::ModelConfig cfg;
  cfg.seq_len = 1;
  cfg.d_model = 32;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  const auto weights = ref::make_random_weights(cfg, 305);
  const auto input = ref::make_random_input(cfg, 306);
  ref::Encoder reference(weights);
  AccelConfig acfg;
  ProteaAccelerator accelerator(acfg);
  accelerator.load_model(prepare_model(weights, input));
  const auto out = accelerator.forward(input);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_LT(tensor::rms_diff(out, reference.forward(input)), 0.25f);
}

TEST(EdgeCases, SingleHeadModelEndToEnd) {
  ref::ModelConfig cfg;
  cfg.seq_len = 8;
  cfg.d_model = 48;
  cfg.num_heads = 1;  // degenerate multi-head
  cfg.num_layers = 1;
  const auto weights = ref::make_random_weights(cfg, 307);
  const auto input = ref::make_random_input(cfg, 308);
  ref::Encoder reference(weights);
  AccelConfig acfg;
  ProteaAccelerator accelerator(acfg);
  accelerator.load_model(prepare_model(weights, input));
  EXPECT_LT(tensor::rms_diff(accelerator.forward(input),
                             reference.forward(input)),
            0.25f);
}

}  // namespace
}  // namespace protea::accel
