// Tests for the accelerator top level: quantization calibration, model
// preparation, end-to-end functional equivalence with the float reference,
// and the runtime-programming surface.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/accelerator.hpp"
#include "accel/quant_calib.hpp"
#include "accel/quantized_model.hpp"
#include "ref/encoder.hpp"
#include "ref/model_zoo.hpp"
#include "tensor/ops.hpp"

namespace protea::accel {
namespace {

ref::ModelConfig small_config(uint32_t layers = 2) {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = layers;
  c.activation = ref::Activation::kGelu;
  return c;
}

double correlation(const tensor::MatrixF& a, const tensor::MatrixF& b) {
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  const auto n = static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double x = a.flat()[i], y = b.flat()[i];
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  return cov / std::sqrt(va * vb);
}

// --- calibration ---------------------------------------------------------------

TEST(QuantCalib, ScalesArePowersOfTwo) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 31);
  const auto x = ref::make_random_input(cfg, 32);
  ref::Encoder enc(w);
  const auto scales = calibrate_scales(enc, x);
  ASSERT_EQ(scales.size(), cfg.num_layers);
  for (const auto& s : scales) {
    for (double v : {s.x, s.q, s.k, s.v, s.logit, s.sv, s.proj, s.ln1,
                     s.hidden, s.ffn_out, s.ln2}) {
      const double l = std::log2(v);
      EXPECT_NEAR(l, std::round(l), 1e-9) << v;
    }
    EXPECT_DOUBLE_EQ(s.attn_w, 1.0 / 127.0);
  }
}

TEST(QuantCalib, ScalesCoverActivationRanges) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 33);
  const auto x = ref::make_random_input(cfg, 34);
  ref::Encoder enc(w);
  std::vector<ref::LayerTrace> traces;
  enc.forward_traced(x, traces);
  const auto scales = calibrate_scales(enc, x);
  // Every reference value must be representable without saturation.
  for (size_t l = 0; l < traces.size(); ++l) {
    for (float v : traces[l].ln2_out.flat()) {
      EXPECT_LE(std::abs(v), 127.0 * scales[l].ln2 * 1.0001);
    }
    for (float v : traces[l].proj.flat()) {
      EXPECT_LE(std::abs(v), 127.0 * scales[l].proj * 1.0001);
    }
  }
}

TEST(QuantCalib, ChainedScalesConsistent) {
  // ln2 of layer l is the input of layer l+1, so the calibrated scales
  // must be identical.
  const auto cfg = small_config(3);
  const auto w = ref::make_random_weights(cfg, 35);
  const auto x = ref::make_random_input(cfg, 36);
  ref::Encoder enc(w);
  const auto scales = calibrate_scales(enc, x);
  for (size_t l = 0; l + 1 < scales.size(); ++l) {
    EXPECT_DOUBLE_EQ(scales[l].ln2, scales[l + 1].x);
  }
}

TEST(QuantCalib, RejectsMarginBelowOne) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 37);
  ref::Encoder enc(w);
  EXPECT_THROW(
      calibrate_scales(enc, ref::make_random_input(cfg, 38), 0.5),
      std::invalid_argument);
}

// --- quantized model --------------------------------------------------------------

TEST(QuantizedModel, LayoutShapes) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 41);
  const auto qm = prepare_model(w, ref::make_random_input(cfg, 42));
  ASSERT_EQ(qm.layers.size(), cfg.num_layers);
  const QLayer& l = qm.layers[0];
  ASSERT_EQ(l.heads.size(), cfg.num_heads);
  EXPECT_EQ(l.heads[0].wqt.rows(), cfg.head_dim());
  EXPECT_EQ(l.heads[0].wqt.cols(), cfg.d_model);
  EXPECT_EQ(l.wo.rows(), cfg.d_model);
  EXPECT_EQ(l.w1.cols(), cfg.ffn_hidden());
  EXPECT_EQ(l.w2.rows(), cfg.ffn_hidden());
  EXPECT_EQ(l.b1.size(), cfg.ffn_hidden());
}

TEST(QuantizedModel, TransposedSlicesMatchSource) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 43);
  const auto qm = prepare_model(w, ref::make_random_input(cfg, 44));
  const QLayer& l = qm.layers[0];
  const size_t dk = cfg.head_dim();
  // head h, row k, col j of wqt == wq(j, h*dk + k) quantized.
  for (size_t h = 0; h < 2; ++h) {
    for (size_t k = 0; k < dk; k += 3) {
      for (size_t j = 0; j < cfg.d_model; j += 7) {
        const double expected = w.layers[0].wq(j, h * dk + k) / l.s_wq;
        EXPECT_NEAR(l.heads[h].wqt(k, j), expected, 0.51);
      }
    }
  }
}

TEST(QuantizedModel, WeightBytesMatchesFormula) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 45);
  const auto qm = prepare_model(w, ref::make_random_input(cfg, 46));
  const uint64_t d = cfg.d_model, f = cfg.ffn_hidden();
  const uint64_t per_layer = 3 * d * d + d * d + d * f + f * d;
  EXPECT_EQ(qm.weight_bytes(), cfg.num_layers * per_layer);
}

TEST(QuantizedModel, MismatchedScalesThrow) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 47);
  std::vector<LayerScales> wrong(1);  // config has 2 layers
  EXPECT_THROW(quantize_model(w, wrong), std::invalid_argument);
}

// --- accelerator end-to-end ----------------------------------------------------------

class AcceleratorEquivalence
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 uint32_t, uint32_t>> {};

TEST_P(AcceleratorEquivalence, TracksFloatReference) {
  const auto [sl, d, h, layers] = GetParam();
  ref::ModelConfig cfg;
  cfg.seq_len = sl;
  cfg.d_model = d;
  cfg.num_heads = h;
  cfg.num_layers = layers;
  const auto w = ref::make_random_weights(cfg, 1000 + d + sl);
  const auto x = ref::make_random_input(cfg, 2000 + d + sl);
  ref::Encoder enc(w);
  const auto ref_out = enc.forward(x);

  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  const auto acc_out = acc.forward(x);

  ASSERT_EQ(acc_out.rows(), ref_out.rows());
  ASSERT_EQ(acc_out.cols(), ref_out.cols());
  // Outputs are layer-normalized (unit variance): int8 noise through a
  // few layers stays well under these bounds.
  EXPECT_LT(tensor::rms_diff(acc_out, ref_out), 0.2f);
  EXPECT_GT(correlation(acc_out, ref_out), 0.97);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AcceleratorEquivalence,
    ::testing::Values(std::make_tuple(8u, 32u, 2u, 1u),
                      std::make_tuple(16u, 64u, 4u, 2u),
                      std::make_tuple(16u, 64u, 8u, 3u),
                      std::make_tuple(24u, 96u, 4u, 2u),
                      std::make_tuple(12u, 48u, 4u, 1u)));

TEST(Accelerator, TraceShapesAndScaleChain) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 51);
  const auto x = ref::make_random_input(cfg, 52);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  std::vector<AccelLayerTrace> traces;
  acc.forward(x, &traces);
  ASSERT_EQ(traces.size(), cfg.num_layers);
  EXPECT_EQ(traces[0].heads.size(), cfg.num_heads);
  EXPECT_EQ(traces[0].heads[0].q.cols(), cfg.head_dim());
  EXPECT_EQ(traces[0].concat.cols(), cfg.d_model);
  EXPECT_EQ(traces[1].out.rows(), cfg.seq_len);
}

TEST(Accelerator, MacCounterMatchesModelFormula) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 53);
  const auto x = ref::make_random_input(cfg, 54);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  acc.forward(x);
  EXPECT_EQ(acc.stats().macs, cfg.macs_total());
}

TEST(Accelerator, DeterministicAcrossRuns) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 55);
  const auto x = ref::make_random_input(cfg, 56);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  EXPECT_EQ(acc.forward(x), acc.forward(x));
}

TEST(Accelerator, RejectsModelExceedingSynthesis) {
  ref::ModelConfig big = small_config();
  big.d_model = 1024;  // > max_d_model 768
  const auto w = ref::make_random_weights(big, 57);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  EXPECT_THROW(acc.load_model(prepare_model(
                   w, ref::make_random_input(big, 58))),
               std::invalid_argument);
}

TEST(Accelerator, RejectsSeqLenBeyondBuffers) {
  ref::ModelConfig big = small_config();
  big.seq_len = 256;  // > max_seq_len 128
  const auto w = ref::make_random_weights(big, 59);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  EXPECT_THROW(acc.load_model(prepare_model(
                   w, ref::make_random_input(big, 60))),
               std::invalid_argument);
}

TEST(Accelerator, RuntimeLayerReduction) {
  const auto cfg = small_config(3);
  const auto w = ref::make_random_weights(cfg, 61);
  const auto x = ref::make_random_input(cfg, 62);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));

  acc.program_layers(2);
  EXPECT_EQ(acc.programmed_config().num_layers, 2u);
  const auto out2 = acc.forward(x);

  // Two programmed layers equal the first two layers of the full model.
  ref::ModelConfig cfg2 = cfg;
  cfg2.num_layers = 2;
  auto w2 = w;
  w2.config = cfg2;
  w2.layers.resize(2);
  ref::Encoder enc2(w2);
  EXPECT_LT(tensor::rms_diff(out2, enc2.forward(x)), 0.2f);

  EXPECT_THROW(acc.program_layers(4), std::invalid_argument);
  EXPECT_THROW(acc.program_layers(0), std::invalid_argument);
}

TEST(Accelerator, RuntimeSeqLenReduction) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 63);
  const auto x = ref::make_random_input(cfg, 64);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));

  acc.program_seq_len(8);
  const auto short_x = x.slice_rows(0, 8);
  const auto out = acc.forward(short_x);
  EXPECT_EQ(out.rows(), 8u);
  EXPECT_THROW(acc.program_seq_len(999), std::invalid_argument);
}

TEST(Accelerator, ForwardWithoutModelThrows) {
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  tensor::MatrixF x(8, 32);
  EXPECT_THROW(acc.forward(x), std::logic_error);
  EXPECT_THROW(acc.programmed_config(), std::logic_error);
  EXPECT_THROW(acc.performance(), std::logic_error);
}

TEST(Accelerator, InputShapeMustMatchProgram) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 65);
  const auto x = ref::make_random_input(cfg, 66);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  tensor::MatrixF wrong(cfg.seq_len, cfg.d_model / 2);
  EXPECT_THROW(acc.forward(wrong), std::invalid_argument);
}

TEST(Accelerator, PerformanceReportAvailableAfterLoad) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 67);
  const auto x = ref::make_random_input(cfg, 68);
  AccelConfig acfg;
  ProteaAccelerator acc(acfg);
  acc.load_model(prepare_model(w, x));
  const PerfReport report = acc.performance();
  EXPECT_GT(report.total_cycles, 0u);
  EXPECT_GT(report.latency_ms, 0.0);
  EXPECT_EQ(report.macs, cfg.macs_total());
}

}  // namespace
}  // namespace protea::accel
