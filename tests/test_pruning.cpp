// Tests for the pruning / structured-sparsity extension.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/perf_model.hpp"
#include "baseline/pruning.hpp"
#include "ref/model_zoo.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace protea::baseline {
namespace {

tensor::MatrixF random_weights(size_t r, size_t c, uint64_t seed) {
  tensor::MatrixF m(r, c);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(rng.normal() * 0.1 + 0.01);  // avoid exact 0
  }
  return m;
}

// --- prune_matrix ---------------------------------------------------------

TEST(Pruning, MagnitudeHitsTargetSparsity) {
  auto w = random_weights(64, 64, 1);
  prune_matrix(w, 0.75, PruneMethod::kMagnitude);
  EXPECT_NEAR(measured_sparsity(w), 0.75, 0.01);
}

TEST(Pruning, MagnitudeRemovesSmallestFirst) {
  auto w = random_weights(32, 32, 2);
  tensor::MatrixF original = w;
  prune_matrix(w, 0.5, PruneMethod::kMagnitude);
  // Every surviving weight must be at least as large (in magnitude) as
  // every pruned weight.
  float min_kept = 1e30f, max_pruned = 0.0f;
  for (size_t i = 0; i < w.size(); ++i) {
    const float mag = std::abs(original.flat()[i]);
    if (w.flat()[i] != 0.0f) {
      min_kept = std::min(min_kept, mag);
    } else {
      max_pruned = std::max(max_pruned, mag);
    }
  }
  EXPECT_GE(min_kept, max_pruned);
}

TEST(Pruning, ColumnBalancedIsBalanced) {
  auto w = random_weights(64, 16, 3);
  prune_matrix(w, 0.5, PruneMethod::kColumnBalancedBlock);
  for (size_t c = 0; c < w.cols(); ++c) {
    size_t zeros = 0;
    for (size_t r = 0; r < w.rows(); ++r) {
      zeros += (w(r, c) == 0.0f) ? 1 : 0;
    }
    EXPECT_EQ(zeros, 32u) << "column " << c;  // exactly half per column
  }
}

TEST(Pruning, ZeroSparsityIsNoop) {
  auto w = random_weights(16, 16, 4);
  const tensor::MatrixF original = w;
  prune_matrix(w, 0.0, PruneMethod::kMagnitude);
  EXPECT_EQ(w, original);
  prune_matrix(w, 0.0, PruneMethod::kColumnBalancedBlock);
  EXPECT_EQ(w, original);
}

TEST(Pruning, RejectsBadSparsity) {
  auto w = random_weights(8, 8, 5);
  EXPECT_THROW(prune_matrix(w, 1.0, PruneMethod::kMagnitude),
               std::invalid_argument);
  EXPECT_THROW(prune_matrix(w, -0.1, PruneMethod::kMagnitude),
               std::invalid_argument);
}

TEST(Pruning, HigherSparsityPrunesMore) {
  for (auto method : {PruneMethod::kMagnitude,
                      PruneMethod::kColumnBalancedBlock}) {
    auto w50 = random_weights(64, 64, 6);
    auto w90 = w50;
    prune_matrix(w50, 0.5, method);
    prune_matrix(w90, 0.9, method);
    EXPECT_GT(measured_sparsity(w90), measured_sparsity(w50));
  }
}

TEST(Pruning, EncoderWeightsPrunedThroughout) {
  auto weights = ref::make_random_weights(
      []{
        ref::ModelConfig c;
        c.seq_len = 8; c.d_model = 32; c.num_heads = 4; c.num_layers = 2;
        return c;
      }(), 7);
  prune_encoder_weights(weights, 0.5, PruneMethod::kColumnBalancedBlock);
  for (const auto& layer : weights.layers) {
    EXPECT_NEAR(measured_sparsity(layer.wq), 0.5, 0.01);
    EXPECT_NEAR(measured_sparsity(layer.w1), 0.5, 0.01);
    EXPECT_NEAR(measured_sparsity(layer.w2), 0.5, 0.01);
    // LN parameters stay dense.
    for (float g : layer.ln1_gamma) EXPECT_NE(g, 0.0f);
  }
}

// --- tile occupancy --------------------------------------------------------

TEST(TileOccupancy, DenseMatrixFullyOccupied) {
  const auto w = random_weights(64, 64, 8);
  EXPECT_DOUBLE_EQ(tile_occupancy(w, 16), 1.0);
}

TEST(TileOccupancy, ZeroMatrixEmpty) {
  tensor::MatrixF w(64, 64, 0.0f);
  EXPECT_DOUBLE_EQ(tile_occupancy(w, 16), 0.0);
}

TEST(TileOccupancy, SingleNonzeroTile) {
  tensor::MatrixF w(64, 64, 0.0f);
  w(20, 20) = 1.0f;  // tile (1,1) of a 4x4 tile grid
  EXPECT_DOUBLE_EQ(tile_occupancy(w, 16), 1.0 / 16.0);
}

TEST(TileOccupancy, PartialBorderTilesCounted) {
  tensor::MatrixF w(65, 65, 0.0f);
  w(64, 64) = 1.0f;  // lives in the 5x5 grid's corner border tile
  EXPECT_DOUBLE_EQ(tile_occupancy(w, 16), 1.0 / 25.0);
}

TEST(TileOccupancy, RejectsZeroTileSize) {
  const auto w = random_weights(8, 8, 9);
  EXPECT_THROW(tile_occupancy(w, 0), std::invalid_argument);
}

TEST(TileOccupancy, RandomPruningLeavesTilesOccupied) {
  // The structural insight the ablation bench reports: 90% random-ish
  // magnitude pruning still leaves essentially every 128-wide tile with
  // survivors, so tile-granular skipping wins almost nothing.
  auto w = random_weights(768, 768, 10);
  prune_matrix(w, 0.9, PruneMethod::kMagnitude);
  EXPECT_GT(tile_occupancy(w, 128), 0.95);
}

// --- sparse performance model ------------------------------------------------

TEST(SparsePerf, FullOccupancyEqualsDense) {
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  const auto dense = accel::estimate_performance(cfg, model);
  const auto sparse =
      accel::estimate_sparse_performance(cfg, model, {1.0, 1.0, 1.0});
  EXPECT_EQ(sparse.total_cycles, dense.total_cycles);
}

TEST(SparsePerf, LowerOccupancyIsFaster) {
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  const auto half =
      accel::estimate_sparse_performance(cfg, model, {0.5, 0.5, 0.5});
  const auto dense = accel::estimate_performance(cfg, model);
  EXPECT_LT(half.total_cycles, dense.total_cycles);
  // FFN dominates BERT, so halving its tiles nearly halves latency.
  EXPECT_LT(static_cast<double>(half.total_cycles) / dense.total_cycles,
            0.60);
}

TEST(SparsePerf, MhaStagesUnaffected) {
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  const auto sparse =
      accel::estimate_sparse_performance(cfg, model, {0.1, 0.1, 0.1});
  const auto dense = accel::estimate_performance(cfg, model);
  EXPECT_EQ(sparse.stage("qkv").total, dense.stage("qkv").total);
  EXPECT_EQ(sparse.stage("softmax").total, dense.stage("softmax").total);
}

TEST(SparsePerf, RejectsBadOccupancy) {
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  EXPECT_THROW(
      accel::estimate_sparse_performance(cfg, model, {1.5, 1.0, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      accel::estimate_sparse_performance(cfg, model, {-0.1, 1.0, 1.0}),
      std::invalid_argument);
}

TEST(SparsePerf, PaperNinetyPercentBound) {
  // The ideal bound of the paper's §V arithmetic: with zero-occupancy FFN
  // tiles the remaining latency is the MHA + LN floor.
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  const auto floor_report =
      accel::estimate_sparse_performance(cfg, model, {0.0, 0.0, 0.0});
  const auto dense = accel::estimate_performance(cfg, model);
  EXPECT_LT(floor_report.latency_ms, 0.1 * dense.latency_ms);
  EXPECT_GT(floor_report.latency_ms, 0.0);
}

}  // namespace
}  // namespace protea::baseline
