// Quantized KV-cache storage (numeric/fp8.hpp formats) property suite:
//
//   * byte-width regression sweep — every estimator that reports KV bytes
//     (estimate_kv_footprint, estimate_forked_kv_footprint,
//     estimate_preemption_cost, estimate_prefix_cache_savings, the
//     decode-step perf model's gather/dequant traffic) must match the
//     bytes the runtime actually allocates and moves, for int8 AND every
//     quantized format — the "1 byte/element" assumptions this PR removed
//     can never silently come back;
//   * determinism of quantized paged decode: paged == dense, strided ==
//     gather, byte-exact across COW forks, swap round trips, prefix
//     adoption and repeat runs — decode output depends only on the
//     storage choice, never on paging history;
//   * the mixed-format guards: a pool serving int8 and fp8 sequences has
//     IDENTICAL row widths for both, so adoption/forking across formats
//     must be refused by contract, not caught by geometry;
//   * fused LUT GEMM == decode-then-int8-GEMM, the identity the span
//     pack stage's dequant fusion rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "numeric/fp8.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/prefix_cache.hpp"
#include "tensor/qgemm.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

using numeric::KvStorage;

constexpr KvStorage kAllStorages[] = {KvStorage::kInt8, KvStorage::kFp8E4M3,
                                      KvStorage::kFp8E5M2,
                                      KvStorage::kFp4E2M1};
constexpr KvStorage kQuantStorages[] = {
    KvStorage::kFp8E4M3, KvStorage::kFp8E5M2, KvStorage::kFp4E2M1};

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct Fixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit Fixture(uint32_t seq_len = 12, uint64_t seed = 900) {
    cfg.seq_len = seq_len;
    cfg.d_model = 48;
    cfg.num_heads = 4;  // head_dim 12 — even, so fp4 packing is legal
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(6, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }

  /// KvCache/KvBlockPool row width at a storage format — the per-head
  /// form both use (layers x heads x 2 x stored head bytes).
  size_t row_bytes(KvStorage s) const {
    return cfg.num_layers * cfg.num_heads * 2 *
           numeric::kv_storage_bytes(cfg.head_dim(), s);
  }
};

// --- satellite: estimator bytes == runtime bytes, every format ---------------

TEST(KvStorageBytes, FootprintRowBytesMatchPoolGeometry) {
  Fixture fx;
  for (const KvStorage s : kAllStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    const auto fp = accel::estimate_kv_footprint(fx.cfg, 7, 2, s);
    EXPECT_EQ(fp.row_bytes, fx.row_bytes(s));
    EXPECT_EQ(fp.blocks, 4u);
    EXPECT_EQ(fp.paged_bytes, 4u * 2 * fx.row_bytes(s));
    // The dense arena never packs (values round-trip in place), so its
    // reservation stays at the int8 width for every format.
    EXPECT_EQ(fp.dense_bytes,
              fx.row_bytes(KvStorage::kInt8) * fx.cfg.seq_len);

    const auto ffp = accel::estimate_forked_kv_footprint(fx.cfg, 5, 3, 2, 2, s);
    EXPECT_EQ(ffp.row_bytes, fx.row_bytes(s));

    // The session's private pool must carve rows of exactly this width.
    runtime::GenerationOptions opts;
    opts.kv_block_rows = 2;
    opts.kv_storage = s;
    runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF states;
    session.prefill(random_input(5, fx.cfg.d_model, 910), fx.memory, states);
    ASSERT_NE(session.cache().pool(), nullptr);
    EXPECT_EQ(session.cache().pool()->row_bytes(), fp.row_bytes);
    EXPECT_EQ(session.cache().pool()->block_bytes(), 2 * fp.row_bytes);
  }
  // The headline byte win: packed fp4 halves the int8/fp8 row width.
  EXPECT_EQ(fx.row_bytes(KvStorage::kFp8E4M3), fx.row_bytes(KvStorage::kInt8));
  EXPECT_EQ(fx.row_bytes(KvStorage::kFp4E2M1),
            fx.row_bytes(KvStorage::kInt8) / 2);
}

TEST(KvStorageBytes, ExecutedGatherBytesMatchEstimators) {
  // The gather fallback's executed EngineStats::gathered_bytes must equal
  // both byte models — KvFootprint::gather_bytes_per_step and the decode
  // step report's self_gather stage — per step, per format.
  Fixture fx(10);
  const uint32_t br = 3;
  for (const KvStorage s : kAllStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    accel::EngineStats stats;
    runtime::GenerationOptions opts;
    opts.kv_block_rows = br;
    opts.kv_gather_fallback = true;
    opts.kv_storage = s;
    runtime::GenerationSession session(fx.acfg, fx.qd, &stats, opts);
    tensor::MatrixF states;
    session.prefill(random_input(4, fx.cfg.d_model, 920), fx.memory, states);

    const auto tokens = random_input(fx.cfg.seq_len, fx.cfg.d_model, 921);
    tensor::MatrixF state;
    for (uint32_t pos = 4; pos < fx.cfg.seq_len; ++pos) {
      const uint64_t before = stats.gathered_bytes;
      session.decode_step(tokens.slice_rows(pos, 1), state);
      const uint64_t executed = stats.gathered_bytes - before;
      const auto fp = accel::estimate_kv_footprint(fx.cfg, pos + 1, br, s);
      EXPECT_EQ(executed, fp.gather_bytes_per_step) << "pos " << pos;
      const auto report = accel::estimate_decode_step_performance(
          fx.acfg, fx.cfg, pos, static_cast<uint32_t>(fx.memory.rows()),
          /*kv_gather_fallback=*/true, s);
      EXPECT_EQ(executed, report.bytes_loaded) << "pos " << pos;
    }
  }
}

TEST(KvStorageBytes, DecodeStepModelInt8IsUntouchedAndQuantAddsDequant) {
  // int8 must be byte-identical to the pre-storage model (no new stage,
  // zero bytes); a quantized format adds ONLY the bytes-only kv_dequant
  // stage in strided mode — cycles and MACs never move with storage.
  Fixture fx;
  const uint32_t mem = static_cast<uint32_t>(fx.memory.rows());
  const auto base = accel::estimate_decode_step_performance(fx.acfg, fx.cfg,
                                                            6, mem);
  const auto int8 = accel::estimate_decode_step_performance(
      fx.acfg, fx.cfg, 6, mem, false, KvStorage::kInt8);
  EXPECT_EQ(int8.bytes_loaded, 0u);
  EXPECT_EQ(int8.total_cycles, base.total_cycles);
  EXPECT_EQ(int8.stages.size(), base.stages.size());

  for (const KvStorage s : kQuantStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    const auto q = accel::estimate_decode_step_performance(fx.acfg, fx.cfg, 6,
                                                           mem, false, s);
    EXPECT_EQ(q.total_cycles, base.total_cycles);
    EXPECT_EQ(q.macs, base.macs);
    ASSERT_EQ(q.stages.size(), base.stages.size() + 1);
    const auto& dq = q.stages.back();
    EXPECT_EQ(dq.name, "kv_dequant");
    EXPECT_EQ(dq.total, 0u);
    const uint64_t kv_len = 7;  // pos 6 + the appended row
    EXPECT_EQ(dq.bytes_loaded,
              uint64_t{fx.cfg.num_heads} *
                  numeric::kv_storage_bytes(2 * kv_len * fx.cfg.head_dim(), s));
    EXPECT_EQ(q.bytes_loaded, dq.bytes_loaded * fx.cfg.num_layers);
  }
}

// --- paged == dense == gather, deterministic, per format ---------------------

TEST(KvStorageDecode, PagedMatchesDenseAcrossFormatsAndBlockSizes) {
  // A quantized format quantizes ONCE per stored element; dense (in-place
  // round-trip), paged block-strided (LUT fused into the span pack) and
  // the paged gather fallback must all see the same decoded values —
  // bit-identical outputs at every step, for every format.
  Fixture fx(10);
  for (const KvStorage s : kQuantStorages) {
    for (const size_t br : {size_t{1}, size_t{3}, size_t{16}}) {
      SCOPED_TRACE(std::string(numeric::kv_storage_name(s)) + " br=" +
                   std::to_string(br));
      const auto prefix = random_input(4, fx.cfg.d_model, 930);
      const auto tokens = random_input(fx.cfg.seq_len, fx.cfg.d_model, 931);

      runtime::GenerationOptions dense_opts;
      dense_opts.kv_block_rows = 0;
      dense_opts.kv_storage = s;
      runtime::GenerationSession dense(fx.acfg, fx.qd, nullptr, dense_opts);

      accel::EngineStats strided_stats, gather_stats;
      runtime::GenerationOptions strided_opts;
      strided_opts.kv_block_rows = br;
      strided_opts.kv_storage = s;
      runtime::GenerationSession strided(fx.acfg, fx.qd, &strided_stats,
                                         strided_opts);
      runtime::GenerationOptions gather_opts = strided_opts;
      gather_opts.kv_gather_fallback = true;
      runtime::GenerationSession gather(fx.acfg, fx.qd, &gather_stats,
                                        gather_opts);

      tensor::MatrixF ds, ss, gs;
      dense.prefill(prefix, fx.memory, ds);
      strided.prefill(prefix, fx.memory, ss);
      gather.prefill(prefix, fx.memory, gs);
      ASSERT_EQ(ss, ds);
      ASSERT_EQ(gs, ds);
      for (size_t t = prefix.rows(); t < fx.cfg.seq_len; ++t) {
        const auto token = tokens.slice_rows(t, 1);
        dense.decode_step(token, ds);
        strided.decode_step(token, ss);
        gather.decode_step(token, gs);
        ASSERT_EQ(ss, ds) << "strided pos " << t;
        ASSERT_EQ(gs, ds) << "gather pos " << t;
      }
      if (s == KvStorage::kFp4E2M1) {
        // Packed fp4 rows are not span-readable: the default path falls
        // back to gathering (decoding nibbles as it stages).
        EXPECT_GT(strided_stats.gathered_bytes, 0u);
      } else {
        // fp8 streams the block table in place, codes decoded in the
        // pack stage — still zero gather traffic.
        EXPECT_EQ(strided_stats.gathered_bytes, 0u);
        EXPECT_GT(strided_stats.span_runs, 0u);
      }
      EXPECT_GT(gather_stats.gathered_bytes, 0u);
    }
  }
}

TEST(KvStorageDecode, RepeatRunsAreBitIdentical) {
  Fixture fx(10);
  for (const KvStorage s : kQuantStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    const auto prefix = random_input(5, fx.cfg.d_model, 940);
    const auto tokens = random_input(fx.cfg.seq_len, fx.cfg.d_model, 941);
    std::vector<tensor::MatrixF> runs[2];
    for (int run = 0; run < 2; ++run) {
      runtime::GenerationOptions opts;
      opts.kv_block_rows = 2;
      opts.kv_storage = s;
      runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, opts);
      tensor::MatrixF states;
      session.prefill(prefix, fx.memory, states);
      runs[run].push_back(states);
      for (size_t t = prefix.rows(); t < fx.cfg.seq_len; ++t) {
        session.decode_step(tokens.slice_rows(t, 1), states);
        runs[run].push_back(states);
      }
    }
    EXPECT_EQ(runs[0], runs[1]);
  }
}

// --- COW fork + swap round trip, per format ----------------------------------

TEST(KvStorageDecode, CowForkDivergenceBitIdenticalPerFormat) {
  Fixture fx(14);
  for (const KvStorage s : kQuantStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    runtime::KvBlockPool pool;
    pool.configure(32, 3, fx.row_bytes(s));
    runtime::GenerationOptions opts;
    opts.kv_block_rows = 3;
    opts.kv_pool = &pool;
    opts.kv_storage = s;
    runtime::GenerationSession parent(fx.acfg, fx.qd, nullptr, opts);
    runtime::GenerationSession child(fx.acfg, fx.qd, nullptr, opts);

    const auto prompt = random_input(4, fx.cfg.d_model, 950);
    const auto shared_tok = random_input(3, fx.cfg.d_model, 951);
    const auto tok_p = random_input(7, fx.cfg.d_model, 952);
    const auto tok_c = random_input(7, fx.cfg.d_model, 953);

    tensor::MatrixF states, ps, cs, rs;
    parent.prefill(prompt, fx.memory, states);
    for (size_t t = 0; t < 3; ++t) {
      parent.decode_step(shared_tok.slice_rows(t, 1), ps);
    }
    child.fork_from(parent);  // mid-block: position 7, block_rows 3

    std::vector<tensor::MatrixF> parent_states, child_states;
    for (size_t t = 0; t < 7; ++t) {
      parent.decode_step(tok_p.slice_rows(t, 1), ps);
      child.decode_step(tok_c.slice_rows(t, 1), cs);
      parent_states.push_back(ps);
      child_states.push_back(cs);
    }

    runtime::GenerationOptions solo_opts;
    solo_opts.kv_block_rows = 3;
    solo_opts.kv_storage = s;
    runtime::GenerationSession solo(fx.acfg, fx.qd, nullptr, solo_opts);
    for (const bool is_child : {false, true}) {
      solo.prefill(prompt, fx.memory, states);
      for (size_t t = 0; t < 3; ++t) {
        solo.decode_step(shared_tok.slice_rows(t, 1), rs);
      }
      const auto& tok = is_child ? tok_c : tok_p;
      const auto& got = is_child ? child_states : parent_states;
      for (size_t t = 0; t < 7; ++t) {
        solo.decode_step(tok.slice_rows(t, 1), rs);
        EXPECT_EQ(got[t], rs)
            << (is_child ? "child" : "parent") << " pos " << t;
      }
      solo.end_sequence();
    }
  }
}

TEST(KvStorageSwap, RoundTripBitExactAndBytesMatchEstimator) {
  Fixture fx;
  for (const KvStorage s : kAllStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    runtime::KvBlockPool pool;
    pool.configure(12, 2, fx.row_bytes(s));
    runtime::GenerationOptions opts;
    opts.kv_block_rows = 2;
    opts.kv_pool = &pool;
    opts.kv_storage = s;
    const size_t d = fx.cfg.d_model;
    const auto prompt = random_input(3, d, 960);
    constexpr size_t kSteps = 4;
    auto next_of = [d](const tensor::MatrixF& state) {
      tensor::MatrixF token(1, d);
      for (size_t c = 0; c < d; ++c) token(0, c) = 0.3f * state(0, c);
      return token;
    };

    runtime::GenerationSession ref(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF ref_prefill;
    ref.prefill(prompt, fx.memory, ref_prefill);
    std::vector<tensor::MatrixF> ref_states;
    tensor::MatrixF token(1, d);
    for (size_t c = 0; c < d; ++c) {
      token(0, c) = 0.3f * ref_prefill(ref_prefill.rows() - 1, c);
    }
    for (size_t t = 0; t < kSteps; ++t) {
      tensor::MatrixF state;
      ref.decode_step(token, state);
      ref_states.push_back(state);
      token = next_of(state);
    }

    runtime::GenerationSession victim(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF victim_prefill;
    victim.prefill(prompt, fx.memory, victim_prefill);
    ASSERT_EQ(victim_prefill, ref_prefill);
    for (size_t c = 0; c < d; ++c) {
      token(0, c) = 0.3f * victim_prefill(victim_prefill.rows() - 1, c);
    }
    for (size_t t = 0; t < 2; ++t) {
      tensor::MatrixF state;
      victim.decode_step(token, state);
      ASSERT_EQ(state, ref_states[t]);
      token = next_of(state);
    }

    // 5 cached rows, block_rows 2 -> 3 held blocks at the STORED width.
    std::vector<int8_t> spill;
    const size_t held_bytes = victim.swap_bytes();
    const size_t rows = victim.swap_out(spill);
    EXPECT_EQ(rows, prompt.rows() + 2);
    EXPECT_EQ(spill.size(), held_bytes);
    EXPECT_EQ(spill.size(), 3 * 2 * fx.row_bytes(s));
    // The preemption model's swap figure is exactly the executed spill
    // plus the restore — twice the held bytes, at the stored width.
    const auto cost = accel::estimate_preemption_cost(
        fx.acfg, fx.cfg, static_cast<uint32_t>(rows),
        static_cast<uint32_t>(fx.memory.rows()), 2, s);
    EXPECT_EQ(cost.swap_bytes, 2 * spill.size());

    victim.prefill_begin(fx.memory);
    ASSERT_TRUE(victim.try_swap_in(spill, rows));
    for (size_t t = 2; t < kSteps; ++t) {
      tensor::MatrixF state;
      victim.decode_step(token, state);
      ASSERT_EQ(state, ref_states[t]) << "post-restore step " << t;
      token = next_of(state);
    }
  }
}

// --- prefix cache: per-format adoption + the mixed-format guards -------------

TEST(KvStoragePrefix, AdoptionBitIdenticalAndSavingsExactPerFormat) {
  Fixture fx;
  const size_t d = fx.cfg.d_model;
  const auto tok0 = random_input(1, d, 970);
  const auto tok1 = random_input(1, d, 971);
  for (const KvStorage s : kQuantStorages) {
    SCOPED_TRACE(numeric::kv_storage_name(s));
    const size_t br = 2;
    const auto prompt = random_input(7, d, 972);

    runtime::KvBlockPool pool;
    pool.configure(64, br, fx.row_bytes(s));
    runtime::PrefixCache cache;
    cache.configure(pool, br, d, runtime::PrefixCache::Options{.storage = s});
    const runtime::GenerationOptions opts{
        .kv_block_rows = br, .kv_pool = &pool, .kv_storage = s};

    // Cold run publishes; warm adopts — decode after adoption must match
    // the cold sequence bit for bit (the same-format ground truth).
    runtime::GenerationSession cold(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF cold_states;
    cold.prefill_begin(fx.memory);
    cold.prefill_rows(prompt, cold_states);
    cache.publish_cross(fx.memory, cold.cache());
    cold.publish_prefix(cache, prompt, fx.memory, cold_states);
    tensor::MatrixF cold_d0, cold_d1;
    cold.decode_step(tok0, cold_d0);
    cold.decode_step(tok1, cold_d1);
    cold.end_sequence();

    accel::EngineStats ws;
    runtime::GenerationSession warm(fx.acfg, fx.qd, &ws, opts);
    tensor::MatrixF warm_states(prompt.rows(), d);
    const size_t adopted =
        warm.prefill_begin_cached(cache, prompt, fx.memory, warm_states);
    EXPECT_EQ(adopted, (prompt.rows() - 1) / br * br);
    tensor::MatrixF tail;
    warm.prefill_rows(
        prompt.slice_rows(adopted, prompt.rows() - adopted), tail);
    for (size_t r = 0; r < tail.rows(); ++r) {
      std::copy(tail.row(r).begin(), tail.row(r).end(),
                warm_states.row(adopted + r).begin());
    }
    EXPECT_EQ(warm_states, cold_states);
    tensor::MatrixF warm_d0, warm_d1;
    warm.decode_step(tok0, warm_d0);
    warm.decode_step(tok1, warm_d1);
    EXPECT_EQ(warm_d0, cold_d0);
    EXPECT_EQ(warm_d1, cold_d1);

    // Modeled savings count adopted rows at the STORED width — exactly
    // the runtime's prefix_bytes_saved accounting.
    accel::GenerationCosting costing;
    costing.adopted_rows = static_cast<uint32_t>(adopted);
    costing.cross_cached = true;
    costing.kv_storage = s;
    const auto sv = accel::estimate_prefix_cache_savings(
        fx.acfg, fx.cfg, static_cast<uint32_t>(prompt.rows()),
        static_cast<uint32_t>(fx.memory.rows()), costing);
    EXPECT_EQ(sv.kv_bytes, adopted * pool.row_bytes());
    EXPECT_EQ(sv.kv_bytes, adopted * fx.row_bytes(s));
    EXPECT_EQ(ws.prefix_rows_adopted, adopted);
    EXPECT_EQ(ws.prefix_bytes_saved, sv.kv_bytes + sv.cross_bytes);

    warm.end_sequence();
    cache.clear();
    EXPECT_EQ(pool.used_blocks(), 0u);
  }
}

TEST(KvStorageMixed, PoolSharedAcrossFormatsNeverCrossAdopts) {
  // int8 and fp8 rows are BOTH 1 byte/element, so a shared pool accepts
  // either format's sessions — geometry cannot catch a mix-up. The
  // prefix cache and fork path must refuse on the format tag itself.
  Fixture fx;
  runtime::KvBlockPool pool;
  pool.configure(64, 2, fx.row_bytes(KvStorage::kInt8));
  runtime::PrefixCache cache;
  cache.configure(pool, 2, fx.cfg.d_model,
                  runtime::PrefixCache::Options{.storage = KvStorage::kInt8});

  const auto prompt = random_input(5, fx.cfg.d_model, 980);
  runtime::GenerationOptions i8_opts{.kv_block_rows = 2, .kv_pool = &pool};
  runtime::GenerationOptions f8_opts = i8_opts;
  f8_opts.kv_storage = KvStorage::kFp8E4M3;

  // Seed the cache from a genuine int8 sequence.
  runtime::GenerationSession i8(fx.acfg, fx.qd, nullptr, i8_opts);
  tensor::MatrixF states;
  i8.prefill_begin(fx.memory);
  i8.prefill_rows(prompt, states);
  cache.publish_cross(fx.memory, i8.cache());
  i8.publish_prefix(cache, prompt, fx.memory, states);

  // An fp8 session on the SAME pool: every cache door is closed.
  runtime::GenerationSession f8(fx.acfg, fx.qd, nullptr, f8_opts);
  tensor::MatrixF f8_states;
  EXPECT_THROW(
      f8.prefill_begin_cached(cache, prompt, fx.memory, f8_states),
      std::logic_error);
  EXPECT_THROW(f8.prefill_begin_cross(cache, fx.memory), std::logic_error);
  f8.prefill_begin(fx.memory);
  f8.prefill_rows(prompt, f8_states);
  EXPECT_THROW(f8.publish_prefix(cache, prompt, fx.memory, f8_states),
               std::logic_error);

  // COW forks across formats are refused even over one pool.
  EXPECT_THROW(f8.fork_from(i8), std::invalid_argument);

  // A format with a DIFFERENT row width never even binds to the pool.
  runtime::GenerationOptions f4_opts = i8_opts;
  f4_opts.kv_storage = KvStorage::kFp4E2M1;
  EXPECT_THROW(runtime::GenerationSession(fx.acfg, fx.qd, nullptr, f4_opts),
               std::invalid_argument);

  f8.end_sequence();
  i8.end_sequence();
  cache.clear();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

// --- fused LUT GEMM == decode-then-int8 reference ----------------------------

TEST(KvStorageGemm, LutGemmMatchesDecodeThenInt8) {
  const numeric::KvCodec* codec = numeric::kv_codec(KvStorage::kFp8E4M3);
  ASSERT_NE(codec, nullptr);
  const int8_t* lut = codec->decode.data();
  util::Xoshiro256 rng(990);
  const struct {
    size_t m, k, n;
  } shapes[] = {{1, 12, 7}, {5, 7, 9}, {13, 31, 17}, {1, 128, 96}, {4, 300, 8}};
  for (const auto& sh : shapes) {
    tensor::MatrixI8 a(sh.m, sh.k), codes(sh.k, sh.n), codes_t(sh.n, sh.k);
    for (auto& x : a.flat()) {
      x = static_cast<int8_t>(static_cast<int32_t>(rng.bounded(256)) - 128);
    }
    for (auto& x : codes.flat()) {
      x = static_cast<int8_t>(rng.bounded(256));  // raw fp8 code bytes
    }
    for (size_t r = 0; r < sh.k; ++r) {
      for (size_t c = 0; c < sh.n; ++c) codes_t(c, r) = codes(r, c);
    }
    tensor::MatrixI8 decoded(sh.k, sh.n), decoded_t(sh.n, sh.k);
    for (size_t i = 0; i < codes.size(); ++i) {
      decoded.data()[i] = lut[static_cast<uint8_t>(codes.data()[i])];
    }
    for (size_t i = 0; i < codes_t.size(); ++i) {
      decoded_t.data()[i] = lut[static_cast<uint8_t>(codes_t.data()[i])];
    }

    std::vector<int8_t> pack(tensor::qgemm_pack_elems(sh.n));
    std::vector<int8_t> pack_t(tensor::qgemm_pack_elems(sh.n));
    tensor::MatrixI32 want(sh.m, sh.n), got(sh.m, sh.n);
    tensor::qgemm_into(a, decoded, want, pack);
    tensor::qgemm_lut_into(a, codes, lut, got, pack);
    EXPECT_EQ(got, want) << "m=" << sh.m << " k=" << sh.k << " n=" << sh.n;

    tensor::qgemm_bt_into(a, decoded_t, want, pack_t);
    tensor::qgemm_bt_lut_into(a, codes_t, lut, got, pack_t);
    EXPECT_EQ(got, want) << "bt m=" << sh.m << " k=" << sh.k << " n=" << sh.n;
  }
}

TEST(KvStorageGemm, SpanDecodeDispatchMatchesContiguous) {
  // A RowSpanListI8 with `decode` set must equal decoding the spanned
  // bytes into a contiguous matrix and multiplying that — the exact
  // contract KvCache::self_spans hands the QK/SV engines.
  const numeric::KvCodec* codec = numeric::kv_codec(KvStorage::kFp8E5M2);
  ASSERT_NE(codec, nullptr);
  util::Xoshiro256 rng(991);
  const size_t k = 10, n = 6, m = 3;
  tensor::MatrixI8 a(m, k), codes(k, n);
  for (auto& x : a.flat()) {
    x = static_cast<int8_t>(static_cast<int32_t>(rng.bounded(256)) - 128);
  }
  for (auto& x : codes.flat()) x = static_cast<int8_t>(rng.bounded(256));

  // Split the k rows into three runs to exercise the span cursor.
  const tensor::RowSpanI8 runs[] = {{codes.row(0).data(), 4},
                                    {codes.row(4).data(), 1},
                                    {codes.row(5).data(), 5}};
  tensor::RowSpanListI8 spans;
  spans.runs = runs;
  spans.rows = k;
  spans.cols = n;
  spans.row_stride = n;
  spans.decode = codec->decode.data();

  tensor::MatrixI8 decoded(k, n);
  for (size_t i = 0; i < codes.size(); ++i) {
    decoded.data()[i] = codec->decode[static_cast<uint8_t>(codes.data()[i])];
  }
  std::vector<int8_t> pack(tensor::qgemm_pack_elems(n));
  tensor::MatrixI32 want(m, n), got(m, n);
  tensor::qgemm_into(a, decoded, want, pack);
  tensor::qgemm_spans_into(a, spans, got, pack);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace protea
