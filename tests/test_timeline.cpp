// Tests for the execution-timeline substrate and Chrome trace export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "accel/timeline.hpp"
#include "ref/model_zoo.hpp"

namespace protea::accel {
namespace {

TEST(Timeline, EventsOrderedAndContiguous) {
  AccelConfig cfg;
  ref::ModelConfig model = ref::bert_variant();
  model.num_layers = 2;
  const Timeline timeline = build_timeline(cfg, model);
  ASSERT_FALSE(timeline.events().empty());
  hw::Cycles prev_end = 0;
  for (const auto& e : timeline.events()) {
    EXPECT_EQ(e.start, prev_end);  // serial schedule: no gaps, no overlap
    EXPECT_GE(e.end, e.start);
    prev_end = e.end;
  }
  EXPECT_EQ(prev_end, timeline.total_cycles());
}

TEST(Timeline, TotalMatchesPerfModelClosely) {
  // The schedule redistributes the aggregated LN stage but must preserve
  // the total within integer-division rounding of the LN split.
  AccelConfig cfg;
  const ref::ModelConfig model = ref::bert_variant();
  const Timeline timeline = build_timeline(cfg, model);
  const PerfReport report = estimate_performance(cfg, model);
  const auto diff =
      report.total_cycles > timeline.total_cycles()
          ? report.total_cycles - timeline.total_cycles()
          : timeline.total_cycles() - report.total_cycles;
  EXPECT_LE(diff, static_cast<hw::Cycles>(model.num_layers));
}

TEST(Timeline, EveryStagePresentPerLayer) {
  AccelConfig cfg;
  ref::ModelConfig model = ref::bert_variant();
  model.num_layers = 3;
  const Timeline timeline = build_timeline(cfg, model);
  // 7 engine stages + 2 LN events per layer.
  EXPECT_EQ(timeline.events().size(), 3u * 9u);
  for (uint32_t layer = 0; layer < 3; ++layer) {
    int count = 0;
    for (const auto& e : timeline.events()) {
      if (e.layer == layer) ++count;
    }
    EXPECT_EQ(count, 9);
  }
}

TEST(Timeline, StageBusyAggregates) {
  AccelConfig cfg;
  const ref::ModelConfig model = ref::bert_variant();
  const Timeline timeline = build_timeline(cfg, model);
  const PerfReport report = estimate_performance(cfg, model);
  EXPECT_EQ(timeline.stage_busy("ffn2"),
            report.stage("ffn2").total * model.num_layers);
  EXPECT_EQ(timeline.stage_busy("nonexistent"), 0u);
}

TEST(Timeline, FfnDominatesBusyCycles) {
  AccelConfig cfg;
  const Timeline timeline = build_timeline(cfg, ref::bert_variant());
  const auto ffn = timeline.stage_busy("ffn1") +
                   timeline.stage_busy("ffn2") +
                   timeline.stage_busy("ffn3");
  EXPECT_GT(ffn, timeline.total_cycles() * 9 / 10);
}

TEST(Timeline, RejectsInvertedEvent) {
  Timeline timeline;
  TimelineEvent bad{.stage = "x", .layer = 0, .start = 10, .end = 5};
  EXPECT_THROW(timeline.add(std::move(bad)), std::invalid_argument);
}

TEST(Timeline, ChromeTraceIsWellFormedJson) {
  AccelConfig cfg;
  ref::ModelConfig model = ref::bert_variant();
  model.num_layers = 1;
  const Timeline timeline = build_timeline(cfg, model);
  const std::string path = testing::TempDir() + "/protea_trace_test.json";
  timeline.export_chrome_trace(path);

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  // Structural checks: array brackets, balanced braces, required keys.
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  const auto opens = std::count(json.begin(), json.end(), '{');
  const auto closes = std::count(json.begin(), json.end(), '}');
  EXPECT_EQ(opens, closes);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ffn2"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Timeline, ExportFailsOnBadPath) {
  AccelConfig cfg;
  ref::ModelConfig model = ref::bert_variant();
  model.num_layers = 1;
  const Timeline timeline = build_timeline(cfg, model);
  EXPECT_THROW(timeline.export_chrome_trace("/no_such_dir_xyz/t.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace protea::accel
