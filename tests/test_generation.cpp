// Tests for the KV-cached generation engine: bit-identity of incremental
// decoding against the full-recompute decoder path, the incremental
// cycle model's agreement with per-step execution, and the continuous-
// batching scheduler's admit/retire semantics in both its deterministic
// step-loop and threaded module-slot modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "ref/decoder.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 12;  // max target length
  c.d_model = 48;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = ref::Activation::kGelu;
  return c;
}

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct Fixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit Fixture(uint64_t seed = 50) {
    cfg = small_config();
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(8, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }
};

// --- bit-identity of the incremental path -----------------------------------

TEST(GenerationSession, PrefillMatchesFullRecomputeForward) {
  Fixture fx;
  accel::ProteaDecoderAccelerator acc(fx.acfg);
  acc.load_model(fx.qd);
  const auto target = random_input(5, fx.cfg.d_model, 60);
  const auto expected = acc.forward(target, fx.memory);

  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states;
  session.prefill(target, fx.memory, states);
  EXPECT_EQ(states, expected);
  EXPECT_EQ(session.position(), 5u);
}

TEST(GenerationSession, DecodeStepsMatchFullRecomputeRows) {
  // Every decode_step state must equal the LAST row of a full-recompute
  // forward over the same prefix, bit for bit — the property that makes
  // KV-cached greedy decoding emit exactly the same tokens.
  Fixture fx;
  accel::ProteaDecoderAccelerator acc(fx.acfg);
  acc.load_model(fx.qd);
  const auto rows =
      random_input(fx.cfg.seq_len, fx.cfg.d_model, 61);  // token stream

  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states;
  session.prefill(rows.slice_rows(0, 1), fx.memory, states);

  tensor::MatrixF state;
  for (size_t t = 1; t < fx.cfg.seq_len; ++t) {
    session.decode_step(rows.slice_rows(t, 1), state);
    const auto full = acc.forward(rows.slice_rows(0, t + 1), fx.memory);
    for (size_t c = 0; c < fx.cfg.d_model; ++c) {
      ASSERT_EQ(state(0, c), full(t, c)) << "position " << t;
    }
  }
  EXPECT_EQ(session.position(), fx.cfg.seq_len);
}

TEST(GenerationSession, GreedyDecodeEmitsIdenticalTokens) {
  // End-to-end greedy loop: argmax over a random vocabulary head, cached
  // vs full recompute — token sequences must be identical.
  Fixture fx;
  constexpr uint32_t kVocab = 32;
  const auto vocab = random_input(kVocab, fx.cfg.d_model, 62);
  const auto embed = random_input(kVocab, fx.cfg.d_model, 63);
  const auto embed_row = [&](uint32_t token) {
    tensor::MatrixF m(1, fx.cfg.d_model);
    for (size_t c = 0; c < fx.cfg.d_model; ++c) m(0, c) = embed(token, c);
    return m;
  };
  const auto embed_rows = [&](const std::vector<uint32_t>& tokens) {
    tensor::MatrixF m(tokens.size(), fx.cfg.d_model);
    for (size_t r = 0; r < tokens.size(); ++r) {
      for (size_t c = 0; c < fx.cfg.d_model; ++c) {
        m(r, c) = embed(tokens[r], c);
      }
    }
    return m;
  };
  const auto argmax = [&](std::span<const float> state) {
    uint32_t best = 0;
    double best_score = -1e300;
    for (uint32_t v = 0; v < kVocab; ++v) {
      double score = 0.0;
      for (size_t c = 0; c < state.size(); ++c) {
        score += static_cast<double>(vocab(v, c)) * state[c];
      }
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    return best;
  };

  accel::ProteaDecoderAccelerator acc(fx.acfg);
  acc.load_model(fx.qd);
  std::vector<uint32_t> full_tokens = {0};
  for (uint32_t t = 1; t < fx.cfg.seq_len; ++t) {
    const auto states = acc.forward(embed_rows(full_tokens), fx.memory);
    full_tokens.push_back(argmax(states.row(states.rows() - 1)));
  }

  std::vector<uint32_t> cached_tokens = {0};
  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states, state;
  session.prefill(embed_row(0), fx.memory, states);
  cached_tokens.push_back(argmax(states.row(0)));
  for (uint32_t t = 2; t < fx.cfg.seq_len; ++t) {
    session.decode_step(embed_row(cached_tokens.back()), state);
    cached_tokens.push_back(argmax(state.row(0)));
  }
  EXPECT_EQ(full_tokens, cached_tokens);
}

TEST(GenerationSession, SecondSequenceReusesStorageBitIdentically) {
  // begin_sequence recycles the cache: a second prefill over different
  // data must behave exactly like a fresh session's.
  Fixture fx;
  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states1, states2, fresh;
  session.prefill(random_input(7, fx.cfg.d_model, 64), fx.memory, states1);

  const auto target2 = random_input(4, fx.cfg.d_model, 65);
  const auto memory2 = random_input(6, fx.cfg.d_model, 66);
  session.prefill(target2, memory2, states2);
  runtime::GenerationSession session2(fx.acfg, fx.qd);
  session2.prefill(target2, memory2, fresh);
  EXPECT_EQ(states2, fresh);
  EXPECT_EQ(session.position(), 4u);
}

TEST(GenerationSession, AcceleratorWrapperMatchesSession) {
  Fixture fx;
  accel::ProteaDecoderAccelerator acc(fx.acfg);
  acc.load_model(fx.qd);
  const auto prefix = random_input(3, fx.cfg.d_model, 67);
  const auto token = random_input(1, fx.cfg.d_model, 68);

  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states, state;
  session.prefill(prefix, fx.memory, states);
  session.decode_step(token, state);

  EXPECT_EQ(acc.generation_position(), 0u);
  EXPECT_EQ(acc.prefill(prefix, fx.memory), states);
  EXPECT_EQ(acc.decode_step(token), state);
  EXPECT_EQ(acc.generation_position(), 4u);
}

TEST(GenerationSession, ValidatesInputs) {
  Fixture fx;
  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states;
  // decode before prefill
  EXPECT_THROW(
      session.decode_step(random_input(1, fx.cfg.d_model, 70), states),
      std::logic_error);
  // oversized prefix / memory, wrong widths
  EXPECT_THROW(session.prefill(random_input(20, fx.cfg.d_model, 71),
                               fx.memory, states),
               std::invalid_argument);
  EXPECT_THROW(
      session.prefill(random_input(4, 32, 72), fx.memory, states),
      std::invalid_argument);
  EXPECT_THROW(session.prefill(random_input(4, fx.cfg.d_model, 73),
                               random_input(200, fx.cfg.d_model, 74),
                               states),
               std::invalid_argument);
  // capacity exhaustion
  session.prefill(random_input(fx.cfg.seq_len, fx.cfg.d_model, 75),
                  fx.memory, states);
  EXPECT_THROW(
      session.decode_step(random_input(1, fx.cfg.d_model, 76), states),
      std::invalid_argument);
}

// --- chunked prefill --------------------------------------------------------

TEST(GenerationSession, ChunkedPrefillBitIdenticalToOneShot) {
  // Chunk sizes {1, 7, T-1, T} (T = 9) must all produce outputs
  // bit-identical to the one-shot pass: every op is row-wise and the
  // causal mask only looks backwards, so splitting the prompt into
  // bounded passes changes the schedule, not the numbers.
  Fixture fx;
  constexpr size_t kT = 9;
  const auto prefix = random_input(kT, fx.cfg.d_model, 150);

  runtime::GenerationSession one_shot(fx.acfg, fx.qd);
  tensor::MatrixF expected;
  one_shot.prefill(prefix, fx.memory, expected);

  for (size_t chunk : {size_t{1}, size_t{7}, kT - 1, kT}) {
    runtime::GenerationOptions opts;
    opts.prefill_chunk = chunk;
    runtime::GenerationSession session(fx.acfg, fx.qd, nullptr, opts);
    tensor::MatrixF states;
    session.prefill(prefix, fx.memory, states);
    EXPECT_EQ(states, expected) << "chunk " << chunk;
    EXPECT_EQ(session.position(), kT) << "chunk " << chunk;

    // Decode after a chunked prefill must also match.
    tensor::MatrixF token = random_input(1, fx.cfg.d_model, 151);
    tensor::MatrixF state, expected_state;
    one_shot.decode_step(token, expected_state);
    session.decode_step(token, state);
    EXPECT_EQ(state, expected_state) << "chunk " << chunk;

    // Re-arm the one-shot session for the next chunk size.
    one_shot.prefill(prefix, fx.memory, expected);
  }
}

// --- incremental perf model vs executed schedule ----------------------------

TEST(GenerationPerf, PrefillMacsMatchExecution) {
  Fixture fx;
  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states;
  session.prefill(random_input(6, fx.cfg.d_model, 80), fx.memory, states);
  const auto report = accel::estimate_decoder_performance(
      fx.acfg, fx.cfg, 6, static_cast<uint32_t>(fx.memory.rows()));
  EXPECT_EQ(session.stats().macs, report.macs);
}

TEST(GenerationPerf, DecodeStepMacsMatchExecutionPerStep) {
  // The incremental cycle model must match the executed schedule step by
  // step: each decode_step's EngineStats delta equals the model's MAC
  // count for that position.
  Fixture fx;
  runtime::GenerationSession session(fx.acfg, fx.qd);
  const auto mem_len = static_cast<uint32_t>(fx.memory.rows());
  tensor::MatrixF states, state;
  session.prefill(random_input(1, fx.cfg.d_model, 81), fx.memory, states);
  uint64_t before = session.stats().macs;
  for (uint32_t pos = 1; pos < fx.cfg.seq_len; ++pos) {
    session.decode_step(random_input(1, fx.cfg.d_model, 82 + pos), state);
    const uint64_t after = session.stats().macs;
    const auto step = accel::estimate_decode_step_performance(
        fx.acfg, fx.cfg, pos, mem_len);
    EXPECT_EQ(after - before, step.macs) << "position " << pos;
    before = after;
  }
}

TEST(GenerationPerf, BlockStridedDecodeMovesZeroGatherBytes) {
  // The block-strided default: paged decode streams K/V straight out of
  // the block table, so EngineStats must report ZERO gathered bytes
  // across prefill + a full decode-to-capacity, while span_runs counts
  // the block-table runs the span engines streamed.
  Fixture fx;
  accel::EngineStats stats;
  runtime::GenerationOptions opts;
  opts.kv_block_rows = 4;
  runtime::GenerationSession session(fx.acfg, fx.qd, &stats, opts);
  ASSERT_TRUE(session.cache().paged());
  tensor::MatrixF states, state;
  session.prefill(random_input(3, fx.cfg.d_model, 90), fx.memory, states);
  for (uint32_t pos = 3; pos < fx.cfg.seq_len; ++pos) {
    session.decode_step(random_input(1, fx.cfg.d_model, 91 + pos), state);
  }
  EXPECT_EQ(stats.gathered_bytes, 0u);
  EXPECT_GT(stats.span_runs, 0u);
}

TEST(GenerationPerf, GatherFallbackBytesMatchModelPerStep) {
  // The legacy gather fallback's executed copy volume must match, step
  // by step, both the decode-step cycle model's bytes_loaded
  // (kv_gather_fallback = true adds the self_gather stage) and the
  // footprint model's gather_bytes_per_step — while the block-strided
  // model keeps predicting zero.
  Fixture fx;
  accel::EngineStats stats;
  runtime::GenerationOptions opts;
  opts.kv_block_rows = 4;
  opts.kv_gather_fallback = true;
  runtime::GenerationSession session(fx.acfg, fx.qd, &stats, opts);
  const auto mem_len = static_cast<uint32_t>(fx.memory.rows());
  tensor::MatrixF states, state;
  session.prefill(random_input(1, fx.cfg.d_model, 95), fx.memory, states);
  uint64_t before = stats.gathered_bytes;
  for (uint32_t pos = 1; pos < fx.cfg.seq_len; ++pos) {
    session.decode_step(random_input(1, fx.cfg.d_model, 96 + pos), state);
    const uint64_t moved = stats.gathered_bytes - before;
    before = stats.gathered_bytes;
    const auto step = accel::estimate_decode_step_performance(
        fx.acfg, fx.cfg, pos, mem_len, /*kv_gather_fallback=*/true);
    EXPECT_EQ(moved, step.bytes_loaded) << "position " << pos;
    const auto fp = accel::estimate_kv_footprint(fx.cfg, pos + 1, 4);
    EXPECT_EQ(moved, fp.gather_bytes_per_step) << "position " << pos;
    EXPECT_EQ(accel::estimate_decode_step_performance(fx.acfg, fx.cfg, pos,
                                                      mem_len)
                  .bytes_loaded,
              0u)
        << "position " << pos;
  }
}

TEST(GenerationPerf, GenerationEstimateSumsPrefillAndSteps) {
  const accel::AccelConfig acfg;
  const ref::ModelConfig cfg = small_config();
  const auto total = accel::estimate_generation_performance(
      acfg, cfg, /*prefill_len=*/1, /*total_len=*/10, /*memory_len=*/8);
  hw::Cycles expected =
      accel::estimate_decoder_performance(acfg, cfg, 1, 8).total_cycles;
  for (uint32_t pos = 1; pos < 10; ++pos) {
    expected +=
        accel::estimate_decode_step_performance(acfg, cfg, pos, 8)
            .total_cycles;
  }
  EXPECT_EQ(total.total_cycles, expected);
  EXPECT_EQ(total.stage("decode_steps").invocations, 9u);
}

TEST(GenerationPerf, CachedGenerationBeatsFullRecompute) {
  // The acceptance bar: at the max target length the KV-cached schedule
  // must do measurably less total work than the naive controller.
  const accel::AccelConfig acfg;
  ref::ModelConfig cfg = small_config();
  cfg.seq_len = 128;
  cfg.d_model = 768;
  cfg.num_heads = 8;
  cfg.num_layers = 6;
  hw::Cycles full = 0;
  uint64_t full_macs = 0;
  for (uint32_t t = 1; t <= 128; ++t) {
    const auto r =
        accel::estimate_decoder_performance(acfg, cfg, t, 64);
    full += r.total_cycles;
    full_macs += r.macs;
  }
  const auto cached =
      accel::estimate_generation_performance(acfg, cfg, 1, 128, 64);
  EXPECT_LT(cached.total_cycles * 4, full);  // >4x cycle win
  EXPECT_LT(cached.macs * 10, full_macs);    // >10x MAC win
}

TEST(GenerationPerf, StepModelValidatesArguments) {
  const accel::AccelConfig acfg;
  const ref::ModelConfig cfg = small_config();
  EXPECT_THROW(
      accel::estimate_decode_step_performance(acfg, cfg, cfg.seq_len, 8),
      std::invalid_argument);
  EXPECT_THROW(accel::estimate_decode_step_performance(acfg, cfg, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(
      accel::estimate_generation_performance(acfg, cfg, 0, 8, 8),
      std::invalid_argument);
  EXPECT_THROW(
      accel::estimate_generation_performance(acfg, cfg, 9, 8, 8),
      std::invalid_argument);
}

// --- continuous-batching scheduler ------------------------------------------

runtime::GenerationRequest make_request(const Fixture& fx, uint64_t seed,
                                        uint32_t max_new) {
  runtime::GenerationRequest req;
  req.prefix = random_input(1, fx.cfg.d_model, seed);
  req.memory = &fx.memory;
  req.max_new_tokens = max_new;
  const uint32_t d = fx.cfg.d_model;
  req.next_token = [d](std::span<const float> state,
                       tensor::MatrixF& next) {
    // Deterministic pure function of the state: feed a scaled copy back.
    if (next.rows() != 1 || next.cols() != d) {
      next = tensor::MatrixF(1, d);
    }
    for (size_t c = 0; c < d; ++c) next(0, c) = 0.5f * state[c];
    return true;
  };
  return req;
}

TEST(GenerationScheduler, MatchesIndividualSessions) {
  Fixture fx;
  std::vector<runtime::GenerationRequest> requests;
  for (uint64_t i = 0; i < 5; ++i) {
    requests.push_back(make_request(fx, 90 + i, 4 + i % 3));
  }
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 2;
  const auto results = scheduler.run(requests, opts);
  ASSERT_EQ(results.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    runtime::GenerationSession session(fx.acfg, fx.qd);
    tensor::MatrixF states, state, next;
    session.prefill(requests[i].prefix, fx.memory, states);
    std::vector<tensor::MatrixF> rows = {states};
    requests[i].next_token(states.row(0), next);
    for (uint32_t t = 0; t < requests[i].max_new_tokens; ++t) {
      session.decode_step(next, state);
      rows.push_back(state);
      requests[i].next_token(state.row(0), next);
    }
    ASSERT_EQ(results[i].states.rows(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < fx.cfg.d_model; ++c) {
        ASSERT_EQ(results[i].states(r, c), rows[r](0, c))
            << "request " << i << " row " << r;
      }
    }
    EXPECT_EQ(results[i].steps, requests[i].max_new_tokens);
  }
}

TEST(GenerationScheduler, ShortSequencesFreeSlotsForPending) {
  // Continuous batching: with 2 slots and lengths {7,2,2,2}, the short
  // sequences hand their slot to the queue while the long one keeps
  // decoding — 7 scheduler steps total. A batch-barrier scheduler
  // (waves of 2) would need max(7,2) + max(2,2) = 9.
  Fixture fx;
  std::vector<runtime::GenerationRequest> requests;
  const uint32_t lengths[] = {7, 2, 2, 2};
  for (uint64_t i = 0; i < 4; ++i) {
    requests.push_back(make_request(fx, 100 + i, lengths[i]));
  }
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 2;
  const auto results = scheduler.run(requests, opts);

  const auto& stats = scheduler.last_run();
  EXPECT_EQ(stats.scheduler_steps, 7u);
  EXPECT_EQ(stats.prefills, 4u);
  EXPECT_EQ(stats.decode_steps, 7u + 2 + 2 + 2);
  EXPECT_EQ(stats.max_active, 2u);
  // Slot handoff order: r1 retires at step 1, r2 admitted at step 2,
  // retires at step 3; r3 admitted at 4; the long r0 retires last.
  EXPECT_EQ(results[0].admitted_at, 0u);
  EXPECT_EQ(results[0].retired_at, 6u);
  EXPECT_EQ(results[1].retired_at, 1u);
  EXPECT_EQ(results[2].admitted_at, 2u);
  EXPECT_EQ(results[3].admitted_at, 4u);
}

TEST(GenerationScheduler, EarlyEosRetiresImmediately) {
  Fixture fx;
  std::vector<runtime::GenerationRequest> requests;
  requests.push_back(make_request(fx, 110, 6));
  // Second request stops via callback after 2 steps.
  requests.push_back(make_request(fx, 111, 6));
  auto inner = requests[1].next_token;
  auto count = std::make_shared<int>(0);
  requests[1].next_token = [inner, count](std::span<const float> state,
                                          tensor::MatrixF& next) {
    if (++*count > 2) return false;
    return inner(state, next);
  };
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 2;
  const auto results = scheduler.run(requests, opts);
  EXPECT_EQ(results[0].steps, 6u);
  EXPECT_EQ(results[1].steps, 2u);
  EXPECT_EQ(results[1].states.rows(), 3u);  // prefix + 2 steps
}

TEST(GenerationScheduler, ThreadedMatchesStepped) {
  Fixture fx;
  std::vector<runtime::GenerationRequest> requests;
  for (uint64_t i = 0; i < 6; ++i) {
    requests.push_back(make_request(fx, 120 + i, 3 + i % 4));
  }
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions stepped;
  stepped.slots = 3;
  const auto expected = scheduler.run(requests, stepped);

  runtime::GenerationSchedulerOptions threaded;
  threaded.slots = 3;
  threaded.threads = 3;
  threaded.mha_slots = 1;  // the paper's single two-stage accelerator
  threaded.ffn_slots = 1;
  const auto results = scheduler.run(requests, threaded);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].states, expected[i].states) << "request " << i;
    EXPECT_EQ(results[i].steps, expected[i].steps);
  }
  EXPECT_EQ(scheduler.last_run().prefills, requests.size());
}

TEST(GenerationScheduler, ChunkedPrefillAdmissionMatchesOneShot) {
  // The stepped scheduler with chunked-prefill admission (one chunk per
  // scheduler step) must emit token-for-token identical results, while
  // executing more prefill passes than prompts.
  Fixture fx;
  std::vector<runtime::GenerationRequest> requests;
  for (uint64_t i = 0; i < 4; ++i) {
    auto req = make_request(fx, 160 + i, 3);
    req.prefix = random_input(5 + i % 3, fx.cfg.d_model, 170 + i);
    requests.push_back(std::move(req));
  }
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 2;
  const auto expected = scheduler.run(requests, opts);

  opts.prefill_chunk = 2;
  const auto results = scheduler.run(requests, opts);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].states, expected[i].states) << "request " << i;
    EXPECT_EQ(results[i].steps, expected[i].steps);
  }
  EXPECT_GT(scheduler.last_run().prefill_chunks,
            scheduler.last_run().prefills);
}

// --- capacity-edge regression (KvCache over-reservation fix) ----------------

TEST(GenerationScheduler, PromptFillingCapacityStillDecodesFirstToken) {
  // Regression: a prompt of exactly seq_len rows used to be rejected for
  // max_new_tokens = 1 even though the first generated token is emitted
  // from the last prefill state and its embedding is never fed back —
  // the cache needs no extra row for it.
  Fixture fx;
  auto req = make_request(fx, 180, 1);
  req.prefix = random_input(fx.cfg.seq_len, fx.cfg.d_model, 181);
  auto emitted = std::make_shared<int>(0);
  const auto inner = req.next_token;
  req.next_token = [inner, emitted](std::span<const float> state,
                                    tensor::MatrixF& next) {
    ++*emitted;
    return inner(state, next);
  };

  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  const std::vector<runtime::GenerationRequest> requests = {req};
  const auto results = scheduler.run(requests);
  EXPECT_EQ(*emitted, 1);  // the first token WAS decoded
  // Its state row cannot be cached (position == capacity), so no decode
  // step ran and the states are exactly the prefill states.
  EXPECT_EQ(results[0].steps, 0u);
  EXPECT_EQ(results[0].states.rows(), static_cast<size_t>(fx.cfg.seq_len));

  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states;
  session.prefill(req.prefix, fx.memory, states);
  EXPECT_EQ(results[0].states, states);
}

TEST(GenerationScheduler, CapacityEdgeStopsDecodeWithoutOverflow) {
  // prefix + max_new == seq_len + 1: the run must stop at the capacity
  // instead of throwing from decode_step — seq_len - prefix steps, all
  // seq_len token emissions served.
  Fixture fx;
  const std::vector<runtime::GenerationRequest> requests = {
      make_request(fx, 185, fx.cfg.seq_len)};  // prefix rows = 1
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  const auto results = scheduler.run(requests);
  EXPECT_EQ(results[0].steps, static_cast<uint32_t>(fx.cfg.seq_len - 1));
  EXPECT_EQ(results[0].states.rows(), static_cast<size_t>(fx.cfg.seq_len));
}

TEST(GenerationScheduler, ValidatesRequests) {
  Fixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  std::vector<runtime::GenerationRequest> requests;
  requests.push_back(make_request(fx, 130, 4));
  requests[0].memory = nullptr;
  EXPECT_THROW(scheduler.run(requests), std::invalid_argument);

  requests[0] = make_request(fx, 131, 4);
  // prefix + max > seq_len + 1 (the +1 edge is legal: the final token's
  // embedding is never appended, see PromptFillingCapacity* below).
  requests[0].max_new_tokens = fx.cfg.seq_len + 1;
  EXPECT_THROW(scheduler.run(requests), std::invalid_argument);

  requests[0] = make_request(fx, 132, 4);
  requests[0].next_token = nullptr;
  EXPECT_THROW(scheduler.run(requests), std::invalid_argument);

  requests[0] = make_request(fx, 133, 4);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 0;
  EXPECT_THROW(scheduler.run(requests, opts), std::invalid_argument);
}

}  // namespace
}  // namespace protea
