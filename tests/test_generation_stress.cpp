// Randomized stress/property tests for the continuous-batching
// generation scheduler: mixed prompt lengths, staggered admission, early
// finishes, slot reuse and shared-pool block exhaustion, run with fixed
// seeds. The invariant throughout: every scheduling mode — stepped or
// threaded, dense or paged, private or shared pool, chunked or one-shot
// prefill — emits token-for-token (bit-for-bit) identical results,
// because per-sequence work is scheduling-invariant and the int8
// datapath is exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/generation.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct StressFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit StressFixture(uint64_t seed = 500) {
    cfg.seq_len = 12;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(8, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }
};

/// Builds a FRESH randomized request mix from `seed` — fresh because
/// early-EOS requests carry a countdown that must restart for every
/// scheduler run (the callback sequence is per-request deterministic, so
/// identical counters give identical runs). The mix covers: prompt
/// lengths 1..seq_len-2, max_new 0..6, early EOS, and one
/// capacity-edge request (prefix + max_new == seq_len + 1).
std::vector<runtime::GenerationRequest> build_requests(
    const StressFixture& fx, size_t count, uint64_t seed) {
  const uint32_t d = fx.cfg.d_model;
  std::vector<runtime::GenerationRequest> requests;
  util::Xoshiro256 rng(seed);
  for (size_t i = 0; i < count; ++i) {
    runtime::GenerationRequest req;
    const size_t prefix_rows = 1 + rng.next() % (fx.cfg.seq_len - 2);
    req.prefix = random_input(prefix_rows, d, seed + 10 + i);
    req.memory = &fx.memory;
    // Clamp to the request bound: prefix + max_new <= seq_len + 1.
    req.max_new_tokens = static_cast<uint32_t>(
        std::min<size_t>(rng.next() % 7, fx.cfg.seq_len + 1 - prefix_rows));
    if (i == 0) {  // capacity edge: wants one more token than cache rows
      req.prefix = random_input(fx.cfg.seq_len, d, seed + 10 + i);
      req.max_new_tokens = 1;
    }
    // Deterministic pure token policy: feed a scaled copy back. Every
    // third request finishes early through the callback (EOS).
    const float scale = 0.25f + 0.05f * static_cast<float>(i % 5);
    const int eos_after =
        (i % 3 == 2) ? static_cast<int>(rng.next() % 3) : -1;
    auto countdown = std::make_shared<int>(eos_after);
    req.next_token = [d, scale, countdown](std::span<const float> state,
                                           tensor::MatrixF& next) {
      if (*countdown == 0) return false;
      if (*countdown > 0) --*countdown;
      if (next.rows() != 1 || next.cols() != d) {
        next = tensor::MatrixF(1, d);
      }
      for (size_t c = 0; c < d; ++c) next(0, c) = scale * state[c];
      return true;
    };
    requests.push_back(std::move(req));
  }
  return requests;
}

void expect_same_results(const std::vector<runtime::GenerationResult>& a,
                         const std::vector<runtime::GenerationResult>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].steps, b[i].steps) << what << " request " << i;
    ASSERT_EQ(a[i].states, b[i].states) << what << " request " << i;
  }
}

TEST(GenerationStress, AllSchedulingModesMatchTokenForToken) {
  StressFixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  constexpr size_t kRequests = 10;
  constexpr uint64_t kSeed = 600;

  // Reference: deterministic stepped loop, one slot (pure sequential),
  // dense caches — the PR-3 baseline semantics.
  runtime::GenerationSchedulerOptions reference;
  reference.slots = 1;
  reference.kv_block_rows = 0;
  const auto expected =
      scheduler.run(build_requests(fx, kRequests, kSeed), reference);

  // Stepped, multi-slot, paged private pools.
  runtime::GenerationSchedulerOptions stepped;
  stepped.slots = 4;
  stepped.kv_block_rows = 4;
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), stepped),
      expected, "stepped/paged");
  EXPECT_EQ(scheduler.last_run().prefills, kRequests);

  // Stepped, shared pool + chunked prefill.
  runtime::GenerationSchedulerOptions shared;
  shared.slots = 4;
  shared.kv_block_rows = 4;
  shared.kv_pool_blocks = 16;
  shared.prefill_chunk = 3;
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), shared),
      expected, "stepped/shared/chunked");
  EXPECT_GE(scheduler.last_run().prefill_chunks,
            scheduler.last_run().prefills);

  // Threaded continuous batching over the module-slot semaphores (the
  // paper's single two-stage accelerator), shared pool.
  runtime::GenerationSchedulerOptions threaded;
  threaded.slots = 4;
  threaded.threads = 4;
  threaded.mha_slots = 1;
  threaded.ffn_slots = 1;
  threaded.kv_block_rows = 4;
  threaded.kv_pool_blocks = 16;
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), threaded),
      expected, "threaded/shared");
  EXPECT_EQ(scheduler.last_run().prefills, kRequests);
}

TEST(GenerationStress, BlockExhaustionDefersAdmissionWithoutCorruption) {
  // Shared pool sized for ~1.5 worst-case sequences: admissions must
  // WAIT for retiring sequences' blocks (kv_block_waits > 0) and the
  // outputs must still match the unconstrained reference exactly.
  StressFixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  constexpr size_t kRequests = 8;
  constexpr uint64_t kSeed = 700;

  runtime::GenerationSchedulerOptions reference;
  reference.slots = 1;
  reference.kv_block_rows = 0;
  const auto expected =
      scheduler.run(build_requests(fx, kRequests, kSeed), reference);

  runtime::GenerationSchedulerOptions starved;
  starved.slots = 4;
  starved.kv_block_rows = 2;
  starved.kv_pool_blocks = 9;  // one request can need up to 6 blocks
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), starved),
      expected, "stepped/starved");
  const auto& stats = scheduler.last_run();
  EXPECT_GT(stats.kv_block_waits, 0u);
  EXPECT_LE(stats.kv_blocks_peak, 9u);

  // Same starvation level, threaded: workers park on the pool's
  // condition variable and are woken by retirements — run must complete
  // (no deadlock: reservations are all-or-nothing at admission) with
  // identical outputs.
  runtime::GenerationSchedulerOptions starved_threaded = starved;
  starved_threaded.threads = 4;
  starved_threaded.mha_slots = 2;
  starved_threaded.ffn_slots = 2;
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), starved_threaded),
      expected, "threaded/starved");
}

TEST(GenerationStress, SlotReuseAcrossManySequences) {
  // 12 requests through 2 slots: each slot serves ~6 sequences
  // back-to-back, recycling its session storage and blocks every time.
  StressFixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  constexpr size_t kRequests = 12;
  constexpr uint64_t kSeed = 800;

  runtime::GenerationSchedulerOptions reference;
  reference.slots = 1;
  reference.kv_block_rows = 0;
  const auto expected =
      scheduler.run(build_requests(fx, kRequests, kSeed), reference);

  runtime::GenerationSchedulerOptions two_slots;
  two_slots.slots = 2;
  two_slots.kv_block_rows = 3;
  two_slots.kv_pool_blocks = 10;
  expect_same_results(
      scheduler.run(build_requests(fx, kRequests, kSeed), two_slots),
      expected, "two-slot reuse");
  EXPECT_EQ(scheduler.last_run().prefills, kRequests);
  EXPECT_LE(scheduler.last_run().max_active, 2u);
}

TEST(GenerationStress, FixedSeedRunsAreReproducible) {
  // The stepped scheduler is deterministic end to end: two runs from the
  // same seed produce identical stats-relevant schedules and identical
  // bits, including under backpressure.
  StressFixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);
  runtime::GenerationSchedulerOptions opts;
  opts.slots = 3;
  opts.kv_block_rows = 2;
  opts.kv_pool_blocks = 12;
  opts.prefill_chunk = 2;

  const auto first = scheduler.run(build_requests(fx, 9, 900), opts);
  const auto stats_first = scheduler.last_run();
  const auto second = scheduler.run(build_requests(fx, 9, 900), opts);
  const auto& stats_second = scheduler.last_run();
  expect_same_results(first, second, "repeat run");
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].admitted_at, second[i].admitted_at) << i;
    EXPECT_EQ(first[i].retired_at, second[i].retired_at) << i;
  }
  EXPECT_EQ(stats_first.scheduler_steps, stats_second.scheduler_steps);
  EXPECT_EQ(stats_first.decode_steps, stats_second.decode_steps);
  EXPECT_EQ(stats_first.prefill_chunks, stats_second.prefill_chunks);
  EXPECT_EQ(stats_first.kv_block_waits, stats_second.kv_block_waits);
}

}  // namespace
}  // namespace protea
