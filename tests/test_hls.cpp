// Tests for the Vitis HLS artifact generator: the emitted pragmas must
// match the assumptions the frequency/perf models charge for.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "hls/hls_codegen.hpp"
#include "hw/frequency_model.hpp"

namespace protea::hls {
namespace {

hw::SynthParams paper() { return hw::paper_synth_params(); }

bool contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

TEST(HlsCodegen, HeaderCarriesSynthesisConstants) {
  const std::string header = generate_params_header(paper());
  EXPECT_TRUE(contains(header, "#define TS_MHA 64"));
  EXPECT_TRUE(contains(header, "#define TS_FFN 128"));
  EXPECT_TRUE(contains(header, "#define MAX_HEADS 8"));
  EXPECT_TRUE(contains(header, "#define MAX_D_MODEL 768"));
  EXPECT_TRUE(contains(header, "#define HEAD_DIM_MAX 96"));
  EXPECT_TRUE(contains(header, "#define TILES_MHA_MAX 12"));
  EXPECT_TRUE(contains(header, "#define TILES_FFN_MAX 6"));
}

TEST(HlsCodegen, HeaderUsesApFixedWithSaturation) {
  const std::string header = generate_params_header(paper());
  // The paper's 8-bit fixed format with convergent rounding + saturation.
  EXPECT_TRUE(contains(header, "ap_fixed<8, 3, AP_RND_CONV, AP_SAT>"));
}

TEST(HlsCodegen, QkvEnginePragmasMatchCycleModel) {
  const std::string src = generate_qkv_engine(paper());
  // Partition factor = TS_MHA on all four operand arrays — this is what
  // sustains the 4*TS_MHA = 256 parallel reads at II=1.
  EXPECT_TRUE(contains(src, "ARRAY_PARTITION variable=x cyclic factor=64"));
  EXPECT_TRUE(contains(src, "ARRAY_PARTITION variable=wq cyclic factor=64"));
  EXPECT_TRUE(contains(src, "#pragma HLS PIPELINE II=1"));
  EXPECT_TRUE(contains(src, "#pragma HLS PIPELINE off"));
  EXPECT_TRUE(contains(src, "#pragma HLS UNROLL"));
  // Algorithm 1's three parallel MAC streams.
  EXPECT_TRUE(contains(src, "sq += x[i][j] * wq[kk][j];"));
  EXPECT_TRUE(contains(src, "sv += x[i][j] * wv[kk][j];"));
}

TEST(HlsCodegen, QkEngineUnrollsHeadDim) {
  const std::string src = generate_qk_engine(paper());
  EXPECT_TRUE(contains(src, "cyclic factor=96"));  // d_max / h_max
  EXPECT_TRUE(contains(src, "kk < HEAD_DIM_MAX"));
}

TEST(HlsCodegen, SvEngineUnrollsSequence) {
  const std::string src = generate_sv_engine(paper());
  EXPECT_TRUE(contains(src, "cyclic factor=64"));  // SL unroll
  EXPECT_TRUE(contains(src, "kk < SL_UNROLL"));
}

TEST(HlsCodegen, FfnEnginePragmasMatchCycleModel) {
  const std::string src = generate_ffn_engine(paper());
  EXPECT_TRUE(contains(src, "cyclic factor=128"));  // TS_FFN
  // Fig. 6 accumulation: outputs accumulate across row tiles.
  EXPECT_TRUE(contains(src, "outputs[i][j] += sum;"));
}

TEST(HlsCodegen, TopHasAxiInterfacesAndBoundChecks) {
  const std::string src = generate_top(paper());
  EXPECT_TRUE(contains(src, "INTERFACE m_axi"));
  EXPECT_TRUE(contains(src, "INTERFACE s_axilite port=seq_len"));
  EXPECT_TRUE(contains(src, "seq_len > MAX_SEQ_LEN"));
}

TEST(HlsCodegen, TclTargetsU55cAt200MHz) {
  const std::string tcl =
      generate_synthesis_tcl(paper(), hw::alveo_u55c(), 200.0);
  EXPECT_TRUE(contains(tcl, "xcu55c"));
  EXPECT_TRUE(contains(tcl, "create_clock -period 5"));  // 5 ns = 200 MHz
  EXPECT_TRUE(contains(tcl, "csynth_design"));
  EXPECT_TRUE(contains(tcl, "cosim_design"));
}

TEST(HlsCodegen, TclMatchesFrequencyModelTarget) {
  // The generated clock constraint equals what the frequency model says
  // this synthesis achieves.
  const double fmax = hw::fmax_mhz(paper());
  const std::string tcl =
      generate_synthesis_tcl(paper(), hw::alveo_u55c(), fmax);
  std::ostringstream expect;
  expect << "create_clock -period " << 1000.0 / fmax;
  EXPECT_TRUE(contains(tcl, expect.str()));
}

TEST(HlsCodegen, DifferentTileSizesChangeOutput) {
  hw::SynthParams other = paper();
  other.ts_mha = 32;
  EXPECT_NE(generate_qkv_engine(paper()), generate_qkv_engine(other));
  EXPECT_TRUE(contains(generate_qkv_engine(other), "factor=32"));
}

TEST(HlsCodegen, WriteProjectEmitsSevenFiles) {
  const std::string dir = testing::TempDir() + "/protea_hls_project";
  const int files =
      write_hls_project(dir, paper(), hw::alveo_u55c(), 200.0);
  EXPECT_EQ(files, 7);
  for (const char* name :
       {"protea_params.h", "qkv_engine.cpp", "qk_engine.cpp",
        "sv_engine.cpp", "ffn_engine.cpp", "protea_top.cpp",
        "run_hls.tcl"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + name)) << name;
  }
  std::filesystem::remove_all(dir);
}

TEST(HlsCodegen, RejectsBadFrequency) {
  EXPECT_THROW(generate_synthesis_tcl(paper(), hw::alveo_u55c(), 0.0),
               std::invalid_argument);
}

TEST(HlsCodegen, AllSupportedDevicesHaveParts) {
  for (const hw::Device* device : hw::all_devices()) {
    EXPECT_NO_THROW(generate_synthesis_tcl(paper(), *device, 100.0))
        << device->name;
  }
}

}  // namespace
}  // namespace protea::hls
