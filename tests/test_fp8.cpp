// TestFloat-style exhaustive verification of the FP8/FP4 conversion
// layer (numeric/fp8.hpp). The conversion spaces are tiny — 256 codes
// per fp8 format, 16 per fp4 — so every encoding is checked, against an
// INDEPENDENT reference built here from the format definition alone:
// decode via the textbook sign/exponent/mantissa formula, encode via
// brute-force nearest-value search over the full finite code set with
// the tie broken toward the even mantissa slot. RNE ties, subnormals,
// overflow saturation and the NaN policy are additionally pinned
// against hand-computed constants so a bug in BOTH implementations
// would still have to agree with arithmetic done by hand.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "numeric/fp8.hpp"

namespace protea::numeric {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

struct RefFormat {
  int mant_bits;
  int bias;
  bool has_inf;    // top exponent field = inf/NaN (e5m2)
  bool top_nan;    // top exponent + all-ones mantissa = NaN (e4m3)
  int code_bits;   // 8 for fp8, 4 for fp4
};

constexpr RefFormat kRefE4M3{3, 7, false, true, 8};
constexpr RefFormat kRefE5M2{2, 15, true, false, 8};
constexpr RefFormat kRefE2M1{1, 1, false, false, 4};

enum class RefClass { kFinite, kInf, kNaN };

/// Textbook decode: value = (-1)^s * m * 2^(e-bias-mant_bits) with
/// m = mantissa (exp field 0) or 2^mant_bits + mantissa (normal).
double ref_decode(unsigned code, const RefFormat& f, RefClass& cls) {
  const int m = f.mant_bits;
  const int exp_bits = f.code_bits - 1 - m;
  const int sign = (code >> (f.code_bits - 1)) & 1;
  const int exp_field = static_cast<int>((code >> m) & ((1u << exp_bits) - 1));
  const int mant = static_cast<int>(code & ((1u << m) - 1));
  const int e_max = (1 << exp_bits) - 1;
  cls = RefClass::kFinite;
  if (f.has_inf && exp_field == e_max) {
    cls = mant == 0 ? RefClass::kInf : RefClass::kNaN;
    return sign != 0 ? -1.0 : 1.0;  // sign carrier for inf
  }
  if (f.top_nan && exp_field == e_max && mant == (1 << m) - 1) {
    cls = RefClass::kNaN;
    return 0.0;
  }
  double v;
  if (exp_field == 0) {
    v = mant * std::pow(2.0, 1 - f.bias - m);
  } else {
    v = ((1 << m) + mant) * std::pow(2.0, exp_field - f.bias - m);
  }
  return sign != 0 ? -v : v;
}

/// All non-negative finite codes of a format, in ascending value order
/// (the code layout is monotonic, asserted below).
std::vector<unsigned> finite_magnitude_codes(const RefFormat& f) {
  std::vector<unsigned> codes;
  const unsigned half = 1u << (f.code_bits - 1);
  for (unsigned c = 0; c < half; ++c) {
    RefClass cls;
    ref_decode(c, f, cls);
    if (cls == RefClass::kFinite) codes.push_back(c);
  }
  return codes;
}

/// Brute-force RNE encode: nearest finite value; exact tie goes to the
/// code with even mantissa-field LSB (adjacent magnitudes always have
/// consecutive codes, so exactly one candidate qualifies — including
/// across binade and subnormal/normal boundaries). Overflow saturates.
unsigned ref_encode(double x, const RefFormat& f, unsigned canonical_nan) {
  const unsigned sign_bit = 1u << (f.code_bits - 1);
  if (std::isnan(x)) {
    return (std::signbit(x) ? sign_bit : 0u) | canonical_nan;
  }
  const unsigned sign = std::signbit(x) ? sign_bit : 0u;
  const double a = std::fabs(x);
  const std::vector<unsigned> codes = finite_magnitude_codes(f);
  RefClass cls;
  if (std::isinf(x) || a >= ref_decode(codes.back(), f, cls)) {
    // >= max finite: nearest is max finite (no representable value
    // above it — saturation and rounding agree).
    if (std::isinf(x) || a > ref_decode(codes.back(), f, cls)) {
      return sign | codes.back();
    }
  }
  unsigned best = codes[0];
  double best_err = std::fabs(a - ref_decode(codes[0], f, cls));
  for (unsigned c : codes) {
    const double err = std::fabs(a - ref_decode(c, f, cls));
    if (err < best_err || (err == best_err && (c & 1u) == 0)) {
      best_err = err;
      best = c;
    }
  }
  return sign | best;
}

// --- exhaustive agreement with the independent reference --------------------

TEST(Fp8Exhaustive, E4M3DecodeMatchesReference) {
  for (unsigned c = 0; c < 256; ++c) {
    RefClass cls;
    const double ref = ref_decode(c, kRefE4M3, cls);
    const float got = fp8_decode(static_cast<uint8_t>(c), Fp8Format::kE4M3);
    if (cls == RefClass::kNaN) {
      EXPECT_TRUE(std::isnan(got)) << "code " << c;
    } else {
      ASSERT_EQ(cls, RefClass::kFinite);
      EXPECT_EQ(static_cast<double>(got), ref) << "code " << c;
      // Signed zero round-trips its sign bit.
      if (ref == 0.0) {
        EXPECT_EQ(std::signbit(got), c >= 128) << "code " << c;
      }
    }
  }
}

TEST(Fp8Exhaustive, E5M2DecodeMatchesReference) {
  for (unsigned c = 0; c < 256; ++c) {
    RefClass cls;
    const double ref = ref_decode(c, kRefE5M2, cls);
    const float got = fp8_decode(static_cast<uint8_t>(c), Fp8Format::kE5M2);
    switch (cls) {
      case RefClass::kNaN:
        EXPECT_TRUE(std::isnan(got)) << "code " << c;
        break;
      case RefClass::kInf:
        EXPECT_TRUE(std::isinf(got)) << "code " << c;
        EXPECT_EQ(std::signbit(got), ref < 0) << "code " << c;
        break;
      case RefClass::kFinite:
        EXPECT_EQ(static_cast<double>(got), ref) << "code " << c;
        break;
    }
  }
}

TEST(Fp4Exhaustive, E2M1DecodeMatchesReference) {
  // The full value table, hand-computed from the e2m1 definition.
  const double expected[8] = {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0};
  for (unsigned c = 0; c < 16; ++c) {
    RefClass cls;
    const double ref = ref_decode(c, kRefE2M1, cls);
    ASSERT_EQ(cls, RefClass::kFinite);
    const double mag = expected[c & 7];
    EXPECT_EQ(std::fabs(ref), mag) << "code " << c;
    EXPECT_EQ(static_cast<double>(fp4_decode(static_cast<uint8_t>(c))),
              c >= 8 ? -mag : mag)
        << "code " << c;
  }
}

/// Every finite code decodes and re-encodes to ITSELF — the round-trip
/// identity that makes table-driven KV storage reproducible. (Inf/NaN
/// codes are exempt by policy: encode saturates inf and canonicalizes
/// NaN; pinned separately below.)
TEST(Fp8Exhaustive, E4M3FiniteCodesRoundTrip) {
  for (unsigned c = 0; c < 256; ++c) {
    if ((c & 0x7f) == 0x7f) continue;  // NaN slots
    const float v = fp8_decode(static_cast<uint8_t>(c), Fp8Format::kE4M3);
    EXPECT_EQ(fp8_encode(v, Fp8Format::kE4M3), c);
  }
}

TEST(Fp8Exhaustive, E5M2FiniteCodesRoundTrip) {
  for (unsigned c = 0; c < 256; ++c) {
    if ((c & 0x7f) >= 0x7c) continue;  // inf + NaN slots
    const float v = fp8_decode(static_cast<uint8_t>(c), Fp8Format::kE5M2);
    EXPECT_EQ(fp8_encode(v, Fp8Format::kE5M2), c);
  }
}

TEST(Fp4Exhaustive, E2M1CodesRoundTrip) {
  for (unsigned c = 0; c < 16; ++c) {
    EXPECT_EQ(fp4_encode(fp4_decode(static_cast<uint8_t>(c))), c);
  }
}

/// Encode agrees with the brute-force nearest-even reference over a
/// dense sweep of the representable range plus every half-way point.
TEST(Fp8Exhaustive, E4M3EncodeMatchesReference) {
  std::vector<double> probes;
  const auto codes = finite_magnitude_codes(kRefE4M3);
  RefClass cls;
  for (size_t i = 0; i < codes.size(); ++i) {
    const double v = ref_decode(codes[i], kRefE4M3, cls);
    probes.push_back(v);
    if (i + 1 < codes.size()) {
      const double next = ref_decode(codes[i + 1], kRefE4M3, cls);
      probes.push_back((v + next) / 2);              // exact RNE tie
      probes.push_back(v + (next - v) * 0.25);       // round down
      probes.push_back(v + (next - v) * 0.75);       // round up
    }
  }
  probes.push_back(449.0);
  probes.push_back(464.0);   // tie at the overflow boundary
  probes.push_back(1.0e30);  // far overflow
  for (double p : probes) {
    for (double s : {1.0, -1.0}) {
      const float x = static_cast<float>(p * s);
      EXPECT_EQ(fp8_encode(x, Fp8Format::kE4M3),
                ref_encode(x, kRefE4M3, 0x7f))
          << "x = " << x;
    }
  }
}

TEST(Fp8Exhaustive, E5M2EncodeMatchesReference) {
  std::vector<double> probes;
  const auto codes = finite_magnitude_codes(kRefE5M2);
  RefClass cls;
  for (size_t i = 0; i < codes.size(); ++i) {
    const double v = ref_decode(codes[i], kRefE5M2, cls);
    probes.push_back(v);
    if (i + 1 < codes.size()) {
      const double next = ref_decode(codes[i + 1], kRefE5M2, cls);
      probes.push_back((v + next) / 2);
      probes.push_back(v + (next - v) * 0.25);
      probes.push_back(v + (next - v) * 0.75);
    }
  }
  probes.push_back(61440.0);  // tie between max finite and the next binade
  probes.push_back(1.0e30);
  for (double p : probes) {
    for (double s : {1.0, -1.0}) {
      const float x = static_cast<float>(p * s);
      EXPECT_EQ(fp8_encode(x, Fp8Format::kE5M2),
                ref_encode(x, kRefE5M2, 0x7f))
          << "x = " << x;
    }
  }
}

TEST(Fp4Exhaustive, E2M1EncodeMatchesReference) {
  for (int i = -1400; i <= 1400; ++i) {  // 0.005 steps across ±7
    const float x = static_cast<float>(i) * 0.005f;
    EXPECT_EQ(fp4_encode(x), ref_encode(x, kRefE2M1, 0)) << "x = " << x;
  }
}

// --- hand-pinned edges -------------------------------------------------------

TEST(Fp8Edges, E4M3PinnedValues) {
  // Subnormals: min 2^-9, max 7 x 2^-9; min normal 2^-6; one.
  EXPECT_EQ(fp8_decode(0x01, Fp8Format::kE4M3), 0.001953125f);
  EXPECT_EQ(fp8_decode(0x07, Fp8Format::kE4M3), 0.013671875f);
  EXPECT_EQ(fp8_decode(0x08, Fp8Format::kE4M3), 0.015625f);
  EXPECT_EQ(fp8_decode(0x38, Fp8Format::kE4M3), 1.0f);
  EXPECT_EQ(fp8_decode(0x7e, Fp8Format::kE4M3), 448.0f);
  EXPECT_TRUE(std::isnan(fp8_decode(0x7f, Fp8Format::kE4M3)));
  EXPECT_TRUE(std::isnan(fp8_decode(0xff, Fp8Format::kE4M3)));

  // RNE tie: 100 sits exactly between 96 (even significand 12) and 104
  // (odd 13) -> 96, code 0x6c.
  EXPECT_EQ(fp8_encode(100.0f, Fp8Format::kE4M3), 0x6c);
  EXPECT_EQ(fp8_decode(0x6c, Fp8Format::kE4M3), 96.0f);
  // Tie into signed zero: half the min subnormal, significand 0 even.
  EXPECT_EQ(fp8_encode(0.0009765625f, Fp8Format::kE4M3), 0x00);
  EXPECT_EQ(fp8_encode(-0.0009765625f, Fp8Format::kE4M3), 0x80);
  // Subnormal tie 1.5 x 2^-9 -> even significand 2.
  EXPECT_EQ(fp8_encode(0.0029296875f, Fp8Format::kE4M3), 0x02);
  // Saturation: overflow, the 464 tie (upper slot is the NaN hole,
  // 15 x 2^5 is NOT representable) and infinities all pin to +-448.
  EXPECT_EQ(fp8_encode(449.0f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(fp8_encode(464.0f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(fp8_encode(1.0e20f, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(fp8_encode(kInf, Fp8Format::kE4M3), 0x7e);
  EXPECT_EQ(fp8_encode(-kInf, Fp8Format::kE4M3), 0xfe);
  // NaN canonicalizes, preserving sign.
  EXPECT_EQ(fp8_encode(kNaN, Fp8Format::kE4M3), 0x7f);
  EXPECT_EQ(fp8_encode(std::copysign(kNaN, -1.0f), Fp8Format::kE4M3), 0xff);
}

TEST(Fp8Edges, E5M2PinnedValues) {
  EXPECT_EQ(fp8_decode(0x01, Fp8Format::kE5M2), 0.0000152587890625f);
  EXPECT_EQ(fp8_decode(0x03, Fp8Format::kE5M2), 0.0000457763671875f);
  EXPECT_EQ(fp8_decode(0x04, Fp8Format::kE5M2), 0.00006103515625f);
  EXPECT_EQ(fp8_decode(0x3c, Fp8Format::kE5M2), 1.0f);
  EXPECT_EQ(fp8_decode(0x7b, Fp8Format::kE5M2), 57344.0f);
  EXPECT_TRUE(std::isinf(fp8_decode(0x7c, Fp8Format::kE5M2)));
  EXPECT_FALSE(std::signbit(fp8_decode(0x7c, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isinf(fp8_decode(0xfc, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::signbit(fp8_decode(0xfc, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isnan(fp8_decode(0x7d, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isnan(fp8_decode(0x7e, Fp8Format::kE5M2)));
  EXPECT_TRUE(std::isnan(fp8_decode(0xff, Fp8Format::kE5M2)));

  // RNE tie: 4.5 between 4 (even significand) and 5 -> 4, code 0x44.
  // (5 itself is exactly representable: 1.01b x 2^2 = 0x45.)
  EXPECT_EQ(fp8_encode(4.5f, Fp8Format::kE5M2), 0x44);
  EXPECT_EQ(fp8_encode(5.0f, Fp8Format::kE5M2), 0x45);
  EXPECT_EQ(fp8_decode(0x44, Fp8Format::kE5M2), 4.0f);
  // Overflow tie: 61440 between 57344 (odd significand 7) and 65536
  // (next binade, even) — RNE rounds UP past the finite range, so the
  // documented saturation policy pins it back to max finite, not inf.
  EXPECT_EQ(fp8_encode(61440.0f, Fp8Format::kE5M2), 0x7b);
  EXPECT_EQ(fp8_encode(kInf, Fp8Format::kE5M2), 0x7b);
  EXPECT_EQ(fp8_encode(-kInf, Fp8Format::kE5M2), 0xfb);
  EXPECT_EQ(fp8_encode(kNaN, Fp8Format::kE5M2), 0x7f);
  EXPECT_EQ(fp8_encode(std::copysign(kNaN, -1.0f), Fp8Format::kE5M2), 0xff);
}

TEST(Fp4Edges, E2M1PinnedValues) {
  // Ties: 0.25 -> 0 (even), 0.75 -> 1.0 (up: odd subnormal 1 vs even
  // normal 2), 2.5 -> 2 (even), 5 -> 4 (even).
  EXPECT_EQ(fp4_encode(0.25f), 0x0);
  EXPECT_EQ(fp4_encode(0.75f), 0x2);
  EXPECT_EQ(fp4_encode(2.5f), 0x4);
  EXPECT_EQ(fp4_encode(5.0f), 0x6);
  EXPECT_EQ(fp4_encode(-5.0f), 0xe);
  // Saturation and the no-NaN policy.
  EXPECT_EQ(fp4_encode(7.0f), 0x7);
  EXPECT_EQ(fp4_encode(kInf), 0x7);
  EXPECT_EQ(fp4_encode(-kInf), 0xf);
  EXPECT_EQ(fp4_encode(kNaN), 0x0);
  EXPECT_EQ(fp4_encode(-0.0f), 0x8);
  // High nibble of the input code is ignored on decode.
  EXPECT_EQ(fp4_decode(0xf7), 6.0f);
}

// --- KV storage codec --------------------------------------------------------

TEST(KvCodecTest, StorageGeometry) {
  EXPECT_EQ(kv_storage_bits(KvStorage::kInt8), 8u);
  EXPECT_EQ(kv_storage_bits(KvStorage::kFp8E4M3), 8u);
  EXPECT_EQ(kv_storage_bits(KvStorage::kFp4E2M1), 4u);
  EXPECT_EQ(kv_storage_bytes(64, KvStorage::kInt8), 64u);
  EXPECT_EQ(kv_storage_bytes(64, KvStorage::kFp8E5M2), 64u);
  EXPECT_EQ(kv_storage_bytes(64, KvStorage::kFp4E2M1), 32u);
  EXPECT_EQ(kv_storage_bytes(7, KvStorage::kFp4E2M1), 4u);  // odd rounds up
  EXPECT_EQ(kv_codec(KvStorage::kInt8), nullptr);
  EXPECT_STREQ(kv_storage_name(KvStorage::kFp8E4M3), "fp8_e4m3");
  EXPECT_STREQ(kv_storage_name(KvStorage::kFp4E2M1), "fp4_e2m1");
}

/// The properties the reproducibility guarantee rests on, exhaustively
/// over the int8 grid for every non-int8 storage: zero is a fixed
/// point (warm/lazy-zeroed blocks read back zero), decode-on-read is
/// deterministic by construction (a table), the round-trip is
/// IDEMPOTENT (reading and re-storing a row changes nothing), and the
/// encoding of a read-back value reproduces the stored code (so a
/// swap-out/swap-in or COW copy of encoded bytes is indistinguishable
/// from re-encoding).
TEST(KvCodecTest, RoundTripIdempotentExhaustive) {
  for (KvStorage s : {KvStorage::kFp8E4M3, KvStorage::kFp8E5M2,
                      KvStorage::kFp4E2M1}) {
    const KvCodec* codec = kv_codec(s);
    ASSERT_NE(codec, nullptr);
    EXPECT_EQ(codec->storage, s);
    EXPECT_EQ(codec->decode[codec->encode[0 + 128]], 0) << kv_storage_name(s);
    EXPECT_EQ(codec->decode[0], 0) << kv_storage_name(s);  // zeroed blocks
    for (int q = -128; q <= 127; ++q) {
      const uint8_t code = codec->encode[q + 128];
      if (s == KvStorage::kFp4E2M1) {
        ASSERT_LT(code, 16) << "fp4 codes are nibbles";
      }
      const int8_t rt = codec->roundtrip[q + 128];
      EXPECT_EQ(rt, codec->decode[code]) << kv_storage_name(s) << " q=" << q;
      EXPECT_EQ(codec->roundtrip[rt + 128], rt)
          << kv_storage_name(s) << " q=" << q << " (idempotence)";
      EXPECT_EQ(codec->encode[rt + 128], code)
          << kv_storage_name(s) << " q=" << q << " (re-encode stability)";
    }
  }
}

TEST(KvCodecTest, Fp8RoundTripPinned) {
  const KvCodec* c = kv_codec(KvStorage::kFp8E4M3);
  // |q| <= 16 is exactly representable in e4m3 (ulp <= 1 through that
  // range), so the round-trip is the identity there.
  for (int q = -16; q <= 16; ++q) {
    EXPECT_EQ(c->roundtrip[q + 128], q) << "q = " << q;
  }
  // 100 ties to 96; 127 rounds to 128 and clamps back to 127; -128 is
  // exactly representable.
  EXPECT_EQ(c->roundtrip[100 + 128], 96);
  EXPECT_EQ(c->roundtrip[127 + 128], 127);
  EXPECT_EQ(c->roundtrip[-128 + 128], -128);
  // e5m2 has one less mantissa bit: exact only through |q| <= 8.
  const KvCodec* c5 = kv_codec(KvStorage::kFp8E5M2);
  for (int q = -8; q <= 8; ++q) {
    EXPECT_EQ(c5->roundtrip[q + 128], q) << "q = " << q;
  }
  EXPECT_EQ(c5->roundtrip[127 + 128], 127);  // 128 clamps
  // Foreign bytes stay total: NaN codes read 0, e5m2 infs saturate.
  EXPECT_EQ(c->decode[0x7f], 0);
  EXPECT_EQ(c->decode[0xff], 0);
  EXPECT_EQ(c5->decode[0x7d], 0);
  EXPECT_EQ(c5->decode[0x7c], 127);
  EXPECT_EQ(c5->decode[0xfc], -128);
}

TEST(KvCodecTest, Fp4RoundTripPinned) {
  const KvCodec* c = kv_codec(KvStorage::kFp4E2M1);
  // Scale 32: representable int8 levels are 0, +-16, +-32, +-48, +-64,
  // +-96 and +-128 (positive side clamps to 127).
  EXPECT_EQ(c->decode[0x1], 16);
  EXPECT_EQ(c->decode[0x4], 64);
  EXPECT_EQ(c->decode[0x5], 96);
  EXPECT_EQ(c->decode[0x6], 127);   // 4.0 x 32 = 128 clamps
  EXPECT_EQ(c->decode[0x7], 127);   // 6.0 x 32 = 192 clamps
  EXPECT_EQ(c->decode[0xc], -64);   // -2.0 x 32
  EXPECT_EQ(c->decode[0xe], -128);  // -4.0 x 32 exactly
  EXPECT_EQ(c->decode[0x8], 0);     // -0 reads back plain 0
  EXPECT_EQ(c->roundtrip[0 + 128], 0);
  EXPECT_EQ(c->roundtrip[16 + 128], 16);
  EXPECT_EQ(c->roundtrip[127 + 128], 127);
  EXPECT_EQ(c->roundtrip[-128 + 128], -128);
  // Tie at 24 (between 16 = subnormal significand 1 and 32 = normal
  // significand 2): RNE picks the even significand, so 24 reads back 32.
  EXPECT_EQ(c->roundtrip[24 + 128], 32);
}

}  // namespace
}  // namespace protea::numeric
