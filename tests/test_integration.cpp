// Cross-module integration tests: the full deployment flow (train ->
// save -> load -> quantize -> program via ISA -> run -> verify) and
// consistency between the functional simulator and the analytic models.
#include <gtest/gtest.h>

#include <filesystem>

#include "accel/accelerator.hpp"
#include "accel/perf_model.hpp"
#include "baseline/cpu_encoder.hpp"
#include "baseline/published.hpp"
#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"
#include "isa/controller.hpp"
#include "ref/encoder.hpp"
#include "ref/model_io.hpp"
#include "ref/model_zoo.hpp"
#include "tensor/ops.hpp"

namespace protea {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = ref::Activation::kGelu;
  return c;
}

TEST(Integration, FullDeploymentFlow) {
  // 1. "Train" (random-init) and save the model to disk.
  const auto cfg = small_config();
  const auto weights = ref::make_random_weights(cfg, 91);
  const std::string path = testing::TempDir() + "/protea_flow.bin";
  ref::save_model(weights, path);

  // 2. Host flow: load the checkpoint, calibrate and quantize.
  const auto loaded = ref::load_model(path);
  const auto input = ref::make_random_input(cfg, 92);
  auto qmodel = accel::prepare_model(loaded, input);

  // 3. Program the accelerator through the ISA and run.
  accel::AccelConfig acfg;
  accel::ProteaAccelerator accelerator(acfg);
  isa::Controller controller(accelerator);
  controller.bind_weights(0, std::move(qmodel));
  controller.bind_input(0, input);
  const auto results =
      controller.execute(isa::assemble_program(cfg, 0, 0));
  ASSERT_EQ(results.size(), 1u);

  // 4. Verify against the float reference and the CPU baseline.
  ref::Encoder reference(loaded);
  const auto ref_out = reference.forward(input);
  EXPECT_LT(tensor::rms_diff(results[0].output, ref_out), 0.2f);

  baseline::CpuEncoder cpu(loaded, 2);
  EXPECT_LE(tensor::max_abs_diff(cpu.forward(input), ref_out), 2e-4f);

  std::filesystem::remove(path);
}

TEST(Integration, PerfModelAgreesWithFunctionalMacCount) {
  // The analytic model's MAC count must equal what the engines actually
  // execute — the operation accounting has a single source of truth.
  const auto cfg = small_config();
  const auto weights = ref::make_random_weights(cfg, 93);
  const auto input = ref::make_random_input(cfg, 94);
  accel::AccelConfig acfg;
  accel::ProteaAccelerator accelerator(acfg);
  accelerator.load_model(accel::prepare_model(weights, input));
  accelerator.forward(input);
  const accel::PerfReport report = accelerator.performance();
  EXPECT_EQ(report.macs, accelerator.stats().macs);
}

TEST(Integration, ReprogrammingMatchesSeparateSyntheses) {
  // Running model A then model B on one accelerator (runtime
  // reprogramming) must give the same functional results as two separate
  // accelerators — programmability cannot change the datapath.
  const auto cfg_a = small_config();
  ref::ModelConfig cfg_b = small_config();
  cfg_b.num_heads = 8;
  cfg_b.activation = ref::Activation::kRelu;

  const auto w_a = ref::make_random_weights(cfg_a, 95);
  const auto w_b = ref::make_random_weights(cfg_b, 96);
  const auto x_a = ref::make_random_input(cfg_a, 97);
  const auto x_b = ref::make_random_input(cfg_b, 98);

  accel::AccelConfig acfg;
  accel::ProteaAccelerator shared(acfg);
  shared.load_model(accel::prepare_model(w_a, x_a));
  const auto out_a_shared = shared.forward(x_a);
  shared.load_model(accel::prepare_model(w_b, x_b));
  const auto out_b_shared = shared.forward(x_b);

  accel::ProteaAccelerator fresh_a(acfg), fresh_b(acfg);
  fresh_a.load_model(accel::prepare_model(w_a, x_a));
  fresh_b.load_model(accel::prepare_model(w_b, x_b));
  EXPECT_EQ(out_a_shared, fresh_a.forward(x_a));
  EXPECT_EQ(out_b_shared, fresh_b.forward(x_b));
}

TEST(Integration, AllZooModelsRunFunctionally) {
  // Every Table II/III workload must execute end to end on the simulator
  // (shrunk to their zoo shapes, which are all within the synthesis).
  accel::AccelConfig acfg;
  for (const auto& name : ref::model_names()) {
    const auto cfg = ref::find_model(name);
    if (cfg.d_model > 256) continue;  // keep the functional test fast
    const auto weights = ref::make_random_weights(cfg, 99);
    const auto input = ref::make_random_input(cfg, 100);
    accel::ProteaAccelerator accelerator(acfg);
    accelerator.load_model(accel::prepare_model(weights, input));
    const auto out = accelerator.forward(input);
    EXPECT_EQ(out.rows(), cfg.seq_len) << name;
    EXPECT_EQ(out.cols(), cfg.d_model) << name;
  }
}

TEST(Integration, Table2RowsInternallyConsistent) {
  // The published DSP/GOPS/normalized-GOPS columns must satisfy the
  // paper's own metric definition within rounding.
  for (const auto& row : baseline::table2_results()) {
    if (row.gops < 1.0) continue;  // [23] reports micro-GOPS, rounded
    const double expected =
        row.gops / static_cast<double>(row.dsp) * 1000.0;
    EXPECT_NEAR(row.gops_per_dsp_x1000, expected,
                expected * 0.05 + 1.0)
        << row.citation;
  }
}

TEST(Integration, SynthesisPointIsParetoReasonable) {
  // The shipped synthesis (TS_MHA=64, TS_FFN=128) must both fit the U55C
  // and be the fastest among the Fig. 7 grid points that fit.
  const ref::ModelConfig bert = ref::bert_variant();
  accel::AccelConfig best_cfg;
  double best_latency = 1e18;
  for (uint32_t ts_mha : {16u, 64u, 128u}) {
    for (uint32_t ts_ffn : {128u, 192u, 256u, 384u}) {
      accel::AccelConfig cfg;
      cfg.synth.ts_mha = ts_mha;
      cfg.synth.ts_ffn = ts_ffn;
      const auto resources = hw::estimate_resources(cfg.synth);
      if (!resources.fits(hw::alveo_u55c().budget)) continue;
      const auto report = accel::estimate_performance(cfg, bert);
      if (report.latency_ms < best_latency) {
        best_latency = report.latency_ms;
        best_cfg = cfg;
      }
    }
  }
  EXPECT_EQ(best_cfg.synth.ts_mha, 64u);
  EXPECT_EQ(best_cfg.synth.ts_ffn, 128u);
}

TEST(Integration, QuantizationErrorShrinksWithWiderCalibrationMargin) {
  // Sanity link between calibration and end-to-end error: an absurdly
  // large margin wastes precision and must increase error.
  const auto cfg = small_config();
  const auto weights = ref::make_random_weights(cfg, 101);
  const auto input = ref::make_random_input(cfg, 102);
  ref::Encoder reference(weights);
  const auto ref_out = reference.forward(input);

  auto run_with_margin = [&](double margin) {
    const auto scales =
        accel::calibrate_scales(reference, input, margin);
    accel::AccelConfig acfg;
    accel::ProteaAccelerator accelerator(acfg);
    accelerator.load_model(accel::quantize_model(weights, scales));
    return tensor::rms_diff(accelerator.forward(input), ref_out);
  };
  EXPECT_LT(run_with_margin(1.25), run_with_margin(16.0));
}

TEST(Integration, EndToEndBertVariantPerfHeadline) {
  // The repository's headline claim: the BERT variant at the paper's
  // synthesis point runs in ~279 ms at 200 MHz with 40% DSP utilization.
  accel::AccelConfig acfg;
  const auto report =
      accel::estimate_performance(acfg, ref::bert_variant());
  EXPECT_NEAR(report.latency_ms, 279.0, 279.0 * 0.02);
  EXPECT_DOUBLE_EQ(report.fmax_mhz, 200.0);
  const auto resources = hw::estimate_resources(acfg.synth);
  EXPECT_EQ(resources.used.dsp, 3612u);
}

}  // namespace
}  // namespace protea
