// Unit tests for the utility substrate: logging, RNG, CSV, tables,
// thread pool, string and math helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace protea::util {
namespace {

// --- logging ---------------------------------------------------------------

TEST(Logging, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
}

TEST(Logging, UnknownLevelDefaultsToWarn) {
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);
}

TEST(Logging, LevelRoundTripNames) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    EXPECT_EQ(parse_log_level(log_level_name(level)), level);
  }
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

// --- RNG ---------------------------------------------------------------------

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixDistinctSeeds) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 7.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 rng(11);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedZeroReturnsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Xoshiro256 rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(17);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

// --- Stopwatch ----------------------------------------------------------------

TEST(Stopwatch, MonotonicNonNegative) {
  Stopwatch watch;
  const double t1 = watch.seconds();
  const double t2 = watch.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, UnitsConsistent) {
  Stopwatch watch;
  const double s = watch.seconds();
  const double ms = watch.milliseconds();
  EXPECT_GE(ms, s * 1e3 * 0.5);  // ms read slightly later but same order
}

// --- math_util ------------------------------------------------------------------

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div<uint64_t>(768, 64), 12u);
  EXPECT_EQ(ceil_div<uint64_t>(768, 128), 6u);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(0, 4), 0);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(768), 9u);
  EXPECT_EQ(ilog2(1024), 10u);
}

// --- string_util ------------------------------------------------------------------

TEST(StringUtil, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtil, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringUtil, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("AlVeO U55C"), "alveo u55c");
  EXPECT_TRUE(starts_with("protea_accel", "protea"));
  EXPECT_FALSE(starts_with("pro", "protea"));
}

TEST(StringUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5, 2), "1.5");
  EXPECT_EQ(format_double(2.0, 2), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(279.06, 1), "279.1");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3u * 1024 * 1024), "3 MiB");
}

// --- CSV ---------------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/protea_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x,y", "with \"quote\""});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"with \"\"quote\"\"\"");
  std::filesystem::remove(path);
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = testing::TempDir() + "/protea_csv_test2.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.row({"only one"}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Csv, EscapePlainCellUnchanged) {
  EXPECT_EQ(CsvWriter::escape("hello"), "hello");
  EXPECT_EQ(CsvWriter::escape("a b"), "a b");
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv", {"a"}),
               std::runtime_error);
}

// --- Table --------------------------------------------------------------------------

TEST(Table, RendersAllCells) {
  Table t({"name", "value"});
  t.row({"latency", "279"});
  t.row({"gops", "53"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("latency"), std::string::npos);
  EXPECT_NE(s.find("279"), std::string::npos);
  EXPECT_NE(s.find("gops"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, TitleAppears) {
  Table t({"col"});
  t.set_title("TABLE I");
  EXPECT_NE(t.to_string().find("TABLE I"), std::string::npos);
}

// --- ThreadPool -----------------------------------------------------------------------

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [](size_t i) {
                                   if (i == 637) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed parallel_for.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForInlineRangePropagatesException) {
  // Small ranges run inline on the calling thread; exceptions must still
  // surface identically.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1, [](size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 10, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace protea::util
