// Tests for the analytic performance model — including the reproduction
// targets: Table I latencies, Fig. 7's tile-size optimum, and the
// scaling laws the paper's runtime-programmability experiments exhibit.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/perf_model.hpp"
#include "hw/frequency_model.hpp"
#include "hw/resource_model.hpp"
#include "ref/model_zoo.hpp"

namespace protea::accel {
namespace {

AccelConfig paper_config() { return AccelConfig{}; }

PerfReport run(const ref::ModelConfig& model,
               AccelConfig cfg = paper_config()) {
  return estimate_performance(cfg, model);
}

// --- Table I reproduction ----------------------------------------------------
// Paper values: Tests 1..9 latency in ms. Test 9 (SL=32) is the one row
// the structural model underestimates (paper 165, structural ~139 — the
// paper's own SL-scaling is anomalous there; see EXPERIMENTS.md), so its
// tolerance is wider.

struct Table1Row {
  size_t index;
  double paper_latency_ms;
  double tolerance;  // relative
};

class Table1 : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1, LatencyMatchesPaper) {
  const Table1Row row = GetParam();
  const auto tests = ref::table1_tests();
  ASSERT_LT(row.index, tests.size());
  const PerfReport report = run(tests[row.index]);
  EXPECT_NEAR(report.latency_ms, row.paper_latency_ms,
              row.paper_latency_ms * row.tolerance)
      << tests[row.index].name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1,
    ::testing::Values(Table1Row{0, 279.0, 0.02},   // 8 heads
                      Table1Row{1, 285.0, 0.02},   // 4 heads
                      Table1Row{2, 295.0, 0.02},   // 2 heads
                      Table1Row{3, 186.0, 0.02},   // 8 layers
                      Table1Row{4, 93.0, 0.02},    // 4 layers
                      Table1Row{5, 186.0, 0.02},   // d=512
                      Table1Row{6, 95.0, 0.03},    // d=256
                      Table1Row{7, 560.0, 0.02},   // SL=128
                      Table1Row{8, 165.0, 0.16})); // SL=32 (paper anomaly)

TEST(Table1Shape, FrequencyIs200MHzThroughout) {
  for (const auto& t : ref::table1_tests()) {
    EXPECT_DOUBLE_EQ(run(t).fmax_mhz, 200.0);
  }
}

TEST(Table1Shape, FewerHeadsSlightlySlower) {
  const auto tests = ref::table1_tests();
  const double l8 = run(tests[0]).latency_ms;
  const double l4 = run(tests[1]).latency_ms;
  const double l2 = run(tests[2]).latency_ms;
  EXPECT_LT(l8, l4);
  EXPECT_LT(l4, l2);
  // The effect is mild because the FFN dominates (paper: 279->285->295).
  EXPECT_LT(l2 / l8, 1.10);
}

TEST(Table1Shape, LatencyLinearInLayers) {
  ref::ModelConfig m = ref::bert_variant();
  const double l12 = run(m).latency_ms;
  m.num_layers = 6;
  const double l6 = run(m).latency_ms;
  EXPECT_NEAR(l12 / l6, 2.0, 1e-9);
}

TEST(Table1Shape, LatencyLinearInSeqLenForDominantStages) {
  ref::ModelConfig m = ref::bert_variant();
  const double l64 = run(m).latency_ms;
  m.seq_len = 128;
  const double l128 = run(m).latency_ms;
  // Paper: 560/279 = 2.007 (slightly superlinear via the SL^2 softmax).
  EXPECT_GT(l128 / l64, 1.98);
  EXPECT_LT(l128 / l64, 2.1);
}

TEST(Table1Shape, GopsDropsWithSmallerDModel) {
  // Paper: GOPS 53 -> 36 -> 18 as d_model shrinks 768 -> 512 -> 256:
  // compute shrinks ~quadratically but the frozen row-tile loops keep
  // latency from shrinking as fast.
  const auto tests = ref::table1_tests();
  const double g768 = run(tests[0]).gops;
  const double g512 = run(tests[5]).gops;
  const double g256 = run(tests[6]).gops;
  EXPECT_GT(g768, g512);
  EXPECT_GT(g512, g256);
  EXPECT_NEAR(g512 / g768, 36.0 / 53.0, 0.08);
  EXPECT_NEAR(g256 / g768, 18.0 / 53.0, 0.08);
}

TEST(Table1Shape, ResourceUsageIndependentOfRuntimeProgram) {
  // Table I: one synthesis, nine programs, identical resources. The perf
  // model touches only timing; resources come from SynthParams alone.
  const AccelConfig cfg = paper_config();
  const auto r1 = hw::estimate_resources(cfg.synth);
  for (const auto& t : ref::table1_tests()) {
    run(t, cfg);  // must not throw
    const auto r2 = hw::estimate_resources(cfg.synth);
    EXPECT_EQ(r1.used.dsp, r2.used.dsp);
    EXPECT_EQ(r1.used.lut, r2.used.lut);
  }
}

// --- Fig. 7: tile-size design space ----------------------------------------------

TEST(Fig7, OptimumAtTwelveMhaTilesSixFfnTiles) {
  const ref::ModelConfig bert = ref::bert_variant();
  double best_latency = 1e18;
  uint32_t best_mha_tiles = 0, best_ffn_tiles = 0;
  double best_freq = 0.0;
  for (uint32_t mha_tiles : {6u, 12u, 48u}) {
    for (uint32_t ffn_tiles = 2; ffn_tiles <= 6; ++ffn_tiles) {
      AccelConfig cfg = paper_config();
      cfg.synth.ts_mha = 768 / mha_tiles;
      cfg.synth.ts_ffn =
          static_cast<uint32_t>(std::ceil(768.0 / ffn_tiles));
      const PerfReport r = run(bert, cfg);
      if (r.latency_ms < best_latency) {
        best_latency = r.latency_ms;
        best_mha_tiles = mha_tiles;
        best_ffn_tiles = ffn_tiles;
        best_freq = r.fmax_mhz;
      }
    }
  }
  EXPECT_EQ(best_mha_tiles, 12u);
  EXPECT_EQ(best_ffn_tiles, 6u);
  EXPECT_DOUBLE_EQ(best_freq, 200.0);
}

TEST(Fig7, FrequencyHighestAtPaperPoint) {
  double best_freq = 0.0;
  uint32_t best_mha = 0;
  for (uint32_t mha_tiles : {6u, 12u, 48u}) {
    AccelConfig cfg = paper_config();
    cfg.synth.ts_mha = 768 / mha_tiles;
    const double f = hw::fmax_mhz(cfg.synth);
    if (f > best_freq) {
      best_freq = f;
      best_mha = mha_tiles;
    }
  }
  EXPECT_EQ(best_mha, 12u);
  EXPECT_DOUBLE_EQ(best_freq, 200.0);
}

// --- stage decomposition -----------------------------------------------------------

TEST(Stages, SumToLayerCycles) {
  const PerfReport r = run(ref::bert_variant());
  hw::Cycles sum = 0;
  for (const auto& s : r.stages) sum += s.total;
  EXPECT_EQ(sum, r.layer_cycles);
  EXPECT_EQ(r.total_cycles, r.layer_cycles * 12);
}

TEST(Stages, FfnDominatesBertWorkload) {
  // §III/§IV: "The FFNs ... are the most time- and resource-intensive
  // components."
  const PerfReport r = run(ref::bert_variant());
  const auto ffn = r.stage("ffn1").total + r.stage("ffn2").total +
                   r.stage("ffn3").total;
  const auto mha = r.stage("qkv").total + r.stage("qk").total +
                   r.stage("softmax").total + r.stage("sv").total;
  EXPECT_GT(ffn, 5 * mha);
}

TEST(Stages, InvocationCountsMatchTilingFormulas) {
  const PerfReport r = run(ref::bert_variant());
  EXPECT_EQ(r.stage("qkv").invocations, 12u);    // d/TS_MHA
  EXPECT_EQ(r.stage("ffn1").invocations, 36u);   // 6 x 6
  EXPECT_EQ(r.stage("ffn2").invocations, 144u);  // 6 x 24
  EXPECT_EQ(r.stage("ffn3").invocations, 144u);  // 24 x 6
}

TEST(Stages, UnknownStageNameThrows) {
  const PerfReport r = run(ref::bert_variant());
  EXPECT_THROW(r.stage("nonexistent"), std::out_of_range);
}

// --- padding-policy ablation ----------------------------------------------------------

TEST(PaddingPolicy, AdaptiveFasterForSmallDModel) {
  ref::ModelConfig m = ref::bert_variant();
  m.d_model = 256;
  AccelConfig fixed = paper_config();
  AccelConfig adaptive = paper_config();
  adaptive.padding = PaddingPolicy::kRuntimeAdaptive;
  EXPECT_LT(run(m, adaptive).latency_ms, run(m, fixed).latency_ms);
}

TEST(PaddingPolicy, PoliciesAgreeAtSynthesizedMaximum) {
  const ref::ModelConfig m = ref::bert_variant();  // d = max_d_model
  AccelConfig fixed = paper_config();
  AccelConfig adaptive = paper_config();
  adaptive.padding = PaddingPolicy::kRuntimeAdaptive;
  EXPECT_DOUBLE_EQ(run(m, fixed).latency_ms, run(m, adaptive).latency_ms);
}

// --- load/compute overlap ablation ------------------------------------------------------

TEST(Overlap, DisablingOverlapNeverFaster) {
  for (const auto& name : ref::model_names()) {
    const auto m = ref::find_model(name);
    AccelConfig on = paper_config();
    AccelConfig off = paper_config();
    off.overlap_loads = false;
    EXPECT_GE(run(m, off).total_cycles, run(m, on).total_cycles) << name;
  }
}

TEST(Overlap, ComputeBoundWorkloadBarelyAffected) {
  // With 8 HBM channels the BERT workload is compute-bound; overlap
  // removal costs well under 10%.
  const auto m = ref::bert_variant();
  AccelConfig on = paper_config();
  AccelConfig off = paper_config();
  off.overlap_loads = false;
  const double ratio =
      static_cast<double>(run(m, off).total_cycles) /
      static_cast<double>(run(m, on).total_cycles);
  EXPECT_LT(ratio, 1.10);
}

// --- throughput and utilization metrics ---------------------------------------------------

TEST(Metrics, GopsConsistentWithOpsAndLatency) {
  const PerfReport r = run(ref::bert_variant());
  EXPECT_NEAR(r.gops,
              static_cast<double>(r.ops) / (r.latency_ms * 1e-3) / 1e9,
              1e-9);
}

TEST(Metrics, DspUtilizationInUnitRange) {
  for (const auto& t : ref::table1_tests()) {
    const PerfReport r = run(t);
    EXPECT_GT(r.dsp_utilization, 0.0);
    EXPECT_LT(r.dsp_utilization, 1.0);
  }
}

TEST(Metrics, BytesLoadedScaleWithModel) {
  ref::ModelConfig m = ref::bert_variant();
  const auto big = run(m).bytes_loaded;
  m.num_layers = 6;
  EXPECT_NEAR(static_cast<double>(run(m).bytes_loaded),
              static_cast<double>(big) / 2.0, 1.0);
}

// --- model zoo latencies (Table II ProTEA side) ---------------------------------------------

struct ZooTarget {
  const char* name;
  double paper_ms;
  double tolerance;
};

class ZooLatency : public ::testing::TestWithParam<ZooTarget> {};

TEST_P(ZooLatency, NearPaperReportedProteaLatency) {
  const auto t = GetParam();
  const PerfReport r = run(ref::find_model(t.name));
  EXPECT_NEAR(r.latency_ms, t.paper_ms, t.paper_ms * t.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, ZooLatency,
    ::testing::Values(ZooTarget{"peng21", 4.48, 0.05},
                      ZooTarget{"wojcicki23", 0.425, 0.05},
                      ZooTarget{"efa_trans25", 5.18, 0.05},
                      ZooTarget{"qi28", 9.12, 0.05}));

// --- runtime validation -------------------------------------------------------------------

TEST(Validation, RejectsOversizedPrograms) {
  AccelConfig cfg = paper_config();
  ref::ModelConfig m = ref::bert_variant();
  m.d_model = 1536;
  EXPECT_THROW(run(m, cfg), std::invalid_argument);
  m = ref::bert_variant();
  m.seq_len = 512;
  EXPECT_THROW(run(m, cfg), std::invalid_argument);
  m = ref::bert_variant();
  m.num_heads = 16;
  EXPECT_THROW(run(m, cfg), std::invalid_argument);
}

TEST(Validation, AcceptsAnythingWithinSynthesis) {
  for (const auto& t : ref::table1_tests()) {
    EXPECT_NO_THROW(run(t));
  }
}

}  // namespace
}  // namespace protea::accel
