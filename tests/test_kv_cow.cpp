// Copy-on-write KV block forking: the KvBlockPool refcount / lazy-zero /
// admission-credit contract, and — the tentpole invariant — bit-identity
// of fork() + divergent decode against an eager full-copy fork (and a
// fresh replay) across randomized (T, block_size, fork point, width)
// shapes, including fork-on-block-boundary and fork-then-free orderings.
// Beam search rides the same machinery; its stepped and threaded modes
// must emit identical hypotheses, and its executed block peak must stay
// within the COW-aware reserve-at-admission bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/decode_policy.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

/// Model + quantized decoder at a given target capacity (seq_len).
struct CowFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;

  explicit CowFixture(uint32_t seq_len, uint64_t seed = 500) {
    cfg.seq_len = seq_len;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(6, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
  }

  size_t row_bytes() const {
    return cfg.num_layers * cfg.num_heads * 2 * cfg.head_dim();
  }
};

// --- KvBlockPool refcount / lazy-zero contract ------------------------------

TEST(KvBlockPoolCow, ForkRefCountsUniqueBlocksOnce) {
  runtime::KvBlockPool pool;
  pool.configure(4, 2, 16);

  std::vector<uint32_t> held;
  ASSERT_TRUE(pool.try_reserve(2, held));
  EXPECT_EQ(pool.used_blocks(), 2u);
  EXPECT_EQ(pool.shared_blocks(), 0u);

  // A fork bumps refcounts without consuming pool capacity: occupancy
  // still counts unique blocks once.
  pool.fork_ref(held);
  EXPECT_EQ(pool.used_blocks(), 2u);
  EXPECT_EQ(pool.shared_blocks(), 2u);
  EXPECT_EQ(pool.ref_count(held[0]), 2u);

  // The first release only drops references; blocks stay live.
  pool.release(held);
  EXPECT_EQ(pool.used_blocks(), 2u);
  EXPECT_EQ(pool.shared_blocks(), 0u);
  EXPECT_EQ(pool.free_blocks(), 2u);

  // The last release frees them.
  pool.release(held);
  EXPECT_EQ(pool.used_blocks(), 0u);
  EXPECT_EQ(pool.free_blocks(), 4u);

  // Releasing past the last reference is still a loud double free.
  EXPECT_THROW(pool.release(held), std::logic_error);
  EXPECT_THROW(pool.fork_ref(held), std::invalid_argument);  // not live

  // A span listing the same block twice is an over-release even while
  // OTHER forks still hold references: one call drops one reference per
  // distinct block, never the caller's holding twice.
  std::vector<uint32_t> shared;
  ASSERT_TRUE(pool.try_reserve(1, shared));
  pool.fork_ref(shared);  // refcount 2
  const std::vector<uint32_t> dup = {shared[0], shared[0]};
  EXPECT_THROW(pool.release(dup), std::logic_error);
  EXPECT_EQ(pool.ref_count(shared[0]), 2u);  // rollback kept both refs
  pool.release(shared);
  pool.release(shared);
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(KvBlockPoolCow, LazyZeroFillOnFirstHandOutAfterFree) {
  runtime::KvBlockPool pool;
  pool.configure(2, 2, 8);
  EXPECT_EQ(pool.zero_fills(), 0u);

  std::vector<uint32_t> held;
  ASSERT_TRUE(pool.try_reserve(1, held));
  // Fresh blocks were zeroed once at configure() — no lazy fill needed.
  EXPECT_EQ(pool.zero_fills(), 0u);
  for (size_t r = 0; r < 2; ++r) {
    std::memset(pool.row_data(held[0], r), 0x5a, 8);
  }
  pool.release(held);

  // Recycling scrubs the block on hand-out, exactly once.
  std::vector<uint32_t> again;
  ASSERT_TRUE(pool.try_reserve(1, again));
  EXPECT_EQ(again[0], held[0]);
  EXPECT_EQ(pool.zero_fills(), 1u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t b = 0; b < 8; ++b) {
      ASSERT_EQ(pool.row_data(again[0], r)[b], 0) << "row " << r;
    }
  }

  // A duplicate (COW copy) of a live block skips the redundant zeroing:
  // its hand-out is fully overwritten by the copy.
  std::memset(pool.row_data(again[0], 0), 0x77, 8);
  const uint32_t copy = pool.duplicate(again[0]);
  EXPECT_EQ(pool.zero_fills(), 1u);  // unchanged
  EXPECT_EQ(pool.row_data(copy, 0)[3], 0x77);
  pool.release(again);
  const uint32_t copies[] = {copy};
  pool.release(copies);
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(KvBlockPoolCow, MakePrivateCopiesSharedBlocksOnly) {
  runtime::KvBlockPool pool;
  pool.configure(3, 1, 4);
  std::vector<uint32_t> held;
  ASSERT_TRUE(pool.try_reserve(1, held));
  std::memset(pool.row_data(held[0], 0), 0x11, 4);

  // Sole holder: writing in place is safe, no copy happens.
  EXPECT_EQ(pool.make_private(held[0]), held[0]);
  EXPECT_EQ(pool.cow_copies(), 0u);

  // Shared: make_private peels off a bit-exact copy and drops one
  // reference on the source.
  pool.fork_ref(held);
  const uint32_t copy = pool.make_private(held[0]);
  EXPECT_NE(copy, held[0]);
  EXPECT_EQ(pool.cow_copies(), 1u);
  EXPECT_EQ(pool.ref_count(held[0]), 1u);
  EXPECT_EQ(pool.ref_count(copy), 1u);
  EXPECT_EQ(pool.row_data(copy, 0)[0], 0x11);
  EXPECT_EQ(pool.used_blocks(), 2u);

  const uint32_t copies[] = {copy};
  pool.release(copies);
  pool.release(held);
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(KvBlockPoolCow, AdmissionCreditReservesHeadroomAllOrNothing) {
  runtime::KvBlockPool pool;
  pool.configure(4, 1, 4);
  runtime::KvPoolCredit credit;
  ASSERT_TRUE(pool.try_reserve_credit(credit, 3));
  EXPECT_EQ(pool.uncommitted_free_blocks(), 1u);

  // Uncredited takers see only the uncommitted remainder.
  std::vector<uint32_t> other;
  EXPECT_FALSE(pool.try_reserve(2, other));
  EXPECT_TRUE(other.empty());
  ASSERT_TRUE(pool.try_reserve(1, other));

  // Credited takes draw on the reservation and are guaranteed.
  std::vector<uint32_t> mine;
  ASSERT_TRUE(pool.try_reserve(2, mine, &credit));
  EXPECT_EQ(credit.live, 2u);
  EXPECT_EQ(credit.peak, 2u);

  // Exceeding the admission bound is a loud logic error, not a silent
  // raid on someone else's reservation.
  std::vector<uint32_t> over;
  EXPECT_THROW(pool.try_reserve(2, over, &credit), std::logic_error);

  // Freed credited blocks return headroom to the group.
  pool.release(mine);
  mine.clear();
  EXPECT_EQ(credit.live, 0u);
  ASSERT_TRUE(pool.try_reserve(3, mine, &credit));
  EXPECT_EQ(credit.peak, 3u);
  pool.release(mine);
  pool.release_credit(credit);
  EXPECT_EQ(credit.limit, 0u);
  pool.release(other);
  EXPECT_EQ(pool.uncommitted_free_blocks(), 4u);

  // A second reservation on a live credit is rejected.
  ASSERT_TRUE(pool.try_reserve_credit(credit, 1));
  EXPECT_THROW(pool.try_reserve_credit(credit, 1), std::logic_error);
  pool.release_credit(credit);
}

TEST(KvBlockPoolCow, CreditWaitersWakeWhenHeadroomReturns) {
  runtime::KvBlockPool pool;
  pool.configure(3, 1, 4);
  std::vector<uint32_t> held;
  ASSERT_TRUE(pool.try_reserve(2, held));

  runtime::KvPoolCredit credit;
  EXPECT_FALSE(pool.try_reserve_credit(credit, 3));  // short: backpressure
  EXPECT_GE(pool.exhaustion_events(), 1u);

  std::thread releaser([&] { pool.release(held); });
  pool.reserve_credit_wait(credit, 3);  // parks until the release lands
  releaser.join();
  EXPECT_EQ(credit.limit, 3u);
  pool.release_credit(credit);

  // An immediately-satisfied wait is not a backpressure episode: it
  // returns false and records no exhaustion event.
  const uint64_t events = pool.exhaustion_events();
  runtime::KvPoolCredit quick;
  EXPECT_FALSE(pool.reserve_credit_wait(quick, 2));
  EXPECT_EQ(pool.exhaustion_events(), events);
  pool.release_credit(quick);
}

// --- fork + divergent decode == eager copy == fresh replay ------------------

/// Forks `width` COW children and `width` eager children off one parent
/// prefilled with `fork_point` prompt rows, decodes a DIFFERENT token
/// stream on each pair (parent included, so the shared blocks see
/// divergent appends from every side), and asserts each COW child is
/// bit-identical to its eager twin and to a fresh replay at every step.
void expect_fork_matches_eager(const CowFixture& fx, size_t fork_point,
                               size_t block_rows, size_t width,
                               uint64_t seed) {
  runtime::KvBlockPool pool;
  const size_t lineage =
      (fx.cfg.seq_len + block_rows - 1) / block_rows;
  pool.configure((2 * width + 2) * lineage, block_rows, fx.row_bytes());

  runtime::GenerationOptions opts;
  opts.kv_block_rows = block_rows;
  opts.kv_pool = &pool;
  runtime::GenerationSession parent(fx.acfg, fx.qd, nullptr, opts);

  const auto prompt = random_input(fork_point, fx.cfg.d_model, seed);
  tensor::MatrixF prefill_states;
  parent.prefill(prompt, fx.memory, prefill_states);

  std::vector<std::unique_ptr<runtime::GenerationSession>> cow, eager;
  for (size_t c = 0; c < width; ++c) {
    cow.push_back(std::make_unique<runtime::GenerationSession>(
        fx.acfg, fx.qd, nullptr, opts));
    cow.back()->fork_from(parent, /*eager_copy=*/false);
    eager.push_back(std::make_unique<runtime::GenerationSession>(
        fx.acfg, fx.qd, nullptr, opts));
    eager.back()->fork_from(parent, /*eager_copy=*/true);
  }
  if (width >= 1 && fork_point >= block_rows) {
    EXPECT_GT(pool.shared_blocks(), 0u)
        << "fork did not actually share prompt blocks";
  }

  const size_t steps = fx.cfg.seq_len - fork_point;
  tensor::MatrixF cs, es, ps, rs;
  // Parent decodes its own continuation interleaved with the children,
  // so every side appends into what used to be shared blocks.
  const auto parent_tokens =
      random_input(steps, fx.cfg.d_model, seed + 1);
  std::vector<tensor::MatrixF> child_tokens;
  for (size_t c = 0; c < width; ++c) {
    child_tokens.push_back(
        random_input(steps, fx.cfg.d_model, seed + 2 + c));
  }
  std::vector<std::vector<tensor::MatrixF>> cow_states(width);
  for (size_t t = 0; t < steps; ++t) {
    parent.decode_step(parent_tokens.slice_rows(t, 1), ps);
    for (size_t c = 0; c < width; ++c) {
      cow[c]->decode_step(child_tokens[c].slice_rows(t, 1), cs);
      eager[c]->decode_step(child_tokens[c].slice_rows(t, 1), es);
      ASSERT_EQ(cs, es) << "cow vs eager, child " << c << " step " << t
                        << " fork@" << fork_point << " bs=" << block_rows;
      cow_states[c].push_back(cs);
    }
  }

  // Fresh replay (private pool): prefill + the same divergent stream.
  for (size_t c = 0; c < width; ++c) {
    runtime::GenerationOptions solo_opts;
    solo_opts.kv_block_rows = block_rows;
    runtime::GenerationSession solo(fx.acfg, fx.qd, nullptr, solo_opts);
    tensor::MatrixF solo_prefill;
    solo.prefill(prompt, fx.memory, solo_prefill);
    ASSERT_EQ(solo_prefill, prefill_states);
    for (size_t t = 0; t < steps; ++t) {
      solo.decode_step(child_tokens[c].slice_rows(t, 1), rs);
      ASSERT_EQ(cow_states[c][t], rs)
          << "cow vs replay, child " << c << " step " << t;
    }
  }

  parent.end_sequence();
  for (auto& s : cow) s->end_sequence();
  for (auto& s : eager) s->end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);  // refcounts drained completely
}

TEST(KvCow, ForkOnAndAroundBlockBoundariesIsBitIdentical) {
  CowFixture fx(8, 510);
  expect_fork_matches_eager(fx, 4, 4, 2, 600);  // fork ON the boundary
  expect_fork_matches_eager(fx, 5, 4, 2, 601);  // one past it
  expect_fork_matches_eager(fx, 3, 4, 2, 602);  // one before it
  expect_fork_matches_eager(fx, 2, 1, 3, 603);  // single-row blocks
  expect_fork_matches_eager(fx, 6, 16, 2, 604); // block > capacity
}

TEST(KvCow, RandomizedForkShapesAreBitIdentical) {
  util::Xoshiro256 rng(520);
  const uint32_t capacities[] = {6, 9, 13};
  const size_t block_sizes[] = {1, 2, 3, 5};
  for (int trial = 0; trial < 4; ++trial) {
    const uint32_t cap =
        capacities[rng.next() % (sizeof(capacities) / sizeof(uint32_t))];
    const size_t bs =
        block_sizes[rng.next() % (sizeof(block_sizes) / sizeof(size_t))];
    const size_t fork_point = 1 + rng.next() % (cap - 1);
    const size_t width = 1 + rng.next() % 3;
    CowFixture fx(cap, 530 + trial);
    expect_fork_matches_eager(fx, fork_point, bs, width,
                              700 + trial * 10);
  }
}

TEST(KvCow, ForkThenFreeOrderingKeepsSharedBlocksAlive) {
  // The parent retires FIRST: its release must only drop references —
  // the child keeps decoding over the shared prefix, bit-identical to a
  // replay. Then the reverse order on a second fork.
  CowFixture fx(10, 540);
  runtime::KvBlockPool pool;
  pool.configure(12, 3, fx.row_bytes());
  runtime::GenerationOptions opts;
  opts.kv_block_rows = 3;
  opts.kv_pool = &pool;

  runtime::GenerationSession parent(fx.acfg, fx.qd, nullptr, opts);
  runtime::GenerationSession child(fx.acfg, fx.qd, nullptr, opts);
  const auto prompt = random_input(5, fx.cfg.d_model, 541);
  const auto tokens = random_input(5, fx.cfg.d_model, 542);

  tensor::MatrixF states, cs, rs;
  parent.prefill(prompt, fx.memory, states);
  child.fork_from(parent);
  const size_t held_before = pool.used_blocks();
  parent.end_sequence();  // parent dies first
  EXPECT_EQ(pool.used_blocks(), held_before);  // child's refs held on

  runtime::GenerationSession solo(fx.acfg, fx.qd);
  tensor::MatrixF solo_states;
  solo.prefill(prompt, fx.memory, solo_states);
  for (size_t t = 0; t < 5; ++t) {
    child.decode_step(tokens.slice_rows(t, 1), cs);
    solo.decode_step(tokens.slice_rows(t, 1), rs);
    ASSERT_EQ(cs, rs) << "step " << t;
  }
  child.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);

  // Reverse order: the child dies first, the parent keeps decoding.
  parent.prefill(prompt, fx.memory, states);
  child.fork_from(parent);
  child.end_sequence();
  runtime::GenerationSession solo2(fx.acfg, fx.qd);
  solo2.prefill(prompt, fx.memory, solo_states);
  for (size_t t = 0; t < 5; ++t) {
    parent.decode_step(tokens.slice_rows(t, 1), cs);
    solo2.decode_step(tokens.slice_rows(t, 1), rs);
    ASSERT_EQ(cs, rs) << "parent-after-child step " << t;
  }
  parent.end_sequence();
  EXPECT_EQ(pool.used_blocks(), 0u);
}

TEST(KvCow, ForkValidatesLayoutPoolAndGeometry) {
  CowFixture fx(8, 550);
  runtime::KvBlockPool pool;
  pool.configure(8, 2, fx.row_bytes());
  runtime::GenerationOptions shared;
  shared.kv_block_rows = 2;
  shared.kv_pool = &pool;
  runtime::GenerationSession a(fx.acfg, fx.qd, nullptr, shared);
  runtime::GenerationSession b(fx.acfg, fx.qd, nullptr, shared);

  EXPECT_THROW(a.fork_from(a), std::invalid_argument);  // self fork

  // Forking across two PRIVATE pools cannot share blocks.
  runtime::GenerationSession p1(fx.acfg, fx.qd);
  runtime::GenerationSession p2(fx.acfg, fx.qd);
  tensor::MatrixF states;
  p1.prefill(random_input(2, fx.cfg.d_model, 551), fx.memory, states);
  EXPECT_THROW(p2.fork_from(p1), std::invalid_argument);

  // Dense caches have no block table to fork.
  runtime::GenerationOptions dense;
  dense.kv_block_rows = 0;
  runtime::GenerationSession d1(fx.acfg, fx.qd, nullptr, dense);
  runtime::GenerationSession d2(fx.acfg, fx.qd, nullptr, dense);
  d1.prefill(random_input(2, fx.cfg.d_model, 552), fx.memory, states);
  EXPECT_THROW(d2.fork_from(d1), std::logic_error);

  // A different model is a different session family.
  CowFixture other(8, 553);
  runtime::GenerationSession o(other.acfg, other.qd, nullptr, shared);
  a.prefill(random_input(2, fx.cfg.d_model, 554), fx.memory, states);
  EXPECT_THROW(o.fork_from(a), std::invalid_argument);
}

// --- beam search over COW forks ---------------------------------------------

struct BeamFixture {
  CowFixture fx;
  tensor::MatrixF head, embed;
  runtime::VocabModel vocab;

  explicit BeamFixture(uint32_t seq_len = 16, uint64_t seed = 560,
                       uint32_t vocab_size = 24)
      : fx(seq_len, seed) {
    util::Xoshiro256 rng(seed + 7);
    head = tensor::MatrixF(vocab_size, fx.cfg.d_model);
    embed = tensor::MatrixF(vocab_size, fx.cfg.d_model);
    for (float& x : head.flat()) x = static_cast<float>(rng.normal());
    for (float& x : embed.flat()) {
      x = static_cast<float>(rng.normal() * 0.5);
    }
    vocab.head = &head;
    vocab.embed = &embed;
  }
};

void expect_same_hypotheses(
    const std::vector<runtime::BeamHypothesis>& a,
    const std::vector<runtime::BeamHypothesis>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tokens, b[i].tokens) << what << " hypothesis " << i;
    EXPECT_EQ(a[i].sum_logprob, b[i].sum_logprob) << what << " " << i;
    EXPECT_EQ(a[i].score, b[i].score) << what << " " << i;
    EXPECT_EQ(a[i].finished, b[i].finished) << what << " " << i;
  }
}

TEST(BeamSearchCow, CowMatchesEagerAndStaysWithinAdmissionBound) {
  BeamFixture bf(16, 570);
  const std::vector<uint32_t> prompt = {1, 2, 3, 4, 5, 6};

  runtime::BeamSearchOptions cow_opts;
  cow_opts.beam_width = 4;
  cow_opts.max_new_tokens = 8;
  cow_opts.kv_block_rows = 2;
  cow_opts.cow = true;
  runtime::BeamSearchDecoder cow_dec(bf.fx.acfg, bf.fx.qd, bf.vocab,
                                     cow_opts);
  const auto cow_hyps = cow_dec.generate(prompt, bf.fx.memory);

  runtime::BeamSearchOptions eager_opts = cow_opts;
  eager_opts.cow = false;
  runtime::BeamSearchDecoder eager_dec(bf.fx.acfg, bf.fx.qd, bf.vocab,
                                       eager_opts);
  const auto eager_hyps = eager_dec.generate(prompt, bf.fx.memory);

  // The acceptance invariant: COW-forked beams emit tokens bit-identical
  // to eager-copy reference caches.
  expect_same_hypotheses(cow_hyps, eager_hyps, "cow vs eager");
  ASSERT_EQ(cow_hyps.size(), 4u);

  // Sharing actually happened, within the reserve-at-admission bound.
  const auto& cs = cow_dec.last_run();
  const auto& es = eager_dec.last_run();
  EXPECT_GT(cs.cow_copies, 0u);
  EXPECT_GT(cs.forks, 0u);
  EXPECT_LE(cs.kv_blocks_peak, cs.worst_case_blocks);
  EXPECT_LE(es.kv_blocks_peak, es.worst_case_blocks);
  EXPECT_LT(cs.kv_blocks_peak, es.kv_blocks_peak)
      << "COW should hold fewer unique blocks than eager copies";
  // K beams at near-1x prompt footprint: unique prompt+tail blocks stay
  // well under K private lineages.
  const size_t dense_equiv =
      4 * ((prompt.size() + cow_opts.max_new_tokens - 1 + 1) / 2);
  EXPECT_LT(cs.kv_blocks_peak, dense_equiv);
  EXPECT_EQ(cow_dec.pool().used_blocks(), 0u);  // fully drained
}

TEST(BeamSearchCow, SteppedAndThreadedModesAreBitIdentical) {
  BeamFixture bf(14, 580);
  const std::vector<uint32_t> prompt = {3, 1, 4};

  runtime::BeamSearchOptions stepped;
  stepped.beam_width = 4;
  stepped.max_new_tokens = 7;
  stepped.kv_block_rows = 3;
  stepped.threads = 1;
  runtime::BeamSearchDecoder a(bf.fx.acfg, bf.fx.qd, bf.vocab, stepped);

  runtime::BeamSearchOptions threaded = stepped;
  threaded.threads = 3;
  runtime::BeamSearchDecoder b(bf.fx.acfg, bf.fx.qd, bf.vocab, threaded);

  for (int run = 0; run < 2; ++run) {  // decoder reuse is clean too
    const auto ha = a.generate(prompt, bf.fx.memory);
    const auto hb = b.generate(prompt, bf.fx.memory);
    expect_same_hypotheses(ha, hb, "stepped vs threaded");
  }
}

TEST(BeamSearchCow, SharedPoolAdmissionWaitsInsteadOfDeadlocking) {
  // A beam group and a plain session contend for ONE pool. The group's
  // credit reservation must wait for the session to retire, then run to
  // completion — backpressure, not deadlock, and no corruption of the
  // bystander's rows.
  BeamFixture bf(12, 590);
  runtime::KvBlockPool pool;
  // Too small for (session worst case) + (beam worst case) at once.
  const size_t lineage = (bf.fx.cfg.seq_len + 2 - 1) / 2;
  pool.configure(lineage + 8, 2, bf.fx.row_bytes());

  runtime::GenerationOptions sess_opts;
  sess_opts.kv_block_rows = 2;
  sess_opts.kv_pool = &pool;
  runtime::GenerationSession bystander(bf.fx.acfg, bf.fx.qd, nullptr,
                                       sess_opts);
  ASSERT_TRUE(bystander.try_reserve_rows(bf.fx.cfg.seq_len));

  runtime::BeamSearchOptions opts;
  opts.beam_width = 3;
  opts.max_new_tokens = 4;
  opts.kv_block_rows = 2;
  opts.kv_pool = &pool;
  runtime::BeamSearchDecoder dec(bf.fx.acfg, bf.fx.qd, bf.vocab, opts);
  const std::vector<uint32_t> prompt = {2, 5};

  std::thread releaser([&] { bystander.end_sequence(); });
  const auto hyps = dec.generate(prompt, bf.fx.memory);  // may park
  releaser.join();
  ASSERT_EQ(hyps.size(), 3u);
  EXPECT_EQ(pool.used_blocks(), 0u);

  // Same prompt on a private-pool decoder: identical hypotheses.
  runtime::BeamSearchOptions solo_opts = opts;
  solo_opts.kv_pool = nullptr;
  runtime::BeamSearchDecoder solo(bf.fx.acfg, bf.fx.qd, bf.vocab,
                                  solo_opts);
  expect_same_hypotheses(hyps, solo.generate(prompt, bf.fx.memory),
                         "shared vs private pool");
}

TEST(BeamSearchCow, WorstCaseBoundFormula) {
  using runtime::beam_worst_case_blocks;
  // prompt 10, br 4: shared lineage ceil(10/4)=3; per-beam tail spans
  // blocks [floor(10/4), ceil((10+max_new-1)/4)).
  EXPECT_EQ(beam_worst_case_blocks(10, 7, 4, 4, true),
            3u + 4u * (4u - 2u));
  // Boundary prompt: no straddling block, tail is the pure divergence.
  EXPECT_EQ(beam_worst_case_blocks(8, 5, 2, 4, true), 2u + 2u * 1u);
  // Eager: two generations of full private lineages.
  EXPECT_EQ(beam_worst_case_blocks(8, 5, 2, 4, false), 2u * 2u * 3u);
  EXPECT_THROW(beam_worst_case_blocks(0, 1, 1, 1, true),
               std::invalid_argument);
}

}  // namespace
}  // namespace protea
