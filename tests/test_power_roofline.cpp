// Tests for the power/energy model and the roofline analysis.
#include <gtest/gtest.h>

#include "accel/perf_model.hpp"
#include "hw/frequency_model.hpp"
#include "hw/power_model.hpp"
#include "hw/roofline.hpp"
#include "ref/model_zoo.hpp"

namespace protea::hw {
namespace {

SynthParams paper() { return paper_synth_params(); }

// --- power model -----------------------------------------------------------

TEST(PowerModel, BreakdownSumsToTotal) {
  const PowerBreakdown p = estimate_power(paper(), 200.0, 0.4, 0.1);
  EXPECT_NEAR(p.total_w,
              p.static_w + p.dsp_w + p.bram_w + p.logic_w + p.hbm_w,
              1e-9);
}

TEST(PowerModel, IdlePowerIsStaticOnly) {
  const PowerBreakdown p = estimate_power(paper(), 200.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(p.dsp_w, 0.0);
  EXPECT_DOUBLE_EQ(p.hbm_w, 0.0);
  EXPECT_DOUBLE_EQ(p.total_w, p.static_w);
  EXPECT_GT(p.static_w, 0.0);
}

TEST(PowerModel, ScalesWithActivityAndFrequency) {
  const auto low = estimate_power(paper(), 200.0, 0.2, 0.1);
  const auto high = estimate_power(paper(), 200.0, 0.8, 0.1);
  EXPECT_NEAR(high.dsp_w, 4.0 * low.dsp_w, 1e-9);
  const auto slow = estimate_power(paper(), 100.0, 0.4, 0.1);
  const auto fast = estimate_power(paper(), 200.0, 0.4, 0.1);
  EXPECT_NEAR(fast.dsp_w, 2.0 * slow.dsp_w, 1e-9);
}

TEST(PowerModel, TotalPlausibleForU55cClassCard) {
  // Full activity at 200 MHz should land in the tens of watts — far
  // below a 250 W GPU, which is the paper's efficiency argument.
  const PowerBreakdown p = estimate_power(paper(), 200.0, 1.0, 1.0);
  EXPECT_GT(p.total_w, 20.0);
  EXPECT_LT(p.total_w, 120.0);
}

TEST(PowerModel, RejectsBadInputs) {
  EXPECT_THROW(estimate_power(paper(), 200.0, 1.5, 0.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_power(paper(), 200.0, 0.5, -0.1),
               std::invalid_argument);
  EXPECT_THROW(estimate_power(paper(), 0.0, 0.5, 0.1),
               std::invalid_argument);
}

TEST(PowerModel, EnergyIsPowerTimesLatency) {
  const EnergyReport e =
      estimate_energy(paper(), 200.0, 0.4, 0.1, 279.0, 53.0);
  EXPECT_NEAR(e.energy_mj, e.power.total_w * 279.0, 1e-6);
  EXPECT_NEAR(e.gops_per_watt, 53.0 / e.power.total_w, 1e-9);
  EXPECT_THROW(estimate_energy(paper(), 200.0, 0.4, 0.1, 0.0, 53.0),
               std::invalid_argument);
}

TEST(PowerModel, PlatformTdps) {
  EXPECT_DOUBLE_EQ(platform_tdp_watts("NVIDIA Titan XP GPU"), 250.0);
  EXPECT_DOUBLE_EQ(platform_tdp_watts("Jetson TX2 GPU"), 15.0);
  EXPECT_DOUBLE_EQ(platform_tdp_watts("Intel i5-5257U CPU"), 28.0);
  EXPECT_THROW(platform_tdp_watts("abacus"), std::invalid_argument);
}

// --- roofline -----------------------------------------------------------------

TEST(Roofline, PeakComputeFromPeCount) {
  // 3584 PEs x 2 ops x 200 MHz = 1433.6 GOPS.
  EXPECT_NEAR(peak_compute_gops(paper(), 200.0), 1433.6, 0.1);
}

TEST(Roofline, PeakBandwidthScalesWithChannels) {
  SynthParams one = paper();
  one.hbm_channels_used = 1;
  SynthParams eight = paper();
  eight.hbm_channels_used = 8;
  EXPECT_NEAR(peak_bandwidth_gbps(eight, 200.0),
              8.0 * peak_bandwidth_gbps(one, 200.0), 1e-9);
}

TEST(Roofline, BertWorkloadIsComputeBound) {
  // The paper's overlap claim requires the flagship workload to clear
  // the ridge point on 8 HBM channels.
  accel::AccelConfig cfg;
  const auto model = ref::bert_variant();
  const auto report = accel::estimate_performance(cfg, model);
  const auto point = make_roofline_point(
      cfg.synth, report.fmax_mhz, model.name, report.ops,
      report.bytes_loaded, report.latency_ms);
  EXPECT_TRUE(point.compute_bound);
  EXPECT_GT(point.arithmetic_intensity, point.ridge_intensity);
}

TEST(Roofline, SingleChannelTightensTheRoof) {
  accel::AccelConfig cfg;
  cfg.synth.hbm_channels_used = 1;
  const auto model = ref::bert_variant();
  const auto report = accel::estimate_performance(cfg, model);
  const auto point = make_roofline_point(
      cfg.synth, report.fmax_mhz, model.name, report.ops,
      report.bytes_loaded, report.latency_ms);
  // Ridge moves right by 8x; intensity is unchanged.
  EXPECT_GT(point.ridge_intensity,
            make_roofline_point(accel::AccelConfig{}.synth,
                                report.fmax_mhz, model.name, report.ops,
                                report.bytes_loaded, report.latency_ms)
                .ridge_intensity);
}

TEST(Roofline, AchievedNeverExceedsPeak) {
  accel::AccelConfig cfg;
  for (const auto& model : ref::table1_tests()) {
    const auto report = accel::estimate_performance(cfg, model);
    const auto point = make_roofline_point(
        cfg.synth, report.fmax_mhz, model.name, report.ops,
        report.bytes_loaded, report.latency_ms);
    EXPECT_LT(point.achieved_gops, point.peak_compute_gops) << model.name;
  }
}

TEST(Roofline, RejectsDegenerateInputs) {
  EXPECT_THROW(
      make_roofline_point(paper(), 200.0, "x", 100, 0, 1.0),
      std::invalid_argument);
  EXPECT_THROW(
      make_roofline_point(paper(), 200.0, "x", 100, 10, 0.0),
      std::invalid_argument);
  EXPECT_THROW(peak_compute_gops(paper(), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace protea::hw
