// Tests for the baseline subsystem: the measured CPU encoder, the
// published-results database (Tables II/III data) and the sparsity model.
#include <gtest/gtest.h>

#include "baseline/cpu_encoder.hpp"
#include "baseline/published.hpp"
#include "baseline/sparsity.hpp"
#include "ref/encoder.hpp"
#include "ref/model_zoo.hpp"
#include "tensor/ops.hpp"

namespace protea::baseline {
namespace {

ref::ModelConfig small_config() {
  ref::ModelConfig c;
  c.seq_len = 16;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = 2;
  return c;
}

// --- CPU encoder ----------------------------------------------------------------

TEST(CpuEncoder, MatchesReferenceEncoder) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 81);
  const auto x = ref::make_random_input(cfg, 82);
  ref::Encoder reference(w);
  CpuEncoder cpu(w, 2);
  EXPECT_LE(tensor::max_abs_diff(cpu.forward(x), reference.forward(x)),
            2e-4f);
}

TEST(CpuEncoder, MatchesReferenceWithRelu) {
  auto cfg = small_config();
  cfg.activation = ref::Activation::kRelu;
  const auto w = ref::make_random_weights(cfg, 83);
  const auto x = ref::make_random_input(cfg, 84);
  ref::Encoder reference(w);
  CpuEncoder cpu(w, 3);
  EXPECT_LE(tensor::max_abs_diff(cpu.forward(x), reference.forward(x)),
            2e-4f);
}

TEST(CpuEncoder, DeterministicAcrossThreadCounts) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 85);
  const auto x = ref::make_random_input(cfg, 86);
  CpuEncoder one(w, 1);
  CpuEncoder four(w, 4);
  EXPECT_LE(tensor::max_abs_diff(one.forward(x), four.forward(x)), 1e-5f);
}

TEST(CpuEncoder, MeasureReturnsPlausibleStats) {
  const auto cfg = small_config();
  const auto w = ref::make_random_weights(cfg, 87);
  const auto x = ref::make_random_input(cfg, 88);
  CpuEncoder cpu(w, 2);
  const CpuMeasurement m = cpu.measure(x, 3, 1);
  EXPECT_EQ(m.repetitions, 3);
  EXPECT_GT(m.mean_ms, 0.0);
  EXPECT_LE(m.min_ms, m.mean_ms);
  EXPECT_GE(m.max_ms, m.mean_ms);
}

// --- published results -------------------------------------------------------------

TEST(Published, Table2HasFiveComparisons) {
  const auto& rows = table2_results();
  ASSERT_EQ(rows.size(), 5u);
  // Row order follows the paper: [21], [23], [25], [28], [29].
  EXPECT_NE(rows[0].citation.find("[21]"), std::string::npos);
  EXPECT_NE(rows[1].citation.find("[23]"), std::string::npos);
  EXPECT_NE(rows[2].citation.find("[25]"), std::string::npos);
  EXPECT_NE(rows[3].citation.find("[28]"), std::string::npos);
  EXPECT_NE(rows[4].citation.find("[29]"), std::string::npos);
}

TEST(Published, Table2ValuesTranscribedFromPaper) {
  const auto& rows = table2_results();
  EXPECT_DOUBLE_EQ(rows[0].latency_ms, 0.32);   // Peng et al.
  EXPECT_DOUBLE_EQ(rows[0].sparsity, 0.90);
  EXPECT_EQ(rows[2].fpga, "ZCU102");            // EFA-Trans
  EXPECT_EQ(rows[2].method, "HDL");
  EXPECT_DOUBLE_EQ(rows[3].latency_ms, 15.8);   // Qi et al.
  EXPECT_DOUBLE_EQ(rows[4].sparsity, 0.93);     // FTRANS
  EXPECT_EQ(rows[4].dsp, 5647u);
}

TEST(Published, Table2ZooNamesResolve) {
  for (const auto& row : table2_results()) {
    EXPECT_NO_THROW(ref::find_model(row.model_zoo_name)) << row.citation;
  }
}

TEST(Published, Table3HasSixPlatformRows) {
  const auto& rows = table3_results();
  ASSERT_EQ(rows.size(), 6u);
  int bases = 0;
  for (const auto& r : rows) bases += r.is_base ? 1 : 0;
  EXPECT_EQ(bases, 4);  // one base platform per model #1..#4
}

TEST(Published, Table3SpeedupsMatchPaperNarrative) {
  // Model #2: ProTEA 2.5x faster than Titan XP; model #4: 16x.
  for (const auto& r : table3_results()) {
    if (r.model_id == "#2") {
      EXPECT_DOUBLE_EQ(r.paper_speedup, 2.5);
      EXPECT_NEAR(r.latency_ms / r.paper_protea_latency_ms, 2.5, 0.01);
    }
    if (r.model_id == "#4") {
      EXPECT_DOUBLE_EQ(r.paper_speedup, 16.0);
      EXPECT_NEAR(r.latency_ms / r.paper_protea_latency_ms, 16.1, 0.05);
    }
  }
}

TEST(Published, Table3ZooNamesResolve) {
  for (const auto& row : table3_results()) {
    EXPECT_NO_THROW(ref::find_model(row.model_zoo_name)) << row.platform;
  }
}

TEST(Published, ProteaHeadline) {
  const auto p = protea_published();
  EXPECT_EQ(p.dsp, 3612u);
  EXPECT_EQ(p.fpga, "Alveo U55C");
}

// --- sparsity model ----------------------------------------------------------------

TEST(Sparsity, PaperExampleNinetyPercent) {
  // "latency would mathematically be reduced to 0.448 ms (4.48 - 4.48*0.9)"
  EXPECT_NEAR(sparsity_adjusted_latency_ms(4.48, 0.90), 0.448, 1e-12);
}

TEST(Sparsity, PaperExampleNinetyThreePercent) {
  // FTRANS compression: 4.48 ms -> 0.31 ms at 93%.
  EXPECT_NEAR(sparsity_adjusted_latency_ms(4.48, 0.93), 0.3136, 1e-9);
}

TEST(Sparsity, ZeroSparsityIsIdentity) {
  EXPECT_DOUBLE_EQ(sparsity_adjusted_latency_ms(7.0, 0.0), 7.0);
}

TEST(Sparsity, RejectsBadInputs) {
  EXPECT_THROW(sparsity_adjusted_latency_ms(1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(sparsity_adjusted_latency_ms(1.0, -0.1),
               std::invalid_argument);
  EXPECT_THROW(sparsity_adjusted_latency_ms(-1.0, 0.5),
               std::invalid_argument);
}

TEST(Sparsity, SpeedupDirection) {
  // "A is X times faster than B": speedup(A, B) = lat_B / lat_A.
  EXPECT_DOUBLE_EQ(speedup(0.425, 1.062), 1.062 / 0.425);
  EXPECT_NEAR(speedup(0.425, 1.062), 2.5, 0.01);  // Table III model #2
  EXPECT_THROW(speedup(0.0, 1.0), std::invalid_argument);
}

TEST(Sparsity, PaperPengComparison) {
  // With 90% sparsity applied, ProTEA at 0.448 ms would be 1.4x slower
  // than Peng et al.'s 0.32 ms.
  const double protea_sparse = sparsity_adjusted_latency_ms(4.48, 0.90);
  EXPECT_NEAR(protea_sparse / 0.32, 1.4, 0.01);
}

TEST(Sparsity, DenseEquivalentGops) {
  EXPECT_DOUBLE_EQ(dense_equivalent_gops(50.0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(dense_equivalent_gops(50.0, 0.9), 500.0);
  EXPECT_THROW(dense_equivalent_gops(1.0, 1.0), std::invalid_argument);
}

TEST(Sparsity, GopsPerDspMetric) {
  // Table II normalizes GOPS by DSP count, scaled by 1000.
  EXPECT_NEAR(gops_per_dsp_x1000(555.0, 3368), 164.8, 0.1);
  EXPECT_NEAR(gops_per_dsp_x1000(279.0, 1024), 272.5, 0.1);
  EXPECT_THROW(gops_per_dsp_x1000(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace protea::baseline
