// Decode-policy subsystem: the logits pipeline (repetition penalty,
// temperature, top-k, top-p), greedy/sampled TokenStreams plugged into
// the UNCHANGED generation engine + scheduler (stepped == threaded token
// for token, because all policy state is per-request), beam-vs-greedy
// relationships, and the beam cycle model's MAC cross-check against the
// executed engine schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "accel/decoder_accelerator.hpp"
#include "accel/decoder_model.hpp"
#include "ref/weights.hpp"
#include "runtime/decode_policy.hpp"
#include "runtime/generation.hpp"
#include "util/rng.hpp"

namespace protea {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

tensor::MatrixF random_input(size_t rows, size_t cols, uint64_t seed) {
  tensor::MatrixF m(rows, cols);
  util::Xoshiro256 rng(seed);
  for (float& x : m.flat()) {
    x = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return m;
}

struct PolicyFixture {
  ref::ModelConfig cfg;
  accel::AccelConfig acfg;
  accel::QuantizedDecoder qd;
  tensor::MatrixF memory;
  tensor::MatrixF head, embed;
  runtime::VocabModel vocab;

  explicit PolicyFixture(uint32_t seq_len = 16, uint64_t seed = 800,
                         uint32_t vocab_size = 24) {
    cfg.seq_len = seq_len;
    cfg.d_model = 48;
    cfg.num_heads = 4;
    cfg.num_layers = 2;
    cfg.activation = ref::Activation::kGelu;
    const auto weights = ref::make_random_decoder_weights(cfg, seed);
    memory = random_input(6, cfg.d_model, seed + 1);
    const auto calib = random_input(cfg.seq_len, cfg.d_model, seed + 2);
    qd = accel::prepare_decoder(weights, calib, memory);
    util::Xoshiro256 rng(seed + 7);
    head = tensor::MatrixF(vocab_size, cfg.d_model);
    embed = tensor::MatrixF(vocab_size, cfg.d_model);
    for (float& x : head.flat()) x = static_cast<float>(rng.normal());
    for (float& x : embed.flat()) {
      x = static_cast<float>(rng.normal() * 0.5);
    }
    vocab.head = &head;
    vocab.embed = &embed;
  }

  /// Prompt token rows through the embedding table.
  tensor::MatrixF embed_rows(std::span<const uint32_t> tokens) const {
    tensor::MatrixF m(tokens.size(), cfg.d_model);
    for (size_t r = 0; r < tokens.size(); ++r) {
      std::copy(embed.row(tokens[r]).begin(), embed.row(tokens[r]).end(),
                m.row(r).begin());
    }
    return m;
  }
};

// --- LogitsProcessor ---------------------------------------------------------

TEST(LogitsProcessor, TemperatureScalesWithoutReordering) {
  runtime::DecodePolicy p;
  p.temperature = 0.5f;
  runtime::LogitsProcessor proc(p, 4);
  std::vector<float> logits = {1.0f, -2.0f, 3.0f, 0.5f};
  proc.process(logits, {});
  EXPECT_FLOAT_EQ(logits[0], 2.0f);
  EXPECT_FLOAT_EQ(logits[1], -4.0f);
  EXPECT_FLOAT_EQ(logits[2], 6.0f);
  EXPECT_FLOAT_EQ(logits[3], 1.0f);
}

TEST(LogitsProcessor, TopKMasksEverythingBelowTheKthLogit) {
  runtime::DecodePolicy p;
  p.top_k = 2;
  runtime::LogitsProcessor proc(p, 5);
  std::vector<float> logits = {0.1f, 2.0f, -1.0f, 1.5f, 0.0f};
  proc.process(logits, {});
  EXPECT_FLOAT_EQ(logits[1], 2.0f);
  EXPECT_FLOAT_EQ(logits[3], 1.5f);
  EXPECT_EQ(logits[0], -kInf);
  EXPECT_EQ(logits[2], -kInf);
  EXPECT_EQ(logits[4], -kInf);
}

TEST(LogitsProcessor, TopPKeepsTheSmallestSufficientNucleus) {
  runtime::DecodePolicy p;
  p.top_p = 0.6f;
  runtime::LogitsProcessor proc(p, 4);
  // Probabilities ~ [0.643, 0.236, 0.087, 0.032]: the top-1 mass 0.643
  // already reaches 0.6, so only the argmax survives.
  std::vector<float> logits = {2.0f, 1.0f, 0.0f, -1.0f};
  proc.process(logits, {});
  EXPECT_FLOAT_EQ(logits[0], 2.0f);
  EXPECT_EQ(logits[1], -kInf);
  EXPECT_EQ(logits[2], -kInf);
  EXPECT_EQ(logits[3], -kInf);

  // p = 0.85 needs the top two (0.643 + 0.236 = 0.879).
  runtime::DecodePolicy p2;
  p2.top_p = 0.85f;
  runtime::LogitsProcessor proc2(p2, 4);
  std::vector<float> logits2 = {2.0f, 1.0f, 0.0f, -1.0f};
  proc2.process(logits2, {});
  EXPECT_FLOAT_EQ(logits2[0], 2.0f);
  EXPECT_FLOAT_EQ(logits2[1], 1.0f);
  EXPECT_EQ(logits2[2], -kInf);
  EXPECT_EQ(logits2[3], -kInf);
}

TEST(LogitsProcessor, RepetitionPenaltyDemotesHistoryOncePerToken) {
  runtime::DecodePolicy p;
  p.repetition_penalty = 2.0f;
  runtime::LogitsProcessor proc(p, 4);
  std::vector<float> logits = {2.0f, -1.0f, 0.5f, 1.0f};
  // Token 0 appears twice in history: the penalty must apply once.
  const std::vector<uint32_t> history = {0, 1, 0};
  proc.process(logits, history);
  EXPECT_FLOAT_EQ(logits[0], 1.0f);   // positive: divided once
  EXPECT_FLOAT_EQ(logits[1], -2.0f);  // negative: multiplied (demoted)
  EXPECT_FLOAT_EQ(logits[2], 0.5f);   // untouched
  EXPECT_FLOAT_EQ(logits[3], 1.0f);
}

TEST(LogitsProcessor, ValidatesPolicyAndInputs) {
  runtime::DecodePolicy bad;
  bad.temperature = 0.0f;
  EXPECT_THROW(runtime::LogitsProcessor(bad, 4), std::invalid_argument);
  bad = runtime::DecodePolicy{};
  bad.top_p = 0.0f;
  EXPECT_THROW(runtime::LogitsProcessor(bad, 4), std::invalid_argument);
  bad = runtime::DecodePolicy{};
  bad.top_k = 5;
  EXPECT_THROW(runtime::LogitsProcessor(bad, 4), std::invalid_argument);
  bad = runtime::DecodePolicy{};
  bad.eos_token = 4;
  EXPECT_THROW(runtime::LogitsProcessor(bad, 4), std::invalid_argument);

  runtime::LogitsProcessor proc(runtime::DecodePolicy{}, 4);
  std::vector<float> wrong(3);
  EXPECT_THROW(proc.process(wrong, {}), std::invalid_argument);
}

TEST(DecodePolicyHelpers, ArgmaxTiesGoToTheLowestIndex) {
  const std::vector<float> logits = {1.0f, 3.0f, 3.0f, 0.0f};
  EXPECT_EQ(runtime::argmax_logit(logits), 1u);
}

TEST(DecodePolicyHelpers, LogSoftmaxNormalizesAndKeepsMasks) {
  std::vector<float> logits = {1.0f, 2.0f, -kInf};
  runtime::log_softmax_inplace(logits);
  EXPECT_EQ(logits[2], -kInf);
  const double total = std::exp(static_cast<double>(logits[0])) +
                       std::exp(static_cast<double>(logits[1]));
  EXPECT_NEAR(total, 1.0, 1e-6);  // float logits bound the precision
  EXPECT_LT(logits[0], logits[1]);
}

// --- TokenStream -------------------------------------------------------------

TEST(TokenStream, GreedyEmitsEosAndStops) {
  // Identity-ish head: logits = state, so a one-hot state forces the
  // argmax. Token 2 is EOS.
  tensor::MatrixF head(4, 4, 0.0f), embed(4, 4, 0.0f);
  for (size_t v = 0; v < 4; ++v) head(v, v) = 1.0f;
  runtime::VocabModel vocab{&head, &embed};
  runtime::DecodePolicy p;
  p.eos_token = 2;
  runtime::TokenStream stream(p, vocab, 8);
  stream.reset();

  tensor::MatrixF next;
  const std::vector<float> pick1 = {0.0f, 9.0f, 0.0f, 0.0f};
  EXPECT_TRUE(stream.next_token(pick1, next));
  const std::vector<float> pick_eos = {0.0f, 0.0f, 9.0f, 0.0f};
  EXPECT_FALSE(stream.next_token(pick_eos, next));
  EXPECT_EQ(stream.tokens(), (std::vector<uint32_t>{1, 2}));
}

TEST(TokenStream, SamplingIsSeedDeterministicAndTopK1IsGreedy) {
  PolicyFixture fx;
  runtime::DecodePolicy sampled;
  sampled.sample = true;
  sampled.temperature = 0.8f;
  sampled.top_k = 8;
  sampled.seed = 42;

  const auto run_stream = [&](const runtime::DecodePolicy& p) {
    runtime::TokenStream stream(p, fx.vocab, 16);
    const std::vector<uint32_t> prompt = {1, 2};
    stream.reset(prompt);
    runtime::GenerationSession session(fx.acfg, fx.qd);
    tensor::MatrixF states, state, next;
    session.prefill(fx.embed_rows(prompt), fx.memory, states);
    bool more = stream.next_token(states.row(states.rows() - 1), next);
    for (int t = 0; t < 6 && more; ++t) {
      session.decode_step(next, state);
      more = stream.next_token(state.row(0), next);
    }
    return stream.tokens();
  };

  const auto a = run_stream(sampled);
  const auto b = run_stream(sampled);
  EXPECT_EQ(a, b) << "same seed must reproduce the same stream";

  runtime::DecodePolicy other = sampled;
  other.seed = 43;
  // Different seeds *may* coincide but should not on this fixture.
  EXPECT_NE(run_stream(other), a);

  // A 1-token nucleus degenerates to greedy.
  runtime::DecodePolicy k1 = sampled;
  k1.top_k = 1;
  runtime::DecodePolicy greedy;
  greedy.temperature = sampled.temperature;
  greedy.top_k = 1;
  EXPECT_EQ(run_stream(k1), run_stream(greedy));
}

TEST(TokenStream, SchedulerSteppedAndThreadedEmitIdenticalStreams) {
  // Sampling policies ride the UNCHANGED scheduler through the
  // next_token callback; per-request RNG + history make the streams
  // invariant to slots/threads/chunking.
  PolicyFixture fx;
  runtime::GenerationScheduler scheduler(fx.acfg, fx.qd);

  const size_t n_req = 5;
  std::vector<std::vector<uint32_t>> prompts;
  for (size_t i = 0; i < n_req; ++i) {
    prompts.push_back({static_cast<uint32_t>(i),
                       static_cast<uint32_t>((i * 7 + 3) % 24)});
  }

  const auto run_mode = [&](size_t threads, size_t prefill_chunk) {
    std::vector<std::unique_ptr<runtime::TokenStream>> streams;
    std::vector<runtime::GenerationRequest> requests;
    for (size_t i = 0; i < n_req; ++i) {
      runtime::DecodePolicy p;
      p.sample = true;
      p.temperature = 0.9f;
      p.top_k = 6;
      p.repetition_penalty = 1.3f;
      p.seed = 1000 + i;
      streams.push_back(std::make_unique<runtime::TokenStream>(
          p, fx.vocab, 16));
      streams.back()->reset(prompts[i]);
      runtime::GenerationRequest req;
      req.prefix = fx.embed_rows(prompts[i]);
      req.memory = &fx.memory;
      req.max_new_tokens = 5;
      req.next_token = streams.back()->callback();
      requests.push_back(std::move(req));
    }
    runtime::GenerationSchedulerOptions opts;
    opts.slots = 3;
    opts.threads = threads;
    opts.prefill_chunk = prefill_chunk;
    opts.kv_block_rows = 4;
    scheduler.run(requests, opts);
    std::vector<std::vector<uint32_t>> tokens;
    for (auto& s : streams) tokens.push_back(s->tokens());
    return tokens;
  };

  const auto stepped = run_mode(1, 0);
  const auto threaded = run_mode(3, 0);
  const auto chunked = run_mode(1, 1);
  EXPECT_EQ(stepped, threaded);
  EXPECT_EQ(stepped, chunked);
}

// --- beam search relationships ----------------------------------------------

TEST(BeamSearch, WidthOneWithNeutralShapingIsGreedy) {
  PolicyFixture fx;
  const std::vector<uint32_t> prompt = {4, 9};
  const uint32_t max_new = 7;

  runtime::BeamSearchOptions opts;
  opts.beam_width = 1;
  opts.max_new_tokens = max_new;
  opts.length_penalty = 0.0f;
  opts.kv_block_rows = 4;
  runtime::BeamSearchDecoder beam(fx.acfg, fx.qd, fx.vocab, opts);
  const auto hyps = beam.generate(prompt, fx.memory);
  ASSERT_EQ(hyps.size(), 1u);

  runtime::TokenStream greedy(runtime::DecodePolicy{}, fx.vocab, 16);
  greedy.reset(prompt);
  runtime::GenerationSession session(fx.acfg, fx.qd);
  tensor::MatrixF states, state, next;
  session.prefill(fx.embed_rows(prompt), fx.memory, states);
  greedy.next_token(states.row(states.rows() - 1), next);
  for (uint32_t t = 1; t < max_new; ++t) {
    session.decode_step(next, state);
    greedy.next_token(state.row(0), next);
  }
  EXPECT_EQ(hyps[0].tokens, greedy.tokens());
  EXPECT_FALSE(hyps[0].finished);
}

TEST(BeamSearch, WiderBeamNeverScoresBelowGreedyOnThisFixture) {
  PolicyFixture fx(16, 810);
  const std::vector<uint32_t> prompt = {2, 11, 7};

  runtime::BeamSearchOptions base;
  base.beam_width = 1;
  base.max_new_tokens = 8;
  base.length_penalty = 0.0f;
  base.kv_block_rows = 4;
  runtime::BeamSearchDecoder greedy(fx.acfg, fx.qd, fx.vocab, base);
  const auto g = greedy.generate(prompt, fx.memory);

  runtime::BeamSearchOptions wide = base;
  wide.beam_width = 4;
  runtime::BeamSearchDecoder beam(fx.acfg, fx.qd, fx.vocab, wide);
  const auto b = beam.generate(prompt, fx.memory);

  ASSERT_FALSE(g.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_GE(b[0].sum_logprob, g[0].sum_logprob - 1e-12);
  // Hypotheses come back best-first.
  for (size_t i = 1; i < b.size(); ++i) {
    EXPECT_LE(b[i].score, b[i - 1].score);
  }
}

TEST(BeamSearch, LengthPenaltyPrefersLongerFinishes) {
  // Pure scoring check: sum / ((5+len)/6)^alpha grows milder with alpha.
  runtime::BeamSearchOptions opts;
  const double sum = -10.0;
  const auto norm = [](double alpha, size_t len) {
    return std::pow((5.0 + static_cast<double>(len)) / 6.0, alpha);
  };
  EXPECT_GT(sum / norm(0.6, 8), sum / norm(0.0, 8));  // less negative
  EXPECT_GT(norm(0.6, 8), norm(0.6, 2));
}

TEST(BeamSearch, ValidatesOptionsAndPrompt) {
  PolicyFixture fx;
  runtime::BeamSearchOptions opts;
  opts.beam_width = 0;
  EXPECT_THROW(
      runtime::BeamSearchDecoder(fx.acfg, fx.qd, fx.vocab, opts),
      std::invalid_argument);
  opts = runtime::BeamSearchOptions{};
  opts.kv_block_rows = 0;  // COW needs paging
  EXPECT_THROW(
      runtime::BeamSearchDecoder(fx.acfg, fx.qd, fx.vocab, opts),
      std::invalid_argument);
  opts = runtime::BeamSearchOptions{};
  opts.beam_width = 25;  // > vocab
  EXPECT_THROW(
      runtime::BeamSearchDecoder(fx.acfg, fx.qd, fx.vocab, opts),
      std::invalid_argument);

  opts = runtime::BeamSearchOptions{};
  opts.beam_width = 2;
  opts.max_new_tokens = 4;
  runtime::BeamSearchDecoder dec(fx.acfg, fx.qd, fx.vocab, opts);
  EXPECT_THROW(dec.generate({}, fx.memory), std::invalid_argument);
  const std::vector<uint32_t> oob = {99};
  EXPECT_THROW(dec.generate(oob, fx.memory), std::invalid_argument);
  const std::vector<uint32_t> prompt(fx.cfg.seq_len, 1);
  // prompt + max_new > seq_len + 1 cannot be cached.
  EXPECT_THROW(dec.generate(prompt, fx.memory), std::invalid_argument);
}

TEST(BeamSearch, GroupPreemptRestoreIsBitIdentical) {
  PolicyFixture fx(16, 820);
  const std::vector<uint32_t> prompt = {3, 12, 6};
  // K+V bytes per cached row across the stack: layers x heads x 2 x head_dim.
  const size_t row_bytes = 2 * 4 * 2 * 12;

  for (const bool cow : {true, false}) {
    runtime::BeamSearchOptions opts;
    opts.beam_width = 3;
    opts.max_new_tokens = 6;
    opts.kv_block_rows = 4;
    opts.cow = cow;
    runtime::BeamSearchDecoder ref(fx.acfg, fx.qd, fx.vocab, opts);
    const auto want = ref.generate(prompt, fx.memory);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(ref.last_run().group_preemptions, 0u);

    // Same run against a shared pool, preempted once mid-decode: the
    // whole group (blocks AND admission credit) drains back to the pool,
    // then restores via re-prefill + re-fork + per-beam replay.
    const size_t worst = runtime::beam_worst_case_blocks(
        prompt.size(), opts.max_new_tokens, opts.beam_width,
        opts.kv_block_rows, cow);
    runtime::KvBlockPool pool;
    pool.configure(worst + 2, opts.kv_block_rows, row_bytes);
    opts.kv_pool = &pool;
    bool fired = false;
    uint32_t drained_checks = 0;
    opts.preempt_point = [&fired](uint32_t generated) {
      if (generated == 2 && !fired) {
        fired = true;
        return true;
      }
      return false;
    };
    opts.on_preempted = [&pool, &drained_checks] {
      EXPECT_EQ(pool.used_blocks(), 0u);
      ++drained_checks;
    };
    runtime::BeamSearchDecoder dec(fx.acfg, fx.qd, fx.vocab, opts);
    const auto got = dec.generate(prompt, fx.memory);

    EXPECT_EQ(drained_checks, 1u) << "cow=" << cow;
    EXPECT_EQ(dec.last_run().group_preemptions, 1u) << "cow=" << cow;
    EXPECT_GT(dec.last_run().replayed_rows, 0u) << "cow=" << cow;
    ASSERT_EQ(got.size(), want.size()) << "cow=" << cow;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].tokens, want[i].tokens) << "cow=" << cow << " i=" << i;
      EXPECT_EQ(got[i].sum_logprob, want[i].sum_logprob)
          << "cow=" << cow << " i=" << i;
      EXPECT_EQ(got[i].score, want[i].score) << "cow=" << cow << " i=" << i;
      EXPECT_EQ(got[i].finished, want[i].finished)
          << "cow=" << cow << " i=" << i;
    }
  }
}

// --- cycle-model cross-checks ------------------------------------------------

TEST(BeamPerfModel, EstimatedMacsMatchTheExecutedSchedule) {
  PolicyFixture fx;
  const std::vector<uint32_t> prompt = {5, 3, 8};
  const uint32_t max_new = 6;
  const uint32_t beam_width = 4;

  runtime::BeamSearchOptions opts;
  opts.beam_width = beam_width;
  opts.max_new_tokens = max_new;
  opts.kv_block_rows = 4;
  runtime::BeamSearchDecoder dec(fx.acfg, fx.qd, fx.vocab, opts);
  (void)dec.generate(prompt, fx.memory);

  const auto estimate = accel::estimate_beam_generation_performance(
      fx.acfg, fx.cfg, static_cast<uint32_t>(prompt.size()),
      static_cast<uint32_t>(prompt.size()) + max_new, fx.memory.rows(),
      beam_width);
  EXPECT_EQ(dec.last_run().macs, estimate.macs)
      << "the cycle model must mirror the executed fork/step schedule";
  EXPECT_EQ(dec.last_run().decode_steps,
            uint64_t{beam_width} * (max_new - 1));

  // Beam cost scales with K on the step side only: prefill is shared.
  const auto k1 = accel::estimate_beam_generation_performance(
      fx.acfg, fx.cfg, 3, 3 + max_new, fx.memory.rows(), 1);
  const auto gen = accel::estimate_generation_performance(
      fx.acfg, fx.cfg, 3, 3 + max_new - 1, fx.memory.rows());
  EXPECT_EQ(k1.macs, gen.macs);  // K=1 == plain generation (same steps)
  EXPECT_THROW(accel::estimate_beam_generation_performance(
                   fx.acfg, fx.cfg, 0, 4, 8, 2),
               std::invalid_argument);
}

TEST(ForkedKvFootprint, ModelsSharedVsPrivateBlocksAndSavings) {
  ref::ModelConfig m;
  m.seq_len = 64;
  m.d_model = 768;
  m.num_heads = 8;
  m.num_layers = 6;
  const auto fp = accel::estimate_forked_kv_footprint(m, /*prompt=*/24,
                                                      /*new_rows=*/8,
                                                      /*beams=*/4,
                                                      /*block_rows=*/8);
  EXPECT_EQ(fp.row_bytes, uint64_t{6} * 8 * 2 * 96);
  EXPECT_EQ(fp.shared_blocks, 3u);   // ceil(24 / 8)
  EXPECT_EQ(fp.private_blocks, 1u);  // ceil(32 / 8) - 24 / 8
  const uint64_t block_bytes = 8 * fp.row_bytes;
  EXPECT_EQ(fp.cow_bytes, (3 + 4 * 1) * block_bytes);
  EXPECT_EQ(fp.eager_bytes, uint64_t{4} * 4 * block_bytes);
  EXPECT_EQ(fp.bytes_saved, fp.eager_bytes - fp.cow_bytes);
  EXPECT_GT(fp.bytes_saved, 0u);

  // A mid-block fork point charges each beam the straddling block too.
  const auto straddle = accel::estimate_forked_kv_footprint(m, 20, 8, 4, 8);
  EXPECT_EQ(straddle.shared_blocks, 3u);
  EXPECT_EQ(straddle.private_blocks, 2u);

  EXPECT_THROW(accel::estimate_forked_kv_footprint(m, 0, 8, 4, 8),
               std::invalid_argument);
  EXPECT_THROW(accel::estimate_forked_kv_footprint(m, 60, 8, 4, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace protea
