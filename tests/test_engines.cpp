// Tests for the ProTEA computation engines: functional correctness of the
// quantized datapath against the float reference, tiling invariance, the
// softmax LUT unit and the LayerNorm unit.
#include <gtest/gtest.h>

#include <cmath>

#include "accel/engines.hpp"
#include "accel/layernorm_unit.hpp"
#include "accel/quant_calib.hpp"
#include "accel/quantized_model.hpp"
#include "accel/softmax_unit.hpp"
#include "numeric/quantizer.hpp"
#include "ref/encoder.hpp"
#include "ref/weights.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace protea::accel {
namespace {

using numeric::Quantizer;
using tensor::MatrixF;
using tensor::MatrixI8;

ref::ModelConfig tiny_config() {
  ref::ModelConfig c;
  c.seq_len = 8;
  c.d_model = 32;
  c.num_heads = 4;
  c.num_layers = 1;
  return c;
}

/// Environment shared by engine tests: a tiny quantized layer plus the
/// float reference trace it must reproduce.
struct LayerFixture {
  ref::ModelConfig config;
  ref::EncoderWeights weights;
  MatrixF input;
  std::vector<ref::LayerTrace> ref_traces;
  QuantizedModel qmodel;
  MatrixI8 x_q;

  explicit LayerFixture(ref::ModelConfig cfg = tiny_config(),
                        uint64_t seed = 100)
      : config(cfg),
        weights(ref::make_random_weights(cfg, seed)),
        input(ref::make_random_input(cfg, seed + 1)) {
    ref::Encoder encoder(weights);
    encoder.forward_traced(input, ref_traces);
    qmodel = quantize_model(weights, calibrate_scales(encoder, input));
    Quantizer q(8, true);
    q.set_scale(qmodel.layers[0].scales.x);
    x_q = MatrixI8(input.rows(), input.cols());
    q.quantize(input.flat(), x_q.flat());
  }
};

MatrixF dequant(const MatrixI8& m, double scale) {
  MatrixF out(m.rows(), m.cols());
  for (size_t i = 0; i < m.size(); ++i) {
    out.flat()[i] = static_cast<float>(m.flat()[i] * scale);
  }
  return out;
}

// --- QKV engine -----------------------------------------------------------------

TEST(QkvEngine, MatchesFloatReferenceWithinQuantError) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  for (size_t head = 0; head < fx.config.num_heads; ++head) {
    MatrixI8 q, k, v;
    run_qkv_engine(fx.x_q, layer.heads[head], 16, layer.rq_q, layer.rq_k,
                   layer.rq_v, q, k, v);
    const auto& ref_q = fx.ref_traces[0].q[head];
    // Tolerance: a few int8 steps of accumulated quantization noise.
    EXPECT_LE(tensor::max_abs_diff(dequant(q, layer.scales.q), ref_q),
              6 * static_cast<float>(layer.scales.q))
        << "head " << head;
  }
}

TEST(QkvEngine, TilingInvariance) {
  // Fig. 5's accumulate-across-tiles must give identical results for any
  // tile width, including non-dividing ones.
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 q0, k0, v0;
  run_qkv_engine(fx.x_q, layer.heads[0], 32, layer.rq_q, layer.rq_k,
                 layer.rq_v, q0, k0, v0);
  for (uint32_t ts : {1u, 5u, 8u, 16u, 31u, 64u}) {
    MatrixI8 q, k, v;
    run_qkv_engine(fx.x_q, layer.heads[0], ts, layer.rq_q, layer.rq_k,
                   layer.rq_v, q, k, v);
    EXPECT_EQ(q, q0) << "ts=" << ts;
    EXPECT_EQ(k, k0) << "ts=" << ts;
    EXPECT_EQ(v, v0) << "ts=" << ts;
  }
}

TEST(QkvEngine, CountsMacs) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  EngineStats stats;
  MatrixI8 q, k, v;
  run_qkv_engine(fx.x_q, layer.heads[0], 16, layer.rq_q, layer.rq_k,
                 layer.rq_v, q, k, v, &stats);
  // 3 projections x SL x d x dk.
  EXPECT_EQ(stats.macs, 3ull * 8 * 32 * 8);
}

TEST(QkvEngine, RejectsBadShapes) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 q, k, v;
  MatrixI8 bad_x(8, 16);  // wrong width
  EXPECT_THROW(run_qkv_engine(bad_x, layer.heads[0], 16, layer.rq_q,
                              layer.rq_k, layer.rq_v, q, k, v),
               std::invalid_argument);
  EXPECT_THROW(run_qkv_engine(fx.x_q, layer.heads[0], 0, layer.rq_q,
                              layer.rq_k, layer.rq_v, q, k, v),
               std::invalid_argument);
}

// --- QK engine -------------------------------------------------------------------

TEST(QkEngine, MatchesFloatLogitsWithinQuantError) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 q, k, v, logits;
  run_qkv_engine(fx.x_q, layer.heads[0], 16, layer.rq_q, layer.rq_k,
                 layer.rq_v, q, k, v);
  run_qk_engine(q, k, layer.rq_logit, logits);
  // Reconstruct float logits from the reference trace: scaled Q.K^T.
  const auto& tq = fx.ref_traces[0].q[0];
  const auto& tk = fx.ref_traces[0].k[0];
  MatrixF ref_logits = tensor::matmul_bt(tq, tk);
  tensor::scale_inplace(ref_logits,
                        1.0f / std::sqrt(static_cast<float>(8)));
  EXPECT_LE(tensor::max_abs_diff(dequant(logits, layer.scales.logit),
                                 ref_logits),
            8 * static_cast<float>(layer.scales.logit));
}

TEST(QkEngine, RejectsMismatchedHeads) {
  MatrixI8 q(4, 8), k(4, 16), out;
  numeric::RequantParams rq;
  EXPECT_THROW(run_qk_engine(q, k, rq, out), std::invalid_argument);
}

// --- softmax unit -----------------------------------------------------------------

TEST(SoftmaxUnit, RowsSumToApproximately127) {
  SoftmaxUnit unit(0.0625);
  util::Xoshiro256 rng(3);
  MatrixI8 logits(6, 16);
  for (auto& v : logits.flat()) {
    v = static_cast<int8_t>(rng.bounded(255)) ;
  }
  const MatrixI8 w = unit.run(logits);
  for (size_t r = 0; r < w.rows(); ++r) {
    int sum = 0;
    for (int8_t v : w.row(r)) {
      EXPECT_GE(v, 0);
      sum += v;
    }
    // Rounding each entry individually keeps the sum within one step per
    // element of the exact 127.
    EXPECT_NEAR(sum, 127, 8);
  }
}

TEST(SoftmaxUnit, MatchesFloatSoftmax) {
  const double scale = 0.0625;
  SoftmaxUnit unit(scale);
  MatrixI8 logits = MatrixI8::from_rows(1, 4, {0, 32, -64, 16});
  const MatrixI8 w = unit.run(logits);
  MatrixF ref = MatrixF::from_rows(
      1, 4,
      {0.0f, 32 * static_cast<float>(scale), -64 * static_cast<float>(scale),
       16 * static_cast<float>(scale)});
  tensor::softmax_rows_inplace(ref);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(w(0, c) / 127.0, ref(0, c), 0.02) << c;
  }
}

TEST(SoftmaxUnit, MaxElementGetsLargestWeight) {
  SoftmaxUnit unit(0.02);
  MatrixI8 logits = MatrixI8::from_rows(1, 4, {10, 100, -50, 0});
  const MatrixI8 w = unit.run(logits);
  EXPECT_GT(w(0, 1), w(0, 0));
  EXPECT_GT(w(0, 0), w(0, 2));
}

TEST(SoftmaxUnit, UniformLogitsGiveUniformWeights) {
  SoftmaxUnit unit(0.05);
  MatrixI8 logits(2, 8, 42);
  const MatrixI8 w = unit.run(logits);
  for (size_t c = 1; c < 8; ++c) EXPECT_EQ(w(0, c), w(0, 0));
  EXPECT_NEAR(w(0, 0), 127 / 8, 1);
}

TEST(SoftmaxUnit, TableIsMonotoneDecreasing) {
  SoftmaxUnit unit(0.03);
  for (uint32_t d = 1; d < 256; ++d) {
    EXPECT_LE(unit.table_entry(d), unit.table_entry(d - 1));
  }
  EXPECT_EQ(unit.table_entry(0), 65536u);
}

TEST(SoftmaxUnit, RejectsBadScale) {
  EXPECT_THROW(SoftmaxUnit(0.0), std::invalid_argument);
  EXPECT_THROW(SoftmaxUnit(-1.0), std::invalid_argument);
}

// --- SV engine -------------------------------------------------------------------

TEST(SvEngine, MatchesFloatReference) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 q, k, v, logits, scores;
  run_qkv_engine(fx.x_q, layer.heads[0], 16, layer.rq_q, layer.rq_k,
                 layer.rq_v, q, k, v);
  run_qk_engine(q, k, layer.rq_logit, logits);
  const SoftmaxUnit softmax(layer.scales.logit);
  const MatrixI8 weights = softmax.run(logits);
  run_sv_engine(weights, v, layer.rq_sv, scores);
  EXPECT_LE(tensor::max_abs_diff(dequant(scores, layer.scales.sv),
                                 fx.ref_traces[0].attn_scores[0]),
            10 * static_cast<float>(layer.scales.sv));
}

TEST(SvEngine, RejectsShapeMismatch) {
  MatrixI8 w(4, 8), v(7, 8), out;
  numeric::RequantParams rq;
  EXPECT_THROW(run_sv_engine(w, v, rq, out), std::invalid_argument);
}

// --- FFN engine -------------------------------------------------------------------

TEST(FfnEngine, TilingInvariance) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 base;
  run_ffn_engine(fx.x_q, layer.wo, layer.bo, 32, layer.rq_proj,
                 FfnActivation::kNone, 0.0, base);
  for (uint32_t ts : {1u, 3u, 8u, 17u, 64u}) {
    MatrixI8 out;
    run_ffn_engine(fx.x_q, layer.wo, layer.bo, ts, layer.rq_proj,
                   FfnActivation::kNone, 0.0, out);
    EXPECT_EQ(out, base) << "ts=" << ts;
  }
}

TEST(FfnEngine, ReluZeroesNegatives) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  MatrixI8 out;
  run_ffn_engine(fx.x_q, layer.w1, layer.b1, 16, layer.rq_hidden,
                 FfnActivation::kRelu, 0.0, out);
  for (int8_t v : out.flat()) EXPECT_GE(v, 0);
}

TEST(FfnEngine, GeluLutNearFloatGelu) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  const double s = layer.scales.hidden;
  MatrixI8 with_gelu, without;
  run_ffn_engine(fx.x_q, layer.w1, layer.b1, 16, layer.rq_hidden,
                 FfnActivation::kGeluLut, s, with_gelu);
  run_ffn_engine(fx.x_q, layer.w1, layer.b1, 16, layer.rq_hidden,
                 FfnActivation::kNone, 0.0, without);
  for (size_t i = 0; i < with_gelu.size(); ++i) {
    const double x = without.flat()[i] * s;
    const double gelu =
        0.5 * x *
        (1.0 + std::tanh(0.7978845608 * (x + 0.044715 * x * x * x)));
    EXPECT_NEAR(with_gelu.flat()[i] * s, gelu, 1.5 * s) << i;
  }
}

TEST(FfnEngine, MatchesFloatProjection) {
  LayerFixture fx;
  const QLayer& layer = fx.qmodel.layers[0];
  // Quantize the reference concat input, push it through FFN1 and compare
  // against the float projection.
  Quantizer q(8, true);
  q.set_scale(layer.scales.sv);
  const auto& concat_f = fx.ref_traces[0].concat;
  MatrixI8 concat_q(concat_f.rows(), concat_f.cols());
  q.quantize(concat_f.flat(), concat_q.flat());
  MatrixI8 proj_q;
  run_ffn_engine(concat_q, layer.wo, layer.bo, 16, layer.rq_proj,
                 FfnActivation::kNone, 0.0, proj_q);
  EXPECT_LE(tensor::max_abs_diff(dequant(proj_q, layer.scales.proj),
                                 fx.ref_traces[0].proj),
            10 * static_cast<float>(layer.scales.proj));
}

TEST(FfnEngine, ValidatesInputs) {
  MatrixI8 in(2, 4), w(5, 4), out;  // w.rows != in.cols
  std::vector<int32_t> bias(4, 0);
  numeric::RequantParams rq;
  EXPECT_THROW(run_ffn_engine(in, w, bias, 2, rq, FfnActivation::kNone,
                              0.0, out),
               std::invalid_argument);
  MatrixI8 w2(4, 4);
  std::vector<int32_t> bad_bias(3, 0);
  EXPECT_THROW(run_ffn_engine(in, w2, bad_bias, 2, rq,
                              FfnActivation::kNone, 0.0, out),
               std::invalid_argument);
  EXPECT_THROW(run_ffn_engine(in, w2, bias, 0, rq, FfnActivation::kNone,
                              0.0, out),
               std::invalid_argument);
}

// --- LayerNorm unit ----------------------------------------------------------------

TEST(LayerNormUnit, MatchesFloatLayerNorm) {
  const size_t cols = 32;
  std::vector<float> gamma(cols, 1.0f), beta(cols, 0.0f);
  LayerNormUnit unit(gamma, beta);

  util::Xoshiro256 rng(55);
  MatrixI8 x(4, cols), r(4, cols);
  for (auto& v : x.flat()) v = static_cast<int8_t>(rng.bounded(255)) ;
  for (auto& v : r.flat()) v = static_cast<int8_t>(rng.bounded(255)) ;
  const double s_x = 1.0 / 32, s_r = 1.0 / 16, s_out = 1.0 / 32;

  const MatrixI8 out = unit.run(x, s_x, r, s_r, s_out);

  // Float reference of the same fused residual + LN.
  MatrixF z(4, cols);
  for (size_t i = 0; i < z.size(); ++i) {
    z.flat()[i] = static_cast<float>(x.flat()[i] * s_x + r.flat()[i] * s_r);
  }
  tensor::layer_norm_rows_inplace(z, gamma, beta);
  EXPECT_LE(tensor::max_abs_diff(dequant(out, s_out), z),
            static_cast<float>(s_out) * 1.5f);
}

TEST(LayerNormUnit, AppliesGammaBeta) {
  const size_t cols = 16;
  std::vector<float> gamma(cols, 2.0f), beta(cols, 1.0f);
  LayerNormUnit unit(gamma, beta);
  MatrixI8 x(1, cols), r(1, cols, 0);
  for (size_t c = 0; c < cols; ++c) {
    x(0, c) = static_cast<int8_t>(c * 4);
  }
  const MatrixI8 out = unit.run(x, 1.0 / 32, r, 1.0 / 32, 1.0 / 16);
  // Mean of the output should be ~beta (=1) in real units.
  double mean = 0.0;
  for (int8_t v : out.flat()) mean += v / 16.0;
  mean /= cols;
  EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(LayerNormUnit, RejectsNonPow2ScaleRatio) {
  std::vector<float> gamma(8, 1.0f), beta(8, 0.0f);
  LayerNormUnit unit(gamma, beta);
  MatrixI8 x(1, 8), r(1, 8);
  EXPECT_THROW(unit.run(x, 0.03, r, 0.01, 0.03), std::invalid_argument);
}

TEST(LayerNormUnit, RejectsShapeMismatch) {
  std::vector<float> gamma(8, 1.0f), beta(8, 0.0f);
  LayerNormUnit unit(gamma, beta);
  MatrixI8 x(1, 8), r(2, 8);
  EXPECT_THROW(unit.run(x, 0.5, r, 0.5, 0.5), std::invalid_argument);
  MatrixI8 narrow(1, 4);
  EXPECT_THROW(unit.run(narrow, 0.5, narrow, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW(LayerNormUnit({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace protea::accel
