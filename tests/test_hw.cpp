// Tests for the hardware substrate: cycle accounting, devices, BRAM
// banking, AXI/HBM transfer models, resource model (pinned to the paper's
// Table I utilization) and the frequency/II model (paper Fig. 7).
#include <gtest/gtest.h>

#include "hw/axi.hpp"
#include "hw/bram.hpp"
#include "hw/clock.hpp"
#include "hw/device.hpp"
#include "hw/frequency_model.hpp"
#include "hw/hbm.hpp"
#include "hw/pe_array.hpp"
#include "hw/resource_model.hpp"
#include "hw/synth_params.hpp"

namespace protea::hw {
namespace {

// --- clock helpers ----------------------------------------------------------

TEST(Clock, PipelinedLoopFormula) {
  EXPECT_EQ(pipelined_loop(0), 0u);
  EXPECT_EQ(pipelined_loop(1, 1, 1), 1u);
  EXPECT_EQ(pipelined_loop(10, 1, 1), 10u);
  EXPECT_EQ(pipelined_loop(10, 1, 5), 14u);   // depth + (trips-1)
  EXPECT_EQ(pipelined_loop(10, 2, 5), 23u);   // II=2
}

TEST(Clock, SerialOuterLoop) {
  EXPECT_EQ(serial_outer_loop(4, 100, 2), 408u);
  EXPECT_EQ(serial_outer_loop(0, 100, 2), 0u);
}

TEST(Clock, OverlappedTilesHidesFasterSide) {
  // compute-bound: prologue load + tiles*compute + nothing extra
  EXPECT_EQ(overlapped_tiles(4, 10, 100), 10 + 3 * 100 + 100);
  // load-bound
  EXPECT_EQ(overlapped_tiles(4, 100, 10), 100 + 3 * 100 + 10);
  EXPECT_EQ(overlapped_tiles(0, 10, 100), 0u);
  EXPECT_EQ(overlapped_tiles(1, 10, 100), 110u);
}

TEST(Clock, SequentialTilesIsSum) {
  EXPECT_EQ(sequential_tiles(4, 10, 100), 440u);
}

TEST(Clock, OverlapNeverSlowerThanSequential) {
  for (uint64_t tiles : {1u, 2u, 7u, 100u}) {
    for (uint64_t load : {1u, 50u, 500u}) {
      for (uint64_t compute : {1u, 50u, 500u}) {
        EXPECT_LE(overlapped_tiles(tiles, load, compute),
                  sequential_tiles(tiles, load, compute));
      }
    }
  }
}

TEST(Clock, CyclesToTime) {
  EXPECT_DOUBLE_EQ(cycles_to_ms(200000, 200.0), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_us(200, 200.0), 1.0);
}

// --- devices ------------------------------------------------------------------

TEST(Device, U55cBudgetMatchesDatasheet) {
  const Device& d = alveo_u55c();
  EXPECT_EQ(d.budget.dsp, 9024u);
  EXPECT_EQ(d.budget.lut, 1303680u);
  EXPECT_EQ(d.budget.ff, 2607360u);
  EXPECT_EQ(d.budget.bram36, 2016u);
  EXPECT_GT(d.hbm_bandwidth_gbps, 400.0);
}

TEST(Device, LookupByNameAndAlias) {
  EXPECT_EQ(find_device("Alveo U55C").budget.dsp, 9024u);
  EXPECT_EQ(find_device("u55c").budget.dsp, 9024u);
  EXPECT_EQ(find_device("ZCU102").budget.dsp, 2520u);
  EXPECT_THROW(find_device("xyz"), std::invalid_argument);
}

TEST(Device, AllDevicesRegistered) {
  EXPECT_EQ(all_devices().size(), 5u);
}

TEST(Device, UtilizationFraction) {
  EXPECT_DOUBLE_EQ(utilization(3612, 9024), 3612.0 / 9024.0);
  EXPECT_DOUBLE_EQ(utilization(1, 0), 0.0);
}

// --- BRAM banking ----------------------------------------------------------------

TEST(Bram, BankingCoversParallelism) {
  // 64 parallel reads on dual-port banks -> 32 banks.
  const BankingPlan plan = plan_banking(6144, 64);
  EXPECT_EQ(plan.banks, 32u);
  EXPECT_EQ(plan.bytes_per_bank, 192u);
  EXPECT_TRUE(plan.uses_lutram);  // 192 B banks go to LUTRAM
}

TEST(Bram, LargeBanksUseBram36) {
  const BankingPlan plan = plan_banking(1u << 20, 4);  // 1 MiB over 2 banks
  EXPECT_EQ(plan.banks, 2u);
  EXPECT_FALSE(plan.uses_lutram);
  EXPECT_EQ(plan.bram36_count,
            2 * ((plan.bytes_per_bank + kBram36Bytes - 1) / kBram36Bytes));
}

TEST(Bram, ZeroBytesNeedsNothing) {
  const BankingPlan plan = plan_banking(0, 64);
  EXPECT_EQ(plan.banks, 0u);
  EXPECT_EQ(plan.bram36_count, 0u);
}

TEST(Bram, SingleReadStillGetsOneBank) {
  const BankingPlan plan = plan_banking(100, 1);
  EXPECT_EQ(plan.banks, 1u);
}

TEST(BankedBuffer, AllowsTwoPortsPerBankPerCycle) {
  BankedBuffer buf(64, 1, 32);
  buf.begin_cycle();
  // Elements 0 and 32 share bank 0: exactly two ports — legal.
  EXPECT_NO_THROW(buf.access(0));
  EXPECT_NO_THROW(buf.access(32));
  EXPECT_EQ(buf.peak_ports(), 2u);
}

TEST(BankedBuffer, DetectsPortConflict) {
  BankedBuffer buf(96, 1, 32);
  buf.begin_cycle();
  buf.access(0);
  buf.access(32);
  EXPECT_THROW(buf.access(64), std::runtime_error);  // third hit on bank 0
}

TEST(BankedBuffer, CycleBoundaryResetsPorts) {
  BankedBuffer buf(64, 1, 32);
  buf.begin_cycle();
  buf.access(0);
  buf.access(32);
  buf.begin_cycle();
  EXPECT_NO_THROW(buf.access(0));
  EXPECT_EQ(buf.total_accesses(), 3u);
}

TEST(BankedBuffer, FullyPartitionedNeverConflicts) {
  // One bank per element (full partition): any access pattern is legal.
  BankedBuffer buf(64, 1, 64);
  buf.begin_cycle();
  for (uint64_t i = 0; i < 64; ++i) EXPECT_NO_THROW(buf.access(i));
}

TEST(BankedBuffer, BoundsChecked) {
  BankedBuffer buf(8, 1, 4);
  buf.begin_cycle();
  EXPECT_THROW(buf.access(8), std::out_of_range);
  EXPECT_THROW(BankedBuffer(8, 1, 0), std::invalid_argument);
}

// --- AXI ---------------------------------------------------------------------------

TEST(Axi, BeatsPlusBurstOverhead) {
  AxiMaster axi;  // 512-bit bus = 64 B/beat, 256-beat bursts, 12 cyc ovh
  EXPECT_EQ(axi.read_cycles(0), 0u);
  EXPECT_EQ(axi.read_cycles(64), 1u + 12u);
  EXPECT_EQ(axi.read_cycles(65), 2u + 12u);
  // 256 beats = one full burst.
  EXPECT_EQ(axi.read_cycles(256 * 64), 256u + 12u);
  // One byte more spills into a second burst.
  EXPECT_EQ(axi.read_cycles(256 * 64 + 1), 257u + 24u);
}

TEST(Axi, ValidatesConfig) {
  EXPECT_THROW(AxiMaster({.bus_bits = 0}), std::invalid_argument);
  EXPECT_THROW(AxiMaster({.bus_bits = 12}), std::invalid_argument);
  EXPECT_THROW(AxiMaster({.bus_bits = 64, .max_burst_beats = 0}),
               std::invalid_argument);
}

TEST(Axi, TrafficCounters) {
  AxiMaster axi;
  axi.record_read(100);
  axi.record_read(50);
  axi.record_write(30);
  EXPECT_EQ(axi.bytes_read(), 150u);
  EXPECT_EQ(axi.bytes_written(), 30u);
}

// --- HBM ----------------------------------------------------------------------------

TEST(Hbm, StripingSpeedsUpLoads) {
  HbmModel hbm;
  const uint64_t bytes = 1 << 20;
  EXPECT_LT(hbm.load_cycles(bytes, 8), hbm.load_cycles(bytes, 1));
  EXPECT_LE(hbm.load_cycles(bytes, 32), hbm.load_cycles(bytes, 8));
}

TEST(Hbm, EfficiencyInflatesCycles) {
  HbmModel perfect({.channels = 8, .efficiency = 1.0});
  HbmModel real({.channels = 8, .efficiency = 0.5});
  EXPECT_GT(real.load_cycles(1 << 16, 4), perfect.load_cycles(1 << 16, 4));
}

TEST(Hbm, ValidatesChannelCount) {
  HbmModel hbm;
  EXPECT_THROW(hbm.load_cycles(100, 0), std::invalid_argument);
  EXPECT_THROW(hbm.load_cycles(100, 33), std::invalid_argument);
  EXPECT_THROW(HbmModel({.channels = 0}), std::invalid_argument);
  EXPECT_THROW(HbmModel({.channels = 4, .efficiency = 0.0}),
               std::invalid_argument);
}

TEST(Hbm, ConcurrentLoadTakesSlowest) {
  HbmModel hbm;
  const Cycles slow = hbm.concurrent_load_cycles({1 << 20});
  EXPECT_EQ(hbm.concurrent_load_cycles({64, 1 << 20, 128}), slow);
}

TEST(Hbm, BytesPerCycleScalesWithChannels) {
  HbmModel hbm;
  EXPECT_DOUBLE_EQ(hbm.bytes_per_cycle(8), 2 * hbm.bytes_per_cycle(4));
}

// --- PE array ----------------------------------------------------------------------

TEST(PeArray, MacAndUtilization) {
  PeArray pes(4);
  pes.mac(0, 3, 4);
  pes.mac(0, 1, 1);
  pes.mac(1, 2, 2);
  EXPECT_EQ(pes.value(0), 13);
  EXPECT_EQ(pes.value(1), 4);
  EXPECT_EQ(pes.macs_issued(), 3u);
  // 3 MACs over 4 PEs x 1 cycle.
  EXPECT_DOUBLE_EQ(pes.utilization(1), 0.75);
}

TEST(PeArray, ResetAndBounds) {
  PeArray pes(2);
  pes.mac(0, 5, 5);
  pes.reset_all();
  EXPECT_EQ(pes.value(0), 0);
  EXPECT_THROW(pes.mac(2, 1, 1), std::out_of_range);
  EXPECT_THROW(PeArray(0), std::invalid_argument);
}

// --- synth params --------------------------------------------------------------------

TEST(SynthParams, PaperDefaults) {
  const SynthParams p = paper_synth_params();
  EXPECT_EQ(p.ts_mha, 64u);
  EXPECT_EQ(p.ts_ffn, 128u);
  EXPECT_EQ(p.max_heads, 8u);
  EXPECT_EQ(p.head_dim_max(), 96u);
  EXPECT_EQ(p.tiles_mha_max(), 12u);  // the paper's optimal point
  EXPECT_EQ(p.tiles_ffn_max(), 6u);
  EXPECT_EQ(p.max_ffn_dim(), 3072u);
}

TEST(SynthParams, Validation) {
  SynthParams p;
  p.max_d_model = 770;  // not divisible by 8 heads
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SynthParams{};
  p.bits = 12;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SynthParams{};
  p.ts_mha = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// --- resource model: pinned to Table I -----------------------------------------------

TEST(ResourceModel, PaperDspCountExact) {
  const ResourceReport r = estimate_resources(paper_synth_params());
  // Table I: 3612 DSPs = 40% of the U55C.
  EXPECT_EQ(r.used.dsp, 3612u);
  EXPECT_NEAR(utilization(r.used.dsp, alveo_u55c().budget.dsp), 0.40,
              0.005);
}

TEST(ResourceModel, PaperLutFfExact) {
  const ResourceReport r = estimate_resources(paper_synth_params());
  // Table I: 993107 LUTs (76%), 704115 FFs (27%).
  EXPECT_EQ(r.used.lut, 993107u);
  EXPECT_EQ(r.used.ff, 704115u);
  EXPECT_NEAR(utilization(r.used.lut, alveo_u55c().budget.lut), 0.76, 0.01);
  EXPECT_NEAR(utilization(r.used.ff, alveo_u55c().budget.ff), 0.27, 0.01);
}

TEST(ResourceModel, EnginePeBreakdownMatchesPaperFormulas) {
  const ResourceReport r = estimate_resources(paper_synth_params());
  // QKV: 3*TS_MHA per head; QK: d/h; SV: SL unroll; FFN1/2: TS_FFN;
  // FFN3: 4*TS_FFN.
  uint64_t qkv = 0, qk = 0, sv = 0, ffn3 = 0;
  for (const auto& e : r.engines) {
    if (e.name == "QKV_CE") qkv = e.pes;
    if (e.name == "QK_CE") qk = e.pes;
    if (e.name == "SV_CE") sv = e.pes;
    if (e.name == "FFN3_CE") ffn3 = e.pes;
  }
  EXPECT_EQ(qkv, 192u);
  EXPECT_EQ(qk, 96u);
  EXPECT_EQ(sv, 64u);
  EXPECT_EQ(ffn3, 512u);
  EXPECT_EQ(r.total_pes, 3584u);
  EXPECT_EQ(r.aux_dsp, 28u);
}

TEST(ResourceModel, FitsU55c) {
  const ResourceReport r = estimate_resources(paper_synth_params());
  EXPECT_TRUE(r.fits(alveo_u55c().budget));
}

TEST(ResourceModel, DoesNotFitZcu102) {
  // The full 8-head U55C configuration cannot fit the small ZCU102.
  const ResourceReport r = estimate_resources(paper_synth_params());
  EXPECT_FALSE(r.fits(zcu102().budget));
}

TEST(ResourceModel, ResourcesGrowWithHeads) {
  SynthParams small = paper_synth_params();
  small.max_heads = 4;
  SynthParams big = paper_synth_params();
  big.max_heads = 8;
  EXPECT_LT(estimate_resources(small).used.dsp,
            estimate_resources(big).used.dsp);
  EXPECT_LT(estimate_resources(small).used.lut,
            estimate_resources(big).used.lut);
}

TEST(ResourceModel, ResourcesGrowWithTileSize) {
  SynthParams small = paper_synth_params();
  small.ts_mha = 32;
  EXPECT_LT(estimate_resources(small).used.dsp,
            estimate_resources(paper_synth_params()).used.dsp);
}

TEST(ResourceModel, MaxHeadsFittingU55cIsEight) {
  // The paper: "the optimal number of parallel attention heads was
  // determined to be 8 on the Alveo U55C".
  EXPECT_EQ(max_heads_fitting(paper_synth_params(), alveo_u55c()), 8u);
}

TEST(ResourceModel, LutBoundBeforeDspBound) {
  // Table I discussion: "Further DSP utilization was limited by the
  // available LUTs" — at the paper's point LUT utilization (76%) is far
  // above DSP utilization (40%).
  const ResourceReport r = estimate_resources(paper_synth_params());
  const auto& budget = alveo_u55c().budget;
  EXPECT_GT(utilization(r.used.lut, budget.lut),
            utilization(r.used.dsp, budget.dsp));
}

// --- frequency / II model (Fig. 7) -----------------------------------------------------

TEST(FrequencyModel, PaperPointHits200MHz) {
  EXPECT_DOUBLE_EQ(fmax_mhz(paper_synth_params()), 200.0);
}

TEST(FrequencyModel, PeakIsAtPaperTileSizes) {
  const double peak = fmax_mhz(paper_synth_params());
  for (uint32_t ts_mha : {16u, 32u, 128u, 192u}) {
    SynthParams p = paper_synth_params();
    p.ts_mha = ts_mha;
    EXPECT_LT(fmax_mhz(p), peak) << "ts_mha=" << ts_mha;
  }
  for (uint32_t ts_ffn : {32u, 64u, 192u, 256u, 384u}) {
    SynthParams p = paper_synth_params();
    p.ts_ffn = ts_ffn;
    EXPECT_LT(fmax_mhz(p), peak) << "ts_ffn=" << ts_ffn;
  }
}

TEST(FrequencyModel, FlooredAtSixtyMHz) {
  SynthParams p = paper_synth_params();
  p.ts_mha = 512;
  p.max_d_model = 4096;  // keep divisibility
  EXPECT_GE(fmax_mhz(p), 60.0);
}

TEST(FrequencyModel, BreakdownConsistent) {
  SynthParams p = paper_synth_params();
  p.ts_mha = 128;
  const FrequencyBreakdown b = frequency_model(p);
  EXPECT_DOUBLE_EQ(b.fmax_mhz, b.base_mhz - b.mha_penalty - b.ffn_penalty);
  EXPECT_GT(b.mha_penalty, 0.0);
  EXPECT_DOUBLE_EQ(b.ffn_penalty, 0.0);
}

TEST(FrequencyModel, AchievedIiSteps) {
  // <=256 parallel reads: II=1 (the paper's TS_MHA=64 / TS_FFN=128 are
  // exactly at the limit: 4*64 = 2*128 = 256).
  EXPECT_EQ(achieved_ii(0), 1u);
  EXPECT_EQ(achieved_ii(256), 1u);
  EXPECT_EQ(achieved_ii(257), 2u);
  EXPECT_EQ(achieved_ii(4 * 64), 1u);
  EXPECT_EQ(achieved_ii(2 * 128), 1u);
  EXPECT_EQ(achieved_ii(4 * 128), 2u);   // TS_MHA=128 -> II=2
  EXPECT_EQ(achieved_ii(2 * 384), 3u);   // TS_FFN=384 -> II=3
}

}  // namespace
}  // namespace protea::hw
