#include "util/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace protea::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

std::string format_bytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  return format_double(value, 2) + " " + kUnits[unit];
}

}  // namespace protea::util
