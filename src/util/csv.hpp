// CSV writer used by the benchmark harness to persist every regenerated
// table/figure series alongside the human-readable console output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace protea::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; the number of cells must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Number of data rows written so far.
  size_t rows_written() const { return rows_; }

  const std::string& path() const { return path_; }

  /// RFC-4180 quoting for a single cell.
  static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
  size_t width_;
  size_t rows_ = 0;
};

}  // namespace protea::util
