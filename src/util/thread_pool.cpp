#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/math_util.hpp"

namespace protea::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(size_t begin, size_t end,
                              const std::function<void(size_t)>& fn,
                              size_t grain) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (workers_.size() == 1 || n <= grain) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t chunks = std::min(workers_.size() * 4, ceil_div(n, grain));
  const size_t chunk_size = ceil_div(n, chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace protea::util
