// Deterministic pseudo-random number generation for reproducible
// experiments: SplitMix64 (seeding) and xoshiro256** (bulk generation).
//
// All workloads in the benchmark harness derive their data from these
// generators with fixed seeds so every run regenerates identical tensors.
#pragma once

#include <cstdint>
#include <limits>

namespace protea::util {

/// SplitMix64: tiny, fast generator mainly used to seed xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can drive <random>.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  result_type operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t bounded(uint64_t bound);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4]{};
};

}  // namespace protea::util
