// String helpers used by the CSV writer, table renderer and ISA assembler.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace protea::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lowercases ASCII characters.
std::string to_lower(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style double formatting with `digits` significant decimals,
/// trimming trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
std::string format_double(double value, int digits);

/// Human-readable byte count ("1.5 KiB", "3 MiB").
std::string format_bytes(uint64_t bytes);

}  // namespace protea::util
