// Small integer helpers shared by the tiling and performance models.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace protea::util {

/// ceil(a / b) for positive integers.
template <typename T>
  requires std::is_integral_v<T>
constexpr T ceil_div(T a, T b) {
  assert(b > 0);
  return static_cast<T>((a + b - 1) / b);
}

/// Rounds `a` up to the next multiple of `b`.
template <typename T>
  requires std::is_integral_v<T>
constexpr T round_up(T a, T b) {
  return static_cast<T>(ceil_div(a, b) * b);
}

/// True when `a` is a power of two (and nonzero).
constexpr bool is_pow2(uint64_t a) { return a != 0 && (a & (a - 1)) == 0; }

/// floor(log2(a)) for a > 0.
constexpr uint32_t ilog2(uint64_t a) {
  assert(a > 0);
  uint32_t r = 0;
  while (a >>= 1) ++r;
  return r;
}

/// Saturating clamp of a wide integer into [lo, hi].
template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace protea::util
