#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace protea::util {

uint64_t Xoshiro256::bounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256::normal() {
  // Box–Muller; u1 is kept away from 0 so log() is finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace protea::util
