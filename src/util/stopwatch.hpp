// Wall-clock timing for the measured (CPU baseline) experiments and the
// runtime telemetry layer. Every wall stamp in the codebase routes
// through monotonic_ns() — ONE clock (steady_clock), so stamps from the
// benches, the telemetry trace recorder and the schedulers' wall_ms
// fields are directly comparable.
#pragma once

#include <chrono>
#include <cstdint>

namespace protea::util {

/// Monotonic wall clock in nanoseconds since an arbitrary (but fixed
/// per-process) epoch. The single timing primitive: Stopwatch and the
/// telemetry TraceRecorder both stamp through here.
inline uint64_t monotonic_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_ns()) {}

  void reset() { start_ns_ = monotonic_ns(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  uint64_t start_ns_ = 0;
};

}  // namespace protea::util
