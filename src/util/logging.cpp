#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace protea::util {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("PROTEA_LOG_LEVEL");
    return static_cast<int>(env != nullptr ? parse_log_level(env)
                                           : LogLevel::kWarn);
  }()};
  return level;
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  auto eq = [&](std::string_view target) {
    if (name.size() != target.size()) return false;
    for (size_t i = 0; i < name.size(); ++i) {
      const char a = name[i];
      const char lower = (a >= 'A' && a <= 'Z')
                             ? static_cast<char>(a - 'A' + 'a')
                             : a;
      if (lower != target[i]) return false;
    }
    return true;
  };
  if (eq("trace")) return LogLevel::kTrace;
  if (eq("debug")) return LogLevel::kDebug;
  if (eq("info")) return LogLevel::kInfo;
  if (eq("warn") || eq("warning")) return LogLevel::kWarn;
  if (eq("error")) return LogLevel::kError;
  if (eq("off") || eq("none")) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

namespace detail {

void emit(LogLevel level, std::string_view file, int line,
          const std::string& message) {
  if (log_level() > level) return;
  // Strip directories from the file path for compact output.
  size_t slash = file.find_last_of('/');
  std::string_view base =
      slash == std::string_view::npos ? file : file.substr(slash + 1);
  std::lock_guard<std::mutex> lock(emit_mutex());
  std::fprintf(stderr, "[%s] %.*s:%d: %s\n",
               std::string(log_level_name(level)).c_str(),
               static_cast<int>(base.size()), base.data(), line,
               message.c_str());
}

}  // namespace detail
}  // namespace protea::util
