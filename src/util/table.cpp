#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace protea::util {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x' && c != ',') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  const size_t cols = header_.size();
  std::vector<size_t> width(cols);
  std::vector<bool> numeric(cols, true);
  for (size_t c = 0; c < cols; ++c) {
    width[c] = header_[c].size();
    for (const auto& r : rows_) {
      width[c] = std::max(width[c], r[c].size());
      if (!r[c].empty() && !looks_numeric(r[c])) numeric[c] = false;
    }
  }

  auto hline = [&](char fill) {
    std::string line = "+";
    for (size_t c = 0; c < cols; ++c) {
      line += std::string(width[c] + 2, fill);
      line += '+';
    }
    return line + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& cells,
                        bool force_left) {
    std::string line = "|";
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = cells[c];
      const size_t pad = width[c] - cell.size();
      const bool right = !force_left && numeric[c];
      line += ' ';
      if (right) line += std::string(pad, ' ');
      line += cell;
      if (!right) line += std::string(pad, ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  out << hline('-');
  out << render_row(header_, /*force_left=*/true);
  out << hline('=');
  for (const auto& r : rows_) out << render_row(r, /*force_left=*/false);
  out << hline('-');
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.to_string();
}

}  // namespace protea::util
