// Minimal leveled logger used across the ProTEA simulator.
//
// Thread-safe: each Log() call formats into a local buffer and emits a
// single write under a mutex. Level is process-global and can be set from
// PROTEA_LOG_LEVEL (trace|debug|info|warn|error|off) or programmatically.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace protea::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global log level (initialized lazily from the
/// PROTEA_LOG_LEVEL environment variable; defaults to kWarn).
LogLevel log_level();

/// Sets the global log level for the remainder of the process.
void set_log_level(LogLevel level);

/// Parses a level name ("info", "WARN", ...); returns kWarn on no match.
LogLevel parse_log_level(std::string_view name);

/// Returns the canonical lowercase name of a level.
std::string_view log_level_name(LogLevel level);

namespace detail {
void emit(LogLevel level, std::string_view file, int line,
          const std::string& message);
}  // namespace detail

/// Stream-style log statement builder; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line)
      : level_(level), file_(file), line_(line) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { detail::emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace protea::util

#define PROTEA_LOG(level)                                       \
  if (::protea::util::log_level() <= (level))                   \
  ::protea::util::LogMessage((level), __FILE__, __LINE__)

#define PROTEA_LOG_TRACE PROTEA_LOG(::protea::util::LogLevel::kTrace)
#define PROTEA_LOG_DEBUG PROTEA_LOG(::protea::util::LogLevel::kDebug)
#define PROTEA_LOG_INFO PROTEA_LOG(::protea::util::LogLevel::kInfo)
#define PROTEA_LOG_WARN PROTEA_LOG(::protea::util::LogLevel::kWarn)
#define PROTEA_LOG_ERROR PROTEA_LOG(::protea::util::LogLevel::kError)
