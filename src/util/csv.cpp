#include "util/csv.hpp"

#include <stdexcept>

namespace protea::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), width_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  if (width_ == 0) {
    throw std::runtime_error("CsvWriter: empty header");
  }
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (cells.size() != width_) {
    throw std::runtime_error("CsvWriter: row width mismatch");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace protea::util
