// Fixed-size worker pool used by the CPU baseline encoder and by the
// benchmark harness for data-parallel loops (parallel_for).
//
// Design notes (per C++ Core Guidelines CP.*): tasks are plain
// std::function<void()>; exceptions thrown by a task are captured and
// rethrown from wait_idle()/parallel_for on the calling thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace protea::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle; rethrows the
  /// first task exception captured since the previous wait.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool; blocks until complete. Runs inline when the range is
  /// small or the pool has a single worker.
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t)>& fn,
                    size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace protea::util
