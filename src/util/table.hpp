// Console table renderer producing aligned, paper-style tables for the
// benchmark harness (Tables I–III of the ProTEA paper).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace protea::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  size_t num_rows() const { return rows_.size(); }

  /// Renders with box-drawing separators and per-column alignment
  /// (numeric-looking cells right-aligned, text left-aligned).
  std::string to_string() const;

  /// Convenience: renders to an ostream.
  friend std::ostream& operator<<(std::ostream& os, const Table& table);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace protea::util
