#include "runtime/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace protea::runtime {

const char* trace_event_name(TraceEventType t) {
  switch (t) {
    case TraceEventType::kAdmit:
      return "admit";
    case TraceEventType::kShed:
      return "shed";
    case TraceEventType::kPrefillChunk:
      return "prefill_chunk";
    case TraceEventType::kDecodeStep:
      return "decode_step";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kSwapOut:
      return "swap_out";
    case TraceEventType::kSwapIn:
      return "swap_in";
    case TraceEventType::kRestore:
      return "restore";
    case TraceEventType::kPrefixAdopt:
      return "prefix_adopt";
    case TraceEventType::kPrefixPublish:
      return "prefix_publish";
    case TraceEventType::kPrefixEvict:
      return "prefix_evict";
    case TraceEventType::kDeadlineMiss:
      return "deadline_miss";
    case TraceEventType::kComplete:
      return "complete";
    case TraceEventType::kPoolOccupancy:
      return "pool_occupancy";
    case TraceEventType::kFailpointTrip:
      return "failpoint_trip";
  }
  return "?";
}

bool virtual_equal(const std::vector<TraceEvent>& x,
                   const std::vector<TraceEvent>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!virtual_equal(x[i], y[i])) return false;
  }
  return true;
}

// --- TraceRecorder -----------------------------------------------------------

#ifdef PROTEA_TELEMETRY

void TraceRecorder::configure(size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TraceRecorder: zero capacity");
  }
  const std::lock_guard lock(mutex_);
  ring_.assign(capacity, TraceEvent{});
  head_ = 0;
  size_ = 0;
  total_ = 0;
  round_ = 0;
  counts_.fill(0);
}

bool TraceRecorder::configured() const {
  const std::lock_guard lock(mutex_);
  return !ring_.empty();
}

void TraceRecorder::record(TraceEventType type, uint32_t seq, uint64_t a,
                           uint64_t b) {
  const uint64_t now = util::monotonic_ns();
  const std::lock_guard lock(mutex_);
  if (ring_.empty()) return;  // unconfigured recorder is inert
  TraceEvent& e = ring_[head_];
  e.type = type;
  e.seq = seq;
  e.round = round_;
  e.a = a;
  e.b = b;
  e.wall_ns = now;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size()) ++size_;
  ++total_;
  ++counts_[static_cast<size_t>(type)];
}

void TraceRecorder::set_round(uint32_t round) {
  const std::lock_guard lock(mutex_);
  round_ = round;
}

uint32_t TraceRecorder::round() const {
  const std::lock_guard lock(mutex_);
  return round_;
}

uint64_t TraceRecorder::total() const {
  const std::lock_guard lock(mutex_);
  return total_;
}

uint64_t TraceRecorder::count(TraceEventType t) const {
  const std::lock_guard lock(mutex_);
  return counts_[static_cast<size_t>(t)];
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  const std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at head_ once the ring has wrapped, at 0 before.
  const size_t start = size_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  const std::lock_guard lock(mutex_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
  round_ = 0;
  counts_.fill(0);
}

#else  // !PROTEA_TELEMETRY

void TraceRecorder::configure(size_t) {
  throw std::logic_error("TraceRecorder: built without PROTEA_TELEMETRY");
}
bool TraceRecorder::configured() const { return false; }
void TraceRecorder::record(TraceEventType, uint32_t, uint64_t, uint64_t) {}
void TraceRecorder::set_round(uint32_t) {}
uint32_t TraceRecorder::round() const { return 0; }
uint64_t TraceRecorder::total() const { return 0; }
uint64_t TraceRecorder::count(TraceEventType) const { return 0; }
std::vector<TraceEvent> TraceRecorder::snapshot() const { return {}; }
void TraceRecorder::clear() {}

#endif  // PROTEA_TELEMETRY

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram() { buckets_.assign(num_buckets(), 0); }

size_t Histogram::num_buckets() {
  // One exact bucket per value below kLinearMax, then kSubBuckets linear
  // sub-buckets per power-of-two range [2^k, 2^{k+1}) for k in [6, 63].
  return static_cast<size_t>(kLinearMax) + (64 - 6) * kSubBuckets;
}

size_t Histogram::bucket_index(uint64_t value) {
  if (value < kLinearMax) return static_cast<size_t>(value);
  const int k = std::bit_width(value) - 1;  // floor(log2), >= 6
  const uint64_t base = uint64_t{1} << k;
  const size_t sub = static_cast<size_t>((value - base) >> (k - 3));
  return static_cast<size_t>(kLinearMax) +
         static_cast<size_t>(k - 6) * kSubBuckets + sub;
}

uint64_t Histogram::bucket_upper_bound(size_t index) {
  if (index < kLinearMax) return index;
  const size_t rel = index - static_cast<size_t>(kLinearMax);
  const int k = 6 + static_cast<int>(rel / kSubBuckets);
  const size_t sub = rel % kSubBuckets;
  const uint64_t width = uint64_t{1} << (k - 3);  // range / kSubBuckets
  const uint64_t lower = (uint64_t{1} << k) + sub * width;
  return lower + (width - 1);
}

void Histogram::observe(uint64_t value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = value < min_ ? value : min_;
  max_ = value > max_ ? value : max_;
}

uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest rank: the ceil(p/100 * N)-th smallest observation, at least
  // the 1st.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      // Exact buckets report their value; range buckets their upper
      // bound, clipped to the true max so p100 == max() always.
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

// --- MetricsRegistry ---------------------------------------------------------

#ifdef PROTEA_TELEMETRY

Counter& MetricsRegistry::add_counter(std::string name) {
  counter_store_.push_back(
      std::make_unique<NamedCounter>(NamedCounter{std::move(name), {}}));
  counter_ptrs_.push_back(counter_store_.back().get());
  return counter_store_.back()->counter;
}

Gauge& MetricsRegistry::add_gauge(std::string name) {
  gauge_store_.push_back(
      std::make_unique<NamedGauge>(NamedGauge{std::move(name), {}}));
  gauge_ptrs_.push_back(gauge_store_.back().get());
  return gauge_store_.back()->gauge;
}

Histogram& MetricsRegistry::add_histogram(std::string name) {
  histogram_store_.push_back(
      std::make_unique<NamedHistogram>(NamedHistogram{std::move(name), {}}));
  histogram_ptrs_.push_back(histogram_store_.back().get());
  return histogram_store_.back()->histogram;
}

Counter* MetricsRegistry::find_counter(std::string_view name) {
  for (NamedCounter* c : counter_ptrs_) {
    if (c->name == name) return &c->counter;
  }
  return nullptr;
}

Gauge* MetricsRegistry::find_gauge(std::string_view name) {
  for (NamedGauge* g : gauge_ptrs_) {
    if (g->name == name) return &g->gauge;
  }
  return nullptr;
}

Histogram* MetricsRegistry::find_histogram(std::string_view name) {
  for (NamedHistogram* h : histogram_ptrs_) {
    if (h->name == name) return &h->histogram;
  }
  return nullptr;
}

void MetricsRegistry::reset() {
  for (NamedCounter* c : counter_ptrs_) c->counter.reset();
  for (NamedGauge* g : gauge_ptrs_) g->gauge.reset();
  for (NamedHistogram* h : histogram_ptrs_) h->histogram.reset();
}

#else  // !PROTEA_TELEMETRY

Counter& MetricsRegistry::add_counter(std::string) {
  throw std::logic_error("MetricsRegistry: built without PROTEA_TELEMETRY");
}
Gauge& MetricsRegistry::add_gauge(std::string) {
  throw std::logic_error("MetricsRegistry: built without PROTEA_TELEMETRY");
}
Histogram& MetricsRegistry::add_histogram(std::string) {
  throw std::logic_error("MetricsRegistry: built without PROTEA_TELEMETRY");
}
Counter* MetricsRegistry::find_counter(std::string_view) { return nullptr; }
Gauge* MetricsRegistry::find_gauge(std::string_view) { return nullptr; }
Histogram* MetricsRegistry::find_histogram(std::string_view) {
  return nullptr;
}
void MetricsRegistry::reset() {}

#endif  // PROTEA_TELEMETRY

const std::vector<MetricsRegistry::NamedCounter*>& MetricsRegistry::counters()
    const {
  return counter_ptrs_;
}
const std::vector<MetricsRegistry::NamedGauge*>& MetricsRegistry::gauges()
    const {
  return gauge_ptrs_;
}
const std::vector<MetricsRegistry::NamedHistogram*>&
MetricsRegistry::histograms() const {
  return histogram_ptrs_;
}

// --- Telemetry bundle --------------------------------------------------------

#ifdef PROTEA_TELEMETRY

void Telemetry::configure(const TelemetryOptions& opts) {
  trace.configure(opts.trace_capacity);
  metrics.reset();
  // Idempotent re-configure: reuse instruments registered earlier.
  const auto hist = [this](const char* name) -> Histogram* {
    if (Histogram* h = metrics.find_histogram(name)) return h;
    return &metrics.add_histogram(name);
  };
  ttft_rounds = hist("ttft_rounds");
  queue_wait_rounds = hist("queue_wait_rounds");
  token_gap_rounds = hist("token_gap_rounds");
  preempt_downtime_rounds = hist("preempt_downtime_rounds");
  pool_occupancy_blocks = hist("pool_occupancy_blocks");
  ttft_us = hist("ttft_us");
  configured_ = true;
}

bool Telemetry::enabled() const { return configured_; }

#else  // !PROTEA_TELEMETRY

void Telemetry::configure(const TelemetryOptions&) {
  throw std::logic_error("Telemetry: built without PROTEA_TELEMETRY");
}

bool Telemetry::enabled() const { return false; }

#endif  // PROTEA_TELEMETRY

// --- exporters ---------------------------------------------------------------

namespace {

/// Human-readable names for the a/b payload fields, per event type (see
/// the taxonomy in telemetry.hpp).
struct PayloadNames {
  const char* a;
  const char* b;
};

PayloadNames payload_names(TraceEventType t) {
  switch (t) {
    case TraceEventType::kAdmit:
      return {"queue_wait_rounds", "prompt_rows"};
    case TraceEventType::kShed:
      return {"outcome", "unused"};
    case TraceEventType::kPrefillChunk:
      return {"target_rows", "unused"};
    case TraceEventType::kDecodeStep:
      return {"step", "unused"};
    case TraceEventType::kPreempt:
      return {"swap", "cached_rows"};
    case TraceEventType::kSwapOut:
      return {"bytes", "rows"};
    case TraceEventType::kSwapIn:
      return {"bytes", "rows"};
    case TraceEventType::kRestore:
      return {"downtime_rounds", "path"};
    case TraceEventType::kPrefixAdopt:
      return {"rows", "blocks"};
    case TraceEventType::kPrefixPublish:
      return {"rows", "new_blocks"};
    case TraceEventType::kPrefixEvict:
      return {"blocks", "unused"};
    case TraceEventType::kDeadlineMiss:
      return {"deadline_round", "unused"};
    case TraceEventType::kComplete:
      return {"outcome", "latency_rounds"};
    case TraceEventType::kPoolOccupancy:
      return {"used_blocks", "free_blocks"};
    case TraceEventType::kFailpointTrip:
      return {"trips", "unused"};
  }
  return {"a", "b"};
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<size_t>(static_cast<size_t>(n),
                                              sizeof(buf) - 1));
}

void append_args(std::string& out, const TraceEvent& e) {
  const PayloadNames names = payload_names(e.type);
  append_fmt(out, "\"args\":{\"round\":%u", e.round);
  append_fmt(out, ",\"%s\":%" PRIu64, names.a, e.a);
  append_fmt(out, ",\"%s\":%" PRIu64, names.b, e.b);
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Track naming: tid 0 is the scheduler/pool track; every sequence gets
  // its own track (tid = seq + 1 keeps tid 0 free).
  sep();
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"protea\"}}";
  sep();
  out +=
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"scheduler/pool\"}}";
  std::vector<uint32_t> named_seqs;
  std::vector<uint32_t> open_spans;  // seqs with an un-ended admit span
  for (const TraceEvent& e : events) {
    if (e.seq == kNoTraceSeq) continue;
    if (std::find(named_seqs.begin(), named_seqs.end(), e.seq) ==
        named_seqs.end()) {
      named_seqs.push_back(e.seq);
      sep();
      append_fmt(out,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"seq %u\"}}",
                 e.seq + 1, e.seq);
    }
  }

  for (const TraceEvent& e : events) {
    const double ts_us = static_cast<double>(e.wall_ns) / 1000.0;
    const uint32_t tid = e.seq == kNoTraceSeq ? 0 : e.seq + 1;
    if (e.type == TraceEventType::kPoolOccupancy) {
      sep();
      append_fmt(out,
                 "{\"name\":\"kv_pool_blocks\",\"ph\":\"C\",\"pid\":1,"
                 "\"tid\":0,\"ts\":%.3f,\"args\":{\"used\":%" PRIu64
                 ",\"free\":%" PRIu64 "}}",
                 ts_us, e.a, e.b);
      continue;
    }
    if (e.type == TraceEventType::kAdmit && e.seq != kNoTraceSeq) {
      open_spans.push_back(e.seq);
      sep();
      append_fmt(out,
                 "{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"b\","
                 "\"id\":%u,\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
                 e.seq, tid, ts_us);
      append_args(out, e);
      out += "}";
      continue;
    }
    const bool terminal = e.type == TraceEventType::kComplete ||
                          e.type == TraceEventType::kShed;
    if (terminal && e.seq != kNoTraceSeq) {
      const auto it =
          std::find(open_spans.begin(), open_spans.end(), e.seq);
      if (it != open_spans.end()) {
        open_spans.erase(it);
        sep();
        append_fmt(out,
                   "{\"name\":\"request\",\"cat\":\"request\",\"ph\":\"e\","
                   "\"id\":%u,\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
                   e.seq, tid, ts_us);
        append_args(out, e);
        out += "}";
        continue;
      }
    }
    sep();
    append_fmt(out,
               "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
               "\"pid\":1,\"tid\":%u,\"ts\":%.3f,",
               trace_event_name(e.type), tid, ts_us);
    append_args(out, e);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  const std::string json = chrome_trace_json(events);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    throw std::runtime_error("write_chrome_trace: short write to " + path);
  }
}

namespace {

std::string unit_of(const std::string& name) {
  const auto ends_with = [&](std::string_view suffix) {
    return name.size() >= suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  if (ends_with("_rounds")) return "rounds";
  if (ends_with("_blocks")) return "blocks";
  if (ends_with("_bytes")) return "bytes";
  if (ends_with("_ns")) return "ns";
  if (ends_with("_us")) return "us";
  if (ends_with("_ms")) return "ms";
  return "value";
}

}  // namespace

std::vector<MetricSample> metric_samples(const Telemetry& telemetry) {
  std::vector<MetricSample> out;
  for (const auto* h : telemetry.metrics.histograms()) {
    const std::string unit = unit_of(h->name);
    const Histogram& hist = h->histogram;
    out.push_back({h->name, "p50",
                   static_cast<double>(hist.percentile(50.0)), unit});
    out.push_back({h->name, "p95",
                   static_cast<double>(hist.percentile(95.0)), unit});
    out.push_back({h->name, "p99",
                   static_cast<double>(hist.percentile(99.0)), unit});
    out.push_back({h->name, "mean", hist.mean(), unit});
    out.push_back(
        {h->name, "count", static_cast<double>(hist.count()), "count"});
  }
  for (const auto* c : telemetry.metrics.counters()) {
    out.push_back({c->name, "count",
                   static_cast<double>(c->counter.value()), "count"});
  }
  for (const auto* g : telemetry.metrics.gauges()) {
    out.push_back({g->name, "value", g->gauge.value(), unit_of(g->name)});
    out.push_back({g->name, "max", g->gauge.max(), unit_of(g->name)});
  }
  return out;
}

}  // namespace protea::runtime
