// InferenceSession: the serving runtime's per-stream execution context.
//
// A session binds a loaded quantized model to a private WorkspaceArena and
// runs the unified layer-op forward path through it. The first forward
// sizes the arena; from then on forward_into() performs ZERO heap
// allocations — the property the batch scheduler relies on to run many
// sessions concurrently without allocator contention (and the property
// tests/test_runtime.cpp pins with an allocation-counting operator new).
//
// The free functions encoder_forward_into / decoder_forward_into are the
// single forward implementation shared by ProteaAccelerator,
// ProteaDecoderAccelerator, InferenceSession and the BatchScheduler; the
// StageGate hook lets the scheduler bracket the paper's two physical
// module stages (MHA, FFN) without a second copy of the loop.
#pragma once

#include <vector>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "accel/quantized_model.hpp"
#include "runtime/layer_ops.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

// Stage, StageGate and StageScope (the MHA/FFN module-stage hooks) live
// in runtime/layer_ops.hpp, next to the blocks they bracket.

/// Runs the quantized encoder datapath (float in -> int8 engines -> float
/// out) for `program` layers/seq_len with all intermediates in `ws`.
/// `output` is only reallocated when its shape differs. Steady state
/// (same shapes, warmed arena, no traces) performs zero heap allocations.
void encoder_forward_into(const accel::QuantizedModel& qm,
                          const ref::ModelConfig& program,
                          const accel::AccelConfig& config,
                          const tensor::MatrixF& input, WorkspaceArena& ws,
                          accel::EngineStats* stats, tensor::MatrixF& output,
                          std::vector<EncoderLayerTrace>* traces = nullptr,
                          StageGate* gate = nullptr);

/// Decoder twin: masked self-attention + cross-attention over `memory`.
void decoder_forward_into(const accel::QuantizedDecoder& qd,
                          const accel::AccelConfig& config,
                          const tensor::MatrixF& target,
                          const tensor::MatrixF& memory, WorkspaceArena& ws,
                          accel::EngineStats* stats,
                          tensor::MatrixF& output);

class InferenceSession {
 public:
  /// Binds to caller-owned config + model (both must outlive the
  /// session); validates the model against the synthesized maxima.
  InferenceSession(const accel::AccelConfig& config,
                   const accel::QuantizedModel& model);

  /// Steady-state forward: zero heap allocations once the arena is warm
  /// and `output` has the right shape.
  void forward_into(const tensor::MatrixF& input, tensor::MatrixF& output,
                    StageGate* gate = nullptr);

  /// Allocating convenience wrapper.
  tensor::MatrixF forward(const tensor::MatrixF& input);

  const accel::EngineStats& stats() const { return stats_; }
  const WorkspaceArena& workspace() const { return ws_; }
  const accel::QuantizedModel& model() const { return *model_; }

 private:
  const accel::AccelConfig* config_;
  const accel::QuantizedModel* model_;
  WorkspaceArena ws_;
  accel::EngineStats stats_;
};

}  // namespace protea::runtime
