// Batched serving scheduler: N independent sequences over worker threads
// with the paper's two-stage MHA/FFN module overlap executed for real.
//
// ProTEA's two processing modules (Fig. 3/4) are physically distinct
// engine groups, so while the FFN module works on sequence i the MHA
// module can already process sequence i+1. batch_pipeline.{hpp,cpp}
// models that overlap analytically; this scheduler EXECUTES it: every
// worker runs the unified forward path through its own InferenceSession
// (private arena -> zero steady-state allocations, no allocator
// contention), and each per-layer MHA/FFN stage acquires a module slot,
// so stages of different sequences genuinely interleave across the
// module semaphores.
//
// Module slots generalize the hardware: slots = 1 per module is the
// paper's single two-stage accelerator (virtual-time replay of that
// schedule is cycle-exactly cross-checked against
// estimate_batch_performance by simulate_pipeline_cycles); slots =
// threads models a deployment replicating the module groups per worker,
// the configuration a throughput-oriented host uses.
#pragma once

#include <cstdint>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/batch_pipeline.hpp"
#include "accel/quantized_model.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

struct BatchOptions {
  size_t threads = 4;      // worker threads, each with a private session
  uint32_t mha_slots = 0;  // concurrent MHA-module stages (0 -> threads)
  uint32_t ffn_slots = 0;  // concurrent FFN-module stages (0 -> threads)
};

struct BatchRunStats {
  uint32_t batch = 0;
  size_t threads = 1;
  double wall_ms = 0.0;
};

class BatchScheduler {
 public:
  /// Takes ownership of the model (shared read-only by all workers).
  BatchScheduler(accel::AccelConfig config, accel::QuantizedModel model);

  /// Baseline: back-to-back forwards through one session on the calling
  /// thread — the latency-oriented (batch = 1) operating mode.
  std::vector<tensor::MatrixF> run_serial(
      const std::vector<tensor::MatrixF>& inputs);

  /// Batched serving mode. Per-sequence outputs are bit-identical to
  /// run_serial / batch = 1 for any thread or slot count (the int8
  /// datapath is exact).
  std::vector<tensor::MatrixF> run_batched(
      const std::vector<tensor::MatrixF>& inputs,
      const BatchOptions& opts = {});

  /// Virtual-time replay of the executed task graph (chains
  /// MHA(s,l) -> FFN(s,l) -> MHA(s,l+1), FIFO per module) on the
  /// hardware's single MHA + single FFN module. Equals
  /// estimate_batch_performance(...).pipelined_cycles — the cross-check
  /// that the executed schedule and the analytic model agree.
  hw::Cycles simulate_pipeline_cycles(uint32_t batch) const;

  /// Analytic two-stage pipeline report for this model/config.
  accel::BatchReport predicted(uint32_t batch) const;

  const BatchRunStats& last_run() const { return last_run_; }
  const accel::QuantizedModel& model() const { return model_; }
  const accel::AccelConfig& config() const { return config_; }

 private:
  accel::AccelConfig config_;
  accel::QuantizedModel model_;
  BatchRunStats last_run_;
};

}  // namespace protea::runtime
