#include "runtime/batch_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "accel/perf_model.hpp"
#include "runtime/inference_session.hpp"
#include "runtime/module_gate.hpp"
#include "util/stopwatch.hpp"

namespace protea::runtime {

BatchScheduler::BatchScheduler(accel::AccelConfig config,
                               accel::QuantizedModel model)
    : config_(std::move(config)), model_(std::move(model)) {
  config_.validate();
  accel::validate_runtime(config_.synth, model_.config);
}

std::vector<tensor::MatrixF> BatchScheduler::run_serial(
    const std::vector<tensor::MatrixF>& inputs) {
  std::vector<tensor::MatrixF> outputs(inputs.size());
  InferenceSession session(config_, model_);
  util::Stopwatch watch;
  for (size_t i = 0; i < inputs.size(); ++i) {
    session.forward_into(inputs[i], outputs[i]);
  }
  last_run_ = {static_cast<uint32_t>(inputs.size()), 1,
               watch.milliseconds()};
  return outputs;
}

std::vector<tensor::MatrixF> BatchScheduler::run_batched(
    const std::vector<tensor::MatrixF>& inputs, const BatchOptions& opts) {
  if (opts.threads == 0) {
    throw std::invalid_argument("run_batched: zero threads");
  }
  const size_t workers = std::min(opts.threads, inputs.size());
  std::vector<tensor::MatrixF> outputs(inputs.size());
  if (inputs.empty()) return outputs;

  const auto slots = [&](uint32_t requested) {
    return requested > 0 ? requested : static_cast<uint32_t>(workers);
  };
  ModuleSlots mha_slots(slots(opts.mha_slots));
  ModuleSlots ffn_slots(slots(opts.ffn_slots));

  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  util::Stopwatch watch;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      try {
        // One session per worker: private arena, shared read-only model.
        InferenceSession session(config_, model_);
        ModuleGate gate(mha_slots, ffn_slots);
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= inputs.size()) break;
          session.forward_into(inputs[i], outputs[i], &gate);
        }
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  last_run_ = {static_cast<uint32_t>(inputs.size()), workers,
               watch.milliseconds()};
  return outputs;
}

hw::Cycles BatchScheduler::simulate_pipeline_cycles(uint32_t batch) const {
  if (batch == 0) {
    throw std::invalid_argument("simulate_pipeline_cycles: zero batch");
  }
  const accel::PerfReport per_seq =
      accel::estimate_performance(config_, model_.config);
  const accel::ModuleSplit split = accel::split_module_cycles(per_seq);
  const uint32_t layers = model_.config.num_layers;

  // Discrete-event replay of the executed dependency graph: sequence s is
  // the chain MHA(s,0) -> FFN(s,0) -> MHA(s,1) -> ... ; each module runs
  // one stage at a time, earliest start first with FIFO tie-breaking on
  // the ready time (the controller's round-robin issue order — breaking
  // ties by sequence id instead starves late sequences and serializes
  // the tail).
  struct SeqState {
    uint32_t tasks_done = 0;
    hw::Cycles ready = 0;
  };
  std::vector<SeqState> seqs(batch);
  hw::Cycles mha_free = 0;
  hw::Cycles ffn_free = 0;
  hw::Cycles makespan = 0;
  const uint64_t total_tasks = uint64_t{batch} * layers * 2;
  for (uint64_t t = 0; t < total_tasks; ++t) {
    size_t best = std::numeric_limits<size_t>::max();
    hw::Cycles best_start = 0;
    hw::Cycles best_ready = 0;
    bool best_is_mha = false;
    for (size_t s = 0; s < seqs.size(); ++s) {
      if (seqs[s].tasks_done == 2ull * layers) continue;
      const bool is_mha = seqs[s].tasks_done % 2 == 0;
      const hw::Cycles start =
          std::max(seqs[s].ready, is_mha ? mha_free : ffn_free);
      if (best == std::numeric_limits<size_t>::max() ||
          start < best_start ||
          (start == best_start && seqs[s].ready < best_ready)) {
        best = s;
        best_start = start;
        best_ready = seqs[s].ready;
        best_is_mha = is_mha;
      }
    }
    SeqState& st = seqs[best];
    const hw::Cycles end =
        best_start + (best_is_mha ? split.mha_layer : split.ffn_layer);
    (best_is_mha ? mha_free : ffn_free) = end;
    st.ready = end;
    ++st.tasks_done;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

accel::BatchReport BatchScheduler::predicted(uint32_t batch) const {
  return accel::estimate_batch_performance(config_, model_.config, batch);
}

}  // namespace protea::runtime
