#include "runtime/layer_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "accel/layernorm_unit.hpp"
#include "accel/softmax_unit.hpp"

namespace protea::runtime {
namespace {

/// Non-owning view of the first `rows` rows of a cache matrix (the cached
/// prefix is contiguous in the row-major (capacity x head_dim) storage).
tensor::MatrixViewI8 prefix_rows(tensor::MatrixViewI8 m, size_t rows) {
  return {m.data(), rows, m.cols()};
}

/// Mutable view of cache rows [pos, pos+n) — where a step's new K/V land.
tensor::MatrixViewI8 append_rows(tensor::MatrixViewI8 m, size_t pos,
                                 size_t n) {
  return {m.data() + pos * m.cols(), n, m.cols()};
}

/// Row-wise copy of a head's (n x dk) scores into its column slice of the
/// strided concat view (one memcpy per row, not one store per element).
void emit_head_scores(tensor::MatrixViewI8 concat, size_t head, size_t dk,
                      tensor::ConstMatrixViewI8 scores) {
  for (size_t i = 0; i < scores.rows(); ++i) {
    std::memcpy(concat.row(i).data() + head * dk, scores.row(i).data(), dk);
  }
}

/// Decoder-layer descriptor builders for the projection/FFN blocks,
/// shared by the full-recompute and KV-cached layer paths (the attention
/// twins are public, see layer_ops.hpp).
ProjectionLnDesc decoder_self_projection_desc(
    const accel::QDecoderLayer& layer) {
  const accel::DecoderLayerScales& s = layer.scales;
  ProjectionLnDesc proj;
  proj.w = layer.wo;
  proj.bias = layer.bo;
  proj.rq = &layer.rq_proj;
  proj.gamma = layer.ln1_gamma;
  proj.beta = layer.ln1_beta;
  proj.s_proj = s.proj;
  proj.s_res = s.x;
  proj.s_out = s.ln1;
  return proj;
}

ProjectionLnDesc decoder_cross_projection_desc(
    const accel::QDecoderLayer& layer) {
  const accel::DecoderLayerScales& s = layer.scales;
  ProjectionLnDesc proj;
  proj.w = layer.co;
  proj.bias = layer.cbo;
  proj.rq = &layer.rq_cproj;
  proj.gamma = layer.ln2_gamma;
  proj.beta = layer.ln2_beta;
  proj.s_proj = s.cproj;
  proj.s_res = s.ln1;
  proj.s_out = s.ln2;
  return proj;
}

FfnBlockDesc decoder_ffn_desc(const accel::QDecoderLayer& layer) {
  const accel::DecoderLayerScales& s = layer.scales;
  FfnBlockDesc ffn;
  ffn.w1 = layer.w1;
  ffn.b1 = layer.b1;
  ffn.rq_hidden = &layer.rq_hidden;
  ffn.s_hidden = s.hidden;
  ffn.w2 = layer.w2;
  ffn.b2 = layer.b2;
  ffn.rq_ffn_out = &layer.rq_ffn_out;
  ffn.s_ffn_out = s.ffn_out;
  ffn.gamma = layer.ln3_gamma;
  ffn.beta = layer.ln3_beta;
  ffn.s_in = s.ln2;
  ffn.s_out = s.ln3;
  return ffn;
}

}  // namespace

AttentionBlockDesc decoder_self_attention_desc(
    const accel::QDecoderLayer& layer) {
  AttentionBlockDesc desc;
  desc.self_heads = layer.self_heads;
  desc.rq_q = &layer.rq_q;
  desc.rq_k = &layer.rq_k;
  desc.rq_v = &layer.rq_v;
  desc.rq_logit = &layer.rq_logit;
  desc.rq_sv = &layer.rq_sv;
  desc.logit_scale = layer.scales.logit;
  desc.causal = true;
  return desc;
}

AttentionBlockDesc decoder_cross_attention_desc(
    const accel::QDecoderLayer& layer) {
  AttentionBlockDesc desc;
  desc.cross_heads = layer.cross_heads;
  desc.rq_q = &layer.rq_cq;
  desc.rq_k = &layer.rq_ck;
  desc.rq_v = &layer.rq_cv;
  desc.rq_logit = &layer.rq_clogit;
  desc.rq_sv = &layer.rq_csv;
  desc.logit_scale = layer.scales.clogit;
  return desc;
}

void run_attention_block(const LayerOpContext& ctx,
                         const AttentionBlockDesc& desc,
                         tensor::ConstMatrixViewI8 x,
                         tensor::ConstMatrixViewI8 memory,
                         tensor::MatrixViewI8 concat,
                         std::vector<HeadTrace>* traces) {
  const bool self = !desc.self_heads.empty();
  if (self == !desc.cross_heads.empty()) {
    throw std::invalid_argument(
        "run_attention_block: exactly one head set must be given");
  }
  const size_t sl = x.rows();
  const size_t d = x.cols();
  const size_t h = self ? desc.self_heads.size() : desc.cross_heads.size();
  const size_t dk =
      self ? desc.self_heads[0].wqt.rows() : desc.cross_heads[0].cqt.rows();
  if (dk * h != d) {
    throw std::invalid_argument(
        "run_attention_block: head dims inconsistent");
  }
  if (concat.rows() != sl || concat.cols() != d) {
    throw std::invalid_argument(
        "run_attention_block: concat shape mismatch");
  }
  const size_t kv_rows = memory.rows();

  const accel::SoftmaxUnit softmax(desc.logit_scale);
  if (traces != nullptr) traces->resize(h);

  for (size_t head = 0; head < h; ++head) {
    const auto m = ctx.ws.mark();
    auto q = ctx.ws.matrix_i8(sl, dk);
    auto k = ctx.ws.matrix_i8(kv_rows, dk);
    auto v = ctx.ws.matrix_i8(kv_rows, dk);
    auto logits = ctx.ws.matrix_i8(sl, kv_rows);
    auto weights = ctx.ws.matrix_i8(sl, kv_rows);
    auto scores = ctx.ws.matrix_i8(sl, dk);

    if (self) {
      accel::run_qkv_engine(x, desc.self_heads[head], ctx.ts_mha,
                            *desc.rq_q, *desc.rq_k, *desc.rq_v, q, k, v,
                            ctx.ws, ctx.stats, ctx.gemm_pool);
    } else {
      const accel::QCrossHeadWeights& ch = desc.cross_heads[head];
      accel::run_projection_engine(x, ch.cqt, ch.cbq, ctx.ts_mha,
                                   *desc.rq_q, q, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
      accel::run_projection_engine(memory, ch.ckt, ch.cbk, ctx.ts_mha,
                                   *desc.rq_k, k, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
      accel::run_projection_engine(memory, ch.cvt, ch.cbv, ctx.ts_mha,
                                   *desc.rq_v, v, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
    }
    accel::run_qk_engine(q, k, *desc.rq_logit, logits, ctx.ws, ctx.stats,
                         ctx.gemm_pool);
    if (desc.causal) {
      softmax.run_causal_into(logits, weights);
    } else {
      softmax.run_into(logits, weights);
    }
    accel::run_sv_engine(weights, v, *desc.rq_sv, scores, ctx.ws,
                         ctx.stats, ctx.gemm_pool);

    emit_head_scores(concat, head, dk, scores);
    if (traces != nullptr) {
      HeadTrace& t = (*traces)[head];
      t.q = tensor::to_matrix(tensor::ConstMatrixViewI8(q));
      t.k = tensor::to_matrix(tensor::ConstMatrixViewI8(k));
      t.v = tensor::to_matrix(tensor::ConstMatrixViewI8(v));
      t.logits = tensor::to_matrix(tensor::ConstMatrixViewI8(logits));
      t.attn_weights = tensor::to_matrix(tensor::ConstMatrixViewI8(weights));
      t.scores = tensor::to_matrix(tensor::ConstMatrixViewI8(scores));
    }
    ctx.ws.rewind(m);
  }
}

void run_projection_ln_block(const LayerOpContext& ctx,
                             const ProjectionLnDesc& desc,
                             tensor::ConstMatrixViewI8 concat,
                             tensor::ConstMatrixViewI8 residual,
                             tensor::MatrixViewI8 out,
                             tensor::MatrixI8* proj_trace) {
  const size_t sl = concat.rows();
  const size_t d = desc.w.cols();
  const auto m = ctx.ws.mark();
  auto proj = ctx.ws.matrix_i8(sl, d);
  accel::run_ffn_engine(concat, desc.w, desc.bias, ctx.ts_ffn, *desc.rq,
                        accel::FfnActivation::kNone, 0.0, proj, ctx.ws,
                        ctx.stats, ctx.gemm_pool);
  auto scratch = ctx.ws.span_i32(d);
  accel::run_layernorm(desc.gamma, desc.beta, desc.ln_eps, proj,
                       desc.s_proj, residual, desc.s_res, desc.s_out, out,
                       scratch);
  if (proj_trace != nullptr) {
    *proj_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(proj));
  }
  ctx.ws.rewind(m);
}

void run_ffn_block(const LayerOpContext& ctx, const FfnBlockDesc& desc,
                   tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                   tensor::MatrixI8* hidden_trace,
                   tensor::MatrixI8* ffn_out_trace) {
  const size_t sl = x.rows();
  const size_t d = desc.w2.cols();
  const size_t f = desc.w1.cols();
  const accel::FfnActivation act =
      ctx.activation == ref::Activation::kRelu
          ? accel::FfnActivation::kRelu
          : accel::FfnActivation::kGeluLut;

  const auto m = ctx.ws.mark();
  auto hidden = ctx.ws.matrix_i8(sl, f);
  accel::run_ffn_engine(x, desc.w1, desc.b1, ctx.ts_ffn, *desc.rq_hidden,
                        act, desc.s_hidden, hidden, ctx.ws, ctx.stats,
                        ctx.gemm_pool);
  auto ffn_out = ctx.ws.matrix_i8(sl, d);
  accel::run_ffn_engine(hidden, desc.w2, desc.b2, ctx.ts_ffn,
                        *desc.rq_ffn_out, accel::FfnActivation::kNone, 0.0,
                        ffn_out, ctx.ws, ctx.stats, ctx.gemm_pool);
  auto scratch = ctx.ws.span_i32(d);
  accel::run_layernorm(desc.gamma, desc.beta, desc.ln_eps, ffn_out,
                       desc.s_ffn_out, x, desc.s_in, desc.s_out, out,
                       scratch);
  if (hidden_trace != nullptr) {
    *hidden_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(hidden));
  }
  if (ffn_out_trace != nullptr) {
    *ffn_out_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(ffn_out));
  }
  ctx.ws.rewind(m);
}

void run_encoder_mha_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 concat,
                           std::vector<HeadTrace>* traces) {
  if (layer.heads.empty()) {
    throw std::invalid_argument("run_encoder_mha_stage: no heads");
  }
  AttentionBlockDesc desc;
  desc.self_heads = layer.heads;
  desc.rq_q = &layer.rq_q;
  desc.rq_k = &layer.rq_k;
  desc.rq_v = &layer.rq_v;
  desc.rq_logit = &layer.rq_logit;
  desc.rq_sv = &layer.rq_sv;
  desc.logit_scale = layer.scales.logit;
  run_attention_block(ctx, desc, x, x, concat, traces);
}

void run_encoder_ffn_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 concat,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 out, FfnTrace* trace) {
  const accel::LayerScales& s = layer.scales;
  const size_t sl = x.rows();
  const size_t d = x.cols();

  const auto m = ctx.ws.mark();
  auto x1 = ctx.ws.matrix_i8(sl, d);
  ProjectionLnDesc proj;
  proj.w = layer.wo;
  proj.bias = layer.bo;
  proj.rq = &layer.rq_proj;
  proj.gamma = layer.ln1_gamma;
  proj.beta = layer.ln1_beta;
  proj.s_proj = s.proj;
  proj.s_res = s.x;
  proj.s_out = s.ln1;
  run_projection_ln_block(ctx, proj, concat, x, x1,
                          trace != nullptr ? &trace->proj : nullptr);

  FfnBlockDesc ffn;
  ffn.w1 = layer.w1;
  ffn.b1 = layer.b1;
  ffn.rq_hidden = &layer.rq_hidden;
  ffn.s_hidden = s.hidden;
  ffn.w2 = layer.w2;
  ffn.b2 = layer.b2;
  ffn.rq_ffn_out = &layer.rq_ffn_out;
  ffn.s_ffn_out = s.ffn_out;
  ffn.gamma = layer.ln2_gamma;
  ffn.beta = layer.ln2_beta;
  ffn.s_in = s.ln1;
  ffn.s_out = s.ln2;
  run_ffn_block(ctx, ffn, x1, out,
                trace != nullptr ? &trace->hidden : nullptr,
                trace != nullptr ? &trace->ffn_out : nullptr);

  if (trace != nullptr) {
    trace->ln1 = tensor::to_matrix(tensor::ConstMatrixViewI8(x1));
  }
  ctx.ws.rewind(m);
}

void run_encoder_layer(const LayerOpContext& ctx, const accel::QLayer& layer,
                       tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                       std::vector<HeadTrace>* head_traces,
                       FfnTrace* ffn_trace) {
  const auto m = ctx.ws.mark();
  auto concat = ctx.ws.matrix_i8(x.rows(), x.cols());
  run_encoder_mha_stage(ctx, layer, x, concat, head_traces);
  run_encoder_ffn_stage(ctx, layer, concat, x, out, ffn_trace);
  ctx.ws.rewind(m);
}

void run_decoder_layer(const LayerOpContext& ctx,
                       const accel::QDecoderLayer& layer,
                       tensor::ConstMatrixViewI8 x,
                       tensor::ConstMatrixViewI8 memory,
                       tensor::MatrixViewI8 out) {
  const size_t t_len = x.rows();
  const size_t d = x.cols();
  const auto m = ctx.ws.mark();

  // Masked self-attention on the QKV/QK/SV engines + projection LN.
  auto self_concat = ctx.ws.matrix_i8(t_len, d);
  run_attention_block(ctx, decoder_self_attention_desc(layer), x, x,
                      self_concat);
  auto x1 = ctx.ws.matrix_i8(t_len, d);
  run_projection_ln_block(ctx, decoder_self_projection_desc(layer),
                          self_concat, x, x1);

  // Cross-attention: projections sequenced on the same engines.
  auto cross_concat = ctx.ws.matrix_i8(t_len, d);
  run_attention_block(ctx, decoder_cross_attention_desc(layer), x1,
                      memory, cross_concat);
  auto x2 = ctx.ws.matrix_i8(t_len, d);
  run_projection_ln_block(ctx, decoder_cross_projection_desc(layer),
                          cross_concat, x1, x2);

  // FFN with the third residual LN.
  run_ffn_block(ctx, decoder_ffn_desc(layer), x2, out);
  ctx.ws.rewind(m);
}

// --- KV-cached (incremental) variants ---------------------------------------

void run_self_attention_cached(const LayerOpContext& ctx,
                               const AttentionBlockDesc& desc,
                               tensor::ConstMatrixViewI8 x, KvCache& cache,
                               size_t layer_index, size_t pos,
                               tensor::MatrixViewI8 concat) {
  if (desc.self_heads.empty()) {
    throw std::invalid_argument(
        "run_self_attention_cached: self heads required");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t h = desc.self_heads.size();
  const size_t dk = desc.self_heads[0].wqt.rows();
  if (dk * h != d) {
    throw std::invalid_argument(
        "run_self_attention_cached: head dims inconsistent");
  }
  if (cache.num_heads() != h || cache.head_dim() != dk ||
      layer_index >= cache.num_layers()) {
    throw std::invalid_argument(
        "run_self_attention_cached: cache geometry mismatch");
  }
  if (pos + n > cache.capacity() ||
      (cache.paged() && pos + n > cache.reserved_rows())) {
    throw std::invalid_argument(
        "run_self_attention_cached: cache capacity exceeded");
  }
  if (concat.rows() != n || concat.cols() != d) {
    throw std::invalid_argument(
        "run_self_attention_cached: concat shape mismatch");
  }
  const size_t total = pos + n;
  LayerKv& kv = cache.layer(layer_index);

  const accel::SoftmaxUnit softmax(desc.logit_scale);
  // Packed fp4 rows cannot be read in place (two elements per byte), so
  // that storage format always takes the gather path regardless of the
  // fallback switch; fp8 rows stay span-readable via the fused dequant.
  const bool strided =
      cache.paged() && !ctx.kv_gather_fallback && cache.span_readable();
  for (size_t head = 0; head < h; ++head) {
    const auto m = ctx.ws.mark();
    auto q = ctx.ws.matrix_i8(n, dk);
    auto weights = ctx.ws.matrix_i8(n, total);
    auto scores = ctx.ws.matrix_i8(n, dk);
    if (strided) {
      // Paged, block-strided (the default): project into workspace
      // scratch, scatter the new rows through the block table, then run
      // QK/SV straight over the block table via span-list operands —
      // the prefix is never copied and the fused softmax consumes the
      // QK accumulator tile in place of a materialized logits matrix.
      // Scatter respects copy-on-write forking: a target block still
      // shared with a forked sibling is made private before the first
      // write (the head-0 scatter of a layer pays the block copy; later
      // heads see refcount 1), and since reads never privatize, the
      // spans below always resolve through this sequence's own table.
      auto k_new = ctx.ws.matrix_i8(n, dk);
      auto v_new = ctx.ws.matrix_i8(n, dk);
      accel::run_qkv_engine(x, desc.self_heads[head], ctx.ts_mha,
                            *desc.rq_q, *desc.rq_k, *desc.rq_v, q, k_new,
                            v_new, ctx.ws, ctx.stats, ctx.gemm_pool);
      cache.scatter_self(layer_index, head, pos, k_new, v_new);
      const size_t max_runs = cache.max_self_span_runs(total);
      auto k_runs = ctx.ws.span_of<tensor::RowSpanI8>(max_runs);
      auto v_runs = ctx.ws.span_of<tensor::RowSpanI8>(max_runs);
      const tensor::RowSpanListI8 k_spans =
          cache.self_spans(layer_index, head, 0, total, k_runs);
      const tensor::RowSpanListI8 v_spans =
          cache.self_spans(layer_index, head, 1, total, v_runs);
      accel::run_qk_softmax_engine(q, k_spans, *desc.rq_logit, softmax,
                                   /*row_offset=*/pos, weights, ctx.ws,
                                   ctx.stats, ctx.gemm_pool);
      accel::run_sv_engine(weights, v_spans, *desc.rq_sv, scores, ctx.ws,
                           ctx.stats, ctx.gemm_pool);
      emit_head_scores(concat, head, dk, scores);
      ctx.ws.rewind(m);
      continue;
    }

    tensor::ConstMatrixViewI8 k_all, v_all;
    if (!cache.paged()) {
      // Dense: the QKV engine writes the new K/V rows straight into the
      // cache views, and the cached prefix is already contiguous.
      auto k_new = append_rows(kv.self_k[head], pos, n);
      auto v_new = append_rows(kv.self_v[head], pos, n);
      accel::run_qkv_engine(x, desc.self_heads[head], ctx.ts_mha,
                            *desc.rq_q, *desc.rq_k, *desc.rq_v, q, k_new,
                            v_new, ctx.ws, ctx.stats, ctx.gemm_pool);
      // Quantized storage: snap the fresh rows to what an encoded block
      // would read back, so dense and paged sequences stay bit-identical
      // under non-int8 storage (no-op for int8).
      cache.storage_roundtrip(k_new);
      cache.storage_roundtrip(v_new);
      k_all = prefix_rows(kv.self_k[head], total);
      v_all = prefix_rows(kv.self_v[head], total);
    } else {
      // Paged gather fallback (ctx.kv_gather_fallback): scatter like the
      // strided path, then copy the whole cached prefix into contiguous
      // views for the layout-blind contiguous engines — the pre-span
      // reference the block-strided path is measured (and bit-compared)
      // against. The copies are exact, so all three paths agree bit for
      // bit.
      auto k_new = ctx.ws.matrix_i8(n, dk);
      auto v_new = ctx.ws.matrix_i8(n, dk);
      accel::run_qkv_engine(x, desc.self_heads[head], ctx.ts_mha,
                            *desc.rq_q, *desc.rq_k, *desc.rq_v, q, k_new,
                            v_new, ctx.ws, ctx.stats, ctx.gemm_pool);
      cache.scatter_self(layer_index, head, pos, k_new, v_new);
      auto k_gather = ctx.ws.matrix_i8(total, dk);
      auto v_gather = ctx.ws.matrix_i8(total, dk);
      cache.gather_self(layer_index, head, total, k_gather, v_gather);
      if (ctx.stats != nullptr) {
        // Pool-side bytes actually streamed: packed fp4 rows hold half
        // the bytes the decoded elements occupy in scratch.
        ctx.stats->gathered_bytes += cache.storage_bytes(2 * total * dk);
      }
      k_all = k_gather;
      v_all = v_gather;
    }
    auto logits = ctx.ws.matrix_i8(n, total);
    accel::run_qk_engine(q, k_all, *desc.rq_logit, logits, ctx.ws,
                         ctx.stats, ctx.gemm_pool);
    softmax.run_causal_into(logits, weights, /*row_offset=*/pos);
    accel::run_sv_engine(weights, v_all, *desc.rq_sv, scores, ctx.ws,
                         ctx.stats, ctx.gemm_pool);

    emit_head_scores(concat, head, dk, scores);
    ctx.ws.rewind(m);
  }
}

void fill_cross_kv_cache(const LayerOpContext& ctx,
                         const AttentionBlockDesc& desc,
                         tensor::ConstMatrixViewI8 memory, LayerKv& kv) {
  if (desc.cross_heads.empty()) {
    throw std::invalid_argument("fill_cross_kv_cache: cross heads required");
  }
  const size_t h = desc.cross_heads.size();
  const size_t mem_rows = memory.rows();
  if (kv.cross_k.size() != h || mem_rows > kv.cross_k[0].rows()) {
    throw std::invalid_argument(
        "fill_cross_kv_cache: cache geometry mismatch");
  }
  for (size_t head = 0; head < h; ++head) {
    const accel::QCrossHeadWeights& ch = desc.cross_heads[head];
    accel::run_projection_engine(memory, ch.ckt, ch.cbk, ctx.ts_mha,
                                 *desc.rq_k,
                                 append_rows(kv.cross_k[head], 0, mem_rows),
                                 ctx.ws, ctx.stats, ctx.gemm_pool);
    accel::run_projection_engine(memory, ch.cvt, ch.cbv, ctx.ts_mha,
                                 *desc.rq_v,
                                 append_rows(kv.cross_v[head], 0, mem_rows),
                                 ctx.ws, ctx.stats, ctx.gemm_pool);
  }
}

void run_cross_attention_cached(const LayerOpContext& ctx,
                                const AttentionBlockDesc& desc,
                                tensor::ConstMatrixViewI8 x,
                                const LayerKv& kv, size_t memory_len,
                                tensor::MatrixViewI8 concat) {
  if (desc.cross_heads.empty()) {
    throw std::invalid_argument(
        "run_cross_attention_cached: cross heads required");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t h = desc.cross_heads.size();
  const size_t dk = desc.cross_heads[0].cqt.rows();
  if (dk * h != d || kv.cross_k.size() != h) {
    throw std::invalid_argument(
        "run_cross_attention_cached: head dims inconsistent");
  }
  if (memory_len == 0 || memory_len > kv.cross_k[0].rows()) {
    throw std::invalid_argument(
        "run_cross_attention_cached: bad memory length");
  }
  if (concat.rows() != n || concat.cols() != d) {
    throw std::invalid_argument(
        "run_cross_attention_cached: concat shape mismatch");
  }

  const accel::SoftmaxUnit softmax(desc.logit_scale);
  for (size_t head = 0; head < h; ++head) {
    const auto m = ctx.ws.mark();
    auto q = ctx.ws.matrix_i8(n, dk);
    accel::run_projection_engine(x, desc.cross_heads[head].cqt,
                                 desc.cross_heads[head].cbq, ctx.ts_mha,
                                 *desc.rq_q, q, ctx.ws, ctx.stats,
                                 ctx.gemm_pool);
    const tensor::ConstMatrixViewI8 k =
        prefix_rows(kv.cross_k[head], memory_len);
    const tensor::ConstMatrixViewI8 v =
        prefix_rows(kv.cross_v[head], memory_len);
    auto logits = ctx.ws.matrix_i8(n, memory_len);
    auto weights = ctx.ws.matrix_i8(n, memory_len);
    auto scores = ctx.ws.matrix_i8(n, dk);
    accel::run_qk_engine(q, k, *desc.rq_logit, logits, ctx.ws, ctx.stats,
                         ctx.gemm_pool);
    softmax.run_into(logits, weights);
    accel::run_sv_engine(weights, v, *desc.rq_sv, scores, ctx.ws,
                         ctx.stats, ctx.gemm_pool);
    emit_head_scores(concat, head, dk, scores);
    ctx.ws.rewind(m);
  }
}

void run_decoder_layer_cached(const LayerOpContext& ctx,
                              const accel::QDecoderLayer& layer,
                              tensor::ConstMatrixViewI8 x, size_t pos,
                              KvCache& cache, size_t layer_index,
                              tensor::MatrixViewI8 out, StageGate* gate) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t memory_len = cache.memory_len();
  LayerKv& kv = cache.layer(layer_index);
  const auto m = ctx.ws.mark();

  // Masked self-attention over the cached prefix (MHA-module engines).
  auto self_concat = ctx.ws.matrix_i8(n, d);
  {
    const StageScope scope(gate, Stage::kMha);
    run_self_attention_cached(ctx, decoder_self_attention_desc(layer), x,
                              cache, layer_index, pos, self_concat);
  }
  auto x1 = ctx.ws.matrix_i8(n, d);
  {
    const StageScope scope(gate, Stage::kFfn);
    run_projection_ln_block(ctx, decoder_self_projection_desc(layer),
                            self_concat, x, x1);
  }

  // Cross-attention over the prefilled memory projections.
  auto cross_concat = ctx.ws.matrix_i8(n, d);
  {
    const StageScope scope(gate, Stage::kMha);
    run_cross_attention_cached(ctx, decoder_cross_attention_desc(layer),
                               x1, kv, memory_len, cross_concat);
  }
  {
    const StageScope scope(gate, Stage::kFfn);
    auto x2 = ctx.ws.matrix_i8(n, d);
    run_projection_ln_block(ctx, decoder_cross_projection_desc(layer),
                            cross_concat, x1, x2);
    run_ffn_block(ctx, decoder_ffn_desc(layer), x2, out);
  }
  ctx.ws.rewind(m);
}

void rescale_rows_inplace(tensor::MatrixViewI8 x, double from_scale,
                          double to_scale) {
  const double ratio = from_scale / to_scale;
  for (int8_t& q : x.flat()) {
    const auto rescaled =
        static_cast<int32_t>(std::llround(static_cast<double>(q) * ratio));
    q = static_cast<int8_t>(std::clamp(rescaled, -128, 127));
  }
}

}  // namespace protea::runtime
