#include "runtime/layer_ops.hpp"

#include <stdexcept>

#include "accel/layernorm_unit.hpp"
#include "accel/softmax_unit.hpp"

namespace protea::runtime {

void run_attention_block(const LayerOpContext& ctx,
                         const AttentionBlockDesc& desc,
                         tensor::ConstMatrixViewI8 x,
                         tensor::ConstMatrixViewI8 memory,
                         tensor::MatrixViewI8 concat,
                         std::vector<HeadTrace>* traces) {
  const bool self = !desc.self_heads.empty();
  if (self == !desc.cross_heads.empty()) {
    throw std::invalid_argument(
        "run_attention_block: exactly one head set must be given");
  }
  const size_t sl = x.rows();
  const size_t d = x.cols();
  const size_t h = self ? desc.self_heads.size() : desc.cross_heads.size();
  const size_t dk =
      self ? desc.self_heads[0].wqt.rows() : desc.cross_heads[0].cqt.rows();
  if (dk * h != d) {
    throw std::invalid_argument(
        "run_attention_block: head dims inconsistent");
  }
  if (concat.rows() != sl || concat.cols() != d) {
    throw std::invalid_argument(
        "run_attention_block: concat shape mismatch");
  }
  const size_t kv_rows = memory.rows();

  const accel::SoftmaxUnit softmax(desc.logit_scale);
  if (traces != nullptr) traces->resize(h);

  for (size_t head = 0; head < h; ++head) {
    const auto m = ctx.ws.mark();
    auto q = ctx.ws.matrix_i8(sl, dk);
    auto k = ctx.ws.matrix_i8(kv_rows, dk);
    auto v = ctx.ws.matrix_i8(kv_rows, dk);
    auto logits = ctx.ws.matrix_i8(sl, kv_rows);
    auto weights = ctx.ws.matrix_i8(sl, kv_rows);
    auto scores = ctx.ws.matrix_i8(sl, dk);

    if (self) {
      accel::run_qkv_engine(x, desc.self_heads[head], ctx.ts_mha,
                            *desc.rq_q, *desc.rq_k, *desc.rq_v, q, k, v,
                            ctx.ws, ctx.stats, ctx.gemm_pool);
    } else {
      const accel::QCrossHeadWeights& ch = desc.cross_heads[head];
      accel::run_projection_engine(x, ch.cqt, ch.cbq, ctx.ts_mha,
                                   *desc.rq_q, q, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
      accel::run_projection_engine(memory, ch.ckt, ch.cbk, ctx.ts_mha,
                                   *desc.rq_k, k, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
      accel::run_projection_engine(memory, ch.cvt, ch.cbv, ctx.ts_mha,
                                   *desc.rq_v, v, ctx.ws, ctx.stats,
                                   ctx.gemm_pool);
    }
    accel::run_qk_engine(q, k, *desc.rq_logit, logits, ctx.ws, ctx.stats,
                         ctx.gemm_pool);
    if (desc.causal) {
      softmax.run_causal_into(logits, weights);
    } else {
      softmax.run_into(logits, weights);
    }
    accel::run_sv_engine(weights, v, *desc.rq_sv, scores, ctx.ws,
                         ctx.stats, ctx.gemm_pool);

    for (size_t i = 0; i < sl; ++i) {
      for (size_t c = 0; c < dk; ++c) {
        concat(i, head * dk + c) = scores(i, c);
      }
    }
    if (traces != nullptr) {
      HeadTrace& t = (*traces)[head];
      t.q = tensor::to_matrix(tensor::ConstMatrixViewI8(q));
      t.k = tensor::to_matrix(tensor::ConstMatrixViewI8(k));
      t.v = tensor::to_matrix(tensor::ConstMatrixViewI8(v));
      t.logits = tensor::to_matrix(tensor::ConstMatrixViewI8(logits));
      t.attn_weights = tensor::to_matrix(tensor::ConstMatrixViewI8(weights));
      t.scores = tensor::to_matrix(tensor::ConstMatrixViewI8(scores));
    }
    ctx.ws.rewind(m);
  }
}

void run_projection_ln_block(const LayerOpContext& ctx,
                             const ProjectionLnDesc& desc,
                             tensor::ConstMatrixViewI8 concat,
                             tensor::ConstMatrixViewI8 residual,
                             tensor::MatrixViewI8 out,
                             tensor::MatrixI8* proj_trace) {
  const size_t sl = concat.rows();
  const size_t d = desc.w.cols();
  const auto m = ctx.ws.mark();
  auto proj = ctx.ws.matrix_i8(sl, d);
  accel::run_ffn_engine(concat, desc.w, desc.bias, ctx.ts_ffn, *desc.rq,
                        accel::FfnActivation::kNone, 0.0, proj, ctx.ws,
                        ctx.stats, ctx.gemm_pool);
  auto scratch = ctx.ws.span_i32(d);
  accel::run_layernorm(desc.gamma, desc.beta, desc.ln_eps, proj,
                       desc.s_proj, residual, desc.s_res, desc.s_out, out,
                       scratch);
  if (proj_trace != nullptr) {
    *proj_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(proj));
  }
  ctx.ws.rewind(m);
}

void run_ffn_block(const LayerOpContext& ctx, const FfnBlockDesc& desc,
                   tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                   tensor::MatrixI8* hidden_trace,
                   tensor::MatrixI8* ffn_out_trace) {
  const size_t sl = x.rows();
  const size_t d = desc.w2.cols();
  const size_t f = desc.w1.cols();
  const accel::FfnActivation act =
      ctx.activation == ref::Activation::kRelu
          ? accel::FfnActivation::kRelu
          : accel::FfnActivation::kGeluLut;

  const auto m = ctx.ws.mark();
  auto hidden = ctx.ws.matrix_i8(sl, f);
  accel::run_ffn_engine(x, desc.w1, desc.b1, ctx.ts_ffn, *desc.rq_hidden,
                        act, desc.s_hidden, hidden, ctx.ws, ctx.stats,
                        ctx.gemm_pool);
  auto ffn_out = ctx.ws.matrix_i8(sl, d);
  accel::run_ffn_engine(hidden, desc.w2, desc.b2, ctx.ts_ffn,
                        *desc.rq_ffn_out, accel::FfnActivation::kNone, 0.0,
                        ffn_out, ctx.ws, ctx.stats, ctx.gemm_pool);
  auto scratch = ctx.ws.span_i32(d);
  accel::run_layernorm(desc.gamma, desc.beta, desc.ln_eps, ffn_out,
                       desc.s_ffn_out, x, desc.s_in, desc.s_out, out,
                       scratch);
  if (hidden_trace != nullptr) {
    *hidden_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(hidden));
  }
  if (ffn_out_trace != nullptr) {
    *ffn_out_trace = tensor::to_matrix(tensor::ConstMatrixViewI8(ffn_out));
  }
  ctx.ws.rewind(m);
}

void run_encoder_mha_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 concat,
                           std::vector<HeadTrace>* traces) {
  if (layer.heads.empty()) {
    throw std::invalid_argument("run_encoder_mha_stage: no heads");
  }
  AttentionBlockDesc desc;
  desc.self_heads = layer.heads;
  desc.rq_q = &layer.rq_q;
  desc.rq_k = &layer.rq_k;
  desc.rq_v = &layer.rq_v;
  desc.rq_logit = &layer.rq_logit;
  desc.rq_sv = &layer.rq_sv;
  desc.logit_scale = layer.scales.logit;
  run_attention_block(ctx, desc, x, x, concat, traces);
}

void run_encoder_ffn_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 concat,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 out, FfnTrace* trace) {
  const accel::LayerScales& s = layer.scales;
  const size_t sl = x.rows();
  const size_t d = x.cols();

  const auto m = ctx.ws.mark();
  auto x1 = ctx.ws.matrix_i8(sl, d);
  ProjectionLnDesc proj;
  proj.w = layer.wo;
  proj.bias = layer.bo;
  proj.rq = &layer.rq_proj;
  proj.gamma = layer.ln1_gamma;
  proj.beta = layer.ln1_beta;
  proj.s_proj = s.proj;
  proj.s_res = s.x;
  proj.s_out = s.ln1;
  run_projection_ln_block(ctx, proj, concat, x, x1,
                          trace != nullptr ? &trace->proj : nullptr);

  FfnBlockDesc ffn;
  ffn.w1 = layer.w1;
  ffn.b1 = layer.b1;
  ffn.rq_hidden = &layer.rq_hidden;
  ffn.s_hidden = s.hidden;
  ffn.w2 = layer.w2;
  ffn.b2 = layer.b2;
  ffn.rq_ffn_out = &layer.rq_ffn_out;
  ffn.s_ffn_out = s.ffn_out;
  ffn.gamma = layer.ln2_gamma;
  ffn.beta = layer.ln2_beta;
  ffn.s_in = s.ln1;
  ffn.s_out = s.ln2;
  run_ffn_block(ctx, ffn, x1, out,
                trace != nullptr ? &trace->hidden : nullptr,
                trace != nullptr ? &trace->ffn_out : nullptr);

  if (trace != nullptr) {
    trace->ln1 = tensor::to_matrix(tensor::ConstMatrixViewI8(x1));
  }
  ctx.ws.rewind(m);
}

void run_encoder_layer(const LayerOpContext& ctx, const accel::QLayer& layer,
                       tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                       std::vector<HeadTrace>* head_traces,
                       FfnTrace* ffn_trace) {
  const auto m = ctx.ws.mark();
  auto concat = ctx.ws.matrix_i8(x.rows(), x.cols());
  run_encoder_mha_stage(ctx, layer, x, concat, head_traces);
  run_encoder_ffn_stage(ctx, layer, concat, x, out, ffn_trace);
  ctx.ws.rewind(m);
}

void run_decoder_layer(const LayerOpContext& ctx,
                       const accel::QDecoderLayer& layer,
                       tensor::ConstMatrixViewI8 x,
                       tensor::ConstMatrixViewI8 memory,
                       tensor::MatrixViewI8 out) {
  const accel::DecoderLayerScales& s = layer.scales;
  const size_t t_len = x.rows();
  const size_t d = x.cols();
  const auto m = ctx.ws.mark();

  // Masked self-attention on the QKV/QK/SV engines + projection LN.
  auto self_concat = ctx.ws.matrix_i8(t_len, d);
  {
    AttentionBlockDesc desc;
    desc.self_heads = layer.self_heads;
    desc.rq_q = &layer.rq_q;
    desc.rq_k = &layer.rq_k;
    desc.rq_v = &layer.rq_v;
    desc.rq_logit = &layer.rq_logit;
    desc.rq_sv = &layer.rq_sv;
    desc.logit_scale = s.logit;
    desc.causal = true;
    run_attention_block(ctx, desc, x, x, self_concat);
  }
  auto x1 = ctx.ws.matrix_i8(t_len, d);
  {
    ProjectionLnDesc proj;
    proj.w = layer.wo;
    proj.bias = layer.bo;
    proj.rq = &layer.rq_proj;
    proj.gamma = layer.ln1_gamma;
    proj.beta = layer.ln1_beta;
    proj.s_proj = s.proj;
    proj.s_res = s.x;
    proj.s_out = s.ln1;
    run_projection_ln_block(ctx, proj, self_concat, x, x1);
  }

  // Cross-attention: projections sequenced on the same engines.
  auto cross_concat = ctx.ws.matrix_i8(t_len, d);
  {
    AttentionBlockDesc desc;
    desc.cross_heads = layer.cross_heads;
    desc.rq_q = &layer.rq_cq;
    desc.rq_k = &layer.rq_ck;
    desc.rq_v = &layer.rq_cv;
    desc.rq_logit = &layer.rq_clogit;
    desc.rq_sv = &layer.rq_csv;
    desc.logit_scale = s.clogit;
    run_attention_block(ctx, desc, x1, memory, cross_concat);
  }
  auto x2 = ctx.ws.matrix_i8(t_len, d);
  {
    ProjectionLnDesc proj;
    proj.w = layer.co;
    proj.bias = layer.cbo;
    proj.rq = &layer.rq_cproj;
    proj.gamma = layer.ln2_gamma;
    proj.beta = layer.ln2_beta;
    proj.s_proj = s.cproj;
    proj.s_res = s.ln1;
    proj.s_out = s.ln2;
    run_projection_ln_block(ctx, proj, cross_concat, x1, x2);
  }

  // FFN with the third residual LN.
  {
    FfnBlockDesc ffn;
    ffn.w1 = layer.w1;
    ffn.b1 = layer.b1;
    ffn.rq_hidden = &layer.rq_hidden;
    ffn.s_hidden = s.hidden;
    ffn.w2 = layer.w2;
    ffn.b2 = layer.b2;
    ffn.rq_ffn_out = &layer.rq_ffn_out;
    ffn.s_ffn_out = s.ffn_out;
    ffn.gamma = layer.ln3_gamma;
    ffn.beta = layer.ln3_beta;
    ffn.s_in = s.ln2;
    ffn.s_out = s.ln3;
    run_ffn_block(ctx, ffn, x2, out);
  }
  ctx.ws.rewind(m);
}

}  // namespace protea::runtime
