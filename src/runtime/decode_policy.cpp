#include "runtime/decode_policy.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::runtime {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

}  // namespace

// --- DecodePolicy / VocabModel ----------------------------------------------

void DecodePolicy::validate(size_t vocab) const {
  if (vocab == 0) {
    throw std::invalid_argument("DecodePolicy: empty vocabulary");
  }
  if (!(temperature > 0.0f)) {
    throw std::invalid_argument("DecodePolicy: temperature must be > 0");
  }
  if (!(top_p > 0.0f) || top_p > 1.0f) {
    throw std::invalid_argument("DecodePolicy: top_p must be in (0, 1]");
  }
  if (!(repetition_penalty > 0.0f)) {
    throw std::invalid_argument(
        "DecodePolicy: repetition_penalty must be > 0");
  }
  if (top_k > vocab) {
    throw std::invalid_argument("DecodePolicy: top_k exceeds vocabulary");
  }
  if (eos_token >= static_cast<int64_t>(vocab)) {
    throw std::invalid_argument("DecodePolicy: eos_token out of range");
  }
}

void VocabModel::validate(size_t d_model) const {
  if (head == nullptr || embed == nullptr) {
    throw std::invalid_argument("VocabModel: head/embed missing");
  }
  if (head->rows() == 0 || head->rows() != embed->rows()) {
    throw std::invalid_argument("VocabModel: head/embed row mismatch");
  }
  if (head->cols() != d_model || embed->cols() != d_model) {
    throw std::invalid_argument("VocabModel: width != d_model");
  }
}

// --- free helpers ------------------------------------------------------------

void project_logits(const tensor::MatrixF& head,
                    std::span<const float> state,
                    std::span<float> logits) {
  if (state.size() != head.cols() || logits.size() != head.rows()) {
    throw std::invalid_argument("project_logits: shape mismatch");
  }
  for (size_t v = 0; v < head.rows(); ++v) {
    double acc = 0.0;
    const auto row = head.row(v);
    for (size_t c = 0; c < row.size(); ++c) {
      acc += static_cast<double>(row[c]) * static_cast<double>(state[c]);
    }
    logits[v] = static_cast<float>(acc);
  }
}

void log_softmax_inplace(std::span<float> logits) {
  float max_l = kNegInf;
  for (float l : logits) max_l = std::max(max_l, l);
  if (max_l == kNegInf) return;  // everything masked: leave as-is
  double sum = 0.0;
  for (float l : logits) {
    if (l != kNegInf) sum += std::exp(static_cast<double>(l - max_l));
  }
  const float log_z = max_l + static_cast<float>(std::log(sum));
  for (float& l : logits) {
    if (l != kNegInf) l -= log_z;
  }
}

uint32_t argmax_logit(std::span<const float> logits) {
  if (logits.empty()) {
    throw std::invalid_argument("argmax_logit: empty logits");
  }
  uint32_t best = 0;
  for (uint32_t v = 1; v < logits.size(); ++v) {
    if (logits[v] > logits[best]) best = v;
  }
  return best;
}

// --- LogitsProcessor ---------------------------------------------------------

LogitsProcessor::LogitsProcessor(const DecodePolicy& policy, size_t vocab)
    : policy_(policy), vocab_(vocab) {
  policy.validate(vocab);
  order_.resize(vocab);
  probs_.resize(vocab);
}

void LogitsProcessor::process(std::span<float> logits,
                              std::span<const uint32_t> history) {
  if (logits.size() != vocab_) {
    throw std::invalid_argument("LogitsProcessor: vocab size mismatch");
  }
  // CTRL-style repetition penalty, applied once per distinct history
  // token: positive logits divide, negative multiply (both demote).
  if (policy_.repetition_penalty != 1.0f && !history.empty()) {
    for (uint32_t t : history) {
      if (t >= vocab_) {
        throw std::invalid_argument(
            "LogitsProcessor: history token out of range");
      }
      order_[t] = 0;  // reuse the index scratch as a seen marker
    }
    // Two passes keep the penalty idempotent for repeated tokens.
    for (uint32_t t : history) {
      if (order_[t] != 0) continue;
      order_[t] = 1;
      float& l = logits[t];
      l = l > 0.0f ? l / policy_.repetition_penalty
                   : l * policy_.repetition_penalty;
    }
  }
  if (policy_.temperature != 1.0f) {
    for (float& l : logits) {
      if (l != kNegInf) l /= policy_.temperature;
    }
  }
  const auto by_logit_desc = [&](uint32_t a, uint32_t b) {
    if (logits[a] != logits[b]) return logits[a] > logits[b];
    return a < b;  // deterministic ties
  };
  if (policy_.top_k > 0 && policy_.top_k < vocab_) {
    for (uint32_t v = 0; v < vocab_; ++v) order_[v] = v;
    std::nth_element(order_.begin(), order_.begin() + policy_.top_k - 1,
                     order_.end(), by_logit_desc);
    for (size_t i = policy_.top_k; i < vocab_; ++i) {
      logits[order_[i]] = kNegInf;
    }
  }
  if (policy_.top_p < 1.0f) {
    // Nucleus: keep the smallest probability-sorted prefix whose mass
    // reaches top_p (always at least the argmax).
    for (uint32_t v = 0; v < vocab_; ++v) order_[v] = v;
    std::sort(order_.begin(), order_.end(), by_logit_desc);
    double sum = 0.0;
    const double max_l = logits[order_[0]];
    if (logits[order_[0]] == kNegInf) return;  // everything masked already
    for (uint32_t v = 0; v < vocab_; ++v) {
      probs_[v] = logits[v] == kNegInf
                      ? 0.0
                      : std::exp(static_cast<double>(logits[v]) - max_l);
      sum += probs_[v];
    }
    double mass = 0.0;
    size_t kept = 0;
    while (kept < vocab_) {
      const uint32_t v = order_[kept];
      if (probs_[v] == 0.0) break;
      mass += probs_[v] / sum;
      ++kept;
      if (mass >= static_cast<double>(policy_.top_p)) break;
    }
    for (size_t i = kept; i < vocab_; ++i) logits[order_[i]] = kNegInf;
  }
}

// --- TokenStream -------------------------------------------------------------

TokenStream::TokenStream(const DecodePolicy& policy,
                         const VocabModel& vocab, size_t max_tokens)
    : policy_(policy),
      vocab_(vocab),
      processor_(policy, vocab.vocab_size()),
      rng_(policy.seed) {
  if (vocab.head == nullptr || vocab.embed == nullptr ||
      vocab.head->rows() != vocab.embed->rows() ||
      vocab.head->cols() != vocab.embed->cols()) {
    throw std::invalid_argument("TokenStream: inconsistent vocab model");
  }
  logits_.resize(vocab.vocab_size());
  tokens_.reserve(max_tokens);
  history_.reserve(2 * max_tokens);
}

void TokenStream::reset(std::span<const uint32_t> prompt_tokens) {
  tokens_.clear();
  history_.clear();
  for (uint32_t t : prompt_tokens) {
    if (t >= vocab_.vocab_size()) {
      throw std::invalid_argument("TokenStream: prompt token out of range");
    }
    history_.push_back(t);
  }
  rng_ = util::Xoshiro256(policy_.seed);
}

bool TokenStream::next_token(std::span<const float> state,
                             tensor::MatrixF& next) {
  project_logits(*vocab_.head, state, logits_);
  processor_.process(logits_, history_);

  uint32_t token = 0;
  if (!policy_.sample) {
    token = argmax_logit(logits_);
  } else {
    // Seeded CDF walk over the processed distribution (double softmax).
    float max_l = kNegInf;
    for (float l : logits_) max_l = std::max(max_l, l);
    double sum = 0.0;
    for (float l : logits_) {
      if (l != kNegInf) sum += std::exp(static_cast<double>(l - max_l));
    }
    const double r = rng_.next_double() * sum;
    double acc = 0.0;
    token = 0;
    bool picked = false;
    for (uint32_t v = 0; v < logits_.size(); ++v) {
      if (logits_[v] == kNegInf) continue;
      acc += std::exp(static_cast<double>(logits_[v] - max_l));
      token = v;  // last unmasked token backstops rounding
      if (r < acc) {
        picked = true;
        break;
      }
    }
    (void)picked;
  }

  tokens_.push_back(token);
  history_.push_back(token);
  if (policy_.eos_token >= 0 &&
      token == static_cast<uint32_t>(policy_.eos_token)) {
    return false;
  }
  const size_t d = vocab_.embed->cols();
  if (next.rows() != 1 || next.cols() != d) {
    next = tensor::MatrixF(1, d);
  }
  std::copy(vocab_.embed->row(token).begin(),
            vocab_.embed->row(token).end(), next.row(0).begin());
  return true;
}

std::function<bool(std::span<const float>, tensor::MatrixF&)>
TokenStream::callback() {
  return [this](std::span<const float> state, tensor::MatrixF& next) {
    return next_token(state, next);
  };
}

// --- beam search -------------------------------------------------------------

void BeamSearchOptions::validate() const {
  if (beam_width == 0) {
    throw std::invalid_argument("BeamSearchOptions: zero beam width");
  }
  if (max_new_tokens == 0) {
    throw std::invalid_argument("BeamSearchOptions: zero max_new_tokens");
  }
  if (threads == 0) {
    throw std::invalid_argument("BeamSearchOptions: zero threads");
  }
  if (kv_block_rows == 0) {
    throw std::invalid_argument(
        "BeamSearchOptions: COW forking requires the paged layout "
        "(kv_block_rows > 0)");
  }
  if (length_penalty < 0.0f) {
    throw std::invalid_argument(
        "BeamSearchOptions: negative length_penalty");
  }
}

size_t beam_worst_case_blocks(size_t prompt_rows, size_t max_new_tokens,
                              size_t beam_width, size_t block_rows,
                              bool cow) {
  if (prompt_rows == 0 || max_new_tokens == 0 || beam_width == 0 ||
      block_rows == 0) {
    throw std::invalid_argument("beam_worst_case_blocks: zero argument");
  }
  // The last selected token's embedding is never appended, so K beams
  // emitting max_new tokens cache prompt + max_new - 1 rows each.
  const size_t total = prompt_rows + max_new_tokens - 1;
  const size_t full = util::ceil_div(total, block_rows);
  if (!cow) {
    // Eager forks: two generations of K private lineages are live while
    // the next generation is copied off the current one.
    return 2 * beam_width * full;
  }
  // COW: the prompt lineage is counted once; each beam can privately
  // hold only blocks past the last fully-shared one (its divergent tail
  // plus the write-triggered copy of the straddling block).
  const size_t shared = util::ceil_div(prompt_rows, block_rows);
  const size_t tail = full - prompt_rows / block_rows;
  return shared + beam_width * tail;
}

BeamSearchDecoder::BeamSearchDecoder(const accel::AccelConfig& config,
                                     const accel::QuantizedDecoder& model,
                                     const VocabModel& vocab,
                                     const BeamSearchOptions& options)
    : config_(&config),
      model_(&model),
      vocab_(&vocab),
      options_(options) {
  options_.validate();
  vocab.validate(model.config.d_model);
  options_.logits.validate(vocab.vocab_size());
  const size_t vsize = vocab.vocab_size();
  if (options_.beam_width > vsize) {
    throw std::invalid_argument(
        "BeamSearchDecoder: beam width exceeds the vocabulary");
  }
  const size_t k = options_.beam_width;
  const size_t d = model.config.d_model;
  const size_t row_bytes = size_t{model.config.num_layers} *
                           model.config.num_heads * 2 *
                           model.config.head_dim();

  if (options_.kv_pool != nullptr) {
    if (!options_.kv_pool->configured() ||
        options_.kv_pool->block_rows() != options_.kv_block_rows ||
        options_.kv_pool->row_bytes() != row_bytes) {
      throw std::invalid_argument(
          "BeamSearchDecoder: shared pool geometry mismatch");
    }
    pool_ = options_.kv_pool;
  } else {
    // Private pool sized at the decoder's own worst case over any
    // prompt/max_new split (a full lineage is ceil(seq_len / br)).
    const size_t full =
        util::ceil_div(size_t{model.config.seq_len}, options_.kv_block_rows);
    owned_pool_ = std::make_unique<KvBlockPool>();
    owned_pool_->configure(options_.cow ? (k + 1) * full : 2 * k * full,
                           options_.kv_block_rows, row_bytes);
    pool_ = owned_pool_.get();
  }

  GenerationOptions session_opts;
  session_opts.kv_block_rows = options_.kv_block_rows;
  session_opts.kv_pool = pool_;
  cur_sessions_.reserve(k);
  next_sessions_.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    cur_sessions_.push_back(std::make_unique<GenerationSession>(
        config, model, nullptr, session_opts));
    next_sessions_.push_back(std::make_unique<GenerationSession>(
        config, model, nullptr, session_opts));
  }

  const size_t max_len = size_t{model.config.seq_len} + 1;
  const auto reserve_beam = [&](Beam& b) {
    b.tokens.reserve(max_len);
    b.history.reserve(2 * max_len);
  };
  cur_beams_.resize(k);
  next_beams_.resize(k);
  for (size_t j = 0; j < k; ++j) {
    reserve_beam(cur_beams_[j]);
    reserve_beam(next_beams_[j]);
  }
  processors_.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    processors_.emplace_back(options_.logits, vsize);
  }
  logits_ = tensor::MatrixF(k, vsize);
  token_embeds_.resize(k);
  states_.resize(k);
  for (size_t j = 0; j < k; ++j) {
    token_embeds_[j] = tensor::MatrixF(1, d);
    states_[j] = tensor::MatrixF(1, d);
  }
  cand_order_.reserve(k * vsize);
  cand_scores_.resize(k * vsize);
  moved_from_.resize(k);
  finished_.resize(k);
  for (BeamHypothesis& h : finished_) h.tokens.reserve(max_len);
  if (options_.threads > 1) {
    workers_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
}

BeamSearchDecoder::~BeamSearchDecoder() = default;

double BeamSearchDecoder::length_norm(size_t len) const {
  if (options_.length_penalty == 0.0f) return 1.0;
  return std::pow((5.0 + static_cast<double>(len)) / 6.0,
                  static_cast<double>(options_.length_penalty));
}

void BeamSearchDecoder::step_beam(size_t j) {
  Beam& beam = cur_beams_[j];
  std::copy(vocab_->embed->row(beam.pending).begin(),
            vocab_->embed->row(beam.pending).end(),
            token_embeds_[j].row(0).begin());
  cur_sessions_[j]->decode_step(token_embeds_[j], states_[j]);
  auto logits = logits_.row(j);
  project_logits(*vocab_->head, states_[j].row(0), logits);
  processors_[j].process(logits, beam.history);
  log_softmax_inplace(logits);
}

void BeamSearchDecoder::offer_finished(const Beam& beam, uint32_t token,
                                       double sum) {
  const size_t len = beam.tokens.size() + 1;
  const double score = sum / length_norm(len);
  size_t slot;
  if (finished_count_ < finished_.size()) {
    slot = finished_count_++;
  } else {
    slot = 0;  // replace the worst kept hypothesis if we beat it
    for (size_t i = 1; i < finished_count_; ++i) {
      if (finished_[i].score < finished_[slot].score) slot = i;
    }
    if (finished_[slot].score >= score) return;
  }
  BeamHypothesis& h = finished_[slot];
  h.tokens = beam.tokens;
  h.tokens.push_back(token);
  h.sum_logprob = sum;
  h.score = score;
  h.finished = true;
}

void BeamSearchDecoder::release_all() {
  for (auto& s : cur_sessions_) s->end_sequence();
  for (auto& s : next_sessions_) s->end_sequence();
}

void BeamSearchDecoder::preempt_restore_group(const tensor::MatrixF& prompt,
                                              const tensor::MatrixF& memory,
                                              KvCreditLease& lease) {
  // The group preempts as a unit: every session's blocks AND the
  // admission credit return to the pool before on_preempted fires —
  // a higher-priority requester sees the full headroom, not a partially
  // drained group.
  last_run_.kv_blocks_peak = std::max<size_t>(last_run_.kv_blocks_peak,
                                              lease.credit()->peak);
  release_all();
  lease.release();
  ++last_run_.group_preemptions;
  if (options_.on_preempted) options_.on_preempted();

  // Re-admit at the same COW-aware worst case: the rebuilt group is in
  // exactly the state an unpreempted run reaches at this point (shared
  // prompt lineage + per-beam divergent tails), which that bound covers.
  if (lease.acquire_wait(last_run_.worst_case_blocks)) {
    ++last_run_.credit_waits;
  }

  // Rebuild bit-exactly from CPU-side state: one prompt prefill (chunk
  // invariance makes its K/V bytes identical to the original), re-fork
  // the live beams, then replay each beam's committed tokens — all but
  // the still-pending tokens.back() — through the same decode path.
  // Selection state (histories, scores, logits scratch) never left CPU
  // memory, so the next selection round is unchanged.
  tensor::MatrixF scratch;
  cur_sessions_[0]->prefill(prompt, memory, scratch);
  last_run_.replayed_rows += prompt.rows();
  for (size_t j = 1; j < live_; ++j) {
    cur_sessions_[j]->fork_from(*cur_sessions_[0], !options_.cow);
    ++last_run_.forks;
  }
  for (size_t j = 0; j < live_; ++j) {
    const Beam& beam = cur_beams_[j];
    for (size_t t = 0; t + 1 < beam.tokens.size(); ++t) {
      std::copy(vocab_->embed->row(beam.tokens[t]).begin(),
                vocab_->embed->row(beam.tokens[t]).end(),
                token_embeds_[j].row(0).begin());
      cur_sessions_[j]->decode_step(token_embeds_[j], states_[j]);
      ++last_run_.replayed_rows;
    }
  }
}

std::vector<BeamHypothesis> BeamSearchDecoder::generate(
    std::span<const uint32_t> prompt_tokens,
    const tensor::MatrixF& memory) {
  const size_t k = options_.beam_width;
  const size_t vsize = vocab_->vocab_size();
  const size_t capacity = cur_sessions_[0]->capacity();
  if (prompt_tokens.empty()) {
    throw std::invalid_argument("BeamSearchDecoder: empty prompt");
  }
  if (prompt_tokens.size() + options_.max_new_tokens > capacity + 1) {
    throw std::invalid_argument(
        "BeamSearchDecoder: prompt + max_new_tokens exceeds seq_len + 1");
  }
  for (uint32_t t : prompt_tokens) {
    if (t >= vsize) {
      throw std::invalid_argument(
          "BeamSearchDecoder: prompt token out of range");
    }
  }
  const size_t d = model_->config.d_model;
  tensor::MatrixF prompt(prompt_tokens.size(), d);
  for (size_t r = 0; r < prompt_tokens.size(); ++r) {
    std::copy(vocab_->embed->row(prompt_tokens[r]).begin(),
              vocab_->embed->row(prompt_tokens[r]).end(),
              prompt.row(r).begin());
  }

  last_run_ = BeamSearchStats{};
  const uint64_t cow_before = pool_->cow_copies();
  uint64_t macs_before = 0;
  for (auto& s : cur_sessions_) macs_before += s->stats().macs;
  for (auto& s : next_sessions_) macs_before += s->stats().macs;

  // --- admission: reserve the group's COW-aware worst case -----------------
  // All or nothing, like the generation scheduler's reserve-at-admission:
  // a beam group either gets its worst-case headroom (and then never
  // waits mid-decode — COW copies included) or parks here holding
  // nothing, so shared-pool backpressure cannot deadlock.
  const size_t worst = beam_worst_case_blocks(
      prompt_tokens.size(), options_.max_new_tokens, k,
      options_.kv_block_rows, options_.cow);
  last_run_.worst_case_blocks = worst;
  if (worst > pool_->num_blocks()) {
    throw std::invalid_argument(
        "BeamSearchDecoder: worst case exceeds the block pool");
  }
  KvCreditLease lease(*pool_);
  if (lease.acquire_wait(worst)) {
    ++last_run_.credit_waits;
  }
  for (auto& s : cur_sessions_) s->bind_kv_credit(lease.credit());
  for (auto& s : next_sessions_) s->bind_kv_credit(lease.credit());
  // Declared AFTER the lease, so on any exit — return or unwind — it
  // runs FIRST: blocks are released and sessions unbound before the
  // lease's destructor hands the credit back (the pool requires that
  // ordering).
  struct GroupScope {
    BeamSearchDecoder& d;
    KvCreditLease& lease;
    ~GroupScope() {
      d.release_all();
      for (auto& s : d.cur_sessions_) s->bind_kv_credit(nullptr);
      for (auto& s : d.next_sessions_) s->bind_kv_credit(nullptr);
      d.last_run_.kv_blocks_peak = std::max<size_t>(
          d.last_run_.kv_blocks_peak, lease.credit()->peak);
    }
  } group_scope{*this, lease};

  std::vector<BeamHypothesis> out;
  {
    finished_count_ = 0;
    live_ = 0;

    // One prefill; every beam forks off this prefix.
    tensor::MatrixF prefill_states;
    cur_sessions_[0]->prefill(prompt, memory, prefill_states);

    // Seed the K beams from the prefill's last state.
    {
      auto logits = logits_.row(0);
      cur_beams_[0].history.assign(prompt_tokens.begin(),
                                   prompt_tokens.end());
      project_logits(*vocab_->head, prefill_states.row(prompt.rows() - 1),
                     logits);
      processors_[0].process(logits, cur_beams_[0].history);
      log_softmax_inplace(logits);
      cand_order_.clear();
      for (uint32_t v = 0; v < vsize; ++v) cand_order_.push_back(v);
      // The seeding scan consumes at most K live picks + one EOS offer,
      // so ranking the top K+1 suffices.
      const auto seed_mid =
          cand_order_.begin() +
          std::min<size_t>(k + 1, cand_order_.size());
      std::partial_sort(cand_order_.begin(), seed_mid, cand_order_.end(),
                        [&](uint64_t a, uint64_t b) {
                          if (logits[a] != logits[b]) {
                            return logits[a] > logits[b];
                          }
                          return a < b;
                        });
      Beam seed;  // history template for finished offers at rank 0
      seed.tokens.clear();
      seed.history.assign(prompt_tokens.begin(), prompt_tokens.end());
      for (size_t rank = 0; rank < vsize && live_ < k; ++rank) {
        const uint32_t v = static_cast<uint32_t>(cand_order_[rank]);
        const double lp = logits[v];
        if (lp == -std::numeric_limits<double>::infinity()) break;
        if (options_.logits.eos_token >= 0 &&
            v == static_cast<uint32_t>(options_.logits.eos_token)) {
          offer_finished(seed, v, lp);
          continue;
        }
        const size_t j = live_++;
        if (j > 0) {
          cur_sessions_[j]->fork_from(*cur_sessions_[0], !options_.cow);
          ++last_run_.forks;
        }
        Beam& beam = cur_beams_[j];
        beam.pending = v;
        beam.sum_logprob = lp;
        beam.tokens.clear();
        beam.tokens.push_back(v);
        beam.history.assign(prompt_tokens.begin(), prompt_tokens.end());
        beam.history.push_back(v);
      }
    }

    // --- fork / step / select loop (steady state: no heap allocations
    // in stepped mode) ------------------------------------------------------
    uint32_t generated = 1;
    while (live_ > 0 && generated < options_.max_new_tokens) {
      if (options_.preempt_point && options_.preempt_point(generated)) {
        preempt_restore_group(prompt, memory, lease);
      }
      if (workers_ != nullptr) {
        for (size_t j = 0; j < live_; ++j) {
          workers_->submit([this, j] { step_beam(j); });
        }
        workers_->wait_idle();
      } else {
        for (size_t j = 0; j < live_; ++j) step_beam(j);
      }
      last_run_.decode_steps += live_;

      // Deterministic candidate ranking over live x vocab.
      cand_order_.clear();
      for (size_t j = 0; j < live_; ++j) {
        for (uint32_t v = 0; v < vsize; ++v) {
          const uint64_t flat = j * vsize + v;
          cand_scores_[flat] =
              cur_beams_[j].sum_logprob +
              static_cast<double>(logits_(j, v));
          cand_order_.push_back(flat);
        }
      }
      // The selection scan consumes at most K survivors + K EOS offers
      // (EOS is one token id, so each live beam contributes at most one),
      // so only the true top 2K candidates are ever read — partial_sort
      // keeps per-token selection near-linear in live x vocab instead of
      // paying a full sort.
      const auto mid = cand_order_.begin() +
                       std::min<size_t>(2 * k, cand_order_.size());
      std::partial_sort(cand_order_.begin(), mid, cand_order_.end(),
                        [&](uint64_t a, uint64_t b) {
                          if (cand_scores_[a] != cand_scores_[b]) {
                            return cand_scores_[a] > cand_scores_[b];
                          }
                          return a < b;
                        });

      size_t new_live = 0;
      std::fill(moved_from_.begin(), moved_from_.end(), SIZE_MAX);
      for (size_t rank = 0;
           rank < cand_order_.size() && new_live < k; ++rank) {
        const uint64_t flat = cand_order_[rank];
        const size_t j = flat / vsize;
        const uint32_t v = static_cast<uint32_t>(flat % vsize);
        const double sum = cand_scores_[flat];
        if (sum == -std::numeric_limits<double>::infinity()) break;
        if (options_.logits.eos_token >= 0 &&
            v == static_cast<uint32_t>(options_.logits.eos_token)) {
          offer_finished(cur_beams_[j], v, sum);
          continue;
        }
        // Survivor. The FIRST survivor of a source beam ADOPTS its
        // session outright (pointer swap — no fork, no cross-K/V copy):
        // the common top-beam-continues case costs nothing. Only
        // additional survivors of the same source fork the cache.
        if (moved_from_[j] == SIZE_MAX) {
          std::swap(next_sessions_[new_live], cur_sessions_[j]);
          moved_from_[j] = new_live;
        } else {
          next_sessions_[new_live]->fork_from(
              *next_sessions_[moved_from_[j]], !options_.cow);
          ++last_run_.forks;
        }
        Beam& dst = next_beams_[new_live];
        const Beam& src = cur_beams_[j];
        dst.pending = v;
        dst.sum_logprob = sum;
        dst.tokens = src.tokens;
        dst.tokens.push_back(v);
        dst.history = src.history;
        dst.history.push_back(v);
        ++new_live;
      }
      // Unclaimed sources retire; adopted sessions' old slots now hold
      // the (empty) swapped-out sessions, for which this is a no-op.
      for (size_t j = 0; j < live_; ++j) cur_sessions_[j]->end_sequence();
      std::swap(cur_sessions_, next_sessions_);
      std::swap(cur_beams_, next_beams_);
      live_ = new_live;
      ++generated;
    }

    // --- finalize ------------------------------------------------------------
    out.reserve(finished_count_ + live_);
    for (size_t i = 0; i < finished_count_; ++i) {
      out.push_back(finished_[i]);
    }
    for (size_t j = 0; j < live_; ++j) {
      const Beam& beam = cur_beams_[j];
      BeamHypothesis h;
      h.tokens = beam.tokens;
      h.sum_logprob = beam.sum_logprob;
      h.score = beam.sum_logprob / length_norm(beam.tokens.size());
      h.finished = false;
      out.push_back(std::move(h));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const BeamHypothesis& a, const BeamHypothesis& b) {
                       return a.score > b.score;
                     });
    if (out.size() > k) out.resize(k);
  }

  last_run_.cow_copies = pool_->cow_copies() - cow_before;
  uint64_t macs_after = 0;
  for (auto& s : cur_sessions_) macs_after += s->stats().macs;
  for (auto& s : next_sessions_) macs_after += s->stats().macs;
  last_run_.macs = macs_after - macs_before;
  return out;
}

}  // namespace protea::runtime
