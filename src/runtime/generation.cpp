#include "runtime/generation.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "numeric/quantizer.hpp"
#include "runtime/module_gate.hpp"
#include "runtime/prefix_cache.hpp"
#include "runtime/telemetry.hpp"
#include "tensor/qgemm.hpp"
#include "util/math_util.hpp"
#include "util/stopwatch.hpp"

namespace protea::runtime {

// --- GenerationSession -------------------------------------------------------

GenerationSession::GenerationSession(const accel::AccelConfig& config,
                                     const accel::QuantizedDecoder& model,
                                     accel::EngineStats* stats,
                                     const GenerationOptions& options)
    : config_(&config),
      model_(&model),
      options_(options),
      stats_(stats != nullptr ? stats : &own_stats_) {
  config.validate();
  accel::validate_runtime(config.synth, model.config);
  kv_.configure(model.config.num_layers, model.config.num_heads,
                model.config.head_dim(), model.config.seq_len,
                config.synth.max_seq_len,
                KvCacheOptions{.block_rows = options_.kv_block_rows,
                               .pool = options_.kv_pool,
                               .storage = options_.kv_storage});
  warm();
}

void GenerationSession::refresh_kv_stats() {
  if (!kv_.paged() || kv_.pool() == nullptr) return;
  // Pool-wide occupancy: with a shared pool this aggregates every
  // sequence currently holding blocks, which is the serving-relevant
  // number (how full is the KV memory, how close is backpressure).
  stats_->kv_blocks_in_use = kv_.pool()->used_blocks();
  stats_->kv_blocks_peak = std::max<uint64_t>(
      stats_->kv_blocks_peak, kv_.pool()->peak_used_blocks());
}

void GenerationSession::run_rows(const tensor::MatrixF& rows,
                                 tensor::MatrixF& states, StageGate* gate,
                                 accel::EngineStats* stats) {
  const ref::ModelConfig& cfg = model_->config;
  const size_t n = rows.rows();
  const size_t d = cfg.d_model;
  const size_t pos = kv_.len();

  // Paged caches grow their block table here, on demand — a standalone
  // session with a private pool can always cover its capacity, while a
  // scheduler sharing a pool reserves at admission so this never throws
  // mid-flight.
  const size_t reserved_before = kv_.reserved_rows();
  kv_.reserve_rows(pos + n);
  if (kv_.reserved_rows() != reserved_before) refresh_kv_stats();

  const auto m = ws_.mark();
  auto x = ws_.matrix_i8(n, d);
  auto y = ws_.matrix_i8(n, d);

  numeric::Quantizer quant(8, /*pow2_scale=*/true);
  quant.set_scale(model_->layers.front().scales.x);
  quant.quantize(rows.flat(), x.flat());

  const LayerOpContext ctx{.ws = ws_,
                           .ts_mha = config_->synth.ts_mha,
                           .ts_ffn = config_->synth.ts_ffn,
                           .activation = cfg.activation,
                           .stats = stats,
                           .gemm_pool = tensor::qgemm_default_pool(),
                           .kv_gather_fallback = options_.kv_gather_fallback};

  double out_scale = model_->layers.front().scales.x;
  for (size_t li = 0; li < model_->layers.size(); ++li) {
    const accel::QDecoderLayer& layer = model_->layers[li];
    if (layer.scales.x != out_scale) {
      rescale_rows_inplace(x, out_scale, layer.scales.x);
    }
    run_decoder_layer_cached(ctx, layer, x, pos, kv_, li, y, gate);
    std::swap(x, y);
    out_scale = layer.scales.ln3;
  }
  kv_.append(n);

  if (states.rows() != n || states.cols() != d) {
    states = tensor::MatrixF(n, d);
  }
  quant.set_scale(out_scale);
  quant.dequantize(x.flat(), states.flat());
  ws_.rewind(m);
}

void GenerationSession::warm() {
  // Fake a full cache (configure() zero-filled the dense views, and the
  // pool zero-fills its blocks, so the engines read defined bytes) and
  // run one step at the worst-case shape: the arena's consolidated block
  // then covers every real decode_step, which only ever allocates the
  // same sequence of equal-or-smaller views. A shared pool clamps the
  // warm shape to the rows it can back right now (sessions are
  // constructed before serving starts, so this is normally everything).
  kv_.begin_sequence(kv_.memory_capacity());
  size_t warm_rows = kv_.capacity();
  if (kv_.paged()) {
    const size_t backable =
        kv_.reserved_rows() +
        kv_.pool()->uncommitted_free_blocks() * kv_.block_rows();
    warm_rows = std::min(warm_rows, backable);
  }
  if (warm_rows == 0) {  // pool fully held elsewhere: warm lazily later
    kv_.begin_sequence(0);
    return;
  }
  kv_.reserve_rows(warm_rows);
  if (warm_rows > 1) {
    kv_.append(warm_rows - 1);
  }
  const tensor::MatrixF token(1, model_->config.d_model, 0.0f);
  tensor::MatrixF state;
  run_rows(token, state, /*gate=*/nullptr, /*stats=*/nullptr);
  kv_.begin_sequence(0);
  kv_.release_blocks();
  ws_.reset();
}

void GenerationSession::prefill_begin(const tensor::MatrixF& memory,
                                      StageGate* gate) {
  const ref::ModelConfig& cfg = model_->config;
  if (memory.cols() != cfg.d_model) {
    throw std::invalid_argument("prefill: width mismatch");
  }
  if (memory.rows() == 0 || memory.rows() > kv_.memory_capacity()) {
    throw std::invalid_argument("prefill: bad memory length");
  }
  kv_.begin_sequence(memory.rows());
  fill_cross(memory, gate);
}

void GenerationSession::fill_cross(const tensor::MatrixF& memory,
                                   StageGate* gate) {
  const ref::ModelConfig& cfg = model_->config;
  // One-time cross K/V projection of the quantized encoder memory — the
  // work the full-recompute path redoes on every autoregressive step.
  const auto m = ws_.mark();
  auto mem_q = ws_.matrix_i8(memory.rows(), memory.cols());
  numeric::Quantizer quant(8, true);
  quant.set_scale(model_->memory_scale);
  quant.quantize(memory.flat(), mem_q.flat());

  const LayerOpContext ctx{.ws = ws_,
                           .ts_mha = config_->synth.ts_mha,
                           .ts_ffn = config_->synth.ts_ffn,
                           .activation = cfg.activation,
                           .stats = stats_,
                           .gemm_pool = tensor::qgemm_default_pool()};
  {
    // The projections run on the MHA-module (QKV/projection) engines.
    const StageScope scope(gate, Stage::kMha);
    for (size_t li = 0; li < model_->layers.size(); ++li) {
      fill_cross_kv_cache(ctx,
                          decoder_cross_attention_desc(model_->layers[li]),
                          mem_q, kv_.layer(li));
    }
  }
  ws_.rewind(m);
}

size_t GenerationSession::prefill_begin_cached(
    PrefixCache& cache, const tensor::MatrixF& prefix,
    const tensor::MatrixF& memory, tensor::MatrixF& states, StageGate* gate,
    bool* cross_hit_out) {
  const ref::ModelConfig& cfg = model_->config;
  if (memory.cols() != cfg.d_model || prefix.cols() != cfg.d_model) {
    throw std::invalid_argument("prefill: width mismatch");
  }
  if (memory.rows() == 0 || memory.rows() > kv_.memory_capacity()) {
    throw std::invalid_argument("prefill: bad memory length");
  }
  if (prefix.rows() == 0 || prefix.rows() > kv_.capacity()) {
    throw std::invalid_argument("prefill: bad prefix length");
  }
  kv_.begin_sequence(memory.rows());

  bool cross_hit = false;
  const size_t adopted = cache.adopt(memory, prefix, kv_, states, &cross_hit);
  if (cross_hit) {
    ++stats_->cross_kv_hits;
    // Bytes the skipped projection pass would have written.
    stats_->prefix_bytes_saved += uint64_t{cfg.num_layers} * cfg.num_heads *
                                  2 * memory.rows() * cfg.head_dim();
  } else {
    ++stats_->cross_kv_misses;
    fill_cross(memory, gate);
    cache.publish_cross(memory, kv_);
  }
  if (adopted > 0) {
    ++stats_->prefix_hits;
    stats_->prefix_rows_adopted += adopted;
    stats_->prefix_bytes_saved += adopted * kv_.pool()->row_bytes();
    refresh_kv_stats();
  } else {
    ++stats_->prefix_misses;
  }
  if (cross_hit_out != nullptr) *cross_hit_out = cross_hit;
  return adopted;
}

bool GenerationSession::prefill_begin_cross(PrefixCache& cache,
                                            const tensor::MatrixF& memory,
                                            StageGate* gate) {
  const ref::ModelConfig& cfg = model_->config;
  if (memory.cols() != cfg.d_model) {
    throw std::invalid_argument("prefill: width mismatch");
  }
  if (memory.rows() == 0 || memory.rows() > kv_.memory_capacity()) {
    throw std::invalid_argument("prefill: bad memory length");
  }
  kv_.begin_sequence(memory.rows());
  if (cache.cross_into(memory, kv_)) {
    ++stats_->cross_kv_hits;
    stats_->prefix_bytes_saved += uint64_t{cfg.num_layers} * cfg.num_heads *
                                  2 * memory.rows() * cfg.head_dim();
    return true;
  }
  ++stats_->cross_kv_misses;
  fill_cross(memory, gate);
  cache.publish_cross(memory, kv_);
  return false;
}

void GenerationSession::publish_prefix(PrefixCache& cache,
                                       const tensor::MatrixF& prefix,
                                       const tensor::MatrixF& memory,
                                       const tensor::MatrixF& states) {
  cache.publish(memory, prefix, states, kv_);
}

void GenerationSession::prefill_rows(const tensor::MatrixF& rows,
                                     tensor::MatrixF& states,
                                     StageGate* gate) {
  if (kv_.memory_len() == 0) {
    throw std::logic_error("prefill_rows: prefill_begin() first");
  }
  if (rows.cols() != model_->config.d_model) {
    throw std::invalid_argument("prefill_rows: width mismatch");
  }
  if (rows.rows() == 0 || kv_.len() + rows.rows() > kv_.capacity()) {
    throw std::invalid_argument("prefill_rows: bad row count");
  }
  run_rows(rows, states, gate, stats_);
}

void GenerationSession::prefill(const tensor::MatrixF& prefix,
                                const tensor::MatrixF& memory,
                                tensor::MatrixF& states, StageGate* gate) {
  const ref::ModelConfig& cfg = model_->config;
  if (prefix.cols() != cfg.d_model) {
    throw std::invalid_argument("prefill: width mismatch");
  }
  if (prefix.rows() == 0 || prefix.rows() > kv_.capacity()) {
    throw std::invalid_argument("prefill: bad prefix length");
  }
  prefill_begin(memory, gate);

  const size_t t_rows = prefix.rows();
  const size_t chunk = options_.prefill_chunk;
  if (chunk == 0 || chunk >= t_rows) {
    run_rows(prefix, states, gate, stats_);
    return;
  }
  // Bounded-chunk passes: every op is row-wise and the causal mask only
  // looks backwards, so the chunked walk is bit-identical to one pass.
  if (states.rows() != t_rows || states.cols() != cfg.d_model) {
    states = tensor::MatrixF(t_rows, cfg.d_model);
  }
  tensor::MatrixF chunk_states;
  for (size_t pos = 0; pos < t_rows; pos += chunk) {
    const size_t n = std::min(chunk, t_rows - pos);
    const auto rows = prefix.slice_rows(pos, n);
    run_rows(rows, chunk_states, gate, stats_);
    for (size_t r = 0; r < n; ++r) {
      std::copy(chunk_states.row(r).begin(), chunk_states.row(r).end(),
                states.row(pos + r).begin());
    }
  }
}

void GenerationSession::decode_step(const tensor::MatrixF& token,
                                    tensor::MatrixF& state,
                                    StageGate* gate) {
  if (kv_.memory_len() == 0) {
    throw std::logic_error("decode_step: prefill() a sequence first");
  }
  if (token.rows() != 1 || token.cols() != model_->config.d_model) {
    throw std::invalid_argument("decode_step: token must be 1 x d_model");
  }
  if (kv_.len() >= kv_.capacity()) {
    throw std::invalid_argument("decode_step: target capacity reached");
  }
  run_rows(token, state, gate, stats_);
}

bool GenerationSession::try_reserve_rows(size_t rows) {
  const size_t reserved_before = kv_.reserved_rows();
  const bool ok = kv_.try_reserve_rows(rows);
  if (kv_.reserved_rows() != reserved_before) refresh_kv_stats();
  return ok;
}

void GenerationSession::reserve_rows_wait(size_t rows) {
  kv_.reserve_rows_wait(rows);
  refresh_kv_stats();
}

void GenerationSession::end_sequence() {
  kv_.release_blocks();
  refresh_kv_stats();
}

void GenerationSession::fork_from(GenerationSession& parent,
                                  bool eager_copy) {
  if (&parent == this) {
    throw std::invalid_argument("GenerationSession::fork_from: self fork");
  }
  if (model_ != parent.model_) {
    throw std::invalid_argument(
        "GenerationSession::fork_from: sessions must share one model");
  }
  kv_.fork_from(parent.kv_, eager_copy);  // enforces the shared pool
  refresh_kv_stats();
}

void GenerationSession::bind_kv_credit(KvPoolCredit* credit) {
  kv_.bind_credit(credit);
}

size_t GenerationSession::swap_out(std::vector<int8_t>& dst) {
  const size_t rows = kv_.swap_out(dst);
  refresh_kv_stats();
  return rows;
}

bool GenerationSession::try_swap_in(std::span<const int8_t> src,
                                    size_t rows) {
  const bool ok = kv_.try_swap_in(src, rows);
  if (ok) refresh_kv_stats();
  return ok;
}

// --- GenerationScheduler -----------------------------------------------------

namespace {

/// One in-flight sequence bound to a slot's session: chunked prefill at
/// and after admission, one decode step per scheduler step,
/// callback-driven stop.
struct ActiveSeq {
  const GenerationRequest* req = nullptr;
  GenerationResult* result = nullptr;
  PrefixCache* cache = nullptr;  // shared prefix cache (may be null)
  tensor::MatrixF next;          // next token embedding (from the callback)
  tensor::MatrixF state;         // last decode output (1 x d)
  tensor::MatrixF chunk_states;  // per-chunk prefill outputs
  size_t prefill_pos = 0;        // prompt rows already through the stack
  bool prefilling = false;
  bool done = false;

  /// Cache rows the sequence can ever hold — the admission reservation.
  /// The final token is emitted from the last cached row's state and its
  /// embedding is never fed back, so prefix + max_new may exceed the
  /// capacity by one without needing a row for it.
  static size_t rows_needed(const GenerationRequest& r, size_t capacity) {
    return std::min<size_t>(r.prefix.rows() + r.max_new_tokens, capacity);
  }

  void begin(GenerationSession& session, StageGate* gate) {
    result->states = tensor::MatrixF(
        req->prefix.rows() + req->max_new_tokens, req->prefix.cols());
    result->steps = 0;
    if (cache != nullptr) {
      // Adopted rows land straight in the result states; the prefill
      // loop below covers only the uncovered tail (>= 1 row always).
      prefill_pos = session.prefill_begin_cached(
          *cache, req->prefix, *req->memory, result->states, gate);
    } else {
      session.prefill_begin(*req->memory, gate);
      prefill_pos = 0;
    }
    prefilling = true;
  }

  /// One prompt pass of at most `chunk` rows (0 = all remaining rows).
  /// The pass completing the prompt produces the first token; a token
  /// whose state row cannot be cached (position == capacity) finishes
  /// the sequence right after the callback emitted it.
  void prefill_step(GenerationSession& session, StageGate* gate,
                    size_t chunk) {
    const size_t t_rows = req->prefix.rows();
    const size_t n = chunk == 0 ? t_rows - prefill_pos
                                : std::min(chunk, t_rows - prefill_pos);
    const auto rows = req->prefix.slice_rows(prefill_pos, n);
    session.prefill_rows(rows, chunk_states, gate);
    for (size_t r = 0; r < n; ++r) {
      std::copy(chunk_states.row(r).begin(), chunk_states.row(r).end(),
                result->states.row(prefill_pos + r).begin());
    }
    prefill_pos += n;
    if (prefill_pos < t_rows) return;
    prefilling = false;
    if (cache != nullptr) {
      session.publish_prefix(*cache, req->prefix, *req->memory,
                             result->states);
    }
    done = req->max_new_tokens == 0 ||
           !req->next_token(result->states.row(t_rows - 1), next);
    if (!done && session.position() >= session.capacity()) done = true;
  }

  void step(GenerationSession& session, StageGate* gate) {
    session.decode_step(next, state, gate);
    const size_t row = req->prefix.rows() + result->steps;
    std::copy(state.row(0).begin(), state.row(0).end(),
              result->states.row(row).begin());
    ++result->steps;
    done = result->steps >= req->max_new_tokens ||
           !req->next_token(state.row(0), next);
    if (!done && session.position() >= session.capacity()) done = true;
  }

  void finalize() {
    const size_t rows = req->prefix.rows() + result->steps;
    if (result->states.rows() != rows) {
      result->states = result->states.slice_rows(0, rows);
    }
  }
};

void validate_request(const GenerationRequest& r,
                      const ref::ModelConfig& cfg,
                      const hw::SynthParams& synth) {
  if (r.memory == nullptr) {
    throw std::invalid_argument("generation request: memory missing");
  }
  if (r.prefix.rows() == 0 || r.prefix.cols() != cfg.d_model) {
    throw std::invalid_argument("generation request: bad prefix shape");
  }
  // The last generated token never has its embedding appended, so a
  // request may ask for one token more than the cache holds rows — in
  // particular a prompt that exactly fills seq_len can still decode its
  // first token (emitted from the last prefill state).
  if (r.prefix.rows() + r.max_new_tokens > cfg.seq_len + 1) {
    throw std::invalid_argument(
        "generation request: prefix + max_new_tokens exceeds seq_len + 1");
  }
  if (r.memory->rows() == 0 || r.memory->rows() > synth.max_seq_len ||
      r.memory->cols() != cfg.d_model) {
    throw std::invalid_argument("generation request: bad memory shape");
  }
  if (r.max_new_tokens > 0 && !r.next_token) {
    throw std::invalid_argument("generation request: next_token missing");
  }
}

GenerationOptions session_options(const GenerationSchedulerOptions& opts,
                                  KvBlockPool* pool) {
  return GenerationOptions{.kv_block_rows = opts.kv_block_rows,
                           .kv_pool = pool,
                           .prefill_chunk = opts.prefill_chunk,
                           .kv_storage = opts.kv_storage};
}

/// Arms the pool's and prefix cache's telemetry hooks for the duration
/// of a serving loop. Construct AFTER the sessions (and destruct before
/// them): session construction warms arenas and teardown releases
/// blocks, neither of which belongs in the trace. Inert when `tel` is
/// null or unconfigured.
struct TraceArm {
  KvBlockPool* pool;
  PrefixCache* pcache;
  TraceRecorder* trace;
  TraceArm(Telemetry* tel, KvBlockPool* pool, PrefixCache* pcache)
      : pool(pool),
        pcache(pcache),
        trace(tel != nullptr && tel->enabled() ? &tel->trace : nullptr) {
    if (trace == nullptr) return;
    if (pool != nullptr) pool->set_trace(trace);
    if (pcache != nullptr) pcache->set_trace(trace);
  }
  ~TraceArm() {
    if (trace == nullptr) return;
    if (pool != nullptr) pool->set_trace(nullptr);
    if (pcache != nullptr) pcache->set_trace(nullptr);
  }
};

/// Deterministic round-robin step loop: admit pending requests into free
/// slots (FCFS, deferred while the shared block pool cannot cover the
/// head-of-line request's worst case), advance every active sequence one
/// unit — a prefill chunk or a decode token — and retire finished ones,
/// releasing their blocks. The textbook continuous-batching schedule,
/// with per-step bookkeeping.
void run_stepped(const accel::AccelConfig& config,
                 const accel::QuantizedDecoder& model,
                 const std::vector<GenerationRequest>& requests,
                 const GenerationSchedulerOptions& opts, KvBlockPool* pool,
                 PrefixCache* pcache,
                 std::vector<GenerationResult>& results,
                 GenerationRunStats& stats) {
  const size_t slots = std::min(opts.slots, requests.size());
  std::vector<std::unique_ptr<GenerationSession>> sessions;
  sessions.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    sessions.push_back(std::make_unique<GenerationSession>(
        config, model, nullptr, session_options(opts, pool)));
  }
  // Sessions (and their worst-case arena warm-ups) are up; time only the
  // serving work itself.
  util::Stopwatch watch;
  Telemetry* const tel =
      opts.telemetry != nullptr && opts.telemetry->enabled()
          ? opts.telemetry
          : nullptr;
  TraceArm trace_arm(tel, pool, pcache);

  std::vector<ActiveSeq> seats(slots);
  std::vector<uint8_t> ttft_pending(slots, 0);
  size_t pending = 0;
  size_t wait_counted = SIZE_MAX;  // request whose deferral was recorded
  uint32_t in_flight = 0;
  uint32_t step = 0;
  const auto seq_of = [&](size_t s) {
    return static_cast<uint32_t>(seats[s].req - requests.data());
  };
  // Every seat event carries the request's index as its sequence id;
  // TTFT is the step whose prefill pass completed the prompt (requests
  // all arrive at step 0, so queue wait is the admission step itself).
  const auto note_prefill = [&](size_t s) {
    if (tel == nullptr) return;
    tel->trace.record(TraceEventType::kPrefillChunk, seq_of(s),
                      seats[s].prefill_pos, 0);
    if (!seats[s].prefilling && ttft_pending[s] != 0) {
      ttft_pending[s] = 0;
      tel->ttft_rounds->observe(step);
      tel->ttft_us->observe(
          static_cast<uint64_t>(watch.milliseconds() * 1e3));
    }
  };
  while (pending < requests.size() || in_flight > 0) {
    bool progressed = false;
    if (tel != nullptr) tel->trace.set_round(step);
    // Admit in request order into the lowest free seats. A retiring
    // sequence freed its seat (and blocks) last step, so short sequences
    // hand their slot to the queue while long ones keep decoding. When
    // the pool cannot cover the head-of-line request, admission stops —
    // the request waits instead of overcommitting blocks.
    for (size_t s = 0; s < slots && pending < requests.size(); ++s) {
      if (seats[s].req != nullptr) continue;
      const GenerationRequest& req = requests[pending];
      const size_t need =
          ActiveSeq::rows_needed(req, sessions[s]->capacity());
      if (!sessions[s]->try_reserve_rows(need)) {
        // One wait per deferred request (not per deferred step), so the
        // stat is comparable with the threaded mode's park count.
        if (wait_counted != pending) {
          ++stats.kv_block_waits;
          wait_counted = pending;
        }
        break;
      }
      seats[s] = ActiveSeq{};
      seats[s].req = &req;
      seats[s].result = &results[pending];
      seats[s].cache = pcache;
      seats[s].result->admitted_at = step;
      ++pending;
      ++in_flight;
      ++stats.prefills;
      if (tel != nullptr) {
        tel->trace.record(TraceEventType::kAdmit, seq_of(s), step,
                          req.prefix.rows());
        tel->queue_wait_rounds->observe(step);
        ttft_pending[s] = 1;
      }
      seats[s].begin(*sessions[s], nullptr);
      seats[s].prefill_step(*sessions[s], nullptr, opts.prefill_chunk);
      ++stats.prefill_chunks;
      note_prefill(s);
      progressed = true;
    }
    stats.max_active = std::max(stats.max_active, in_flight);

    // One unit of progress for every active sequence: the next prefill
    // chunk while the prompt is still streaming in, a decode step after.
    for (size_t s = 0; s < slots; ++s) {
      if (seats[s].req == nullptr || seats[s].done) continue;
      if (seats[s].prefilling) {
        seats[s].prefill_step(*sessions[s], nullptr, opts.prefill_chunk);
        ++stats.prefill_chunks;
        note_prefill(s);
      } else {
        seats[s].step(*sessions[s], nullptr);
        ++stats.decode_steps;
        if (tel != nullptr) {
          tel->trace.record(TraceEventType::kDecodeStep, seq_of(s),
                            seats[s].result->steps, 0);
        }
      }
      progressed = true;
    }
    // Retire finished sequences, freeing their seats and blocks for the
    // next step's admissions.
    for (size_t s = 0; s < slots; ++s) {
      if (seats[s].req != nullptr && seats[s].done) {
        seats[s].result->retired_at = step;
        if (tel != nullptr) {
          tel->trace.record(TraceEventType::kComplete, seq_of(s), 0,
                            step - seats[s].result->admitted_at);
        }
        seats[s].finalize();
        sessions[s]->end_sequence();
        seats[s] = ActiveSeq{};
        --in_flight;
        progressed = true;
      }
    }
    ++step;
    if (!progressed) {
      // Unreachable when requests were validated against the pool size:
      // reserve-at-admission means active sequences never stall, and a
      // fully-free pool covers any single validated request.
      throw std::runtime_error(
          "GenerationScheduler: stalled — KV block pool cannot serve the "
          "pending request");
    }
  }
  stats.scheduler_steps = step;
  stats.wall_ms = watch.milliseconds();
}

/// Worker-thread continuous batching: each worker owns a session (one
/// slot), drains the request queue sequence-by-sequence, and its
/// per-layer stages interleave with other workers' through the MHA/FFN
/// module semaphores. A finishing sequence immediately frees its worker
/// (and its blocks) for the next pending request — no batch barrier.
/// Block-exhaustion backpressure parks a worker on the pool's condition
/// variable BEFORE its sequence begins, holding nothing — so waiters
/// cannot deadlock holders, and every reservation is eventually served.
void run_threaded(const accel::AccelConfig& config,
                  const accel::QuantizedDecoder& model,
                  const std::vector<GenerationRequest>& requests,
                  const GenerationSchedulerOptions& opts, KvBlockPool* pool,
                  PrefixCache* pcache,
                  std::vector<GenerationResult>& results,
                  GenerationRunStats& stats) {
  const size_t workers =
      std::min({opts.threads, opts.slots, requests.size()});
  const auto slot_width = [&](uint32_t requested) {
    return requested > 0 ? requested : static_cast<uint32_t>(workers);
  };
  ModuleSlots mha_slots(slot_width(opts.mha_slots));
  ModuleSlots ffn_slots(slot_width(opts.ffn_slots));

  // One session per worker, constructed (and arena-warmed) before the
  // clock starts so wall_ms measures serving work only.
  std::vector<std::unique_ptr<GenerationSession>> sessions;
  sessions.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    sessions.push_back(std::make_unique<GenerationSession>(
        config, model, nullptr, session_options(opts, pool)));
  }
  util::Stopwatch watch;
  // Threaded mode has no global step clock: events keep the recorder's
  // round 0 and their order follows wall time (the recorder itself is
  // mutex-guarded). Histograms are engine-serial by contract, so worker
  // observations funnel through tel_mutex.
  Telemetry* const tel =
      opts.telemetry != nullptr && opts.telemetry->enabled()
          ? opts.telemetry
          : nullptr;
  TraceArm trace_arm(tel, pool, pcache);
  std::mutex tel_mutex;

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> prefills{0};
  std::atomic<uint64_t> prefill_chunks{0};
  std::atomic<uint64_t> decode_steps{0};
  std::atomic<uint64_t> block_waits{0};
  std::atomic<uint32_t> active{0};
  std::atomic<uint32_t> max_active{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> pool_threads;
  pool_threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool_threads.emplace_back([&, w] {
      try {
        GenerationSession& session = *sessions[w];
        ModuleGate gate(mha_slots, ffn_slots);
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= requests.size()) break;
          // Reserve the sequence's worst-case blocks up front — all or
          // nothing — parking until a retiring sequence frees enough.
          const size_t need =
              ActiveSeq::rows_needed(requests[i], session.capacity());
          if (!session.try_reserve_rows(need)) {
            ++block_waits;
            session.reserve_rows_wait(need);
          }
          const uint32_t now = active.fetch_add(1) + 1;
          uint32_t seen = max_active.load();
          while (seen < now &&
                 !max_active.compare_exchange_weak(seen, now)) {
          }
          ActiveSeq seq;
          seq.req = &requests[i];
          seq.result = &results[i];
          seq.cache = pcache;
          const uint32_t sid = static_cast<uint32_t>(i);
          const double t_admit =
              tel != nullptr ? watch.milliseconds() : 0.0;
          if (tel != nullptr) {
            tel->trace.record(TraceEventType::kAdmit, sid, 0,
                              requests[i].prefix.rows());
          }
          seq.begin(session, &gate);
          while (seq.prefilling) {
            seq.prefill_step(session, &gate, opts.prefill_chunk);
            ++prefill_chunks;
            if (tel != nullptr) {
              tel->trace.record(TraceEventType::kPrefillChunk, sid,
                                seq.prefill_pos, 0);
            }
          }
          ++prefills;
          if (tel != nullptr) {
            const uint64_t ttft_us = static_cast<uint64_t>(
                (watch.milliseconds() - t_admit) * 1e3);
            const std::lock_guard lock(tel_mutex);
            tel->ttft_us->observe(ttft_us);
          }
          while (!seq.done) {
            seq.step(session, &gate);
            ++decode_steps;
            if (tel != nullptr) {
              tel->trace.record(TraceEventType::kDecodeStep, sid,
                                seq.result->steps, 0);
            }
          }
          seq.finalize();
          session.end_sequence();
          if (tel != nullptr) {
            tel->trace.record(TraceEventType::kComplete, sid, 0, 0);
          }
          active.fetch_sub(1);
        }
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool_threads) t.join();
  if (first_error) std::rethrow_exception(first_error);

  stats.prefills = prefills.load();
  stats.prefill_chunks = prefill_chunks.load();
  stats.decode_steps = decode_steps.load();
  stats.kv_block_waits = block_waits.load();
  stats.max_active = max_active.load();
  stats.scheduler_steps = 0;  // no global step loop in threaded mode
  stats.wall_ms = watch.milliseconds();
}

}  // namespace

GenerationScheduler::GenerationScheduler(accel::AccelConfig config,
                                         accel::QuantizedDecoder model)
    : config_(std::move(config)), model_(std::move(model)) {
  config_.validate();
  accel::validate_runtime(config_.synth, model_.config);
}

std::vector<GenerationResult> GenerationScheduler::run(
    const std::vector<GenerationRequest>& requests,
    const GenerationSchedulerOptions& opts) {
  if (opts.slots == 0) {
    throw std::invalid_argument("GenerationScheduler: zero slots");
  }
  if (opts.threads == 0) {
    throw std::invalid_argument("GenerationScheduler: zero threads");
  }
  for (const GenerationRequest& r : requests) {
    validate_request(r, model_.config, config_.synth);
  }

  // A shared pool serves every slot; each request must fit it alone
  // (otherwise no amount of waiting could ever admit it).
  KvBlockPool shared_pool;
  KvBlockPool* pool = nullptr;
  if (opts.kv_pool_blocks > 0) {
    if (opts.kv_block_rows == 0) {
      throw std::invalid_argument(
          "GenerationScheduler: kv_pool_blocks requires paged "
          "kv_block_rows");
    }
    const ref::ModelConfig& mc = model_.config;
    // Row bytes derive from the storage format, not 1 byte/element —
    // packed fp4 rows are half as wide, so the same pool budget covers
    // twice the token rows.
    shared_pool.configure(
        opts.kv_pool_blocks, opts.kv_block_rows,
        mc.num_layers * mc.num_heads * 2 *
            numeric::kv_storage_bytes(mc.head_dim(), opts.kv_storage));
    pool = &shared_pool;
    for (const GenerationRequest& r : requests) {
      const size_t need =
          ActiveSeq::rows_needed(r, static_cast<size_t>(mc.seq_len));
      if (util::ceil_div(need, opts.kv_block_rows) > opts.kv_pool_blocks) {
        throw std::invalid_argument(
            "GenerationScheduler: request exceeds the shared KV pool");
      }
    }
  }

  // The prefix cache lives below the pool declaration-wise, so even on a
  // throw it releases its block references into a still-live pool; the
  // hook is only ever called from reserve paths, which are quiescent by
  // the time destructors run.
  PrefixCache prefix_cache;
  PrefixCache* pcache = nullptr;
  if (opts.prefix_cache) {
    if (pool == nullptr) {
      throw std::invalid_argument(
          "GenerationScheduler: prefix_cache requires a shared KV pool "
          "(kv_pool_blocks > 0)");
    }
    prefix_cache.configure(*pool, opts.kv_block_rows, model_.config.d_model,
                           PrefixCache::Options{.storage = opts.kv_storage});
    pool->set_reclaim_hook(
        [&prefix_cache](size_t want) { return prefix_cache.reclaim(want); });
    pcache = &prefix_cache;
  }

  std::vector<GenerationResult> results(requests.size());
  last_run_ = GenerationRunStats{};
  if (requests.empty()) return results;

  if (opts.threads == 1) {
    run_stepped(config_, model_, requests, opts, pool, pcache, results,
                last_run_);
  } else {
    run_threaded(config_, model_, requests, opts, pool, pcache, results,
                 last_run_);
  }
  if (pool != nullptr) {
    last_run_.kv_blocks_peak = pool->peak_used_blocks();
  }
  if (pcache != nullptr) {
    pool->set_reclaim_hook(nullptr);
    const PrefixCacheStats ps = pcache->stats();
    last_run_.prefix_hits = ps.prefix_hits;
    last_run_.prefix_misses = ps.prefix_misses;
    last_run_.prefix_rows_adopted = ps.rows_adopted;
    last_run_.prefix_bytes_saved = ps.bytes_adopted + ps.cross_bytes_reused;
    last_run_.cross_kv_hits = ps.cross_hits;
    last_run_.cross_kv_misses = ps.cross_misses;
    last_run_.prefix_evictions = ps.evictions;
    pcache->clear();
  }
  return results;
}

}  // namespace protea::runtime
