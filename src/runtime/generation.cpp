#include "runtime/generation.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "numeric/quantizer.hpp"
#include "runtime/module_gate.hpp"
#include "tensor/qgemm.hpp"
#include "util/stopwatch.hpp"

namespace protea::runtime {

// --- GenerationSession -------------------------------------------------------

GenerationSession::GenerationSession(const accel::AccelConfig& config,
                                     const accel::QuantizedDecoder& model,
                                     accel::EngineStats* stats)
    : config_(&config),
      model_(&model),
      stats_(stats != nullptr ? stats : &own_stats_) {
  config.validate();
  accel::validate_runtime(config.synth, model.config);
  kv_.configure(model.config.num_layers, model.config.num_heads,
                model.config.head_dim(), model.config.seq_len,
                config.synth.max_seq_len);
  warm();
}

void GenerationSession::run_rows(const tensor::MatrixF& rows,
                                 tensor::MatrixF& states, StageGate* gate,
                                 accel::EngineStats* stats) {
  const ref::ModelConfig& cfg = model_->config;
  const size_t n = rows.rows();
  const size_t d = cfg.d_model;
  const size_t pos = kv_.len();

  const auto m = ws_.mark();
  auto x = ws_.matrix_i8(n, d);
  auto y = ws_.matrix_i8(n, d);

  numeric::Quantizer quant(8, /*pow2_scale=*/true);
  quant.set_scale(model_->layers.front().scales.x);
  quant.quantize(rows.flat(), x.flat());

  const LayerOpContext ctx{.ws = ws_,
                           .ts_mha = config_->synth.ts_mha,
                           .ts_ffn = config_->synth.ts_ffn,
                           .activation = cfg.activation,
                           .stats = stats,
                           .gemm_pool = tensor::qgemm_default_pool()};

  double out_scale = model_->layers.front().scales.x;
  for (size_t li = 0; li < model_->layers.size(); ++li) {
    const accel::QDecoderLayer& layer = model_->layers[li];
    if (layer.scales.x != out_scale) {
      rescale_rows_inplace(x, out_scale, layer.scales.x);
    }
    run_decoder_layer_cached(ctx, layer, x, pos, kv_.layer(li),
                             kv_.memory_len(), y, gate);
    std::swap(x, y);
    out_scale = layer.scales.ln3;
  }
  kv_.append(n);

  if (states.rows() != n || states.cols() != d) {
    states = tensor::MatrixF(n, d);
  }
  quant.set_scale(out_scale);
  quant.dequantize(x.flat(), states.flat());
  ws_.rewind(m);
}

void GenerationSession::warm() {
  // Fake a full cache (configure() zero-filled the views, so the engines
  // read defined bytes) and run one step at the worst-case shape: the
  // arena's consolidated block then covers every real decode_step, which
  // only ever allocates the same sequence of equal-or-smaller views.
  kv_.begin_sequence(kv_.memory_capacity());
  if (kv_.capacity() > 1) {
    kv_.append(kv_.capacity() - 1);
  }
  const tensor::MatrixF token(1, model_->config.d_model, 0.0f);
  tensor::MatrixF state;
  run_rows(token, state, /*gate=*/nullptr, /*stats=*/nullptr);
  kv_.begin_sequence(0);
  ws_.reset();
}

void GenerationSession::prefill(const tensor::MatrixF& prefix,
                                const tensor::MatrixF& memory,
                                tensor::MatrixF& states, StageGate* gate) {
  const ref::ModelConfig& cfg = model_->config;
  if (prefix.cols() != cfg.d_model || memory.cols() != cfg.d_model) {
    throw std::invalid_argument("prefill: width mismatch");
  }
  if (prefix.rows() == 0 || prefix.rows() > kv_.capacity()) {
    throw std::invalid_argument("prefill: bad prefix length");
  }
  if (memory.rows() == 0 || memory.rows() > kv_.memory_capacity()) {
    throw std::invalid_argument("prefill: bad memory length");
  }
  kv_.begin_sequence(memory.rows());

  // One-time cross K/V projection of the quantized encoder memory — the
  // work the full-recompute path redoes on every autoregressive step.
  const auto m = ws_.mark();
  auto mem_q = ws_.matrix_i8(memory.rows(), memory.cols());
  numeric::Quantizer quant(8, true);
  quant.set_scale(model_->memory_scale);
  quant.quantize(memory.flat(), mem_q.flat());

  const LayerOpContext ctx{.ws = ws_,
                           .ts_mha = config_->synth.ts_mha,
                           .ts_ffn = config_->synth.ts_ffn,
                           .activation = cfg.activation,
                           .stats = stats_,
                           .gemm_pool = tensor::qgemm_default_pool()};
  {
    // The projections run on the MHA-module (QKV/projection) engines.
    const StageScope scope(gate, Stage::kMha);
    for (size_t li = 0; li < model_->layers.size(); ++li) {
      fill_cross_kv_cache(ctx,
                          decoder_cross_attention_desc(model_->layers[li]),
                          mem_q, kv_.layer(li));
    }
  }
  ws_.rewind(m);

  run_rows(prefix, states, gate, stats_);
}

void GenerationSession::decode_step(const tensor::MatrixF& token,
                                    tensor::MatrixF& state,
                                    StageGate* gate) {
  if (kv_.memory_len() == 0) {
    throw std::logic_error("decode_step: prefill() a sequence first");
  }
  if (token.rows() != 1 || token.cols() != model_->config.d_model) {
    throw std::invalid_argument("decode_step: token must be 1 x d_model");
  }
  if (kv_.len() >= kv_.capacity()) {
    throw std::invalid_argument("decode_step: target capacity reached");
  }
  run_rows(token, state, gate, stats_);
}

// --- GenerationScheduler -----------------------------------------------------

namespace {

/// One in-flight sequence bound to a slot's session: prefill at
/// admission, one decode step per scheduler step, callback-driven stop.
struct ActiveSeq {
  const GenerationRequest* req = nullptr;
  GenerationResult* result = nullptr;
  tensor::MatrixF next;   // next token embedding (from the callback)
  tensor::MatrixF state;  // last decode output (1 x d)
  bool done = false;

  void admit(GenerationSession& session, StageGate* gate) {
    tensor::MatrixF prefix_states;
    session.prefill(req->prefix, *req->memory, prefix_states, gate);
    const size_t p = prefix_states.rows();
    const size_t d = prefix_states.cols();
    result->states = tensor::MatrixF(p + req->max_new_tokens, d);
    std::copy(prefix_states.flat().begin(), prefix_states.flat().end(),
              result->states.flat().begin());
    result->steps = 0;
    done = req->max_new_tokens == 0 ||
           !req->next_token(prefix_states.row(p - 1), next);
  }

  void step(GenerationSession& session, StageGate* gate) {
    session.decode_step(next, state, gate);
    const size_t row = req->prefix.rows() + result->steps;
    std::copy(state.row(0).begin(), state.row(0).end(),
              result->states.row(row).begin());
    ++result->steps;
    done = result->steps >= req->max_new_tokens ||
           !req->next_token(state.row(0), next);
  }

  void finalize() {
    const size_t rows = req->prefix.rows() + result->steps;
    if (result->states.rows() != rows) {
      result->states = result->states.slice_rows(0, rows);
    }
  }
};

void validate_request(const GenerationRequest& r,
                      const ref::ModelConfig& cfg,
                      const hw::SynthParams& synth) {
  if (r.memory == nullptr) {
    throw std::invalid_argument("generation request: memory missing");
  }
  if (r.prefix.rows() == 0 || r.prefix.cols() != cfg.d_model) {
    throw std::invalid_argument("generation request: bad prefix shape");
  }
  if (r.prefix.rows() + r.max_new_tokens > cfg.seq_len) {
    throw std::invalid_argument(
        "generation request: prefix + max_new_tokens exceeds seq_len");
  }
  if (r.memory->rows() == 0 || r.memory->rows() > synth.max_seq_len ||
      r.memory->cols() != cfg.d_model) {
    throw std::invalid_argument("generation request: bad memory shape");
  }
  if (r.max_new_tokens > 0 && !r.next_token) {
    throw std::invalid_argument("generation request: next_token missing");
  }
}

/// Deterministic round-robin step loop: admit pending requests into free
/// slots, advance every active sequence one token, retire finished ones —
/// the textbook continuous-batching schedule, with per-step bookkeeping.
void run_stepped(const accel::AccelConfig& config,
                 const accel::QuantizedDecoder& model,
                 const std::vector<GenerationRequest>& requests,
                 size_t slot_count, std::vector<GenerationResult>& results,
                 GenerationRunStats& stats) {
  const size_t slots = std::min(slot_count, requests.size());
  std::vector<std::unique_ptr<GenerationSession>> sessions;
  sessions.reserve(slots);
  for (size_t s = 0; s < slots; ++s) {
    sessions.push_back(std::make_unique<GenerationSession>(config, model));
  }
  // Sessions (and their worst-case arena warm-ups) are up; time only the
  // serving work itself.
  util::Stopwatch watch;

  std::vector<ActiveSeq> seats(slots);
  size_t pending = 0;
  uint32_t in_flight = 0;
  uint32_t step = 0;
  while (pending < requests.size() || in_flight > 0) {
    // Admit in request order into the lowest free seats. A retiring
    // sequence freed its seat last step, so short sequences hand their
    // slot to the queue while long ones keep decoding.
    for (size_t s = 0; s < slots && pending < requests.size(); ++s) {
      if (seats[s].req != nullptr) continue;
      seats[s] = ActiveSeq{};
      seats[s].req = &requests[pending];
      seats[s].result = &results[pending];
      seats[s].result->admitted_at = step;
      ++pending;
      ++in_flight;
      ++stats.prefills;
      seats[s].admit(*sessions[s], nullptr);
    }
    stats.max_active = std::max(stats.max_active, in_flight);

    // One decode step for every active sequence.
    for (size_t s = 0; s < slots; ++s) {
      if (seats[s].req != nullptr && !seats[s].done) {
        seats[s].step(*sessions[s], nullptr);
        ++stats.decode_steps;
      }
    }
    // Retire finished sequences, freeing their seats for next step.
    for (size_t s = 0; s < slots; ++s) {
      if (seats[s].req != nullptr && seats[s].done) {
        seats[s].result->retired_at = step;
        seats[s].finalize();
        seats[s] = ActiveSeq{};
        --in_flight;
      }
    }
    ++step;
  }
  stats.scheduler_steps = step;
  stats.wall_ms = watch.milliseconds();
}

/// Worker-thread continuous batching: each worker owns a session (one
/// slot), drains the request queue sequence-by-sequence, and its
/// per-layer stages interleave with other workers' through the MHA/FFN
/// module semaphores. A finishing sequence immediately frees its worker
/// for the next pending request — no batch barrier.
void run_threaded(const accel::AccelConfig& config,
                  const accel::QuantizedDecoder& model,
                  const std::vector<GenerationRequest>& requests,
                  const GenerationSchedulerOptions& opts,
                  std::vector<GenerationResult>& results,
                  GenerationRunStats& stats) {
  const size_t workers =
      std::min({opts.threads, opts.slots, requests.size()});
  const auto slot_width = [&](uint32_t requested) {
    return requested > 0 ? requested : static_cast<uint32_t>(workers);
  };
  ModuleSlots mha_slots(slot_width(opts.mha_slots));
  ModuleSlots ffn_slots(slot_width(opts.ffn_slots));

  // One session per worker, constructed (and arena-warmed) before the
  // clock starts so wall_ms measures serving work only.
  std::vector<std::unique_ptr<GenerationSession>> sessions;
  sessions.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    sessions.push_back(std::make_unique<GenerationSession>(config, model));
  }
  util::Stopwatch watch;

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> prefills{0};
  std::atomic<uint64_t> decode_steps{0};
  std::atomic<uint32_t> active{0};
  std::atomic<uint32_t> max_active{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        GenerationSession& session = *sessions[w];
        ModuleGate gate(mha_slots, ffn_slots);
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= requests.size()) break;
          const uint32_t now = active.fetch_add(1) + 1;
          uint32_t seen = max_active.load();
          while (seen < now &&
                 !max_active.compare_exchange_weak(seen, now)) {
          }
          ActiveSeq seq;
          seq.req = &requests[i];
          seq.result = &results[i];
          seq.admit(session, &gate);
          ++prefills;
          while (!seq.done) {
            seq.step(session, &gate);
            ++decode_steps;
          }
          seq.finalize();
          active.fetch_sub(1);
        }
      } catch (...) {
        const std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);

  stats.prefills = prefills.load();
  stats.decode_steps = decode_steps.load();
  stats.max_active = max_active.load();
  stats.scheduler_steps = 0;  // no global step loop in threaded mode
  stats.wall_ms = watch.milliseconds();
}

}  // namespace

GenerationScheduler::GenerationScheduler(accel::AccelConfig config,
                                         accel::QuantizedDecoder model)
    : config_(std::move(config)), model_(std::move(model)) {
  config_.validate();
  accel::validate_runtime(config_.synth, model_.config);
}

std::vector<GenerationResult> GenerationScheduler::run(
    const std::vector<GenerationRequest>& requests,
    const GenerationSchedulerOptions& opts) {
  if (opts.slots == 0) {
    throw std::invalid_argument("GenerationScheduler: zero slots");
  }
  if (opts.threads == 0) {
    throw std::invalid_argument("GenerationScheduler: zero threads");
  }
  for (const GenerationRequest& r : requests) {
    validate_request(r, model_.config, config_.synth);
  }

  std::vector<GenerationResult> results(requests.size());
  last_run_ = GenerationRunStats{};
  if (requests.empty()) return results;

  if (opts.threads == 1) {
    run_stepped(config_, model_, requests, opts.slots, results, last_run_);
  } else {
    run_threaded(config_, model_, requests, opts, results, last_run_);
  }
  return results;
}

}  // namespace protea::runtime
