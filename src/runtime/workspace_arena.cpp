#include "runtime/workspace_arena.hpp"

#include <algorithm>

namespace protea::runtime {

namespace {
constexpr size_t kDefaultBlockBytes = size_t{1} << 20;
}

WorkspaceArena::WorkspaceArena(size_t initial_bytes) {
  if (initial_bytes > 0) add_block(padded(initial_bytes));
}

std::byte* WorkspaceArena::raw_alloc(size_t bytes) {
  const size_t p = padded(bytes);
  while (true) {
    if (!blocks_.empty()) {
      Block& b = blocks_[current_];
      if (b.used + p <= b.size) {
        std::byte* ptr = b.base + b.used;
        b.used += p;
        live_bytes_ += p;
        peak_bytes_ = std::max(peak_bytes_, live_bytes_);
        return ptr;
      }
      // Reuse a later block left over from a rewound spill before growing.
      if (current_ + 1 < blocks_.size()) {
        ++current_;
        blocks_[current_].used = 0;
        continue;
      }
    }
    // Grow generously; reset() consolidates to the exact peak later.
    add_block(std::max(p, kDefaultBlockBytes));
  }
}

void WorkspaceArena::add_block(size_t min_size) {
  Block b;
  b.size = std::max(min_size, size_t{kAlign});
  b.data = std::make_unique<std::byte[]>(b.size + kAlign);
  const auto raw = reinterpret_cast<uintptr_t>(b.data.get());
  b.base = b.data.get() + (kAlign - raw % kAlign) % kAlign;
  blocks_.push_back(std::move(b));
  current_ = blocks_.size() - 1;
}

void WorkspaceArena::rewind(Mark m) {
  if (blocks_.empty()) return;
  size_t freed = blocks_[m.block].used - m.used;
  for (size_t i = m.block + 1; i < blocks_.size(); ++i) {
    freed += blocks_[i].used;
    blocks_[i].used = 0;
  }
  blocks_[m.block].used = m.used;
  current_ = m.block;
  live_bytes_ -= freed;
}

void WorkspaceArena::reset() {
  if (blocks_.size() > 1) {
    blocks_.clear();
    add_block(padded(peak_bytes_));  // exact-fit consolidation
  }
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  live_bytes_ = 0;
  // Track peak per cycle: a later, smaller workload consolidates down
  // instead of pinning the all-time high-water block forever.
  peak_bytes_ = 0;
}

size_t WorkspaceArena::capacity() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

}  // namespace protea::runtime
