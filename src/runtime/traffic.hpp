// SLO-aware traffic engine: the robustness layer over the generation
// scheduler — victim preemption, priority classes, deadlines, cooperative
// cancellation and graceful load shedding, driven by a seeded synthetic
// trace generator.
//
// The PR-4 scheduler is deadlock-free because admission is pessimistic:
// a sequence's worst-case KV blocks are reserved up front, so under
// bursty traffic the pool sits underused while requests queue, and
// nothing can cancel, time out or be preempted once admitted. This
// engine flips that: admission is OPTIMISTIC (only the first prefill
// chunk is reserved) and block tables grow on demand; when the pool
// comes up short, a strictly worse-ranked victim is preempted instead of
// the requester waiting forever. Two recovery flavors, both bit-exact:
//
//   * swap-out — the victim's block-table contents spill into a side
//     buffer (KvCache::swap_out) and come back by rescatter
//     (try_swap_in); the cross K/V is recomputed from the memory at
//     restore, which is deterministic, so a restored sequence is
//     byte-identical to one never preempted.
//   * drop-and-recompute — the victim releases everything and is
//     re-prefilled from its retained token history (prompt rows + the
//     embeddings already fed) through the chunked-prefill path, which
//     PR 4 proved bit-identical for any chunking.
//
// Scheduling is priority- and deadline-aware: requests are ranked by
// (priority class, absolute deadline, arrival, submission order) — a
// total order, so preemption can never cycle and the best-ranked request
// always progresses. Past a configurable overload watermark the engine
// sheds the worst-ranked queued requests with a reason instead of
// parking them forever; expired or cancelled requests stop cooperatively
// at the next round boundary with their partial output intact.
//
// Determinism: ONE coordinator drives rounds in both modes. Every pool
// mutation — admission, growth, preemption, restore — happens serially
// in the coordinator; threads > 1 only parallelizes the round's compute
// units (one prefill chunk or decode step per active seat) over a worker
// pool bracketed by the MHA/FFN module gates. Outputs AND SchedulerStats
// are therefore bit-identical between stepped and threaded runs (only
// wall-clock fields differ), which is what makes the fault-injection
// stress harness (bench_traffic) a real invariant gate rather than a
// smoke test.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"

namespace protea::runtime {

class Telemetry;  // runtime/telemetry.hpp

/// Priority classes, best first. The rank order is strict: an
/// interactive request can preempt a standard or batch one, never the
/// reverse.
enum class TrafficPriority : uint32_t {
  kInteractive = 0,
  kStandard = 1,
  kBatch = 2,
};
inline constexpr size_t kTrafficClasses = 3;
const char* traffic_priority_name(TrafficPriority p);

/// Terminal state of a request. Shedding always carries a reason string
/// in TrafficResult::shed_reason — reject-with-reason, never park
/// forever.
enum class TrafficOutcome : uint32_t {
  kPending = 0,        // engine-internal; never returned
  kCompleted,          // finished within its deadline (or had none)
  kCompletedLate,      // finished, but past its deadline
  kShedOverload,       // rejected at the overload watermark, never ran
  kShedDeadline,       // deadline expired before first admission
  kShedCapacity,       // cannot ever fit the pool / pool-exhaustion / stall
  kCancelled,          // cooperative cancel or cancel_on_deadline
  kFailed,             // a compute unit threw a non-capacity error
                       // (typically the caller's next_token callback)
};
const char* traffic_outcome_name(TrafficOutcome o);

/// How a preemption victim's KV state is recovered at restore.
enum class PreemptionRecovery : uint32_t {
  kSwapOut = 0,   // spill blocks to the side buffer, rescatter on restore
  kRecompute,     // release everything, re-prefill from token history
  kAuto,          // swap while a swap slot is free, recompute beyond
};

/// One traffic request: a generation request plus its SLO envelope.
struct TrafficRequest {
  GenerationRequest gen;
  TrafficPriority priority = TrafficPriority::kStandard;
  /// Virtual arrival time in scheduler rounds (deterministic; the
  /// coordinator fast-forwards idle gaps).
  uint32_t arrival_round = 0;
  /// Rounds after arrival by which the request must retire; 0 = none.
  uint32_t deadline_rounds = 0;
  /// true: an expired deadline cancels the request mid-flight (partial
  /// output returned). false: it keeps running and retires kCompletedLate.
  bool cancel_on_deadline = false;
  /// Optional cooperative cancel: checked at every round boundary; the
  /// request stops with its partial output and outcome kCancelled.
  std::shared_ptr<std::atomic<bool>> cancel;
};

struct TrafficResult {
  /// Output states for the rows actually computed (prefix rows processed
  /// so far + decode steps); empty when the request never ran.
  tensor::MatrixF states;
  uint32_t steps = 0;
  TrafficOutcome outcome = TrafficOutcome::kPending;
  std::string shed_reason;  // set for every shed/cancel outcome
  uint32_t admitted_round = 0;  // first admission (valid once admitted)
  uint32_t retired_round = 0;
  uint32_t latency_rounds = 0;  // retired - arrival (virtual time)
  double latency_ms = 0.0;      // wall clock, first admission -> retired
  uint32_t preemptions = 0;     // times this request was evicted
  bool deadline_missed = false;
};

struct TrafficOptions {
  size_t slots = 4;    // concurrent seats (live sessions)
  size_t threads = 1;  // > 1: per-round parallel unit dispatch
  uint32_t mha_slots = 0;  // module semaphore widths (0 -> worker count)
  uint32_t ffn_slots = 0;
  size_t prefill_chunk = 0;   // prompt rows per round (0 = whole prompt)
  size_t kv_block_rows = 16;  // must be paged (> 0)
  /// Shared pool size in blocks (ignored when kv_pool is given). The
  /// traffic engine requires a shared paged pool — preemption is a
  /// statement about contention.
  size_t kv_pool_blocks = 0;
  KvBlockPool* kv_pool = nullptr;  // external pool (must outlive the run)
  PreemptionRecovery recovery = PreemptionRecovery::kAuto;
  /// Concurrently swapped-out victims the side buffer holds; victims
  /// beyond this fall back to drop-and-recompute.
  size_t swap_slots = 2;
  /// false disables victim preemption entirely (requests then stall
  /// until blocks free up — the PR-4 behavior, kept for comparison).
  bool preemption = true;
  /// Cross-request prefix cache (runtime/prefix_cache.hpp): admissions
  /// adopt cached prompt blocks by refcount and reuse cached cross-K/V
  /// projections; completed prompts are published back. Every cache
  /// operation runs in the coordinator, so outputs AND all prefix
  /// counters stay bit-identical between stepped and threaded runs.
  /// Under pool pressure cold cache blocks are reclaimed before any live
  /// sequence is preempted or shed (KvBlockPool::set_reclaim_hook).
  bool prefix_cache = false;
  /// Overload watermark: when more than this many never-admitted
  /// requests are queued, the worst-ranked are shed with a reason.
  /// 0 = never shed on overload.
  size_t shed_queue_depth = 0;
  /// Deterministic fault injection, armed on the pool AFTER the session
  /// warm-up (so warm-up takes don't consume the schedule): skip this
  /// many uncredited takes, then fail the next `fail_count`. Cleared at
  /// the end of the run.
  uint64_t fail_skip = 0;
  uint64_t fail_count = 0;
  /// Consecutive no-progress rounds before the engine force-sheds the
  /// worst-ranked request (liveness backstop under forced exhaustion).
  size_t stall_limit = 4096;
  /// Self-K/V storage format for every seat, the owned pool's row width
  /// and the preemption-cost model's swap-byte estimates (see
  /// GenerationOptions::kv_storage). An external kv_pool must be
  /// configured for the matching row width.
  numeric::KvStorage kv_storage = numeric::KvStorage::kInt8;
  /// Runtime telemetry sink (runtime/telemetry.hpp): when non-null AND
  /// configured, the coordinator records the full request lifecycle
  /// (admit, shed, prefill chunks, decode steps, preempt, swap-out/in,
  /// restore, deadline misses, completions) plus pool-occupancy and
  /// prefix-cache events into its trace ring, and feeds the standard
  /// latency histograms (TTFT, queue wait, per-token gap, preemption
  /// downtime, pool occupancy). Every event is emitted from
  /// coordinator-serial code stamped with the virtual round, so the
  /// virtual-time event sequence is bit-identical between stepped and
  /// threaded runs (wall_ns is a non-compared annotation). An
  /// unconfigured Telemetry is inert; must outlive the run.
  Telemetry* telemetry = nullptr;
};

struct TrafficClassStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t completed_late = 0;
  uint64_t shed_overload = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_capacity = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;  // unit errors (caller faults), not capacity sheds
  uint64_t preemptions = 0;   // evictions of this class's requests
  uint64_t swap_outs = 0;     // preemptions recovered by swap
  uint64_t recomputes = 0;    // preemptions recovered by re-prefill
  uint64_t restores = 0;      // successful restorations
  uint64_t deadline_misses = 0;
  uint64_t kv_block_waits = 0;  // admission/growth wait episodes
};

/// Per-class + aggregate counters for one run. Every field except
/// wall_ms is deterministic and bit-identical between stepped and
/// threaded modes (asserted by tests and the stress harness).
struct SchedulerStats {
  std::array<TrafficClassStats, kTrafficClasses> per_class{};
  uint64_t rounds = 0;
  uint64_t decode_steps = 0;
  uint64_t prefill_chunks = 0;
  uint64_t replayed_rows = 0;  // rows re-prefilled by drop-and-recompute
  uint64_t swap_bytes = 0;     // bytes spilled to the side buffer
  uint64_t kv_blocks_peak = 0;
  uint64_t failpoint_trips = 0;  // injected failures that fired this run
  /// Cross-request prefix cache (TrafficOptions::prefix_cache; all 0
  /// when off). Coordinator-serial, so deterministic in both modes.
  uint64_t prefix_hits = 0;          // admissions/restores that adopted blocks
  uint64_t prefix_misses = 0;
  uint64_t prefix_rows_adopted = 0;  // prefill rows skipped via adoption
  uint64_t prefix_bytes_saved = 0;   // adopted KV bytes + reused cross bytes
  uint64_t cross_kv_hits = 0;        // memory projections reused
  uint64_t cross_kv_misses = 0;
  uint64_t prefix_evictions = 0;     // cache blocks freed (pressure or caps)
  uint32_t max_active = 0;
  double wall_ms = 0.0;

  const TrafficClassStats& cls(TrafficPriority p) const {
    return per_class[static_cast<size_t>(p)];
  }
  uint64_t total(uint64_t TrafficClassStats::* field) const {
    uint64_t sum = 0;
    for (const TrafficClassStats& c : per_class) sum += c.*field;
    return sum;
  }
};

/// One flattened SchedulerStats field in the BENCH_*.json record
/// vocabulary (bench_common.hpp's {name, metric, value, unit} minus the
/// bench name the caller supplies).
struct StatSample {
  std::string metric;  // e.g. "preemptions", "interactive.completed"
  double value = 0.0;
  std::string unit = "count";
};

/// THE serializer for SchedulerStats: every aggregate counter, every
/// per-class counter (prefixed "<class>.") and the scalar fields, in a
/// fixed deterministic order. Benches append these to their BENCH_*.json
/// records and tests diff them — nobody hand-re-serializes the struct.
std::vector<StatSample> flatten_stats(const SchedulerStats& stats);

/// flatten_stats rendered as one JSON object {"metric": value, ...}
/// (doubles for wall_ms, integers otherwise; no trailing newline).
std::string scheduler_stats_json(const SchedulerStats& stats);

/// Continuous-batching engine with preemption, deadlines and shedding.
/// Owns the model; run() is reentrant across calls like
/// GenerationScheduler.
class TrafficEngine {
 public:
  TrafficEngine(accel::AccelConfig config, accel::QuantizedDecoder model);

  /// Serves every request to its terminal outcome. Completed requests'
  /// outputs are bit-identical to an unconstrained run (preemption and
  /// recovery are invisible in the bits); cancelled requests return the
  /// prefix they computed.
  std::vector<TrafficResult> run(const std::vector<TrafficRequest>& requests,
                                 const TrafficOptions& opts = {});

  const SchedulerStats& last_run() const { return last_run_; }
  const accel::QuantizedDecoder& model() const { return model_; }
  const accel::AccelConfig& config() const { return config_; }

 private:
  accel::AccelConfig config_;
  accel::QuantizedDecoder model_;
  SchedulerStats last_run_;
};

// --- synthetic trace generation ---------------------------------------------

/// One synthetic request descriptor. The harness maps items onto real
/// TrafficRequests (embeddings, policies) — the trace itself is pure
/// shape + timing, reproducible from the seed alone.
struct TraceItem {
  uint32_t arrival_round = 0;
  uint32_t prompt_rows = 1;
  uint32_t max_new = 1;
  TrafficPriority priority = TrafficPriority::kStandard;
  uint32_t deadline_rounds = 0;  // 0 = none
  bool cancel_on_deadline = false;
  bool sampled = false;  // stochastic decode policy (vs greedy)
  bool beam = false;     // beam-search group request
  uint64_t policy_seed = 0;
  /// Shared-prefix storm mode: index of the shared system prompt this
  /// request starts with (UINT32_MAX = none; prompt_rows then INCLUDES
  /// TraceConfig::shared_prefix_rows leading shared rows).
  uint32_t shared_prefix_id = UINT32_MAX;
};

/// Seeded synthetic traffic model: bursty Poisson arrivals (exponential
/// interarrivals whose rate jumps by burst_factor inside bursts),
/// bounded-Pareto heavy-tailed prompt/output lengths, and a
/// greedy/sampled/beam policy mix with priority classes and deadlines.
struct TraceConfig {
  size_t requests = 64;
  double mean_interarrival_rounds = 2.0;
  double burst_prob = 0.15;    // per-arrival chance to toggle burst state
  double burst_factor = 8.0;   // arrival-rate multiplier inside a burst
  double heavy_tail_alpha = 1.2;  // bounded-Pareto shape for lengths
  uint32_t min_prompt = 1;
  uint32_t max_prompt = 8;
  uint32_t min_new = 1;
  uint32_t max_new = 8;
  double sampled_fraction = 0.3;
  double beam_fraction = 0.0;
  double interactive_fraction = 0.25;
  double batch_fraction = 0.25;   // remainder is kStandard
  double deadline_fraction = 0.5;
  double deadline_slack = 3.0;    // deadline = slack x (prompt + max_new)
  double cancel_on_deadline_fraction = 0.0;
  uint64_t seed = 1;
  /// Shared-prefix storm mode (0 = off): every request draws one of this
  /// many distinct system prompts uniformly; its prompt becomes
  /// shared_prefix_rows shared rows + a bounded-Pareto unique tail of
  /// [min_prompt, max_prompt] rows (so prompt_rows always exceeds the
  /// shared span and adoption always leaves a tail to prefill).
  size_t shared_prefix_count = 0;
  uint32_t shared_prefix_rows = 0;
};

std::vector<TraceItem> generate_trace(const TraceConfig& config);

}  // namespace protea::runtime
