// Arena-backed K/V caches for incremental (KV-cached) decoding, with a
// vLLM-style paged layout for the self-attention rows.
//
// A decoder layer's attention state during autoregressive generation is
// (a) the self-attention K/V rows of every already-processed target
// position — append-only, one row per decode step — and (b) the
// cross-attention K/V projections of the encoder memory, computed once at
// prefill and read-only afterwards. Recomputing either on every step is
// what makes naive generation quadratic; caching both makes step t cost
// O(t) attention work instead of O(t^2).
//
// Two self-K/V layouts share one KvCache front end:
//
//   * dense (PR-3 layout, block_rows = 0): every head gets a private
//     (capacity x head_dim) view carved from the cache's arena at
//     configure(). Simple and contiguous, but a short sequence strands
//     the whole capacity reservation for its slot.
//   * paged (default): token rows live in fixed-size blocks handed out
//     by a KvBlockPool free list. One block holds `block_rows` token
//     rows, each row packing K and V for every (layer, head) — so one
//     per-sequence block table covers the whole stack, and capacity is
//     reserved per block on demand instead of per slot up front. The
//     pool can be private (sized at one full sequence) or shared by
//     many sequences, which is where the serving win lives: short
//     sequences hold only the blocks they actually filled.
//
// Cross K/V stays dense: it is written once per sequence at prefill and
// sized by the memory, not by generation progress.
//
// Paged blocks are refcounted, which buys copy-on-write FORKING: a cache
// can adopt another's block table by bumping refcounts (fork = O(block
// table), no K/V bytes move), and the first divergent append into a
// still-shared block copies just that block. Beam search and parallel
// sampling fork K branches off one prefill at near-1x prompt footprint.
// A KvPoolCredit reserves a fork group's COW-aware worst case at
// admission so shared-pool backpressure stays deadlock-free.
//
// Per-step bookkeeping is still two integers (len, memory_len) plus the
// block table; steady-state decoding never touches the heap (the block
// table and free list are pre-reserved at configure()). begin_sequence()
// recycles the same storage for the next request — the property the
// continuous-batching scheduler relies on when a slot retires one
// sequence and admits another.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "numeric/fp8.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

class TraceRecorder;  // runtime/telemetry.hpp

/// Thrown when a paged cache cannot get a block from its pool. Schedulers
/// catch-or-avoid this by reserving at admission (backpressure: the
/// request waits instead of corrupting a neighbor's rows).
class KvBlockExhausted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Admission credit for a GROUP of caches that fork blocks among each
/// other (a beam-search group): reserves worst-case HEADROOM in the pool
/// without naming blocks, so the group's later takes — fresh blocks and
/// write-triggered COW copies alike — are guaranteed to succeed without
/// waiting. That is what keeps shared-pool backpressure deadlock-free for
/// forked workloads: the group waits only at admission, holding nothing.
///
/// `live` counts the group's UNIQUE blocks (a block forked K ways counts
/// once — the whole point of COW accounting); `peak` is its high-water
/// mark. A credited take beyond `limit` throws std::logic_error: the
/// caller's worst-case bound was wrong, and the pool fails loudly instead
/// of silently eating another group's reservation. The credit must
/// outlive every block taken against it and every cache bound to it.
struct KvPoolCredit {
  size_t limit = 0;  // admission reservation (unique blocks)
  size_t live = 0;   // unique blocks currently held by the group
  size_t peak = 0;   // high-water mark of live since the reservation
};

/// Fixed-size block allocator for paged self K/V. All blocks are carved
/// from one private WorkspaceArena at configure() and recycled through a
/// free list; allocation is all-or-nothing (a partially-reserved sequence
/// would deadlock against another one). Thread-safe: scheduler workers
/// share one pool, and reserve_wait() parks a worker until a finishing
/// sequence releases blocks.
///
/// Blocks are REFCOUNTED for copy-on-write forking: fork_ref() lets a
/// second cache adopt a block (refcount bump — no K/V bytes move) and
/// release() frees a block only when its last holder lets go.
/// make_private() is the write-triggered copy: a shared block is
/// duplicated into a fresh block for the writer and the source refcount
/// drops by one. Zero-filling is lazy: a freed block is re-zeroed on its
/// FIRST hand-out after the free — and not at all when it is about to be
/// fully overwritten by a COW/duplicate copy.
class KvBlockPool {
 public:
  static constexpr uint32_t kNoBlock = 0xffffffffu;

  KvBlockPool() = default;
  KvBlockPool(const KvBlockPool&) = delete;
  KvBlockPool& operator=(const KvBlockPool&) = delete;

  /// Carves `num_blocks` blocks of (`block_rows` x `row_bytes`) and
  /// zero-fills them (recycled blocks always read defined bytes).
  void configure(size_t num_blocks, size_t block_rows, size_t row_bytes);
  bool configured() const { return num_blocks_ > 0; }

  size_t num_blocks() const { return num_blocks_; }
  size_t block_rows() const { return block_rows_; }
  size_t row_bytes() const { return row_bytes_; }
  size_t block_bytes() const { return block_rows_ * row_bytes_; }
  /// Arena bytes backing all blocks.
  size_t bytes() const;

  size_t free_blocks() const;
  /// Free blocks not spoken for by outstanding admission credits — what
  /// an uncredited taker can actually get without waiting.
  size_t uncommitted_free_blocks() const;
  /// Unique blocks held (a block shared by K forks counts ONCE — this is
  /// the pool-accounting number the COW sharing win shows up in).
  size_t used_blocks() const;
  /// Blocks currently shared by two or more holders (refcount >= 2).
  size_t shared_blocks() const;
  /// High-water mark of concurrently-held blocks since configure().
  size_t peak_used_blocks() const;
  /// All-or-nothing reservations that found the pool short (each is one
  /// backpressure event: the caller waited or deferred admission).
  uint64_t exhaustion_events() const;
  /// Write-triggered copies performed by make_private().
  uint64_t cow_copies() const;
  /// Lazy re-zeroings performed at hand-out (a COW/duplicate hand-out is
  /// fully overwritten by its copy and is never counted here).
  uint64_t zero_fills() const;

  /// Appends `n` block ids to `out` if all are available; on shortfall
  /// takes nothing, records an exhaustion event and returns false. With
  /// `credit`, the take draws on the group's admission reservation
  /// instead of the uncommitted pool (and throws std::logic_error past
  /// its limit). `skip_zero` skips the lazy re-zeroing when the caller
  /// is about to overwrite every byte (swap-in restore).
  bool try_reserve(size_t n, std::vector<uint32_t>& out,
                   KvPoolCredit* credit = nullptr, bool skip_zero = false);
  /// Blocking form: parks the caller until `n` blocks are free at once.
  /// `n` must not exceed num_blocks() (it could never be satisfied).
  void reserve_wait(size_t n, std::vector<uint32_t>& out,
                    KvPoolCredit* credit = nullptr);
  /// Drops one reference per listed block; a block whose last reference
  /// goes returns to the free list (marked for lazy re-zeroing) and wakes
  /// blocked reservers.
  void release(std::span<const uint32_t> blocks);

  /// COW fork: adds one reference to each listed block (no bytes move).
  /// Every block must be live; the forking cache must share the credit
  /// domain of the original holder (live-accounting is per unique block).
  void fork_ref(std::span<const uint32_t> blocks);
  uint32_t ref_count(uint32_t block) const;

  /// Write-triggered copy: returns `block` itself when the caller is the
  /// sole holder; otherwise takes a fresh block (skipping the lazy
  /// zero-fill — the copy overwrites every byte), duplicates the
  /// contents, drops one reference on the source and returns the copy.
  /// Throws KvBlockExhausted when the pool cannot back the copy.
  uint32_t make_private(uint32_t block, KvPoolCredit* credit = nullptr);
  /// make_private over a block-table slice under ONE lock (the per-write
  /// COW check runs per (layer, head) on the decode hot path — batching
  /// keeps that to one mutex acquisition per scatter). Updates shared
  /// entries in place; returns true when any copy was made.
  bool make_private_span(std::span<uint32_t> blocks,
                         KvPoolCredit* credit = nullptr);
  /// Eager copy: takes a fresh block, duplicates `block`'s contents into
  /// it and returns it. Source references are untouched (the reference
  /// the COW fork path is tested against).
  uint32_t duplicate(uint32_t block, KvPoolCredit* credit = nullptr);

  /// Reserves `n` blocks of HEADROOM for a fork group, all or nothing:
  /// uncredited takers keep their hands off that many free blocks, so
  /// the group's later (credited) takes never wait. `credit` must be
  /// idle (limit == live == 0).
  bool try_reserve_credit(KvPoolCredit& credit, size_t n);
  /// Blocking form of try_reserve_credit (parks until the headroom
  /// exists); `n` must not exceed num_blocks(). Returns true when the
  /// pool was short and the caller had to wait (ONE exhaustion event is
  /// recorded for the episode).
  bool reserve_credit_wait(KvPoolCredit& credit, size_t n);
  /// Returns unused headroom; the group must have released every block
  /// first (credit.live == 0).
  void release_credit(KvPoolCredit& credit);

  /// Backpressure escape valve for a block-level cache layered over this
  /// pool (runtime/prefix_cache.hpp): when an UNCREDITED all-or-nothing
  /// reservation finds the pool honestly short (injected failures do not
  /// fire it), the hook is invoked — with the pool mutex RELEASED — with
  /// the number of blocks wanted, asking the holder to free cold entries;
  /// it returns how many blocks it released and the reservation retries.
  /// Blocking reserves re-run the hook before every park and after every
  /// wake, so a pool whose free space is entirely held by reclaimable
  /// cache entries can never wedge a waiter. The hook may call back into
  /// this pool (release/ref_count); it must NOT reserve. Bind/unbind
  /// (nullptr) only while no other thread is using the pool, and unbind
  /// before the hook's owner dies.
  void set_reclaim_hook(std::function<size_t(size_t blocks_wanted)> hook) {
    reclaim_hook_ = std::move(hook);
  }

  /// Telemetry hook (runtime/telemetry.hpp): when bound, the pool emits
  /// kPoolOccupancy events on every take/release and kFailpointTrip on
  /// every injected failure, stamped with the recorder's current virtual
  /// round. The engines arm this AFTER session construction (mirroring
  /// the failpoint schedule) so warm-up takes are not recorded, and
  /// disarm it (nullptr) before the run returns. The recorder must
  /// outlive the binding. A no-op pointer store when telemetry is
  /// compiled out (record() is then a no-op anyway).
  void set_trace(TraceRecorder* trace);

  // --- deterministic fault injection (failpoints) ---------------------------
  //
  // Tests and the traffic stress harness inject pool exhaustion at exact,
  // reproducible points: after `skip` more UNCREDITED take attempts, the
  // next `count` attempts fail as if the pool were empty (recorded as
  // ordinary exhaustion events plus a failpoint_trips count). Credited
  // takes are never failpointed — their headroom is a contract the rest
  // of the system proves deadlock-freedom against. Compiled away to zero
  // hot-path cost when PROTEA_FAILPOINTS is off (the setters then throw).

  /// Arms "after `skip` attempts, fail the next `count`". Attempts are
  /// counted per pool operation (one try_reserve / one COW copy), not
  /// per block.
  void inject_failures(uint64_t skip, uint64_t count);
  /// Forces every uncredited take to fail until cleared. Meant for the
  /// try_* paths; reserve_wait() throws KvBlockExhausted while this is
  /// armed (a blocking reserve would otherwise spin on its own
  /// failpoint forever).
  void force_exhaustion(bool on);
  void clear_failures();
  /// Injected failures actually hit so far.
  uint64_t failpoint_trips() const;

  int8_t* row_data(uint32_t block, size_t row) {
    return data_ + (size_t{block} * block_rows_ + row) * row_bytes_;
  }
  const int8_t* row_data(uint32_t block, size_t row) const {
    return data_ + (size_t{block} * block_rows_ + row) * row_bytes_;
  }

 private:
  uint32_t pop_one_locked(KvPoolCredit* credit, bool skip_zero);
  bool take_locked(size_t n, std::vector<uint32_t>& out,
                   KvPoolCredit* credit, bool skip_zero);
  /// Post-reclaim retry: like take_locked but consumes no failpoint
  /// decision and records no exhaustion event — the retry belongs to the
  /// SAME caller-visible attempt whose shortfall was already counted.
  bool take_retry_locked(size_t n, std::vector<uint32_t>& out,
                         KvPoolCredit* credit, bool skip_zero);
  /// Runs the reclaim loop for a parked blocking reserve: drains the
  /// hook (unlocking around the call) and parks only when the hook made
  /// no progress, until `n` uncommitted blocks are free at once.
  void wait_for_blocks_locked(std::unique_lock<std::mutex>& lock, size_t n);
  size_t uncommitted_free_locked() const {
    return free_list_.size() - credit_outstanding_;
  }
  uint32_t duplicate_locked(uint32_t block, KvPoolCredit* credit);
  /// Telemetry emitters (no-ops while trace_ is unbound; defined in the
  /// .cpp so this header needs only the forward declaration).
  void note_occupancy_locked();
  void note_failpoint_locked();
  /// Consumes one failpoint decision for an uncredited take attempt.
#ifdef PROTEA_FAILPOINTS
  bool failpoint_hit_locked() {
    if (force_exhausted_) {
      ++failpoint_trips_;
      return true;
    }
    if (fail_skip_ > 0) {
      --fail_skip_;
      return false;
    }
    if (fail_next_ > 0) {
      --fail_next_;
      ++failpoint_trips_;
      return true;
    }
    return false;
  }
#else
  static constexpr bool failpoint_hit_locked() { return false; }
#endif

  WorkspaceArena arena_;
  int8_t* data_ = nullptr;
  size_t num_blocks_ = 0;
  size_t block_rows_ = 0;
  size_t row_bytes_ = 0;
  std::vector<uint32_t> free_list_;
  std::vector<uint32_t> ref_count_;   // 0 = free (on the free list)
  std::vector<uint8_t> is_free_;      // free-list membership, guards double frees
  std::vector<uint8_t> in_span_;      // release() scratch: duplicate-id guard
  std::vector<uint8_t> needs_zero_;   // freed since last zero-fill
  std::vector<KvPoolCredit*> block_credit_;  // admission-credit owner or null
  size_t credit_outstanding_ = 0;  // sum over credits of (limit - live)
  size_t peak_used_ = 0;
  uint64_t exhaustion_events_ = 0;
  uint64_t cow_copies_ = 0;
  uint64_t zero_fills_ = 0;
#ifdef PROTEA_FAILPOINTS
  uint64_t fail_skip_ = 0;   // uncredited attempts to let through first
  uint64_t fail_next_ = 0;   // then fail this many
  bool force_exhausted_ = false;
  uint64_t failpoint_trips_ = 0;
#endif
  std::function<size_t(size_t)> reclaim_hook_;
  TraceRecorder* trace_ = nullptr;  // telemetry sink, see set_trace()
  mutable std::mutex mutex_;
  std::condition_variable freed_;
};

/// RAII holder for a KvPoolCredit reservation: the headroom is released
/// when the lease dies, so a throw between admission and retirement can
/// never strand reserved blocks. The group's blocks must be released
/// BEFORE the lease is destroyed (credit live-accounting) — order block
/// cleanup guards inside the lease's scope.
class KvCreditLease {
 public:
  KvCreditLease() = default;
  explicit KvCreditLease(KvBlockPool& pool) : pool_(&pool) {}
  ~KvCreditLease() { release(); }
  KvCreditLease(KvCreditLease&& other) noexcept
      : pool_(other.pool_), credit_(other.credit_) {
    other.pool_ = nullptr;
    other.credit_ = KvPoolCredit{};
  }
  KvCreditLease& operator=(KvCreditLease&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      credit_ = other.credit_;
      other.pool_ = nullptr;
      other.credit_ = KvPoolCredit{};
    }
    return *this;
  }
  KvCreditLease(const KvCreditLease&) = delete;
  KvCreditLease& operator=(const KvCreditLease&) = delete;

  bool try_acquire(size_t n) { return pool_->try_reserve_credit(credit_, n); }
  /// Blocking acquire; returns true when the pool was short (one
  /// backpressure episode).
  bool acquire_wait(size_t n) { return pool_->reserve_credit_wait(credit_, n); }
  void release() {
    if (pool_ != nullptr && credit_.limit != 0) {
      pool_->release_credit(credit_);
    }
  }
  bool held() const { return credit_.limit != 0; }
  KvPoolCredit* credit() { return &credit_; }

 private:
  KvBlockPool* pool_ = nullptr;
  KvPoolCredit credit_;
};

/// One decoder layer's cached tensors, per attention head.
struct LayerKv {
  /// Dense layout only: (capacity x head_dim) each; rows [0, len) hold
  /// cached self K/V. Empty in paged mode (rows live in the block pool).
  std::vector<tensor::MatrixViewI8> self_k, self_v;
  /// (memory_capacity x head_dim) each; rows [0, memory_len) hold the
  /// encoder memory projected through this layer's cross K/V weights.
  std::vector<tensor::MatrixViewI8> cross_k, cross_v;
};

struct KvCacheOptions {
  /// Token rows per block. 0 selects the dense (PR-3) layout.
  size_t block_rows = 16;
  /// Shared pool for paged mode; nullptr gives the cache a private pool
  /// sized at one full-capacity sequence (same worst-case footprint as
  /// dense, but allocated block-by-block on demand).
  KvBlockPool* pool = nullptr;
  /// Self-K/V storage format (numeric/fp8.hpp). kInt8 stores quantized
  /// rows verbatim — the bit-exact reference. The fp8 formats re-encode
  /// each int8 value on scatter and decode on read (1 byte/element, so
  /// row_bytes is unchanged; the read side fuses the dequant table into
  /// the GEMM pack stage via RowSpanListI8::decode). fp4 e2m1 packs TWO
  /// elements per byte — head_dim must be even — halving row_bytes and
  /// block_bytes; its rows are not span-readable, so attention reads go
  /// through gather_self (the runtime falls back automatically). All
  /// non-int8 paths are deterministic: the stored code is a pure table
  /// function of the int8 value and reads back identically on every
  /// access (see KvCodec).
  numeric::KvStorage storage = numeric::KvStorage::kInt8;
};

class KvCache {
 public:
  KvCache() = default;
  ~KvCache();
  KvCache(const KvCache&) = delete;
  KvCache& operator=(const KvCache&) = delete;

  /// Carves the cross views (and, in dense mode, the self views) out of
  /// the private arena and zero-fills them. Paged mode instead sizes the
  /// block table and binds the pool. Reconfiguring with identical
  /// geometry and layout is a no-op.
  void configure(size_t num_layers, size_t num_heads, size_t head_dim,
                 size_t capacity, size_t memory_capacity,
                 const KvCacheOptions& opts = {});
  bool configured() const { return !layers_.empty(); }

  size_t num_layers() const { return layers_.size(); }
  size_t num_heads() const { return num_heads_; }
  size_t head_dim() const { return head_dim_; }
  /// Maximum target rows / encoder memory rows the views hold.
  size_t capacity() const { return capacity_; }
  size_t memory_capacity() const { return memory_capacity_; }

  /// Cached target rows (valid self K/V rows).
  size_t len() const { return len_; }
  /// Valid cross-projection rows for the current sequence.
  size_t memory_len() const { return memory_len_; }

  // --- paged layout ---------------------------------------------------------

  bool paged() const { return block_rows_ > 0; }
  size_t block_rows() const { return block_rows_; }
  /// Self-K/V storage format (KvCacheOptions::storage).
  numeric::KvStorage storage() const { return storage_; }
  /// True when stored rows can be read in place through self_spans():
  /// int8 and the byte-wide fp8 formats qualify; packed fp4 does not
  /// (two elements per byte — reads must decode through gather_self).
  bool span_readable() const {
    return storage_ != numeric::KvStorage::kFp4E2M1;
  }
  /// Pool-side bytes held by `elems` cached elements under this cache's
  /// storage format (identity for the byte-wide formats, halved for
  /// fp4) — the conversion executed byte counters apply so they match
  /// the storage-aware estimators.
  size_t storage_bytes(size_t elems) const {
    return numeric::kv_storage_bytes(elems, storage_);
  }
  /// Applies the storage round-trip (encode then decode) to `rows` in
  /// place — what the DENSE layout does after appending rows, so a
  /// dense sequence sees exactly the values a paged sequence reads back
  /// through its encoded blocks. No-op for int8.
  void storage_roundtrip(tensor::MatrixViewI8 rows) const;
  KvBlockPool* pool() { return pool_; }
  const KvBlockPool* pool() const { return pool_; }
  /// Rows the current block table can hold (capacity() in dense mode).
  size_t reserved_rows() const {
    return paged() ? block_table_.size() * block_rows_ : capacity_;
  }
  std::span<const uint32_t> block_table() const { return block_table_; }

  /// Grows the block table to cover `rows` total rows (all-or-nothing;
  /// never shrinks). Dense mode always succeeds. Returns false — taking
  /// nothing — when the pool is short.
  bool try_reserve_rows(size_t rows);
  /// try_reserve_rows or throw KvBlockExhausted.
  void reserve_rows(size_t rows);
  /// Blocking form for threaded schedulers: parks until the pool can
  /// satisfy the growth. The caller must not hold rows another waiter
  /// needs (reserve-at-admission keeps this deadlock-free).
  void reserve_rows_wait(size_t rows);
  /// Returns every held block to the pool (the cached rows die). The
  /// scheduler calls this when a sequence retires so waiting admissions
  /// can proceed; begin_sequence() keeps blocks for reuse instead.
  void release_blocks();

  /// Binds subsequent block takes (growth and COW copies) to a fork
  /// group's admission credit; nullptr unbinds. The cache must hold no
  /// blocks (credit live-accounting is per held block).
  void bind_credit(KvPoolCredit* credit);
  KvPoolCredit* credit() const { return credit_; }

  // --- preemption: swap-out / restore ---------------------------------------

  /// Bytes a swap-out would spill right now (held blocks x block bytes).
  size_t swap_bytes() const;
  /// Victim-preemption spill: copies every held block's FULL contents
  /// into `dst` (resized to swap_bytes()) in block-table order, then
  /// releases the blocks. Returns the cached row count to pass back to
  /// try_swap_in(). Bytes beyond len() ride along unchanged, so the
  /// restore is bit-exact including the partially-filled tail block.
  /// Refuses possibly-shared tables (a fork sibling still reads them).
  /// Cross K/V is NOT spilled — it is a pure function of the encoder
  /// memory and is recomputed at restore (prefill_begin), bit-identical.
  size_t swap_out(std::vector<int8_t>& dst);
  /// Restore: takes ceil(src / block_bytes) fresh blocks all-or-nothing
  /// (false — holding nothing — when the pool is short), copies the
  /// spilled bytes back and marks `rows` rows cached. The cache must
  /// hold no blocks; call begin_sequence()/prefill_begin first so the
  /// cross projections are back before decoding resumes.
  bool try_swap_in(std::span<const int8_t> src, size_t rows);

  // --- copy-on-write forking ------------------------------------------------

  /// Forks this cache off `parent` (paged mode, one SHARED pool, same
  /// geometry): adopts the parent's sequence state, byte-copies the cross
  /// K/V prefix and — the O(block-table) part — adopts the parent's block
  /// table by bumping each block's refcount. No self K/V bytes move; the
  /// first divergent append into a shared block triggers a copy-on-write
  /// (see scatter_self). `eager_copy` instead materializes private copies
  /// of every block at fork time — the bit-exact reference the COW path
  /// is tested against. Any blocks this cache held are released first.
  void fork_from(KvCache& parent, bool eager_copy = false);
  /// True when a fork may have left this cache's blocks shared (cleared
  /// when the cache drops its blocks).
  bool maybe_shared() const { return maybe_shared_; }

  /// Prefix-cache adoption (runtime/prefix_cache.hpp): installs `blocks`
  /// — already fork_ref'd FOR this cache by the caller, whole blocks
  /// covering `rows` prompt rows — as the leading block-table entries and
  /// marks the rows cached, moving zero K/V bytes and taking nothing from
  /// the free list. Table entries already reserved at those positions are
  /// released (adoption strictly reduces pool pressure); entries beyond
  /// the adopted span are kept. Requires the paged layout, an empty
  /// sequence (len() == 0 — call begin_sequence() first) and no admission
  /// credit (COW live-accounting cannot span a cache the group does not
  /// own). The table becomes possibly-shared: the COW write guard covers
  /// later divergence exactly as after fork_from.
  void adopt_prefix(std::span<const uint32_t> blocks, size_t rows);

  /// Marks the held table possibly-shared without moving anything: the
  /// prefix cache bumped block refcounts at publish, so divergent writes
  /// (and in-place sequence reuse) must go through the same COW guard a
  /// fork arms.
  void mark_table_shared() {
    if (!block_table_.empty()) {
      maybe_shared_ = true;
      forked_lineage_ = true;
    }
  }

  /// Copies the new K/V rows [pos, pos + k.rows()) of (layer, head) into
  /// their blocks (paged mode only; rows must be reserved), re-encoding
  /// through the storage codec when the format is not int8 (fp8: one
  /// code byte per element; fp4: two nibbles packed per byte, low
  /// nibble = even element). Writes respect forking: a target block
  /// shared with another cache is first made private (write-triggered
  /// copy), so a fork never scribbles on its siblings' prefix.
  void scatter_self(size_t layer, size_t head, size_t pos,
                    tensor::ConstMatrixViewI8 k, tensor::ConstMatrixViewI8 v);
  /// Copies rows [0, rows) of (layer, head) K and V into the contiguous
  /// (rows x head_dim) views `k_dst` / `v_dst` (paged mode only),
  /// decoding stored codes back to int8 for non-int8 storage. Kept as
  /// the bit-exact reference for the gather-free span path below, and
  /// the only read path for packed fp4 rows.
  void gather_self(size_t layer, size_t head, size_t rows,
                   tensor::MatrixViewI8 k_dst,
                   tensor::MatrixViewI8 v_dst) const;

  /// Block-strided read view of rows [0, rows) of (layer, head) self K
  /// (`which` = 0) or V (1): fills `runs` with (base, rows) runs walking
  /// the block table directly — adjacent pool blocks merge into one run —
  /// and returns the span-list operand (row stride = the pooled token-row
  /// bytes) the span-accepting engines consume in place. `runs` must hold
  /// max_self_span_runs(rows) entries. COW-safe by construction: reading
  /// never privatizes a block, so a fork sibling can stream a still-shared
  /// prefix while scatter_self's write-triggered copies keep divergent
  /// appends out of it — the spans a sequence takes always resolve
  /// through its OWN table, never a sibling's post-divergence writes.
  /// For fp8 storage the returned list carries the codec's dequant
  /// table (RowSpanListI8::decode) — the GEMM pack stage decodes the
  /// stored bytes while packing, so the consumer never sees codes.
  /// Packed fp4 rows are not span-readable (throws std::logic_error;
  /// check span_readable() and fall back to gather_self).
  tensor::RowSpanListI8 self_spans(size_t layer, size_t head, size_t which,
                                   size_t rows,
                                   std::span<tensor::RowSpanI8> runs) const;
  /// Worst-case run count self_spans can produce for `rows` rows (one per
  /// block before merging; paged mode only).
  size_t max_self_span_runs(size_t rows) const;

  // --- sequence bookkeeping -------------------------------------------------

  /// Starts a new sequence in the same storage: drops all cached target
  /// rows and records the memory length the cross caches will be
  /// prefilled for. Held blocks are kept for reuse; never allocates.
  void begin_sequence(size_t memory_len);

  /// Marks `n` more target rows as cached, after a full stack pass has
  /// appended them to every layer's self K/V rows.
  void append(size_t n);

  LayerKv& layer(size_t i) { return layers_.at(i); }
  const LayerKv& layer(size_t i) const { return layers_.at(i); }

  /// Arena bytes backing the cache storage (cross views, plus the dense
  /// self views; paged self rows live in the pool — see self_bytes()).
  size_t bytes() const { return arena_.used(); }
  /// Self-K/V bytes this cache currently holds: the dense reservation,
  /// or the held blocks' bytes in paged mode.
  size_t self_bytes() const;

 private:
  /// Makes every block overlapping rows [pos, pos + n) private to this
  /// cache (COW copies of any shared ones). No-op unless a fork left the
  /// table possibly shared.
  void ensure_rows_private(size_t pos, size_t n);
  int8_t* self_row_ptr(size_t row, size_t layer, size_t head, size_t which);
  const int8_t* self_row_ptr(size_t row, size_t layer, size_t head,
                             size_t which) const;
  /// Bytes per pooled token row: K and V for every (layer, head), at
  /// the storage format's width (head_bytes_ per K or V segment).
  size_t row_bytes() const {
    return layers_.size() * num_heads_ * 2 * head_bytes_;
  }

  WorkspaceArena arena_;
  std::vector<LayerKv> layers_;
  size_t num_heads_ = 0;
  size_t head_dim_ = 0;
  /// Stored bytes per (layer, head) K or V row segment:
  /// kv_storage_bytes(head_dim_, storage_).
  size_t head_bytes_ = 0;
  numeric::KvStorage storage_ = numeric::KvStorage::kInt8;
  const numeric::KvCodec* codec_ = nullptr;  // nullptr for int8
  size_t capacity_ = 0;
  size_t memory_capacity_ = 0;
  size_t len_ = 0;
  size_t memory_len_ = 0;
  // Paged state.
  size_t block_rows_ = 0;
  KvBlockPool* pool_ = nullptr;
  std::unique_ptr<KvBlockPool> owned_pool_;
  std::vector<uint32_t> block_table_;
  KvPoolCredit* credit_ = nullptr;
  /// Fast-path guard for the write-triggered copy: true while an append
  /// might hit a block shared with a fork sibling. Cleared once an
  /// append pass has privatized through the END of the table (appends
  /// only move forward, and fresh reservations are private), re-set by
  /// fork_from on both sides and re-armed by begin_sequence (in-place
  /// reuse rewinds the frontier over still-shared prefix blocks).
  bool maybe_shared_ = false;
  bool forked_lineage_ = false;  // held blocks may trace to a COW fork
};

}  // namespace protea::runtime
