// Arena-backed K/V caches for incremental (KV-cached) decoding.
//
// A decoder layer's attention state during autoregressive generation is
// (a) the self-attention K/V rows of every already-processed target
// position — append-only, one row per decode step — and (b) the
// cross-attention K/V projections of the encoder memory, computed once at
// prefill and read-only afterwards. Recomputing either on every step is
// what makes naive generation quadratic; caching both makes step t cost
// O(t) attention work instead of O(t^2).
//
// Storage is one private WorkspaceArena sized at configure(): every view
// is carved out up front at the synthesized capacities, so per-step
// bookkeeping is two integers (len, memory_len) and steady-state decoding
// never touches the allocator. begin_sequence() recycles the same storage
// for the next request — the property the continuous-batching scheduler
// relies on when a slot retires one sequence and admits another.
#pragma once

#include <cstddef>
#include <vector>

#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

/// One decoder layer's cached tensors, per attention head.
struct LayerKv {
  /// (capacity x head_dim) each; rows [0, len) hold cached self K/V.
  std::vector<tensor::MatrixViewI8> self_k, self_v;
  /// (memory_capacity x head_dim) each; rows [0, memory_len) hold the
  /// encoder memory projected through this layer's cross K/V weights.
  std::vector<tensor::MatrixViewI8> cross_k, cross_v;
};

class KvCache {
 public:
  KvCache() = default;

  /// Carves all per-layer/per-head views out of the private arena and
  /// zero-fills them (so a warmup pass over an empty cache reads defined
  /// bytes). Reconfiguring with identical geometry is a no-op.
  void configure(size_t num_layers, size_t num_heads, size_t head_dim,
                 size_t capacity, size_t memory_capacity);
  bool configured() const { return !layers_.empty(); }

  size_t num_layers() const { return layers_.size(); }
  size_t num_heads() const { return num_heads_; }
  size_t head_dim() const { return head_dim_; }
  /// Maximum target rows / encoder memory rows the views hold.
  size_t capacity() const { return capacity_; }
  size_t memory_capacity() const { return memory_capacity_; }

  /// Cached target rows (valid self K/V rows).
  size_t len() const { return len_; }
  /// Valid cross-projection rows for the current sequence.
  size_t memory_len() const { return memory_len_; }

  /// Starts a new sequence in the same storage: drops all cached target
  /// rows and records the memory length the cross caches will be
  /// prefilled for. Never allocates.
  void begin_sequence(size_t memory_len);

  /// Marks `n` more target rows as cached, after a full stack pass has
  /// appended them to every layer's self K/V views.
  void append(size_t n);

  LayerKv& layer(size_t i) { return layers_.at(i); }
  const LayerKv& layer(size_t i) const { return layers_.at(i); }

  /// Arena bytes backing the cache storage.
  size_t bytes() const { return arena_.used(); }

 private:
  WorkspaceArena arena_;
  std::vector<LayerKv> layers_;
  size_t num_heads_ = 0;
  size_t head_dim_ = 0;
  size_t capacity_ = 0;
  size_t memory_capacity_ = 0;
  size_t len_ = 0;
  size_t memory_len_ = 0;
};

}  // namespace protea::runtime
