#include "runtime/inference_session.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/quantizer.hpp"
#include "tensor/qgemm.hpp"

namespace protea::runtime {

void encoder_forward_into(const accel::QuantizedModel& qm,
                          const ref::ModelConfig& program,
                          const accel::AccelConfig& config,
                          const tensor::MatrixF& input, WorkspaceArena& ws,
                          accel::EngineStats* stats, tensor::MatrixF& output,
                          std::vector<EncoderLayerTrace>* traces,
                          StageGate* gate) {
  if (input.rows() != program.seq_len || input.cols() != program.d_model) {
    throw std::invalid_argument("forward: input shape mismatch");
  }
  if (traces != nullptr) {
    traces->clear();
    traces->resize(program.num_layers);
  }

  ws.reset();
  const size_t sl = input.rows();
  const size_t d = input.cols();
  auto x = ws.matrix_i8(sl, d);
  auto y = ws.matrix_i8(sl, d);
  auto concat = ws.matrix_i8(sl, d);

  // Quantize the input embedding at the first layer's input scale.
  numeric::Quantizer quant(8, /*pow2_scale=*/true);
  quant.set_scale(qm.layers.front().scales.x);
  quant.quantize(input.flat(), x.flat());

  // The shared kernel pool preserves the pre-runtime accelerators'
  // qgemm_set_threads() behaviour; it is nullptr (serial, the
  // zero-allocation configuration) unless the user opts in.
  const LayerOpContext ctx{.ws = ws,
                           .ts_mha = config.synth.ts_mha,
                           .ts_ffn = config.synth.ts_ffn,
                           .activation = program.activation,
                           .stats = stats,
                           .gemm_pool = tensor::qgemm_default_pool()};

  double out_scale = qm.layers.front().scales.x;
  for (uint32_t li = 0; li < program.num_layers; ++li) {
    const accel::QLayer& layer = qm.layers[li];
    // Between layers the calibrated scales line up (ln2 of layer l is the
    // input of layer l+1); realign with an exact shift when they differ.
    if (li > 0 && layer.scales.x != out_scale) {
      rescale_rows_inplace(x, out_scale, layer.scales.x);
    }

    std::vector<HeadTrace>* head_traces =
        traces != nullptr ? &(*traces)[li].heads : nullptr;
    FfnTrace* ffn_trace = traces != nullptr ? &(*traces)[li].ffn : nullptr;

    {
      const StageScope scope(gate, Stage::kMha);
      run_encoder_mha_stage(ctx, layer, x, concat, head_traces);
    }
    {
      const StageScope scope(gate, Stage::kFfn);
      run_encoder_ffn_stage(ctx, layer, concat, x, y, ffn_trace);
    }

    if (traces != nullptr) {
      (*traces)[li].concat =
          tensor::to_matrix(tensor::ConstMatrixViewI8(concat));
      (*traces)[li].out = tensor::to_matrix(tensor::ConstMatrixViewI8(y));
    }
    std::swap(x, y);
    out_scale = layer.scales.ln2;
  }

  if (output.rows() != sl || output.cols() != d) {
    output = tensor::MatrixF(sl, d);
  }
  quant.set_scale(out_scale);
  quant.dequantize(x.flat(), output.flat());
}

void decoder_forward_into(const accel::QuantizedDecoder& qd,
                          const accel::AccelConfig& config,
                          const tensor::MatrixF& target,
                          const tensor::MatrixF& memory, WorkspaceArena& ws,
                          accel::EngineStats* stats,
                          tensor::MatrixF& output) {
  const ref::ModelConfig& cfg = qd.config;
  if (target.cols() != cfg.d_model || memory.cols() != cfg.d_model) {
    throw std::invalid_argument("decoder forward: width mismatch");
  }
  if (target.rows() == 0 || target.rows() > cfg.seq_len) {
    throw std::invalid_argument("decoder forward: bad target length");
  }
  if (memory.rows() > config.synth.max_seq_len) {
    throw std::invalid_argument("decoder forward: memory too long");
  }

  ws.reset();
  const size_t t_len = target.rows();
  const size_t d = cfg.d_model;
  auto x = ws.matrix_i8(t_len, d);
  auto y = ws.matrix_i8(t_len, d);
  auto mem_q = ws.matrix_i8(memory.rows(), memory.cols());

  // Quantize the target stream and the encoder memory once.
  numeric::Quantizer quant(8, true);
  quant.set_scale(qd.layers.front().scales.x);
  quant.quantize(target.flat(), x.flat());
  quant.set_scale(qd.memory_scale);
  quant.quantize(memory.flat(), mem_q.flat());

  const LayerOpContext ctx{.ws = ws,
                           .ts_mha = config.synth.ts_mha,
                           .ts_ffn = config.synth.ts_ffn,
                           .activation = cfg.activation,
                           .stats = stats,
                           .gemm_pool = tensor::qgemm_default_pool()};

  double out_scale = qd.layers.front().scales.x;
  for (const accel::QDecoderLayer& layer : qd.layers) {
    if (layer.scales.x != out_scale) {
      rescale_rows_inplace(x, out_scale, layer.scales.x);
    }
    run_decoder_layer(ctx, layer, x, mem_q, y);
    std::swap(x, y);
    out_scale = layer.scales.ln3;
  }

  if (output.rows() != t_len || output.cols() != d) {
    output = tensor::MatrixF(t_len, d);
  }
  quant.set_scale(out_scale);
  quant.dequantize(x.flat(), output.flat());
}

InferenceSession::InferenceSession(const accel::AccelConfig& config,
                                   const accel::QuantizedModel& model)
    : config_(&config), model_(&model) {
  config.validate();
  accel::validate_runtime(config.synth, model.config);
}

void InferenceSession::forward_into(const tensor::MatrixF& input,
                                    tensor::MatrixF& output,
                                    StageGate* gate) {
  encoder_forward_into(*model_, model_->config, *config_, input, ws_,
                       &stats_, output, /*traces=*/nullptr, gate);
}

tensor::MatrixF InferenceSession::forward(const tensor::MatrixF& input) {
  tensor::MatrixF output;
  forward_into(input, output);
  return output;
}

}  // namespace protea::runtime
