#include "runtime/kv_cache.hpp"

#include <stdexcept>

namespace protea::runtime {

void KvCache::configure(size_t num_layers, size_t num_heads,
                        size_t head_dim, size_t capacity,
                        size_t memory_capacity) {
  if (num_layers == 0 || num_heads == 0 || head_dim == 0 || capacity == 0 ||
      memory_capacity == 0) {
    throw std::invalid_argument("KvCache::configure: zero dimension");
  }
  if (configured() && layers_.size() == num_layers &&
      num_heads_ == num_heads && head_dim_ == head_dim &&
      capacity_ == capacity && memory_capacity_ == memory_capacity) {
    return;  // identical geometry: keep storage and sequence state
  }

  layers_.clear();
  arena_.reset();  // no live views by contract once layers_ is cleared
  num_heads_ = num_heads;
  head_dim_ = head_dim;
  capacity_ = capacity;
  memory_capacity_ = memory_capacity;
  len_ = 0;
  memory_len_ = 0;

  layers_.resize(num_layers);
  for (LayerKv& layer : layers_) {
    layer.self_k.reserve(num_heads);
    layer.self_v.reserve(num_heads);
    layer.cross_k.reserve(num_heads);
    layer.cross_v.reserve(num_heads);
    for (size_t h = 0; h < num_heads; ++h) {
      layer.self_k.push_back(arena_.matrix_i8(capacity, head_dim));
      layer.self_v.push_back(arena_.matrix_i8(capacity, head_dim));
      layer.cross_k.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.cross_v.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.self_k.back().fill(0);
      layer.self_v.back().fill(0);
      layer.cross_k.back().fill(0);
      layer.cross_v.back().fill(0);
    }
  }
}

void KvCache::begin_sequence(size_t memory_len) {
  if (!configured()) {
    throw std::logic_error("KvCache::begin_sequence: not configured");
  }
  if (memory_len > memory_capacity_) {
    throw std::invalid_argument(
        "KvCache::begin_sequence: memory exceeds capacity");
  }
  len_ = 0;
  memory_len_ = memory_len;
}

void KvCache::append(size_t n) {
  if (len_ + n > capacity_) {
    throw std::invalid_argument("KvCache::append: capacity exceeded");
  }
  len_ += n;
}

}  // namespace protea::runtime
