#include "runtime/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "runtime/telemetry.hpp"
#include "util/math_util.hpp"

namespace protea::runtime {

// --- KvBlockPool -------------------------------------------------------------

void KvBlockPool::configure(size_t num_blocks, size_t block_rows,
                            size_t row_bytes) {
  if (num_blocks == 0 || block_rows == 0 || row_bytes == 0) {
    throw std::invalid_argument("KvBlockPool::configure: zero dimension");
  }
  const std::lock_guard lock(mutex_);
  if (configured() && num_blocks_ == num_blocks &&
      block_rows_ == block_rows && row_bytes_ == row_bytes) {
    return;  // identical geometry: keep storage and occupancy
  }
  if (configured() && free_list_.size() != num_blocks_) {
    throw std::logic_error(
        "KvBlockPool::configure: blocks still held by caches");
  }
  if (credit_outstanding_ != 0) {
    throw std::logic_error(
        "KvBlockPool::configure: admission credits outstanding");
  }
  num_blocks_ = num_blocks;
  block_rows_ = block_rows;
  row_bytes_ = row_bytes;
  arena_.reset();
  auto storage = arena_.matrix_i8(num_blocks * block_rows, row_bytes);
  storage.fill(0);
  data_ = storage.data();
  free_list_.clear();
  free_list_.reserve(num_blocks);
  // Stack order: block 0 on top, so a fresh pool hands out ids in
  // ascending order (deterministic block tables for the stepped mode).
  for (size_t b = num_blocks; b-- > 0;) {
    free_list_.push_back(static_cast<uint32_t>(b));
  }
  ref_count_.assign(num_blocks, 0);
  is_free_.assign(num_blocks, 1);
  in_span_.assign(num_blocks, 0);
  needs_zero_.assign(num_blocks, 0);  // configure() zeroed the arena
  block_credit_.assign(num_blocks, nullptr);
  peak_used_ = 0;
  exhaustion_events_ = 0;
  cow_copies_ = 0;
  zero_fills_ = 0;
}

size_t KvBlockPool::bytes() const { return arena_.used(); }

size_t KvBlockPool::free_blocks() const {
  const std::lock_guard lock(mutex_);
  return free_list_.size();
}

size_t KvBlockPool::uncommitted_free_blocks() const {
  const std::lock_guard lock(mutex_);
  return uncommitted_free_locked();
}

size_t KvBlockPool::used_blocks() const {
  const std::lock_guard lock(mutex_);
  return num_blocks_ - free_list_.size();
}

size_t KvBlockPool::peak_used_blocks() const {
  const std::lock_guard lock(mutex_);
  return peak_used_;
}

uint64_t KvBlockPool::exhaustion_events() const {
  const std::lock_guard lock(mutex_);
  return exhaustion_events_;
}

size_t KvBlockPool::shared_blocks() const {
  const std::lock_guard lock(mutex_);
  size_t shared = 0;
  for (uint32_t rc : ref_count_) shared += rc >= 2 ? 1 : 0;
  return shared;
}

uint64_t KvBlockPool::cow_copies() const {
  const std::lock_guard lock(mutex_);
  return cow_copies_;
}

uint64_t KvBlockPool::zero_fills() const {
  const std::lock_guard lock(mutex_);
  return zero_fills_;
}

uint32_t KvBlockPool::pop_one_locked(KvPoolCredit* credit, bool skip_zero) {
  const uint32_t b = free_list_.back();
  free_list_.pop_back();
  is_free_[b] = 0;
  ref_count_[b] = 1;
  block_credit_[b] = credit;
  if (credit != nullptr) {
    credit->live += 1;
    credit->peak = std::max(credit->peak, credit->live);
    credit_outstanding_ -= 1;
  }
  // Lazy re-zeroing: a recycled block is scrubbed on its first hand-out
  // after the free — except when the caller is about to overwrite every
  // byte with a COW/duplicate copy.
  if (needs_zero_[b]) {
    if (!skip_zero) {
      std::memset(data_ + size_t{b} * block_bytes(), 0, block_bytes());
      ++zero_fills_;
    }
    needs_zero_[b] = 0;
  }
  peak_used_ = std::max(peak_used_, num_blocks_ - free_list_.size());
  return b;
}

bool KvBlockPool::take_locked(size_t n, std::vector<uint32_t>& out,
                              KvPoolCredit* credit, bool skip_zero) {
  if (credit != nullptr) {
    // Credited takes draw on the group's admission reservation. Headroom
    // is guaranteed by the credit invariant (free >= credit_outstanding_
    // >= limit - live); exceeding the limit means the caller's
    // worst-case bound was wrong — fail loudly, never eat another
    // group's reservation. Failpoints never fire here: the reservation
    // is a contract.
    if (credit->live + n > credit->limit) {
      throw std::logic_error(
          "KvBlockPool: credited take exceeds its admission bound");
    }
  } else {
    const bool trip = failpoint_hit_locked();
    if (trip) note_failpoint_locked();
    if (trip || n > uncommitted_free_locked()) {
      ++exhaustion_events_;
      return false;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    out.push_back(pop_one_locked(credit, skip_zero));
  }
  note_occupancy_locked();
  return true;
}

bool KvBlockPool::take_retry_locked(size_t n, std::vector<uint32_t>& out,
                                    KvPoolCredit* credit, bool skip_zero) {
  if (n > uncommitted_free_locked()) return false;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(pop_one_locked(credit, skip_zero));
  }
  note_occupancy_locked();
  return true;
}

bool KvBlockPool::try_reserve(size_t n, std::vector<uint32_t>& out,
                              KvPoolCredit* credit, bool skip_zero) {
  if (n == 0) return true;
  bool honest_shortfall = false;
  {
    const std::lock_guard lock(mutex_);
    if (!configured()) {
      throw std::logic_error("KvBlockPool::try_reserve: not configured");
    }
    if (take_locked(n, out, credit, skip_zero)) return true;
    // Credited takes never fall through (they succeed or throw), so a
    // failed take here is uncredited: either an injected failure or a
    // real shortfall.
    honest_shortfall = n > uncommitted_free_locked();
  }
  if (!honest_shortfall || !reclaim_hook_) return false;
  // Honest shortfall: ask the cache layer to free cold blocks — outside
  // the lock, since reclamation releases blocks back into this pool —
  // and retry the same attempt (no second failpoint decision, no second
  // exhaustion event).
  if (reclaim_hook_(n) == 0) return false;
  const std::lock_guard lock(mutex_);
  return take_retry_locked(n, out, credit, skip_zero);
}

void KvBlockPool::wait_for_blocks_locked(std::unique_lock<std::mutex>& lock,
                                         size_t n) {
  while (n > uncommitted_free_locked()) {
    size_t freed = 0;
    if (reclaim_hook_) {
      // Drain the reclaim hook before parking: when the shortfall is
      // backed by cold cache blocks, nobody else would ever free them —
      // parking would deadlock. Re-checked after every wake too, since a
      // retiring sequence may hand its blocks to the cache (refcount
      // drop) rather than the free list.
      lock.unlock();
      freed = reclaim_hook_(n);
      lock.lock();
    }
    if (freed == 0) freed_.wait(lock);
  }
}

void KvBlockPool::reserve_wait(size_t n, std::vector<uint32_t>& out,
                               KvPoolCredit* credit) {
  if (n == 0) return;
  std::unique_lock lock(mutex_);
  if (!configured()) {
    throw std::logic_error("KvBlockPool::reserve_wait: not configured");
  }
  if (n > num_blocks_) {
    throw KvBlockExhausted(
        "KvBlockPool::reserve_wait: request exceeds pool size");
  }
  // Loop (not a single retry): an injected failpoint can fail the take
  // while the wait predicate is already true, in which case the wait
  // returns immediately and the retry consumes the next trip — finite
  // injections can therefore never wedge a blocking reserve.
  while (!take_locked(n, out, credit, /*skip_zero=*/false)) {
#ifdef PROTEA_FAILPOINTS
    // force_exhaustion fails EVERY take, so the retry loop would spin at
    // 100% CPU on its own failpoint (the wait predicate stays true).
    // Failpoints are test-only: fail loudly instead of live-locking.
    if (force_exhausted_) {
      throw KvBlockExhausted(
          "KvBlockPool::reserve_wait: forced-exhaustion failpoint armed");
    }
#endif
    // Only uncredited takes can fall through (credited ones either
    // succeed or throw); each shortfall was recorded as one event.
    // The wait drains the reclaim hook before parking and on every wake.
    wait_for_blocks_locked(lock, n);
  }
}

void KvBlockPool::release(std::span<const uint32_t> blocks) {
  if (blocks.empty()) return;
  {
    const std::lock_guard lock(mutex_);
    // Validate the whole span, marking seen ids as we go: one release
    // call drops ONE reference per DISTINCT block (a cache's table never
    // lists a block twice, so a duplicate WITHIN the span is always an
    // over-release — even when other forks still hold references). Roll
    // back before throwing: a bad or double-freed id must never leave a
    // block both free-listed and still held by a cache — that alias
    // would hand one block to two sequences, which then overwrite each
    // other's K/V rows.
    size_t marked = 0;
    while (marked < blocks.size()) {
      const uint32_t b = blocks[marked];
      if (b >= num_blocks_ || ref_count_[b] == 0 || in_span_[b]) break;
      in_span_[b] = 1;
      --ref_count_[b];
      ++marked;
    }
    if (marked != blocks.size()) {
      const bool bad_id = blocks[marked] >= num_blocks_;
      for (size_t i = 0; i < marked; ++i) {
        ++ref_count_[blocks[i]];
        in_span_[blocks[i]] = 0;
      }
      if (bad_id) {
        throw std::invalid_argument("KvBlockPool::release: bad block id");
      }
      throw std::logic_error("KvBlockPool::release: double free");
    }
    for (uint32_t b : blocks) in_span_[b] = 0;
    bool freed_any = false;
    for (uint32_t b : blocks) {
      if (ref_count_[b] == 0 && !is_free_[b]) {  // last holder let go
        is_free_[b] = 1;
        needs_zero_[b] = 1;  // scrubbed lazily at the next hand-out
        if (block_credit_[b] != nullptr) {
          block_credit_[b]->live -= 1;
          block_credit_[b] = nullptr;
          ++credit_outstanding_;  // headroom returns to the group
        }
        free_list_.push_back(b);
        freed_any = true;
      }
    }
    if (freed_any) note_occupancy_locked();
  }
  freed_.notify_all();
}

void KvBlockPool::fork_ref(std::span<const uint32_t> blocks) {
  const std::lock_guard lock(mutex_);
  for (uint32_t b : blocks) {
    if (b >= num_blocks_ || ref_count_[b] == 0) {
      throw std::invalid_argument("KvBlockPool::fork_ref: block not live");
    }
  }
  for (uint32_t b : blocks) ++ref_count_[b];
}

uint32_t KvBlockPool::ref_count(uint32_t block) const {
  const std::lock_guard lock(mutex_);
  if (block >= num_blocks_) {
    throw std::invalid_argument("KvBlockPool::ref_count: bad block id");
  }
  return ref_count_[block];
}

uint32_t KvBlockPool::duplicate_locked(uint32_t block,
                                       KvPoolCredit* credit) {
  if (block >= num_blocks_ || ref_count_[block] == 0) {
    throw std::invalid_argument("KvBlockPool::duplicate: block not live");
  }
  if (credit != nullptr) {
    if (credit->live + 1 > credit->limit) {
      throw std::logic_error(
          "KvBlockPool: credited take exceeds its admission bound");
    }
  } else {
    const bool trip = failpoint_hit_locked();
    if (trip) note_failpoint_locked();
    if (trip || uncommitted_free_locked() == 0) {
      ++exhaustion_events_;
      throw KvBlockExhausted(
          "KvBlockPool: no free block to back the copy-on-write");
    }
  }
  const uint32_t fresh = pop_one_locked(credit, /*skip_zero=*/true);
  std::memcpy(data_ + size_t{fresh} * block_bytes(),
              data_ + size_t{block} * block_bytes(), block_bytes());
  note_occupancy_locked();
  return fresh;
}

uint32_t KvBlockPool::make_private(uint32_t block, KvPoolCredit* credit) {
  const std::lock_guard lock(mutex_);
  if (block >= num_blocks_ || ref_count_[block] == 0) {
    throw std::invalid_argument(
        "KvBlockPool::make_private: block not live");
  }
  if (ref_count_[block] == 1) return block;  // sole holder: write in place
  const uint32_t copy = duplicate_locked(block, credit);
  --ref_count_[block];  // cannot hit zero: it was >= 2
  ++cow_copies_;
  return copy;
}

bool KvBlockPool::make_private_span(std::span<uint32_t> blocks,
                                    KvPoolCredit* credit) {
  const std::lock_guard lock(mutex_);
  bool copied = false;
  for (uint32_t& b : blocks) {
    if (b >= num_blocks_ || ref_count_[b] == 0) {
      throw std::invalid_argument(
          "KvBlockPool::make_private_span: block not live");
    }
    if (ref_count_[b] == 1) continue;  // sole holder: write in place
    const uint32_t copy = duplicate_locked(b, credit);
    --ref_count_[b];  // cannot hit zero: it was >= 2
    ++cow_copies_;
    b = copy;
    copied = true;
  }
  return copied;
}

uint32_t KvBlockPool::duplicate(uint32_t block, KvPoolCredit* credit) {
  const std::lock_guard lock(mutex_);
  return duplicate_locked(block, credit);
}

bool KvBlockPool::try_reserve_credit(KvPoolCredit& credit, size_t n) {
  bool honest_shortfall = false;
  {
    const std::lock_guard lock(mutex_);
    if (!configured()) {
      throw std::logic_error(
          "KvBlockPool::try_reserve_credit: not configured");
    }
    if (credit.limit != 0 || credit.live != 0) {
      throw std::logic_error(
          "KvBlockPool::try_reserve_credit: credit already in use");
    }
    const bool trip = failpoint_hit_locked();
    if (trip) note_failpoint_locked();
    if (!trip && n <= uncommitted_free_locked()) {
      credit.limit = n;
      credit.peak = 0;
      credit_outstanding_ += n;
      return true;
    }
    ++exhaustion_events_;
    honest_shortfall = n > uncommitted_free_locked();
  }
  // Same escape valve as try_reserve: cold cache blocks yield to an
  // admission that would otherwise be refused (no second failpoint
  // decision, no second exhaustion event on the retry).
  if (!honest_shortfall || !reclaim_hook_) return false;
  if (reclaim_hook_(n) == 0) return false;
  const std::lock_guard lock(mutex_);
  if (n > uncommitted_free_locked()) return false;
  credit.limit = n;
  credit.peak = 0;
  credit_outstanding_ += n;
  return true;
}

bool KvBlockPool::reserve_credit_wait(KvPoolCredit& credit, size_t n) {
  std::unique_lock lock(mutex_);
  if (!configured()) {
    throw std::logic_error(
        "KvBlockPool::reserve_credit_wait: not configured");
  }
  if (credit.limit != 0 || credit.live != 0) {
    throw std::logic_error(
        "KvBlockPool::reserve_credit_wait: credit already in use");
  }
  if (n > num_blocks_) {
    throw KvBlockExhausted(
        "KvBlockPool::reserve_credit_wait: request exceeds pool size");
  }
  bool waited = false;
  if (n > uncommitted_free_locked()) {
    waited = true;
    ++exhaustion_events_;  // once per backpressure episode
    wait_for_blocks_locked(lock, n);
  }
  credit.limit = n;
  credit.peak = 0;
  credit_outstanding_ += n;
  return waited;
}

void KvBlockPool::set_trace(TraceRecorder* trace) {
  const std::lock_guard lock(mutex_);
  trace_ = trace;
}

void KvBlockPool::note_occupancy_locked() {
  if (trace_ != nullptr) {
    trace_->record(TraceEventType::kPoolOccupancy, kNoTraceSeq,
                   num_blocks_ - free_list_.size(), free_list_.size());
  }
}

void KvBlockPool::note_failpoint_locked() {
#ifdef PROTEA_FAILPOINTS
  if (trace_ != nullptr) {
    trace_->record(TraceEventType::kFailpointTrip, kNoTraceSeq,
                   failpoint_trips_, 0);
  }
#endif
}

#ifdef PROTEA_FAILPOINTS
void KvBlockPool::inject_failures(uint64_t skip, uint64_t count) {
  const std::lock_guard lock(mutex_);
  fail_skip_ = skip;
  fail_next_ = count;
}

void KvBlockPool::force_exhaustion(bool on) {
  const std::lock_guard lock(mutex_);
  force_exhausted_ = on;
}

void KvBlockPool::clear_failures() {
  const std::lock_guard lock(mutex_);
  fail_skip_ = 0;
  fail_next_ = 0;
  force_exhausted_ = false;
}

uint64_t KvBlockPool::failpoint_trips() const {
  const std::lock_guard lock(mutex_);
  return failpoint_trips_;
}
#else
void KvBlockPool::inject_failures(uint64_t, uint64_t) {
  throw std::logic_error("KvBlockPool: built without PROTEA_FAILPOINTS");
}

void KvBlockPool::force_exhaustion(bool) {
  throw std::logic_error("KvBlockPool: built without PROTEA_FAILPOINTS");
}

void KvBlockPool::clear_failures() {}

uint64_t KvBlockPool::failpoint_trips() const { return 0; }
#endif

void KvBlockPool::release_credit(KvPoolCredit& credit) {
  {
    const std::lock_guard lock(mutex_);
    if (credit.live != 0) {
      throw std::logic_error(
          "KvBlockPool::release_credit: group still holds blocks");
    }
    credit_outstanding_ -= credit.limit;
    credit.limit = 0;
    credit.peak = 0;
  }
  freed_.notify_all();  // the headroom is uncommitted again
}

// --- KvCache -----------------------------------------------------------------

KvCache::~KvCache() {
  // Give shared-pool blocks back so a dying session (exception unwind,
  // scheduler teardown) never strands capacity other sequences wait on.
  if (pool_ != nullptr && !block_table_.empty()) {
    pool_->release(block_table_);
  }
}

void KvCache::configure(size_t num_layers, size_t num_heads,
                        size_t head_dim, size_t capacity,
                        size_t memory_capacity,
                        const KvCacheOptions& opts) {
  if (num_layers == 0 || num_heads == 0 || head_dim == 0 || capacity == 0 ||
      memory_capacity == 0) {
    throw std::invalid_argument("KvCache::configure: zero dimension");
  }
  const bool paged = opts.block_rows > 0;
  if (!paged && opts.pool != nullptr) {
    throw std::invalid_argument(
        "KvCache::configure: pool given but block_rows = 0 (dense)");
  }
  if (opts.storage == numeric::KvStorage::kFp4E2M1 && head_dim % 2 != 0) {
    throw std::invalid_argument(
        "KvCache::configure: packed fp4 storage needs an even head_dim");
  }
  if (configured() && layers_.size() == num_layers &&
      num_heads_ == num_heads && head_dim_ == head_dim &&
      capacity_ == capacity && memory_capacity_ == memory_capacity &&
      block_rows_ == opts.block_rows && storage_ == opts.storage &&
      (opts.pool == nullptr ? owned_pool_ != nullptr || !paged
                            : pool_ == opts.pool)) {
    return;  // identical geometry and layout: keep storage and state
  }

  release_blocks();
  layers_.clear();
  arena_.reset();  // no live views by contract once layers_ is cleared
  num_heads_ = num_heads;
  head_dim_ = head_dim;
  storage_ = opts.storage;
  codec_ = numeric::kv_codec(storage_);
  head_bytes_ = numeric::kv_storage_bytes(head_dim, storage_);
  capacity_ = capacity;
  memory_capacity_ = memory_capacity;
  len_ = 0;
  memory_len_ = 0;
  block_rows_ = opts.block_rows;
  owned_pool_.reset();
  pool_ = nullptr;
  credit_ = nullptr;
  maybe_shared_ = false;
  forked_lineage_ = false;

  layers_.resize(num_layers);
  for (LayerKv& layer : layers_) {
    layer.cross_k.reserve(num_heads);
    layer.cross_v.reserve(num_heads);
    for (size_t h = 0; h < num_heads; ++h) {
      layer.cross_k.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.cross_v.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.cross_k.back().fill(0);
      layer.cross_v.back().fill(0);
    }
    if (!paged) {
      layer.self_k.reserve(num_heads);
      layer.self_v.reserve(num_heads);
      for (size_t h = 0; h < num_heads; ++h) {
        layer.self_k.push_back(arena_.matrix_i8(capacity, head_dim));
        layer.self_v.push_back(arena_.matrix_i8(capacity, head_dim));
        layer.self_k.back().fill(0);
        layer.self_v.back().fill(0);
      }
    }
  }

  if (paged) {
    const size_t max_blocks = util::ceil_div(capacity, block_rows_);
    if (opts.pool != nullptr) {
      if (!opts.pool->configured()) {
        throw std::invalid_argument(
            "KvCache::configure: shared pool not configured");
      }
      if (opts.pool->block_rows() != block_rows_ ||
          opts.pool->row_bytes() != row_bytes()) {
        throw std::invalid_argument(
            "KvCache::configure: shared pool geometry mismatch");
      }
      pool_ = opts.pool;
    } else {
      owned_pool_ = std::make_unique<KvBlockPool>();
      owned_pool_->configure(max_blocks, block_rows_, row_bytes());
      pool_ = owned_pool_.get();
    }
    // Pre-size the table so steady-state growth never heap-allocates.
    block_table_.clear();
    block_table_.reserve(max_blocks);
  }
}

bool KvCache::try_reserve_rows(size_t rows) {
  if (!configured()) {
    throw std::logic_error("KvCache::try_reserve_rows: not configured");
  }
  if (rows > capacity_) {
    throw std::invalid_argument(
        "KvCache::try_reserve_rows: rows exceed capacity");
  }
  if (!paged() || rows <= reserved_rows()) return true;
  const size_t need =
      util::ceil_div(rows, block_rows_) - block_table_.size();
  return pool_->try_reserve(need, block_table_, credit_);
}

void KvCache::reserve_rows(size_t rows) {
  if (!try_reserve_rows(rows)) {
    throw KvBlockExhausted("KvCache::reserve_rows: block pool exhausted");
  }
}

void KvCache::reserve_rows_wait(size_t rows) {
  if (!configured()) {
    throw std::logic_error("KvCache::reserve_rows_wait: not configured");
  }
  if (rows > capacity_) {
    throw std::invalid_argument(
        "KvCache::reserve_rows_wait: rows exceed capacity");
  }
  if (!paged() || rows <= reserved_rows()) return;
  const size_t need =
      util::ceil_div(rows, block_rows_) - block_table_.size();
  pool_->reserve_wait(need, block_table_, credit_);
}

void KvCache::release_blocks() {
  if (pool_ != nullptr && !block_table_.empty()) {
    pool_->release(block_table_);
    block_table_.clear();
  }
  len_ = 0;  // the cached rows died with their blocks
  maybe_shared_ = false;
  forked_lineage_ = false;
}

void KvCache::bind_credit(KvPoolCredit* credit) {
  if (!block_table_.empty()) {
    throw std::logic_error(
        "KvCache::bind_credit: cache still holds blocks");
  }
  credit_ = credit;
}

size_t KvCache::swap_bytes() const {
  return paged() ? block_table_.size() * pool_->block_bytes() : 0;
}

size_t KvCache::swap_out(std::vector<int8_t>& dst) {
  if (!paged() || pool_ == nullptr) {
    throw std::logic_error("KvCache::swap_out: paged layout required");
  }
  if (maybe_shared_) {
    // A fork sibling may still read these blocks; spilling and releasing
    // them would yank the shared prefix out from under it. Beam groups
    // preempt as a unit through drop-and-recompute instead.
    throw std::logic_error(
        "KvCache::swap_out: block table possibly shared with a fork");
  }
  const size_t bytes = swap_bytes();
  dst.resize(bytes);
  const size_t bb = pool_->block_bytes();
  for (size_t i = 0; i < block_table_.size(); ++i) {
    std::memcpy(dst.data() + i * bb, pool_->row_data(block_table_[i], 0),
                bb);
  }
  const size_t rows = len_;
  release_blocks();
  return rows;
}

bool KvCache::try_swap_in(std::span<const int8_t> src, size_t rows) {
  if (!paged() || pool_ == nullptr) {
    throw std::logic_error("KvCache::try_swap_in: paged layout required");
  }
  if (!block_table_.empty()) {
    throw std::logic_error("KvCache::try_swap_in: cache still holds blocks");
  }
  const size_t bb = pool_->block_bytes();
  if (src.size() % bb != 0) {
    throw std::invalid_argument(
        "KvCache::try_swap_in: spill size is not a whole block count");
  }
  const size_t blocks = src.size() / bb;
  if (rows > blocks * block_rows_ || rows > capacity_) {
    throw std::invalid_argument("KvCache::try_swap_in: bad row count");
  }
  // All-or-nothing like any other reservation; the restore copy
  // overwrites every byte, so the lazy re-zero is skipped.
  if (!pool_->try_reserve(blocks, block_table_, credit_,
                          /*skip_zero=*/true)) {
    return false;
  }
  for (size_t i = 0; i < blocks; ++i) {
    std::memcpy(pool_->row_data(block_table_[i], 0), src.data() + i * bb,
                bb);
  }
  len_ = rows;
  return true;
}

void KvCache::fork_from(KvCache& parent, bool eager_copy) {
  if (!configured() || !parent.configured()) {
    throw std::logic_error("KvCache::fork_from: not configured");
  }
  if (&parent == this) {
    throw std::invalid_argument("KvCache::fork_from: self fork");
  }
  if (!paged() || !parent.paged()) {
    throw std::logic_error(
        "KvCache::fork_from: forking requires the paged layout");
  }
  if (pool_ != parent.pool_) {
    throw std::invalid_argument(
        "KvCache::fork_from: parent and child must share one pool");
  }
  if (layers_.size() != parent.layers_.size() ||
      num_heads_ != parent.num_heads_ || head_dim_ != parent.head_dim_ ||
      capacity_ != parent.capacity_ ||
      memory_capacity_ != parent.memory_capacity_ ||
      block_rows_ != parent.block_rows_) {
    throw std::invalid_argument("KvCache::fork_from: geometry mismatch");
  }
  if (storage_ != parent.storage_) {
    // Same row_bytes does not mean same meaning: an int8 cache reading a
    // fork parent's fp8 codes (or vice versa) would silently decode
    // garbage. Refuse loudly, like the prefix cache does for adoption.
    throw std::invalid_argument(
        "KvCache::fork_from: KV storage format mismatch");
  }
  release_blocks();
  len_ = parent.len_;
  memory_len_ = parent.memory_len_;

  // The cross projections are per-sequence dense views in this cache's
  // private arena; fork copies the prefilled prefix (a function of the
  // shared memory alone, identical across forks).
  for (size_t li = 0; li < layers_.size(); ++li) {
    const LayerKv& src = parent.layers_[li];
    LayerKv& dst = layers_[li];
    for (size_t h = 0; h < num_heads_; ++h) {
      const size_t bytes = memory_len_ * head_dim_;
      std::memcpy(dst.cross_k[h].row(0).data(), src.cross_k[h].row(0).data(),
                  bytes);
      std::memcpy(dst.cross_v[h].row(0).data(), src.cross_v[h].row(0).data(),
                  bytes);
    }
  }

  if (eager_copy) {
    // Reference mode: materialize a private copy of every block now.
    // Roll back on exhaustion so a failed fork leaves no stray holds.
    try {
      for (uint32_t b : parent.block_table_) {
        block_table_.push_back(pool_->duplicate(b, credit_));
      }
    } catch (...) {
      release_blocks();
      throw;
    }
    return;
  }
  // COW fork: adopt the parent's table by reference — O(block-table),
  // no K/V bytes move. Both sides may now hold shared blocks, so both
  // route divergent appends through the write-triggered copy.
  for (uint32_t b : parent.block_table_) block_table_.push_back(b);
  pool_->fork_ref(block_table_);
  maybe_shared_ = true;
  forked_lineage_ = true;
  parent.maybe_shared_ = true;
  parent.forked_lineage_ = true;
}

void KvCache::adopt_prefix(std::span<const uint32_t> blocks, size_t rows) {
  if (!paged() || pool_ == nullptr) {
    throw std::logic_error("KvCache::adopt_prefix: paged layout required");
  }
  if (len_ != 0) {
    throw std::logic_error(
        "KvCache::adopt_prefix: sequence already has cached rows");
  }
  if (credit_ != nullptr) {
    throw std::logic_error(
        "KvCache::adopt_prefix: credited caches cannot adopt");
  }
  if (blocks.empty() || rows == 0 || rows > blocks.size() * block_rows_ ||
      rows > capacity_) {
    throw std::invalid_argument("KvCache::adopt_prefix: bad row count");
  }
  // Swap the adopted blocks in for any entries already reserved at the
  // same positions; displaced (private) blocks return to the pool, so
  // adoption never takes from the free list and strictly reduces
  // pressure. A table smaller than the chain is dropped entirely — the
  // caller re-reserves growth beyond the adopted span on demand.
  if (blocks.size() <= block_table_.size()) {
    pool_->release(
        std::span<const uint32_t>(block_table_.data(), blocks.size()));
    std::copy(blocks.begin(), blocks.end(), block_table_.begin());
  } else {
    if (!block_table_.empty()) {
      pool_->release(block_table_);
      block_table_.clear();
    }
    block_table_.assign(blocks.begin(), blocks.end());
  }
  len_ = rows;
  maybe_shared_ = true;
  forked_lineage_ = true;
}

void KvCache::ensure_rows_private(size_t pos, size_t n) {
  if (!maybe_shared_ || n == 0) return;
  const size_t first = pos / block_rows_;
  const size_t last = (pos + n - 1) / block_rows_;
  pool_->make_private_span(
      std::span<uint32_t>(block_table_.data() + first, last - first + 1),
      credit_);
  // The hot-path payoff: once an append pass owns every block through
  // the END of the table, later appends cannot hit a shared block —
  // rows behind the frontier are never rewritten (begin_sequence
  // re-arms the guard), table growth hands out private blocks, and a
  // new fork re-sets the flag. Only the first scatter after a fork
  // pays the pool lock; the other (layer, head) scatters of the same
  // rows skip it.
  if (last + 1 == block_table_.size()) maybe_shared_ = false;
}

int8_t* KvCache::self_row_ptr(size_t row, size_t layer, size_t head,
                              size_t which) {
  const uint32_t block = block_table_[row / block_rows_];
  return pool_->row_data(block, row % block_rows_) +
         ((layer * num_heads_ + head) * 2 + which) * head_bytes_;
}

const int8_t* KvCache::self_row_ptr(size_t row, size_t layer, size_t head,
                                    size_t which) const {
  const uint32_t block = block_table_[row / block_rows_];
  return pool_->row_data(block, row % block_rows_) +
         ((layer * num_heads_ + head) * 2 + which) * head_bytes_;
}

namespace {

/// Encodes one head_dim-wide int8 row into its stored form (fp8: one
/// code byte per element; fp4: two nibbles per byte, low = even).
void encode_row(const numeric::KvCodec& codec, const int8_t* src,
                size_t head_dim, int8_t* dst) {
  const uint8_t* enc = codec.encode.data();
  if (codec.storage == numeric::KvStorage::kFp4E2M1) {
    for (size_t j = 0; j < head_dim; j += 2) {
      const uint8_t lo = enc[static_cast<uint8_t>(src[j]) ^ 0x80u];
      const uint8_t hi = enc[static_cast<uint8_t>(src[j + 1]) ^ 0x80u];
      dst[j / 2] = static_cast<int8_t>(lo | (hi << 4));
    }
  } else {
    for (size_t j = 0; j < head_dim; ++j) {
      dst[j] = static_cast<int8_t>(enc[static_cast<uint8_t>(src[j]) ^ 0x80u]);
    }
  }
}

/// Decodes one stored row back to int8 (the inverse read of encode_row).
void decode_row(const numeric::KvCodec& codec, const int8_t* src,
                size_t head_dim, int8_t* dst) {
  const int8_t* dec = codec.decode.data();
  if (codec.storage == numeric::KvStorage::kFp4E2M1) {
    for (size_t j = 0; j < head_dim; j += 2) {
      const auto byte = static_cast<uint8_t>(src[j / 2]);
      dst[j] = dec[byte & 0x0f];
      dst[j + 1] = dec[byte >> 4];
    }
  } else {
    for (size_t j = 0; j < head_dim; ++j) {
      dst[j] = dec[static_cast<uint8_t>(src[j])];
    }
  }
}

}  // namespace

void KvCache::storage_roundtrip(tensor::MatrixViewI8 rows) const {
  if (codec_ == nullptr) return;
  const int8_t* rt = codec_->roundtrip.data();
  int8_t* data = rows.data();
  const size_t n = rows.rows() * rows.cols();
  for (size_t i = 0; i < n; ++i) {
    data[i] = rt[static_cast<uint8_t>(data[i]) ^ 0x80u];
  }
}

void KvCache::scatter_self(size_t layer, size_t head, size_t pos,
                           tensor::ConstMatrixViewI8 k,
                           tensor::ConstMatrixViewI8 v) {
  if (!paged()) {
    throw std::logic_error("KvCache::scatter_self: dense layout");
  }
  if (layer >= layers_.size() || head >= num_heads_ ||
      k.rows() != v.rows() || k.cols() != head_dim_ ||
      v.cols() != head_dim_) {
    throw std::invalid_argument("KvCache::scatter_self: bad shape");
  }
  if (pos + k.rows() > reserved_rows()) {
    throw std::logic_error("KvCache::scatter_self: rows not reserved");
  }
  // Write-triggered copy: a fork must not scribble on blocks its
  // siblings still read. Layer 0 / head 0 pays the copy; later
  // (layer, head) writes of the same rows see refcount 1 and scatter in
  // place.
  ensure_rows_private(pos, k.rows());
  if (codec_ != nullptr) {
    for (size_t r = 0; r < k.rows(); ++r) {
      encode_row(*codec_, k.row(r).data(), head_dim_,
                 self_row_ptr(pos + r, layer, head, 0));
      encode_row(*codec_, v.row(r).data(), head_dim_,
                 self_row_ptr(pos + r, layer, head, 1));
    }
    return;
  }
  for (size_t r = 0; r < k.rows(); ++r) {
    std::memcpy(self_row_ptr(pos + r, layer, head, 0), k.row(r).data(),
                head_dim_);
    std::memcpy(self_row_ptr(pos + r, layer, head, 1), v.row(r).data(),
                head_dim_);
  }
}

void KvCache::gather_self(size_t layer, size_t head, size_t rows,
                          tensor::MatrixViewI8 k_dst,
                          tensor::MatrixViewI8 v_dst) const {
  if (!paged()) {
    throw std::logic_error("KvCache::gather_self: dense layout");
  }
  if (layer >= layers_.size() || head >= num_heads_ ||
      k_dst.rows() != rows || v_dst.rows() != rows ||
      k_dst.cols() != head_dim_ || v_dst.cols() != head_dim_) {
    throw std::invalid_argument("KvCache::gather_self: bad shape");
  }
  if (rows > reserved_rows()) {
    throw std::logic_error("KvCache::gather_self: rows not reserved");
  }
  if (codec_ != nullptr) {
    for (size_t r = 0; r < rows; ++r) {
      decode_row(*codec_, self_row_ptr(r, layer, head, 0), head_dim_,
                 k_dst.row(r).data());
      decode_row(*codec_, self_row_ptr(r, layer, head, 1), head_dim_,
                 v_dst.row(r).data());
    }
    return;
  }
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(k_dst.row(r).data(), self_row_ptr(r, layer, head, 0),
                head_dim_);
    std::memcpy(v_dst.row(r).data(), self_row_ptr(r, layer, head, 1),
                head_dim_);
  }
}

tensor::RowSpanListI8 KvCache::self_spans(
    size_t layer, size_t head, size_t which, size_t rows,
    std::span<tensor::RowSpanI8> runs) const {
  if (!paged()) {
    throw std::logic_error("KvCache::self_spans: dense layout");
  }
  if (layer >= layers_.size() || head >= num_heads_ || which > 1) {
    throw std::invalid_argument("KvCache::self_spans: bad index");
  }
  if (rows > reserved_rows()) {
    throw std::logic_error("KvCache::self_spans: rows not reserved");
  }
  if (!span_readable()) {
    throw std::logic_error(
        "KvCache::self_spans: packed fp4 rows are not span-readable "
        "(use gather_self)");
  }
  const size_t stride = row_bytes();
  size_t count = 0;
  for (size_t row = 0; row < rows;) {
    const size_t in_block =
        std::min(block_rows_ - row % block_rows_, rows - row);
    const int8_t* base = self_row_ptr(row, layer, head, which);
    if (count > 0 &&
        runs[count - 1].base + runs[count - 1].rows * stride == base) {
      // Adjacent pool blocks are contiguous in the pool arena: extend.
      runs[count - 1].rows += in_block;
    } else {
      if (count == runs.size()) {
        throw std::invalid_argument(
            "KvCache::self_spans: run buffer too small");
      }
      runs[count++] = {base, in_block};
    }
    row += in_block;
  }
  return {.runs = runs.first(count),
          .rows = rows,
          .cols = head_dim_,
          .row_stride = stride,
          // fp8 rows carry their dequant table: the GEMM pack stage
          // decodes the stored codes while packing (fused dequant).
          .decode = codec_ != nullptr ? codec_->decode.data() : nullptr};
}

size_t KvCache::max_self_span_runs(size_t rows) const {
  if (!paged()) {
    throw std::logic_error("KvCache::max_self_span_runs: dense layout");
  }
  return util::ceil_div(rows, block_rows_);
}

void KvCache::begin_sequence(size_t memory_len) {
  if (!configured()) {
    throw std::logic_error("KvCache::begin_sequence: not configured");
  }
  if (memory_len > memory_capacity_) {
    throw std::invalid_argument(
        "KvCache::begin_sequence: memory exceeds capacity");
  }
  len_ = 0;
  memory_len_ = memory_len;
  // In-place reuse rewinds the append frontier to 0: a forked lineage's
  // still-shared prefix blocks are writable again, so the COW guard must
  // come back up.
  if (forked_lineage_) maybe_shared_ = true;
}

void KvCache::append(size_t n) {
  if (len_ + n > capacity_) {
    throw std::invalid_argument("KvCache::append: capacity exceeded");
  }
  if (paged() && len_ + n > reserved_rows()) {
    throw std::logic_error("KvCache::append: rows not reserved");
  }
  len_ += n;
}

size_t KvCache::self_bytes() const {
  if (paged()) {
    return block_table_.size() * pool_->block_bytes();
  }
  return layers_.size() * num_heads_ * 2 * capacity_ * head_dim_;
}

}  // namespace protea::runtime
