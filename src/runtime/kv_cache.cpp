#include "runtime/kv_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::runtime {

// --- KvBlockPool -------------------------------------------------------------

void KvBlockPool::configure(size_t num_blocks, size_t block_rows,
                            size_t row_bytes) {
  if (num_blocks == 0 || block_rows == 0 || row_bytes == 0) {
    throw std::invalid_argument("KvBlockPool::configure: zero dimension");
  }
  const std::lock_guard lock(mutex_);
  if (configured() && num_blocks_ == num_blocks &&
      block_rows_ == block_rows && row_bytes_ == row_bytes) {
    return;  // identical geometry: keep storage and occupancy
  }
  if (configured() && free_list_.size() != num_blocks_) {
    throw std::logic_error(
        "KvBlockPool::configure: blocks still held by caches");
  }
  num_blocks_ = num_blocks;
  block_rows_ = block_rows;
  row_bytes_ = row_bytes;
  arena_.reset();
  auto storage = arena_.matrix_i8(num_blocks * block_rows, row_bytes);
  storage.fill(0);
  data_ = storage.data();
  free_list_.clear();
  free_list_.reserve(num_blocks);
  // Stack order: block 0 on top, so a fresh pool hands out ids in
  // ascending order (deterministic block tables for the stepped mode).
  for (size_t b = num_blocks; b-- > 0;) {
    free_list_.push_back(static_cast<uint32_t>(b));
  }
  is_free_.assign(num_blocks, 1);
  peak_used_ = 0;
  exhaustion_events_ = 0;
}

size_t KvBlockPool::bytes() const { return arena_.used(); }

size_t KvBlockPool::free_blocks() const {
  const std::lock_guard lock(mutex_);
  return free_list_.size();
}

size_t KvBlockPool::used_blocks() const {
  const std::lock_guard lock(mutex_);
  return num_blocks_ - free_list_.size();
}

size_t KvBlockPool::peak_used_blocks() const {
  const std::lock_guard lock(mutex_);
  return peak_used_;
}

uint64_t KvBlockPool::exhaustion_events() const {
  const std::lock_guard lock(mutex_);
  return exhaustion_events_;
}

bool KvBlockPool::take_locked(size_t n, std::vector<uint32_t>& out) {
  if (n > free_list_.size()) {
    ++exhaustion_events_;
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    const uint32_t b = free_list_.back();
    free_list_.pop_back();
    is_free_[b] = 0;
    out.push_back(b);
  }
  peak_used_ = std::max(peak_used_, num_blocks_ - free_list_.size());
  return true;
}

bool KvBlockPool::try_reserve(size_t n, std::vector<uint32_t>& out) {
  if (n == 0) return true;
  const std::lock_guard lock(mutex_);
  if (!configured()) {
    throw std::logic_error("KvBlockPool::try_reserve: not configured");
  }
  return take_locked(n, out);
}

void KvBlockPool::reserve_wait(size_t n, std::vector<uint32_t>& out) {
  if (n == 0) return;
  std::unique_lock lock(mutex_);
  if (!configured()) {
    throw std::logic_error("KvBlockPool::reserve_wait: not configured");
  }
  if (n > num_blocks_) {
    throw KvBlockExhausted(
        "KvBlockPool::reserve_wait: request exceeds pool size");
  }
  if (!take_locked(n, out)) {  // records the exhaustion event once
    freed_.wait(lock, [&] { return n <= free_list_.size(); });
    take_locked(n, out);  // predicate guarantees success
  }
}

void KvBlockPool::release(std::span<const uint32_t> blocks) {
  if (blocks.empty()) return;
  {
    const std::lock_guard lock(mutex_);
    // Validate the whole span (marking as we go so a duplicate WITHIN
    // the span also trips the check) and roll back before throwing: a
    // bad or double-freed id must never leave a block both free-listed
    // and still held by a cache — that alias would hand one block to
    // two sequences, which then overwrite each other's K/V rows.
    size_t marked = 0;
    while (marked < blocks.size()) {
      const uint32_t b = blocks[marked];
      if (b >= num_blocks_ || is_free_[b]) break;
      is_free_[b] = 1;
      ++marked;
    }
    if (marked != blocks.size()) {
      const bool bad_id = blocks[marked] >= num_blocks_;
      for (size_t i = 0; i < marked; ++i) is_free_[blocks[i]] = 0;
      if (bad_id) {
        throw std::invalid_argument("KvBlockPool::release: bad block id");
      }
      throw std::logic_error("KvBlockPool::release: double free");
    }
    for (uint32_t b : blocks) free_list_.push_back(b);
  }
  freed_.notify_all();
}

// --- KvCache -----------------------------------------------------------------

KvCache::~KvCache() {
  // Give shared-pool blocks back so a dying session (exception unwind,
  // scheduler teardown) never strands capacity other sequences wait on.
  if (pool_ != nullptr && !block_table_.empty()) {
    pool_->release(block_table_);
  }
}

void KvCache::configure(size_t num_layers, size_t num_heads,
                        size_t head_dim, size_t capacity,
                        size_t memory_capacity,
                        const KvCacheOptions& opts) {
  if (num_layers == 0 || num_heads == 0 || head_dim == 0 || capacity == 0 ||
      memory_capacity == 0) {
    throw std::invalid_argument("KvCache::configure: zero dimension");
  }
  const bool paged = opts.block_rows > 0;
  if (!paged && opts.pool != nullptr) {
    throw std::invalid_argument(
        "KvCache::configure: pool given but block_rows = 0 (dense)");
  }
  if (configured() && layers_.size() == num_layers &&
      num_heads_ == num_heads && head_dim_ == head_dim &&
      capacity_ == capacity && memory_capacity_ == memory_capacity &&
      block_rows_ == opts.block_rows &&
      (opts.pool == nullptr ? owned_pool_ != nullptr || !paged
                            : pool_ == opts.pool)) {
    return;  // identical geometry and layout: keep storage and state
  }

  release_blocks();
  layers_.clear();
  arena_.reset();  // no live views by contract once layers_ is cleared
  num_heads_ = num_heads;
  head_dim_ = head_dim;
  capacity_ = capacity;
  memory_capacity_ = memory_capacity;
  len_ = 0;
  memory_len_ = 0;
  block_rows_ = opts.block_rows;
  owned_pool_.reset();
  pool_ = nullptr;

  layers_.resize(num_layers);
  for (LayerKv& layer : layers_) {
    layer.cross_k.reserve(num_heads);
    layer.cross_v.reserve(num_heads);
    for (size_t h = 0; h < num_heads; ++h) {
      layer.cross_k.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.cross_v.push_back(arena_.matrix_i8(memory_capacity, head_dim));
      layer.cross_k.back().fill(0);
      layer.cross_v.back().fill(0);
    }
    if (!paged) {
      layer.self_k.reserve(num_heads);
      layer.self_v.reserve(num_heads);
      for (size_t h = 0; h < num_heads; ++h) {
        layer.self_k.push_back(arena_.matrix_i8(capacity, head_dim));
        layer.self_v.push_back(arena_.matrix_i8(capacity, head_dim));
        layer.self_k.back().fill(0);
        layer.self_v.back().fill(0);
      }
    }
  }

  if (paged) {
    const size_t max_blocks = util::ceil_div(capacity, block_rows_);
    if (opts.pool != nullptr) {
      if (!opts.pool->configured()) {
        throw std::invalid_argument(
            "KvCache::configure: shared pool not configured");
      }
      if (opts.pool->block_rows() != block_rows_ ||
          opts.pool->row_bytes() != row_bytes()) {
        throw std::invalid_argument(
            "KvCache::configure: shared pool geometry mismatch");
      }
      pool_ = opts.pool;
    } else {
      owned_pool_ = std::make_unique<KvBlockPool>();
      owned_pool_->configure(max_blocks, block_rows_, row_bytes());
      pool_ = owned_pool_.get();
    }
    // Pre-size the table so steady-state growth never heap-allocates.
    block_table_.clear();
    block_table_.reserve(max_blocks);
  }
}

bool KvCache::try_reserve_rows(size_t rows) {
  if (!configured()) {
    throw std::logic_error("KvCache::try_reserve_rows: not configured");
  }
  if (rows > capacity_) {
    throw std::invalid_argument(
        "KvCache::try_reserve_rows: rows exceed capacity");
  }
  if (!paged() || rows <= reserved_rows()) return true;
  const size_t need =
      util::ceil_div(rows, block_rows_) - block_table_.size();
  return pool_->try_reserve(need, block_table_);
}

void KvCache::reserve_rows(size_t rows) {
  if (!try_reserve_rows(rows)) {
    throw KvBlockExhausted("KvCache::reserve_rows: block pool exhausted");
  }
}

void KvCache::reserve_rows_wait(size_t rows) {
  if (!configured()) {
    throw std::logic_error("KvCache::reserve_rows_wait: not configured");
  }
  if (rows > capacity_) {
    throw std::invalid_argument(
        "KvCache::reserve_rows_wait: rows exceed capacity");
  }
  if (!paged() || rows <= reserved_rows()) return;
  const size_t need =
      util::ceil_div(rows, block_rows_) - block_table_.size();
  pool_->reserve_wait(need, block_table_);
}

void KvCache::release_blocks() {
  if (pool_ != nullptr && !block_table_.empty()) {
    pool_->release(block_table_);
    block_table_.clear();
  }
  len_ = 0;  // the cached rows died with their blocks
}

int8_t* KvCache::self_row_ptr(size_t row, size_t layer, size_t head,
                              size_t which) {
  const uint32_t block = block_table_[row / block_rows_];
  return pool_->row_data(block, row % block_rows_) +
         ((layer * num_heads_ + head) * 2 + which) * head_dim_;
}

const int8_t* KvCache::self_row_ptr(size_t row, size_t layer, size_t head,
                                    size_t which) const {
  const uint32_t block = block_table_[row / block_rows_];
  return pool_->row_data(block, row % block_rows_) +
         ((layer * num_heads_ + head) * 2 + which) * head_dim_;
}

void KvCache::scatter_self(size_t layer, size_t head, size_t pos,
                           tensor::ConstMatrixViewI8 k,
                           tensor::ConstMatrixViewI8 v) {
  if (!paged()) {
    throw std::logic_error("KvCache::scatter_self: dense layout");
  }
  if (layer >= layers_.size() || head >= num_heads_ ||
      k.rows() != v.rows() || k.cols() != head_dim_ ||
      v.cols() != head_dim_) {
    throw std::invalid_argument("KvCache::scatter_self: bad shape");
  }
  if (pos + k.rows() > reserved_rows()) {
    throw std::logic_error("KvCache::scatter_self: rows not reserved");
  }
  for (size_t r = 0; r < k.rows(); ++r) {
    std::memcpy(self_row_ptr(pos + r, layer, head, 0), k.row(r).data(),
                head_dim_);
    std::memcpy(self_row_ptr(pos + r, layer, head, 1), v.row(r).data(),
                head_dim_);
  }
}

void KvCache::gather_self(size_t layer, size_t head, size_t rows,
                          tensor::MatrixViewI8 k_dst,
                          tensor::MatrixViewI8 v_dst) const {
  if (!paged()) {
    throw std::logic_error("KvCache::gather_self: dense layout");
  }
  if (layer >= layers_.size() || head >= num_heads_ ||
      k_dst.rows() != rows || v_dst.rows() != rows ||
      k_dst.cols() != head_dim_ || v_dst.cols() != head_dim_) {
    throw std::invalid_argument("KvCache::gather_self: bad shape");
  }
  if (rows > reserved_rows()) {
    throw std::logic_error("KvCache::gather_self: rows not reserved");
  }
  for (size_t r = 0; r < rows; ++r) {
    std::memcpy(k_dst.row(r).data(), self_row_ptr(r, layer, head, 0),
                head_dim_);
    std::memcpy(v_dst.row(r).data(), self_row_ptr(r, layer, head, 1),
                head_dim_);
  }
}

void KvCache::begin_sequence(size_t memory_len) {
  if (!configured()) {
    throw std::logic_error("KvCache::begin_sequence: not configured");
  }
  if (memory_len > memory_capacity_) {
    throw std::invalid_argument(
        "KvCache::begin_sequence: memory exceeds capacity");
  }
  len_ = 0;
  memory_len_ = memory_len;
}

void KvCache::append(size_t n) {
  if (len_ + n > capacity_) {
    throw std::invalid_argument("KvCache::append: capacity exceeded");
  }
  if (paged() && len_ + n > reserved_rows()) {
    throw std::logic_error("KvCache::append: rows not reserved");
  }
  len_ += n;
}

size_t KvCache::self_bytes() const {
  if (paged()) {
    return block_table_.size() * pool_->block_bytes();
  }
  return layers_.size() * num_heads_ * 2 * capacity_ * head_dim_;
}

}  // namespace protea::runtime
