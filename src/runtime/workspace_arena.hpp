// Session-lifetime workspace arena for the serving runtime.
//
// Every intermediate of a steady-state forward pass — per-head Q/K/V,
// attention logits, int32 GEMM accumulators, packed-B scratch, layernorm
// row buffers — is a short-lived, shape-stable temporary. The arena hands
// them out as non-owning MatrixViews from one bump-allocated buffer:
//
//   * alloc is a pointer bump (64-byte aligned, zero branching beyond the
//     capacity check);
//   * mark()/rewind() reclaim per-head / per-stage temporaries in LIFO
//     order, so a whole forward pass peaks at a few matrix-sized blocks;
//   * reset() rewinds everything between forwards and — only when the
//     previous cycle had to grow — consolidates to one block sized at the
//     observed peak, so from the second reset on, a session's forward()
//     performs zero heap allocations.
//
// Growth never invalidates live views: new demand lands in freshly chained
// blocks, and consolidation happens only at reset(), when no views are
// live by contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "tensor/matrix.hpp"

namespace protea::runtime {

class WorkspaceArena {
 public:
  /// `initial_bytes` pre-sizes the first block (0 defers to first use).
  explicit WorkspaceArena(size_t initial_bytes = 0);

  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;
  WorkspaceArena(WorkspaceArena&&) = default;
  WorkspaceArena& operator=(WorkspaceArena&&) = default;

  /// LIFO checkpoint into the arena; everything allocated after mark()
  /// is reclaimed by rewind(). Views taken after the mark are dead once
  /// rewound (the memory will be reused).
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };

  Mark mark() const { return {current_, current_used()}; }
  void rewind(Mark m);

  /// Rewinds the whole arena for the next forward pass. If the previous
  /// cycle spilled into extra blocks, consolidates into a single block at
  /// the observed peak (one allocation, after which resets are free).
  void reset();

  tensor::MatrixViewI8 matrix_i8(size_t rows, size_t cols) {
    return {alloc<int8_t>(rows * cols), rows, cols};
  }
  tensor::MatrixViewI32 matrix_i32(size_t rows, size_t cols) {
    return {alloc<int32_t>(rows * cols), rows, cols};
  }
  tensor::MatrixViewF matrix_f(size_t rows, size_t cols) {
    return {alloc<float>(rows * cols), rows, cols};
  }
  std::span<int8_t> span_i8(size_t count) {
    return {alloc<int8_t>(count), count};
  }
  std::span<int32_t> span_i32(size_t count) {
    return {alloc<int32_t>(count), count};
  }
  /// Arena-backed array of a trivially-destructible POD (e.g. the
  /// RowSpanI8 run lists the block-strided attention path builds per
  /// head). Uninitialized, like every other handout; every allocation
  /// is kAlign-aligned, which covers any such T.
  template <typename T>
  std::span<T> span_of(size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  alignof(T) <= kAlign);
    return {alloc<T>(count), count};
  }

  /// Bytes currently handed out (across all blocks).
  size_t used() const { return live_bytes_; }
  /// Peak bytes handed out since the last reset (sizes consolidation).
  size_t peak() const { return peak_bytes_; }
  /// Total bytes owned by the arena's blocks.
  size_t capacity() const;
  /// Number of backing blocks (1 in steady state).
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;  // raw storage (size + kAlign)
    std::byte* base = nullptr;          // first kAlign-aligned byte
    size_t size = 0;
    size_t used = 0;
  };

  static constexpr size_t kAlign = 64;
  static size_t padded(size_t bytes) {
    return (bytes + kAlign - 1) & ~(kAlign - 1);
  }

  size_t current_used() const {
    return blocks_.empty() ? 0 : blocks_[current_].used;
  }

  template <typename T>
  T* alloc(size_t count) {
    return reinterpret_cast<T*>(raw_alloc(count * sizeof(T)));
  }

  std::byte* raw_alloc(size_t bytes);
  void add_block(size_t min_size);

  std::vector<Block> blocks_;
  size_t current_ = 0;  // block currently being bumped
  size_t live_bytes_ = 0;
  size_t peak_bytes_ = 0;
};

}  // namespace protea::runtime
