// Runtime telemetry: request-lifecycle tracing, latency histograms and
// Chrome-trace export for the serving stack.
//
// Three pieces, all preallocated so the steady state never touches the
// heap (pinned by the counting test in tests/test_telemetry.cpp):
//
//   * TraceRecorder — a fixed-capacity ring of typed events (admit,
//     shed, prefill-chunk, decode-step, preempt, swap-out/in, restore,
//     prefix-adopt/publish/evict, deadline-miss, complete, pool
//     occupancy, failpoint trips), each stamped with BOTH the engine's
//     virtual-time round and a wall-clock nanosecond annotation. Hooks
//     in TrafficEngine, GenerationScheduler, KvBlockPool and
//     PrefixCache feed it.
//   * MetricsRegistry — named counters, gauges and log-bucketed
//     histograms (TTFT, per-token latency, queue wait, preemption
//     downtime, pool occupancy) with nearest-rank p50/p95/p99
//     extraction: exact below the linear threshold, bounded relative
//     error (<= 1/8) above it.
//   * Exporters — Chrome trace-event JSON (loads in chrome://tracing /
//     Perfetto: one async track per sequence plus pool counter and
//     scheduler tracks) and a flattener that folds metrics into the
//     BENCH_*.json record schema.
//
// Determinism contract: every event's VIRTUAL fields (type, seq, round,
// a, b) are produced by coordinator-serial code in the traffic engine,
// so the recorded sequence is bit-identical between stepped and threaded
// runs; wall_ns is the one non-compared annotation. (The generation
// scheduler's threaded mode has no global round clock — its events are
// mutex-serialized but arrive in thread order; only its stepped mode is
// deterministic.)
//
// Compile-out: mirrors PROTEA_FAILPOINTS. Under PROTEA_TELEMETRY=OFF
// the recorder and registry compile to empty shells — configure() and
// every registration setter throw std::logic_error, record()/observe()
// are constexpr no-ops — so a production build pays nothing, not even
// the ring's memory.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.hpp"

namespace protea::runtime {

// --- trace events ------------------------------------------------------------

/// Request-lifecycle event taxonomy. Payload fields `a`/`b` per type:
///   kAdmit         a = queue wait (rounds)   b = prompt rows
///   kShed          a = TrafficOutcome code   b = 0
///   kPrefillChunk  a = target cached rows    b = 0
///   kDecodeStep    a = decode step index     b = 0
///   kPreempt       a = 1 swap / 0 recompute  b = cached rows evicted
///   kSwapOut       a = bytes spilled         b = rows spilled
///   kSwapIn        a = bytes restored        b = rows restored
///   kRestore       a = downtime (rounds)     b = path (0 swap-in,
///                                                1 re-prefill, 2 replay)
///   kPrefixAdopt   a = rows adopted          b = blocks adopted
///   kPrefixPublish a = rows published        b = new blocks inserted
///   kPrefixEvict   a = blocks freed          b = 0
///   kDeadlineMiss  a = deadline round        b = 0
///   kComplete      a = TrafficOutcome code   b = latency (rounds)
///   kPoolOccupancy a = used blocks           b = free blocks
///   kFailpointTrip a = trips so far          b = 0
enum class TraceEventType : uint32_t {
  kAdmit = 0,
  kShed,
  kPrefillChunk,
  kDecodeStep,
  kPreempt,
  kSwapOut,
  kSwapIn,
  kRestore,
  kPrefixAdopt,
  kPrefixPublish,
  kPrefixEvict,
  kDeadlineMiss,
  kComplete,
  kPoolOccupancy,
  kFailpointTrip,
};
inline constexpr size_t kTraceEventTypes = 15;
const char* trace_event_name(TraceEventType t);

/// seq for events not tied to one request (pool occupancy, failpoint
/// trips, cache evictions).
inline constexpr uint32_t kNoTraceSeq = UINT32_MAX;

/// One recorded event. POD — the ring holds these by value; recording
/// copies six words and never allocates.
struct TraceEvent {
  TraceEventType type = TraceEventType::kAdmit;
  uint32_t seq = kNoTraceSeq;  // request index, kNoTraceSeq when global
  uint32_t round = 0;          // virtual time (scheduler rounds)
  uint64_t a = 0;              // payload, see the taxonomy above
  uint64_t b = 0;
  uint64_t wall_ns = 0;  // util::monotonic_ns() annotation, NOT compared
};

/// Equality over the deterministic fields only (wall_ns excluded) — the
/// stepped-vs-threaded bit-identity gates compare through this.
inline bool virtual_equal(const TraceEvent& x, const TraceEvent& y) {
  return x.type == y.type && x.seq == y.seq && x.round == y.round &&
         x.a == y.a && x.b == y.b;
}
bool virtual_equal(const std::vector<TraceEvent>& x,
                   const std::vector<TraceEvent>& y);

/// Fixed-capacity ring of TraceEvents. configure() preallocates; from
/// then on record() is mutex-guarded (the generation scheduler's
/// threaded mode records from workers), allocation-free, and keeps the
/// NEWEST `capacity` events on wraparound. The coordinator advances the
/// virtual clock via set_round(); hook emitters (pool, prefix cache)
/// inherit the current round so their events carry correct virtual time.
class TraceRecorder {
 public:
  /// Preallocates the ring. Throws std::logic_error when the build has
  /// PROTEA_TELEMETRY off (mirror of the failpoint setters).
  void configure(size_t capacity);
  bool configured() const;

  void record(TraceEventType type, uint32_t seq, uint64_t a = 0,
              uint64_t b = 0);
  void set_round(uint32_t round);
  uint32_t round() const;

  /// Events ever recorded (wraparound does not reset this).
  uint64_t total() const;
  /// Events of one type ever recorded.
  uint64_t count(TraceEventType t) const;
  /// Ring contents oldest -> newest. Allocates — NOT steady-state.
  std::vector<TraceEvent> snapshot() const;
  /// Empties the ring and zeroes the counters; capacity is kept.
  void clear();

#ifdef PROTEA_TELEMETRY

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;    // next write position
  size_t size_ = 0;    // live events (== capacity once wrapped)
  uint64_t total_ = 0;
  uint32_t round_ = 0;
  std::array<uint64_t, kTraceEventTypes> counts_{};
#endif
};

// --- metrics -----------------------------------------------------------------

class Counter {
 public:
  void add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) {
    value_ = v;
    max_ = v > max_ ? v : max_;
  }
  double value() const { return value_; }
  double max() const { return max_; }
  void reset() { value_ = 0.0; max_ = 0.0; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Log-linear histogram over uint64 values: one bucket per value below
/// kLinearMax (exact), then 8 linear sub-buckets per power-of-two range
/// (relative error <= 1/8). All buckets preallocated at construction;
/// observe() is branch + increment, allocation-free.
class Histogram {
 public:
  static constexpr uint64_t kLinearMax = 64;  // exact below this
  static constexpr size_t kSubBuckets = 8;    // per 2^k range above

  Histogram();

  void observe(uint64_t value);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Nearest-rank percentile (p in [0, 100]): the upper bound of the
  /// bucket holding the ceil(p/100 * count)-th smallest observation.
  /// Exact for values < kLinearMax; within 1/8 relative error above.
  uint64_t percentile(double p) const;

  void reset();

  static size_t bucket_index(uint64_t value);
  /// Largest value mapping to bucket `index` (the reported percentile
  /// representative).
  static uint64_t bucket_upper_bound(size_t index);
  static size_t num_buckets();

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// Named instruments with stable references: registration (setup time)
/// allocates; lookups and the instruments themselves do not. Deque-backed
/// so a registered instrument's address never moves.
class MetricsRegistry {
 public:
  /// Throws std::logic_error when the build has PROTEA_TELEMETRY off.
  Counter& add_counter(std::string name);
  Gauge& add_gauge(std::string name);
  Histogram& add_histogram(std::string name);

  /// nullptr when absent (and always nullptr when compiled out).
  Counter* find_counter(std::string_view name);
  Gauge* find_gauge(std::string_view name);
  Histogram* find_histogram(std::string_view name);

  struct NamedCounter {
    std::string name;
    Counter counter;
  };
  struct NamedGauge {
    std::string name;
    Gauge gauge;
  };
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
  };

  const std::vector<NamedCounter*>& counters() const;
  const std::vector<NamedGauge*>& gauges() const;
  const std::vector<NamedHistogram*>& histograms() const;
  void reset();

#ifdef PROTEA_TELEMETRY

 private:
  // unique_ptr-free stable storage: pointers into deques never move.
  std::vector<NamedCounter*> counter_ptrs_;
  std::vector<NamedGauge*> gauge_ptrs_;
  std::vector<NamedHistogram*> histogram_ptrs_;
  std::vector<std::unique_ptr<NamedCounter>> counter_store_;
  std::vector<std::unique_ptr<NamedGauge>> gauge_store_;
  std::vector<std::unique_ptr<NamedHistogram>> histogram_store_;
#else

 private:
  // Compiled out: find_* still needs something to return by reference
  // for the accessor vectors.
  std::vector<NamedCounter*> counter_ptrs_;
  std::vector<NamedGauge*> gauge_ptrs_;
  std::vector<NamedHistogram*> histogram_ptrs_;
#endif
};

// --- the bundle --------------------------------------------------------------

struct TelemetryOptions {
  size_t trace_capacity = 1 << 16;  // ring slots (events)
};

/// One object the engines take a pointer to (TrafficOptions::telemetry,
/// GenerationSchedulerOptions::telemetry). configure() preallocates the
/// ring and pre-registers the standard serving instruments; a
/// default-constructed (unconfigured) Telemetry is inert and safe to
/// pass around. Throws std::logic_error when PROTEA_TELEMETRY is off.
class Telemetry {
 public:
  void configure(const TelemetryOptions& opts = {});
  bool enabled() const;

  TraceRecorder trace;
  MetricsRegistry metrics;

  // Standard instruments, non-null after configure() (virtual-time
  // histograms are deterministic; *_ms/_us ones are wall annotations).
  Histogram* ttft_rounds = nullptr;
  Histogram* queue_wait_rounds = nullptr;
  Histogram* token_gap_rounds = nullptr;  // per-token latency, rounds
  Histogram* preempt_downtime_rounds = nullptr;
  Histogram* pool_occupancy_blocks = nullptr;
  Histogram* ttft_us = nullptr;  // wall-clock annotation

 private:
  bool configured_ = false;
};

// --- exporters ---------------------------------------------------------------

/// Serializes events as Chrome trace-event JSON ({"traceEvents": [...]}):
/// per-sequence async spans (ph "b"/"e", id = seq) from kAdmit to
/// kComplete/kShed, instant events ("i") for everything else on the
/// owning sequence's track, a "C" counter track for pool occupancy, and
/// thread-name metadata. ts is wall_ns / 1000 (microseconds). Load the
/// file in chrome://tracing or https://ui.perfetto.dev.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);
/// chrome_trace_json straight to a file; throws std::runtime_error when
/// the file cannot be written.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Flattened metric sample in the BENCH_*.json record vocabulary.
struct MetricSample {
  std::string name;    // instrument name, e.g. "ttft_rounds"
  std::string metric;  // "p50" / "p95" / "p99" / "mean" / "count" / ...
  double value = 0.0;
  std::string unit;    // "rounds", "blocks", "us", "count"
};

/// Every registered histogram -> {p50, p95, p99, mean, count} samples
/// (unit inferred from the instrument-name suffix), every counter ->
/// one "count" sample, every gauge -> "value"/"max" samples. Empty when
/// telemetry is unconfigured or compiled out.
std::vector<MetricSample> metric_samples(const Telemetry& telemetry);

}  // namespace protea::runtime
