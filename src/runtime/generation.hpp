// KV-cached incremental decoding + continuous-batching generation engine.
//
// The full-recompute decoder path reruns the whole target prefix on every
// autoregressive step, so emitting T tokens costs O(T^2) total GEMM work.
// This layer makes decoding incremental:
//
//   * GenerationSession — per-stream decoder context: a private
//     WorkspaceArena + KvCache. prefill() projects the encoder memory
//     into every layer's cross K/V cache once and runs the prompt prefix
//     through the stack (appending self K/V) — optionally in bounded
//     chunks (prefill_begin()/prefill_rows()), which is bit-identical to
//     the one-shot pass because every op is row-wise; decode_step() then
//     runs ONE new row per call, attending over the cached prefix —
//     O(len) attention work and zero heap allocations in steady state
//     (the constructor warms the arena at the worst-case step shape,
//     pinned by an allocation-counting test). Self K/V defaults to the
//     paged layout (runtime/kv_cache.hpp): blocks are reserved on demand
//     from a private or shared KvBlockPool, so short sequences no longer
//     strand a full-capacity reservation. The cached path — dense or
//     paged, chunked or one-shot — is bit-identical to the
//     full-recompute forward: int32 accumulation is exact and every op
//     is row-wise.
//
//   * GenerationScheduler — step-level continuous batching. Sequences are
//     admitted into a fixed number of slots and retired the step they
//     finish, so a short sequence frees its slot for the next pending
//     request while long ones keep decoding — no batch barrier. threads=1
//     runs the deterministic round-robin step loop (admit -> step every
//     active sequence -> retire); threads>1 runs slots on worker threads
//     whose per-layer stages interleave through the MHA/FFN module-slot
//     semaphores (runtime/module_gate.hpp). With a shared KvBlockPool
//     (kv_pool_blocks > 0) the scheduler reserves a sequence's worst-case
//     blocks at admission — all or nothing — so a request that cannot
//     get its blocks WAITS (deterministic FCFS deferral in stepped mode,
//     a condition-variable park in threaded mode) instead of corrupting
//     a neighbor's rows; retirement releases the blocks and wakes the
//     queue. Reserve-at-admission means no sequence ever stalls
//     mid-decode holding blocks others need, so exhaustion can delay but
//     never deadlock a run. Chunked prefill (prefill_chunk > 0) splits
//     prompt processing into chunk-sized stack passes so one long prompt
//     cannot stall the step loop; outputs are bit-identical for every
//     chunk size, slot, thread or module-slot count.
//
// Token policy (greedy argmax, sampling, beam bookkeeping) stays with the
// caller: requests carry a next_token callback mapping the newest output
// state to the next input embedding, so the engine is vocabulary-free.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "accel/engines.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/layer_ops.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

class PrefixCache;
class Telemetry;  // runtime/telemetry.hpp

struct GenerationOptions {
  /// Self-K/V tokens per block. 0 selects the dense (PR-3) layout.
  size_t kv_block_rows = 16;
  /// Shared block pool (paged only); nullptr gives the session a private
  /// pool sized at one full-capacity sequence. A shared pool must
  /// outlive the session.
  KvBlockPool* kv_pool = nullptr;
  /// prefill() runs the prompt in passes of at most this many rows
  /// (0 = one pass). Outputs are bit-identical for any chunk size.
  size_t prefill_chunk = 0;
  /// Paged caches only: route cached self-attention through the legacy
  /// gather path (copy the prefix into contiguous workspace views) instead
  /// of the block-strided span engines. Bit-identical to the default;
  /// kept as the measured-against reference and surfaces its copy volume
  /// via EngineStats::gathered_bytes.
  bool kv_gather_fallback = false;
  /// Self-K/V storage format (numeric/fp8.hpp): int8 verbatim (the
  /// bit-exact reference), fp8 re-encoded per element with dequant fused
  /// into the span pack stage, or packed fp4 at half the block bytes
  /// (gather reads; head_dim must be even). Deterministic for any
  /// format — decode output depends only on the storage choice, not on
  /// paging/fork/swap/adoption history. A shared kv_pool must be
  /// configured for the matching row width (see
  /// accel::estimate_kv_footprint's storage parameter).
  numeric::KvStorage kv_storage = numeric::KvStorage::kInt8;
};

class GenerationSession {
 public:
  /// Binds to caller-owned config + model (both must outlive the
  /// session). Sizes the KV cache at the synthesized maxima and warms the
  /// workspace arena with one worst-case decode step, so every real
  /// decode_step() — at any cached length — runs without heap
  /// allocations. `stats` optionally redirects MAC accounting (and KV
  /// pool occupancy) to an external counter (the accel wrapper's).
  GenerationSession(const accel::AccelConfig& config,
                    const accel::QuantizedDecoder& model,
                    accel::EngineStats* stats = nullptr,
                    const GenerationOptions& options = {});

  /// Begins a sequence: projects the quantized encoder memory into every
  /// layer's cross K/V cache (the one-time cost the full-recompute path
  /// pays per step) and runs the whole prefix through the stack with self
  /// K/V appended — in options.prefill_chunk-row passes when set.
  /// `states` receives the (prefix.rows() x d) dequantized outputs;
  /// bit-identical to forward(prefix, memory) for any chunk size.
  void prefill(const tensor::MatrixF& prefix, const tensor::MatrixF& memory,
               tensor::MatrixF& states, StageGate* gate = nullptr);

  /// Chunked-prefill split of prefill(), for schedulers that interleave
  /// prompt chunks of different sequences: prefill_begin() starts the
  /// sequence and fills the cross K/V caches; each prefill_rows() call
  /// appends the next consecutive prompt rows and emits their states.
  void prefill_begin(const tensor::MatrixF& memory,
                     StageGate* gate = nullptr);
  void prefill_rows(const tensor::MatrixF& rows, tensor::MatrixF& states,
                    StageGate* gate = nullptr);

  /// Cache-assisted prefill_begin() (runtime/prefix_cache.hpp): begins
  /// the sequence, reuses the memory's cached cross projections when
  /// present (projecting AND publishing them on a miss), and adopts the
  /// longest cached prefix of `prefix` by refcount — its stored prefill
  /// outputs land in rows [0, returned) of `states` (resized to
  /// prefix.rows() x d when smaller). Returns the prompt rows already
  /// covered; the caller prefill_rows()'s only the tail. Hit/miss/bytes
  /// counters are mirrored into EngineStats. Decode after adoption is
  /// bit-identical to a cold prefill of the same prompt.
  size_t prefill_begin_cached(PrefixCache& cache,
                              const tensor::MatrixF& prefix,
                              const tensor::MatrixF& memory,
                              tensor::MatrixF& states,
                              StageGate* gate = nullptr,
                              bool* cross_hit = nullptr);

  /// Cross-only cache-assisted begin, for swap-in restores (self rows
  /// come back via try_swap_in, so no prefix adoption): cached cross
  /// projections are copied in on a hit, recomputed and published on a
  /// miss. Returns true on a hit.
  bool prefill_begin_cross(PrefixCache& cache, const tensor::MatrixF& memory,
                           StageGate* gate = nullptr);

  /// Publishes this sequence's completed prompt into `cache`: the
  /// leading full blocks of the table by refcount plus the prefill
  /// output `states` rows. Arms the COW guard on this session's table.
  /// Call once the whole prompt is prefilled (position() >= prefix rows).
  void publish_prefix(PrefixCache& cache, const tensor::MatrixF& prefix,
                      const tensor::MatrixF& memory,
                      const tensor::MatrixF& states);

  /// One incremental step: appends `token` (1 x d) at the current
  /// position and attends over the cached prefix. `state` receives the
  /// (1 x d) output — bit-identical to the last row of a full-recompute
  /// forward over the same prefix. Zero heap allocations when `state` is
  /// already (1 x d).
  void decode_step(const tensor::MatrixF& token, tensor::MatrixF& state,
                   StageGate* gate = nullptr);

  /// Paged-cache admission control (no-ops returning success in dense
  /// mode). try_reserve_rows() grows the sequence's block table to cover
  /// `rows` total rows, all or nothing; reserve_rows_wait() parks until
  /// the shared pool can satisfy it; end_sequence() releases every held
  /// block so waiting admissions can proceed.
  bool try_reserve_rows(size_t rows);
  void reserve_rows_wait(size_t rows);
  void end_sequence();

  /// Copy-on-write fork (runtime/kv_cache.hpp): adopts `parent`'s whole
  /// decoding state — cached length, cross projections and the self-K/V
  /// block table by refcount — without moving K/V bytes; the first
  /// divergent decode_step into a shared block copies just that block.
  /// Both sessions must be built on the same model and ONE shared paged
  /// pool. `eager_copy` materializes private block copies at fork time
  /// (the bit-exact reference mode). Any sequence this session was
  /// running is ended first.
  void fork_from(GenerationSession& parent, bool eager_copy = false);

  /// Binds block growth and COW copies to a fork group's admission
  /// credit (reserved worst-case headroom — see KvPoolCredit); nullptr
  /// unbinds. The session must not hold blocks.
  void bind_kv_credit(KvPoolCredit* credit);

  /// Victim preemption, swap-out flavor (paged mode): spills the held
  /// blocks' contents into `dst` and releases them (returns the cached
  /// row count); try_swap_in() restores them all-or-nothing after a
  /// fresh prefill_begin() has recomputed the cross projections —
  /// bit-identical to never having been preempted (the cross K/V is a
  /// pure function of the memory; self rows come back byte-for-byte).
  size_t swap_bytes() const { return kv_.swap_bytes(); }
  size_t swap_out(std::vector<int8_t>& dst);
  bool try_swap_in(std::span<const int8_t> src, size_t rows);

  /// Target rows cached so far (the next step decodes this position).
  size_t position() const { return kv_.len(); }
  /// Maximum target rows (the model's programmed seq_len).
  size_t capacity() const { return kv_.capacity(); }

  const accel::QuantizedDecoder& model() const { return *model_; }
  const accel::EngineStats& stats() const { return *stats_; }
  const KvCache& cache() const { return kv_; }
  const WorkspaceArena& workspace() const { return ws_; }
  const GenerationOptions& options() const { return options_; }

 private:
  /// Projects the quantized encoder memory into every layer's cross K/V
  /// cache (the body of prefill_begin(), shared with the cache-miss path
  /// of the cache-assisted begins).
  void fill_cross(const tensor::MatrixF& memory, StageGate* gate);

  /// Shared stack walker: quantizes `rows` at the first layer's input
  /// scale, runs them through every decoder layer with K/V appended at
  /// the current position, advances the cache and dequantizes into
  /// `states`. Reserves paged blocks on demand (KvBlockExhausted when
  /// the pool cannot cover the new rows).
  void run_rows(const tensor::MatrixF& rows, tensor::MatrixF& states,
                StageGate* gate, accel::EngineStats* stats);

  /// Sizes the arena at the worst-case decode step (full cache, longest
  /// memory) so later steps never grow it.
  void warm();

  /// Mirrors pool occupancy into the stats sink after reserve/release.
  void refresh_kv_stats();

  const accel::AccelConfig* config_;
  const accel::QuantizedDecoder* model_;
  GenerationOptions options_;
  KvCache kv_;
  WorkspaceArena ws_;
  accel::EngineStats own_stats_;
  accel::EngineStats* stats_;
};

/// RAII companion to GenerationSession::end_sequence(): releases the
/// session's blocks on scope exit unless commit()ed, so a throw
/// mid-prefill or mid-step (block exhaustion, a failpoint, a bad
/// callback) can never strand pool blocks other sequences wait on.
class SequenceScope {
 public:
  SequenceScope() = default;
  explicit SequenceScope(GenerationSession* session) : session_(session) {}
  ~SequenceScope() {
    if (session_ != nullptr) session_->end_sequence();
  }
  SequenceScope(SequenceScope&& other) noexcept : session_(other.session_) {
    other.session_ = nullptr;
  }
  SequenceScope& operator=(SequenceScope&& other) noexcept {
    if (this != &other) {
      if (session_ != nullptr) session_->end_sequence();
      session_ = other.session_;
      other.session_ = nullptr;
    }
    return *this;
  }
  SequenceScope(const SequenceScope&) = delete;
  SequenceScope& operator=(const SequenceScope&) = delete;

  /// Keeps the sequence alive (ownership passed elsewhere).
  void commit() { session_ = nullptr; }

 private:
  GenerationSession* session_ = nullptr;
};

/// One generation request. `memory` is the caller-owned encoder output;
/// `prefix` the prompt embeddings (>= 1 row, BOS included). After the
/// prefill and after every decode step, `next_token` maps the newest
/// output state to the next input embedding (written into `next`,
/// 1 x d_model) — return false to finish early (EOS). Must be
/// thread-safe when the scheduler runs threaded.
struct GenerationRequest {
  tensor::MatrixF prefix;
  const tensor::MatrixF* memory = nullptr;
  uint32_t max_new_tokens = 0;
  std::function<bool(std::span<const float> state, tensor::MatrixF& next)>
      next_token;
};

struct GenerationResult {
  /// (prefix rows + steps) x d output states, in position order.
  tensor::MatrixF states;
  uint32_t steps = 0;        // decode steps executed
  uint32_t admitted_at = 0;  // scheduler step of admission (stepped mode)
  uint32_t retired_at = 0;   // scheduler step of retirement (stepped mode)
};

struct GenerationSchedulerOptions {
  size_t slots = 4;        // concurrent sequences (live sessions)
  size_t threads = 1;      // 1 = deterministic round-robin step loop
  uint32_t mha_slots = 0;  // module semaphore widths (0 -> worker count)
  uint32_t ffn_slots = 0;
  /// Prompt rows per prefill pass (0 = whole prompt at admission). In
  /// stepped mode a long prompt then advances one chunk per scheduler
  /// step instead of stalling the loop.
  size_t prefill_chunk = 0;
  /// Self-K/V tokens per block (0 = dense per-slot caches, PR-3 layout).
  size_t kv_block_rows = 16;
  /// > 0: ONE shared KvBlockPool of this many blocks serves every slot,
  /// with worst-case blocks reserved at admission (block-exhaustion
  /// backpressure). 0: each slot gets a private full-capacity pool.
  size_t kv_pool_blocks = 0;
  /// Cross-request prefix cache (runtime/prefix_cache.hpp) over the
  /// shared pool: completed prompts are published block-by-block and
  /// later requests adopt matching prefixes by refcount, prefilling only
  /// the uncovered tail; repeated memories skip the cross-K/V projection.
  /// Under pool pressure admissions reclaim cold cache blocks before
  /// waiting. Requires kv_pool_blocks > 0. Outputs stay bit-identical;
  /// in threaded mode the hit/miss SPLIT may vary with interleaving.
  bool prefix_cache = false;
  /// Self-K/V storage format for every slot (and the shared pool's row
  /// width) — see GenerationOptions::kv_storage. With kv_pool_blocks
  /// fixed, fp4 halves each sequence's block bytes, which is what lets
  /// one pool budget serve ~2x the concurrent sequences.
  numeric::KvStorage kv_storage = numeric::KvStorage::kInt8;
  /// Runtime telemetry sink (runtime/telemetry.hpp): when non-null AND
  /// configured, the scheduler records the request lifecycle — admit,
  /// prefill chunks, decode steps, complete — plus pool occupancy, and
  /// observes queue-wait and time-to-first-token histograms. Stepped
  /// mode stamps every event with the scheduler step (deterministic);
  /// threaded mode has no global step clock, so its events keep round 0
  /// and their ORDER follows wall time. An unconfigured Telemetry is
  /// inert; must outlive the run. Never perturbs outputs or schedule.
  Telemetry* telemetry = nullptr;
};

struct GenerationRunStats {
  uint64_t prefills = 0;
  uint64_t prefill_chunks = 0;   // prefill stack passes (>= prefills)
  uint64_t decode_steps = 0;     // across all sequences
  uint64_t scheduler_steps = 0;  // step-loop iterations (stepped mode)
  uint32_t max_active = 0;       // peak concurrently-active sequences
  /// Admissions deferred because the shared pool was short (stepped) or
  /// parked waiting for blocks (threaded). 0 without a shared pool.
  uint64_t kv_block_waits = 0;
  /// Peak concurrently-held blocks of the shared pool (0 without one).
  uint64_t kv_blocks_peak = 0;
  /// Prefix-cache counters (all 0 when opts.prefix_cache is off),
  /// snapshotted from the cache at the end of the run.
  uint64_t prefix_hits = 0;
  uint64_t prefix_misses = 0;
  uint64_t prefix_rows_adopted = 0;
  uint64_t prefix_bytes_saved = 0;
  uint64_t cross_kv_hits = 0;
  uint64_t cross_kv_misses = 0;
  uint64_t prefix_evictions = 0;
  double wall_ms = 0.0;
};

class GenerationScheduler {
 public:
  /// Takes ownership of the model (shared read-only by all slots).
  GenerationScheduler(accel::AccelConfig config,
                      accel::QuantizedDecoder model);

  /// Runs every request to completion with continuous batching across
  /// `opts.slots` sessions. Outputs are bit-identical for any slot,
  /// thread, module-slot, KV-layout or prefill-chunk choice (the int8
  /// datapath is exact and per-sequence work is scheduling-invariant).
  std::vector<GenerationResult> run(
      const std::vector<GenerationRequest>& requests,
      const GenerationSchedulerOptions& opts = {});

  const GenerationRunStats& last_run() const { return last_run_; }
  const accel::QuantizedDecoder& model() const { return model_; }
  const accel::AccelConfig& config() const { return config_; }

 private:
  accel::AccelConfig config_;
  accel::QuantizedDecoder model_;
  GenerationRunStats last_run_;
};

}  // namespace protea::runtime
