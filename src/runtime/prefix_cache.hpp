// Cross-request prefix cache: radix block-table sharing + keyed cross-K/V
// memory cache.
//
// Production decode traffic is dominated by shared prefixes — one system
// prompt, one document, many questions — yet each request normally pays a
// full prefill and its own KV blocks even when an identical prefix is
// already resident in the pool. This layer closes that gap with the
// machinery PRs 4-7 already built:
//
//   * a RADIX index over refcounted block tables. Completed prompts are
//     published block by block: each node keys one pool block by the
//     exact prompt-embedding bytes of the `block_rows` rows it covers
//     (hash-guided, always byte-verified — collisions cannot mis-adopt),
//     chained under its predecessor, all rooted at the request's encoder
//     memory (cross-attention makes cached K/V a function of BOTH the
//     memory and the prompt, so prefixes only match within one memory).
//     A new sequence adopts the longest cached chain by refcount bumps
//     (KvBlockPool::fork_ref — zero K/V bytes move) via
//     KvCache::adopt_prefix, takes the stored prefill output states for
//     those rows, and chunk-prefills only the uncovered tail. Adoption is
//     whole blocks only and always leaves >= 1 tail row, so the first
//     write after adoption lands on a block boundary — divergence never
//     even needs the COW copy, though the write guard stays armed.
//
//   * a keyed cache of CROSS-K/V memory projections. fill_cross_kv_cache
//     is a pure function of the encoder memory, so a repeated memory
//     skips the projection pass entirely: the stored int8 rows are copied
//     straight into the session's cross views (bit-identical by
//     construction).
//
// Eviction is LRU over entries only the cache itself still references
// (pool refcount 1): KvBlockPool::set_reclaim_hook points at reclaim(),
// so under pool pressure an admission reclaims cold cache blocks BEFORE
// shedding or preempting live work, and a block referenced by any live
// table (refcount >= 2) is never victimized — freeing the cache's own
// reference is the only thing reclaim ever does. Leaves go first
// (an interior node's children are unreachable without it); a freed
// leaf exposes its parent to the next round.
//
// Thread safety: one mutex guards the whole index. Lock order is
// cache -> pool everywhere (the pool's reclaim hook runs with the pool
// mutex released), so scheduler workers and the pool's backpressure
// paths cannot deadlock. All bits handed out are verified copies or
// refcounted blocks, never views into evictable storage.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/kv_cache.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

struct PrefixCacheStats {
  uint64_t prefix_hits = 0;      // admissions that adopted >= 1 block
  uint64_t prefix_misses = 0;    // admissions with no usable cached prefix
  uint64_t rows_adopted = 0;     // prompt rows skipped via adoption
  uint64_t bytes_adopted = 0;    // self-K/V bytes those rows represent
  uint64_t cross_hits = 0;       // memories whose projections were reused
  uint64_t cross_misses = 0;
  uint64_t cross_bytes_reused = 0;  // cross-K/V bytes copied instead of projected
  uint64_t inserts = 0;          // radix nodes created (one block each)
  uint64_t evictions = 0;        // nodes freed (pool pressure or caps)
  uint64_t blocks_held = 0;      // pool blocks the cache references right now
  uint64_t blocks_peak = 0;      // high-water mark of blocks_held
};

/// See the file comment. One instance serves one shared KvBlockPool; the
/// cache must be clear()ed (or destroyed) before the pool, and the pool's
/// reclaim hook must be unbound first when it points here.
class PrefixCache {
 public:
  struct Options {
    /// Distinct memory entries kept (LRU-evicted past this when cold;
    /// a new entry whose LRU victims are all live simply exceeds the cap).
    size_t max_memories = 32;
    /// Self-K/V storage format every published/adopting cache must use.
    /// A published block's bytes only mean what its codec says they
    /// mean: two caches can share a pool row width yet store different
    /// codes (int8 rows and fp8 codes are both 1 byte/element), so
    /// adoption across formats would silently decode garbage. The cache
    /// is keyed to ONE format at configure and refuses publish/adopt
    /// from any cache whose storage() differs (std::logic_error).
    numeric::KvStorage storage = numeric::KvStorage::kInt8;
  };

  PrefixCache() = default;
  ~PrefixCache() { clear(); }
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Binds the pool whose blocks published tables live in. `block_rows`
  /// must match the pool's, `d_model` the prompt-embedding width.
  void configure(KvBlockPool& pool, size_t block_rows, size_t d_model,
                 const Options& opts);
  void configure(KvBlockPool& pool, size_t block_rows, size_t d_model) {
    configure(pool, block_rows, d_model, Options());
  }
  bool configured() const { return pool_ != nullptr; }

  /// Admission-time probe + adopt under ONE lock acquisition. `kv` must
  /// have begun its sequence (begin_sequence(memory.rows())) and hold no
  /// cached rows. On a memory hit the stored cross projections are
  /// copied into `kv`'s cross views (`*cross_hit` = true); the longest
  /// fully-cached prefix of `prompt` — whole blocks, capped at
  /// prompt.rows() - 1 so at least one tail row always prefills — is
  /// installed into `kv` by refcount adoption, and its prefill output
  /// states are copied into rows [0, returned) of `states` (resized to
  /// prompt.rows() x d_model when smaller). Returns the adopted row
  /// count; 0 with *cross_hit false is a fully cold admission.
  size_t adopt(const tensor::MatrixF& memory, const tensor::MatrixF& prompt,
               KvCache& kv, tensor::MatrixF& states, bool* cross_hit);

  /// Cross-only probe (swap-in restores bring their self rows back
  /// themselves): copies cached cross projections into `kv`'s views.
  /// Returns false — counting a miss — when the memory is unknown.
  bool cross_into(const tensor::MatrixF& memory, KvCache& kv);

  /// Records the cross projections `kv` holds for `memory` (call after a
  /// cross miss was filled by fill_cross_kv_cache). Creates the memory
  /// entry the radix chains root at; no-op when already present.
  void publish_cross(const tensor::MatrixF& memory, const KvCache& kv);

  /// Publishes a completed prompt: fork_refs the floor(prompt rows /
  /// block_rows) leading FULL blocks of `kv`'s table into radix nodes
  /// (reusing any already-cached chain prefix) together with their
  /// prompt bytes and prefill output `states` rows, and arms `kv`'s COW
  /// guard (mark_table_shared). The sequence must still hold the prompt
  /// rows (kv.len() >= prompt.rows()) and be uncredited. Creates the
  /// memory entry (from `kv`'s cross views) when absent.
  void publish(const tensor::MatrixF& memory, const tensor::MatrixF& prompt,
               const tensor::MatrixF& states, KvCache& kv);

  /// Pool-pressure reclaim (the KvBlockPool::set_reclaim_hook target):
  /// frees up to `blocks_wanted` cache-only blocks — LRU leaves first,
  /// pool refcount 1 only, so a block any live table still references is
  /// never touched. Returns the number of blocks actually freed.
  size_t reclaim(size_t blocks_wanted);

  /// Blocks reclaim() could free right now (refcount-1 reachable leaves,
  /// transitively). Supports conservative admission probes.
  size_t reclaimable_blocks() const;

  /// Drops every cached block reference and entry (teardown; also the
  /// destructor). Live tables keep their own references untouched.
  void clear();

  PrefixCacheStats stats() const;
  size_t block_rows() const { return block_rows_; }
  KvBlockPool* pool() { return pool_; }

  /// Telemetry hook (runtime/telemetry.hpp): when bound, the cache emits
  /// kPrefixAdopt on every adoption hit, kPrefixPublish on every publish
  /// that inserted new nodes and kPrefixEvict whenever nodes are freed
  /// (LRU cap or pool-pressure reclaim). Same contract as
  /// KvBlockPool::set_trace: armed by the engines after warm-up,
  /// disarmed before the run returns, recorder outlives the binding.
  void set_trace(TraceRecorder* trace);

 private:
  /// One cached block: `rows_bytes` are the exact prompt-embedding rows
  /// it covers (verification key), `states` their prefill outputs.
  struct Node {
    uint64_t hash = 0;           // FNV-1a of the covered prompt rows
    uint32_t block = KvBlockPool::kNoBlock;  // one pool reference held
    tensor::MatrixF rows;        // (block_rows x d) prompt embeddings
    tensor::MatrixF states;      // (block_rows x d) prefill outputs
    uint64_t last_used = 0;
    std::vector<std::unique_ptr<Node>> children;
  };

  /// One encoder memory: the radix root plus the cross projections.
  struct MemoryEntry {
    uint64_t hash = 0;
    tensor::MatrixF memory;        // exact key (always byte-verified)
    size_t layers = 0, heads = 0, head_dim = 0;
    std::vector<int8_t> cross;     // [layer][head][K rows | V rows] int8
    uint64_t last_used = 0;
    std::vector<std::unique_ptr<Node>> children;  // radix roots
  };

  MemoryEntry* find_entry_locked(const tensor::MatrixF& memory);
  MemoryEntry& ensure_entry_locked(const tensor::MatrixF& memory,
                                   const KvCache& kv);
  bool copy_cross_locked(const MemoryEntry& e, KvCache& kv) const;
  size_t count_blocks_locked() const;
  void note_blocks_locked();
  /// Frees one LRU refcount-1 leaf (cascading exposure of its parent to
  /// later calls); returns false when nothing is reclaimable.
  bool evict_one_leaf_locked();

  /// Throws std::logic_error unless `kv`'s storage matches opts_.storage
  /// (see Options::storage — the mixed-format adoption guard).
  void check_storage(const KvCache& kv, const char* what) const;

  KvBlockPool* pool_ = nullptr;
  size_t block_rows_ = 0;
  size_t d_model_ = 0;
  Options opts_;
  uint64_t tick_ = 0;  // deterministic LRU clock (one tick per operation)
  std::vector<std::unique_ptr<MemoryEntry>> entries_;
  PrefixCacheStats stats_;
  TraceRecorder* trace_ = nullptr;  // telemetry sink, see set_trace()
  mutable std::mutex mutex_;
};

}  // namespace protea::runtime
