// Unified per-layer execution for the serving runtime.
//
// The encoder forward, the decoder forward and the accel module wrappers
// used to carry three hand-rolled copies of the same engine call
// sequences. This layer collapses them into three block primitives that
// mirror the paper's module split (Fig. 3/4):
//
//   * attention block — h head pipelines (QKV_CE or projection engines ->
//     QK_CE -> softmax -> SV_CE) concatenated into (SL x d_model). One
//     descriptor covers encoder self-attention, decoder masked
//     self-attention (causal softmax) and decoder cross-attention (K/V
//     projected from the encoder memory).
//   * projection + LN block — FFN1_CE (attention output projection)
//     fused with the residual LayerNorm.
//   * FFN block — FFN2_CE (expansion + activation) -> FFN3_CE
//     (contraction) -> residual LayerNorm.
//
// Encoder layer = attention + projection-LN + FFN. Decoder layer =
// attention(causal) + projection-LN + attention(cross) + projection-LN +
// FFN — the same primitives, sequenced differently.
//
// Everything here is allocation-free: inputs/outputs are preallocated
// views and temporaries come from the context's WorkspaceArena under
// mark/rewind. Trace capture (deep copies) is the one exception and only
// runs when a trace sink is passed.
#pragma once

#include <span>
#include <vector>

#include "accel/decoder_model.hpp"
#include "accel/engines.hpp"
#include "accel/quantized_model.hpp"
#include "ref/model_config.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/workspace_arena.hpp"
#include "tensor/matrix.hpp"

namespace protea::runtime {

/// The paper's two physical engine groups (Fig. 3/4). A layer occupies
/// the MHA module, then the FFN module; schedulers overlap stages of
/// different sequences across the two.
enum class Stage { kMha, kFfn };

/// Scheduler hook bracketing each stage of the unified forward loop.
/// Virtual dispatch (not std::function) so the hot path stays
/// allocation-free.
class StageGate {
 public:
  virtual ~StageGate() = default;
  virtual void enter(Stage stage) = 0;
  virtual void exit(Stage stage) = 0;
};

/// RAII stage bracket: releases the module slot even when the stage
/// throws (a leaked slot would deadlock every other scheduler worker).
class StageScope {
 public:
  StageScope(StageGate* gate, Stage stage) : gate_(gate), stage_(stage) {
    if (gate_ != nullptr) gate_->enter(stage_);
  }
  ~StageScope() {
    if (gate_ != nullptr) gate_->exit(stage_);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageGate* gate_;
  Stage stage_;
};

/// Per-head intermediates captured when a trace sink is provided
/// (aliased as AttentionModule::HeadTrace for the module wrapper API).
struct HeadTrace {
  tensor::MatrixI8 q, k, v;
  tensor::MatrixI8 logits;
  tensor::MatrixI8 attn_weights;
  tensor::MatrixI8 scores;
};

/// FFN-module intermediates (aliased as FfnModule::Trace).
struct FfnTrace {
  tensor::MatrixI8 proj;      // FFN1 output (scale proj)
  tensor::MatrixI8 ln1;       // post-attention LN (scale ln1)
  tensor::MatrixI8 hidden;    // FFN2 + activation (scale hidden)
  tensor::MatrixI8 ffn_out;   // FFN3 output (scale ffn_out)
};

/// Full per-layer trace of the quantized encoder datapath (testing hook;
/// aliased as accel::AccelLayerTrace).
struct EncoderLayerTrace {
  std::vector<HeadTrace> heads;
  tensor::MatrixI8 concat;
  FfnTrace ffn;
  tensor::MatrixI8 out;
};

/// Execution context threaded through every block: the workspace, the
/// synthesized tile sizes, the programmed activation and the MAC counter.
struct LayerOpContext {
  WorkspaceArena& ws;
  uint32_t ts_mha = 0;
  uint32_t ts_ffn = 0;
  ref::Activation activation = ref::Activation::kRelu;
  accel::EngineStats* stats = nullptr;
  util::ThreadPool* gemm_pool = nullptr;  // optional intra-op threading
  /// Paged self-attention streams the cached prefix through block-table
  /// spans (gather-free, the default). true restores the
  /// gather-into-scratch reference path — bit-identical, O(prefix bytes)
  /// of extra memcpy per head per layer per step, counted in
  /// EngineStats::gathered_bytes (the decode-latency bench runs both
  /// modes in one process for the before/after record).
  bool kv_gather_fallback = false;
};

/// One descriptor for all three attention shapes. Exactly one of
/// `self_heads` (fused-QKV path) or `cross_heads` (per-stream projection
/// path, K/V from `memory`) must be non-empty.
struct AttentionBlockDesc {
  std::span<const accel::QHeadWeights> self_heads;
  std::span<const accel::QCrossHeadWeights> cross_heads;
  const numeric::RequantParams* rq_q = nullptr;
  const numeric::RequantParams* rq_k = nullptr;
  const numeric::RequantParams* rq_v = nullptr;
  const numeric::RequantParams* rq_logit = nullptr;
  const numeric::RequantParams* rq_sv = nullptr;
  double logit_scale = 1.0;
  bool causal = false;
};

/// Runs all heads over int8 input `x` (queries) and `memory` (keys and
/// values; pass `x` again for self-attention) into the preallocated
/// (x.rows x d_model) `concat`.
void run_attention_block(const LayerOpContext& ctx,
                         const AttentionBlockDesc& desc,
                         tensor::ConstMatrixViewI8 x,
                         tensor::ConstMatrixViewI8 memory,
                         tensor::MatrixViewI8 concat,
                         std::vector<HeadTrace>* traces = nullptr);

/// FFN1/projection + residual LayerNorm:
/// out = LN(requant(concat x w + bias) @ s_proj + residual @ s_res) @ s_out.
struct ProjectionLnDesc {
  tensor::ConstMatrixViewI8 w;  // (d_model x d_model), [in][out]
  std::span<const int32_t> bias;
  const numeric::RequantParams* rq = nullptr;
  std::span<const float> gamma, beta;
  double s_proj = 1.0, s_res = 1.0, s_out = 1.0;
  float ln_eps = 1e-5f;
};

void run_projection_ln_block(const LayerOpContext& ctx,
                             const ProjectionLnDesc& desc,
                             tensor::ConstMatrixViewI8 concat,
                             tensor::ConstMatrixViewI8 residual,
                             tensor::MatrixViewI8 out,
                             tensor::MatrixI8* proj_trace = nullptr);

/// FFN2 (expansion + activation) -> FFN3 (contraction) -> residual LN;
/// the residual operand is the block input `x` at scale s_in.
struct FfnBlockDesc {
  tensor::ConstMatrixViewI8 w1;  // (d_model x ffn_hidden)
  std::span<const int32_t> b1;
  const numeric::RequantParams* rq_hidden = nullptr;
  double s_hidden = 1.0;
  tensor::ConstMatrixViewI8 w2;  // (ffn_hidden x d_model)
  std::span<const int32_t> b2;
  const numeric::RequantParams* rq_ffn_out = nullptr;
  double s_ffn_out = 1.0;
  std::span<const float> gamma, beta;
  double s_in = 1.0, s_out = 1.0;
  float ln_eps = 1e-5f;
};

void run_ffn_block(const LayerOpContext& ctx, const FfnBlockDesc& desc,
                   tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                   tensor::MatrixI8* hidden_trace = nullptr,
                   tensor::MatrixI8* ffn_out_trace = nullptr);

// --- layer stages -----------------------------------------------------------
// The encoder layer split at the paper's physical module boundary: the
// MHA module emits the concatenated attention output; the FFN module runs
// projection + LN + FFN + LN. The batch scheduler pipelines the two
// stages across sequences; run_encoder_layer chains them back-to-back
// for the latency (batch = 1) path.

void run_encoder_mha_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 concat,
                           std::vector<HeadTrace>* traces = nullptr);

void run_encoder_ffn_stage(const LayerOpContext& ctx,
                           const accel::QLayer& layer,
                           tensor::ConstMatrixViewI8 concat,
                           tensor::ConstMatrixViewI8 x,
                           tensor::MatrixViewI8 out,
                           FfnTrace* trace = nullptr);

void run_encoder_layer(const LayerOpContext& ctx, const accel::QLayer& layer,
                       tensor::ConstMatrixViewI8 x, tensor::MatrixViewI8 out,
                       std::vector<HeadTrace>* head_traces = nullptr,
                       FfnTrace* ffn_trace = nullptr);

/// One decoder layer: masked self-attention, cross-attention over the
/// encoder `memory`, FFN — each with its projection + residual LN.
void run_decoder_layer(const LayerOpContext& ctx,
                       const accel::QDecoderLayer& layer,
                       tensor::ConstMatrixViewI8 x,
                       tensor::ConstMatrixViewI8 memory,
                       tensor::MatrixViewI8 out);

/// Descriptor builders wiring a decoder layer's weights and requant
/// constants into the attention block shapes. One source of truth shared
/// by the full-recompute and KV-cached paths (and the prefill's cross
/// K/V fill), so the scale/requant plumbing cannot drift between them —
/// drift would silently break the paths' bit-identity guarantee.
AttentionBlockDesc decoder_self_attention_desc(
    const accel::QDecoderLayer& layer);
AttentionBlockDesc decoder_cross_attention_desc(
    const accel::QDecoderLayer& layer);

// --- KV-cached (incremental) variants ---------------------------------------
// The same engine sequences, but attention state lives in a KvCache: the
// self-attention K/V of new rows are appended in place and the
// QK/softmax/SV stages span the cached prefix, so a decode step does
// O(len) attention work instead of recomputing the whole O(len^2)
// square. In the dense layout the QKV engine writes straight into the
// cache views; in the paged layout the new rows are scattered through
// the sequence's block table and the QK/SV engines then read the cached
// prefix BLOCK-STRIDED: KvCache::self_spans hands the engines (base,
// rows) runs walking the block table in place, GEMM packing streams the
// panels straight from block storage, and the fused
// dequant→softmax→requant pass consumes the QK accumulator tile directly
// — no gather copy, no total x head_dim scratch, no materialized logits
// matrix. (ctx.kv_gather_fallback restores the gather-into-scratch
// reference path.) The scatter respects copy-on-write forking
// (KvCache::fork_from): writing into a block still shared with a forked
// sibling first copies it, so divergent appends never corrupt the shared
// prompt prefix — and because reads never privatize, the span path is
// COW-safe by construction. int32 accumulation is exact, every op is
// row-wise, packing order is immaterial and scatter is a byte copy, so
// BOTH layouts — block-strided or gathered, and COW-forked caches — are
// bit-identical to the full-recompute path, pinned by
// tests/test_generation.cpp, tests/test_kv_paging.cpp and
// tests/test_kv_cow.cpp.

/// Masked self-attention over `x` (n new rows at absolute positions
/// [pos, pos+n)) with K/V appended into `cache` rows [pos, pos+n) of
/// layer `layer_index` and attention spanning the pos+n cached rows.
/// `desc.self_heads` must be set; `desc.causal` is implied (row i masks
/// columns > pos+i). Paged caches must have rows [0, pos+n) reserved.
void run_self_attention_cached(const LayerOpContext& ctx,
                               const AttentionBlockDesc& desc,
                               tensor::ConstMatrixViewI8 x, KvCache& cache,
                               size_t layer_index, size_t pos,
                               tensor::MatrixViewI8 concat);

/// One-time prefill: projects the quantized encoder memory through the
/// layer's cross K/V weights into `kv` rows [0, memory.rows()).
void fill_cross_kv_cache(const LayerOpContext& ctx,
                         const AttentionBlockDesc& desc,
                         tensor::ConstMatrixViewI8 memory, LayerKv& kv);

/// Cross-attention of `x` over the prefilled cross K/V cache (the
/// per-step work is one Q projection + QK/softmax/SV over memory_len
/// cached rows; no K/V recomputation). `desc.cross_heads` must be set.
void run_cross_attention_cached(const LayerOpContext& ctx,
                                const AttentionBlockDesc& desc,
                                tensor::ConstMatrixViewI8 x,
                                const LayerKv& kv, size_t memory_len,
                                tensor::MatrixViewI8 concat);

/// One decoder layer over cached K/V: appends `x` (n rows at position
/// `pos`) to layer `layer_index`'s self cache, attends over the cached
/// prefix and the prefilled cross projections (cache.memory_len() rows),
/// then projection-LN + FFN. The optional gate brackets the MHA-module
/// stages (both attentions) and FFN-module stages (projections + FFN)
/// for the generation scheduler.
void run_decoder_layer_cached(const LayerOpContext& ctx,
                              const accel::QDecoderLayer& layer,
                              tensor::ConstMatrixViewI8 x, size_t pos,
                              KvCache& cache, size_t layer_index,
                              tensor::MatrixViewI8 out,
                              StageGate* gate = nullptr);

/// Exact power-of-two realignment between a layer's calibrated input
/// scale and the previous layer's output scale (in place, int8 domain).
/// Row-wise, so the incremental and full-recompute paths agree bitwise.
void rescale_rows_inplace(tensor::MatrixViewI8 x, double from_scale,
                          double to_scale);

}  // namespace protea::runtime
