#include "runtime/prefix_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/telemetry.hpp"

namespace protea::runtime {

namespace {

uint64_t fnv1a(const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void PrefixCache::configure(KvBlockPool& pool, size_t block_rows,
                            size_t d_model, const Options& opts) {
  if (!pool.configured()) {
    throw std::invalid_argument("PrefixCache::configure: pool not configured");
  }
  if (block_rows == 0 || block_rows != pool.block_rows()) {
    throw std::invalid_argument(
        "PrefixCache::configure: block_rows must match the pool");
  }
  if (d_model == 0) {
    throw std::invalid_argument("PrefixCache::configure: zero d_model");
  }
  if (opts.max_memories == 0) {
    throw std::invalid_argument("PrefixCache::configure: zero max_memories");
  }
  clear();
  const std::lock_guard lock(mutex_);
  pool_ = &pool;
  block_rows_ = block_rows;
  d_model_ = d_model;
  opts_ = opts;
  tick_ = 0;
  stats_ = PrefixCacheStats{};
}

void PrefixCache::check_storage(const KvCache& kv, const char* what) const {
  if (kv.storage() != opts_.storage) {
    throw std::logic_error(
        std::string("PrefixCache::") + what +
        ": KV storage format mismatch (cache keyed to " +
        numeric::kv_storage_name(opts_.storage) + ", sequence uses " +
        numeric::kv_storage_name(kv.storage()) +
        ") — a block's bytes only decode under the format that wrote them");
  }
}

PrefixCache::MemoryEntry* PrefixCache::find_entry_locked(
    const tensor::MatrixF& memory) {
  const size_t bytes = memory.rows() * memory.cols() * sizeof(float);
  const uint64_t h = fnv1a(memory.data(), bytes);
  for (auto& e : entries_) {
    if (e->hash != h || e->memory.rows() != memory.rows() ||
        e->memory.cols() != memory.cols()) {
      continue;
    }
    if (std::memcmp(e->memory.data(), memory.data(), bytes) == 0) {
      return e.get();
    }
  }
  return nullptr;
}

bool PrefixCache::copy_cross_locked(const MemoryEntry& e, KvCache& kv) const {
  const size_t s = e.memory.rows();
  if (kv.num_layers() != e.layers || kv.num_heads() != e.heads ||
      kv.head_dim() != e.head_dim || kv.memory_len() != s ||
      s > kv.memory_capacity()) {
    return false;
  }
  const size_t hd = e.head_dim;
  const int8_t* src = e.cross.data();
  for (size_t li = 0; li < e.layers; ++li) {
    LayerKv& layer = kv.layer(li);
    for (size_t h = 0; h < e.heads; ++h) {
      // The cross views are (memory_capacity x head_dim) contiguous, so
      // the valid prefix [0, s) is one run.
      std::memcpy(layer.cross_k[h].row(0).data(), src, s * hd);
      src += s * hd;
      std::memcpy(layer.cross_v[h].row(0).data(), src, s * hd);
      src += s * hd;
    }
  }
  return true;
}

PrefixCache::MemoryEntry& PrefixCache::ensure_entry_locked(
    const tensor::MatrixF& memory, const KvCache& kv) {
  if (MemoryEntry* e = find_entry_locked(memory)) return *e;
  if (kv.memory_len() != memory.rows()) {
    throw std::logic_error(
        "PrefixCache: cross publish without an active sequence for this "
        "memory");
  }
  auto entry = std::make_unique<MemoryEntry>();
  entry->hash =
      fnv1a(memory.data(), memory.rows() * memory.cols() * sizeof(float));
  entry->memory = memory;
  entry->layers = kv.num_layers();
  entry->heads = kv.num_heads();
  entry->head_dim = kv.head_dim();
  const size_t s = memory.rows();
  const size_t hd = entry->head_dim;
  entry->cross.resize(entry->layers * entry->heads * 2 * s * hd);
  int8_t* dst = entry->cross.data();
  for (size_t li = 0; li < entry->layers; ++li) {
    const LayerKv& layer = kv.layer(li);
    for (size_t h = 0; h < entry->heads; ++h) {
      std::memcpy(dst, layer.cross_k[h].row(0).data(), s * hd);
      dst += s * hd;
      std::memcpy(dst, layer.cross_v[h].row(0).data(), s * hd);
      dst += s * hd;
    }
  }
  entry->last_used = tick_;
  entries_.push_back(std::move(entry));
  MemoryEntry& created = *entries_.back();

  // Soft cap on distinct memories: evict the LRU entry whose blocks are
  // all cache-only. When every other entry is live, exceed the cap — a
  // live adoption must never lose its chain.
  while (entries_.size() > opts_.max_memories) {
    size_t victim = SIZE_MAX;
    uint64_t oldest = UINT64_MAX;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].get() == &created) continue;
      bool cold = true;
      const auto check = [&](const auto& self, const Node& n) -> void {
        if (pool_->ref_count(n.block) != 1) cold = false;
        for (const auto& c : n.children) {
          if (cold) self(self, *c);
        }
      };
      for (const auto& c : entries_[i]->children) {
        if (cold) check(check, *c);
      }
      if (cold && entries_[i]->last_used < oldest) {
        oldest = entries_[i]->last_used;
        victim = i;
      }
    }
    if (victim == SIZE_MAX) break;
    std::vector<uint32_t> blocks;
    const auto collect = [&](const auto& self, const Node& n) -> void {
      blocks.push_back(n.block);
      for (const auto& c : n.children) self(self, *c);
    };
    for (const auto& c : entries_[victim]->children) collect(collect, *c);
    if (!blocks.empty()) pool_->release(blocks);
    stats_.evictions += blocks.size();
    if (trace_ != nullptr && !blocks.empty()) {
      trace_->record(TraceEventType::kPrefixEvict, kNoTraceSeq,
                     blocks.size(), 0);
    }
    entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
  }
  return created;
}

size_t PrefixCache::adopt(const tensor::MatrixF& memory,
                          const tensor::MatrixF& prompt, KvCache& kv,
                          tensor::MatrixF& states, bool* cross_hit) {
  if (!configured()) {
    throw std::logic_error("PrefixCache::adopt: not configured");
  }
  if (prompt.rows() == 0 || prompt.cols() != d_model_) {
    throw std::invalid_argument("PrefixCache::adopt: bad prompt shape");
  }
  check_storage(kv, "adopt");
  const std::lock_guard lock(mutex_);
  ++tick_;
  if (cross_hit != nullptr) *cross_hit = false;
  MemoryEntry* e = find_entry_locked(memory);
  if (e == nullptr || !copy_cross_locked(*e, kv)) {
    ++stats_.cross_misses;
    ++stats_.prefix_misses;
    return 0;
  }
  e->last_used = tick_;
  ++stats_.cross_hits;
  stats_.cross_bytes_reused += e->cross.size();
  if (cross_hit != nullptr) *cross_hit = true;

  // Prefix adoption needs this cache's pool underneath the sequence and
  // an uncredited, still-empty table; otherwise the cross reuse stands
  // alone. Whole blocks only, and always >= 1 uncovered tail row, so the
  // sequence's first write lands on a block boundary (a fresh, private
  // block — divergence never touches an adopted byte).
  if (!kv.paged() || kv.pool() != pool_ || kv.credit() != nullptr ||
      kv.len() != 0) {
    ++stats_.prefix_misses;
    return 0;
  }
  const size_t row_bytes_f = block_rows_ * d_model_ * sizeof(float);
  const size_t max_rows = prompt.rows() - 1;
  std::vector<uint32_t> chain;
  std::vector<Node*> nodes;
  auto* children = &e->children;
  size_t pos = 0;
  while (pos + block_rows_ <= max_rows) {
    const uint64_t h = fnv1a(prompt.row(pos).data(), row_bytes_f);
    Node* match = nullptr;
    for (auto& c : *children) {
      if (c->hash == h &&
          std::memcmp(c->rows.data(), prompt.row(pos).data(), row_bytes_f) ==
              0) {
        match = c.get();
        break;
      }
    }
    if (match == nullptr) break;
    chain.push_back(match->block);
    nodes.push_back(match);
    children = &match->children;
    pos += block_rows_;
  }
  if (chain.empty()) {
    ++stats_.prefix_misses;
    return 0;
  }
  pool_->fork_ref(chain);
  try {
    kv.adopt_prefix(chain, pos);
  } catch (...) {
    pool_->release(chain);
    throw;
  }
  if (states.rows() < prompt.rows() ||
      states.cols() != static_cast<size_t>(d_model_)) {
    states = tensor::MatrixF(prompt.rows(), d_model_);
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i]->last_used = tick_;
    std::memcpy(states.row(i * block_rows_).data(), nodes[i]->states.data(),
                row_bytes_f);
  }
  ++stats_.prefix_hits;
  stats_.rows_adopted += pos;
  stats_.bytes_adopted += pos * pool_->row_bytes();
  if (trace_ != nullptr) {
    trace_->record(TraceEventType::kPrefixAdopt, kNoTraceSeq, pos,
                   chain.size());
  }
  return pos;
}

bool PrefixCache::cross_into(const tensor::MatrixF& memory, KvCache& kv) {
  if (!configured()) {
    throw std::logic_error("PrefixCache::cross_into: not configured");
  }
  check_storage(kv, "cross_into");
  const std::lock_guard lock(mutex_);
  ++tick_;
  MemoryEntry* e = find_entry_locked(memory);
  if (e == nullptr || !copy_cross_locked(*e, kv)) {
    ++stats_.cross_misses;
    return false;
  }
  e->last_used = tick_;
  ++stats_.cross_hits;
  stats_.cross_bytes_reused += e->cross.size();
  return true;
}

void PrefixCache::publish_cross(const tensor::MatrixF& memory,
                                const KvCache& kv) {
  if (!configured()) {
    throw std::logic_error("PrefixCache::publish_cross: not configured");
  }
  check_storage(kv, "publish_cross");
  const std::lock_guard lock(mutex_);
  ++tick_;
  ensure_entry_locked(memory, kv).last_used = tick_;
}

void PrefixCache::publish(const tensor::MatrixF& memory,
                          const tensor::MatrixF& prompt,
                          const tensor::MatrixF& states, KvCache& kv) {
  if (!configured()) {
    throw std::logic_error("PrefixCache::publish: not configured");
  }
  if (prompt.rows() == 0 || prompt.cols() != d_model_) {
    throw std::invalid_argument("PrefixCache::publish: bad prompt shape");
  }
  if (!kv.paged() || kv.pool() != pool_) {
    throw std::logic_error("PrefixCache::publish: sequence not on this pool");
  }
  check_storage(kv, "publish");
  if (kv.credit() != nullptr) {
    throw std::logic_error(
        "PrefixCache::publish: credited sequences cannot publish");
  }
  if (kv.len() < prompt.rows()) {
    throw std::logic_error(
        "PrefixCache::publish: prompt rows not cached by the sequence");
  }
  if (states.rows() < prompt.rows() || states.cols() != d_model_) {
    throw std::invalid_argument("PrefixCache::publish: bad states shape");
  }
  const std::lock_guard lock(mutex_);
  ++tick_;
  MemoryEntry& e = ensure_entry_locked(memory, kv);
  e.last_used = tick_;
  const size_t row_bytes_f = block_rows_ * d_model_ * sizeof(float);
  const size_t nblocks = prompt.rows() / block_rows_;  // full blocks only
  const std::span<const uint32_t> table = kv.block_table();
  auto* children = &e.children;
  size_t new_blocks = 0;
  for (size_t k = 0; k < nblocks; ++k) {
    const size_t pos = k * block_rows_;
    const uint64_t h = fnv1a(prompt.row(pos).data(), row_bytes_f);
    Node* match = nullptr;
    for (auto& c : *children) {
      if (c->hash == h &&
          std::memcmp(c->rows.data(), prompt.row(pos).data(), row_bytes_f) ==
              0) {
        match = c.get();
        break;
      }
    }
    if (match == nullptr) {
      auto node = std::make_unique<Node>();
      node->hash = h;
      node->rows = prompt.slice_rows(pos, block_rows_);
      node->states = states.slice_rows(pos, block_rows_);
      const uint32_t b = table[k];
      pool_->fork_ref(std::span<const uint32_t>(&b, 1));
      node->block = b;
      ++stats_.inserts;
      ++new_blocks;
      children->push_back(std::move(node));
      match = children->back().get();
    }
    match->last_used = tick_;
    children = &match->children;
  }
  if (new_blocks > 0) {
    // The donor's leading blocks are now shared with the cache: arm its
    // COW guard (it only ever writes beyond the published prefix, but
    // in-place sequence reuse and swap-out must see the sharing).
    kv.mark_table_shared();
    note_blocks_locked();
    if (trace_ != nullptr) {
      trace_->record(TraceEventType::kPrefixPublish, kNoTraceSeq,
                     nblocks * block_rows_, new_blocks);
    }
  }
}

bool PrefixCache::evict_one_leaf_locked() {
  std::vector<std::unique_ptr<Node>>* best_vec = nullptr;
  size_t best_idx = 0;
  uint64_t best_tick = UINT64_MAX;
  const auto scan = [&](const auto& self,
                        std::vector<std::unique_ptr<Node>>& vec) -> void {
    for (size_t i = 0; i < vec.size(); ++i) {
      Node& n = *vec[i];
      if (n.children.empty()) {
        // Leaves only: an interior node's children are unreachable
        // without it. Refcount 1 means the cache is the sole holder — a
        // block a live table references is never victimized.
        if (pool_->ref_count(n.block) == 1 && n.last_used < best_tick) {
          best_vec = &vec;
          best_idx = i;
          best_tick = n.last_used;
        }
      } else {
        self(self, n.children);
      }
    }
  };
  for (auto& e : entries_) scan(scan, e->children);
  if (best_vec == nullptr) return false;
  const uint32_t b = (*best_vec)[best_idx]->block;
  pool_->release(std::span<const uint32_t>(&b, 1));
  best_vec->erase(best_vec->begin() + static_cast<ptrdiff_t>(best_idx));
  ++stats_.evictions;
  if (trace_ != nullptr) {
    trace_->record(TraceEventType::kPrefixEvict, kNoTraceSeq, 1, 0);
  }
  return true;
}

size_t PrefixCache::reclaim(size_t blocks_wanted) {
  if (!configured() || blocks_wanted == 0) return 0;
  const std::lock_guard lock(mutex_);
  size_t freed = 0;
  while (freed < blocks_wanted && evict_one_leaf_locked()) ++freed;
  if (freed > 0) note_blocks_locked();
  return freed;
}

size_t PrefixCache::reclaimable_blocks() const {
  const std::lock_guard lock(mutex_);
  size_t total = 0;
  const auto walk = [&](const auto& self, const Node& n) -> bool {
    bool full = pool_->ref_count(n.block) == 1;
    for (const auto& c : n.children) {
      const bool child_full = self(self, *c);
      full = full && child_full;
    }
    if (full) ++total;  // freeable once its (freeable) children go
    return full;
  };
  for (const auto& e : entries_) {
    for (const auto& c : e->children) walk(walk, *c);
  }
  return total;
}

size_t PrefixCache::count_blocks_locked() const {
  size_t total = 0;
  const auto walk = [&](const auto& self, const Node& n) -> void {
    ++total;
    for (const auto& c : n.children) self(self, *c);
  };
  for (const auto& e : entries_) {
    for (const auto& c : e->children) walk(walk, *c);
  }
  return total;
}

void PrefixCache::note_blocks_locked() {
  stats_.blocks_held = count_blocks_locked();
  stats_.blocks_peak = std::max(stats_.blocks_peak, stats_.blocks_held);
}

void PrefixCache::clear() {
  const std::lock_guard lock(mutex_);
  if (pool_ != nullptr) {
    std::vector<uint32_t> blocks;
    const auto collect = [&](const auto& self, const Node& n) -> void {
      blocks.push_back(n.block);
      for (const auto& c : n.children) self(self, *c);
    };
    for (const auto& e : entries_) {
      for (const auto& c : e->children) collect(collect, *c);
    }
    if (!blocks.empty()) pool_->release(blocks);
  }
  entries_.clear();
  stats_.blocks_held = 0;
}

PrefixCacheStats PrefixCache::stats() const {
  const std::lock_guard lock(mutex_);
  PrefixCacheStats out = stats_;
  out.blocks_held = count_blocks_locked();
  return out;
}

void PrefixCache::set_trace(TraceRecorder* trace) {
  const std::lock_guard lock(mutex_);
  trace_ = trace;
}

}  // namespace protea::runtime
