// Decode-policy subsystem: logits post-processing + token selection on
// top of the vocabulary-free generation engine.
//
// The generation layer (runtime/generation.hpp) deliberately knows
// nothing about vocabularies: requests carry a next_token callback from
// output states to input embeddings. This subsystem supplies the policy
// side of that contract:
//
//   * LogitsProcessor — the standard serving-stack logits pipeline:
//     repetition penalty (over the emitted history), temperature,
//     top-k and nucleus (top-p) masking. Pure in-place float math with
//     preallocated scratch; masked entries become -inf.
//   * TokenStream — per-request policy state (processor scratch, a
//     seeded util::Xoshiro256, the token history) that turns a (V x d)
//     vocab head + (V x d) embedding table into a
//     GenerationRequest::next_token callback: greedy argmax or seeded
//     stochastic sampling, reproducible for any scheduler interleaving
//     because the RNG is per-request.
//   * BeamSearchDecoder — width-K beam search with length-normalized
//     (GNMT) scoring, built on copy-on-write KV forking: ONE prefill of
//     the prompt, then every beam (and every per-step re-fork of the
//     survivors) adopts the prefix block table by refcount
//     (KvCache::fork_from) — K beams at near-1x prompt footprint, with
//     the first divergent append per block paying the one copy.
//     Admission reserves the group's COW-aware worst-case block count
//     as a KvPoolCredit, so beam groups apply backpressure against a
//     shared pool without ever waiting mid-decode (deadlock-free, same
//     reserve-at-admission discipline as the generation scheduler).
//     After admission the stepped (threads = 1) decode loop performs
//     zero heap allocations; threads > 1 steps live beams on a worker
//     pool, bit-identical to stepped because selection is a
//     deterministic reduction over per-beam logits.
//
// The vocab head and embedding table are caller-owned float stand-ins
// (as in the benches); their projections run off-accelerator and are
// not part of the engines' MAC accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "accel/accel_config.hpp"
#include "accel/decoder_model.hpp"
#include "runtime/generation.hpp"
#include "runtime/kv_cache.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace protea::runtime {

/// Logits shaping + selection knobs. Defaults are a no-op pipeline with
/// greedy selection.
struct DecodePolicy {
  /// Divides logits before masking; must be > 0. Values < 1 sharpen,
  /// > 1 flatten.
  float temperature = 1.0f;
  /// Keep only the k largest logits (0 = off).
  uint32_t top_k = 0;
  /// Nucleus sampling: keep the smallest prefix of the probability-sorted
  /// vocabulary whose mass reaches top_p (1 = off).
  float top_p = 1.0f;
  /// CTRL-style repetition penalty over the emitted history (> 1 demotes
  /// repeats; 1 = off).
  float repetition_penalty = 1.0f;
  /// false = greedy argmax; true = sample from the processed
  /// distribution with the stream's seeded RNG.
  bool sample = false;
  uint64_t seed = 0;
  /// Emitting this token finishes the stream / hypothesis (< 0 = none).
  int64_t eos_token = -1;

  void validate(size_t vocab) const;
};

/// Caller-owned float stand-ins for the output projection and the input
/// embedding table (both V x d_model), the same shapes the benches use.
struct VocabModel {
  const tensor::MatrixF* head = nullptr;
  const tensor::MatrixF* embed = nullptr;

  size_t vocab_size() const { return head != nullptr ? head->rows() : 0; }
  void validate(size_t d_model) const;
};

/// logits[v] = head.row(v) . state (double accumulation, float store).
void project_logits(const tensor::MatrixF& head,
                    std::span<const float> state, std::span<float> logits);

/// In-place log-softmax (double accumulation; -inf entries stay -inf).
void log_softmax_inplace(std::span<float> logits);

/// Greedy selection; the lowest index wins ties, so results are
/// reproducible across platforms.
uint32_t argmax_logit(std::span<const float> logits);

/// Applies repetition penalty -> temperature -> top-k -> top-p in place.
/// Scratch is preallocated at the vocab size, so process() never touches
/// the heap.
class LogitsProcessor {
 public:
  LogitsProcessor(const DecodePolicy& policy, size_t vocab);

  void process(std::span<float> logits,
               std::span<const uint32_t> history);

 private:
  DecodePolicy policy_;
  size_t vocab_;
  std::vector<uint32_t> order_;  // index scratch for top-k / top-p
  std::vector<double> probs_;    // nucleus mass scratch
};

/// Per-request decode-policy state, shaped to plug straight into
/// GenerationRequest::next_token — the engine and its schedulers stay
/// untouched and vocabulary-free. Greedy and sampled streams emit
/// identical tokens for any slot/thread/chunk interleaving because all
/// policy state (RNG, history) lives here, per request.
class TokenStream {
 public:
  /// `max_tokens` sizes the history/token storage so steady-state
  /// selection never allocates.
  TokenStream(const DecodePolicy& policy, const VocabModel& vocab,
              size_t max_tokens);

  /// Starts a fresh stream; `prompt_tokens` seeds the repetition-penalty
  /// history (prompt embeddings themselves are the caller's business).
  void reset(std::span<const uint32_t> prompt_tokens = {});

  /// GenerationRequest::next_token contract: selects the next token from
  /// `state`, writes its embedding into `next` (1 x d) and returns false
  /// when the policy's EOS was emitted.
  bool next_token(std::span<const float> state, tensor::MatrixF& next);

  /// Binds this stream as a GenerationRequest callback (the stream must
  /// outlive the request).
  std::function<bool(std::span<const float>, tensor::MatrixF&)> callback();

  /// Tokens emitted since the last reset (EOS included).
  const std::vector<uint32_t>& tokens() const { return tokens_; }

 private:
  DecodePolicy policy_;
  VocabModel vocab_;
  LogitsProcessor processor_;
  util::Xoshiro256 rng_;
  std::vector<float> logits_;
  std::vector<uint32_t> tokens_;
  std::vector<uint32_t> history_;  // prompt + emitted, for the penalty
};

// --- beam search on copy-on-write KV forking --------------------------------

struct BeamSearchOptions {
  uint32_t beam_width = 4;
  uint32_t max_new_tokens = 1;
  /// GNMT length normalization exponent alpha: hypotheses are ranked by
  /// sum_logprob / ((5 + len) / 6)^alpha. 0 disables normalization.
  float length_penalty = 0.6f;
  /// Logits shaping applied before scoring (temperature, top-k/p
  /// masking, repetition penalty over each beam's own history).
  /// `sample`/`seed` are ignored — beam expansion is exhaustive over the
  /// unmasked vocabulary; `eos_token` finishes a hypothesis.
  DecodePolicy logits;
  /// true: forks adopt the parent block table by refcount (COW). false:
  /// every fork eagerly copies all blocks — the bit-exact reference mode
  /// the COW path is verified against.
  bool cow = true;
  /// 1 = deterministic stepped loop (zero steady-state allocations);
  /// > 1 steps live beams on that many workers, bit-identical to stepped.
  size_t threads = 1;
  /// Self-K/V tokens per block (must be paged: forking needs the block
  /// table).
  size_t kv_block_rows = 16;
  /// Shared pool to serve the beam group from (admission reserves the
  /// COW-aware worst case against it); nullptr gives the decoder a
  /// private pool sized at its own worst case.
  KvBlockPool* kv_pool = nullptr;
  /// Cooperative group-preemption hook for traffic schedulers: called
  /// before each selection round with the number of tokens selected so
  /// far. Returning true preempts the WHOLE group as a unit — every
  /// session's blocks AND the admission credit go back to the pool —
  /// then restores it bit-exactly (one prompt re-prefill, re-fork, and
  /// per-beam replay of the committed tokens) under a fresh credit at
  /// the same worst-case bound. Hypotheses are identical to an
  /// unpreempted run.
  std::function<bool(uint32_t generated)> preempt_point;
  /// Fires between release and restore, while the group holds NOTHING
  /// (used by tests to assert the pool drained, and by schedulers to run
  /// higher-priority work).
  std::function<void()> on_preempted;

  void validate() const;
};

struct BeamHypothesis {
  std::vector<uint32_t> tokens;  // generated tokens, EOS included
  double sum_logprob = 0.0;
  double score = 0.0;  // length-normalized
  bool finished = false;  // ended on EOS (vs ran out of budget)
};

struct BeamSearchStats {
  /// COW-aware worst-case unique blocks reserved at admission.
  size_t worst_case_blocks = 0;
  /// Peak unique blocks the group actually held (credit accounting) —
  /// the executed sharing win: compare against beam_width x a dense
  /// lineage.
  size_t kv_blocks_peak = 0;
  uint64_t cow_copies = 0;   // write-triggered block copies this run
  uint64_t forks = 0;        // cache forks (initial spread + re-forks)
  uint64_t decode_steps = 0; // per-beam engine steps
  uint64_t credit_waits = 0; // admission had to wait for pool headroom
  uint64_t macs = 0;         // engine MACs summed over the group
  uint64_t group_preemptions = 0;  // preempt_point evictions this run
  uint64_t replayed_rows = 0;      // rows re-run by group restores
};

/// COW-aware worst-case unique-block bound for a width-K group decoding
/// `max_new_tokens` off a `prompt_rows`-row prefill: the shared prompt
/// lineage counts ONCE, plus each beam's worst-case divergent tail
/// (its blocks past the last fully-shared block, including the COW copy
/// of the straddling block). With cow = false the bound is the eager
/// one: two generations of K private lineages (double-buffered
/// re-forking). This is the reserve-at-admission number — a group that
/// reserves it never waits (and never throws) mid-decode.
size_t beam_worst_case_blocks(size_t prompt_rows, size_t max_new_tokens,
                              size_t beam_width, size_t block_rows,
                              bool cow);

/// Width-K beam search driver over 2K forked GenerationSessions (K live
/// + K re-fork targets). Construction warms the sessions; generate()
/// performs admission (credit reservation), one prefill, and the
/// fork/step/select loop. Reusable across calls.
class BeamSearchDecoder {
 public:
  /// `config`, `model` and `vocab` (and options.kv_pool, when given)
  /// must outlive the decoder.
  BeamSearchDecoder(const accel::AccelConfig& config,
                    const accel::QuantizedDecoder& model,
                    const VocabModel& vocab,
                    const BeamSearchOptions& options);
  ~BeamSearchDecoder();
  BeamSearchDecoder(const BeamSearchDecoder&) = delete;
  BeamSearchDecoder& operator=(const BeamSearchDecoder&) = delete;

  /// Runs beam search for `prompt_tokens` (embedded through the vocab
  /// table) against `memory`; returns at most beam_width hypotheses,
  /// best score first. Deterministic for any `threads` setting.
  std::vector<BeamHypothesis> generate(
      std::span<const uint32_t> prompt_tokens,
      const tensor::MatrixF& memory);

  const BeamSearchStats& last_run() const { return last_run_; }
  const KvBlockPool& pool() const { return *pool_; }
  const BeamSearchOptions& options() const { return options_; }

 private:
  struct Beam {
    uint32_t pending = 0;  // selected token, decoded next step
    double sum_logprob = 0.0;
    std::vector<uint32_t> tokens;
    std::vector<uint32_t> history;  // prompt + tokens (penalty window)
  };

  double length_norm(size_t len) const;
  void step_beam(size_t j);
  void offer_finished(const Beam& beam, uint32_t token, double sum);
  void release_all();
  /// options_.preempt_point fired: evict the whole group (blocks +
  /// credit), notify, re-admit and rebuild it bit-exactly.
  void preempt_restore_group(const tensor::MatrixF& prompt,
                             const tensor::MatrixF& memory,
                             KvCreditLease& lease);

  const accel::AccelConfig* config_;
  const accel::QuantizedDecoder* model_;
  const VocabModel* vocab_;
  BeamSearchOptions options_;
  KvBlockPool* pool_ = nullptr;
  std::unique_ptr<KvBlockPool> owned_pool_;
  std::vector<std::unique_ptr<GenerationSession>> cur_sessions_;
  std::vector<std::unique_ptr<GenerationSession>> next_sessions_;
  std::vector<Beam> cur_beams_, next_beams_;
  size_t live_ = 0;
  std::vector<LogitsProcessor> processors_;  // one per beam (threaded)
  tensor::MatrixF logits_;                   // (K x V) per-beam scratch
  std::vector<tensor::MatrixF> token_embeds_;  // (1 x d) per beam
  std::vector<tensor::MatrixF> states_;        // (1 x d) per beam
  std::vector<uint64_t> cand_order_;   // flat (beam, token) candidates
  std::vector<double> cand_scores_;
  std::vector<size_t> moved_from_;  // source beam -> adopting next slot
  std::vector<BeamHypothesis> finished_;  // best-K finished, preallocated
  size_t finished_count_ = 0;
  std::unique_ptr<util::ThreadPool> workers_;
  BeamSearchStats last_run_;
};

}  // namespace protea::runtime
