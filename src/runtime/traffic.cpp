#include "runtime/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "accel/decoder_accelerator.hpp"
#include "runtime/module_gate.hpp"
#include "runtime/prefix_cache.hpp"
#include "runtime/telemetry.hpp"
#include "util/math_util.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace protea::runtime {

const char* traffic_priority_name(TrafficPriority p) {
  switch (p) {
    case TrafficPriority::kInteractive:
      return "interactive";
    case TrafficPriority::kStandard:
      return "standard";
    case TrafficPriority::kBatch:
      return "batch";
  }
  return "?";
}

const char* traffic_outcome_name(TrafficOutcome o) {
  switch (o) {
    case TrafficOutcome::kPending:
      return "pending";
    case TrafficOutcome::kCompleted:
      return "completed";
    case TrafficOutcome::kCompletedLate:
      return "completed_late";
    case TrafficOutcome::kShedOverload:
      return "shed_overload";
    case TrafficOutcome::kShedDeadline:
      return "shed_deadline";
    case TrafficOutcome::kShedCapacity:
      return "shed_capacity";
    case TrafficOutcome::kCancelled:
      return "cancelled";
    case TrafficOutcome::kFailed:
      return "failed";
  }
  return "?";
}

namespace {

constexpr uint32_t kNoDeadline = std::numeric_limits<uint32_t>::max();

/// Scheduling rank, best first. A TOTAL order (the submission index ties
/// everything), so "preempt only strictly better -> worse" can never
/// cycle and the best-ranked live request is unpreemptable — the engine
/// always has a progress guarantee.
struct Rank {
  uint32_t pri = 0;
  uint32_t deadline = kNoDeadline;  // absolute round
  uint32_t arrival = 0;
  uint32_t index = 0;

  bool operator<(const Rank& o) const {  // true: this outranks o
    if (pri != o.pri) return pri < o.pri;
    if (deadline != o.deadline) return deadline < o.deadline;
    if (arrival != o.arrival) return arrival < o.arrival;
    return index < o.index;
  }
};

/// CPU-side state of an admitted request. This is the part that SURVIVES
/// preemption — block tables die, this does not — and it is exactly
/// enough to restore bit-identically: the prompt rows (in the request),
/// every decode input already fed (`fed`; replay re-prefills them
/// without re-invoking the caller's stateful next_token), the pending
/// not-yet-decoded token (`next`) and, for swap victims, the raw block
/// bytes.
struct Flight {
  const TrafficRequest* req = nullptr;
  TrafficResult* result = nullptr;
  uint32_t index = 0;
  Rank rank;
  uint32_t deadline_round = kNoDeadline;
  tensor::MatrixF next;          // pending token embedding (not cached yet)
  tensor::MatrixF state;         // last decode output (1 x d)
  tensor::MatrixF chunk_states;  // per-chunk prefill outputs
  tensor::MatrixF fed;           // decode inputs already cached, row per step
  size_t prefill_pos = 0;
  bool prefilling = true;
  bool needs_begin = true;  // cross K/V projection still owed
  bool done = false;
  bool stalled = false;     // inside a growth-wait episode (stat dedup)
  bool unit_ready = false;  // rows reserved for this round's unit
  bool published = false;   // prompt handed to the prefix cache
  double wall_admit = 0.0;
  // Telemetry bookkeeping (written only when a sink is bound; never read
  // by the scheduling logic, so telemetry cannot perturb the schedule).
  uint32_t preempt_round = 0;    // round of the last eviction
  uint32_t last_decode_round = 0;
  bool has_decoded = false;      // last_decode_round is valid
  bool ttft_recorded = false;    // first-token latency observed once
  std::vector<int8_t> swap_data;  // spilled block bytes while preempted
  size_t swap_rows = 0;
  bool swapped = false;
  std::exception_ptr error;
};

/// Queue entry: a never-admitted arrival (flight == nullptr) or a
/// preempted flight awaiting restoration.
struct Waiting {
  uint32_t index = 0;
  std::unique_ptr<Flight> flight;
  bool wait_counted = false;  // one kv_block_waits per wait episode
};

void validate_traffic_request(const TrafficRequest& t,
                              const ref::ModelConfig& cfg,
                              const hw::SynthParams& synth) {
  const GenerationRequest& r = t.gen;
  if (r.memory == nullptr) {
    throw std::invalid_argument("traffic request: memory missing");
  }
  if (r.prefix.rows() == 0 || r.prefix.cols() != cfg.d_model) {
    throw std::invalid_argument("traffic request: bad prefix shape");
  }
  if (r.prefix.rows() + r.max_new_tokens > cfg.seq_len + 1) {
    throw std::invalid_argument(
        "traffic request: prefix + max_new_tokens exceeds seq_len + 1");
  }
  if (r.memory->rows() == 0 || r.memory->rows() > synth.max_seq_len ||
      r.memory->cols() != cfg.d_model) {
    throw std::invalid_argument("traffic request: bad memory shape");
  }
  if (r.max_new_tokens > 0 && !r.next_token) {
    throw std::invalid_argument("traffic request: next_token missing");
  }
}

/// One unit of compute for an active seat: the next prefill chunk or one
/// decode step. This is the ONLY code that runs on worker threads; it
/// never touches the pool beyond rows the coordinator pre-reserved, so
/// it cannot throw KvBlockExhausted — any other exception is captured
/// into the flight and handled serially.
void run_unit(Flight& f, GenerationSession& session, StageGate* gate,
              size_t chunk) noexcept {
  try {
    if (f.needs_begin) {
      session.prefill_begin(*f.req->gen.memory, gate);
      f.needs_begin = false;
    }
    if (f.prefilling) {
      const tensor::MatrixF& prefix = f.req->gen.prefix;
      const size_t t_rows = prefix.rows();
      const size_t n = chunk == 0 ? t_rows - f.prefill_pos
                                  : std::min(chunk, t_rows - f.prefill_pos);
      const auto rows = prefix.slice_rows(f.prefill_pos, n);
      session.prefill_rows(rows, f.chunk_states, gate);
      for (size_t r = 0; r < n; ++r) {
        std::copy(f.chunk_states.row(r).begin(), f.chunk_states.row(r).end(),
                  f.result->states.row(f.prefill_pos + r).begin());
      }
      f.prefill_pos += n;
      if (f.prefill_pos < t_rows) return;
      f.prefilling = false;
      f.done =
          f.req->gen.max_new_tokens == 0 ||
          !f.req->gen.next_token(f.result->states.row(t_rows - 1), f.next);
      if (!f.done && session.position() >= session.capacity()) f.done = true;
    } else {
      // Retain the embedding BEFORE feeding it: drop-and-recompute
      // replays `fed` verbatim instead of re-running the (stateful)
      // next_token callbacks.
      std::copy(f.next.row(0).begin(), f.next.row(0).end(),
                f.fed.row(f.result->steps).begin());
      session.decode_step(f.next, f.state, gate);
      const size_t row = f.req->gen.prefix.rows() + f.result->steps;
      std::copy(f.state.row(0).begin(), f.state.row(0).end(),
                f.result->states.row(row).begin());
      ++f.result->steps;
      f.done = f.result->steps >= f.req->gen.max_new_tokens ||
               !f.req->gen.next_token(f.state.row(0), f.next);
      if (!f.done && session.position() >= session.capacity()) f.done = true;
    }
  } catch (...) {
    f.error = std::current_exception();
  }
}

/// The single coordinator behind both modes. Rounds are the engine's
/// virtual clock: arrivals, deadlines and latencies are measured in
/// rounds, so the schedule is a pure function of (requests, options,
/// injected faults) — bit-identical stepped vs threaded.
class Coordinator {
 public:
  Coordinator(const accel::AccelConfig& config,
              const accel::QuantizedDecoder& model,
              const std::vector<TrafficRequest>& requests,
              const TrafficOptions& opts, KvBlockPool& pool,
              PrefixCache* pcache, std::vector<TrafficResult>& results,
              SchedulerStats& stats)
      : config_(config),
        model_(model),
        requests_(requests),
        opts_(opts),
        pool_(pool),
        pcache_(pcache),
        results_(results),
        stats_(stats),
        tel_(opts.telemetry != nullptr && opts.telemetry->enabled()
                 ? opts.telemetry
                 : nullptr) {
    const size_t slots = std::min(opts.slots, requests.size());
    const GenerationOptions session_opts{
        .kv_block_rows = pool.block_rows(),
        .kv_pool = &pool,
        .prefill_chunk = opts.prefill_chunk,
        .kv_storage = opts.kv_storage};
    sessions_.reserve(slots);
    for (size_t s = 0; s < slots; ++s) {
      sessions_.push_back(std::make_unique<GenerationSession>(
          config, model, nullptr, session_opts));
    }
    seats_.resize(slots);

    if (opts.threads > 1) {
      const size_t workers = std::min(opts.threads, slots);
      const auto width = [&](uint32_t requested) {
        return requested > 0 ? requested : static_cast<uint32_t>(workers);
      };
      mha_ = std::make_unique<ModuleSlots>(width(opts.mha_slots));
      ffn_ = std::make_unique<ModuleSlots>(width(opts.ffn_slots));
      gate_ = std::make_unique<ModuleGate>(*mha_, *ffn_);
      workers_ = std::make_unique<util::ThreadPool>(workers);
    }

    // Each request is in at most one place (the waiting list or a seat),
    // so waiting_ never outgrows this — preempt_seat's push_back can
    // then never reallocate, which keeps indices AND iterators stable
    // while a reserve-with-preemption pass is in flight.
    waiting_.reserve(requests.size());

    arrival_order_.resize(requests.size());
    std::iota(arrival_order_.begin(), arrival_order_.end(), 0u);
    std::sort(arrival_order_.begin(), arrival_order_.end(),
              [&](uint32_t a, uint32_t b) {
                if (requests[a].arrival_round != requests[b].arrival_round) {
                  return requests[a].arrival_round < requests[b].arrival_round;
                }
                return a < b;
              });
  }

  void run() {
    // Arm the fault schedule AFTER session construction: warm-up takes
    // are uncredited too and would silently consume the skip window.
    uint64_t trips_before = 0;
    if (opts_.fail_skip > 0 || opts_.fail_count > 0) {
      trips_before = pool_.failpoint_trips();
      pool_.inject_failures(opts_.fail_skip, opts_.fail_count);
    }
    struct ClearFaults {  // exception-safe disarm
      KvBlockPool& pool;
      ~ClearFaults() { pool.clear_failures(); }
    } clear_faults{pool_};

    // Arm the trace on the pool and prefix cache AFTER session
    // construction for the same reason as the failpoints: warm-up takes
    // are not part of the run. Disarm before the coordinator (and its
    // sessions, whose teardown releases blocks) is destroyed.
    struct ClearTrace {  // exception-safe disarm
      KvBlockPool& pool;
      PrefixCache* pcache;
      ~ClearTrace() {
        pool.set_trace(nullptr);
        if (pcache != nullptr) pcache->set_trace(nullptr);
      }
    } clear_trace{pool_, pcache_};
    if (tel_ != nullptr) {
      pool_.set_trace(&tel_->trace);
      if (pcache_ != nullptr) pcache_->set_trace(&tel_->trace);
    }

    util::Stopwatch watch;
    watch_ = &watch;
    while (finished_ < requests_.size()) {
      progressed_ = false;
      if (tel_ != nullptr) tel_->trace.set_round(round_);
      absorb_arrivals();  // re-syncs the recorder after an idle jump
      expire_and_cancel();
      shed_overload();
      admit_and_restore();
      dispatch_units();
      handle_unit_errors();
      publish_prefixes();
      retire_done();
      track_stall();
      if (tel_ != nullptr) {
        tel_->pool_occupancy_blocks->observe(pool_.used_blocks());
      }
      ++round_;
    }
    stats_.rounds = round_;
    stats_.kv_blocks_peak = pool_.peak_used_blocks();
    stats_.failpoint_trips = pool_.failpoint_trips() - trips_before;
    stats_.wall_ms = watch.milliseconds();
  }

 private:
  // --- bookkeeping helpers ---------------------------------------------------

  TrafficClassStats& cls(uint32_t index) {
    return stats_
        .per_class[static_cast<size_t>(requests_[index].priority)];
  }

  uint32_t deadline_of(uint32_t index) const {
    const TrafficRequest& r = requests_[index];
    if (r.deadline_rounds == 0) return kNoDeadline;
    const uint64_t dl =
        static_cast<uint64_t>(r.arrival_round) + r.deadline_rounds;
    return dl >= kNoDeadline ? kNoDeadline - 1 : static_cast<uint32_t>(dl);
  }

  Rank rank_of(uint32_t index) const {
    return Rank{static_cast<uint32_t>(requests_[index].priority),
                deadline_of(index), requests_[index].arrival_round, index};
  }

  size_t active_count() const {
    size_t n = 0;
    for (const auto& s : seats_) n += s != nullptr;
    return n;
  }

  void finalize_states(Flight& f) const {
    const size_t rows = f.prefilling
                            ? f.prefill_pos
                            : f.req->gen.prefix.rows() + f.result->steps;
    if (f.result->states.rows() != rows) {
      f.result->states =
          rows == 0 ? tensor::MatrixF() : f.result->states.slice_rows(0, rows);
    }
  }

  /// Terminal bookkeeping shared by every outcome. `f` is null for
  /// requests that never ran.
  void retire(uint32_t index, TrafficOutcome outcome, std::string reason,
              Flight* f) {
    TrafficResult& r = results_[index];
    r.outcome = outcome;
    r.shed_reason = std::move(reason);
    r.retired_round = round_;
    r.latency_rounds = round_ - requests_[index].arrival_round;
    if (tel_ != nullptr) {
      const bool completed = outcome == TrafficOutcome::kCompleted ||
                             outcome == TrafficOutcome::kCompletedLate;
      tel_->trace.record(completed ? TraceEventType::kComplete
                                   : TraceEventType::kShed,
                         index, static_cast<uint64_t>(outcome),
                         completed ? r.latency_rounds : 0);
    }
    if (f != nullptr) {
      finalize_states(*f);
      r.latency_ms = watch_->milliseconds() - f->wall_admit;
      if (f->swapped) --swapped_count_;  // free the side-buffer slot
    }
    TrafficClassStats& c = cls(index);
    switch (outcome) {
      case TrafficOutcome::kCompleted:
        ++c.completed;
        break;
      case TrafficOutcome::kCompletedLate:
        ++c.completed_late;
        break;
      case TrafficOutcome::kShedOverload:
        ++c.shed_overload;
        break;
      case TrafficOutcome::kShedDeadline:
        ++c.shed_deadline;
        break;
      case TrafficOutcome::kShedCapacity:
        ++c.shed_capacity;
        break;
      case TrafficOutcome::kCancelled:
        ++c.cancelled;
        break;
      case TrafficOutcome::kFailed:
        ++c.failed;
        break;
      case TrafficOutcome::kPending:
        break;
    }
    ++finished_;
    progressed_ = true;
  }

  void clear_seat(size_t s) {
    sessions_[s]->end_sequence();
    seats_[s].reset();
  }

  // --- preemption ------------------------------------------------------------

  /// Would preempt_seat spill this seat to the side buffer (vs dropping
  /// and recomputing)? Kept in one place so the victim-cost model and
  /// the actual eviction can never disagree.
  bool would_swap(size_t s) const {
    return opts_.recovery != PreemptionRecovery::kRecompute &&
           swapped_count_ < opts_.swap_slots &&
           !sessions_[s]->cache().maybe_shared();
  }

  /// Modeled cost (ms) of evicting seat `s` and later restoring it,
  /// priced for the recovery path preempt_seat would actually take.
  /// Pure arithmetic over deterministic state (cached rows, memory
  /// length, swap-slot occupancy), so stepped and threaded runs agree.
  double preemption_cost_of(size_t s) const {
    const size_t rows = sessions_[s]->position();
    if (rows == 0) return 0.0;
    const accel::PreemptionCost c = accel::estimate_preemption_cost(
        config_, model_.config, static_cast<uint32_t>(rows),
        static_cast<uint32_t>(seats_[s]->req->gen.memory->rows()),
        static_cast<uint32_t>(pool_.block_rows()), opts_.kv_storage);
    return would_swap(s) ? c.swap_ms : c.recompute_ms;
  }

  /// Victim selection (SIZE_MAX: none). Only seats ranked strictly worse
  /// than `r` qualify; a seat whose unit rows are already reserved this
  /// round is off limits: its unit is committed to run (dispatch
  /// reserves in rank order, so a better-ranked requester always
  /// reserves before its victims would). Among qualifying seats the
  /// worst SLO class goes first; within one class the tie breaks by
  /// estimate_preemption_cost — evict the seat that is cheapest to spill
  /// and restore — and only then by the full (deadline, arrival, index)
  /// rank order.
  size_t find_victim(const Rank& r, size_t exclude) const {
    size_t victim = SIZE_MAX;
    double victim_cost = 0.0;
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (s == exclude || seats_[s] == nullptr) continue;
      if (seats_[s]->unit_ready) continue;
      if (!(r < seats_[s]->rank)) continue;  // only strictly worse ranks
      const double cost = preemption_cost_of(s);
      if (victim == SIZE_MAX) {
        victim = s;
        victim_cost = cost;
        continue;
      }
      const Rank& cur = seats_[victim]->rank;
      const Rank& cand = seats_[s]->rank;
      if (cand.pri != cur.pri) {
        if (cand.pri > cur.pri) {
          victim = s;
          victim_cost = cost;
        }
        continue;
      }
      if (cost != victim_cost) {
        if (cost < victim_cost) {
          victim = s;
          victim_cost = cost;
        }
        continue;
      }
      if (cur < cand) {
        victim = s;
        victim_cost = cost;
      }
    }
    return victim;
  }

  /// Evicts seat `s` back onto the waiting list at its original rank.
  /// Swap-out spills the block bytes (restored by rescatter); recompute
  /// releases everything (restored by re-prefilling the retained token
  /// history). Both provably bit-identical at restore.
  void preempt_seat(size_t s) {
    Flight& f = *seats_[s];
    GenerationSession& session = *sessions_[s];
    TrafficClassStats& c = cls(f.index);
    // A table the prefix cache shares (adopted or published blocks)
    // cannot spill byte-wise — swap_out refuses maybe-shared tables —
    // so those victims always drop and recompute.
    const bool swap = would_swap(s);
    const size_t cached_rows = session.position();
    if (swap) {
      f.swap_rows = session.swap_out(f.swap_data);
      f.swapped = true;
      ++swapped_count_;
      stats_.swap_bytes += f.swap_data.size();
      ++c.swap_outs;
    } else {
      session.end_sequence();
      ++c.recomputes;
    }
    if (tel_ != nullptr) {
      tel_->trace.record(TraceEventType::kPreempt, f.index, swap ? 1 : 0,
                         cached_rows);
      if (swap) {
        tel_->trace.record(TraceEventType::kSwapOut, f.index,
                           f.swap_data.size(), f.swap_rows);
      }
      f.preempt_round = round_;
    }
    f.needs_begin = true;  // cross K/V must be re-projected either way
    f.stalled = false;
    ++c.preemptions;
    ++f.result->preemptions;
    waiting_.push_back(Waiting{f.index, std::move(seats_[s]), false});
    progressed_ = true;
  }

  /// Retries `try_reserve` against the pool, evicting one strictly
  /// worse-ranked victim per failure. Terminates: every retry either
  /// succeeds or consumes a victim (finite), and injected failpoints are
  /// finite by construction.
  template <typename TryFn>
  bool reserve_with_preemption(const Rank& r, size_t exclude,
                               TryFn&& try_reserve) {
    while (!try_reserve()) {
      if (!opts_.preemption) return false;
      const size_t victim = find_victim(r, exclude);
      if (victim == SIZE_MAX) return false;
      preempt_seat(victim);
    }
    return true;
  }

  // --- round phases ----------------------------------------------------------

  void absorb_arrivals() {
    // Idle + nothing queued: jump the virtual clock to the next arrival
    // instead of spinning empty rounds.
    if (waiting_.empty() && active_count() == 0 &&
        next_arrival_ < arrival_order_.size()) {
      round_ = std::max(
          round_, requests_[arrival_order_[next_arrival_]].arrival_round);
      if (tel_ != nullptr) tel_->trace.set_round(round_);
    }
    while (next_arrival_ < arrival_order_.size() &&
           requests_[arrival_order_[next_arrival_]].arrival_round <= round_) {
      enqueue_arrival(arrival_order_[next_arrival_++]);
    }
  }

  void enqueue_arrival(uint32_t index) {
    const TrafficRequest& req = requests_[index];
    ++cls(index).submitted;
    // Reject-with-reason instead of queueing forever: a request whose
    // worst case exceeds the whole pool could never be admitted.
    const size_t capacity = sessions_.front()->capacity();
    const size_t need = std::min<size_t>(
        req.gen.prefix.rows() + req.gen.max_new_tokens, capacity);
    const size_t blocks = util::ceil_div(need, pool_.block_rows());
    if (blocks > pool_.num_blocks()) {
      retire(index, TrafficOutcome::kShedCapacity,
             "worst case " + std::to_string(blocks) + " blocks exceeds pool (" +
                 std::to_string(pool_.num_blocks()) + ")",
             nullptr);
      return;
    }
    waiting_.push_back(Waiting{index, nullptr, false});
    progressed_ = true;
  }

  void expire_and_cancel() {
    for (size_t wi = 0; wi < waiting_.size();) {
      Waiting& w = waiting_[wi];
      const TrafficRequest& req = requests_[w.index];
      Flight* f = w.flight.get();
      if (req.cancel != nullptr && req.cancel->load()) {
        retire(w.index, TrafficOutcome::kCancelled, "cancelled by caller", f);
        waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(wi));
        continue;
      }
      if (round_ > deadline_of(w.index)) {
        if (!results_[w.index].deadline_missed) {
          results_[w.index].deadline_missed = true;
          ++cls(w.index).deadline_misses;
          if (tel_ != nullptr) {
            tel_->trace.record(TraceEventType::kDeadlineMiss, w.index,
                               deadline_of(w.index), 0);
          }
        }
        if (f == nullptr) {  // expired before it ever ran
          retire(w.index, TrafficOutcome::kShedDeadline,
                 "deadline expired after " +
                     std::to_string(round_ - req.arrival_round) +
                     " rounds in queue",
                 nullptr);
          waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(wi));
          continue;
        }
        if (req.cancel_on_deadline) {  // preempted past its deadline
          retire(w.index, TrafficOutcome::kCancelled,
                 "deadline expired while preempted", f);
          waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(wi));
          continue;
        }
      }
      ++wi;
    }
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] == nullptr) continue;
      Flight& f = *seats_[s];
      if (f.req->cancel != nullptr && f.req->cancel->load()) {
        retire(f.index, TrafficOutcome::kCancelled, "cancelled by caller", &f);
        clear_seat(s);
        continue;
      }
      if (round_ > f.deadline_round) {
        if (!f.result->deadline_missed) {
          f.result->deadline_missed = true;
          ++cls(f.index).deadline_misses;
          if (tel_ != nullptr) {
            tel_->trace.record(TraceEventType::kDeadlineMiss, f.index,
                               f.deadline_round, 0);
          }
        }
        if (f.req->cancel_on_deadline) {
          retire(f.index, TrafficOutcome::kCancelled,
                 "deadline expired mid-flight", &f);
          clear_seat(s);
        }
      }
    }
  }

  void shed_overload() {
    if (opts_.shed_queue_depth == 0) return;
    while (true) {
      // Only never-admitted requests are sheddable here — a preempted
      // flight's compute is already invested.
      size_t fresh = 0;
      size_t worst = SIZE_MAX;
      for (size_t wi = 0; wi < waiting_.size(); ++wi) {
        if (waiting_[wi].flight != nullptr) continue;
        ++fresh;
        if (worst == SIZE_MAX ||
            rank_of(waiting_[worst].index) < rank_of(waiting_[wi].index)) {
          worst = wi;
        }
      }
      if (fresh <= opts_.shed_queue_depth) return;
      retire(waiting_[worst].index, TrafficOutcome::kShedOverload,
             "queue depth " + std::to_string(fresh) + " exceeds watermark " +
                 std::to_string(opts_.shed_queue_depth),
             nullptr);
      waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(worst));
    }
  }

  /// Admission + restoration in STRICT rank order: the best-ranked
  /// waiting request goes first and a failure stops the pass — no
  /// bypass, so a starving request is never overtaken by a cheaper one.
  void admit_and_restore() {
    while (!waiting_.empty()) {
      size_t best = 0;
      for (size_t wi = 1; wi < waiting_.size(); ++wi) {
        if (rank_of(waiting_[wi].index) < rank_of(waiting_[best].index)) {
          best = wi;
        }
      }
      const Rank r = rank_of(waiting_[best].index);

      size_t s = SIZE_MAX;
      for (size_t i = 0; i < seats_.size(); ++i) {
        if (seats_[i] == nullptr) {
          s = i;
          break;
        }
      }
      if (s == SIZE_MAX) {
        if (!opts_.preemption) break;
        const size_t victim = find_victim(r, SIZE_MAX);
        if (victim == SIZE_MAX) break;  // every seat outranks us
        preempt_seat(victim);  // appends to waiting_; index stays valid
        s = victim;
      }

      const bool ok = waiting_[best].flight != nullptr
                          ? try_restore(best, s)
                          : try_admit(best, s);
      if (!ok) {
        if (!waiting_[best].wait_counted) {
          ++cls(waiting_[best].index).kv_block_waits;
          waiting_[best].wait_counted = true;
        }
        break;
      }
      waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(best));
    }
    stats_.max_active =
        std::max(stats_.max_active, static_cast<uint32_t>(active_count()));
  }

  /// try_admit/try_restore take the WAITING-LIST INDEX, not a Waiting&:
  /// reserve_with_preemption can evict seats onto waiting_, and although
  /// the constructor pre-reserves enough capacity that push_back never
  /// reallocates, indexing (plus the heap-stable Flight) keeps these
  /// correct even if that invariant ever changes.
  bool try_admit(size_t best, size_t s) {
    const uint32_t index = waiting_[best].index;
    const TrafficRequest& req = requests_[index];
    GenerationSession& session = *sessions_[s];
    const size_t prefix = req.gen.prefix.rows();
    // Optimistic admission: only the first prefill chunk up front, the
    // rest grows on demand (preempting victims when the pool is short).
    const size_t first = opts_.prefill_chunk == 0
                             ? prefix
                             : std::min(opts_.prefill_chunk, prefix);
    const Rank r = rank_of(index);
    if (!reserve_with_preemption(
            r, s, [&] { return session.try_reserve_rows(first); })) {
      return false;
    }
    auto f = std::make_unique<Flight>();
    f->req = &req;
    f->result = &results_[index];
    f->index = index;
    f->rank = r;
    f->deadline_round = deadline_of(index);
    f->result->states = tensor::MatrixF(prefix + req.gen.max_new_tokens,
                                        req.gen.prefix.cols());
    if (req.gen.max_new_tokens > 0) {
      f->fed =
          tensor::MatrixF(req.gen.max_new_tokens, req.gen.prefix.cols());
    }
    f->result->admitted_round = round_;
    f->wall_admit = watch_->milliseconds();
    if (tel_ != nullptr) {
      const uint32_t wait = round_ - req.arrival_round;
      tel_->trace.record(TraceEventType::kAdmit, index, wait, prefix);
      tel_->queue_wait_rounds->observe(wait);
    }
    if (pcache_ != nullptr) {
      // Coordinator-side adoption: copy cached cross projections (or
      // project and publish them on a miss), adopt the longest cached
      // prompt prefix by refcount, and start the prefill cursor past the
      // adopted rows — all before the flight's first unit runs. Workers
      // never touch the cache, so the hit/miss sequence is identical in
      // stepped and threaded modes. begin_sequence keeps the rows just
      // reserved, and adoption itself never takes pool blocks.
      f->prefill_pos = session.prefill_begin_cached(
          *pcache_, req.gen.prefix, *req.gen.memory, f->result->states);
      f->needs_begin = false;
    }
    seats_[s] = std::move(f);
    progressed_ = true;
    return true;
  }

  /// Could an uncredited take of `blocks` blocks (or the preemption
  /// retry loop behind it) possibly succeed right now? Exact under the
  /// coordinator's pool serialization — units never touch the pool —
  /// except for armed failpoints, which the real take still consults.
  bool reserve_could_succeed(size_t blocks, const Rank& r,
                             size_t exclude) const {
    // Cold prefix-cache blocks count as available: the pool's reclaim
    // hook frees them before a take fails, so admission reclaims the
    // cache before it would shed or preempt live work.
    const size_t reclaimable =
        pcache_ != nullptr ? pcache_->reclaimable_blocks() : 0;
    if (blocks <= pool_.uncommitted_free_blocks() + reclaimable) return true;
    return opts_.preemption && find_victim(r, exclude) != SIZE_MAX;
  }

  bool try_restore(size_t best, size_t s) {
    // The Flight lives on the heap behind waiting_[best].flight, so it
    // is stable across waiting_ growth; the Waiting slot itself is only
    // re-touched (by index) for the final hand-off.
    Flight& f = *waiting_[best].flight;
    GenerationSession& session = *sessions_[s];
    uint64_t restore_path = 0;  // 0 swap-in, 1 re-prefill, 2 replay
    // The cross K/V is a pure function of the encoder memory: recompute
    // it fresh (deterministic, so bit-identical to the original). It is
    // also the expensive part of a restore attempt — a full projection
    // over the memory — so every path below secures (or at least
    // probes) the block reservation FIRST, keeping a failed attempt
    // cheap under sustained pool contention.
    if (f.swapped) {
      // prefill_begin must precede try_swap_in (begin_sequence rewinds
      // the cached length that swap-in re-establishes), so probe the
      // pool before paying for the projection. The probe can only
      // misfire on an armed failpoint, which the take below consults.
      const size_t blocks = f.swap_data.size() / pool_.block_bytes();
      if (!reserve_could_succeed(blocks, f.rank, s)) return false;
      if (pcache_ != nullptr) {
        // Swap-in brings the self rows back byte-wise; only the cross
        // projections are owed, and the cache usually has them.
        session.prefill_begin_cross(*pcache_, *f.req->gen.memory, nullptr);
      } else {
        session.prefill_begin(*f.req->gen.memory, nullptr);
      }
      // Rescatter the spilled block bytes — byte-exact, including the
      // partial tail block.
      if (!reserve_with_preemption(f.rank, s, [&] {
            return session.try_swap_in(f.swap_data, f.swap_rows);
          })) {
        return false;
      }
      if (tel_ != nullptr) {
        tel_->trace.record(TraceEventType::kSwapIn, f.index,
                           f.swap_data.size(), f.swap_rows);
      }
      f.swapped = false;
      --swapped_count_;
      f.swap_data.clear();
      f.swap_data.shrink_to_fit();
    } else if (f.prefilling) {
      restore_path = 1;
      // Drop-and-recompute of a mid-prefill victim: restart the prompt
      // (rows are rewritten identically — chunked prefill is exact).
      // Reserving before prefill_begin is safe here: begin_sequence
      // keeps held blocks, and prefill_begin never touches the pool.
      const size_t prefix = f.req->gen.prefix.rows();
      const size_t first = opts_.prefill_chunk == 0
                               ? prefix
                               : std::min(opts_.prefill_chunk, prefix);
      if (!reserve_with_preemption(
              f.rank, s, [&] { return session.try_reserve_rows(first); })) {
        return false;
      }
      if (pcache_ != nullptr) {
        // The restart can adopt cached blocks (possibly MORE than the
        // victim had prefilled before eviction — the published prefix
        // may have grown since). Adopted states are bit-identical to
        // the rows already recorded, so overwriting them is a no-op.
        f.prefill_pos = session.prefill_begin_cached(
            *pcache_, f.req->gen.prefix, *f.req->gen.memory,
            f.result->states);
      } else {
        session.prefill_begin(*f.req->gen.memory, nullptr);
        f.prefill_pos = 0;
      }
    } else {
      restore_path = 2;
      // Drop-and-recompute: re-prefill the prompt plus every decode
      // input already fed. Chunk invariance (PR 4) makes the replayed
      // K/V bytes identical to the incremental original; the pending
      // `next` token and recorded states survive in CPU memory.
      const size_t cached = f.req->gen.prefix.rows() + f.result->steps;
      if (!reserve_with_preemption(
              f.rank, s, [&] { return session.try_reserve_rows(cached); })) {
        return false;
      }
      size_t adopted = 0;
      if (pcache_ != nullptr) {
        // Adoption trims the replay to the uncovered prompt tail (the
        // adopted states are bit-identical to the recorded rows, and
        // chunk invariance makes the tail replay exact on top of them).
        adopted = session.prefill_begin_cached(
            *pcache_, f.req->gen.prefix, *f.req->gen.memory,
            f.result->states);
      } else {
        session.prefill_begin(*f.req->gen.memory, nullptr);
      }
      const size_t prefix_rows = f.req->gen.prefix.rows();
      tensor::MatrixF scratch;
      if (adopted < prefix_rows) {
        session.prefill_rows(
            f.req->gen.prefix.slice_rows(adopted, prefix_rows - adopted),
            scratch, nullptr);
      }
      if (f.result->steps > 0) {
        const auto fed = f.fed.slice_rows(0, f.result->steps);
        session.prefill_rows(fed, scratch, nullptr);
      }
      stats_.replayed_rows += cached - adopted;  // rows actually re-run
    }
    f.needs_begin = false;
    f.stalled = false;
    ++cls(f.index).restores;
    if (tel_ != nullptr) {
      const uint32_t downtime = round_ - f.preempt_round;
      tel_->trace.record(TraceEventType::kRestore, f.index, downtime,
                         restore_path);
      tel_->preempt_downtime_rounds->observe(downtime);
    }
    seats_[s] = std::move(waiting_[best].flight);
    progressed_ = true;
    return true;
  }

  /// Pre-reserves every runnable seat's rows for this round's unit (so
  /// units never touch the pool), then runs the units — serially in
  /// seat order, or fanned out over the worker pool behind the module
  /// gates. Pool order is coordinator-only either way: bit-identical.
  void dispatch_units() {
    // Reserve each runnable seat's rows in RANK order, best first: a
    // growth that comes up short may preempt strictly worse seats, and
    // those have provably not reserved yet (reserved seats are immune —
    // see find_victim — so a unit in runnable_ can never lose its seat
    // before it runs).
    runnable_.clear();
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] != nullptr && !seats_[s]->done && !seats_[s]->error) {
        runnable_.push_back(s);
      }
    }
    std::sort(runnable_.begin(), runnable_.end(), [&](size_t a, size_t b) {
      return seats_[a]->rank < seats_[b]->rank;
    });
    size_t ready = 0;
    for (const size_t s : runnable_) {
      // A better-ranked seat earlier in this pass may have evicted us.
      if (seats_[s] == nullptr) continue;
      Flight& f = *seats_[s];
      const size_t prefix = f.req->gen.prefix.rows();
      size_t target;
      if (f.prefilling) {
        const size_t n =
            opts_.prefill_chunk == 0
                ? prefix - f.prefill_pos
                : std::min(opts_.prefill_chunk, prefix - f.prefill_pos);
        target = f.prefill_pos + n;
      } else {
        target = prefix + f.result->steps + 1;
      }
      if (!reserve_with_preemption(f.rank, s, [&] {
            return sessions_[s]->try_reserve_rows(target);
          })) {
        if (!f.stalled) {  // one wait per stall episode
          ++cls(f.index).kv_block_waits;
          f.stalled = true;
        }
        continue;
      }
      f.stalled = false;
      f.unit_ready = true;
      runnable_[ready++] = s;
      if (f.prefilling) {
        ++stats_.prefill_chunks;
        if (tel_ != nullptr) {
          tel_->trace.record(TraceEventType::kPrefillChunk, f.index, target,
                             0);
        }
      } else {
        ++stats_.decode_steps;
        if (tel_ != nullptr) {
          tel_->trace.record(TraceEventType::kDecodeStep, f.index,
                             f.result->steps, 0);
          if (f.has_decoded) {
            tel_->token_gap_rounds->observe(round_ - f.last_decode_round);
          }
          f.has_decoded = true;
          f.last_decode_round = round_;
        }
      }
    }
    runnable_.resize(ready);
    if (runnable_.empty()) return;
    progressed_ = true;
    if (workers_ == nullptr) {
      for (const size_t s : runnable_) {
        run_unit(*seats_[s], *sessions_[s], nullptr, opts_.prefill_chunk);
      }
    } else {
      for (const size_t s : runnable_) {
        Flight* f = seats_[s].get();
        GenerationSession* session = sessions_[s].get();
        workers_->submit([this, f, session] {
          run_unit(*f, *session, gate_.get(), opts_.prefill_chunk);
        });
      }
      workers_->wait_idle();
    }
    for (const size_t s : runnable_) {
      Flight& f = *seats_[s];
      f.unit_ready = false;
      // TTFT: prefilling flips true -> false exactly once per request (a
      // mid-prefill recompute keeps it true, post-prefill paths never
      // reset it), at the unit that computed the last prompt row — the
      // state the first generated token is drawn from.
      if (tel_ != nullptr && !f.prefilling && !f.ttft_recorded) {
        f.ttft_recorded = true;
        tel_->ttft_rounds->observe(round_ - f.req->arrival_round);
        tel_->ttft_us->observe(static_cast<uint64_t>(
            (watch_->milliseconds() - f.wall_admit) * 1e3));
      }
    }
  }

  void handle_unit_errors() {
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] == nullptr || !seats_[s]->error) continue;
      Flight& f = *seats_[s];
      // Units run against pre-reserved rows, so pool exhaustion here
      // would be an engine invariant slipping — keep it visible as a
      // capacity shed. Anything else is a caller fault (typically a
      // throwing next_token callback) and retires kFailed so caller
      // bugs never masquerade as pool pressure in outcomes or stats.
      TrafficOutcome outcome = TrafficOutcome::kFailed;
      std::string reason = "unit failed: ";
      try {
        std::rethrow_exception(f.error);
      } catch (const KvBlockExhausted& e) {
        outcome = TrafficOutcome::kShedCapacity;
        reason += e.what();
      } catch (const std::exception& e) {
        reason += e.what();
      } catch (...) {
        reason += "unknown exception";
      }
      retire(f.index, outcome, std::move(reason), &f);
      clear_seat(s);
    }
  }

  /// Coordinator-side publication: every prompt that finished prefilling
  /// this round is handed to the prefix cache in seat order, so the
  /// radix index grows identically in stepped and threaded runs. Runs
  /// after unit errors are cleared and before retire_done, so a prompt
  /// that completes and retires in the same round is still captured
  /// (its blocks outlive the seat via the cache's references).
  void publish_prefixes() {
    if (pcache_ == nullptr) return;
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] == nullptr) continue;
      Flight& f = *seats_[s];
      if (f.prefilling || f.published) continue;
      sessions_[s]->publish_prefix(*pcache_, f.req->gen.prefix,
                                   *f.req->gen.memory, f.result->states);
      f.published = true;
    }
  }

  void retire_done() {
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] == nullptr || !seats_[s]->done) continue;
      Flight& f = *seats_[s];
      retire(f.index,
             f.result->deadline_missed ? TrafficOutcome::kCompletedLate
                                       : TrafficOutcome::kCompleted,
             "", &f);
      clear_seat(s);
    }
  }

  /// Liveness backstop: after stall_limit consecutive rounds without
  /// progress (reachable only under forced exhaustion or with
  /// preemption disabled), shed the worst-ranked request anywhere so
  /// the run always terminates.
  void track_stall() {
    if (progressed_) {
      stall_streak_ = 0;
      return;
    }
    if (++stall_streak_ <= opts_.stall_limit) return;
    size_t worst_seat = SIZE_MAX;
    size_t worst_wait = SIZE_MAX;
    Rank worst;
    bool have = false;
    for (size_t s = 0; s < seats_.size(); ++s) {
      if (seats_[s] == nullptr) continue;
      if (!have || worst < seats_[s]->rank) {
        worst = seats_[s]->rank;
        worst_seat = s;
        worst_wait = SIZE_MAX;
        have = true;
      }
    }
    for (size_t wi = 0; wi < waiting_.size(); ++wi) {
      const Rank r = rank_of(waiting_[wi].index);
      if (!have || worst < r) {
        worst = r;
        worst_wait = wi;
        worst_seat = SIZE_MAX;
        have = true;
      }
    }
    if (!have) return;  // nothing left to shed; arrivals will progress
    const char* reason = "stall limit: KV pool cannot serve the working set";
    if (worst_seat != SIZE_MAX) {
      retire(seats_[worst_seat]->index, TrafficOutcome::kShedCapacity, reason,
             seats_[worst_seat].get());
      clear_seat(worst_seat);
    } else {
      retire(waiting_[worst_wait].index, TrafficOutcome::kShedCapacity, reason,
             waiting_[worst_wait].flight.get());
      waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(worst_wait));
    }
    stall_streak_ = 0;
  }

  const accel::AccelConfig& config_;
  const accel::QuantizedDecoder& model_;
  const std::vector<TrafficRequest>& requests_;
  const TrafficOptions& opts_;
  KvBlockPool& pool_;
  PrefixCache* pcache_;  // null when the prefix cache is off
  std::vector<TrafficResult>& results_;
  SchedulerStats& stats_;
  Telemetry* tel_;  // null when unset or unconfigured (inert)

  std::vector<std::unique_ptr<GenerationSession>> sessions_;
  std::vector<std::unique_ptr<Flight>> seats_;
  std::vector<Waiting> waiting_;
  std::vector<uint32_t> arrival_order_;
  std::vector<size_t> runnable_;
  size_t next_arrival_ = 0;
  size_t swapped_count_ = 0;
  size_t finished_ = 0;
  size_t stall_streak_ = 0;
  uint32_t round_ = 0;
  bool progressed_ = false;
  util::Stopwatch* watch_ = nullptr;

  std::unique_ptr<ModuleSlots> mha_;
  std::unique_ptr<ModuleSlots> ffn_;
  std::unique_ptr<ModuleGate> gate_;
  std::unique_ptr<util::ThreadPool> workers_;
};

}  // namespace

// --- SchedulerStats serialization --------------------------------------------

namespace {

struct ClassField {
  const char* name;
  uint64_t TrafficClassStats::* ptr;
};

constexpr ClassField kClassFields[] = {
    {"submitted", &TrafficClassStats::submitted},
    {"completed", &TrafficClassStats::completed},
    {"completed_late", &TrafficClassStats::completed_late},
    {"shed_overload", &TrafficClassStats::shed_overload},
    {"shed_deadline", &TrafficClassStats::shed_deadline},
    {"shed_capacity", &TrafficClassStats::shed_capacity},
    {"cancelled", &TrafficClassStats::cancelled},
    {"failed", &TrafficClassStats::failed},
    {"preemptions", &TrafficClassStats::preemptions},
    {"swap_outs", &TrafficClassStats::swap_outs},
    {"recomputes", &TrafficClassStats::recomputes},
    {"restores", &TrafficClassStats::restores},
    {"deadline_misses", &TrafficClassStats::deadline_misses},
    {"kv_block_waits", &TrafficClassStats::kv_block_waits},
};

}  // namespace

std::vector<StatSample> flatten_stats(const SchedulerStats& stats) {
  std::vector<StatSample> out;
  out.reserve(std::size(kClassFields) * (kTrafficClasses + 1) + 16);
  const auto push = [&](std::string metric, double value,
                        const char* unit = "count") {
    out.push_back(StatSample{std::move(metric), value, unit});
  };
  for (const ClassField& f : kClassFields) {
    push(f.name, static_cast<double>(stats.total(f.ptr)));
  }
  for (size_t c = 0; c < kTrafficClasses; ++c) {
    const std::string prefix =
        std::string(traffic_priority_name(static_cast<TrafficPriority>(c))) +
        ".";
    for (const ClassField& f : kClassFields) {
      push(prefix + f.name,
           static_cast<double>(stats.per_class[c].*(f.ptr)));
    }
  }
  push("rounds", static_cast<double>(stats.rounds), "rounds");
  push("decode_steps", static_cast<double>(stats.decode_steps));
  push("prefill_chunks", static_cast<double>(stats.prefill_chunks));
  push("replayed_rows", static_cast<double>(stats.replayed_rows), "rows");
  push("swap_bytes", static_cast<double>(stats.swap_bytes), "bytes");
  push("kv_blocks_peak", static_cast<double>(stats.kv_blocks_peak), "blocks");
  push("failpoint_trips", static_cast<double>(stats.failpoint_trips));
  push("prefix_hits", static_cast<double>(stats.prefix_hits));
  push("prefix_misses", static_cast<double>(stats.prefix_misses));
  push("prefix_rows_adopted", static_cast<double>(stats.prefix_rows_adopted),
       "rows");
  push("prefix_bytes_saved", static_cast<double>(stats.prefix_bytes_saved),
       "bytes");
  push("cross_kv_hits", static_cast<double>(stats.cross_kv_hits));
  push("cross_kv_misses", static_cast<double>(stats.cross_kv_misses));
  push("prefix_evictions", static_cast<double>(stats.prefix_evictions));
  push("max_active", static_cast<double>(stats.max_active));
  push("wall_ms", stats.wall_ms, "ms");
  return out;
}

std::string scheduler_stats_json(const SchedulerStats& stats) {
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const StatSample& s : flatten_stats(stats)) {
    if (!first) out += ",";
    first = false;
    out += "\"" + s.metric + "\":";
    if (s.value == std::floor(s.value) && std::abs(s.value) < 9.0e15) {
      std::snprintf(buf, sizeof buf, "%.0f", s.value);
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", s.value);
    }
    out += buf;
  }
  out += "}";
  return out;
}

// --- TrafficEngine -----------------------------------------------------------

TrafficEngine::TrafficEngine(accel::AccelConfig config,
                             accel::QuantizedDecoder model)
    : config_(std::move(config)), model_(std::move(model)) {
  config_.validate();
  accel::validate_runtime(config_.synth, model_.config);
}

std::vector<TrafficResult> TrafficEngine::run(
    const std::vector<TrafficRequest>& requests, const TrafficOptions& opts) {
  if (opts.slots == 0) {
    throw std::invalid_argument("TrafficEngine: zero slots");
  }
  if (opts.threads == 0) {
    throw std::invalid_argument("TrafficEngine: zero threads");
  }
  if (opts.kv_pool == nullptr &&
      (opts.kv_pool_blocks == 0 || opts.kv_block_rows == 0)) {
    throw std::invalid_argument(
        "TrafficEngine: a shared paged pool is required (kv_pool or "
        "kv_pool_blocks + kv_block_rows)");
  }
  for (const TrafficRequest& r : requests) {
    validate_traffic_request(r, model_.config, config_.synth);
  }

  KvBlockPool owned_pool;
  KvBlockPool* pool = opts.kv_pool;
  if (pool == nullptr) {
    const ref::ModelConfig& mc = model_.config;
    // Storage-aware row width (packed fp4 rows are half as wide); must
    // match what each seat's KvCache derives for the same format.
    owned_pool.configure(
        opts.kv_pool_blocks, opts.kv_block_rows,
        mc.num_layers * mc.num_heads * 2 *
            numeric::kv_storage_bytes(mc.head_dim(), opts.kv_storage));
    pool = &owned_pool;
  }
  if (!pool->configured()) {
    throw std::invalid_argument("TrafficEngine: pool not configured");
  }

  std::vector<TrafficResult> results(requests.size());
  last_run_ = SchedulerStats{};
  if (requests.empty()) return results;

  // The cache is declared after any owned pool (destroyed first) and the
  // guard after the cache (runs first): even on a throwing run the hook
  // unbinds before the cache dies and cached block refs drop before the
  // pool does.
  PrefixCache prefix_cache;
  struct CacheGuard {
    KvBlockPool* pool = nullptr;
    PrefixCache* cache = nullptr;
    ~CacheGuard() {
      if (pool != nullptr) pool->set_reclaim_hook(nullptr);
      if (cache != nullptr) cache->clear();
    }
  } cache_guard;
  PrefixCache* pcache = nullptr;
  if (opts.prefix_cache) {
    prefix_cache.configure(*pool, pool->block_rows(), model_.config.d_model,
                           PrefixCache::Options{.storage = opts.kv_storage});
    pool->set_reclaim_hook(
        [&prefix_cache](size_t want) { return prefix_cache.reclaim(want); });
    cache_guard.pool = pool;
    cache_guard.cache = &prefix_cache;
    pcache = &prefix_cache;
  }

  Coordinator coord(config_, model_, requests, opts, *pool, pcache, results,
                    last_run_);
  coord.run();
  if (pcache != nullptr) {
    const PrefixCacheStats ps = pcache->stats();
    last_run_.prefix_hits = ps.prefix_hits;
    last_run_.prefix_misses = ps.prefix_misses;
    last_run_.prefix_rows_adopted = ps.rows_adopted;
    last_run_.prefix_bytes_saved = ps.bytes_adopted + ps.cross_bytes_reused;
    last_run_.cross_kv_hits = ps.cross_hits;
    last_run_.cross_kv_misses = ps.cross_misses;
    last_run_.prefix_evictions = ps.evictions;
  }
  return results;
}

// --- synthetic traces --------------------------------------------------------

std::vector<TraceItem> generate_trace(const TraceConfig& config) {
  if (config.max_prompt < config.min_prompt || config.min_prompt == 0 ||
      config.max_new < config.min_new) {
    throw std::invalid_argument("generate_trace: bad length bounds");
  }
  if (config.mean_interarrival_rounds <= 0.0 || config.burst_factor <= 0.0 ||
      config.heavy_tail_alpha <= 0.0) {
    throw std::invalid_argument("generate_trace: bad rate parameters");
  }
  if (config.shared_prefix_count > 0 && config.shared_prefix_rows == 0) {
    throw std::invalid_argument(
        "generate_trace: shared_prefix_count needs shared_prefix_rows > 0");
  }
  util::Xoshiro256 rng(config.seed);

  // Bounded Pareto via inverse-CDF: the classic heavy-tailed length
  // model (most requests short, a fat tail of long ones).
  const auto pareto = [&](uint32_t lo, uint32_t hi) -> uint32_t {
    if (hi <= lo) return lo;
    const double a = config.heavy_tail_alpha;
    const double l = lo;
    const double h = hi;
    const double u = rng.next_double();
    const double x =
        l / std::pow(1.0 - u * (1.0 - std::pow(l / h, a)), 1.0 / a);
    return std::clamp(static_cast<uint32_t>(x), lo, hi);
  };

  std::vector<TraceItem> items(config.requests);
  double t = 0.0;
  bool burst = false;
  for (TraceItem& item : items) {
    // Markov-modulated Poisson arrivals: exponential interarrivals whose
    // rate jumps by burst_factor while the burst state is on.
    if (rng.next_double() < config.burst_prob) burst = !burst;
    const double mean =
        config.mean_interarrival_rounds / (burst ? config.burst_factor : 1.0);
    t += -mean * std::log(1.0 - rng.next_double());
    item.arrival_round = static_cast<uint32_t>(t);
    item.prompt_rows = pareto(config.min_prompt, config.max_prompt);
    if (config.shared_prefix_count > 0) {
      // Storm mode: a uniformly drawn shared system prompt plus the
      // bounded-Pareto draw as the UNIQUE tail, so every prompt strictly
      // extends its shared prefix (adoption always leaves tail rows).
      item.shared_prefix_id =
          static_cast<uint32_t>(rng.next() % config.shared_prefix_count);
      item.prompt_rows += config.shared_prefix_rows;
    }
    item.max_new = pareto(config.min_new, config.max_new);
    const double pu = rng.next_double();
    item.priority =
        pu < config.interactive_fraction ? TrafficPriority::kInteractive
        : pu < config.interactive_fraction + config.batch_fraction
            ? TrafficPriority::kBatch
            : TrafficPriority::kStandard;
    if (rng.next_double() < config.deadline_fraction) {
      item.deadline_rounds =
          static_cast<uint32_t>(config.deadline_slack *
                                (item.prompt_rows + item.max_new)) +
          1;
      item.cancel_on_deadline =
          rng.next_double() < config.cancel_on_deadline_fraction;
    }
    const double mu = rng.next_double();
    item.beam = mu < config.beam_fraction;
    item.sampled =
        !item.beam && mu < config.beam_fraction + config.sampled_fraction;
    item.policy_seed = rng.next();
  }
  return items;
}

}  // namespace protea::runtime
