// Module-slot semaphores shared by the batched serving scheduler and the
// continuous-batching generation engine.
//
// ProTEA's two processing modules (Fig. 3/4) are physically distinct
// engine groups, so while the FFN module works on sequence i the MHA
// module can already process sequence i+1. ModuleSlots is the counting
// semaphore guarding one module's concurrent stage slots; ModuleGate
// adapts a pair of them to the StageGate hook the unified forward /
// decode loops bracket their stages with. slots = 1 per module is the
// paper's single two-stage accelerator; slots = threads models a
// deployment replicating the module groups per worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "runtime/layer_ops.hpp"

namespace protea::runtime {

/// Counting semaphore guarding a module's concurrent stage slots.
class ModuleSlots {
 public:
  explicit ModuleSlots(uint32_t count) : count_(count) {}

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }

  void release() {
    {
      const std::lock_guard lock(mutex_);
      ++count_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  uint32_t count_;
};

/// Brackets the forward/decode loops' stages with the module semaphores —
/// this is where the two-stage overlap physically happens: a worker
/// holding the FFN slot for sequence i does not block another worker
/// taking the MHA slot for sequence i+1.
class ModuleGate final : public StageGate {
 public:
  ModuleGate(ModuleSlots& mha, ModuleSlots& ffn) : mha_(mha), ffn_(ffn) {}

  void enter(Stage stage) override {
    (stage == Stage::kMha ? mha_ : ffn_).acquire();
  }
  void exit(Stage stage) override {
    (stage == Stage::kMha ? mha_ : ffn_).release();
  }

 private:
  ModuleSlots& mha_;
  ModuleSlots& ffn_;
};

}  // namespace protea::runtime
