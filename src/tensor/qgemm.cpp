#include "tensor/qgemm.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "tensor/gemm_detail.hpp"
#include "util/thread_pool.hpp"

namespace protea::tensor {
namespace {

std::unique_ptr<util::ThreadPool>& default_pool_storage() {
  static std::unique_ptr<util::ThreadPool> pool;
  return pool;
}

}  // namespace

void qgemm(const MatrixI8& a, const MatrixI8& b, MatrixI32& c,
           util::ThreadPool* pool) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("qgemm: inner dimension mismatch");
  }
  detail::gemm_driver<int8_t, int16_t, int32_t>(
      a, b.cols(), c, pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_b_block(b, k0, kc, b.cols(), dst);
      });
}

void qgemm_bt(const MatrixI8& a, const MatrixI8& bt, MatrixI32& c,
              util::ThreadPool* pool) {
  if (a.cols() != bt.cols()) {
    throw std::invalid_argument("qgemm_bt: inner dimension mismatch");
  }
  detail::gemm_driver<int8_t, int16_t, int32_t>(
      a, bt.rows(), c, pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_bt_block(bt, k0, kc, bt.rows(), dst);
      });
}

size_t qgemm_pack_elems(size_t n) { return detail::pack_b_elems(n); }

namespace {

void check_into_args(ConstMatrixViewI8 a, size_t b_k, size_t b_n,
                     MatrixViewI32 c, std::span<int8_t> pack_buf,
                     const char* name) {
  if (a.cols() != b_k) {
    throw std::invalid_argument(std::string(name) +
                                ": inner dimension mismatch");
  }
  if (c.rows() != a.rows() || c.cols() != b_n) {
    throw std::invalid_argument(std::string(name) +
                                ": output view shape mismatch");
  }
  if (pack_buf.size() < qgemm_pack_elems(b_n)) {
    throw std::invalid_argument(std::string(name) +
                                ": packing scratch too small");
  }
}

void check_span_list(const RowSpanListI8& list, const char* name) {
  size_t total = 0;
  for (const RowSpanI8& run : list.runs) total += run.rows;
  if (total != list.rows) {
    throw std::invalid_argument(std::string(name) +
                                ": span run rows do not sum to rows");
  }
  if (list.rows > 0 && list.row_stride < list.cols) {
    throw std::invalid_argument(std::string(name) +
                                ": span row stride below row width");
  }
}

}  // namespace

void qgemm_into(ConstMatrixViewI8 a, ConstMatrixViewI8 b, MatrixViewI32 c,
                std::span<int8_t> pack_buf, util::ThreadPool* pool) {
  check_into_args(a, b.rows(), b.cols(), c, pack_buf, "qgemm_into");
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), b.cols(), c.data(), pack_buf.data(),
      pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_b_block(b, k0, kc, b.cols(), dst);
      });
}

void qgemm_bt_into(ConstMatrixViewI8 a, ConstMatrixViewI8 bt, MatrixViewI32 c,
                   std::span<int8_t> pack_buf, util::ThreadPool* pool) {
  check_into_args(a, bt.cols(), bt.rows(), c, pack_buf, "qgemm_bt_into");
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), bt.rows(), c.data(), pack_buf.data(),
      pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_bt_block(bt, k0, kc, bt.rows(), dst);
      });
}

void qgemm_spans_into(ConstMatrixViewI8 a, const RowSpanListI8& b,
                      MatrixViewI32 c, std::span<int8_t> pack_buf,
                      util::ThreadPool* pool) {
  check_into_args(a, b.rows, b.cols, c, pack_buf, "qgemm_spans_into");
  check_span_list(b, "qgemm_spans_into");
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), b.cols, c.data(), pack_buf.data(), pool,
      [&](size_t k0, size_t kc, int8_t* dst) {
        if (b.decode != nullptr) {
          detail::pack_b_block_spans_lut(b, k0, kc, b.cols, b.decode, dst);
        } else {
          detail::pack_b_block_spans(b, k0, kc, b.cols, dst);
        }
      });
}

void qgemm_bt_spans_into(ConstMatrixViewI8 a, const RowSpanListI8& bt,
                         MatrixViewI32 c, std::span<int8_t> pack_buf,
                         util::ThreadPool* pool) {
  check_into_args(a, bt.cols, bt.rows, c, pack_buf, "qgemm_bt_spans_into");
  check_span_list(bt, "qgemm_bt_spans_into");
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), bt.rows, c.data(), pack_buf.data(), pool,
      [&](size_t k0, size_t kc, int8_t* dst) {
        if (bt.decode != nullptr) {
          detail::pack_bt_block_spans_lut(bt, k0, kc, bt.rows, bt.decode,
                                          dst);
        } else {
          detail::pack_bt_block_spans(bt, k0, kc, bt.rows, dst);
        }
      });
}

void qgemm_lut_into(ConstMatrixViewI8 a, ConstMatrixViewI8 b,
                    const int8_t* lut, MatrixViewI32 c,
                    std::span<int8_t> pack_buf, util::ThreadPool* pool) {
  check_into_args(a, b.rows(), b.cols(), c, pack_buf, "qgemm_lut_into");
  if (lut == nullptr) {
    throw std::invalid_argument("qgemm_lut_into: null dequant table");
  }
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), b.cols(), c.data(), pack_buf.data(),
      pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_b_block_lut(b, k0, kc, b.cols(), lut, dst);
      });
}

void qgemm_bt_lut_into(ConstMatrixViewI8 a, ConstMatrixViewI8 bt,
                       const int8_t* lut, MatrixViewI32 c,
                       std::span<int8_t> pack_buf, util::ThreadPool* pool) {
  check_into_args(a, bt.cols(), bt.rows(), c, pack_buf, "qgemm_bt_lut_into");
  if (lut == nullptr) {
    throw std::invalid_argument("qgemm_bt_lut_into: null dequant table");
  }
  detail::gemm_driver_into<int8_t, int16_t, int32_t>(
      a.data(), a.rows(), a.cols(), bt.rows(), c.data(), pack_buf.data(),
      pool, [&](size_t k0, size_t kc, int8_t* dst) {
        detail::pack_bt_block_lut(bt, k0, kc, bt.rows(), lut, dst);
      });
}

void qgemm_naive(const MatrixI8& a, const MatrixI8& b, MatrixI32& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("qgemm_naive: inner dimension mismatch");
  }
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  c = MatrixI32(m, n, 0);
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    for (size_t j = 0; j < n; ++j) {
      int32_t sum = 0;
      for (size_t kk = 0; kk < k; ++kk) {
        sum += int32_t{arow[kk]} * b(kk, j);
      }
      c(i, j) = sum;
    }
  }
}

void qgemm_bt_naive(const MatrixI8& a, const MatrixI8& bt, MatrixI32& c) {
  if (a.cols() != bt.cols()) {
    throw std::invalid_argument("qgemm_bt_naive: inner dimension mismatch");
  }
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = bt.rows();
  c = MatrixI32(m, n, 0);
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    for (size_t j = 0; j < n; ++j) {
      const auto brow = bt.row(j);
      int32_t sum = 0;
      for (size_t kk = 0; kk < k; ++kk) {
        sum += int32_t{arow[kk]} * brow[kk];
      }
      c(i, j) = sum;
    }
  }
}

util::ThreadPool* qgemm_default_pool() { return default_pool_storage().get(); }

void qgemm_set_threads(size_t n) {
  auto& pool = default_pool_storage();
  if (n <= 1) {
    pool.reset();
  } else {
    pool = std::make_unique<util::ThreadPool>(n);
  }
}

}  // namespace protea::tensor
