// Row-major dense matrix, the common currency of the reference encoder,
// the accelerator simulator and the CPU baseline.
//
// Kept deliberately simple (CppCoreGuidelines P.11): owning container +
// cheap spans; numeric kernels live in tensor/ops.hpp. MatrixView is the
// non-owning twin the runtime workspace arena hands out: same accessors,
// storage owned elsewhere (an arena block or a Matrix).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace protea::tensor {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(size_t rows, size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(size_t rows, size_t cols, std::vector<T> data) {
    if (data.size() != rows * cols) {
      throw std::invalid_argument("Matrix::from_rows: size mismatch");
    }
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<T> row(size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Column slice [col0, col0+ncols) copied into a new matrix.
  Matrix slice_cols(size_t col0, size_t ncols) const {
    if (col0 + ncols > cols_) {
      throw std::out_of_range("Matrix::slice_cols: out of range");
    }
    Matrix out(rows_, ncols);
    for (size_t r = 0; r < rows_; ++r) {
      for (size_t c = 0; c < ncols; ++c) out(r, c) = (*this)(r, col0 + c);
    }
    return out;
  }

  /// Row slice [row0, row0+nrows) copied into a new matrix.
  Matrix slice_rows(size_t row0, size_t nrows) const {
    if (row0 + nrows > rows_) {
      throw std::out_of_range("Matrix::slice_rows: out of range");
    }
    Matrix out(nrows, cols_);
    for (size_t r = 0; r < nrows; ++r) {
      for (size_t c = 0; c < cols_; ++c) out(r, c) = (*this)(row0 + r, c);
    }
    return out;
  }

  bool operator==(const Matrix&) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<int8_t>;
using MatrixI32 = Matrix<int32_t>;

/// Non-owning row-major view. `T` may be const-qualified for read-only
/// views; a mutable view and the owning Matrix convert implicitly.
template <typename T>
class MatrixView {
 public:
  using value_type = std::remove_const_t<T>;

  MatrixView() = default;

  MatrixView(T* data, size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(data) {}

  MatrixView(Matrix<value_type>& m)  // NOLINT(google-explicit-constructor)
    requires(!std::is_const_v<T>)
      : MatrixView(m.data(), m.rows(), m.cols()) {}

  MatrixView(const Matrix<value_type>& m)  // NOLINT
    requires(std::is_const_v<T>)
      : MatrixView(m.data(), m.rows(), m.cols()) {}

  template <typename U>
    requires(std::is_const_v<T> && std::is_same_v<U, value_type>)
  MatrixView(MatrixView<U> other)  // NOLINT(google-explicit-constructor)
      : MatrixView(other.data(), other.rows(), other.cols()) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  T& operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<T> row(size_t r) const {
    assert(r < rows_);
    return {data_ + r * cols_, cols_};
  }

  std::span<T> flat() const { return {data_, rows_ * cols_}; }
  T* data() const { return data_; }

  void fill(value_type value) const
    requires(!std::is_const_v<T>)
  {
    std::fill(data_, data_ + rows_ * cols_, value);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  T* data_ = nullptr;
};

using MatrixViewF = MatrixView<float>;
using MatrixViewI8 = MatrixView<int8_t>;
using MatrixViewI32 = MatrixView<int32_t>;
using ConstMatrixViewF = MatrixView<const float>;
using ConstMatrixViewI8 = MatrixView<const int8_t>;
using ConstMatrixViewI32 = MatrixView<const int32_t>;

/// One run of consecutive rows of a block-strided int8 operand: `rows`
/// rows starting at `base`. Row geometry (element count and stride) is
/// shared across runs and lives on the RowSpanListI8 that owns the run.
struct RowSpanI8 {
  const int8_t* base = nullptr;
  size_t rows = 0;
};

/// A logical (rows x cols) int8 matrix stored as a sequence of row runs —
/// the read view a paged KV block table exposes without gathering into
/// contiguous scratch. Each row is `cols` contiguous elements; consecutive
/// rows within a run are `row_stride` elements apart (>= cols, so rows of
/// a wider record — e.g. a pooled KV token row — can be viewed in place).
struct RowSpanListI8 {
  std::span<const RowSpanI8> runs;
  size_t rows = 0;        // total rows across all runs
  size_t cols = 0;        // elements per row
  size_t row_stride = 0;  // elements between consecutive rows in a run
  /// Optional 256-entry dequant table: when set, the spanned bytes are
  /// stored codes (e.g. fp8) and every element reads as
  /// `decode[uint8_t(byte)]`. The GEMM pack stage applies it while
  /// packing, fusing dequant into the one pass that already touches
  /// each byte; nullptr means the bytes ARE int8 values.
  const int8_t* decode = nullptr;
};

/// Deep copy of a view into a fresh owning Matrix (trace capture).
template <typename T>
Matrix<std::remove_const_t<T>> to_matrix(MatrixView<T> view) {
  Matrix<std::remove_const_t<T>> out(view.rows(), view.cols());
  std::copy(view.data(), view.data() + view.size(), out.data());
  return out;
}

}  // namespace protea::tensor
