// Packed, register-blocked int8 GEMM — the kernel layer every compute
// engine in the simulator bottoms out in.
//
// The paper's datapath (§IV, Figs. 5-6) is tiled int8 x int8 -> int32
// accumulation; this layer practices the same idiom on the host CPU:
//
//   * operand panels are packed into contiguous tile buffers so the
//     micro-kernel streams both inputs with unit stride (the B^T variant
//     transposes during packing, which is what makes the engines'
//     transposed-weight layout free);
//   * a kMr x kNr block of int32 accumulators is held in registers while
//     the packed panels stream through, with operands widened to int16 so
//     the inner loop auto-vectorizes to widening multiply-adds;
//   * K is blocked at kKc so one A panel + one B panel stay cache-resident.
//
// Integer accumulation is exact, so any packing/blocking/threading order
// produces bit-identical int32 sums — the naive references below are
// retained to verify exactly that (and as the bench speedup baseline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace protea::util {
class ThreadPool;
}

namespace protea::tensor {

// Block sizes (register block kGemmMr x kGemmNr, K block kGemmKc) live in
// tensor/gemm_detail.hpp, shared with the float twin in ops.cpp.

/// c(i,j) = sum_k a(i,k) * b(k,j). a is (m x k) int8, b is (k x n) int8,
/// c is resized to (m x n) int32. Row panels are distributed over `pool`
/// when given; the result is identical for any thread count.
void qgemm(const MatrixI8& a, const MatrixI8& b, MatrixI32& c,
           util::ThreadPool* pool = nullptr);

/// c = a * bt^T where bt is (n x k) — the transposed-weight layout the
/// engines store (QHeadWeights::wqt, projection weights, K in Q.K^T).
void qgemm_bt(const MatrixI8& a, const MatrixI8& bt, MatrixI32& c,
              util::ThreadPool* pool = nullptr);

/// Packed-B scratch elements qgemm_into/qgemm_bt_into need for an
/// `n`-column product (one K block of zero-padded column panels).
size_t qgemm_pack_elems(size_t n);

/// Allocation-free twins for the runtime's steady-state forward path:
/// `c` is a preallocated (a.rows x n) view and `pack_buf` holds at least
/// qgemm_pack_elems(n) elements — both normally arena-backed. Results are
/// bit-identical to the owning variants for any pool.
void qgemm_into(ConstMatrixViewI8 a, ConstMatrixViewI8 b, MatrixViewI32 c,
                std::span<int8_t> pack_buf, util::ThreadPool* pool = nullptr);
void qgemm_bt_into(ConstMatrixViewI8 a, ConstMatrixViewI8 bt, MatrixViewI32 c,
                   std::span<int8_t> pack_buf,
                   util::ThreadPool* pool = nullptr);

/// Block-strided twins: the B operand is a RowSpanListI8 — a logical
/// matrix stored as row runs resident in (possibly non-contiguous) block
/// storage, e.g. a paged KV cache's block table. Packing already streams
/// B panel-by-panel, so the panels read straight from the runs; the
/// packed layout and micro-kernel are unchanged, making the result
/// bit-identical to gathering the runs into a contiguous matrix first.
/// qgemm_spans_into treats the list as the (k x n) B (c = a * b);
/// qgemm_bt_spans_into as the (n x k) B^T (c = a * bt^T).
void qgemm_spans_into(ConstMatrixViewI8 a, const RowSpanListI8& b,
                      MatrixViewI32 c, std::span<int8_t> pack_buf,
                      util::ThreadPool* pool = nullptr);
void qgemm_bt_spans_into(ConstMatrixViewI8 a, const RowSpanListI8& bt,
                         MatrixViewI32 c, std::span<int8_t> pack_buf,
                         util::ThreadPool* pool = nullptr);

/// Quantized-weight twins: the B operand holds stored codes (e.g. fp8
/// bytes — see numeric/fp8.hpp's KvCodec) and `lut` is the 256-entry
/// code -> int8 dequant table, applied while packing. Accumulation stays
/// int16/int32 widening, so the result is bit-identical to decoding B
/// into an int8 matrix first and running qgemm_into on it — the fused
/// path just never materializes the decoded matrix. The span variants
/// above dispatch to the same fused packs when RowSpanListI8::decode is
/// set.
void qgemm_lut_into(ConstMatrixViewI8 a, ConstMatrixViewI8 b,
                    const int8_t* lut, MatrixViewI32 c,
                    std::span<int8_t> pack_buf,
                    util::ThreadPool* pool = nullptr);
void qgemm_bt_lut_into(ConstMatrixViewI8 a, ConstMatrixViewI8 bt,
                       const int8_t* lut, MatrixViewI32 c,
                       std::span<int8_t> pack_buf,
                       util::ThreadPool* pool = nullptr);

/// Naive triple-loop references (the seed's original loop nests), retained
/// as the test oracle and the bench speedup baseline.
void qgemm_naive(const MatrixI8& a, const MatrixI8& b, MatrixI32& c);
void qgemm_bt_naive(const MatrixI8& a, const MatrixI8& bt, MatrixI32& c);

/// Shared kernel pool the engines route their GEMMs through. Returns
/// nullptr (serial execution) until qgemm_set_threads(n >= 2) is called.
util::ThreadPool* qgemm_default_pool();

/// Configures the shared kernel pool: 0 or 1 disables threading. Not
/// thread-safe against concurrent qgemm calls; intended for bench/example
/// setup code.
void qgemm_set_threads(size_t n);

}  // namespace protea::tensor
