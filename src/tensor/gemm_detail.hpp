// Shared packing / register-blocking / K-blocking machinery behind the
// int8 GEMM kernels (qgemm.cpp) and their float twin (ops.cpp).
//
// One template on (element, widened-multiply, accumulator) types keeps the
// packing layout and blocking parameters in a single place: int8 kernels
// instantiate <int8_t, int16_t, int32_t> (widening so the inner loop
// auto-vectorizes to widening multiply-adds), float kernels
// <float, float, float>.
//
// Accumulation discipline: each output element is produced by exactly one
// row-panel task and accumulated through a single ascending-k chain (K
// blocks in order, one scalar accumulator per element inside the micro
// kernel). For integer types that makes any blocking bit-identical to the
// naive loop; for float it makes per-element rounding independent of row
// partitioning, so results match the serial kernel at any thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/math_util.hpp"
#include "util/thread_pool.hpp"

namespace protea::tensor::detail {

inline constexpr size_t kGemmMr = 4;    // micro-kernel rows (A panel width)
inline constexpr size_t kGemmNr = 8;    // micro-kernel cols (B panel width)
inline constexpr size_t kGemmKc = 256;  // K cache block

/// Elements a packed-B scratch buffer must hold for an (n)-column operand:
/// one K block's worth of column panels, zero-padded to kGemmNr.
inline size_t pack_b_elems(size_t n) {
  return util::ceil_div(n, kGemmNr) * kGemmNr * kGemmKc;
}

/// A panel: kGemmMr rows interleaved column-major, zero-padded to kGemmMr
/// so the micro-kernel never branches on the ragged edge. `a`/`lda` address
/// the full operand; works for owning matrices and arena views alike.
template <typename T>
void pack_a_panel(const T* a, size_t lda, size_t i0, size_t h, size_t k0,
                  size_t kc, T* dst) {
  const T* base = a + i0 * lda + k0;
  for (size_t p = 0; p < kc; ++p) {
    for (size_t i = 0; i < kGemmMr; ++i) {
      dst[p * kGemmMr + i] = i < h ? base[i * lda + p] : T{};
    }
  }
}

/// B panels for a K block, normal (k x n) layout: panel cp holds columns
/// [cp*kGemmNr, ...) interleaved as [p][j], zero-padded to kGemmNr.
/// `M` is any row-major matrix-like type (Matrix or MatrixView).
template <typename M, typename T>
void pack_b_block(const M& b, size_t k0, size_t kc, size_t n, T* dst) {
  const size_t ldb = b.cols();
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    T* panel = dst + cp * kc * kGemmNr;
    const T* src = b.data() + k0 * ldb + j0;
    for (size_t p = 0; p < kc; ++p) {
      for (size_t j = 0; j < w; ++j) panel[p * kGemmNr + j] = src[j];
      for (size_t j = w; j < kGemmNr; ++j) panel[p * kGemmNr + j] = T{};
      src += ldb;
    }
  }
}

/// Same packed layout from a transposed (n x k) operand — the transpose
/// happens here, during packing, so the micro-kernel is shared.
template <typename M, typename T>
void pack_bt_block(const M& bt, size_t k0, size_t kc, size_t n, T* dst) {
  const size_t ldb = bt.cols();
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    T* panel = dst + cp * kc * kGemmNr;
    for (size_t j = 0; j < w; ++j) {
      const T* src = bt.data() + (j0 + j) * ldb + k0;
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = src[p];
    }
    for (size_t j = w; j < kGemmNr; ++j) {
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = T{};
    }
  }
}

/// Cursor over a RowSpanListI8's rows in ascending order: row() addresses
/// the current row, advance() steps to the next, crossing run boundaries
/// without a per-row search. Advancing past the final row is allowed (the
/// cursor is then never dereferenced).
struct SpanRowCursor {
  const RowSpanI8* run = nullptr;
  size_t offset = 0;  // row within *run

  const int8_t* row(size_t row_stride) const {
    return run->base + offset * row_stride;
  }
  void advance() {
    if (++offset == run->rows) {
      offset = 0;
      ++run;
    }
  }
};

/// Cursor positioned at logical row `row` (< list.rows) of `list`.
inline SpanRowCursor span_row_cursor(const RowSpanListI8& list, size_t row) {
  SpanRowCursor cur{list.runs.data(), row};
  while (cur.offset >= cur.run->rows) {
    cur.offset -= cur.run->rows;
    ++cur.run;
  }
  return cur;
}

/// pack_b_block over a span-list operand (list.rows x list.cols = k x n):
/// B's rows stream straight out of the runs' storage — packing is the
/// only stage that touches B element-by-element, so reading the runs here
/// makes the whole GEMM gather-free while the micro-kernel stays put.
inline void pack_b_block_spans(const RowSpanListI8& b, size_t k0, size_t kc,
                               size_t n, int8_t* dst) {
  // Row-major walk: each block-strided source row (potentially a whole
  // pooled token row away from its neighbor) is touched exactly once and
  // scattered across every column panel — the panel writes land in the
  // small dense pack buffer, so the expensive strided traffic stays
  // single-pass.
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  SpanRowCursor cur = span_row_cursor(b, k0);
  for (size_t p = 0; p < kc; ++p) {
    const int8_t* src = cur.row(b.row_stride);
    for (size_t cp = 0; cp < col_panels; ++cp) {
      const size_t j0 = cp * kGemmNr;
      const size_t w = std::min(kGemmNr, n - j0);
      int8_t* panel_row = dst + cp * kc * kGemmNr + p * kGemmNr;
      for (size_t j = 0; j < w; ++j) panel_row[j] = src[j0 + j];
      for (size_t j = w; j < kGemmNr; ++j) panel_row[j] = 0;
    }
    cur.advance();
  }
}

/// pack_bt_block over a span-list operand (list.rows x list.cols = n x k):
/// packed column j is list row j (K in Q.K^T), transposed during packing
/// exactly like pack_bt_block. Rows ascend monotonically across the
/// column panels, so one cursor walk per K block covers the whole pack.
inline void pack_bt_block_spans(const RowSpanListI8& bt, size_t k0,
                                size_t kc, size_t n, int8_t* dst) {
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  SpanRowCursor cur = span_row_cursor(bt, 0);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    int8_t* panel = dst + cp * kc * kGemmNr;
    for (size_t j = 0; j < w; ++j) {
      const int8_t* src = cur.row(bt.row_stride) + k0;
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = src[p];
      cur.advance();
    }
    for (size_t j = w; j < kGemmNr; ++j) {
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = 0;
    }
  }
}

/// pack_b_block_spans with a fused 256-entry dequant table: the spanned
/// bytes are stored codes (fp8 KV rows) and become int8 values during
/// the one pass that already touches each byte — the micro-kernel and
/// everything downstream see plain int8, so the quantized-storage GEMM
/// is the int8 GEMM with a table lookup folded into packing. Zero
/// padding stays literal 0: padded lanes are synthesized in the DECODED
/// domain, exactly like the int8 pack.
inline void pack_b_block_spans_lut(const RowSpanListI8& b, size_t k0,
                                   size_t kc, size_t n, const int8_t* lut,
                                   int8_t* dst) {
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  SpanRowCursor cur = span_row_cursor(b, k0);
  for (size_t p = 0; p < kc; ++p) {
    const int8_t* src = cur.row(b.row_stride);
    for (size_t cp = 0; cp < col_panels; ++cp) {
      const size_t j0 = cp * kGemmNr;
      const size_t w = std::min(kGemmNr, n - j0);
      int8_t* panel_row = dst + cp * kc * kGemmNr + p * kGemmNr;
      for (size_t j = 0; j < w; ++j) {
        panel_row[j] = lut[static_cast<uint8_t>(src[j0 + j])];
      }
      for (size_t j = w; j < kGemmNr; ++j) panel_row[j] = 0;
    }
    cur.advance();
  }
}

/// pack_bt_block_spans with the same fused dequant table.
inline void pack_bt_block_spans_lut(const RowSpanListI8& bt, size_t k0,
                                    size_t kc, size_t n, const int8_t* lut,
                                    int8_t* dst) {
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  SpanRowCursor cur = span_row_cursor(bt, 0);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    int8_t* panel = dst + cp * kc * kGemmNr;
    for (size_t j = 0; j < w; ++j) {
      const int8_t* src = cur.row(bt.row_stride) + k0;
      for (size_t p = 0; p < kc; ++p) {
        panel[p * kGemmNr + j] = lut[static_cast<uint8_t>(src[p])];
      }
      cur.advance();
    }
    for (size_t j = w; j < kGemmNr; ++j) {
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = 0;
    }
  }
}

/// Dense pack_b_block with a fused dequant table — the FP8-weight GEMM
/// path: B holds stored codes, the pack decodes them, and accumulation
/// stays int16/int32 widening exactly like the int8 kernel.
template <typename M>
void pack_b_block_lut(const M& b, size_t k0, size_t kc, size_t n,
                      const int8_t* lut, int8_t* dst) {
  const size_t ldb = b.cols();
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    int8_t* panel = dst + cp * kc * kGemmNr;
    const int8_t* src = b.data() + k0 * ldb + j0;
    for (size_t p = 0; p < kc; ++p) {
      for (size_t j = 0; j < w; ++j) {
        panel[p * kGemmNr + j] = lut[static_cast<uint8_t>(src[j])];
      }
      for (size_t j = w; j < kGemmNr; ++j) panel[p * kGemmNr + j] = 0;
      src += ldb;
    }
  }
}

/// Dense pack_bt_block with a fused dequant table.
template <typename M>
void pack_bt_block_lut(const M& bt, size_t k0, size_t kc, size_t n,
                       const int8_t* lut, int8_t* dst) {
  const size_t ldb = bt.cols();
  const size_t col_panels = util::ceil_div(n, kGemmNr);
  for (size_t cp = 0; cp < col_panels; ++cp) {
    const size_t j0 = cp * kGemmNr;
    const size_t w = std::min(kGemmNr, n - j0);
    int8_t* panel = dst + cp * kc * kGemmNr;
    for (size_t j = 0; j < w; ++j) {
      const int8_t* src = bt.data() + (j0 + j) * ldb + k0;
      for (size_t p = 0; p < kc; ++p) {
        panel[p * kGemmNr + j] = lut[static_cast<uint8_t>(src[p])];
      }
    }
    for (size_t j = w; j < kGemmNr; ++j) {
      for (size_t p = 0; p < kc; ++p) panel[p * kGemmNr + j] = 0;
    }
  }
}

/// kGemmMr x kGemmNr register block; operands are widened to Mul before
/// multiplying.
template <typename T, typename Mul, typename Acc>
void micro_kernel(size_t kc, const T* __restrict ap, const T* __restrict bp,
                  Acc* __restrict acc) {
  for (size_t p = 0; p < kc; ++p) {
    const T* arow = ap + p * kGemmMr;
    const T* brow = bp + p * kGemmNr;
    for (size_t i = 0; i < kGemmMr; ++i) {
      const Mul ai = static_cast<Mul>(arow[i]);
      Acc* accrow = acc + i * kGemmNr;
      for (size_t j = 0; j < kGemmNr; ++j) {
        accrow[j] += static_cast<Acc>(ai * static_cast<Mul>(brow[j]));
      }
    }
  }
}

/// Allocation-free driver core: `c` is the caller's (m x n) output and
/// `bbuf` the caller's packed-B scratch (>= pack_b_elems(n) elements —
/// the workspace arena provides both on the runtime's steady-state path).
template <typename T, typename Mul, typename Acc, typename PackB>
void gemm_driver_into(const T* a, size_t m, size_t k, size_t n, Acc* c,
                      T* bbuf, util::ThreadPool* pool, const PackB& pack_b) {
  std::fill(c, c + m * n, Acc{});
  if (m == 0 || n == 0 || k == 0) return;

  const size_t row_panels = util::ceil_div(m, kGemmMr);
  const size_t col_panels = util::ceil_div(n, kGemmNr);

  for (size_t k0 = 0; k0 < k; k0 += kGemmKc) {
    const size_t kc = std::min(kGemmKc, k - k0);
    pack_b(k0, kc, bbuf);

    auto row_panel_task = [&](size_t rp) {
      alignas(64) T apanel[kGemmMr * kGemmKc];
      alignas(64) Acc acc[kGemmMr * kGemmNr];
      const size_t i0 = rp * kGemmMr;
      const size_t h = std::min(kGemmMr, m - i0);
      pack_a_panel(a, k, i0, h, k0, kc, apanel);
      for (size_t cp = 0; cp < col_panels; ++cp) {
        std::fill(acc, acc + kGemmMr * kGemmNr, Acc{});
        micro_kernel<T, Mul, Acc>(kc, apanel, bbuf + cp * kc * kGemmNr,
                                  acc);
        const size_t j0 = cp * kGemmNr;
        const size_t w = std::min(kGemmNr, n - j0);
        for (size_t i = 0; i < h; ++i) {
          Acc* crow = c + (i0 + i) * n + j0;
          const Acc* accrow = acc + i * kGemmNr;
          for (size_t j = 0; j < w; ++j) crow[j] += accrow[j];
        }
      }
    };

    if (pool != nullptr && pool->size() > 1 && row_panels > 1) {
      pool->parallel_for(0, row_panels, row_panel_task);
    } else {
      for (size_t rp = 0; rp < row_panels; ++rp) row_panel_task(rp);
    }
  }
}

/// Owning-output convenience: resizes `c` and allocates the packing
/// scratch per call (the legacy engine wrappers and the float kernels).
template <typename T, typename Mul, typename Acc, typename PackB>
void gemm_driver(const Matrix<T>& a, size_t n, Matrix<Acc>& c,
                 util::ThreadPool* pool, const PackB& pack_b) {
  const size_t m = a.rows();
  const size_t k = a.cols();
  c = Matrix<Acc>(m, n, Acc{});
  std::vector<T> bbuf(pack_b_elems(n));
  gemm_driver_into<T, Mul, Acc>(a.data(), m, k, n, c.data(), bbuf.data(),
                                pool, pack_b);
}

}  // namespace protea::tensor::detail
