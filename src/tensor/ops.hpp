// Float numeric kernels: GEMM, transpose, softmax, layer norm, activations.
//
// These are the golden-model building blocks the accelerator simulator is
// verified against, and the compute kernels of the CPU baseline platform.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace protea::util {
class ThreadPool;
}

namespace protea::tensor {

/// C = A * B. A is (m x k), B is (k x n), C is (m x n).
/// The float twin of the packed int8 kernel in qgemm.hpp: panel packing,
/// a register-blocked micro-kernel and K cache blocking, with optional
/// row-partitioned parallelism over `pool` (results are identical for any
/// thread count — each output row is produced by exactly one task).
MatrixF matmul(const MatrixF& a, const MatrixF& b,
               util::ThreadPool* pool = nullptr);

/// C = A * B^T. A is (m x k), B is (n x k), C is (m x n). B is transposed
/// during panel packing, so the inner product runs the same packed
/// micro-kernel as matmul.
MatrixF matmul_bt(const MatrixF& a, const MatrixF& b,
                  util::ThreadPool* pool = nullptr);

/// C = A * B + broadcast(bias). bias has length n.
MatrixF matmul_bias(const MatrixF& a, const MatrixF& b,
                    std::span<const float> bias,
                    util::ThreadPool* pool = nullptr);

/// Cache-blocked transpose (32x32 blocks keep both the read and the
/// strided write side resident).
MatrixF transpose(const MatrixF& a);

/// Elementwise sum; shapes must match.
MatrixF add(const MatrixF& a, const MatrixF& b);

/// Adds bias (length cols) to every row, in place.
void add_bias_inplace(MatrixF& a, std::span<const float> bias);

/// Scales every element by s, in place.
void scale_inplace(MatrixF& a, float s);

/// Numerically-stable softmax applied to each row, in place.
void softmax_rows_inplace(MatrixF& a);

/// Layer norm per row: (x - mean) / sqrt(var + eps) * gamma + beta.
void layer_norm_rows_inplace(MatrixF& a, std::span<const float> gamma,
                             std::span<const float> beta, float eps = 1e-5f);

void relu_inplace(MatrixF& a);

/// tanh-approximation GELU (the BERT formulation).
void gelu_inplace(MatrixF& a);

/// Max |a - b| over all elements; throws on shape mismatch.
float max_abs_diff(const MatrixF& a, const MatrixF& b);

/// sqrt(mean((a-b)^2)); throws on shape mismatch.
float rms_diff(const MatrixF& a, const MatrixF& b);

}  // namespace protea::tensor
