#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace protea::tensor {
namespace {

void check_same_shape(const MatrixF& a, const MatrixF& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

}  // namespace

MatrixF matmul(const MatrixF& a, const MatrixF& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  MatrixF c(m, n, 0.0f);
  // ikj order: streams B rows, keeps C row hot.
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = a(i, kk);
      if (aik == 0.0f) continue;
      const auto brow = b.row(kk);
      auto crow = c.row(i);
      for (size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

MatrixF matmul_bt(const MatrixF& a, const MatrixF& b) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bt: inner dimension mismatch");
  }
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.rows();
  MatrixF c(m, n, 0.0f);
  for (size_t i = 0; i < m; ++i) {
    const auto arow = a.row(i);
    for (size_t j = 0; j < n; ++j) {
      const auto brow = b.row(j);
      float sum = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      c(i, j) = sum;
    }
  }
  return c;
}

MatrixF matmul_bias(const MatrixF& a, const MatrixF& b,
                    std::span<const float> bias) {
  MatrixF c = matmul(a, b);
  add_bias_inplace(c, bias);
  return c;
}

MatrixF transpose(const MatrixF& a) {
  MatrixF t(a.cols(), a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  }
  return t;
}

MatrixF add(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "add");
  MatrixF c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.flat()[i] = a.flat()[i] + b.flat()[i];
  return c;
}

void add_bias_inplace(MatrixF& a, std::span<const float> bias) {
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_bias_inplace: bias length mismatch");
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += bias[c];
  }
}

void scale_inplace(MatrixF& a, float s) {
  for (float& x : a.flat()) x *= s;
}

void softmax_rows_inplace(MatrixF& a) {
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    const float max_x = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (float& x : row) {
      x = std::exp(x - max_x);
      sum += x;
    }
    const float inv = 1.0f / sum;
    for (float& x : row) x *= inv;
  }
}

void layer_norm_rows_inplace(MatrixF& a, std::span<const float> gamma,
                             std::span<const float> beta, float eps) {
  if (gamma.size() != a.cols() || beta.size() != a.cols()) {
    throw std::invalid_argument("layer_norm: gamma/beta length mismatch");
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    double mean = 0.0;
    for (float x : row) mean += x;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (float x : row) {
      const double d = static_cast<double>(x) - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(eps));
    for (size_t c = 0; c < row.size(); ++c) {
      const double norm = (static_cast<double>(row[c]) - mean) * inv_std;
      row[c] = static_cast<float>(norm) * gamma[c] + beta[c];
    }
  }
}

void relu_inplace(MatrixF& a) {
  for (float& x : a.flat()) x = std::max(0.0f, x);
}

void gelu_inplace(MatrixF& a) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& x : a.flat()) {
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    x = 0.5f * x * (1.0f + std::tanh(inner));
  }
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "max_abs_diff");
  float max_d = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_d = std::max(max_d, std::abs(a.flat()[i] - b.flat()[i]));
  }
  return max_d;
}

float rms_diff(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "rms_diff");
  if (a.size() == 0) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.flat()[i]) -
                     static_cast<double>(b.flat()[i]);
    sum += d * d;
  }
  return static_cast<float>(std::sqrt(sum / static_cast<double>(a.size())));
}

}  // namespace protea::tensor
