#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "tensor/gemm_detail.hpp"

namespace protea::tensor {
namespace {

void check_same_shape(const MatrixF& a, const MatrixF& b, const char* what) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(what) + ": shape mismatch");
  }
}

}  // namespace

// The float GEMMs instantiate the shared packed-kernel machinery in
// tensor/gemm_detail.hpp (the int8 twin lives in qgemm.cpp). Per-element
// accumulation runs in a single ascending-k chain, so rounding is
// independent of row partitioning — threaded results match serial ones.

MatrixF matmul(const MatrixF& a, const MatrixF& b, util::ThreadPool* pool) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  MatrixF c;
  detail::gemm_driver<float, float, float>(
      a, b.cols(), c, pool, [&](size_t k0, size_t kc, float* dst) {
        detail::pack_b_block(b, k0, kc, b.cols(), dst);
      });
  return c;
}

MatrixF matmul_bt(const MatrixF& a, const MatrixF& b, util::ThreadPool* pool) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("matmul_bt: inner dimension mismatch");
  }
  MatrixF c;
  detail::gemm_driver<float, float, float>(
      a, b.rows(), c, pool, [&](size_t k0, size_t kc, float* dst) {
        detail::pack_bt_block(b, k0, kc, b.rows(), dst);
      });
  return c;
}

MatrixF matmul_bias(const MatrixF& a, const MatrixF& b,
                    std::span<const float> bias, util::ThreadPool* pool) {
  MatrixF c = matmul(a, b, pool);
  add_bias_inplace(c, bias);
  return c;
}

MatrixF transpose(const MatrixF& a) {
  constexpr size_t kBlock = 32;
  MatrixF t(a.cols(), a.rows());
  for (size_t r0 = 0; r0 < a.rows(); r0 += kBlock) {
    const size_t r1 = std::min(a.rows(), r0 + kBlock);
    for (size_t c0 = 0; c0 < a.cols(); c0 += kBlock) {
      const size_t c1 = std::min(a.cols(), c0 + kBlock);
      for (size_t r = r0; r < r1; ++r) {
        for (size_t c = c0; c < c1; ++c) t(c, r) = a(r, c);
      }
    }
  }
  return t;
}

MatrixF add(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "add");
  MatrixF c(a.rows(), a.cols());
  for (size_t i = 0; i < a.size(); ++i) c.flat()[i] = a.flat()[i] + b.flat()[i];
  return c;
}

void add_bias_inplace(MatrixF& a, std::span<const float> bias) {
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_bias_inplace: bias length mismatch");
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    for (size_t c = 0; c < a.cols(); ++c) row[c] += bias[c];
  }
}

void scale_inplace(MatrixF& a, float s) {
  for (float& x : a.flat()) x *= s;
}

void softmax_rows_inplace(MatrixF& a) {
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    const float max_x = *std::max_element(row.begin(), row.end());
    float sum = 0.0f;
    for (float& x : row) {
      x = std::exp(x - max_x);
      sum += x;
    }
    const float inv = 1.0f / sum;
    for (float& x : row) x *= inv;
  }
}

void layer_norm_rows_inplace(MatrixF& a, std::span<const float> gamma,
                             std::span<const float> beta, float eps) {
  if (gamma.size() != a.cols() || beta.size() != a.cols()) {
    throw std::invalid_argument("layer_norm: gamma/beta length mismatch");
  }
  for (size_t r = 0; r < a.rows(); ++r) {
    auto row = a.row(r);
    double mean = 0.0;
    for (float x : row) mean += x;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (float x : row) {
      const double d = static_cast<double>(x) - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const double inv_std = 1.0 / std::sqrt(var + static_cast<double>(eps));
    for (size_t c = 0; c < row.size(); ++c) {
      const double norm = (static_cast<double>(row[c]) - mean) * inv_std;
      row[c] = static_cast<float>(norm) * gamma[c] + beta[c];
    }
  }
}

void relu_inplace(MatrixF& a) {
  for (float& x : a.flat()) x = std::max(0.0f, x);
}

void gelu_inplace(MatrixF& a) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& x : a.flat()) {
    const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
    x = 0.5f * x * (1.0f + std::tanh(inner));
  }
}

float max_abs_diff(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "max_abs_diff");
  float max_d = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_d = std::max(max_d, std::abs(a.flat()[i] - b.flat()[i]));
  }
  return max_d;
}

float rms_diff(const MatrixF& a, const MatrixF& b) {
  check_same_shape(a, b, "rms_diff");
  if (a.size() == 0) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.flat()[i]) -
                     static_cast<double>(b.flat()[i]);
    sum += d * d;
  }
  return static_cast<float>(std::sqrt(sum / static_cast<double>(a.size())));
}

}  // namespace protea::tensor
