#include "hls/hls_codegen.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/math_util.hpp"

namespace protea::hls {
namespace {

/// Device part numbers for the synthesis TCL.
std::string part_for_device(const hw::Device& device) {
  if (device.name == "Alveo U55C") return "xcu55c-fsvh2892-2L-e";
  if (device.name == "Alveo U200") return "xcu200-fsgd2104-2-e";
  if (device.name == "Alveo U250") return "xcu250-figd2104-2L-e";
  if (device.name == "ZCU102") return "xczu9eg-ffvb1156-2-e";
  if (device.name == "VCU118") return "xcvu9p-flga2104-2L-e";
  throw std::invalid_argument("hls_codegen: no part for " + device.name);
}

}  // namespace

std::string generate_params_header(const hw::SynthParams& p) {
  p.validate();
  std::ostringstream out;
  out << "// protea_params.h — synthesis-time constants (generated).\n"
      << "// Changing anything here requires re-synthesis; everything\n"
      << "// else is programmed at runtime over AXI-Lite.\n"
      << "#ifndef PROTEA_PARAMS_H\n#define PROTEA_PARAMS_H\n\n"
      << "#include <ap_int.h>\n#include <ap_fixed.h>\n\n"
      << "#define TS_MHA " << p.ts_mha << "\n"
      << "#define TS_FFN " << p.ts_ffn << "\n"
      << "#define MAX_HEADS " << p.max_heads << "\n"
      << "#define MAX_D_MODEL " << p.max_d_model << "\n"
      << "#define MAX_SEQ_LEN " << p.max_seq_len << "\n"
      << "#define SL_UNROLL " << p.sl_unroll << "\n"
      << "#define HEAD_DIM_MAX " << p.head_dim_max() << "\n"
      << "#define TILES_MHA_MAX " << p.tiles_mha_max() << "\n"
      << "#define TILES_FFN_MAX " << p.tiles_ffn_max() << "\n"
      << "#define MAX_FFN_DIM " << p.max_ffn_dim() << "\n\n"
      << "typedef ap_fixed<" << p.bits << ", " << (p.bits - 5)
      << ", AP_RND_CONV, AP_SAT> data_t;\n"
      << "typedef ap_int<32> acc_t;\n\n"
      << "#endif  // PROTEA_PARAMS_H\n";
  return out.str();
}

std::string generate_qkv_engine(const hw::SynthParams& p) {
  std::ostringstream out;
  out << "// qkv_engine.cpp — Algorithm 1 (generated).\n"
      << "#include \"protea_params.h\"\n\n"
      << "void qkv_engine(const data_t x[MAX_SEQ_LEN][TS_MHA],\n"
      << "                const data_t wq[HEAD_DIM_MAX][TS_MHA],\n"
      << "                const data_t wk[HEAD_DIM_MAX][TS_MHA],\n"
      << "                const data_t wv[HEAD_DIM_MAX][TS_MHA],\n"
      << "                acc_t q[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "                acc_t k[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "                acc_t v[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "                int seq_len, int head_dim) {\n"
      << "#pragma HLS ARRAY_PARTITION variable=x cyclic factor=" << p.ts_mha
      << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=wq cyclic factor="
      << p.ts_mha << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=wk cyclic factor="
      << p.ts_mha << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=wv cyclic factor="
      << p.ts_mha << " dim=2\n"
      << "row_loop:\n"
      << "  for (int i = 0; i < seq_len; ++i) {\n"
      << "#pragma HLS LOOP_TRIPCOUNT max=MAX_SEQ_LEN\n"
      << "#pragma HLS PIPELINE off\n"
      << "  col_loop:\n"
      << "    for (int kk = 0; kk < head_dim; ++kk) {\n"
      << "#pragma HLS LOOP_TRIPCOUNT max=HEAD_DIM_MAX\n"
      << "#pragma HLS PIPELINE II=1\n"
      << "      acc_t sq = 0, sk = 0, sv = 0;\n"
      << "    tile_loop:\n"
      << "      for (int j = 0; j < TS_MHA; ++j) {\n"
      << "#pragma HLS UNROLL\n"
      << "        sq += x[i][j] * wq[kk][j];\n"
      << "        sk += x[i][j] * wk[kk][j];\n"
      << "        sv += x[i][j] * wv[kk][j];\n"
      << "      }\n"
      << "      q[i][kk] += sq;\n"
      << "      k[i][kk] += sk;\n"
      << "      v[i][kk] += sv;\n"
      << "    }\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string generate_qk_engine(const hw::SynthParams& p) {
  std::ostringstream out;
  out << "// qk_engine.cpp — Algorithm 2 (generated).\n"
      << "#include \"protea_params.h\"\n\n"
      << "void qk_engine(const data_t q[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "               const data_t k[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "               acc_t s[MAX_SEQ_LEN][MAX_SEQ_LEN],\n"
      << "               int seq_len, int head_dim) {\n"
      << "#pragma HLS ARRAY_PARTITION variable=q cyclic factor="
      << p.head_dim_max() << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=k cyclic factor="
      << p.head_dim_max() << " dim=2\n"
      << "row_loop:\n"
      << "  for (int i = 0; i < seq_len; ++i) {\n"
      << "#pragma HLS PIPELINE off\n"
      << "  col_loop:\n"
      << "    for (int j = 0; j < seq_len; ++j) {\n"
      << "#pragma HLS PIPELINE II=1\n"
      << "      acc_t sum = 0;\n"
      << "    dot_loop:\n"
      << "      for (int kk = 0; kk < HEAD_DIM_MAX; ++kk) {\n"
      << "#pragma HLS UNROLL\n"
      << "        sum += q[i][kk] * k[j][kk];\n"
      << "      }\n"
      << "      s[i][j] = sum;\n"
      << "    }\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string generate_sv_engine(const hw::SynthParams& p) {
  std::ostringstream out;
  out << "// sv_engine.cpp — Algorithm 3 (generated).\n"
      << "#include \"protea_params.h\"\n\n"
      << "void sv_engine(const data_t s[MAX_SEQ_LEN][MAX_SEQ_LEN],\n"
      << "               const data_t v[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "               acc_t sv[MAX_SEQ_LEN][HEAD_DIM_MAX],\n"
      << "               int seq_len, int head_dim) {\n"
      << "#pragma HLS ARRAY_PARTITION variable=s cyclic factor="
      << p.sl_unroll << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=v cyclic factor="
      << p.sl_unroll << " dim=1\n"
      << "row_loop:\n"
      << "  for (int i = 0; i < seq_len; ++i) {\n"
      << "#pragma HLS PIPELINE off\n"
      << "  col_loop:\n"
      << "    for (int j = 0; j < head_dim; ++j) {\n"
      << "#pragma HLS PIPELINE II=1\n"
      << "      acc_t vv = 0;\n"
      << "    seq_loop:\n"
      << "      for (int kk = 0; kk < SL_UNROLL; ++kk) {\n"
      << "#pragma HLS UNROLL\n"
      << "        vv += s[i][kk] * v[kk][j];\n"
      << "      }\n"
      << "      sv[i][j] = vv;\n"
      << "    }\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string generate_ffn_engine(const hw::SynthParams& p) {
  std::ostringstream out;
  out << "// ffn_engine.cpp — Algorithm 4 (generated).\n"
      << "#include \"protea_params.h\"\n\n"
      << "void ffn_engine(const data_t inputs[MAX_SEQ_LEN][TS_FFN],\n"
      << "                const data_t weights[TS_FFN][TS_FFN],\n"
      << "                acc_t outputs[MAX_SEQ_LEN][TS_FFN],\n"
      << "                int seq_len, int tile_index) {\n"
      << "#pragma HLS ARRAY_PARTITION variable=inputs cyclic factor="
      << p.ts_ffn << " dim=2\n"
      << "#pragma HLS ARRAY_PARTITION variable=weights cyclic factor="
      << p.ts_ffn << " dim=1\n"
      << "row_loop:\n"
      << "  for (int i = 0; i < seq_len; ++i) {\n"
      << "#pragma HLS PIPELINE off\n"
      << "  col_loop:\n"
      << "    for (int j = 0; j < TS_FFN; ++j) {\n"
      << "#pragma HLS PIPELINE II=1\n"
      << "      acc_t sum = 0;\n"
      << "    dot_loop:\n"
      << "      for (int kk = 0; kk < TS_FFN; ++kk) {\n"
      << "#pragma HLS UNROLL\n"
      << "        sum += inputs[i][kk] * weights[kk][j];\n"
      << "      }\n"
      << "      outputs[i][j] += sum;\n"
      << "    }\n"
      << "  }\n"
      << "}\n";
  return out.str();
}

std::string generate_top(const hw::SynthParams& p) {
  std::ostringstream out;
  out << "// protea_top.cpp — kernel top with AXI interfaces (generated).\n"
      << "#include \"protea_params.h\"\n\n"
      << "void protea_top(const data_t* hbm_weights, const data_t* "
         "hbm_inputs,\n"
      << "                data_t* hbm_outputs, int seq_len, int d_model,\n"
      << "                int num_heads, int num_layers, int activation) "
         "{\n"
      << "#pragma HLS INTERFACE m_axi port=hbm_weights bundle=gmem0 "
         "depth=16777216\n"
      << "#pragma HLS INTERFACE m_axi port=hbm_inputs bundle=gmem1 "
         "depth=1048576\n"
      << "#pragma HLS INTERFACE m_axi port=hbm_outputs bundle=gmem2 "
         "depth=1048576\n"
      << "#pragma HLS INTERFACE s_axilite port=seq_len\n"
      << "#pragma HLS INTERFACE s_axilite port=d_model\n"
      << "#pragma HLS INTERFACE s_axilite port=num_heads\n"
      << "#pragma HLS INTERFACE s_axilite port=num_layers\n"
      << "#pragma HLS INTERFACE s_axilite port=activation\n"
      << "#pragma HLS INTERFACE s_axilite port=return\n"
      << "  // Runtime bound checks (the MicroBlaze also enforces these).\n"
      << "  if (seq_len > MAX_SEQ_LEN || d_model > MAX_D_MODEL ||\n"
      << "      num_heads > MAX_HEADS) return;\n"
      << "  // Per-layer sequencing of the " << p.max_heads
      << " head pipelines and the FFN chain\n"
      << "  // (engine calls elided in the generated skeleton).\n"
      << "}\n";
  return out.str();
}

std::string generate_synthesis_tcl(const hw::SynthParams& params,
                                   const hw::Device& device,
                                   double target_mhz) {
  if (!(target_mhz > 0.0)) {
    throw std::invalid_argument("generate_synthesis_tcl: bad frequency");
  }
  std::ostringstream out;
  const double period_ns = 1000.0 / target_mhz;
  out << "# run_hls.tcl (generated) — ProTEA synthesis for "
      << device.name << "\n"
      << "open_project -reset protea_ts" << params.ts_mha << "_"
      << params.ts_ffn << "\n"
      << "set_top protea_top\n"
      << "add_files protea_top.cpp\n"
      << "add_files qkv_engine.cpp\n"
      << "add_files qk_engine.cpp\n"
      << "add_files sv_engine.cpp\n"
      << "add_files ffn_engine.cpp\n"
      << "open_solution -reset solution1\n"
      << "set_part {" << part_for_device(device) << "}\n"
      << "create_clock -period " << period_ns << " -name default\n"
      << "csim_design\n"
      << "csynth_design\n"
      << "cosim_design\n"
      << "export_design -format ip_catalog\n"
      << "exit\n";
  return out.str();
}

int write_hls_project(const std::string& directory,
                      const hw::SynthParams& params,
                      const hw::Device& device, double target_mhz) {
  std::filesystem::create_directories(directory);
  const std::vector<std::pair<std::string, std::string>> files = {
      {"protea_params.h", generate_params_header(params)},
      {"qkv_engine.cpp", generate_qkv_engine(params)},
      {"qk_engine.cpp", generate_qk_engine(params)},
      {"sv_engine.cpp", generate_sv_engine(params)},
      {"ffn_engine.cpp", generate_ffn_engine(params)},
      {"protea_top.cpp", generate_top(params)},
      {"run_hls.tcl",
       generate_synthesis_tcl(params, device, target_mhz)},
  };
  for (const auto& [name, content] : files) {
    std::ofstream out(directory + "/" + name);
    if (!out) {
      throw std::runtime_error("write_hls_project: cannot write " + name);
    }
    out << content;
  }
  return static_cast<int>(files.size());
}

}  // namespace protea::hls
