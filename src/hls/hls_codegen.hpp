// Vitis HLS artifact generator.
//
// The paper's §IV: "A parameterized HLS code that allows for design-time
// adjustments of parameters in the HLS tool." This module regenerates
// that artifact from a SynthParams: the kernel header with the
// synthesis-time constants, C sources for each computation engine with
// the exact loop nests of Algorithms 1-4 and the pragmas the cycle model
// assumes (ARRAY_PARTITION factors, PIPELINE II, UNROLL), the AXI
// interface top, and a synthesis TCL script targeting the chosen device.
// On a machine with Vitis HLS installed the emitted project is intended
// to synthesize as-is; in this repository it serves as the executable
// specification tying the simulator's timing assumptions to real pragmas
// (tests assert the pragmas match what frequency_model/perf_model charge
// for).
#pragma once

#include <string>

#include "hw/device.hpp"
#include "hw/synth_params.hpp"

namespace protea::hls {

/// protea_params.h — synthesis-time constants.
std::string generate_params_header(const hw::SynthParams& params);

/// qkv_engine.cpp — Algorithm 1 with tiling (Fig. 5).
std::string generate_qkv_engine(const hw::SynthParams& params);

/// qk_engine.cpp — Algorithm 2 (fully unrolled head-dim reduction).
std::string generate_qk_engine(const hw::SynthParams& params);

/// sv_engine.cpp — Algorithm 3 (sequence-unrolled reduction).
std::string generate_sv_engine(const hw::SynthParams& params);

/// ffn_engine.cpp — Algorithm 4 with 2-D tiling (Fig. 6).
std::string generate_ffn_engine(const hw::SynthParams& params);

/// protea_top.cpp — AXI4 master/AXI-Lite slave kernel top (paper §IV).
std::string generate_top(const hw::SynthParams& params);

/// run_hls.tcl — project script: part selection, clock target, csim/csynth.
std::string generate_synthesis_tcl(const hw::SynthParams& params,
                                   const hw::Device& device,
                                   double target_mhz);

/// Writes the complete project under `directory` (created if needed).
/// Returns the number of files written. Throws on I/O failure.
int write_hls_project(const std::string& directory,
                      const hw::SynthParams& params,
                      const hw::Device& device, double target_mhz);

}  // namespace protea::hls
