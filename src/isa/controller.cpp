#include "isa/controller.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace protea::isa {

Controller::Controller(accel::ProteaAccelerator& accelerator)
    : accel_(accelerator) {}

void Controller::bind_weights(uint32_t slot, accel::QuantizedModel model) {
  weight_slots_.insert_or_assign(slot, std::move(model));
}

void Controller::bind_input(uint32_t slot, tensor::MatrixF input) {
  input_slots_.insert_or_assign(slot, std::move(input));
}

void Controller::apply_config_to_csr(const Instruction& inst) {
  switch (inst.op) {
    case Opcode::kSetSeqLen:
      csr_.write(CsrAddr::kSeqLen, inst.operand);
      break;
    case Opcode::kSetDModel:
      csr_.write(CsrAddr::kDModel, inst.operand);
      break;
    case Opcode::kSetHeads:
      csr_.write(CsrAddr::kHeads, inst.operand);
      break;
    case Opcode::kSetLayers:
      csr_.write(CsrAddr::kLayers, inst.operand);
      break;
    case Opcode::kSetActivation:
      csr_.write(CsrAddr::kActivation, inst.operand);
      break;
    default:
      throw std::logic_error("Controller: not a config opcode");
  }
}

ref::ModelConfig Controller::staged_config() const {
  ref::ModelConfig config;
  config.seq_len = csr_.seq_len();
  config.d_model = csr_.d_model();
  config.num_heads = csr_.heads();
  config.num_layers = csr_.layers();
  config.activation = csr_.activation() != 0 ? ref::Activation::kGelu
                                             : ref::Activation::kRelu;
  return config;
}

std::vector<RunResult> Controller::execute(
    const std::vector<Instruction>& program) {
  std::vector<RunResult> results;
  for (const Instruction& inst : program) {
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        return results;
      case Opcode::kSetSeqLen:
      case Opcode::kSetDModel:
      case Opcode::kSetHeads:
      case Opcode::kSetLayers:
      case Opcode::kSetActivation:
        apply_config_to_csr(inst);
        break;
      case Opcode::kLoadWeights: {
        const auto it = weight_slots_.find(inst.operand);
        if (it == weight_slots_.end()) {
          throw std::out_of_range("Controller: unbound weight slot " +
                                  std::to_string(inst.operand));
        }
        accel_.load_model(it->second);
        loaded_weights_slot_ = inst.operand;
        break;
      }
      case Opcode::kLoadInput: {
        if (input_slots_.find(inst.operand) == input_slots_.end()) {
          throw std::out_of_range("Controller: unbound input slot " +
                                  std::to_string(inst.operand));
        }
        loaded_input_slot_ = static_cast<int64_t>(inst.operand);
        break;
      }
      case Opcode::kRun: {
        csr_.write(CsrAddr::kCtrl, 1);
        csr_.set_done(false);
        if (loaded_weights_slot_ < 0 || loaded_input_slot_ < 0) {
          throw std::logic_error(
              "Controller: RUN before weights/input were loaded");
        }
        const ref::ModelConfig config = staged_config();
        try {
          accel::validate_runtime(accel_.config().synth, config);
          const auto& loaded = accel_.model().config;
          if (config.d_model != loaded.d_model ||
              config.num_heads != loaded.num_heads ||
              config.num_layers > loaded.num_layers) {
            throw std::invalid_argument(
                "Controller: staged program does not match loaded weights");
          }
          accel_.program_layers(config.num_layers);
          accel_.program_seq_len(config.seq_len);
        } catch (const std::invalid_argument& e) {
          PROTEA_LOG_WARN << "run rejected: " << e.what();
          csr_.set_error(1);
          csr_.clear_start();
          ++rejected_runs_;
          break;
        }
        const tensor::MatrixF& input =
            input_slots_.at(static_cast<uint32_t>(loaded_input_slot_));
        if (input.rows() != config.seq_len ||
            input.cols() != config.d_model) {
          throw std::invalid_argument(
              "Controller: input buffer shape does not match program");
        }
        RunResult result;
        result.config = accel_.programmed_config();
        result.output = accel_.forward(input);
        result.perf = accel_.performance();
        results.push_back(std::move(result));
        csr_.set_done(true);
        csr_.set_error(0);
        csr_.clear_start();
        break;
      }
    }
  }
  return results;
}

std::vector<Instruction> assemble_program(const ref::ModelConfig& model,
                                          uint32_t weight_slot,
                                          uint32_t input_slot,
                                          uint32_t output_slot) {
  model.validate();
  return {
      {Opcode::kSetSeqLen, model.seq_len},
      {Opcode::kSetDModel, model.d_model},
      {Opcode::kSetHeads, model.num_heads},
      {Opcode::kSetLayers, model.num_layers},
      {Opcode::kSetActivation,
       model.activation == ref::Activation::kGelu ? 1u : 0u},
      {Opcode::kLoadWeights, weight_slot},
      {Opcode::kLoadInput, input_slot},
      {Opcode::kRun, output_slot},
      {Opcode::kHalt, 0},
  };
}

}  // namespace protea::isa
