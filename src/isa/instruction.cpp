#include "isa/instruction.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace protea::isa {
namespace {

struct Mnemonic {
  Opcode op;
  const char* name;
  bool has_operand;
};

constexpr std::array<Mnemonic, 9> kMnemonics = {{
    {Opcode::kNop, "nop", false},
    {Opcode::kSetSeqLen, "set_seq_len", true},
    {Opcode::kSetDModel, "set_d_model", true},
    {Opcode::kSetHeads, "set_heads", true},
    {Opcode::kSetLayers, "set_layers", true},
    {Opcode::kSetActivation, "set_activation", true},
    {Opcode::kLoadWeights, "load_weights", true},
    {Opcode::kLoadInput, "load_input", true},
    {Opcode::kRun, "run", true},
}};

const Mnemonic* find_by_op(Opcode op) {
  for (const auto& m : kMnemonics) {
    if (m.op == op) return &m;
  }
  return nullptr;
}

const Mnemonic* find_by_name(std::string_view name) {
  for (const auto& m : kMnemonics) {
    if (name == m.name) return &m;
  }
  return nullptr;
}

}  // namespace

uint64_t encode(const Instruction& inst) {
  return (uint64_t{static_cast<uint8_t>(inst.op)} << 56) | inst.operand;
}

Instruction decode(uint64_t word) {
  Instruction inst;
  inst.op = static_cast<Opcode>(word >> 56);
  inst.operand = static_cast<uint32_t>(word & 0xFFFFFFFFull);
  return inst;
}

std::string to_string(const Instruction& inst) {
  if (inst.op == Opcode::kHalt) return "halt";
  const Mnemonic* m = find_by_op(inst.op);
  if (m == nullptr) return "<invalid>";
  if (!m->has_operand) return m->name;
  return std::string(m->name) + " " + std::to_string(inst.operand);
}

Instruction parse_instruction(const std::string& line) {
  const std::string_view body = util::trim(line);
  const auto tokens = util::split(std::string(body), ' ');
  if (tokens.empty() || tokens[0].empty()) {
    throw std::invalid_argument("parse_instruction: empty line");
  }
  if (tokens[0] == "halt") {
    return Instruction{Opcode::kHalt, 0};
  }
  const Mnemonic* m = find_by_name(tokens[0]);
  if (m == nullptr) {
    throw std::invalid_argument("parse_instruction: unknown mnemonic '" +
                                tokens[0] + "'");
  }
  Instruction inst{m->op, 0};
  if (m->has_operand) {
    if (tokens.size() < 2) {
      throw std::invalid_argument("parse_instruction: missing operand for " +
                                  tokens[0]);
    }
    size_t consumed = 0;
    const unsigned long value = std::stoul(tokens[1], &consumed);
    if (consumed != tokens[1].size() || value > 0xFFFFFFFFull) {
      throw std::invalid_argument("parse_instruction: bad operand '" +
                                  tokens[1] + "'");
    }
    inst.operand = static_cast<uint32_t>(value);
  }
  return inst;
}

std::vector<Instruction> parse_program(const std::string& text) {
  std::vector<Instruction> program;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const std::string_view body = util::trim(line);
    if (body.empty() || body.front() == '#') continue;
    program.push_back(parse_instruction(std::string(body)));
  }
  return program;
}

std::string format_program(const std::vector<Instruction>& program) {
  std::string out;
  for (const auto& inst : program) {
    out += to_string(inst);
    out += '\n';
  }
  return out;
}

}  // namespace protea::isa
