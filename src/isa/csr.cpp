#include "isa/csr.hpp"

namespace protea::isa {

void CsrFile::write(CsrAddr addr, uint32_t value) {
  switch (addr) {
    case CsrAddr::kCtrl:
      if ((value & 1u) != 0) start_pending_ = true;
      return;
    case CsrAddr::kSeqLen:
      seq_len_ = value;
      return;
    case CsrAddr::kDModel:
      d_model_ = value;
      return;
    case CsrAddr::kHeads:
      heads_ = value;
      return;
    case CsrAddr::kLayers:
      layers_ = value;
      return;
    case CsrAddr::kActivation:
      activation_ = value;
      return;
    case CsrAddr::kStatus:
    case CsrAddr::kErrorCode:
      throw std::invalid_argument("CsrFile: write to read-only register");
  }
  throw std::invalid_argument("CsrFile: unmapped address");
}

uint32_t CsrFile::read(CsrAddr addr) const {
  switch (addr) {
    case CsrAddr::kCtrl:
      return start_pending_ ? 1u : 0u;
    case CsrAddr::kStatus:
      return (done_ ? 1u : 0u) | (error_ ? 2u : 0u);
    case CsrAddr::kSeqLen:
      return seq_len_;
    case CsrAddr::kDModel:
      return d_model_;
    case CsrAddr::kHeads:
      return heads_;
    case CsrAddr::kLayers:
      return layers_;
    case CsrAddr::kActivation:
      return activation_;
    case CsrAddr::kErrorCode:
      return error_code_;
  }
  throw std::invalid_argument("CsrFile: unmapped address");
}

}  // namespace protea::isa
