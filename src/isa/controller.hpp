// MicroBlaze-style soft controller.
//
// Executes the instruction stream against a ProteaAccelerator: CONFIG
// opcodes stage hyperparameters in the CSR file, LOAD opcodes bind host
// buffers (quantized models / input activations), RUN validates the staged
// program against the synthesized hardware — rejecting anything that would
// need re-synthesis — and launches a forward pass, recording functional
// output and the cycle-model performance report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "accel/accelerator.hpp"
#include "isa/csr.hpp"
#include "isa/instruction.hpp"

namespace protea::isa {

struct RunResult {
  ref::ModelConfig config;       // the committed runtime program
  tensor::MatrixF output;        // functional result
  accel::PerfReport perf;        // cycle-model report
};

class Controller {
 public:
  explicit Controller(accel::ProteaAccelerator& accelerator);

  /// Host-side buffers the LOAD instructions reference.
  void bind_weights(uint32_t slot, accel::QuantizedModel model);
  void bind_input(uint32_t slot, tensor::MatrixF input);

  CsrFile& csr() { return csr_; }
  const CsrFile& csr() const { return csr_; }

  /// Executes until kHalt or end of program. Returns one RunResult per
  /// successfully executed kRun. A failed validation sets the CSR error
  /// state and *skips* that run (the paper's host reports and continues);
  /// other errors propagate as exceptions.
  std::vector<RunResult> execute(const std::vector<Instruction>& program);

  /// Number of runs rejected by bound-checking since construction.
  uint32_t rejected_runs() const { return rejected_runs_; }

 private:
  void apply_config_to_csr(const Instruction& inst);
  ref::ModelConfig staged_config() const;

  accel::ProteaAccelerator& accel_;
  CsrFile csr_;
  std::map<uint32_t, accel::QuantizedModel> weight_slots_;
  std::map<uint32_t, tensor::MatrixF> input_slots_;
  int64_t loaded_weights_slot_ = -1;
  int64_t loaded_input_slot_ = -1;
  uint32_t rejected_runs_ = 0;
};

/// Builds the canonical instruction stream that programs `model` and runs
/// it: the sequence the paper's Python-interpreter host flow would emit
/// after parsing a .pth checkpoint.
std::vector<Instruction> assemble_program(const ref::ModelConfig& model,
                                          uint32_t weight_slot,
                                          uint32_t input_slot,
                                          uint32_t output_slot = 0);

}  // namespace protea::isa
