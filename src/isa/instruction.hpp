// Instruction set of the ProTEA control path.
//
// The paper's MicroBlaze host "utilizes the extracted data to generate
// instructions and control signals" (§IV-D). We give that control stream a
// concrete encoding: 64-bit words, an 8-bit opcode and a 32-bit operand.
// CONFIG instructions stage runtime hyperparameters in the CSR file; RUN
// commits them (after bound checks against the synthesis) and launches a
// forward pass. Tile sizes have deliberately NO opcode — they are frozen
// at synthesis, which is the paper's central constraint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace protea::isa {

enum class Opcode : uint8_t {
  kNop = 0x00,
  kSetSeqLen = 0x01,     // operand: sequence length
  kSetDModel = 0x02,     // operand: embedding dimension
  kSetHeads = 0x03,      // operand: number of attention heads
  kSetLayers = 0x04,     // operand: number of encoder layers
  kSetActivation = 0x05, // operand: 0 = ReLU, 1 = GELU
  kLoadWeights = 0x10,   // operand: host weight-buffer slot
  kLoadInput = 0x11,     // operand: host input-buffer slot
  kRun = 0x20,           // operand: output slot
  kHalt = 0xFF,
};

struct Instruction {
  Opcode op = Opcode::kNop;
  uint32_t operand = 0;

  bool operator==(const Instruction&) const = default;
};

/// 64-bit encoding: [63:56] opcode, [31:0] operand, middle bits zero.
uint64_t encode(const Instruction& inst);
Instruction decode(uint64_t word);

/// Mnemonic text, e.g. "set_seq_len 64".
std::string to_string(const Instruction& inst);

/// Parses one mnemonic line (comments start with '#'); throws
/// std::invalid_argument on unknown mnemonics or malformed operands.
Instruction parse_instruction(const std::string& line);

/// Parses a whole program, skipping blank/comment lines.
std::vector<Instruction> parse_program(const std::string& text);

/// Renders a program as mnemonic text, one instruction per line.
std::string format_program(const std::vector<Instruction>& program);

}  // namespace protea::isa
