// AXI-Lite control/status register file.
//
// The accelerator "receives control signals from the processor through an
// AXI-lite slave interface" (§IV, [35]). This models the register map the
// MicroBlaze writes: staged runtime hyperparameters, a START pulse and a
// DONE/ERROR status word, addressable at 4-byte-aligned offsets.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace protea::isa {

/// Register offsets (byte addresses on the AXI-Lite slave).
enum class CsrAddr : uint32_t {
  kCtrl = 0x00,        // bit0 = START (self-clearing)
  kStatus = 0x04,      // bit0 = DONE, bit1 = ERROR (read-only)
  kSeqLen = 0x10,
  kDModel = 0x14,
  kHeads = 0x18,
  kLayers = 0x1C,
  kActivation = 0x20,  // 0 = ReLU, 1 = GELU
  kErrorCode = 0x24,   // last validation error (read-only)
};

class CsrFile {
 public:
  /// Writes a 32-bit register; read-only addresses throw.
  void write(CsrAddr addr, uint32_t value);

  /// Reads any register.
  uint32_t read(CsrAddr addr) const;

  // Typed accessors used by the controller.
  uint32_t seq_len() const { return seq_len_; }
  uint32_t d_model() const { return d_model_; }
  uint32_t heads() const { return heads_; }
  uint32_t layers() const { return layers_; }
  uint32_t activation() const { return activation_; }

  bool start_pending() const { return start_pending_; }
  void clear_start() { start_pending_ = false; }

  void set_done(bool done) { done_ = done; }
  void set_error(uint32_t code) {
    error_ = code != 0;
    error_code_ = code;
  }
  bool done() const { return done_; }
  bool error() const { return error_; }

 private:
  uint32_t seq_len_ = 0;
  uint32_t d_model_ = 0;
  uint32_t heads_ = 0;
  uint32_t layers_ = 0;
  uint32_t activation_ = 0;
  uint32_t error_code_ = 0;
  bool start_pending_ = false;
  bool done_ = false;
  bool error_ = false;
};

}  // namespace protea::isa
