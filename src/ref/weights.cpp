#include "ref/weights.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace protea::ref {
namespace {

void fill_normal(tensor::MatrixF& m, util::Xoshiro256& rng, double sigma) {
  for (float& x : m.flat()) {
    const double v = rng.normal() * sigma;
    x = static_cast<float>(std::clamp(v, -3.0 * sigma, 3.0 * sigma));
  }
}

void fill_normal(std::vector<float>& v, util::Xoshiro256& rng, double sigma) {
  for (float& x : v) {
    const double value = rng.normal() * sigma;
    x = static_cast<float>(std::clamp(value, -3.0 * sigma, 3.0 * sigma));
  }
}

}  // namespace

uint64_t EncoderWeights::parameter_count() const {
  uint64_t n = 0;
  for (const auto& l : layers) {
    n += l.wq.size() + l.wk.size() + l.wv.size() + l.wo.size() +
         l.w1.size() + l.w2.size();
    n += l.bq.size() + l.bk.size() + l.bv.size() + l.bo.size() +
         l.b1.size() + l.b2.size();
    n += l.ln1_gamma.size() + l.ln1_beta.size() + l.ln2_gamma.size() +
         l.ln2_beta.size();
  }
  return n;
}

EncoderWeights make_random_weights(const ModelConfig& config, uint64_t seed) {
  config.validate();
  EncoderWeights w;
  w.config = config;
  w.layers.resize(config.num_layers);

  const size_t d = config.d_model;
  const size_t f = config.ffn_hidden();
  util::Xoshiro256 rng(seed);

  const double sigma_d = 1.0 / std::sqrt(static_cast<double>(d));
  const double sigma_f = 1.0 / std::sqrt(static_cast<double>(f));
  const double sigma_b = 0.02;

  for (auto& layer : w.layers) {
    layer.wq = tensor::MatrixF(d, d);
    layer.wk = tensor::MatrixF(d, d);
    layer.wv = tensor::MatrixF(d, d);
    layer.wo = tensor::MatrixF(d, d);
    layer.w1 = tensor::MatrixF(d, f);
    layer.w2 = tensor::MatrixF(f, d);
    fill_normal(layer.wq, rng, sigma_d);
    fill_normal(layer.wk, rng, sigma_d);
    fill_normal(layer.wv, rng, sigma_d);
    fill_normal(layer.wo, rng, sigma_d);
    fill_normal(layer.w1, rng, sigma_d);
    fill_normal(layer.w2, rng, sigma_f);

    layer.bq.assign(d, 0.0f);
    layer.bk.assign(d, 0.0f);
    layer.bv.assign(d, 0.0f);
    layer.bo.assign(d, 0.0f);
    layer.b1.assign(f, 0.0f);
    layer.b2.assign(d, 0.0f);
    if (config.use_bias) {
      fill_normal(layer.bq, rng, sigma_b);
      fill_normal(layer.bk, rng, sigma_b);
      fill_normal(layer.bv, rng, sigma_b);
      fill_normal(layer.bo, rng, sigma_b);
      fill_normal(layer.b1, rng, sigma_b);
      fill_normal(layer.b2, rng, sigma_b);
    }

    layer.ln1_gamma.assign(d, 1.0f);
    layer.ln1_beta.assign(d, 0.0f);
    layer.ln2_gamma.assign(d, 1.0f);
    layer.ln2_beta.assign(d, 0.0f);
  }
  return w;
}

tensor::MatrixF make_random_input(const ModelConfig& config, uint64_t seed) {
  config.validate();
  tensor::MatrixF x(config.seq_len, config.d_model);
  util::Xoshiro256 rng(seed ^ 0xA5A5A5A5ull);
  for (float& v : x.flat()) {
    v = static_cast<float>(std::clamp(rng.normal(), -3.0, 3.0));
  }
  return x;
}

}  // namespace protea::ref
