// Binary serialization of encoder weights.
//
// Stands in for the paper's host flow: "models are saved as .pth files,
// then a Python interpreter extracts key parameters" (§IV-D). Our format
// stores the ModelConfig header followed by raw float tensors so the
// simulator, examples and benches can exchange models on disk.
//
// Layout (little-endian):
//   magic "PTEA" | u32 version | config fields | per-layer tensors
#pragma once

#include <string>

#include "ref/weights.hpp"

namespace protea::ref {

inline constexpr uint32_t kModelFormatVersion = 1;

/// Writes the full weight stack; throws std::runtime_error on I/O failure.
void save_model(const EncoderWeights& weights, const std::string& path);

/// Reads a model produced by save_model; validates magic/version/shapes.
EncoderWeights load_model(const std::string& path);

}  // namespace protea::ref
