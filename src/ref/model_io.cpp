#include "ref/model_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace protea::ref {
namespace {

constexpr char kMagic[4] = {'P', 'T', 'E', 'A'};

void write_u32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t read_u32(std::istream& is) {
  uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("model_io: truncated file");
  return v;
}

void write_floats(std::ostream& os, std::span<const float> data) {
  write_u32(os, static_cast<uint32_t>(data.size()));
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(float)));
}

std::vector<float> read_floats(std::istream& is, size_t expected) {
  const uint32_t n = read_u32(is);
  if (n != expected) {
    throw std::runtime_error("model_io: tensor size mismatch");
  }
  std::vector<float> data(n);
  is.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(n * sizeof(float)));
  if (!is) throw std::runtime_error("model_io: truncated tensor");
  return data;
}

tensor::MatrixF read_matrix(std::istream& is, size_t rows, size_t cols) {
  return tensor::MatrixF::from_rows(rows, cols,
                                    read_floats(is, rows * cols));
}

}  // namespace

void save_model(const EncoderWeights& weights, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_model: cannot open " + path);

  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kModelFormatVersion);
  const ModelConfig& c = weights.config;
  write_u32(os, c.seq_len);
  write_u32(os, c.d_model);
  write_u32(os, c.num_heads);
  write_u32(os, c.num_layers);
  write_u32(os, c.ffn_hidden());
  write_u32(os, c.activation == Activation::kGelu ? 1u : 0u);
  write_u32(os, c.attn_scale == AttnScale::kInvDModel ? 1u : 0u);
  write_u32(os, c.use_bias ? 1u : 0u);

  for (const auto& l : weights.layers) {
    write_floats(os, l.wq.flat());
    write_floats(os, l.wk.flat());
    write_floats(os, l.wv.flat());
    write_floats(os, l.bq);
    write_floats(os, l.bk);
    write_floats(os, l.bv);
    write_floats(os, l.wo.flat());
    write_floats(os, l.bo);
    write_floats(os, l.w1.flat());
    write_floats(os, l.b1);
    write_floats(os, l.w2.flat());
    write_floats(os, l.b2);
    write_floats(os, l.ln1_gamma);
    write_floats(os, l.ln1_beta);
    write_floats(os, l.ln2_gamma);
    write_floats(os, l.ln2_beta);
  }
  if (!os) throw std::runtime_error("save_model: write failure");
}

EncoderWeights load_model(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_model: cannot open " + path);

  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_model: bad magic");
  }
  const uint32_t version = read_u32(is);
  if (version != kModelFormatVersion) {
    throw std::runtime_error("load_model: unsupported version");
  }

  ModelConfig c;
  c.name = path;
  c.seq_len = read_u32(is);
  c.d_model = read_u32(is);
  c.num_heads = read_u32(is);
  c.num_layers = read_u32(is);
  c.ffn_dim = read_u32(is);
  c.activation = read_u32(is) != 0 ? Activation::kGelu : Activation::kRelu;
  c.attn_scale =
      read_u32(is) != 0 ? AttnScale::kInvDModel : AttnScale::kInvSqrtDk;
  c.use_bias = read_u32(is) != 0;
  c.validate();

  EncoderWeights w;
  w.config = c;
  w.layers.resize(c.num_layers);
  const size_t d = c.d_model;
  const size_t f = c.ffn_hidden();
  for (auto& l : w.layers) {
    l.wq = read_matrix(is, d, d);
    l.wk = read_matrix(is, d, d);
    l.wv = read_matrix(is, d, d);
    l.bq = read_floats(is, d);
    l.bk = read_floats(is, d);
    l.bv = read_floats(is, d);
    l.wo = read_matrix(is, d, d);
    l.bo = read_floats(is, d);
    l.w1 = read_matrix(is, d, f);
    l.b1 = read_floats(is, f);
    l.w2 = read_matrix(is, f, d);
    l.b2 = read_floats(is, d);
    l.ln1_gamma = read_floats(is, d);
    l.ln1_beta = read_floats(is, d);
    l.ln2_gamma = read_floats(is, d);
    l.ln2_beta = read_floats(is, d);
  }
  return w;
}

}  // namespace protea::ref
