// Transformer-encoder hyperparameters.
//
// These are exactly the quantities ProTEA exposes as *runtime-programmable*
// (paper §IV-D): sequence length SL, embedding dimension d_model, number of
// attention heads h, number of encoder layers N. The FFN hidden size is the
// conventional 4*d_model unless overridden.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace protea::ref {

enum class Activation { kRelu, kGelu };

/// How attention logits are scaled before softmax. The paper's Eq. (1) uses
/// 1/sqrt(d_k); its Algorithm 2 line 9 divides by the embedding dimension
/// instead. Both are supported so the simulator can mirror either.
enum class AttnScale { kInvSqrtDk, kInvDModel };

struct ModelConfig {
  std::string name = "unnamed";
  uint32_t seq_len = 64;      // SL
  uint32_t d_model = 768;     // embedding dimension
  uint32_t num_heads = 8;     // h
  uint32_t num_layers = 12;   // N
  uint32_t ffn_dim = 0;       // 0 -> 4 * d_model
  Activation activation = Activation::kRelu;
  AttnScale attn_scale = AttnScale::kInvSqrtDk;
  bool use_bias = true;

  uint32_t ffn_hidden() const { return ffn_dim == 0 ? 4 * d_model : ffn_dim; }

  /// Per-head dimension d_k = d_model / h.
  uint32_t head_dim() const { return d_model / num_heads; }

  /// Throws std::invalid_argument when dimensions are inconsistent.
  void validate() const {
    if (seq_len == 0 || d_model == 0 || num_heads == 0 || num_layers == 0) {
      throw std::invalid_argument("ModelConfig: zero dimension");
    }
    if (d_model % num_heads != 0) {
      throw std::invalid_argument(
          "ModelConfig: d_model must be divisible by num_heads");
    }
  }

  /// Total multiply-accumulate count for one forward pass (all layers),
  /// the operation count used for GOPS (2 ops per MAC plus the elementwise
  /// work in softmax/LN, counted separately by ops_total()).
  uint64_t macs_total() const {
    const uint64_t sl = seq_len;
    const uint64_t d = d_model;
    const uint64_t f = ffn_hidden();
    const uint64_t qkv = 3 * sl * d * d;
    const uint64_t logits = sl * sl * d;   // Q*K^T over all heads
    const uint64_t apply = sl * sl * d;    // S*V over all heads
    const uint64_t proj = sl * d * d;      // attention output projection
    const uint64_t ffn = 2 * sl * d * f;   // expansion + contraction
    return num_layers * (qkv + logits + apply + proj + ffn);
  }

  /// Total operation count: 2*MACs + bias adds + softmax/LN/residual
  /// elementwise operations. This matches how FPGA accelerator papers
  /// typically report GOPS (everything the datapath executes).
  uint64_t ops_total() const {
    const uint64_t sl = seq_len;
    const uint64_t d = d_model;
    const uint64_t f = ffn_hidden();
    const uint64_t h = num_heads;
    const uint64_t bias = 3 * sl * d + sl * d + 2 * sl * f + sl * d;
    const uint64_t softmax = h * sl * seq_len * 4;  // exp, sum, div, scale
    const uint64_t ln = 2 * sl * d * 6;             // two LNs, ~6 ops/elem
    const uint64_t residual = 2 * sl * d;
    return 2 * macs_total() +
           num_layers * (bias + softmax + ln + residual);
  }
};

}  // namespace protea::ref
