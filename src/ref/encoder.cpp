#include "ref/encoder.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace protea::ref {

Encoder::Encoder(EncoderWeights weights) : weights_(std::move(weights)) {
  weights_.config.validate();
  if (weights_.layers.size() != weights_.config.num_layers) {
    throw std::invalid_argument("Encoder: layer count mismatch");
  }
}

tensor::MatrixF Encoder::forward(const tensor::MatrixF& input) const {
  tensor::MatrixF x = input;
  for (const auto& layer : weights_.layers) {
    x = forward_layer(x, layer, nullptr);
  }
  return x;
}

tensor::MatrixF Encoder::forward_traced(const tensor::MatrixF& input,
                                        std::vector<LayerTrace>& traces) const {
  traces.clear();
  traces.resize(weights_.layers.size());
  tensor::MatrixF x = input;
  for (size_t i = 0; i < weights_.layers.size(); ++i) {
    x = forward_layer(x, weights_.layers[i], &traces[i]);
  }
  return x;
}

tensor::MatrixF Encoder::forward_layer(const tensor::MatrixF& input,
                                       const EncoderLayerWeights& layer,
                                       LayerTrace* trace) const {
  const ModelConfig& cfg = weights_.config;
  if (input.rows() != cfg.seq_len || input.cols() != cfg.d_model) {
    throw std::invalid_argument("Encoder: input shape mismatch");
  }
  const size_t dk = cfg.head_dim();
  const size_t h = cfg.num_heads;

  // --- Multi-head attention -----------------------------------------------
  // Full projections, then per-head column slices (the accelerator computes
  // the slices directly with per-head weight buffers; results agree).
  tensor::MatrixF q_full = tensor::matmul_bias(input, layer.wq, layer.bq);
  tensor::MatrixF k_full = tensor::matmul_bias(input, layer.wk, layer.bk);
  tensor::MatrixF v_full = tensor::matmul_bias(input, layer.wv, layer.bv);

  const float scale =
      cfg.attn_scale == AttnScale::kInvSqrtDk
          ? 1.0f / std::sqrt(static_cast<float>(dk))
          : 1.0f / static_cast<float>(cfg.d_model);

  tensor::MatrixF concat(cfg.seq_len, cfg.d_model);
  for (size_t head = 0; head < h; ++head) {
    tensor::MatrixF q = q_full.slice_cols(head * dk, dk);
    tensor::MatrixF k = k_full.slice_cols(head * dk, dk);
    tensor::MatrixF v = v_full.slice_cols(head * dk, dk);

    tensor::MatrixF logits = tensor::matmul_bt(q, k);
    tensor::scale_inplace(logits, scale);
    tensor::softmax_rows_inplace(logits);
    tensor::MatrixF scores = tensor::matmul(logits, v);

    for (size_t r = 0; r < cfg.seq_len; ++r) {
      for (size_t c = 0; c < dk; ++c) {
        concat(r, head * dk + c) = scores(r, c);
      }
    }
    if (trace != nullptr) {
      trace->q.push_back(std::move(q));
      trace->k.push_back(std::move(k));
      trace->v.push_back(std::move(v));
      trace->attn_weights.push_back(std::move(logits));
      trace->attn_scores.push_back(std::move(scores));
    }
  }

  // --- Output projection + residual + LN ----------------------------------
  tensor::MatrixF proj = tensor::matmul_bias(concat, layer.wo, layer.bo);
  tensor::MatrixF x1 = tensor::add(input, proj);
  tensor::layer_norm_rows_inplace(x1, layer.ln1_gamma, layer.ln1_beta);

  // --- Feed-forward network ------------------------------------------------
  tensor::MatrixF hidden = tensor::matmul_bias(x1, layer.w1, layer.b1);
  if (cfg.activation == Activation::kRelu) {
    tensor::relu_inplace(hidden);
  } else {
    tensor::gelu_inplace(hidden);
  }
  tensor::MatrixF ffn_out = tensor::matmul_bias(hidden, layer.w2, layer.b2);
  tensor::MatrixF x2 = tensor::add(x1, ffn_out);
  tensor::layer_norm_rows_inplace(x2, layer.ln2_gamma, layer.ln2_beta);

  if (trace != nullptr) {
    trace->concat = std::move(concat);
    trace->proj = std::move(proj);
    trace->ln1_out = x1;
    trace->ffn_hidden = std::move(hidden);
    trace->ffn_out = std::move(ffn_out);
    trace->ln2_out = x2;
  }
  return x2;
}

}  // namespace protea::ref
