#include "ref/model_zoo.hpp"

#include <stdexcept>

namespace protea::ref {

ModelConfig bert_variant() {
  ModelConfig c;
  c.name = "bert";
  c.seq_len = 64;
  c.d_model = 768;
  c.num_heads = 8;
  c.num_layers = 12;
  c.activation = Activation::kGelu;
  return c;
}

ModelConfig model_peng21() {
  // Peng et al. [21] evaluate a pruned shallow BERT on a U200; the paper
  // reports ProTEA running their workload in 4.48 ms. A single-layer
  // d=256 encoder at SL=36 reproduces that latency on the simulator
  // (4.36 ms, 2.7 % off — see EXPERIMENTS.md "Model-zoo calibration").
  ModelConfig c;
  c.name = "peng21";
  c.seq_len = 36;
  c.d_model = 256;
  c.num_heads = 8;
  c.num_layers = 1;
  c.activation = Activation::kGelu;
  return c;
}

ModelConfig model_wojcicki23() {
  // Wojcicki et al. [23] deploy a tiny LHC-trigger transformer: one
  // layer over a handful of jet constituents. SL=8, d=96 reproduces
  // ProTEA's reported 0.425 ms (simulated 0.437 ms).
  ModelConfig c;
  c.name = "wojcicki23";
  c.seq_len = 8;
  c.d_model = 96;
  c.num_heads = 4;
  c.num_layers = 1;
  c.activation = Activation::kRelu;
  return c;
}

ModelConfig model_efa_trans25() {
  // EFA-Trans [25] runs a compact 2-layer encoder on a ZCU102; SL=22,
  // d=256 reproduces ProTEA's reported 5.18 ms (simulated 5.32 ms).
  ModelConfig c;
  c.name = "efa_trans25";
  c.seq_len = 22;
  c.d_model = 256;
  c.num_heads = 8;
  c.num_layers = 2;
  c.activation = Activation::kRelu;
  return c;
}

ModelConfig model_qi28() {
  // Qi et al. [28] co-optimize a mid-size 2-layer encoder; SL=38, d=256
  // reproduces ProTEA's reported 9.12 ms (simulated 9.26 ms).
  ModelConfig c;
  c.name = "qi28";
  c.seq_len = 38;
  c.d_model = 256;
  c.num_heads = 4;
  c.num_layers = 2;
  c.activation = Activation::kGelu;
  return c;
}

std::vector<ModelConfig> table1_tests() {
  std::vector<ModelConfig> tests;
  auto base = bert_variant();

  auto push = [&tests](ModelConfig c, std::string name) {
    c.name = std::move(name);
    tests.push_back(std::move(c));
  };

  // Tests 1-3: heads 8, 4, 2.
  for (uint32_t h : {8u, 4u, 2u}) {
    ModelConfig c = base;
    c.num_heads = h;
    push(c, "test" + std::to_string(tests.size() + 1));
  }
  // Tests 4-5: layers 8, 4.
  for (uint32_t n : {8u, 4u}) {
    ModelConfig c = base;
    c.num_layers = n;
    push(c, "test" + std::to_string(tests.size() + 1));
  }
  // Tests 6-7: d_model 512, 256.
  for (uint32_t d : {512u, 256u}) {
    ModelConfig c = base;
    c.d_model = d;
    push(c, "test" + std::to_string(tests.size() + 1));
  }
  // Tests 8-9: seq_len 128, 32.
  for (uint32_t sl : {128u, 32u}) {
    ModelConfig c = base;
    c.seq_len = sl;
    push(c, "test" + std::to_string(tests.size() + 1));
  }
  return tests;
}

ModelConfig find_model(std::string_view name) {
  if (name == "bert") return bert_variant();
  if (name == "peng21") return model_peng21();
  if (name == "wojcicki23") return model_wojcicki23();
  if (name == "efa_trans25") return model_efa_trans25();
  if (name == "qi28") return model_qi28();
  throw std::invalid_argument("find_model: unknown model '" +
                              std::string(name) + "'");
}

std::vector<std::string> model_names() {
  return {"bert", "peng21", "wojcicki23", "efa_trans25", "qi28"};
}

}  // namespace protea::ref
