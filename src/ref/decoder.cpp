#include "ref/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace protea::ref {
namespace {

void fill_normal(tensor::MatrixF& m, util::Xoshiro256& rng, double sigma) {
  for (float& x : m.flat()) {
    const double v = rng.normal() * sigma;
    x = static_cast<float>(std::clamp(v, -3.0 * sigma, 3.0 * sigma));
  }
}

void fill_normal(std::vector<float>& v, util::Xoshiro256& rng,
                 double sigma) {
  for (float& x : v) {
    const double value = rng.normal() * sigma;
    x = static_cast<float>(std::clamp(value, -3.0 * sigma, 3.0 * sigma));
  }
}

/// Applies the causal mask in place: logits(i, j) = -inf for j > i.
void apply_causal_mask(tensor::MatrixF& logits) {
  for (size_t i = 0; i < logits.rows(); ++i) {
    for (size_t j = i + 1; j < logits.cols(); ++j) {
      logits(i, j) = -std::numeric_limits<float>::infinity();
    }
  }
}

/// One attention block (optionally causal): queries from `q_src`,
/// keys/values from `kv_src`, full projection weights. Per-head traces
/// are appended when sinks are provided.
tensor::MatrixF attention(
    const ModelConfig& cfg, const tensor::MatrixF& q_src,
    const tensor::MatrixF& kv_src, const tensor::MatrixF& wq,
    std::span<const float> bq, const tensor::MatrixF& wk,
    std::span<const float> bk, const tensor::MatrixF& wv,
    std::span<const float> bv, bool causal,
    std::vector<tensor::MatrixF>* q_trace,
    std::vector<tensor::MatrixF>* k_trace,
    std::vector<tensor::MatrixF>* v_trace,
    std::vector<tensor::MatrixF>* w_trace) {
  const size_t dk = cfg.head_dim();
  tensor::MatrixF q_full = tensor::matmul_bias(q_src, wq, bq);
  tensor::MatrixF k_full = tensor::matmul_bias(kv_src, wk, bk);
  tensor::MatrixF v_full = tensor::matmul_bias(kv_src, wv, bv);

  const float scale =
      cfg.attn_scale == AttnScale::kInvSqrtDk
          ? 1.0f / std::sqrt(static_cast<float>(dk))
          : 1.0f / static_cast<float>(cfg.d_model);

  tensor::MatrixF concat(q_src.rows(), cfg.d_model);
  for (size_t head = 0; head < cfg.num_heads; ++head) {
    tensor::MatrixF q = q_full.slice_cols(head * dk, dk);
    tensor::MatrixF k = k_full.slice_cols(head * dk, dk);
    tensor::MatrixF v = v_full.slice_cols(head * dk, dk);
    tensor::MatrixF logits = tensor::matmul_bt(q, k);
    tensor::scale_inplace(logits, scale);
    if (causal) apply_causal_mask(logits);
    tensor::softmax_rows_inplace(logits);
    tensor::MatrixF scores = tensor::matmul(logits, v);
    for (size_t r = 0; r < scores.rows(); ++r) {
      for (size_t c = 0; c < dk; ++c) {
        concat(r, head * dk + c) = scores(r, c);
      }
    }
    if (q_trace != nullptr) q_trace->push_back(std::move(q));
    if (k_trace != nullptr) k_trace->push_back(std::move(k));
    if (v_trace != nullptr) v_trace->push_back(std::move(v));
    if (w_trace != nullptr) w_trace->push_back(std::move(logits));
  }
  return concat;
}

}  // namespace

DecoderWeights make_random_decoder_weights(const ModelConfig& config,
                                           uint64_t seed) {
  config.validate();
  DecoderWeights w;
  w.config = config;
  w.layers.resize(config.num_layers);

  const size_t d = config.d_model;
  const size_t f = config.ffn_hidden();
  util::Xoshiro256 rng(seed ^ 0xDECDECDECull);
  const double sigma_d = 1.0 / std::sqrt(static_cast<double>(d));
  const double sigma_f = 1.0 / std::sqrt(static_cast<double>(f));
  const double sigma_b = 0.02;

  for (auto& layer : w.layers) {
    for (tensor::MatrixF* m : {&layer.wq, &layer.wk, &layer.wv, &layer.wo,
                               &layer.cq, &layer.ck, &layer.cv, &layer.co}) {
      *m = tensor::MatrixF(d, d);
      fill_normal(*m, rng, sigma_d);
    }
    layer.w1 = tensor::MatrixF(d, f);
    fill_normal(layer.w1, rng, sigma_d);
    layer.w2 = tensor::MatrixF(f, d);
    fill_normal(layer.w2, rng, sigma_f);

    for (std::vector<float>* b :
         {&layer.bq, &layer.bk, &layer.bv, &layer.bo, &layer.cbq,
          &layer.cbk, &layer.cbv, &layer.cbo, &layer.b2}) {
      b->assign(d, 0.0f);
      if (config.use_bias) fill_normal(*b, rng, sigma_b);
    }
    layer.b1.assign(f, 0.0f);
    if (config.use_bias) fill_normal(layer.b1, rng, sigma_b);

    for (std::vector<float>* g :
         {&layer.ln1_gamma, &layer.ln2_gamma, &layer.ln3_gamma}) {
      g->assign(d, 1.0f);
    }
    for (std::vector<float>* b :
         {&layer.ln1_beta, &layer.ln2_beta, &layer.ln3_beta}) {
      b->assign(d, 0.0f);
    }
  }
  return w;
}

Decoder::Decoder(DecoderWeights weights) : weights_(std::move(weights)) {
  weights_.config.validate();
  if (weights_.layers.size() != weights_.config.num_layers) {
    throw std::invalid_argument("Decoder: layer count mismatch");
  }
}

tensor::MatrixF Decoder::forward(const tensor::MatrixF& target,
                                 const tensor::MatrixF& memory) const {
  tensor::MatrixF x = target;
  for (const auto& layer : weights_.layers) {
    x = forward_layer(x, memory, layer, nullptr);
  }
  return x;
}

tensor::MatrixF Decoder::forward_traced(
    const tensor::MatrixF& target, const tensor::MatrixF& memory,
    std::vector<DecoderLayerTrace>& traces) const {
  traces.clear();
  traces.resize(weights_.layers.size());
  tensor::MatrixF x = target;
  for (size_t i = 0; i < weights_.layers.size(); ++i) {
    x = forward_layer(x, memory, weights_.layers[i], &traces[i]);
  }
  return x;
}

tensor::MatrixF Decoder::forward_layer(const tensor::MatrixF& x,
                                       const tensor::MatrixF& memory,
                                       const DecoderLayerWeights& layer,
                                       DecoderLayerTrace* trace) const {
  const ModelConfig& cfg = weights_.config;
  if (x.cols() != cfg.d_model || memory.cols() != cfg.d_model) {
    throw std::invalid_argument("Decoder: width mismatch");
  }
  if (x.rows() > cfg.seq_len) {
    throw std::invalid_argument("Decoder: target longer than seq_len");
  }

  // --- masked self-attention + residual + LN ---------------------------------
  tensor::MatrixF self_concat = attention(
      cfg, x, x, layer.wq, layer.bq, layer.wk, layer.bk, layer.wv,
      layer.bv, /*causal=*/true,
      trace != nullptr ? &trace->self_q : nullptr,
      trace != nullptr ? &trace->self_k : nullptr,
      trace != nullptr ? &trace->self_v : nullptr,
      trace != nullptr ? &trace->self_weights : nullptr);
  tensor::MatrixF self_proj =
      tensor::matmul_bias(self_concat, layer.wo, layer.bo);
  tensor::MatrixF x1 = tensor::add(x, self_proj);
  tensor::layer_norm_rows_inplace(x1, layer.ln1_gamma, layer.ln1_beta);

  // --- cross-attention over encoder memory + residual + LN --------------------
  tensor::MatrixF cross_concat = attention(
      cfg, x1, memory, layer.cq, layer.cbq, layer.ck, layer.cbk, layer.cv,
      layer.cbv, /*causal=*/false,
      trace != nullptr ? &trace->cross_q : nullptr,
      trace != nullptr ? &trace->cross_k : nullptr,
      trace != nullptr ? &trace->cross_v : nullptr,
      trace != nullptr ? &trace->cross_weights : nullptr);
  tensor::MatrixF cross_proj =
      tensor::matmul_bias(cross_concat, layer.co, layer.cbo);
  tensor::MatrixF x2 = tensor::add(x1, cross_proj);
  tensor::layer_norm_rows_inplace(x2, layer.ln2_gamma, layer.ln2_beta);

  // --- FFN + residual + LN -----------------------------------------------------
  tensor::MatrixF hidden = tensor::matmul_bias(x2, layer.w1, layer.b1);
  if (cfg.activation == Activation::kRelu) {
    tensor::relu_inplace(hidden);
  } else {
    tensor::gelu_inplace(hidden);
  }
  tensor::MatrixF ffn_out = tensor::matmul_bias(hidden, layer.w2, layer.b2);
  tensor::MatrixF x3 = tensor::add(x2, ffn_out);
  tensor::layer_norm_rows_inplace(x3, layer.ln3_gamma, layer.ln3_beta);

  if (trace != nullptr) {
    trace->self_concat = std::move(self_concat);
    trace->self_proj = std::move(self_proj);
    trace->ln1_out = x1;
    trace->cross_concat = std::move(cross_concat);
    trace->cross_proj = std::move(cross_proj);
    trace->ln2_out = x2;
    trace->ffn_hidden = std::move(hidden);
    trace->ffn_out = std::move(ffn_out);
    trace->ln3_out = x3;
  }
  return x3;
}

}  // namespace protea::ref
