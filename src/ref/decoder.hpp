// Float32 reference transformer decoder (golden model for the decoder
// extension).
//
// The paper's §VI names decoder support as future work "using the same
// design principles"; this reproduction implements it. A decoder layer is
// (Fig. 1):
//   masked self-attention -> residual + LN
//   encoder-decoder cross-attention -> residual + LN
//   position-wise FFN -> residual + LN
// The mask (Fig. 2) prevents position i from attending to positions > i.
#pragma once

#include <vector>

#include "ref/model_config.hpp"
#include "ref/weights.hpp"
#include "tensor/matrix.hpp"

namespace protea::ref {

/// Weights of one decoder layer. Self- and cross-attention have separate
/// projection sets; cross-attention keys/values are computed from the
/// encoder memory.
struct DecoderLayerWeights {
  // Masked self-attention.
  tensor::MatrixF wq, wk, wv, wo;          // (d x d)
  std::vector<float> bq, bk, bv, bo;       // (d)
  // Encoder-decoder cross-attention (queries from the decoder stream,
  // keys/values from the encoder memory).
  tensor::MatrixF cq, ck, cv, co;          // (d x d)
  std::vector<float> cbq, cbk, cbv, cbo;   // (d)
  // Position-wise FFN.
  tensor::MatrixF w1;                      // (d x ffn)
  std::vector<float> b1;
  tensor::MatrixF w2;                      // (ffn x d)
  std::vector<float> b2;
  // Three LayerNorms.
  std::vector<float> ln1_gamma, ln1_beta;
  std::vector<float> ln2_gamma, ln2_beta;
  std::vector<float> ln3_gamma, ln3_beta;
};

struct DecoderWeights {
  ModelConfig config;  // seq_len = maximum target length
  std::vector<DecoderLayerWeights> layers;
};

/// Per-layer intermediates for testing the quantized datapath.
struct DecoderLayerTrace {
  std::vector<tensor::MatrixF> self_q, self_k, self_v;   // per head
  std::vector<tensor::MatrixF> self_weights;             // masked softmax
  tensor::MatrixF self_concat, self_proj, ln1_out;
  std::vector<tensor::MatrixF> cross_q, cross_k, cross_v;
  std::vector<tensor::MatrixF> cross_weights;
  tensor::MatrixF cross_concat, cross_proj, ln2_out;
  tensor::MatrixF ffn_hidden, ffn_out, ln3_out;
};

DecoderWeights make_random_decoder_weights(const ModelConfig& config,
                                           uint64_t seed);

class Decoder {
 public:
  explicit Decoder(DecoderWeights weights);

  const ModelConfig& config() const { return weights_.config; }

  /// Full decoder stack: `target` is (T x d_model) with T <= seq_len,
  /// `memory` is the encoder output (S x d_model).
  tensor::MatrixF forward(const tensor::MatrixF& target,
                          const tensor::MatrixF& memory) const;

  tensor::MatrixF forward_traced(const tensor::MatrixF& target,
                                 const tensor::MatrixF& memory,
                                 std::vector<DecoderLayerTrace>& traces) const;

 private:
  tensor::MatrixF forward_layer(const tensor::MatrixF& x,
                                const tensor::MatrixF& memory,
                                const DecoderLayerWeights& layer,
                                DecoderLayerTrace* trace) const;

  DecoderWeights weights_;
};

}  // namespace protea::ref
