#include "ref/positional.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace protea::ref {

tensor::MatrixF sinusoidal_positional_encoding(size_t seq_len,
                                               size_t d_model) {
  tensor::MatrixF pe(seq_len, d_model);
  for (size_t pos = 0; pos < seq_len; ++pos) {
    for (size_t i = 0; i < d_model; i += 2) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, static_cast<double>(i) /
                                static_cast<double>(d_model));
      pe(pos, i) = static_cast<float>(std::sin(angle));
      if (i + 1 < d_model) {
        pe(pos, i + 1) = static_cast<float>(std::cos(angle));
      }
    }
  }
  return pe;
}

tensor::MatrixF make_embedding_table(size_t vocab_size, size_t d_model,
                                     uint64_t seed) {
  tensor::MatrixF table(vocab_size, d_model);
  util::Xoshiro256 rng(seed);
  for (float& x : table.flat()) {
    x = static_cast<float>(rng.normal() * 0.5);
  }
  return table;
}

tensor::MatrixF embed_tokens(std::span<const uint32_t> tokens,
                             const tensor::MatrixF& table) {
  tensor::MatrixF out(tokens.size(), table.cols());
  const tensor::MatrixF pe =
      sinusoidal_positional_encoding(tokens.size(), table.cols());
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    if (tokens[pos] >= table.rows()) {
      throw std::out_of_range("embed_tokens: token id out of vocabulary");
    }
    for (size_t c = 0; c < table.cols(); ++c) {
      out(pos, c) = table(tokens[pos], c) + pe(pos, c);
    }
  }
  return out;
}

}  // namespace protea::ref
