#include "ref/positional.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace protea::ref {

namespace {

/// One PE row, shared by the batch and single-position entry points so
/// the two are bit-identical.
void positional_encoding_row(size_t pos, std::span<float> row) {
  const size_t d_model = row.size();
  for (size_t i = 0; i < d_model; i += 2) {
    const double angle =
        static_cast<double>(pos) /
        std::pow(10000.0, static_cast<double>(i) /
                              static_cast<double>(d_model));
    row[i] = static_cast<float>(std::sin(angle));
    if (i + 1 < d_model) {
      row[i + 1] = static_cast<float>(std::cos(angle));
    }
  }
}

}  // namespace

tensor::MatrixF sinusoidal_positional_encoding(size_t seq_len,
                                               size_t d_model) {
  tensor::MatrixF pe(seq_len, d_model);
  for (size_t pos = 0; pos < seq_len; ++pos) {
    positional_encoding_row(pos, pe.row(pos));
  }
  return pe;
}

tensor::MatrixF make_embedding_table(size_t vocab_size, size_t d_model,
                                     uint64_t seed) {
  tensor::MatrixF table(vocab_size, d_model);
  util::Xoshiro256 rng(seed);
  for (float& x : table.flat()) {
    x = static_cast<float>(rng.normal() * 0.5);
  }
  return table;
}

tensor::MatrixF embed_tokens(std::span<const uint32_t> tokens,
                             const tensor::MatrixF& table) {
  tensor::MatrixF out(tokens.size(), table.cols());
  const tensor::MatrixF pe =
      sinusoidal_positional_encoding(tokens.size(), table.cols());
  for (size_t pos = 0; pos < tokens.size(); ++pos) {
    if (tokens[pos] >= table.rows()) {
      throw std::out_of_range("embed_tokens: token id out of vocabulary");
    }
    for (size_t c = 0; c < table.cols(); ++c) {
      out(pos, c) = table(tokens[pos], c) + pe(pos, c);
    }
  }
  return out;
}

tensor::MatrixF embed_token_at(uint32_t token, size_t pos,
                               const tensor::MatrixF& table) {
  if (token >= table.rows()) {
    throw std::out_of_range("embed_token_at: token id out of vocabulary");
  }
  tensor::MatrixF out(1, table.cols());
  positional_encoding_row(pos, out.row(0));
  for (size_t c = 0; c < table.cols(); ++c) {
    out(0, c) += table(token, c);
  }
  return out;
}

}  // namespace protea::ref
