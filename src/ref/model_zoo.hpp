// Named model configurations used throughout the evaluation.
//
// `bert_variant()` is the paper's primary workload (Table I, Test #1):
// d_model=768, h=8, N=12, SL=64 — "a variant of BERT" sized to the U55C.
// The remaining entries model the workloads of the cited comparison points
// in Tables II/III; the cited papers do not publish full hyperparameters,
// so shapes are chosen to reproduce the ProTEA-side latencies the paper
// reports for those rows (see EXPERIMENTS.md for the calibration note).
#pragma once

#include <string_view>
#include <vector>

#include "ref/model_config.hpp"

namespace protea::ref {

/// Paper Table I baseline: BERT variant, d=768, h=8, N=12, SL=64.
ModelConfig bert_variant();

/// Workload matching the comparison row vs Peng et al. [21]
/// (column-balanced block pruning; ProTEA latency 4.48 ms).
ModelConfig model_peng21();

/// Workload matching Wojcicki et al. [23] (LHC trigger-scale tiny
/// transformer; ProTEA latency 0.425 ms).
ModelConfig model_wojcicki23();

/// Workload matching EFA-Trans [25] (ZCU102; ProTEA latency 5.18 ms).
ModelConfig model_efa_trans25();

/// Workload matching Qi et al. [28] (compression co-design; ProTEA
/// latency 9.12 ms).
ModelConfig model_qi28();

/// All Table I runtime-programmability test rows (Tests 1..9) expressed as
/// configs derived from bert_variant().
std::vector<ModelConfig> table1_tests();

/// Looks up any named config above ("bert", "peng21", ...); throws
/// std::invalid_argument for unknown names.
ModelConfig find_model(std::string_view name);

/// Names of all registered zoo entries.
std::vector<std::string> model_names();

}  // namespace protea::ref
