// Float32 reference transformer encoder (golden model).
//
// Structure follows the paper's Fig. 1/2 and §II: per layer,
//   MHA  -> output projection -> residual + LayerNorm
//   FFN (expand, activation, contract) -> residual + LayerNorm
// The accelerator simulator is verified against this model under
// quantization tolerances.
#pragma once

#include <vector>

#include "ref/model_config.hpp"
#include "ref/weights.hpp"
#include "tensor/matrix.hpp"

namespace protea::ref {

/// Per-layer intermediate activations, captured for fine-grained
/// equivalence testing against the accelerator engines.
struct LayerTrace {
  std::vector<tensor::MatrixF> q, k, v;        // per head: (SL x d_k)
  std::vector<tensor::MatrixF> attn_weights;   // per head: (SL x SL)
  std::vector<tensor::MatrixF> attn_scores;    // per head: (SL x d_k)
  tensor::MatrixF concat;                      // (SL x d_model)
  tensor::MatrixF proj;                        // after Wo
  tensor::MatrixF ln1_out;                     // post-attention LN
  tensor::MatrixF ffn_hidden;                  // after activation
  tensor::MatrixF ffn_out;                     // after second linear
  tensor::MatrixF ln2_out;                     // layer output
};

class Encoder {
 public:
  explicit Encoder(EncoderWeights weights);

  const ModelConfig& config() const { return weights_.config; }
  const EncoderWeights& weights() const { return weights_; }

  /// Full forward pass: input (SL x d_model) -> output (SL x d_model).
  tensor::MatrixF forward(const tensor::MatrixF& input) const;

  /// Forward pass capturing every intermediate for testing.
  tensor::MatrixF forward_traced(const tensor::MatrixF& input,
                                 std::vector<LayerTrace>& traces) const;

  /// One encoder layer, optionally tracing intermediates.
  tensor::MatrixF forward_layer(const tensor::MatrixF& input,
                                const EncoderLayerWeights& layer,
                                LayerTrace* trace) const;

 private:
  EncoderWeights weights_;
};

}  // namespace protea::ref
