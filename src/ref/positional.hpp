// Sinusoidal positional encoding and token-embedding synthesis
// ("Attention is All You Need" §3.5), used by the example applications to
// build realistic encoder inputs.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.hpp"

namespace protea::ref {

/// PE(pos, 2i)   = sin(pos / 10000^(2i/d))
/// PE(pos, 2i+1) = cos(pos / 10000^(2i/d))
tensor::MatrixF sinusoidal_positional_encoding(size_t seq_len, size_t d_model);

/// Deterministic embedding table: vocab_size x d_model, seeded.
tensor::MatrixF make_embedding_table(size_t vocab_size, size_t d_model,
                                     uint64_t seed);

/// Looks up token ids in `table` and adds positional encoding.
tensor::MatrixF embed_tokens(std::span<const uint32_t> tokens,
                             const tensor::MatrixF& table);

/// Embeds one token at absolute position `pos` (a 1 x d_model row) — the
/// incremental-decoding companion of embed_tokens: bit-identical to row
/// `pos` of embed_tokens over a sequence containing `token` there, so a
/// KV-cached decode loop can embed only the newest token in O(1) instead
/// of re-embedding the whole prefix.
tensor::MatrixF embed_token_at(uint32_t token, size_t pos,
                               const tensor::MatrixF& table);

}  // namespace protea::ref
