// Weight containers for a transformer encoder stack, plus deterministic
// random initialization (substitute for PyTorch-extracted .pth weights —
// the paper only uses layer *shapes* for its latency evaluation).
#pragma once

#include <cstdint>
#include <vector>

#include "ref/model_config.hpp"
#include "tensor/matrix.hpp"

namespace protea::ref {

/// Weights of one encoder layer. Projection matrices are stored full-size
/// (d_model x d_model); head slicing happens where it is consumed.
struct EncoderLayerWeights {
  tensor::MatrixF wq, wk, wv;      // (d_model x d_model)
  std::vector<float> bq, bk, bv;   // (d_model)
  tensor::MatrixF wo;              // (d_model x d_model) output projection
  std::vector<float> bo;           // (d_model)
  tensor::MatrixF w1;              // (d_model x ffn_hidden)
  std::vector<float> b1;           // (ffn_hidden)
  tensor::MatrixF w2;              // (ffn_hidden x d_model)
  std::vector<float> b2;           // (d_model)
  std::vector<float> ln1_gamma, ln1_beta;  // (d_model)
  std::vector<float> ln2_gamma, ln2_beta;  // (d_model)
};

struct EncoderWeights {
  ModelConfig config;
  std::vector<EncoderLayerWeights> layers;

  /// Total parameter count across the stack.
  uint64_t parameter_count() const;
};

/// Deterministic Xavier-style initialization: weights ~ N(0, 1/sqrt(fan_in))
/// clipped to +-3 sigma so int8 quantization has a benign range; biases
/// small; LN gamma=1, beta=0.
EncoderWeights make_random_weights(const ModelConfig& config, uint64_t seed);

/// Deterministic random input embeddings (SL x d_model), distribution
/// matching layer-normalized activations (roughly unit variance).
tensor::MatrixF make_random_input(const ModelConfig& config, uint64_t seed);

}  // namespace protea::ref
