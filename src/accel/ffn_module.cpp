#include "accel/ffn_module.hpp"

#include "tensor/qgemm.hpp"

namespace protea::accel {

tensor::MatrixI8 FfnModule::run(const QLayer& layer,
                                const tensor::MatrixI8& attn,
                                const tensor::MatrixI8& x, uint32_t ts_ffn,
                                ref::Activation activation,
                                EngineStats* stats, Trace* trace) {
  tensor::MatrixI8 out(x.rows(), x.cols());
  runtime::WorkspaceArena& ws = engine_scratch_arena();
  const runtime::LayerOpContext ctx{.ws = ws,
                                    .ts_mha = 0,
                                    .ts_ffn = ts_ffn,
                                    .activation = activation,
                                    .stats = stats,
                                    .gemm_pool =
                                        tensor::qgemm_default_pool()};
  runtime::run_encoder_ffn_stage(ctx, layer, attn, x, out, trace);
  return out;
}

}  // namespace protea::accel
