#include "accel/ffn_module.hpp"

#include "accel/layernorm_unit.hpp"

namespace protea::accel {

tensor::MatrixI8 FfnModule::run(const QLayer& layer,
                                const tensor::MatrixI8& attn,
                                const tensor::MatrixI8& x, uint32_t ts_ffn,
                                ref::Activation activation,
                                EngineStats* stats, Trace* trace) {
  const LayerScales& s = layer.scales;

  // FFN1: attention output projection (no activation; LN follows).
  tensor::MatrixI8 proj;
  run_ffn_engine(attn, layer.wo, layer.bo, ts_ffn, layer.rq_proj,
                 FfnActivation::kNone, 0.0, proj, stats);

  const LayerNormUnit ln1(layer.ln1_gamma, layer.ln1_beta);
  tensor::MatrixI8 x1 = ln1.run(proj, s.proj, x, s.x, s.ln1);

  // FFN2: expansion with the model's activation (ReLU direct, GELU LUT).
  const FfnActivation act = activation == ref::Activation::kRelu
                                ? FfnActivation::kRelu
                                : FfnActivation::kGeluLut;
  tensor::MatrixI8 hidden;
  run_ffn_engine(x1, layer.w1, layer.b1, ts_ffn, layer.rq_hidden, act,
                 s.hidden, hidden, stats);

  // FFN3: contraction back to d_model (no activation; LN follows).
  tensor::MatrixI8 ffn_out;
  run_ffn_engine(hidden, layer.w2, layer.b2, ts_ffn, layer.rq_ffn_out,
                 FfnActivation::kNone, 0.0, ffn_out, stats);

  const LayerNormUnit ln2(layer.ln2_gamma, layer.ln2_beta);
  tensor::MatrixI8 out = ln2.run(ffn_out, s.ffn_out, x1, s.ln1, s.ln2);

  if (trace != nullptr) {
    trace->proj = std::move(proj);
    trace->ln1 = std::move(x1);
    trace->hidden = std::move(hidden);
    trace->ffn_out = std::move(ffn_out);
  }
  return out;
}

}  // namespace protea::accel
